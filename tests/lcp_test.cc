// LCP (delay-based long-haul CC): delay-overshoot cuts, additive growth on a
// clean gradient, the ECN-alpha cut path, rate-move pacing, and timeout reset.
#include <gtest/gtest.h>

#include "transport/cc/cc_registry.h"
#include "transport/cc/lcp.h"

namespace lcmp {
namespace {

constexpr TimeNs kBaseRtt = Milliseconds(20);
constexpr int64_t kLine = Gbps(100);

Packet Ack(bool ecn_echo = false) {
  Packet p;
  p.type = PacketType::kAck;
  p.ecn_echo = ecn_echo;
  return p;
}

// Feeds `n` ACK samples with the given RTT, one per base-RTT round.
TimeNs FeedAcks(Lcp& cc, TimeNs now, int n, TimeNs rtt, bool ecn = false) {
  for (int i = 0; i < n; ++i) {
    now += kBaseRtt;
    cc.OnAck(Ack(ecn), nullptr, rtt, now);
  }
  return now;
}

TEST(LcpTest, StartsAtLineRateWithSeededMinRtt) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  EXPECT_EQ(cc.rate_bps(), kLine);
  EXPECT_EQ(cc.min_rtt(), kBaseRtt);
  EXPECT_EQ(cc.smoothed_rtt(), 0);
}

TEST(LcpTest, SustainedDelayOvershootCutsRate) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  // RTT sits 5ms over the base: far beyond the 150us headroom budget.
  FeedAcks(cc, 0, 20, kBaseRtt + Milliseconds(5));
  EXPECT_LT(cc.rate_bps(), kLine / 2);
  EXPECT_GT(cc.rate_bps(), 0);
  EXPECT_GT(cc.smoothed_rtt(), kBaseRtt);
}

TEST(LcpTest, CutIsBoundedToHalfPerDecision) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  // One decision against a catastrophic RTT may cut at most 2x.
  cc.OnAck(Ack(), nullptr, 100 * kBaseRtt, kBaseRtt);
  EXPECT_GE(cc.rate_bps(), kLine / 2);
}

TEST(LcpTest, RecoversAdditivelyOnCleanGradient) {
  LcpParams params;
  params.ai_bps = Gbps(1);  // make the probe visible in a few rounds
  Lcp cc(params);
  cc.Init(kLine, kBaseRtt, 0);
  TimeNs now = FeedAcks(cc, 0, 20, kBaseRtt + Milliseconds(5));
  const int64_t congested = cc.rate_bps();
  // Queue drains: RTT back at base, non-positive gradient -> additive growth.
  FeedAcks(cc, now, 40, kBaseRtt);
  EXPECT_GT(cc.rate_bps(), congested);
}

TEST(LcpTest, GrowthIsCappedAtLineRate) {
  LcpParams params;
  params.ai_bps = Gbps(50);
  Lcp cc(params);
  cc.Init(kLine, kBaseRtt, 0);
  FeedAcks(cc, 0, 10, kBaseRtt);
  EXPECT_EQ(cc.rate_bps(), kLine);
}

TEST(LcpTest, EcnAlphaTracksMarkFractionAndForcesCut) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  // Marked ACKs whose delay stays inside the budget: the alpha stream alone
  // must react (the shallow-buffered-border case).
  FeedAcks(cc, 0, 40, kBaseRtt, /*ecn=*/true);
  EXPECT_GT(cc.ecn_alpha(), 0.5);
  EXPECT_LT(cc.rate_bps(), kLine);
}

TEST(LcpTest, CleanAcksDecayEcnAlpha) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  TimeNs now = FeedAcks(cc, 0, 40, kBaseRtt, /*ecn=*/true);
  const double marked_alpha = cc.ecn_alpha();
  FeedAcks(cc, now, 40, kBaseRtt, /*ecn=*/false);
  EXPECT_LT(cc.ecn_alpha(), marked_alpha / 4);
}

TEST(LcpTest, CnpFoldsIntoAlphaStream) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  TimeNs now = 0;
  for (int i = 0; i < 40; ++i) {
    now += kBaseRtt;
    cc.OnCnp(now);
  }
  EXPECT_GT(cc.ecn_alpha(), 0.5);
  EXPECT_LT(cc.rate_bps(), kLine);
}

TEST(LcpTest, RateMovesAtMostOncePerRtt) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  // A burst of congested ACKs inside one RTT window: only samples at least
  // one min-RTT apart may move the rate, so the burst costs one decision.
  cc.OnAck(Ack(), nullptr, kBaseRtt + Milliseconds(5), kBaseRtt);
  const int64_t after_first = cc.rate_bps();
  for (int i = 0; i < 50; ++i) {
    cc.OnAck(Ack(), nullptr, kBaseRtt + Milliseconds(5), kBaseRtt + i);
  }
  EXPECT_EQ(cc.rate_bps(), after_first);
}

TEST(LcpTest, MinRttIsMinFiltered) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  cc.OnAck(Ack(), nullptr, kBaseRtt - Microseconds(500), kBaseRtt);
  EXPECT_EQ(cc.min_rtt(), kBaseRtt - Microseconds(500));
  cc.OnAck(Ack(), nullptr, kBaseRtt + Milliseconds(1), 2 * kBaseRtt);
  EXPECT_EQ(cc.min_rtt(), kBaseRtt - Microseconds(500));
}

TEST(LcpTest, TimeoutQuartersRateAndResetsDelayState) {
  Lcp cc;
  cc.Init(kLine, kBaseRtt, 0);
  FeedAcks(cc, 0, 5, kBaseRtt + Milliseconds(1));
  cc.OnTimeout(Milliseconds(200));
  EXPECT_LE(cc.rate_bps(), kLine / 4);
  EXPECT_EQ(cc.smoothed_rtt(), 0);
}

TEST(LcpTest, RateNeverDropsBelowFloor) {
  LcpParams params;
  Lcp cc(params);
  cc.Init(kLine, kBaseRtt, 0);
  TimeNs now = 0;
  for (int i = 0; i < 200; ++i) {
    now += kBaseRtt;
    cc.OnAck(Ack(/*ecn_echo=*/true), nullptr, 10 * kBaseRtt, now);
    cc.OnTimeout(now);
  }
  EXPECT_GE(cc.rate_bps(), params.min_rate_bps);
}

TEST(LcpTest, RegistryBuildsLcpWithTuning) {
  CcTuning tuning;
  tuning.lcp.min_rate_bps = Mbps(500);
  auto cc = CcRegistry::Instance().Create("lcp", tuning);
  ASSERT_NE(cc, nullptr);
  EXPECT_STREQ(cc->name(), "lcp");
  EXPECT_FALSE(CcRegistry::Instance().NeedsInt("lcp"));
  cc->Init(kLine, kBaseRtt, 0);
  for (int i = 0; i < 200; ++i) {
    cc->OnTimeout(i);
  }
  EXPECT_EQ(cc->rate_bps(), Mbps(500));  // the tuned floor held
}

}  // namespace
}  // namespace lcmp
