// Tests for control-plane provisioning and telemetry (Sec. 5).
#include <gtest/gtest.h>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "core/path_quality.h"
#include "routing/ecmp.h"
#include "sim/network.h"
#include "topo/builders.h"

namespace lcmp {
namespace {

TEST(ControlPlaneTest, ProvisionInstallsExpectedScores) {
  const LcmpConfig config;
  const Graph g = BuildTestbed8({});
  Network net(g, NetworkConfig{}, MakeLcmpFactory(config));
  ControlPlane cp(config);
  cp.Provision(net);

  SwitchNode& dci1 = net.switch_node(g.DciOfDc(0));
  auto* router = dynamic_cast<LcmpRouter*>(dci1.policy());
  ASSERT_NE(router, nullptr);
  // Provisioned scores must equal direct computation on candidate attrs.
  const auto cands = dci1.CandidatesTo(7);
  const BootstrapTables tables = BootstrapTables::Build(config);
  // Trigger a decision so the router uses its installed table (no on-demand
  // rebuild should alter it).
  Packet p;
  p.type = PacketType::kData;
  p.src = g.HostsInDc(0)[0];
  p.dst = g.HostsInDc(7)[0];
  p.key = FlowKey{p.src, p.dst, 1, 4791, 17};
  router->SelectPort(dci1, p, cands);
  for (size_t i = 0; i < cands.size(); ++i) {
    const uint8_t expected =
        CalcPathQuality(cands[i].path_delay_ns, cands[i].bottleneck_bps, config, tables);
    (void)expected;  // validated indirectly via decisions in lcmp_router_test
  }
  SUCCEED();
}

TEST(ControlPlaneTest, ProvisionSkipsForeignPolicies) {
  // Partial rollout: some DCIs run ECMP; Provision must not crash or touch
  // them.
  const LcmpConfig config;
  const Graph g = BuildTestbed8({});
  int counter = 0;
  PolicyFactory mixed = [&counter, &config](SwitchNode& sw) -> std::unique_ptr<MultipathPolicy> {
    if (counter++ % 2 == 0) {
      return std::make_unique<EcmpPolicy>();
    }
    return MakeLcmpFactory(config)(sw);
  };
  Network net(g, NetworkConfig{}, mixed);
  ControlPlane cp(config);
  cp.Provision(net);
  const auto telemetry = cp.CollectTelemetry(net);
  // Only the LCMP switches report.
  EXPECT_EQ(telemetry.size(), 4u);
}

TEST(ControlPlaneTest, TelemetryReportsCacheAndMemory) {
  const LcmpConfig config;
  const Graph g = BuildTestbed8({});
  Network net(g, NetworkConfig{}, MakeLcmpFactory(config));
  ControlPlane cp(config);
  cp.Provision(net);

  SwitchNode& dci1 = net.switch_node(g.DciOfDc(0));
  auto* router = dynamic_cast<LcmpRouter*>(dci1.policy());
  const auto cands = dci1.CandidatesTo(7);
  for (uint32_t i = 0; i < 25; ++i) {
    Packet p;
    p.type = PacketType::kData;
    p.src = g.HostsInDc(0)[0];
    p.dst = g.HostsInDc(7)[0];
    p.key = FlowKey{p.src, p.dst, i, 4791, 17};
    router->SelectPort(dci1, p, cands);
  }
  const auto telemetry = cp.CollectTelemetry(net);
  ASSERT_EQ(telemetry.size(), 8u);
  const SwitchTelemetry* t1 = nullptr;
  for (const auto& t : telemetry) {
    if (t.switch_id == g.DciOfDc(0)) {
      t1 = &t;
    }
  }
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->flow_cache_entries, 25);
  EXPECT_EQ(t1->new_flow_decisions, 25);
  EXPECT_GT(t1->memory_bytes, 0u);
  EXPECT_EQ(t1->port_queue_levels.size(), static_cast<size_t>(dci1.num_ports()));
}

TEST(ControlPlaneTest, TelemetryLoopSweepsPeriodically) {
  const LcmpConfig config;
  const Graph g = BuildTestbed8({});
  Network net(g, NetworkConfig{}, MakeLcmpFactory(config));
  ControlPlane cp(config);
  cp.Provision(net);

  cp.StartTelemetryLoop(net, Milliseconds(10));
  net.sim().ScheduleAt(Milliseconds(95), [&] { net.sim().Stop(); });
  net.sim().Run(Seconds(1));
  // Sweeps at 10, 20, ..., 90 ms.
  EXPECT_EQ(cp.telemetry_sweeps(), 9);
  EXPECT_EQ(cp.latest_telemetry().size(), 8u);

  // Stopping unregisters the recurring timer: no further sweeps fire.
  cp.StopTelemetryLoop(net);
  net.sim().ScheduleAt(Milliseconds(200), [&] { net.sim().Stop(); });
  net.sim().Run(Seconds(1));
  EXPECT_EQ(cp.telemetry_sweeps(), 9);
}

TEST(ControlPlaneTest, ReprovisionIsIdempotent) {
  const LcmpConfig config;
  const Graph g = BuildTestbed8({});
  Network net(g, NetworkConfig{}, MakeLcmpFactory(config));
  ControlPlane cp(config);
  cp.Provision(net);
  cp.Provision(net);  // must not crash or duplicate state
  SUCCEED();
}

}  // namespace
}  // namespace lcmp
