// Tests for the topology graph, the paper topologies and the control-plane
// candidate-path computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topo/builders.h"
#include "topo/candidate_paths.h"
#include "topo/graph.h"

namespace lcmp {
namespace {

TEST(GraphTest, AddVertexAndLink) {
  Graph g;
  const NodeId a = g.AddVertex(VertexKind::kHost, 0, "a");
  const NodeId b = g.AddVertex(VertexKind::kDciSwitch, 0, "b");
  const int l = g.AddLink(a, b, Gbps(100), Microseconds(1));
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_links(), 1);
  EXPECT_EQ(g.Peer(l, a), b);
  EXPECT_EQ(g.Peer(l, b), a);
  EXPECT_EQ(g.incident_links(a).size(), 1u);
}

TEST(GraphTest, DcAccounting) {
  Graph g;
  g.AddVertex(VertexKind::kHost, 0, "h0");
  g.AddVertex(VertexKind::kHost, 2, "h2");
  EXPECT_EQ(g.num_dcs(), 3);
  EXPECT_EQ(g.HostsInDc(0).size(), 1u);
  EXPECT_EQ(g.HostsInDc(1).size(), 0u);
  EXPECT_EQ(g.DciOfDc(0), kInvalidNode);
}

TEST(BuildersTest, LinearTopoShape) {
  const LinearTopo t = BuildLinear();
  EXPECT_EQ(t.graph.num_vertices(), 3);
  EXPECT_EQ(t.graph.num_links(), 2);
  EXPECT_EQ(t.graph.vertex(t.src_host).kind, VertexKind::kHost);
}

TEST(BuildersTest, CollapsedFabricShape) {
  Graph g;
  FabricOptions opts;
  opts.hosts = 4;
  const NodeId dci = BuildDcFabric(g, 0, opts);
  EXPECT_EQ(g.vertex(dci).kind, VertexKind::kDciSwitch);
  EXPECT_EQ(g.HostsInDc(0).size(), 4u);
  EXPECT_EQ(g.num_links(), 4);  // one uplink per host
}

TEST(BuildersTest, LeafSpineFabricShape) {
  Graph g;
  FabricOptions opts;
  opts.kind = FabricKind::kLeafSpine;
  const NodeId dci = BuildDcFabric(g, 0, opts);
  // 1 DCI + 2 spines + 4 leaves + 16 hosts (paper's pod).
  EXPECT_EQ(g.num_vertices(), 23);
  EXPECT_EQ(g.HostsInDc(0).size(), 16u);
  // Links: 2 spine-dci + 4*2 leaf-spine + 16 host-leaf = 26.
  EXPECT_EQ(g.num_links(), 26);
  EXPECT_EQ(g.DciOfDc(0), dci);
}

TEST(BuildersTest, Testbed8Shape) {
  const Graph g = BuildTestbed8({});
  EXPECT_EQ(g.num_dcs(), 8);
  EXPECT_EQ(g.DciSwitches().size(), 8u);
  // Endpoint DCs have hosts, transit DCs do not.
  EXPECT_GT(g.HostsInDc(0).size(), 0u);
  EXPECT_GT(g.HostsInDc(7).size(), 0u);
  for (DcId dc = 1; dc <= 6; ++dc) {
    EXPECT_EQ(g.HostsInDc(dc).size(), 0u) << "transit DC " << dc;
  }
}

TEST(BuildersTest, Testbed8HasSixTwoHopRoutes) {
  const Graph g = BuildTestbed8({});
  const InterDcRoutes routes = InterDcRoutes::Compute(g);
  const NodeId dci1 = g.DciOfDc(0);
  const auto& cands = routes.Candidates(dci1, 7);
  EXPECT_EQ(cands.size(), 6u);
  EXPECT_EQ(routes.HopDistance(dci1, 7), 2);
  // Each transit DCI has exactly one candidate onward to DC8.
  for (DcId dc = 1; dc <= 6; ++dc) {
    EXPECT_EQ(routes.Candidates(g.DciOfDc(dc), 7).size(), 1u);
  }
}

TEST(BuildersTest, Testbed8CandidateAttributesMatchClasses) {
  Testbed8Options opts;
  const Graph g = BuildTestbed8(opts);
  const InterDcRoutes routes = InterDcRoutes::Compute(g);
  const auto& cands = routes.Candidates(g.DciOfDc(0), 7);
  ASSERT_EQ(cands.size(), 6u);
  // Candidates are ordered by first-hop link index == class order.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(cands[static_cast<size_t>(i)].bottleneck_bps, opts.classes[i].rate_bps);
    EXPECT_EQ(cands[static_cast<size_t>(i)].path_delay_ns,
              2 * opts.classes[i].per_link_delay_ns);
  }
}

TEST(BuildersTest, Bso13ShapeAndDelayClasses) {
  const Graph g = BuildBso13({});
  EXPECT_EQ(g.num_dcs(), 13);
  EXPECT_EQ(g.DciSwitches().size(), 13u);
  // Every inter-DC link uses one of the paper's three delay classes.
  const std::set<TimeNs> classes = {Milliseconds(1), Milliseconds(5), Milliseconds(10)};
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    if (g.vertex(l.a).kind == VertexKind::kDciSwitch &&
        g.vertex(l.b).kind == VertexKind::kDciSwitch) {
      EXPECT_TRUE(classes.count(l.delay_ns)) << "link " << li;
    }
  }
}

TEST(BuildersTest, Bso13IsSparseMultipath) {
  // The paper reports only a minority (~25%) of pairs see multiple candidate
  // routes on the realistic topology; ours must be in that regime, not a
  // dense mesh.
  const Graph g = BuildBso13({});
  const InterDcRoutes routes = InterDcRoutes::Compute(g);
  const double frac = routes.MultipathPairFraction();
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.55);
}

TEST(BuildersTest, Bso13Dc1Dc13HasDiverseCandidates) {
  // The Fig. 8 case study needs DC1 -> DC13 to offer multiple candidates
  // with opposite delay/capacity trade-offs.
  const Graph g = BuildBso13({});
  const InterDcRoutes routes = InterDcRoutes::Compute(g);
  const auto& cands = routes.Candidates(g.DciOfDc(0), 12);
  ASSERT_GE(cands.size(), 2u);
  std::set<int64_t> caps;
  for (const auto& c : cands) {
    caps.insert(c.bottleneck_bps);
  }
  EXPECT_GE(caps.size(), 2u) << "candidates should differ in capacity";
}

TEST(BuildersTest, Bso13AllPairsReachable) {
  const Graph g = BuildBso13({});
  const InterDcRoutes routes = InterDcRoutes::Compute(g);
  for (DcId s = 0; s < 13; ++s) {
    for (DcId d = 0; d < 13; ++d) {
      if (s == d) {
        continue;
      }
      EXPECT_GE(routes.HopDistance(g.DciOfDc(s), d), 1) << s << "->" << d;
      EXPECT_GE(routes.Candidates(g.DciOfDc(s), d).size(), 1u) << s << "->" << d;
    }
  }
}

TEST(CandidatePathsTest, DownhillRoutingIsLoopFree) {
  // Following any candidate strictly decreases the hop distance, so no
  // forwarding loop can form.
  const Graph g = BuildBso13({});
  const InterDcRoutes routes = InterDcRoutes::Compute(g);
  for (DcId s = 0; s < 13; ++s) {
    for (DcId d = 0; d < 13; ++d) {
      if (s == d) {
        continue;
      }
      const NodeId dci = g.DciOfDc(s);
      for (const RouteCandidate& c : routes.Candidates(dci, d)) {
        EXPECT_LT(routes.HopDistance(c.next_hop, d), routes.HopDistance(dci, d));
      }
    }
  }
}

TEST(CandidatePathsTest, MinDelayPathOnLinear) {
  const LinearTopo t = BuildLinear(Gbps(100), Microseconds(1));
  const PathMetric m = ComputeMinDelayPath(t.graph, t.src_host, t.dst_host);
  ASSERT_TRUE(m.reachable);
  EXPECT_EQ(m.delay_ns, Microseconds(2));
  EXPECT_EQ(m.bottleneck_bps, Gbps(100));
  EXPECT_EQ(m.hops, 2);
}

TEST(CandidatePathsTest, MinDelayPicksLowDelayNotHighCapacity) {
  // Two paths: 10 ms @ 200G vs 1 ms @ 40G; min-delay must pick the latter.
  Graph g;
  const NodeId a = g.AddVertex(VertexKind::kDciSwitch, 0, "a");
  const NodeId b = g.AddVertex(VertexKind::kDciSwitch, 1, "b");
  const NodeId m = g.AddVertex(VertexKind::kDciSwitch, 2, "m");
  g.AddLink(a, b, Gbps(200), Milliseconds(10));
  g.AddLink(a, m, Gbps(40), Microseconds(400));
  g.AddLink(m, b, Gbps(40), Microseconds(600));
  const PathMetric pm = ComputeMinDelayPath(g, a, b);
  EXPECT_EQ(pm.delay_ns, Milliseconds(1));
  EXPECT_EQ(pm.bottleneck_bps, Gbps(40));
}

TEST(CandidatePathsTest, UnreachableReportsFalse) {
  Graph g;
  const NodeId a = g.AddVertex(VertexKind::kHost, 0, "a");
  const NodeId b = g.AddVertex(VertexKind::kHost, 1, "b");
  const PathMetric m = ComputeMinDelayPath(g, a, b);
  EXPECT_FALSE(m.reachable);
}

TEST(CandidatePathsTest, SelfPathIsZero) {
  Graph g;
  const NodeId a = g.AddVertex(VertexKind::kHost, 0, "a");
  const PathMetric m = ComputeMinDelayPath(g, a, a);
  EXPECT_TRUE(m.reachable);
  EXPECT_EQ(m.delay_ns, 0);
}

TEST(CandidatePathsTest, OracleCachesAndMatchesDirectComputation) {
  const Graph g = BuildTestbed8({});
  PathOracle oracle(&g);
  const auto hosts1 = g.HostsInDc(0);
  const auto hosts8 = g.HostsInDc(7);
  ASSERT_FALSE(hosts1.empty());
  ASSERT_FALSE(hosts8.empty());
  const PathMetric direct = ComputeMinDelayPath(g, hosts1[0], hosts8[0]);
  const PathMetric& cached = oracle.Metric(hosts1[0], hosts8[0]);
  EXPECT_EQ(cached.delay_ns, direct.delay_ns);
  EXPECT_EQ(cached.bottleneck_bps, direct.bottleneck_bps);
  // Second call returns the same object.
  EXPECT_EQ(&oracle.Metric(hosts1[0], hosts8[0]), &cached);
}

TEST(CandidatePathsTest, Testbed8MinDelayIsLowestDelayRoute) {
  Testbed8Options opts;
  const Graph g = BuildTestbed8(opts);
  const auto hosts1 = g.HostsInDc(0);
  const auto hosts8 = g.HostsInDc(7);
  const PathMetric m = ComputeMinDelayPath(g, hosts1[0], hosts8[0]);
  // Best route: via DC7, 2 x 5 ms inter-DC plus 2 x 1 us intra-DC hops.
  TimeNs best = std::numeric_limits<TimeNs>::max();
  for (const auto& cls : opts.classes) {
    best = std::min(best, 2 * cls.per_link_delay_ns);
  }
  EXPECT_EQ(m.delay_ns, best + 2 * Microseconds(1));
}

}  // namespace
}  // namespace lcmp
