// Tests for the topo/gen/ subsystem: per-family structural invariants of the
// generated WANs, the Topology Zoo importer (both formats plus error paths),
// the dedicated TopoRng stream, layered path sets end-to-end, and the
// arena-interned path tables (DESIGN.md §13).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/runner.h"
#include "sim/node.h"
#include "sim/path_table.h"
#include "topo/candidate_paths.h"
#include "topo/gen/import.h"
#include "topo/gen/topo_stats.h"
#include "topo/gen/wan_gen.h"

namespace lcmp {
namespace {

// --- dragonfly ---

TEST(DragonflyWanTest, Exact200DcsConnectedLowDiameter) {
  DragonflyWanOptions opts;
  opts.num_dcs = 200;
  opts.seed = 7;
  opts.fabric.hosts = 2;
  const Graph g = BuildDragonflyWan(opts);
  EXPECT_EQ(g.num_dcs(), 200);

  const TopoStats stats = ComputeTopoStats(g);
  EXPECT_EQ(stats.dcs, 200);
  EXPECT_EQ(stats.dci_switches, 200);
  EXPECT_TRUE(stats.connected);
  // Group mesh + all-group-pair global links: <= 3 inter-DC hops.
  EXPECT_LE(stats.diameter, 3);
  EXPECT_GE(stats.diameter, 2);
  // Every DC has a host block and exactly one DCI.
  for (DcId dc = 0; dc < g.num_dcs(); ++dc) {
    EXPECT_NE(g.DciOfDc(dc), kInvalidNode) << "dc " << dc;
    EXPECT_FALSE(g.HostsInDc(dc).empty()) << "dc " << dc;
  }
}

TEST(DragonflyWanTest, RespectsExplicitGroupSize) {
  DragonflyWanOptions opts;
  opts.num_dcs = 24;
  opts.group_size = 4;  // 6 full groups
  opts.seed = 3;
  opts.fabric.hosts = 2;
  const Graph g = BuildDragonflyWan(opts);
  EXPECT_EQ(g.num_dcs(), 24);
  // Intra-group mesh alone contributes 6 * C(4,2) = 36 inter-DC links.
  const TopoStats stats = ComputeTopoStats(g);
  EXPECT_GE(stats.inter_dc_links, 36);
  EXPECT_TRUE(stats.connected);
}

// --- slim fly ---

TEST(SlimFlyWanTest, MmsInvariantsHoldAtQ5) {
  EXPECT_EQ(SlimFlyQForDcCount(50), 5);
  EXPECT_EQ(SlimFlyDcCount(50), 50);
  // 40 rounds UP to the next valid 2q^2.
  EXPECT_EQ(SlimFlyDcCount(40), 50);
  // q must be prime and = 1 (mod 4): 51..338 rounds to q=13 -> 338.
  EXPECT_EQ(SlimFlyQForDcCount(51), 13);
  EXPECT_EQ(SlimFlyDcCount(51), 338);

  SlimFlyWanOptions opts;
  opts.num_dcs = 50;
  opts.seed = 7;
  opts.fabric.hosts = 2;
  const Graph g = BuildSlimFlyWan(opts);
  EXPECT_EQ(g.num_dcs(), 50);

  const TopoStats stats = ComputeTopoStats(g);
  EXPECT_TRUE(stats.connected);
  // The MMS graph has diameter 2 and uniform degree (3q-1)/2 = 7.
  EXPECT_EQ(stats.diameter, 2);
  EXPECT_DOUBLE_EQ(stats.avg_dci_degree, 7.0);
  EXPECT_EQ(stats.inter_dc_links, 50 * 7 / 2);
}

// --- fat tree ---

TEST(FatTreeWanTest, ClosLayoutServerDcsFirst) {
  EXPECT_EQ(FatTreeKForDcCount(20), 4);
  EXPECT_EQ(FatTreeDcCount(20), 20);
  EXPECT_EQ(FatTreeDcCount(21), 45);  // next even k = 6: (5/4) * 36

  FatTreeWanOptions opts;
  opts.num_dcs = 20;
  opts.seed = 7;
  opts.fabric.hosts = 2;
  const Graph g = BuildFatTreeWan(opts);
  EXPECT_EQ(g.num_dcs(), 20);

  const TopoStats stats = ComputeTopoStats(g);
  EXPECT_TRUE(stats.connected);
  // Three-stage Clos: edge -> agg -> core -> agg -> edge.
  EXPECT_EQ(stats.diameter, 4);
  // k^2/2 = 8 server DCs occupy ids [0, 8); the 12 transit DCs host nothing.
  for (DcId dc = 0; dc < g.num_dcs(); ++dc) {
    EXPECT_EQ(g.HostsInDc(dc).empty(), dc >= 8) << "dc " << dc;
  }
  // k-ary Clos link count: k^2/2 edge-agg pairs * ... = k^3/2 + k^2*k/4
  // edges overall; just pin the generated value structurally.
  EXPECT_EQ(stats.inter_dc_links, 32);
}

// --- importer ---

std::string WriteTempFile(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(WanImportTest, EdgeListMapsNamesAndDefaults) {
  const std::string path = WriteTempFile(
      "lcmp_import_edges.txt",
      "# three-node triangle, one explicit rate/delay\n"
      "ams fra 200 2\n"
      "fra par\n"
      "par ams 40 7.5\n");
  WanImportOptions opts;
  opts.path = path;
  opts.fabric.hosts = 2;
  Graph g;
  std::string error;
  ASSERT_TRUE(ImportWan(opts, &g, &error)) << error;
  std::remove(path.c_str());

  EXPECT_EQ(g.num_dcs(), 3);
  const TopoStats stats = ComputeTopoStats(g);
  EXPECT_EQ(stats.inter_dc_links, 3);
  EXPECT_TRUE(stats.connected);
  // First line: explicit 200 Gbps / 2 ms. Second: option defaults.
  bool saw_explicit = false;
  bool saw_default = false;
  for (const LinkSpec& l : g.links()) {
    if (l.rate_bps == Gbps(200)) {
      EXPECT_EQ(l.delay_ns, Milliseconds(2));
      saw_explicit = true;
    }
    if (l.rate_bps == opts.default_rate_bps && l.delay_ns == opts.default_delay_ns) {
      saw_default = true;
    }
  }
  EXPECT_TRUE(saw_explicit);
  EXPECT_TRUE(saw_default);
}

TEST(WanImportTest, GmlParsesCoordinatesIntoDelays) {
  const std::string path = WriteTempFile(
      "lcmp_import_mini.gml",
      "graph [\n"
      "  node [ id 0 label \"A\" Latitude 52.37 Longitude 4.90 ]\n"
      "  node [ id 1 label \"B\" Latitude 48.86 Longitude 2.35 ]\n"
      "  node [ id 2 label \"C\" ]\n"
      "  edge [ source 0 target 1 LinkSpeedRaw 40000000000 ]\n"
      "  edge [ source 1 target 2 ]\n"
      "]\n");
  WanImportOptions opts;
  opts.path = path;
  opts.fabric.hosts = 2;
  Graph g;
  std::string error;
  ASSERT_TRUE(ImportWan(opts, &g, &error)) << error;
  std::remove(path.c_str());

  EXPECT_EQ(g.num_dcs(), 3);
  bool saw_geo = false;
  bool saw_default_delay = false;
  for (const LinkSpec& l : g.links()) {
    if (l.rate_bps == Gbps(40)) {
      // Amsterdam-Paris is ~430 km great circle -> ~2.15 ms at 200 km/ms.
      EXPECT_GT(l.delay_ns, Milliseconds(1));
      EXPECT_LT(l.delay_ns, Milliseconds(4));
      saw_geo = true;
    }
    if (l.delay_ns == opts.default_delay_ns) {
      saw_default_delay = true;  // C has no coordinates
    }
  }
  EXPECT_TRUE(saw_geo);
  EXPECT_TRUE(saw_default_delay);
}

TEST(WanImportTest, RejectsMissingAndMalformedInput) {
  WanImportOptions opts;
  Graph g;
  std::string error;

  opts.path = "/nonexistent/lcmp_topo.txt";
  EXPECT_FALSE(ImportWan(opts, &g, &error));
  EXPECT_FALSE(error.empty());

  const std::string bad_edge =
      WriteTempFile("lcmp_import_bad.txt", "ams fra not-a-rate\n");
  opts.path = bad_edge;
  error.clear();
  EXPECT_FALSE(ImportWan(opts, &g, &error));
  EXPECT_FALSE(error.empty());
  std::remove(bad_edge.c_str());

  const std::string bad_gml =
      WriteTempFile("lcmp_import_bad.gml",
                    "graph [\n  edge [ source 0 target 1 ]\n]\n");
  opts.path = bad_gml;
  error.clear();
  EXPECT_FALSE(ImportWan(opts, &g, &error));  // edge references unknown nodes
  EXPECT_FALSE(error.empty());
  std::remove(bad_gml.c_str());
}

// --- dedicated topology Rng stream (satellite 1) ---

TEST(TopoRngTest, TopologyIsAPureFunctionOfItsSeed) {
  DragonflyWanOptions opts;
  opts.num_dcs = 32;
  opts.seed = 21;
  opts.fabric.hosts = 2;
  const uint64_t d1 = StructuralDigest(BuildDragonflyWan(opts));
  const uint64_t d2 = StructuralDigest(BuildDragonflyWan(opts));
  EXPECT_EQ(d1, d2);
  opts.seed = 22;
  EXPECT_NE(StructuralDigest(BuildDragonflyWan(opts)), d1);
}

TEST(TopoRngTest, TopoSeedIsDecoupledFromWorkloadSeed) {
  // Same topo_seed + different workload seed => identical structure.
  ExperimentConfig config;
  config.topo = TopologyKind::kDragonfly;
  config.num_dcs = 16;
  config.topo_seed = 5;
  config.hosts_per_dc = 2;
  config.seed = 100;
  const uint64_t base = StructuralDigest(BuildTopology(config));
  config.seed = 200;
  EXPECT_EQ(StructuralDigest(BuildTopology(config)), base);
  // topo_seed = 0 falls back to the workload seed.
  config.topo_seed = 0;
  config.seed = 5;
  EXPECT_EQ(StructuralDigest(BuildTopology(config)), base);
}

// --- layered path sets ---

TEST(LayeredPathsTest, LayerZeroMatchesDownhillAndLayersStayDownhill) {
  RandomWanOptions wopts;
  wopts.num_dcs = 16;
  wopts.extra_chords = 12;
  wopts.seed = 9;
  wopts.fabric.hosts = 2;
  const Graph g = BuildRandomWan(wopts);

  const InterDcRoutes downhill = InterDcRoutes::Compute(g);
  CandidatePathOptions popts;
  popts.strategy = PathStrategyKind::kLayered;
  popts.layers = 4;
  popts.seed = 9;
  const InterDcRoutes layered = InterDcRoutes::Compute(g, popts);
  ASSERT_EQ(layered.num_layers(), 4);

  bool extra_diversity = false;
  for (DcId src = 0; src < g.num_dcs(); ++src) {
    const NodeId dci = g.DciOfDc(src);
    for (DcId dst = 0; dst < g.num_dcs(); ++dst) {
      if (src == dst) {
        continue;
      }
      // Layer 0 reproduces the minimal downhill sets exactly.
      const auto& base = downhill.Candidates(dci, dst);
      const auto& l0 = layered.CandidatesInLayer(dci, dst, 0);
      ASSERT_EQ(base.size(), l0.size());
      for (size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].next_hop, l0[i].next_hop);
        EXPECT_EQ(base[i].link_idx, l0[i].link_idx);
      }
      // Non-minimal layers may detour but never point at the source DC and
      // never revisit: every candidate strictly decreases that layer's
      // distance by construction, so here we check the weaker structural
      // invariant that next hops are DCIs of other DCs.
      for (int layer = 1; layer < layered.num_layers(); ++layer) {
        for (const RouteCandidate& c : layered.CandidatesInLayer(dci, dst, layer)) {
          EXPECT_NE(c.next_hop, dci);
          if (layered.CandidatesInLayer(dci, dst, layer).size() > base.size()) {
            extra_diversity = true;
          }
        }
      }
    }
  }
  // Across the whole WAN at 25% drop, at least one pair must gain diversity
  // somewhere; otherwise the layers collapsed to the minimal sets.
  EXPECT_TRUE(extra_diversity);
}

TEST(LayeredPathsTest, EndToEndRunCompletesLossFree) {
  ExperimentConfig config;
  config.topo = TopologyKind::kDragonfly;
  config.num_dcs = 16;
  config.topo_seed = 7;
  config.hosts_per_dc = 2;
  config.policy = PolicyKind::kLcmp;
  config.path_strategy = PathStrategyKind::kLayered;
  config.path_layers = 4;
  config.num_flows = 150;
  config.seed = 11;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.flows_completed, result.flows_requested);
  EXPECT_EQ(result.switch_dropped_packets, 0);
  EXPECT_EQ(result.retransmitted_packets, 0);

  // The layered candidate sets must actually change routing relative to
  // downhill on the same topology (non-minimal paths carry flows).
  ExperimentConfig downhill = config;
  downhill.path_strategy = PathStrategyKind::kDownhill;
  const ExperimentResult base = RunExperiment(downhill);
  EXPECT_EQ(base.flows_completed, base.flows_requested);
  EXPECT_NE(ExperimentDigest(result), ExperimentDigest(base));
}

// --- arena-interned path tables ---

TEST(PathTableArenaTest, InternsDuplicateRowsOnce) {
  PathTableArena arena;
  std::vector<PathCandidate> row(3);
  for (int i = 0; i < 3; ++i) {
    row[static_cast<size_t>(i)].port = static_cast<PortIndex>(i);
    row[static_cast<size_t>(i)].next_hop = static_cast<NodeId>(10 + i);
  }
  const PathSlotRef a = arena.Intern(row);
  const size_t bytes_after_first = arena.MemoryBytes();
  const PathSlotRef b = arena.Intern(row);
  EXPECT_EQ(a.offset, b.offset);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(arena.unique_lists(), 1u);
  EXPECT_EQ(arena.total_lists(), 2u);
  EXPECT_EQ(arena.MemoryBytes(), bytes_after_first);

  // A different row gets its own range; empty rows never touch the slab.
  row[0].port = 99;
  const PathSlotRef c = arena.Intern(row);
  EXPECT_NE(c.offset, a.offset);
  EXPECT_EQ(arena.unique_lists(), 2u);
  const PathSlotRef empty = arena.Intern({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(arena.Resolve(empty).size(), 0u);

  const auto resolved = arena.Resolve(a);
  ASSERT_EQ(resolved.size(), 3u);
  EXPECT_EQ(resolved[0].next_hop, 10);
}

TEST(PathTableArenaTest, ExperimentReportsInternedFootprint) {
  ExperimentConfig config;
  config.topo = TopologyKind::kDragonfly;
  config.num_dcs = 25;
  config.topo_seed = 7;
  config.hosts_per_dc = 2;
  config.policy = PolicyKind::kLcmp;
  config.num_flows = 40;
  config.seed = 11;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.num_dcis, 25);
  EXPECT_GT(result.num_switches, 0);
  EXPECT_GT(result.topo_bytes, 0u);
  EXPECT_GT(result.static_table_bytes, 0u);
  EXPECT_GT(result.path_table_bytes, 0u);
  // Slots alone are 25 DCIs * 25 dsts * 8 B = 5 KB; the interned arena keeps
  // the whole thing far below the naive 25x per-switch copy of every row.
  EXPECT_LT(result.path_table_bytes, 256u * 1024u);
}

}  // namespace
}  // namespace lcmp
