// End-to-end integration tests through the experiment harness: every policy
// completes realistic workloads, results are deterministic, and the headline
// qualitative claims of the paper hold at small scale.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/scenario.h"
#include "stats/pearson.h"

namespace lcmp {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig c;
  c.topo = TopologyKind::kTestbed8;
  c.pairing = PairingKind::kEndpointPair;
  c.workload = WorkloadKind::kWebSearch;
  c.load = 0.3;
  c.num_flows = 120;
  c.seed = 11;
  c.hosts_per_dc = 4;
  return c;
}

class AllPoliciesTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AllPoliciesTest, CompletesAllFlows) {
  ExperimentConfig c = SmallConfig();
  c.policy = GetParam();
  const ExperimentResult r = RunExperiment(c);
  EXPECT_EQ(r.flows_completed, r.flows_requested) << PolicyKindName(GetParam());
  EXPECT_GT(r.overall.p50, 0.9);
  EXPECT_GE(r.overall.p99, r.overall.p50);
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPoliciesTest,
                         ::testing::Values(PolicyKind::kEcmp, PolicyKind::kWcmp,
                                           PolicyKind::kUcmp, PolicyKind::kRedte,
                                           PolicyKind::kLcmp),
                         [](const ::testing::TestParamInfo<PolicyKind>& info) {
                           return PolicyKindName(info.param);
                         });

TEST(IntegrationTest, DeterministicForSameSeed) {
  ExperimentConfig c = SmallConfig();
  c.policy = PolicyKind::kLcmp;
  const ExperimentResult a = RunExperiment(c);
  const ExperimentResult b = RunExperiment(c);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].fct, b.samples[i].fct);
  }
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(IntegrationTest, SeedChangesTraffic) {
  ExperimentConfig c = SmallConfig();
  c.policy = PolicyKind::kEcmp;
  ExperimentConfig c2 = c;
  c2.seed = 12;
  const ExperimentResult a = RunExperiment(c);
  const ExperimentResult b = RunExperiment(c2);
  EXPECT_NE(a.events_processed, b.events_processed);
}

TEST(IntegrationTest, LcmpBeatsEcmpTailOnAsymmetricTestbed) {
  // The paper's headline (Fig. 5): on the capacity/delay-asymmetric 8-DC
  // topology LCMP must cut the p99 slowdown versus ECMP.
  ExperimentConfig c = SmallConfig();
  c.num_flows = 250;
  c.policy = PolicyKind::kEcmp;
  const ExperimentResult ecmp = RunExperiment(c);
  c.policy = PolicyKind::kLcmp;
  const ExperimentResult lcmp_r = RunExperiment(c);
  EXPECT_LT(lcmp_r.overall.p99, ecmp.overall.p99);
  EXPECT_LT(lcmp_r.overall.p50, ecmp.overall.p50 * 1.05);
}

TEST(IntegrationTest, LcmpBeatsUcmpMedianOnAsymmetricTestbed) {
  // UCMP concentrates on high-capacity/high-delay routes; LCMP's medians
  // must be clearly better (Fig. 5 shows up to 76%).
  ExperimentConfig c = SmallConfig();
  c.num_flows = 250;
  c.policy = PolicyKind::kUcmp;
  const ExperimentResult ucmp = RunExperiment(c);
  c.policy = PolicyKind::kLcmp;
  const ExperimentResult lcmp_r = RunExperiment(c);
  EXPECT_LT(lcmp_r.overall.p50, ucmp.overall.p50);
}

TEST(IntegrationTest, LinkUtilizationPopulated) {
  ExperimentConfig c = SmallConfig();
  c.policy = PolicyKind::kLcmp;
  const ExperimentResult r = RunExperiment(c);
  ASSERT_EQ(r.link_utils.size(), 24u);  // 12 inter-DC links, both directions
  double total = 0;
  for (const auto& u : r.link_utils) {
    EXPECT_GE(u.utilization, 0.0);
    EXPECT_LE(u.utilization, 1.01);
    total += u.utilization;
  }
  EXPECT_GT(total, 0.0);
}

TEST(IntegrationTest, Bso13AllToAllCompletes) {
  ExperimentConfig c;
  c.topo = TopologyKind::kBso13;
  c.pairing = PairingKind::kAllToAll;
  c.policy = PolicyKind::kLcmp;
  c.num_flows = 150;
  c.hosts_per_dc = 2;
  c.seed = 5;
  const ExperimentResult r = RunExperiment(c);
  EXPECT_EQ(r.flows_completed, r.flows_requested);
  // The paper's sparsity statistic: a minority of pairs are multipath.
  EXPECT_GT(r.multipath_pair_fraction, 0.1);
  EXPECT_LT(r.multipath_pair_fraction, 0.55);
}

TEST(IntegrationTest, EmulationModeCorrelatesWithSimulation) {
  // Fig. 6 methodology: per-size-bucket slowdowns from emulation-mode and
  // simulation-mode runs must correlate strongly.
  ExperimentConfig c = SmallConfig();
  c.num_flows = 200;
  c.policy = PolicyKind::kLcmp;
  const ExperimentResult sim_r = RunExperiment(c);
  c.emulation_mode = true;
  const ExperimentResult emu_r = RunExperiment(c);
  // Correlate (p50, p99) slowdown points across size buckets, mirroring the
  // paper's Fig. 6 scatter of testbed-vs-NS-3 slowdowns.
  std::vector<double> x, y;
  for (const auto& sb : sim_r.buckets) {
    for (const auto& eb : emu_r.buckets) {
      if (sb.size_hi == eb.size_hi && sb.stats.count >= 3 && eb.stats.count >= 3) {
        x.push_back(sb.stats.p50);
        y.push_back(eb.stats.p50);
        x.push_back(sb.stats.p99);
        y.push_back(eb.stats.p99);
      }
    }
  }
  ASSERT_GE(x.size(), 8u);
  EXPECT_GT(PearsonCorrelation(x, y), 0.9);
}

TEST(IntegrationTest, AblationRmAlphaHurtsMedians) {
  // Sec. 7.1: removing the path-quality term (alpha = 0) places flows on
  // high-delay routes and inflates slowdowns.
  ExperimentConfig c = SmallConfig();
  c.num_flows = 250;
  c.policy = PolicyKind::kLcmp;
  const ExperimentResult full = RunExperiment(c);
  c.lcmp.alpha = 0;
  const ExperimentResult rm_alpha = RunExperiment(c);
  EXPECT_GT(rm_alpha.overall.p50, full.overall.p50);
}

TEST(IntegrationTest, TelemetryOnlyForLcmp) {
  ExperimentConfig c = SmallConfig();
  c.policy = PolicyKind::kEcmp;
  EXPECT_TRUE(RunExperiment(c).telemetry.empty());
  c.policy = PolicyKind::kLcmp;
  EXPECT_FALSE(RunExperiment(c).telemetry.empty());
}

}  // namespace
}  // namespace lcmp
