// Tests for the experiment harness: naming, pairing, factories, table
// formatting, sweeps, and failure injection through a full experiment.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/scenario.h"
#include "harness/table.h"

namespace lcmp {
namespace {

TEST(HarnessTest, KindNames) {
  EXPECT_STREQ(PolicyKindName(PolicyKind::kEcmp), "ECMP");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kWcmp), "WCMP");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kUcmp), "UCMP");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kRedte), "RedTE");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kLcmp), "LCMP");
  EXPECT_STREQ(TopologyKindName(TopologyKind::kTestbed8), "testbed-8dc");
  EXPECT_STREQ(TopologyKindName(TopologyKind::kBso13), "bso-13dc");
}

TEST(HarnessTest, FactoryProducesNamedPolicies) {
  const Graph g = BuildDumbbell(2, 1, Gbps(100), Milliseconds(1));
  Network net(g, NetworkConfig{}, nullptr);
  SwitchNode& sw = net.switch_node(g.DciOfDc(0));
  const LcmpConfig lc;
  EXPECT_STREQ(MakePolicyFactory(PolicyKind::kEcmp, lc)(sw)->name(), "ecmp");
  EXPECT_STREQ(MakePolicyFactory(PolicyKind::kWcmp, lc)(sw)->name(), "wcmp");
  EXPECT_STREQ(MakePolicyFactory(PolicyKind::kUcmp, lc)(sw)->name(), "ucmp");
  EXPECT_STREQ(MakePolicyFactory(PolicyKind::kRedte, lc)(sw)->name(), "redte");
  EXPECT_STREQ(MakePolicyFactory(PolicyKind::kLcmp, lc)(sw)->name(), "lcmp");
}

TEST(HarnessTest, EndpointPairingIsBidirectional) {
  ExperimentConfig c;
  c.pairing = PairingKind::kEndpointPair;
  const auto pairs = BuildPairing(c, 8);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<DcId, DcId>{0, 7}));
  EXPECT_EQ(pairs[1], (std::pair<DcId, DcId>{7, 0}));
}

TEST(HarnessTest, AllToAllPairingCountsOrderedPairs) {
  ExperimentConfig c;
  c.pairing = PairingKind::kAllToAll;
  EXPECT_EQ(BuildPairing(c, 13).size(), 13u * 12u);
}

TEST(HarnessTest, BuildTopologyRespectsHostsPerDc) {
  ExperimentConfig c;
  c.topo = TopologyKind::kTestbed8;
  c.hosts_per_dc = 3;
  const Graph g = BuildTopology(c);
  EXPECT_EQ(g.HostsInDc(0).size(), 3u);
  c.topo = TopologyKind::kBso13;
  const Graph g2 = BuildTopology(c);
  EXPECT_EQ(g2.HostsInDc(12).size(), 3u);
}

TEST(HarnessTest, ResultDcPairFilters) {
  ExperimentConfig c;
  c.num_flows = 60;
  c.hosts_per_dc = 2;
  c.policy = PolicyKind::kEcmp;
  c.seed = 3;
  const ExperimentResult r = RunExperiment(c);
  const SlowdownStats fwd = r.ForDcPair(0, 7);
  const SlowdownStats rev = r.ForDcPair(7, 0);
  const SlowdownStats both = r.ForDcPairBidir(0, 7);
  EXPECT_EQ(fwd.count + rev.count, both.count);
  EXPECT_EQ(both.count, r.overall.count);  // endpoint pairing only
}

TEST(HarnessTest, SweepRunsAllCells) {
  ExperimentConfig base;
  base.num_flows = 30;
  base.hosts_per_dc = 2;
  base.seed = 4;
  // The deprecated shim must keep working (and keep its cell order) until the
  // last external caller migrates to SweepSpec + RunSweep.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto cells =
      RunPolicyLoadSweep(base, {PolicyKind::kEcmp, PolicyKind::kLcmp}, {0.2, 0.4});
#pragma GCC diagnostic pop
  ASSERT_EQ(cells.size(), 4u);
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.result.flows_completed, 30);
  }
  // Print helpers must not crash on real data.
  PrintSlowdownTable("sweep", cells);
  PrintSlowdownTable("sweep pair", cells, /*dc_pair_only=*/true, 0, 7);
}

TEST(HarnessTest, LinkFlapDuringExperimentStillCompletes) {
  // Failure injection through the harness objects: build the same pieces as
  // RunExperiment but flap an inter-DC link mid-run; every flow must finish.
  const Graph graph = BuildDumbbell(3, 2, Gbps(100), Milliseconds(2));
  NetworkConfig ncfg;
  ncfg.seed = 9;
  Network net(graph, ncfg, MakePolicyFactory(PolicyKind::kLcmp, LcmpConfig{}));
  ControlPlane cp{LcmpConfig{}};
  cp.Provision(net);
  FctRecorder recorder(&net.graph());
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord& r) { recorder.OnComplete(r); });
  TrafficGenConfig traffic;
  traffic.offered_bps = Gbps(60);
  traffic.num_flows = 40;
  traffic.seed = 5;
  for (FlowSpec f : GenerateTraffic(graph, {{0, 1}, {1, 0}}, traffic)) {
    f.size_bytes = 4'000'000;
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();
  const auto links = net.InterDcDirectedLinks();
  net.sim().Schedule(Milliseconds(2), [&] { net.SetLinkUp(links[0].link_idx, false); });
  net.sim().Schedule(Milliseconds(30), [&] { net.SetLinkUp(links[0].link_idx, true); });
  net.sim().Run(Seconds(30));
  EXPECT_EQ(recorder.completed(), 40);
}

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"a", "long-header"});
  t.AddRow({"xxxxx", "1"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a     | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxxx | 1           |"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(FmtBytes(512), "512B");
  EXPECT_EQ(FmtBytes(2048), "2.0KB");
  EXPECT_EQ(FmtBytes(31457280), "30.0MB");
  EXPECT_EQ(FmtPct(-0.41), "-41%");
  EXPECT_EQ(FmtPct(0.25), "+25%");
}

}  // namespace
}  // namespace lcmp
