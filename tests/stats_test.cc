// Tests for the statistics pipeline: FCT recorder / slowdown math, size
// buckets, DC-pair filters, link-utilization tracking and Pearson.
#include <gtest/gtest.h>

#include <vector>

#include "routing/ecmp.h"
#include "sim/network.h"
#include "stats/fct_recorder.h"
#include "stats/link_utilization.h"
#include "stats/pearson.h"
#include "topo/builders.h"

namespace lcmp {
namespace {

FlowRecord MakeRecord(const Graph& g, NodeId src, NodeId dst, uint64_t bytes, TimeNs fct) {
  FlowRecord r;
  r.spec.src = src;
  r.spec.dst = dst;
  r.spec.size_bytes = bytes;
  r.start_time = Milliseconds(1);
  r.complete_time = Milliseconds(1) + fct;
  (void)g;
  return r;
}

TEST(FctRecorderTest, IdealFctUsesMinDelayPath) {
  const LinearTopo t = BuildLinear(Gbps(100), Microseconds(1));
  FctRecorder rec(&t.graph);
  const uint64_t bytes = 1'000'000;
  const TimeNs ideal = rec.IdealFct(t.src_host, t.dst_host, bytes);
  EXPECT_EQ(ideal, Microseconds(2) + SerializationDelay(bytes, Gbps(100)));
}

TEST(FctRecorderTest, SlowdownIsRelativeToIdeal) {
  const LinearTopo t = BuildLinear(Gbps(100), Microseconds(1));
  FctRecorder rec(&t.graph);
  const uint64_t bytes = 1'000'000;
  const TimeNs ideal = rec.IdealFct(t.src_host, t.dst_host, bytes);
  rec.OnComplete(MakeRecord(t.graph, t.src_host, t.dst_host, bytes, 3 * ideal));
  ASSERT_EQ(rec.completed(), 1);
  EXPECT_NEAR(rec.samples()[0].slowdown, 3.0, 0.01);
  EXPECT_NEAR(rec.Overall().p50, 3.0, 0.01);
}

TEST(FctRecorderTest, DcPairFilter) {
  const Graph g = BuildTestbed8({});
  FctRecorder rec(&g);
  const auto h1 = g.HostsInDc(0);
  const auto h8 = g.HostsInDc(7);
  const TimeNs ideal = rec.IdealFct(h1[0], h8[0], 1000);
  rec.OnComplete(MakeRecord(g, h1[0], h8[0], 1000, 2 * ideal));
  rec.OnComplete(MakeRecord(g, h8[0], h1[0], 1000, 4 * ideal));
  EXPECT_EQ(rec.ForDcPair(0, 7).count, 1);
  EXPECT_NEAR(rec.ForDcPair(0, 7).p50, 2.0, 0.01);
  EXPECT_EQ(rec.ForDcPair(7, 0).count, 1);
  EXPECT_EQ(rec.ForDcPair(0, 3).count, 0);
}

TEST(FctRecorderTest, BucketsPartitionBySize) {
  const LinearTopo t = BuildLinear();
  FctRecorder rec(&t.graph);
  for (uint64_t bytes : {500u, 1500u, 5000u, 50'000u, 500'000u}) {
    const TimeNs ideal = rec.IdealFct(t.src_host, t.dst_host, bytes);
    rec.OnComplete(MakeRecord(t.graph, t.src_host, t.dst_host, bytes, 2 * ideal));
  }
  const auto buckets = rec.ByBuckets({1000, 10'000, 100'000});
  // 4 non-empty buckets: <=1000 (500), <=10k (1500,5000), <=100k (50k),
  // overflow (500k).
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].stats.count, 1);
  EXPECT_EQ(buckets[1].stats.count, 2);
  EXPECT_EQ(buckets[2].stats.count, 1);
  EXPECT_EQ(buckets[3].stats.count, 1);
}

TEST(FctRecorderTest, WherePredicate) {
  const LinearTopo t = BuildLinear();
  FctRecorder rec(&t.graph);
  for (int i = 1; i <= 10; ++i) {
    const TimeNs ideal = rec.IdealFct(t.src_host, t.dst_host, 1000);
    rec.OnComplete(MakeRecord(t.graph, t.src_host, t.dst_host, 1000, i * ideal));
  }
  const SlowdownStats big = rec.Where(
      [](const FctRecorder::Sample& s) { return s.slowdown > 5.0; });
  EXPECT_EQ(big.count, 5);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAntiCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputs) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> flat = {5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(x, flat), 0.0);
  EXPECT_EQ(PearsonCorrelation({}, {}), 0.0);
  const std::vector<double> one = {1};
  EXPECT_EQ(PearsonCorrelation(one, one), 0.0);
}

TEST(PearsonTest, MismatchedSizesReturnZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(LinkUtilizationTest, MeasuresTransmittedFraction) {
  Graph g = BuildDumbbell(1, 1, Gbps(1), Milliseconds(1));
  Network net(g, NetworkConfig{}, [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); });
  LinkUtilizationTracker tracker(&net);
  tracker.Begin();
  // Push 10 packets of 1000 B through the single inter-DC link, then idle
  // until exactly 1 ms of window has passed.
  const auto src = g.HostsInDc(0)[0];
  const auto dst = g.HostsInDc(1)[0];
  for (uint32_t i = 0; i < 10; ++i) {
    Packet p;
    p.type = PacketType::kData;
    p.src = src;
    p.dst = dst;
    p.key = FlowKey{src, dst, i, 4791, 17};
    p.size_bytes = 1000;
    net.host(src).Send(p);
  }
  net.sim().Schedule(Milliseconds(10), [] {});
  net.sim().Run();
  const auto utils = tracker.End();
  ASSERT_EQ(utils.size(), 2u);
  // 10 kB over 10 ms on 1 Gbps = 10k*8 / (1e9*0.01) = 0.8%.
  double forward = 0;
  for (const auto& u : utils) {
    forward = std::max(forward, u.utilization);
  }
  EXPECT_NEAR(forward, 0.008, 0.002);
}

TEST(LinkUtilizationTest, WindowExcludesEarlierTraffic) {
  Graph g = BuildDumbbell(1, 1, Gbps(1), Milliseconds(1));
  Network net(g, NetworkConfig{}, [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); });
  const auto src = g.HostsInDc(0)[0];
  const auto dst = g.HostsInDc(1)[0];
  Packet p;
  p.type = PacketType::kData;
  p.src = src;
  p.dst = dst;
  p.key = FlowKey{src, dst, 1, 4791, 17};
  p.size_bytes = 1000;
  net.host(src).Send(p);
  net.sim().Run();
  LinkUtilizationTracker tracker(&net);
  tracker.Begin();
  net.sim().Schedule(Milliseconds(1), [] {});
  net.sim().Run();
  for (const auto& u : tracker.End()) {
    EXPECT_EQ(u.bytes, 0);
  }
}

}  // namespace
}  // namespace lcmp
