// Shard-determinism regression (DESIGN.md §12): the conservative-PDES core
// must be bit-identical to the sequential core — same digest, same event
// count, same end time — for every shard count, with and without fault
// injection. The grid tests pin the end-to-end contract; the lineage-key
// unit tests pin the mechanism that makes it hold (event keys depend only on
// the scheduling event's own key, never on which queue or thread runs it, so
// equal-timestamp ties resolve identically in every core layout).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/flags.h"
#include "harness/runner.h"
#include "obs/metrics.h"
#include "obs/shard_context.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace lcmp {
namespace {

struct ShardDigest {
  uint64_t digest = 0;
  uint64_t events = 0;
  int completed = 0;
  TimeNs end = 0;

  bool operator==(const ShardDigest& o) const {
    return digest == o.digest && events == o.events && completed == o.completed && end == o.end;
  }
};

ShardDigest RunGrid(TopologyKind topo, int shards, bool chaos, TimeNs telemetry_period = 0) {
  ExperimentConfig config;
  config.topo = topo;
  config.policy = PolicyKind::kLcmp;
  config.num_flows = 120;
  config.hosts_per_dc = 2;
  config.seed = 11;
  config.shards = shards;
  config.telemetry_period = telemetry_period;
  if (chaos) {
    // The golden corpus's chaos density: seeded plan drawn by RunExperiment
    // against the built topology, dense enough to hit in-use routes.
    config.chaos_seed = 7;
    config.chaos_rate = 150;
    config.chaos_window_ms = 50;
  }
  const ExperimentResult result = RunExperiment(config);
  ShardDigest d;
  d.digest = ExperimentDigest(result);
  d.events = result.events_processed;
  d.completed = result.flows_completed;
  d.end = result.sim_end_time;
  return d;
}

// The ISSUE's acceptance grid: {shards=1,2,4} x {chaos on/off}, identical
// digests everywhere. Sequential (shards=1) is the reference.
TEST(ShardDeterminismTest, GridShards124TimesChaosOnOffIsBitIdentical) {
  for (const bool chaos : {false, true}) {
    const ShardDigest seq = RunGrid(TopologyKind::kTestbed8, 1, chaos);
    EXPECT_GT(seq.completed, 0);
    for (const int shards : {2, 4}) {
      const ShardDigest par = RunGrid(TopologyKind::kTestbed8, shards, chaos);
      EXPECT_TRUE(seq == par) << "chaos=" << chaos << " shards=" << shards << ": digest "
                              << std::hex << seq.digest << " vs " << par.digest << std::dec
                              << ", events " << seq.events << " vs " << par.events << ", end "
                              << seq.end << " vs " << par.end;
    }
  }
}

// Generated-WAN regression (topo/gen, DESIGN.md §13): a dragonfly built from
// the dedicated TopoRng stream with layered path sets must stay bit-identical
// across shard counts — the generators and the per-layer subgraph sampling
// draw nothing from any per-shard or per-thread state.
ShardDigest RunGeneratedWan(int shards) {
  ExperimentConfig config;
  config.topo = TopologyKind::kDragonfly;
  config.num_dcs = 16;
  config.topo_seed = 21;
  config.hosts_per_dc = 2;
  config.policy = PolicyKind::kLcmp;
  config.path_strategy = PathStrategyKind::kLayered;
  config.path_layers = 3;
  config.num_flows = 120;
  config.seed = 11;
  config.shards = shards;
  const ExperimentResult result = RunExperiment(config);
  ShardDigest d;
  d.digest = ExperimentDigest(result);
  d.events = result.events_processed;
  d.completed = result.flows_completed;
  d.end = result.sim_end_time;
  return d;
}

TEST(ShardDeterminismTest, GeneratedWanWithLayeredPathsIsBitIdentical) {
  const ShardDigest seq = RunGeneratedWan(1);
  EXPECT_GT(seq.completed, 0);
  for (const int shards : {2, 4}) {
    const ShardDigest par = RunGeneratedWan(shards);
    EXPECT_TRUE(seq == par) << "shards=" << shards << ": digest " << std::hex << seq.digest
                            << " vs " << par.digest << std::dec << ", events " << seq.events
                            << " vs " << par.events << ", end " << seq.end << " vs " << par.end;
  }
}

// Cross-check on the sparse 13-DC backbone, whose uneven DC-to-shard
// assignment exercises partitions of very different sizes.
TEST(ShardDeterminismTest, Bso13ShardedMatchesSequential) {
  const ShardDigest seq = RunGrid(TopologyKind::kBso13, 1, /*chaos=*/false);
  const ShardDigest par = RunGrid(TopologyKind::kBso13, 4, /*chaos=*/false);
  EXPECT_TRUE(seq == par) << "events " << seq.events << " vs " << par.events;
}

// --- observability-on determinism (the obs v2 digest guard) ---

// Enabling metrics + tracing + time series must not change a single event:
// obs reads sim state and writes side rings only. The telemetry loop *does*
// add control events, so it is pinned identically (10 ms) on both sides of
// every comparison. Grid: {1,2,4} shards x {unfiltered, filtered} tracing,
// all bit-identical to the obs-off reference.
TEST(ShardDeterminismTest, ObsOnIsBitIdenticalToObsOffAcrossShardCounts) {
  const TimeNs period = Milliseconds(10);
  const ShardDigest ref = RunGrid(TopologyKind::kTestbed8, 1, /*chaos=*/true, period);
  EXPECT_GT(ref.completed, 0);

  for (const int shards : {1, 2, 4}) {
    for (const bool filtered : {false, true}) {
      obs::SetMetricsEnabled(true);
      obs::TimeSeriesHub::Instance().SetEnabled(true);
      obs::FlightRecorder& rec = obs::FlightRecorder::Instance();
      rec.Configure(4096);
      rec.SetFilters(filtered ? 3 : -1, filtered ? 40 : kInvalidNode);
      rec.Enable(true);

      const ShardDigest on = RunGrid(TopologyKind::kTestbed8, shards, /*chaos=*/true, period);

      rec.Enable(false);
      rec.SetFilters(-1, kInvalidNode);
      rec.Clear();
      obs::TimeSeriesHub::Instance().SetEnabled(false);
      obs::SetMetricsEnabled(false);

      EXPECT_TRUE(ref == on) << "shards=" << shards << " filtered=" << filtered << ": digest "
                             << std::hex << ref.digest << " vs " << on.digest << std::dec
                             << ", events " << ref.events << " vs " << on.events << ", end "
                             << ref.end << " vs " << on.end;
    }
  }
}

// --- flight-recorder merge order (obs/trace.cc) ---

// Records written from different shard lanes at the same timestamp must merge
// in lineage-key order, and (ts, key) ties must keep lane order (the stable
// sort over the lane concatenation) — never wall-clock write order.
TEST(FlightRecorderMergeOrder, EqualTimestampRecordsSortByLineageKeyThenLane) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Instance();
  rec.Configure(64);
  rec.SetFilters(-1, kInvalidNode);
  rec.Enable(true);

  TimeNs now = 500;
  uint64_t key = 0;
  {
    // Shard 1's lane writes keys 5 then 1 at t=500 (out of key order).
    obs::ScopedShardContext ctx(obs::ShardContext{obs::LaneForShard(1), 1, &now, &key});
    key = 5;
    rec.Record(obs::TraceEv::kEnqueue, now, /*flow=*/105, 1, 0, 0);
    key = 1;
    rec.Record(obs::TraceEv::kEnqueue, now, /*flow=*/101, 1, 0, 0);
  }
  {
    // Shard 0's lane writes key 3 at the same timestamp.
    obs::ScopedShardContext ctx(obs::ShardContext{obs::LaneForShard(0), 0, &now, &key});
    key = 3;
    rec.Record(obs::TraceEv::kEnqueue, now, /*flow=*/103, 1, 0, 0);
  }
  // (ts, key) tie across lanes: shard 1's lane writes first in wall time, but
  // lane 0 (no context installed -> key 0) must still merge ahead of it.
  {
    obs::ScopedShardContext ctx(obs::ShardContext{obs::LaneForShard(1), 1, &now, &key});
    key = 0;
    rec.Record(obs::TraceEv::kDequeue, /*ts=*/400, /*flow=*/201, 1, 0, 0);
  }
  rec.Record(obs::TraceEv::kDequeue, /*ts=*/400, /*flow=*/200, 1, 0, 0);  // lane 0, key 0

  const std::vector<obs::TraceRecord> merged = rec.MergedRecords();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].flow, 200u);  // t=400 key 0: lane 0 wins the tie
  EXPECT_EQ(merged[0].shard, -1);
  EXPECT_EQ(merged[1].flow, 201u);
  EXPECT_EQ(merged[1].shard, 1);
  EXPECT_EQ(merged[2].flow, 101u);  // t=500: key order 1 < 3 < 5, not lane
  EXPECT_EQ(merged[3].flow, 103u);  // or write order
  EXPECT_EQ(merged[4].flow, 105u);
  EXPECT_EQ(merged[2].shard, 1);
  EXPECT_EQ(merged[3].shard, 0);

  rec.Enable(false);
  rec.Clear();
}

// --- lineage-key ordering units (sim/event_queue.h, sim/simulator.h) ---

// A child scheduled at its parent's own timestamp must sort after the parent
// (and after the parent's already-popped position): the generation field in
// the key's top bits increments per same-time ancestry step.
TEST(LineageKeyOrdering, SameTimeChildSortsAfterParent) {
  Simulator sim;
  bool checked = false;
  sim.ScheduleAt(10, [&] {
    const uint64_t parent = sim.current_event_key();
    const uint64_t child = sim.MintKeyFor(sim.now());
    EXPECT_GT(child, parent);
    EXPECT_EQ(child >> EventQueue::kGenShift, (parent >> EventQueue::kGenShift) + 1);
    // A child at a *later* time restarts at generation zero.
    const uint64_t later = sim.MintKeyFor(sim.now() + 1);
    EXPECT_EQ(later >> EventQueue::kGenShift, 0u);
    checked = true;
  });
  sim.Run(100);
  EXPECT_TRUE(checked);
}

// Setup-time keys (scheduled outside any executing event) come from one
// plain counter; sharded runs point every partition at the same counter so
// setup order is global, exactly as in the one-queue core.
TEST(LineageKeyOrdering, SetupKeysShareOneCounterAcrossQueues) {
  Simulator a;
  Simulator b;
  uint64_t shared = 0;
  a.UseSharedSeq(&shared);
  b.UseSharedSeq(&shared);
  EXPECT_EQ(a.MintKeyFor(5), 0u);
  EXPECT_EQ(b.MintKeyFor(5), 1u);
  EXPECT_EQ(a.MintKeyFor(7), 2u);
  EXPECT_EQ(shared, 3u);
}

// The equal-timestamp cross-shard tie test the tentpole hinges on: a parent
// fans out same-time children, some executed in its own queue and some
// handed to a second queue with producer-minted keys (what the cross-shard
// channel does). Merging the two queues' execution logs by (time, key) must
// reproduce the one-queue core's execution order label for label.
TEST(LineageKeyOrdering, CrossQueueEqualTimestampTiesMatchSequentialOrder) {
  struct Exec {
    TimeNs t = 0;
    uint64_t key = 0;
    std::string label;
  };
  constexpr int kChildren = 6;

  // Reference: everything in one queue. Children all land at t=1000; the
  // first two each spawn a same-time grandchild.
  std::vector<Exec> seq;
  {
    Simulator sim;
    sim.ScheduleAt(1000, [&] {
      for (int i = 0; i < kChildren; ++i) {
        sim.Schedule(0, [&, i] {
          seq.push_back({sim.now(), sim.current_event_key(), "c" + std::to_string(i)});
          if (i < 2) {
            sim.Schedule(0, [&, i] {
              seq.push_back({sim.now(), sim.current_event_key(), "g" + std::to_string(i)});
            });
          }
        });
      }
    });
    sim.Run(2000);
  }
  ASSERT_EQ(seq.size(), static_cast<size_t>(kChildren + 2));
  // Pop order within a timestamp is key order — the invariant the sharded
  // merge relies on.
  EXPECT_TRUE(std::is_sorted(seq.begin(), seq.end(), [](const Exec& x, const Exec& y) {
    return x.t < y.t || (x.t == y.t && x.key < y.key);
  }));

  // Split layout: the parent runs in queue A and hands every odd child to
  // queue B, minting the key itself. Grandchildren are minted by whichever
  // queue runs their parent — their keys must still match the reference
  // because minting reads only the parent's key, not the queue.
  std::vector<Exec> a_log;
  std::vector<Exec> b_log;
  {
    Simulator a;
    Simulator b;
    auto child = [&](Simulator& home, std::vector<Exec>& log, int i) {
      return [&home, &log, i] {
        log.push_back({home.now(), home.current_event_key(), "c" + std::to_string(i)});
        if (i < 2) {
          home.Schedule(0, [&home, &log, i] {
            log.push_back({home.now(), home.current_event_key(), "g" + std::to_string(i)});
          });
        }
      };
    };
    a.ScheduleAt(1000, [&] {
      for (int i = 0; i < kChildren; ++i) {
        const TimeNs at = a.now();
        if (i % 2 == 0) {
          a.Schedule(0, child(a, a_log, i));
        } else {
          b.PushKeyed(at, a.MintKeyFor(at), child(b, b_log, i));
        }
      }
    });
    a.Run(2000);
    b.Run(2000);
  }
  std::vector<Exec> merged;
  merged.insert(merged.end(), a_log.begin(), a_log.end());
  merged.insert(merged.end(), b_log.begin(), b_log.end());
  std::sort(merged.begin(), merged.end(), [](const Exec& x, const Exec& y) {
    return x.t < y.t || (x.t == y.t && x.key < y.key);
  });
  ASSERT_EQ(merged.size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(merged[i].label, seq[i].label) << "tie order diverged at position " << i;
    EXPECT_EQ(merged[i].key, seq[i].key) << "key minting is layout-dependent at " << i;
  }
}

// --- --shards flag rules (src/harness/flags.cc) ---

TEST(ShardFlagsTest, ValidatesBudgetAndUnsafeCombinations) {
  ShardOptions shard;
  SweepOptions sweep;
  ObsOptions obs;
  std::string error;

  shard.shards = 0;
  EXPECT_FALSE(ValidateShardOptions(shard, sweep, obs, false, 8, &error));

  // shards=1 is always fine, whatever else is set.
  shard.shards = 1;
  obs.trace = true;
  EXPECT_TRUE(ValidateShardOptions(shard, sweep, obs, true, 1, &error));

  // Tracing composes with sharding (per-lane rings merged by (time, key)
  // at dump time); only emulation stays shard-unsafe.
  shard.shards = 2;
  EXPECT_TRUE(ValidateShardOptions(shard, sweep, obs, false, 8, &error));
  obs.trace = false;
  EXPECT_FALSE(ValidateShardOptions(shard, sweep, obs, true, 8, &error));
  EXPECT_NE(error.find("emulation"), std::string::npos);

  // Single run: S workers against the budget.
  EXPECT_TRUE(ValidateShardOptions(shard, sweep, obs, false, 2, &error));
  shard.shards = 4;
  EXPECT_FALSE(ValidateShardOptions(shard, sweep, obs, false, 2, &error));
  EXPECT_NE(error.find("oversubscribed"), std::string::npos);

  // Sweep: explicit jobs x shards must fit; --jobs=0 auto-sizes and passes.
  sweep.axes = "load=0.3,0.5";
  sweep.jobs = 4;
  EXPECT_FALSE(ValidateShardOptions(shard, sweep, obs, false, 8, &error));
  sweep.jobs = 2;
  EXPECT_TRUE(ValidateShardOptions(shard, sweep, obs, false, 8, &error));
  sweep.jobs = 0;
  EXPECT_TRUE(ValidateShardOptions(shard, sweep, obs, false, 8, &error));
  // Auto-sizing caps jobs, not shards: S alone must still fit the budget.
  EXPECT_FALSE(ValidateShardOptions(shard, sweep, obs, false, 2, &error));
  EXPECT_EQ(ResolveSweepJobs(sweep, shard, 8), 2);
  EXPECT_EQ(ResolveSweepJobs(sweep, shard, 2), 1);  // never below one worker
  sweep.jobs = 3;
  EXPECT_EQ(ResolveSweepJobs(sweep, shard, 8), 3);  // explicit wins
}

}  // namespace
}  // namespace lcmp
