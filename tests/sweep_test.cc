// Tests for the declarative sweep API: the config field registry, the
// fluent builder, grid expansion order/labels, the JSON spec round trip,
// the --sweep-axes CLI syntax, and the string->enum parse helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.h"

namespace lcmp {
namespace {

// ---- field registry ----

TEST(FieldRegistryTest, AppliesAndReadsBackEveryKindOfField) {
  ExperimentConfig c;
  std::string error;
  EXPECT_TRUE(ApplyConfigField(&c, "policy", "redte", &error)) << error;
  EXPECT_EQ(c.policy, PolicyKind::kRedte);
  EXPECT_TRUE(ApplyConfigField(&c, "topo", "bso13", &error)) << error;
  EXPECT_EQ(c.topo, TopologyKind::kBso13);
  EXPECT_TRUE(ApplyConfigField(&c, "load", "0.75", &error)) << error;
  EXPECT_DOUBLE_EQ(c.load, 0.75);
  EXPECT_TRUE(ApplyConfigField(&c, "flows", "250", &error)) << error;
  EXPECT_EQ(c.num_flows, 250);
  EXPECT_TRUE(ApplyConfigField(&c, "emulation", "true", &error)) << error;
  EXPECT_TRUE(c.emulation_mode);
  EXPECT_TRUE(ApplyConfigField(&c, "horizon_ms", "500", &error)) << error;
  EXPECT_EQ(c.horizon, Milliseconds(500));
  EXPECT_TRUE(ApplyConfigField(&c, "lcmp.alpha", "7", &error)) << error;
  EXPECT_EQ(c.lcmp.alpha, 7);
  EXPECT_TRUE(ApplyConfigField(&c, "lcmp.flow_idle_timeout_us", "200", &error)) << error;
  EXPECT_EQ(c.lcmp.flow_idle_timeout, Microseconds(200));

  // GetConfigField returns the exact encoding ApplyConfigField accepts.
  for (const std::string& field :
       {std::string("policy"), std::string("topo"), std::string("load"),
        std::string("flows"), std::string("emulation"), std::string("horizon_ms"),
        std::string("lcmp.alpha"), std::string("lcmp.flow_idle_timeout_us")}) {
    std::string encoded;
    ASSERT_TRUE(GetConfigField(c, field, &encoded)) << field;
    ExperimentConfig copy;
    ASSERT_TRUE(ApplyConfigField(&copy, field, encoded, &error)) << field << ": " << error;
    std::string re_encoded;
    ASSERT_TRUE(GetConfigField(copy, field, &re_encoded));
    EXPECT_EQ(encoded, re_encoded) << field;
  }
}

TEST(FieldRegistryTest, RejectsUnknownFieldsWithKnownList) {
  ExperimentConfig c;
  std::string error;
  EXPECT_FALSE(ApplyConfigField(&c, "no_such_field", "1", &error));
  EXPECT_NE(error.find("unknown config field 'no_such_field'"), std::string::npos) << error;
  EXPECT_NE(error.find("load"), std::string::npos) << error;     // lists known fields
  EXPECT_NE(error.find("overrides"), std::string::npos) << error;
  std::string out;
  EXPECT_FALSE(GetConfigField(c, "no_such_field", &out));
}

TEST(FieldRegistryTest, RejectsMalformedValuesNamingTheField) {
  ExperimentConfig c;
  std::string error;
  EXPECT_FALSE(ApplyConfigField(&c, "flows", "many", &error));
  EXPECT_NE(error.find("field 'flows'"), std::string::npos) << error;
  EXPECT_FALSE(ApplyConfigField(&c, "load", "fast", &error));
  EXPECT_NE(error.find("field 'load'"), std::string::npos) << error;
  EXPECT_FALSE(ApplyConfigField(&c, "emulation", "maybe", &error));
  EXPECT_NE(error.find("true|false"), std::string::npos) << error;
  EXPECT_FALSE(ApplyConfigField(&c, "seed", "-1", &error));
  EXPECT_NE(error.find("unsigned"), std::string::npos) << error;
  EXPECT_FALSE(ApplyConfigField(&c, "policy", "best", &error));
  EXPECT_NE(error.find("ecmp"), std::string::npos) << error;  // lists accepted tokens
}

TEST(FieldRegistryTest, OverridesAppliesTokenList) {
  ExperimentConfig c;
  std::string error;
  ASSERT_TRUE(
      ApplyConfigField(&c, "overrides", "lcmp.alpha=0 lcmp.beta=3 policy=ecmp", &error))
      << error;
  EXPECT_EQ(c.lcmp.alpha, 0);
  EXPECT_EQ(c.lcmp.beta, 3);
  EXPECT_EQ(c.policy, PolicyKind::kEcmp);
  // Empty list is the baseline (no-op).
  ExperimentConfig untouched;
  EXPECT_TRUE(ApplyConfigField(&untouched, "overrides", "", &error));
  // Malformed and unknown tokens are rejected.
  EXPECT_FALSE(ApplyConfigField(&c, "overrides", "alpha", &error));
  EXPECT_NE(error.find("field=value"), std::string::npos) << error;
  EXPECT_FALSE(ApplyConfigField(&c, "overrides", "bogus=1", &error));
  EXPECT_NE(error.find("unknown config field"), std::string::npos) << error;
}

TEST(FieldRegistryTest, KnownConfigFieldsCoversBuilderAxes) {
  const std::vector<std::string> fields = KnownConfigFields();
  for (const char* expected : {"policy", "load", "seed", "workload", "cc", "topo"}) {
    EXPECT_NE(std::find(fields.begin(), fields.end(), expected), fields.end()) << expected;
  }
}

// ---- expansion ----

TEST(SweepExpandTest, FirstAxisVariesSlowest) {
  SweepSpec spec;
  spec.Loads({0.2, 0.4}).Policies({PolicyKind::kEcmp, PolicyKind::kLcmp});
  std::vector<SweepRun> runs;
  std::string error;
  ASSERT_TRUE(ExpandSweep(spec, &runs, &error)) << error;
  ASSERT_EQ(runs.size(), 4u);
  // Legacy RunPolicyLoadSweep order: load-major, policy-minor.
  EXPECT_DOUBLE_EQ(runs[0].config.load, 0.2);
  EXPECT_EQ(runs[0].config.policy, PolicyKind::kEcmp);
  EXPECT_DOUBLE_EQ(runs[1].config.load, 0.2);
  EXPECT_EQ(runs[1].config.policy, PolicyKind::kLcmp);
  EXPECT_DOUBLE_EQ(runs[2].config.load, 0.4);
  EXPECT_EQ(runs[2].config.policy, PolicyKind::kEcmp);
  EXPECT_DOUBLE_EQ(runs[3].config.load, 0.4);
  EXPECT_EQ(runs[3].config.policy, PolicyKind::kLcmp);
  EXPECT_EQ(runs[1].label, "load=0.2 policy=LCMP");
  ASSERT_EQ(runs[1].cell.size(), 2u);
  EXPECT_EQ(runs[1].cell[0], (std::pair<std::string, std::string>{"load", "0.2"}));
  EXPECT_EQ(runs[1].cell[1], (std::pair<std::string, std::string>{"policy", "LCMP"}));
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
  }
}

TEST(SweepExpandTest, NoAxesExpandsToOneBaseRun) {
  ExperimentConfig base;
  base.num_flows = 42;
  std::vector<SweepRun> runs;
  std::string error;
  ASSERT_TRUE(ExpandSweep(SweepSpec(base), &runs, &error)) << error;
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].label, "base");
  EXPECT_EQ(runs[0].config.num_flows, 42);
  EXPECT_TRUE(runs[0].cell.empty());
}

TEST(SweepExpandTest, VariantsKeepLabelsAndBaseline) {
  ExperimentConfig base;
  base.policy = PolicyKind::kLcmp;
  SweepSpec spec(base);
  spec.Variants({{"lcmp.alpha=0", "rm-alpha"}, {"", "full"}});
  std::vector<SweepRun> runs;
  std::string error;
  ASSERT_TRUE(ExpandSweep(spec, &runs, &error)) << error;
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].label, "rm-alpha");
  EXPECT_EQ(runs[0].config.lcmp.alpha, 0);
  EXPECT_EQ(runs[1].label, "full");
  EXPECT_EQ(runs[1].config.lcmp.alpha, base.lcmp.alpha);
}

TEST(SweepExpandTest, RejectsBadAxes) {
  std::vector<SweepRun> runs;
  std::string error;

  SweepSpec unknown;
  unknown.Axis("velocity", {"1"});
  EXPECT_FALSE(ExpandSweep(unknown, &runs, &error));
  EXPECT_NE(error.find("unknown config field 'velocity'"), std::string::npos) << error;

  SweepSpec bad_value;
  bad_value.Axis("policy", {"ecmp", "bogus"});
  EXPECT_FALSE(ExpandSweep(bad_value, &runs, &error));
  EXPECT_NE(error.find("axis 'policy'"), std::string::npos) << error;
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;

  SweepSpec empty_axis;
  empty_axis.Axis("load", {});
  EXPECT_FALSE(ExpandSweep(empty_axis, &runs, &error));
  EXPECT_NE(error.find("no values"), std::string::npos) << error;
}

TEST(SweepExpandTest, RejectsGridsOverTheCap) {
  SweepSpec spec;
  std::vector<std::string> seeds;
  for (int i = 0; i < 101; ++i) {
    seeds.push_back(std::to_string(i));
  }
  spec.Axis("seed", seeds);
  spec.Axis("flows", seeds);
  spec.Axis("hosts_per_dc", seeds);  // 101^3 > 1e6
  std::vector<SweepRun> runs;
  std::string error;
  EXPECT_FALSE(ExpandSweep(spec, &runs, &error));
  EXPECT_NE(error.find("1e6"), std::string::npos) << error;
}

// ---- JSON spec ----

TEST(SweepJsonTest, RoundTripsBaseAxesAndLabels) {
  ExperimentConfig base;
  base.topo = TopologyKind::kBso13;
  base.num_flows = 77;
  base.load = 0.55;
  SweepSpec spec(base);
  spec.Policies({PolicyKind::kEcmp, PolicyKind::kLcmp})
      .Seeds({1, 2})
      .Variants({{"lcmp.alpha=0", "rm-alpha"}, {"", "full"}});

  const std::string text = SweepSpecToJson(spec);
  SweepSpec parsed;
  std::string error;
  ASSERT_TRUE(ParseSweepSpecJson(text, &parsed, &error)) << error << "\n" << text;

  std::string encoded;
  ASSERT_TRUE(GetConfigField(parsed.base, "topo", &encoded));
  EXPECT_EQ(encoded, "bso13");
  EXPECT_EQ(parsed.base.num_flows, 77);
  EXPECT_DOUBLE_EQ(parsed.base.load, 0.55);

  std::vector<SweepRun> original_runs;
  std::vector<SweepRun> parsed_runs;
  ASSERT_TRUE(ExpandSweep(spec, &original_runs, &error)) << error;
  ASSERT_TRUE(ExpandSweep(parsed, &parsed_runs, &error)) << error;
  ASSERT_EQ(original_runs.size(), parsed_runs.size());
  for (size_t i = 0; i < original_runs.size(); ++i) {
    EXPECT_EQ(original_runs[i].label, parsed_runs[i].label) << i;
    EXPECT_EQ(original_runs[i].config.policy, parsed_runs[i].config.policy) << i;
    EXPECT_EQ(original_runs[i].config.seed, parsed_runs[i].config.seed) << i;
    EXPECT_EQ(original_runs[i].config.lcmp.alpha, parsed_runs[i].config.lcmp.alpha) << i;
  }
}

TEST(SweepJsonTest, AcceptsBareNumbersAndObjectsAsAxisValues) {
  const std::string text = R"({
    "base": {"flows": 30},
    "axes": [
      {"field": "load", "values": [0.3, 0.5]},
      {"field": "policy", "values": [{"label": "LCMP", "value": "lcmp"}]}
    ]
  })";
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpecJson(text, &spec, &error)) << error;
  EXPECT_EQ(spec.base.num_flows, 30);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].values[1].value, "0.5");
  EXPECT_EQ(spec.axes[1].values[0].Label(), "LCMP");
}

TEST(SweepJsonTest, RejectsUnknownKeysAndFields) {
  SweepSpec spec;
  std::string error;
  EXPECT_FALSE(ParseSweepSpecJson(R"({"bases": {}})", &spec, &error));
  EXPECT_NE(error.find("unknown top-level key"), std::string::npos) << error;
  EXPECT_FALSE(ParseSweepSpecJson(R"({"base": {"velocity": "1"}})", &spec, &error));
  EXPECT_NE(error.find("unknown config field"), std::string::npos) << error;
  EXPECT_FALSE(
      ParseSweepSpecJson(R"({"axes": [{"field": "velocity", "values": ["1"]}]})", &spec, &error));
  EXPECT_NE(error.find("unknown config field"), std::string::npos) << error;
  EXPECT_FALSE(ParseSweepSpecJson("{", &spec, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SweepJsonTest, FileRoundTrip) {
  SweepSpec spec;
  spec.base.num_flows = 12;
  spec.Loads({0.3});
  const std::string path = ::testing::TempDir() + "/sweep_spec_roundtrip.json";
  std::string error;
  ASSERT_TRUE(SaveSweepSpecFile(path, spec, &error)) << error;
  SweepSpec loaded;
  ASSERT_TRUE(LoadSweepSpecFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.base.num_flows, 12);
  ASSERT_EQ(loaded.axes.size(), 1u);
  EXPECT_EQ(loaded.axes[0].field, "load");
  EXPECT_FALSE(LoadSweepSpecFile(path + ".missing", &loaded, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
  std::remove(path.c_str());
}

// ---- CLI axis syntax ----

TEST(SweepAxesTest, ParsesSemicolonSeparatedAxes) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepAxes("load=0.3,0.5;policy=ecmp,lcmp;seed=1,2;", &spec, &error)) << error;
  ASSERT_EQ(spec.axes.size(), 3u);
  EXPECT_EQ(spec.axes[0].field, "load");
  ASSERT_EQ(spec.axes[0].values.size(), 2u);
  EXPECT_EQ(spec.axes[0].values[1].value, "0.5");
  EXPECT_EQ(spec.axes[1].field, "policy");
  EXPECT_EQ(spec.axes[2].field, "seed");
}

TEST(SweepAxesTest, RejectsMalformedInput) {
  SweepSpec spec;
  std::string error;
  EXPECT_FALSE(ParseSweepAxes("load", &spec, &error));
  EXPECT_NE(error.find("field=v1,v2"), std::string::npos) << error;
  EXPECT_FALSE(ParseSweepAxes("velocity=1", &spec, &error));
  EXPECT_NE(error.find("unknown config field"), std::string::npos) << error;
  EXPECT_FALSE(ParseSweepAxes("load=0.3,,0.5", &spec, &error));
  EXPECT_NE(error.find("empty value"), std::string::npos) << error;
}

// ---- string -> enum parse helpers ----

TEST(ParseKindTest, AcceptsEveryTokenAndListsThemOnFailure) {
  std::string error;
  PolicyKind policy;
  for (const PolicyKind kind : {PolicyKind::kEcmp, PolicyKind::kWcmp, PolicyKind::kUcmp,
                                PolicyKind::kRedte, PolicyKind::kLcmp}) {
    ASSERT_TRUE(ParsePolicyKind(PolicyKindToken(kind), &policy, &error)) << error;
    EXPECT_EQ(policy, kind);
  }
  policy = PolicyKind::kLcmp;
  EXPECT_FALSE(ParsePolicyKind("ECMP", &policy, &error));  // tokens are lower-case
  EXPECT_EQ(policy, PolicyKind::kLcmp);                    // target untouched on failure
  EXPECT_NE(error.find("ecmp"), std::string::npos) << error;
  EXPECT_NE(error.find("lcmp"), std::string::npos) << error;

  TopologyKind topo;
  ASSERT_TRUE(ParseTopologyKind("testbed8-sym", &topo, &error)) << error;
  EXPECT_EQ(topo, TopologyKind::kTestbed8Sym);
  PairingKind pairing;
  ASSERT_TRUE(ParsePairingKind("endpoints-oneway", &pairing, &error)) << error;
  EXPECT_EQ(pairing, PairingKind::kEndpointOneWay);
  WorkloadKind workload;
  ASSERT_TRUE(ParseWorkloadKind("fbhdp", &workload, &error)) << error;
  EXPECT_EQ(workload, WorkloadKind::kFbHdp);
  SegmentCcSpec cc;
  ASSERT_TRUE(SegmentCcSpec::Parse("timely", &cc, &error)) << error;
  EXPECT_EQ(cc.inter, "timely");
  EXPECT_EQ(cc.intra, "timely");
  EXPECT_TRUE(cc.uniform());
  ASSERT_TRUE(SegmentCcSpec::Parse("lcp/dcqcn", &cc, &error)) << error;
  EXPECT_EQ(cc.inter, "lcp");
  EXPECT_EQ(cc.intra, "dcqcn");
  EXPECT_FALSE(cc.uniform());
  EXPECT_EQ(cc.Token(), "lcp/dcqcn");
  EXPECT_FALSE(SegmentCcSpec::Parse("cubic", &cc, &error));
  EXPECT_NE(error.find("dcqcn"), std::string::npos) << error;
}

TEST(ConfigFieldTest, SegmentCcFieldsApplyAndEcho) {
  ExperimentConfig config;
  std::string error;
  ASSERT_TRUE(ApplyConfigField(&config, "cc", "lcp/dcqcn", &error)) << error;
  EXPECT_EQ(config.cc.inter, "lcp");
  EXPECT_EQ(config.cc.intra, "dcqcn");
  std::string echoed;
  ASSERT_TRUE(GetConfigField(config, "cc", &echoed));
  EXPECT_EQ(echoed, "lcp/dcqcn");
  // Per-segment selectors are write-only: they apply but never echo (the
  // composite "cc" field already carries the state).
  ASSERT_TRUE(ApplyConfigField(&config, "cc.intra", "timely", &error)) << error;
  EXPECT_EQ(config.cc.intra, "timely");
  EXPECT_FALSE(GetConfigField(config, "cc.intra", &echoed));
  // Per-segment tuning fields round-trip through the registry.
  ASSERT_TRUE(ApplyConfigField(&config, "cc.inter.lcp.gain", "0.5", &error)) << error;
  EXPECT_DOUBLE_EQ(config.cc_inter.lcp.gain, 0.5);
  ASSERT_TRUE(GetConfigField(config, "cc.inter.lcp.gain", &echoed));
  EXPECT_EQ(echoed, "0.5");
}

}  // namespace
}  // namespace lcmp
