// Flight recorder semantics: ring wrap-around, flow/node filters, the
// LCMP_TRACE enable gate, dump formatting, and the crash path that dumps the
// ring to stderr when an LCMP_CHECK fails.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "obs/trace.h"

namespace lcmp {
namespace obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder& rec = FlightRecorder::Instance();
    rec.Configure(8);
    rec.SetFilters(-1, kInvalidNode);
    rec.Enable(true);
  }
  void TearDown() override {
    FlightRecorder& rec = FlightRecorder::Instance();
    rec.Enable(false);
    rec.SetFilters(-1, kInvalidNode);
    rec.Clear();
  }
};

TEST_F(FlightRecorderTest, RingOverwritesOldestOnWrap) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Configure(4);
  for (int i = 0; i < 6; ++i) {
    rec.Record(TraceEv::kEnqueue, /*ts=*/i, /*flow=*/static_cast<FlowId>(i), /*node=*/1,
               /*port=*/0, /*aux=*/0);
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 6u);
  // Oldest-first iteration: records 0 and 1 were overwritten.
  EXPECT_EQ(rec.at(0).ts, 2);
  EXPECT_EQ(rec.at(3).ts, 5);
}

TEST_F(FlightRecorderTest, FlowAndNodeFiltersAreOrSemantics) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.SetFilters(/*flow_filter=*/42, /*node_filter=*/9);
  rec.Record(TraceEv::kEnqueue, 1, /*flow=*/42, /*node=*/3, 0, 0);  // flow match
  rec.Record(TraceEv::kEnqueue, 2, /*flow=*/5, /*node=*/9, 0, 0);   // node match
  rec.Record(TraceEv::kEnqueue, 3, /*flow=*/5, /*node=*/3, 0, 0);   // neither: dropped
  // Flow-less events (PFC pause, link state) pass via the node filter.
  rec.Record(TraceEv::kPfcPause, 4, /*flow=*/0, /*node=*/9, 0, 0);
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.at(0).ts, 1);
  EXPECT_EQ(rec.at(1).ts, 2);
  EXPECT_EQ(rec.at(2).ev, TraceEv::kPfcPause);
}

TEST_F(FlightRecorderTest, NoFiltersRecordsEverything) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Record(TraceEv::kDrop, 1, 1, 1, 0, 0);
  rec.Record(TraceEv::kEcnMark, 2, 2, 2, 0, 0);
  EXPECT_EQ(rec.size(), 2u);
}

TEST_F(FlightRecorderTest, TraceMacroIsGatedByEnable) {
  FlightRecorder& rec = FlightRecorder::Instance();
  LCMP_TRACE(TraceEv::kEnqueue, 1, 1, 1, 0, 0);
  EXPECT_EQ(rec.size(), 1u);
  rec.Enable(false);
  LCMP_TRACE(TraceEv::kEnqueue, 2, 2, 2, 0, 0);
  EXPECT_EQ(rec.size(), 1u) << "disabled LCMP_TRACE must record nothing";
}

TEST_F(FlightRecorderTest, DumpWritesCsvRowsOldestFirst) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Record(TraceEv::kEnqueue, 100, 7, 2, 1, 4096);
  rec.Record(TraceEv::kDrop, 200, 7, 3, 0, 8192);
  const std::string path = ::testing::TempDir() + "/flight_recorder_dump.csv";
  ASSERT_TRUE(rec.DumpToFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    content += buf;
  }
  std::fclose(f);
  EXPECT_EQ(content.rfind("time_ns,event,flow,node,port,aux,shard,key\n", 0), 0u);
  EXPECT_NE(content.find("100,enqueue,7,2,1,4096"), std::string::npos);
  EXPECT_NE(content.find("200,drop,7,3,0,8192"), std::string::npos);
  EXPECT_LT(content.find("100,enqueue"), content.find("200,drop"));
}

TEST_F(FlightRecorderTest, ClearDropsRecordsButKeepsCapacity) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Record(TraceEv::kEnqueue, 1, 1, 1, 0, 0);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.capacity(), 8u);
}

using FlightRecorderDeathTest = FlightRecorderTest;

TEST_F(FlightRecorderDeathTest, CheckFailureDumpsRingToStderr) {
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.Record(TraceEv::kDrop, 777, 13, 4, 2, 555);
  // Enable(true) installed the check-failure hook: the trap must be preceded
  // by the ring contents on stderr so crashes ship their trailing events.
  EXPECT_DEATH({ LCMP_CHECK(1 == 2); }, "777,drop,13,4,2,555");
}

}  // namespace
}  // namespace obs
}  // namespace lcmp
