// Tests for the baseline multipath policies: ECMP, WCMP, UCMP, RedTE.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "routing/ecmp.h"
#include "routing/redte.h"
#include "routing/ucmp.h"
#include "routing/wcmp.h"
#include "sim/network.h"
#include "topo/builders.h"

namespace lcmp {
namespace {

Packet MakeData(NodeId src, NodeId dst, uint32_t nonce) {
  Packet p;
  p.type = PacketType::kData;
  p.src = src;
  p.dst = dst;
  p.key = FlowKey{src, dst, nonce, 4791, 17};
  p.flow_id = FlowIdOf(p.key);
  p.size_bytes = 1000;
  return p;
}

struct Fixture {
  explicit Fixture(Graph graph_in, PolicyFactory factory)
      : graph(std::move(graph_in)), net(graph, NetworkConfig{}, std::move(factory)) {}
  SwitchNode& Dci(DcId dc) { return net.switch_node(graph.DciOfDc(dc)); }
  Graph graph;
  Network net;
};

TEST(EcmpTest, SpreadsFlowsUniformly) {
  Fixture f(BuildDumbbell(4, 1, Gbps(100), Milliseconds(1)),
            [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  std::map<PortIndex, int> counts;
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(1)[0];
  for (uint32_t i = 0; i < 2000; ++i) {
    ++counts[sw.policy()->SelectPort(sw, MakeData(src, dst, i), cands)];
  }
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [port, n] : counts) {
    EXPECT_GT(n, 350);
    EXPECT_LT(n, 650);
  }
}

TEST(EcmpTest, SameFlowSamePort) {
  Fixture f(BuildDumbbell(4, 1, Gbps(100), Milliseconds(1)),
            [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  const Packet p = MakeData(f.graph.HostsInDc(0)[0], f.graph.HostsInDc(1)[0], 7);
  const PortIndex first = sw.policy()->SelectPort(sw, p, cands);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sw.policy()->SelectPort(sw, p, cands), first);
  }
}

TEST(EcmpTest, SkipsDownPorts) {
  Fixture f(BuildDumbbell(3, 1, Gbps(100), Milliseconds(1)),
            [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  sw.port(cands[0].port).SetUp(false);
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(1)[0];
  for (uint32_t i = 0; i < 100; ++i) {
    const PortIndex p = sw.policy()->SelectPort(sw, MakeData(src, dst, i), cands);
    EXPECT_NE(p, cands[0].port);
    EXPECT_NE(p, kInvalidPort);
  }
}

TEST(EcmpTest, AllDownReturnsInvalid) {
  Fixture f(BuildDumbbell(2, 1, Gbps(100), Milliseconds(1)),
            [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  for (const auto& c : cands) {
    sw.port(c.port).SetUp(false);
  }
  const Packet p = MakeData(f.graph.HostsInDc(0)[0], f.graph.HostsInDc(1)[0], 1);
  EXPECT_EQ(sw.policy()->SelectPort(sw, p, cands), kInvalidPort);
}

TEST(WcmpTest, WeightsFollowCapacity) {
  // Testbed-8: capacities 200/200/100/100/40/40 -> the 200G routes should
  // carry roughly 5x the flows of the 40G routes.
  Fixture f(BuildTestbed8({}), [](SwitchNode&) { return std::make_unique<WcmpPolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(7);
  std::map<PortIndex, int> counts;
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(7)[0];
  for (uint32_t i = 0; i < 6800; ++i) {
    ++counts[sw.policy()->SelectPort(sw, MakeData(src, dst, i), cands)];
  }
  // Expected shares ~ 200:200:100:100:40:40 out of 680.
  const int n200 = counts[cands[0].port];
  const int n40 = counts[cands[5].port];
  EXPECT_GT(n200, 3 * n40);
}

TEST(UcmpTest, ConcentratesOnHighCapacity) {
  // The Fig. 1 motivation: UCMP's capacity-centric cost sends everything to
  // the two 200G routes and starves the 40G low-delay routes.
  Fixture f(BuildTestbed8({}), [](SwitchNode&) { return std::make_unique<UcmpPolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(7);
  std::map<PortIndex, int> counts;
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(7)[0];
  for (uint32_t i = 0; i < 1000; ++i) {
    ++counts[sw.policy()->SelectPort(sw, MakeData(src, dst, i), cands)];
  }
  // All flows land on the two 200G candidates (indices 0 and 1).
  EXPECT_EQ(counts[cands[0].port] + counts[cands[1].port], 1000);
  EXPECT_GT(counts[cands[0].port], 300);  // tie-break spreads across both
  EXPECT_EQ(counts[cands[4].port], 0);
  EXPECT_EQ(counts[cands[5].port], 0);
}

TEST(UcmpTest, QueueWaitBreaksConcentrationEventually) {
  Fixture f(BuildTestbed8({}), [](SwitchNode&) { return std::make_unique<UcmpPolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(7);
  // Pile multi-MB of queue onto both 200G ports.
  for (int idx : {0, 1}) {
    for (int i = 0; i < 4000; ++i) {
      Packet filler = MakeData(0, f.graph.HostsInDc(7)[0], 500'000 + idx * 10'000 + i);
      filler.size_bytes = 4096;
      sw.port(cands[static_cast<size_t>(idx)].port).Enqueue(filler);
    }
  }
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(7)[0];
  int off_200g = 0;
  for (uint32_t i = 0; i < 100; ++i) {
    const PortIndex p = sw.policy()->SelectPort(sw, MakeData(src, dst, i), cands);
    if (p != cands[0].port && p != cands[1].port) {
      ++off_200g;
    }
  }
  EXPECT_GT(off_200g, 0);
}

TEST(UcmpTest, StickyAcrossCostChanges) {
  Fixture f(BuildTestbed8({}), [](SwitchNode&) { return std::make_unique<UcmpPolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(7);
  const Packet p = MakeData(f.graph.HostsInDc(0)[0], f.graph.HostsInDc(7)[0], 3);
  const PortIndex first = sw.policy()->SelectPort(sw, p, cands);
  // Congest the chosen port; the established flow must stay.
  for (int i = 0; i < 4000; ++i) {
    Packet filler = MakeData(0, f.graph.HostsInDc(7)[0], 700'000 + i);
    filler.size_bytes = 4096;
    sw.port(first).Enqueue(filler);
  }
  EXPECT_EQ(sw.policy()->SelectPort(sw, p, cands), first);
}

TEST(RedteTest, InitialSplitFollowsCapacity) {
  Fixture f(BuildTestbed8({}), [](SwitchNode&) { return std::make_unique<RedtePolicy>(); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(7);
  std::map<PortIndex, int> counts;
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(7)[0];
  for (uint32_t i = 0; i < 2560; ++i) {
    ++counts[sw.policy()->SelectPort(sw, MakeData(src, dst, i), cands)];
  }
  // Capacity-weighted split: 200G routes get more than 40G routes.
  EXPECT_GT(counts[cands[0].port], counts[cands[5].port]);
}

TEST(RedteTest, ControlLoopIs100ms) {
  RedtePolicy p;
  EXPECT_EQ(p.tick_interval(), Milliseconds(100));
}

TEST(RedteTest, RebalancesTowardIdleLinks) {
  RedteConfig rcfg;
  rcfg.rebalance_min_gap = 0.001;  // tiny hysteresis so the test converges fast
  Fixture f(BuildDumbbell(2, 1, Gbps(100), Milliseconds(1)),
            [rcfg](SwitchNode&) { return std::make_unique<RedtePolicy>(rcfg); });
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(1)[0];
  // Initialize the group.
  sw.policy()->SelectPort(sw, MakeData(src, dst, 0), cands);
  // Artificially load candidate 0's port and tick the control loop several
  // times: the split should shift toward candidate 1, biasing future picks.
  std::map<PortIndex, int> before, after;
  for (uint32_t i = 0; i < 512; ++i) {
    ++before[sw.policy()->SelectPort(sw, MakeData(src, dst, 10'000 + i), cands)];
  }
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 2000; ++i) {
      Packet filler = MakeData(src, dst, 1'000'000u + static_cast<uint32_t>(round * 2000 + i));
      filler.size_bytes = 4096;
      sw.port(cands[0].port).Enqueue(filler);
    }
    f.net.sim().Schedule(Milliseconds(100), [] {});
    f.net.sim().Run();
    sw.policy()->OnTick(sw);
  }
  for (uint32_t i = 0; i < 512; ++i) {
    ++after[sw.policy()->SelectPort(sw, MakeData(src, dst, 20'000 + i), cands)];
  }
  EXPECT_GT(after[cands[1].port], before[cands[1].port]);
}

}  // namespace
}  // namespace lcmp
