// Fault-plan tests (src/fault/): the plan text grammar (parse, round-trip,
// line-numbered errors), the AllClearTime symbolic replay, and the seeded
// chaos generator's contracts — (seed, options, graph) fully determines the
// plan, every fault carries a repair, and keep_one_path never schedules a
// window where a DC pair loses its last inter-DC link.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "topo/builders.h"

namespace lcmp {
namespace {

// Two DCs, three parallel 100G links, two hosts per DC: the smallest graph
// where dci=<a>:<b>#k targets and keep_one_path are both meaningful.
Graph Dumbbell() {
  return BuildDumbbell(/*parallel_links=*/3, /*hosts_per_dc=*/2, Gbps(100), Milliseconds(5));
}

NodeId SomeHost(const Graph& g) {
  for (NodeId id = 0; id < g.num_vertices(); ++id) {
    if (g.vertex(id).kind == VertexKind::kHost) {
      return id;
    }
  }
  return kInvalidNode;
}

// Inter-DC links ordered by graph link index (what dci=<a>:<b>#k selects).
std::vector<int> InterDcLinks(const Graph& g) {
  std::vector<int> out;
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    if (g.vertex(l.a).kind == VertexKind::kDciSwitch &&
        g.vertex(l.b).kind == VertexKind::kDciSwitch && g.vertex(l.a).dc != g.vertex(l.b).dc) {
      out.push_back(li);
    }
  }
  return out;
}

TEST(FaultPlanParseTest, ParsesEveryActionAndTargetForm) {
  const Graph g = Dumbbell();
  const NodeId dci0 = g.DciOfDc(0);
  const std::vector<int> inter = InterDcLinks(g);
  ASSERT_EQ(inter.size(), 3u);
  const std::string text =
      "# every action, out of order on purpose\n"
      "9ms   link-up    link=" +
      std::to_string(inter[0]) +
      "\n"
      "3ms   link-down  dci=0:1#0   # same link, dci form\n"
      "2ms   flap       dci=0:1#2 period=500us count=6\n"
      "12ms  switch-up  node=" +
      std::to_string(dci0) +
      "\n"
      "1ms   switch-down dc=0\n"
      "4ms   degrade    link=1 rate=0.5 delay=2ms loss=0.001\n"
      "10ms  restore    link=1\n"
      "5ms   telemetry-outage duration=30ms\n";

  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(text, g, &plan, &error)) << error;
  ASSERT_EQ(plan.size(), 8u);
  // Sorted by time regardless of file order.
  EXPECT_TRUE(std::is_sorted(plan.events.begin(), plan.events.end(),
                             [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; }));

  EXPECT_EQ(plan.events[0].kind, FaultKind::kSwitchDown);
  EXPECT_EQ(plan.events[0].node, dci0);

  const FaultEvent& flap = plan.events[1];
  EXPECT_EQ(flap.kind, FaultKind::kLinkFlap);
  EXPECT_EQ(flap.flap_period, Microseconds(500));
  EXPECT_EQ(flap.flap_count, 6);

  // dci=0:1#0 resolves to the lowest-indexed parallel link (same link the
  // link-up line names by index), #2 to the highest.
  const FaultEvent& down = plan.events[2];
  EXPECT_EQ(down.kind, FaultKind::kLinkDown);
  EXPECT_EQ(down.at, Milliseconds(3));
  EXPECT_EQ(down.link_idx, inter[0]);
  EXPECT_EQ(flap.link_idx, inter[2]);

  const FaultEvent& degrade = plan.events[3];
  EXPECT_EQ(degrade.kind, FaultKind::kDegrade);
  EXPECT_DOUBLE_EQ(degrade.degrade.rate_factor, 0.5);
  EXPECT_EQ(degrade.degrade.extra_delay_ns, Milliseconds(2));
  EXPECT_DOUBLE_EQ(degrade.degrade.loss_rate, 0.001);

  EXPECT_EQ(plan.events[4].kind, FaultKind::kTelemetryOutage);
  EXPECT_EQ(plan.events[4].duration, Milliseconds(30));
}

TEST(FaultPlanParseTest, ToStringRoundTrips) {
  const Graph g = Dumbbell();
  const std::string text =
      "3ms link-down link=0\n"
      "9ms link-up link=0\n"
      "2ms flap link=2 period=500us count=4\n"
      "4ms degrade link=1 rate=0.25 delay=750us loss=0.002\n"
      "10ms restore link=1\n"
      "5ms telemetry-outage duration=30ms\n";
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(text, g, &plan, &error)) << error;

  FaultPlan reparsed;
  ASSERT_TRUE(ParseFaultPlan(plan.ToString(), g, &reparsed, &error)) << error;
  EXPECT_EQ(plan.ToString(), reparsed.ToString());
  EXPECT_EQ(plan.size(), reparsed.size());
  EXPECT_EQ(plan.AllClearTime(), reparsed.AllClearTime());
}

TEST(FaultPlanParseTest, RejectsMalformedInputWithLineNumbers) {
  const Graph g = Dumbbell();
  const struct {
    const char* text;
    const char* expect_in_error;
  } cases[] = {
      {"3xs link-down link=0", "bad time"},
      {"3ms frobnicate link=0", "unknown action"},
      {"3ms link-down link=999", "out of range"},
      {"3ms link-down", "missing link target"},
      {"3ms link-down dci=0:9", "cannot resolve"},
      {"3ms flap link=0 count=4", "period"},
      {"3ms flap link=0 period=1ms count=0", "count"},
      {"3ms degrade link=0", "at least one of"},
      {"3ms degrade link=0 rate=1.5", "rate"},
      {"3ms telemetry-outage", "duration"},
      {"3ms switch-down", "missing switch target"},
      {"3ms link-down link", "key=value"},
      {"3ms", "missing action"},
  };
  for (const auto& c : cases) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(ParseFaultPlan(c.text, g, &plan, &error)) << c.text;
    EXPECT_NE(error.find("line 1"), std::string::npos) << c.text << " -> " << error;
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos) << c.text << " -> " << error;
  }

  // A host id is not a valid switch target.
  FaultPlan plan;
  std::string error;
  const std::string host_line = "3ms switch-down node=" + std::to_string(SomeHost(g));
  EXPECT_FALSE(ParseFaultPlan(host_line, g, &plan, &error));
  EXPECT_NE(error.find("not a switch"), std::string::npos) << error;

  // Errors carry the offending line's number, not line 1.
  const std::string multi =
      "1ms link-down link=0\n"
      "# comment\n"
      "2ms link-up nonsense\n";
  EXPECT_FALSE(ParseFaultPlan(multi, g, &plan, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(FaultPlanTest, AllClearTimeReplaysPairings) {
  FaultPlan plan;
  EXPECT_EQ(plan.AllClearTime(), 0);  // nothing to clear

  auto link_event = [](TimeNs at, FaultKind kind, int li) {
    FaultEvent e;
    e.at = at;
    e.kind = kind;
    e.link_idx = li;
    return e;
  };

  // Paired cut clears at the repair.
  plan.events = {link_event(Milliseconds(3), FaultKind::kLinkDown, 0),
                 link_event(Milliseconds(9), FaultKind::kLinkUp, 0)};
  EXPECT_EQ(plan.AllClearTime(), Milliseconds(9));

  // A permanent cut never clears.
  plan.events = {link_event(Milliseconds(3), FaultKind::kLinkDown, 0)};
  EXPECT_EQ(plan.AllClearTime(), -1);

  // Even toggle count ends up: clears at the last toggle.
  FaultEvent flap = link_event(Milliseconds(2), FaultKind::kLinkFlap, 0);
  flap.flap_period = Microseconds(500);
  flap.flap_count = 6;
  plan.events = {flap};
  EXPECT_EQ(plan.AllClearTime(), Milliseconds(2) + Microseconds(500) * 5);

  // Odd toggle count leaves the link down.
  flap.flap_count = 3;
  plan.events = {flap};
  EXPECT_EQ(plan.AllClearTime(), -1);

  // Degrade needs its restore.
  plan.events = {link_event(Milliseconds(4), FaultKind::kDegrade, 1)};
  EXPECT_EQ(plan.AllClearTime(), -1);
  plan.events.push_back(link_event(Milliseconds(10), FaultKind::kRestore, 1));
  EXPECT_EQ(plan.AllClearTime(), Milliseconds(10));

  // Telemetry outages clear on their own after `duration`.
  FaultEvent outage;
  outage.at = Milliseconds(5);
  outage.kind = FaultKind::kTelemetryOutage;
  outage.duration = Milliseconds(30);
  plan.events = {outage};
  EXPECT_EQ(plan.AllClearTime(), Milliseconds(35));
}

ChaosOptions SoakOptions(uint64_t seed) {
  ChaosOptions opts;
  opts.seed = seed;
  opts.faults_per_sec = 100;
  opts.window_start = Milliseconds(1);
  opts.window = Milliseconds(200);
  return opts;
}

TEST(ChaosPlanTest, SameSeedSamePlanDifferentSeedsDiverge) {
  const Graph g = BuildTestbed8(Testbed8Options{});
  const FaultPlan a = GenerateChaosPlan(g, SoakOptions(7));
  const FaultPlan b = GenerateChaosPlan(g, SoakOptions(7));
  const FaultPlan c = GenerateChaosPlan(g, SoakOptions(8));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(ChaosPlanTest, EveryFaultIsPairedAndInWindowAndOnValidTargets) {
  const Graph g = BuildTestbed8(Testbed8Options{});
  const ChaosOptions opts = SoakOptions(42);
  const FaultPlan plan = GenerateChaosPlan(g, opts);
  ASSERT_FALSE(plan.empty());

  // Every break has a repair: the plan eventually goes all-clear, and not
  // before the window even opens.
  EXPECT_GE(plan.AllClearTime(), opts.window_start);

  for (const FaultEvent& e : plan.events) {
    EXPECT_GE(e.at, opts.window_start);
    EXPECT_LE(e.at, opts.window_start + opts.window + opts.max_duration);
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kLinkFlap:
      case FaultKind::kDegrade:
      case FaultKind::kRestore: {
        ASSERT_GE(e.link_idx, 0);
        ASSERT_LT(e.link_idx, g.num_links());
        const LinkSpec& l = g.link(e.link_idx);
        EXPECT_EQ(g.vertex(l.a).kind, VertexKind::kDciSwitch);
        EXPECT_EQ(g.vertex(l.b).kind, VertexKind::kDciSwitch);
        EXPECT_NE(g.vertex(l.a).dc, g.vertex(l.b).dc) << "chaos must target inter-DC links";
        break;
      }
      case FaultKind::kSwitchDown:
      case FaultKind::kSwitchUp:
        // Only transit (host-less) DCs may lose a whole switch; failing an
        // endpoint DC would strand its flows rather than exercise failover.
        EXPECT_TRUE(g.HostsInDc(g.vertex(e.node).dc).empty());
        break;
      case FaultKind::kTelemetryOutage:
        EXPECT_GT(e.duration, 0);
        break;
    }
  }
}

TEST(ChaosPlanTest, KeepOnePathNeverCutsAllParallelLinks) {
  // On the dumbbell every inter-DC link is parallel between the same DCI
  // pair, so keep_one_path must leave at least one of the three up at all
  // times. Rebuild the outage intervals from the plan and sweep them.
  const Graph g = Dumbbell();
  ChaosOptions opts = SoakOptions(3);
  opts.faults_per_sec = 300;  // saturate: plenty of chances to violate
  const FaultPlan plan = GenerateChaosPlan(g, opts);
  ASSERT_FALSE(plan.empty());

  struct Interval {
    TimeNs start;
    TimeNs end;
  };
  std::map<int, std::vector<Interval>> outages;
  std::map<int, TimeNs> open;
  for (const FaultEvent& e : plan.events) {
    switch (e.kind) {
      case FaultKind::kLinkDown:
        open[e.link_idx] = e.at;
        break;
      case FaultKind::kLinkUp:
        ASSERT_TRUE(open.count(e.link_idx)) << "repair without a matching cut";
        outages[e.link_idx].push_back({open[e.link_idx], e.at});
        open.erase(e.link_idx);
        break;
      case FaultKind::kLinkFlap:
        // Conservatively treat the whole flap span as an outage.
        outages[e.link_idx].push_back({e.at, e.at + e.flap_period * (e.flap_count - 1)});
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(open.empty()) << "every cut must be repaired";

  auto down_at = [&](TimeNs t) {
    int n = 0;
    for (const auto& [li, v] : outages) {
      for (const Interval& i : v) {
        if (t >= i.start && t < i.end) {
          ++n;
          break;
        }
      }
    }
    return n;
  };
  int cuts = 0;
  for (const auto& [li, v] : outages) {
    for (const Interval& i : v) {
      ++cuts;
      EXPECT_LT(down_at(i.start), 3) << "all parallel links down at " << i.start;
    }
  }
  EXPECT_GT(cuts, 0);
}

}  // namespace
}  // namespace lcmp
