// Tests for the bounded flow cache (Sec. 3.1.2 / Sec. 4): lookup/refresh,
// idle expiry, GC, invalidation, capacity bound, memory accounting.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/flow_cache.h"

namespace lcmp {
namespace {

constexpr TimeNs kTimeout = Milliseconds(500);

TEST(FlowCacheTest, InsertThenLookup) {
  FlowCache cache(100, kTimeout);
  cache.Insert(42, 3, 1000);
  EXPECT_EQ(cache.Lookup(42, 2000), 3);
  EXPECT_EQ(cache.size(), 1);
}

TEST(FlowCacheTest, MissReturnsInvalid) {
  FlowCache cache(100, kTimeout);
  EXPECT_EQ(cache.Lookup(42, 0), kInvalidPort);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(FlowCacheTest, LookupRefreshesLastSeen) {
  FlowCache cache(100, kTimeout);
  cache.Insert(42, 3, 0);
  // Touch just before expiry, repeatedly: the flow stays alive far beyond
  // the original timeout because lastSeen refreshes.
  TimeNs t = 0;
  for (int i = 0; i < 10; ++i) {
    t += kTimeout - 1;
    EXPECT_EQ(cache.Lookup(42, t), 3);
  }
}

TEST(FlowCacheTest, ExpiresAfterIdleTimeout) {
  FlowCache cache(100, kTimeout);
  cache.Insert(42, 3, 0);
  EXPECT_EQ(cache.Lookup(42, kTimeout + 1), kInvalidPort);
  EXPECT_EQ(cache.size(), 0);
}

TEST(FlowCacheTest, GcEvictsOnlyIdleEntries) {
  FlowCache cache(100, kTimeout);
  cache.Insert(1, 0, 0);
  cache.Insert(2, 1, Milliseconds(400));
  const int evicted = cache.Gc(Milliseconds(600));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(cache.Lookup(1, Milliseconds(601)), kInvalidPort);
  EXPECT_EQ(cache.Lookup(2, Milliseconds(601)), 1);
}

TEST(FlowCacheTest, InvalidateRemovesEntry) {
  FlowCache cache(100, kTimeout);
  cache.Insert(42, 3, 0);
  cache.Invalidate(42);
  EXPECT_EQ(cache.Lookup(42, 1), kInvalidPort);
  EXPECT_EQ(cache.size(), 0);
  // Idempotent.
  cache.Invalidate(42);
  EXPECT_EQ(cache.size(), 0);
}

TEST(FlowCacheTest, ReinsertAfterInvalidate) {
  FlowCache cache(100, kTimeout);
  cache.Insert(42, 3, 0);
  cache.Invalidate(42);
  cache.Insert(42, 5, 10);
  EXPECT_EQ(cache.Lookup(42, 20), 5);
}

TEST(FlowCacheTest, UpdateExistingEntryKeepsSize) {
  FlowCache cache(100, kTimeout);
  cache.Insert(42, 3, 0);
  cache.Insert(42, 7, 1);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.Lookup(42, 2), 7);
}

TEST(FlowCacheTest, CapacityIsBounded) {
  FlowCache cache(64, kTimeout);
  for (FlowId f = 1; f <= 1000; ++f) {
    cache.Insert(f, static_cast<PortIndex>(f % 4), 0);
  }
  EXPECT_LE(cache.size(), 64);
  EXPECT_GT(cache.evictions(), 0);
}

TEST(FlowCacheTest, TombstonesKeepChainsReachable) {
  // Regression: deleting an entry in the middle of a probe chain must not
  // orphan later entries (they would be silently re-placed mid-flow).
  FlowCache cache(1000, kTimeout);
  std::vector<FlowId> flows;
  for (FlowId f = 1; f <= 500; ++f) {
    cache.Insert(f, static_cast<PortIndex>(f % 7), 0);
    flows.push_back(f);
  }
  // Invalidate every third flow, then every remaining flow must still hit.
  for (size_t i = 0; i < flows.size(); i += 3) {
    cache.Invalidate(flows[i]);
  }
  for (size_t i = 0; i < flows.size(); ++i) {
    const PortIndex expect =
        (i % 3 == 0) ? kInvalidPort : static_cast<PortIndex>(flows[i] % 7);
    EXPECT_EQ(cache.Lookup(flows[i], 1), expect) << "flow " << flows[i];
  }
}

TEST(FlowCacheTest, PaperMemoryAccounting) {
  // Sec. 4: 20 B/flow, 50k entries = ~1 MB of entry state.
  EXPECT_EQ(FlowCache::kBytesPerEntry, 20u);
  FlowCache cache(50'000, kTimeout);
  EXPECT_EQ(cache.MemoryBytes(), 50'000u * 20u);
  EXPECT_NEAR(static_cast<double>(cache.MemoryBytes()) / (1024.0 * 1024.0), 1.0, 0.1);
}

TEST(FlowCacheTest, HitMissCounters) {
  FlowCache cache(100, kTimeout);
  cache.Insert(1, 0, 0);
  cache.Lookup(1, 1);
  cache.Lookup(1, 2);
  cache.Lookup(2, 3);
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(FlowCacheTest, ManyFlowsAllRetrievableUnderCapacity) {
  FlowCache cache(10'000, kTimeout);
  for (FlowId f = 1; f <= 5'000; ++f) {
    cache.Insert(f * 2654435761u, static_cast<PortIndex>(f % 6), 0);
  }
  int found = 0;
  for (FlowId f = 1; f <= 5'000; ++f) {
    if (cache.Lookup(f * 2654435761u, 1) == static_cast<PortIndex>(f % 6)) {
      ++found;
    }
  }
  // Bounded-probe insertion may drop a tiny fraction under hash clustering;
  // the overwhelming majority must be retrievable.
  EXPECT_GT(found, 4900);
}

TEST(FlowCacheTest, GcReportsEvictionCount) {
  FlowCache cache(100, kTimeout);
  for (FlowId f = 1; f <= 10; ++f) {
    cache.Insert(f, 0, 0);
  }
  EXPECT_EQ(cache.Gc(kTimeout + 1), 10);
  EXPECT_EQ(cache.size(), 0);
}

}  // namespace
}  // namespace lcmp
