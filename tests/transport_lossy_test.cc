// Tests for the lossy long-haul tier (DESIGN.md §15): the Gilbert–Elliott
// DCI loss model, Go-Back-N vs IRN selective recovery over real wire loss,
// the retransmit-path bugfixes (duplicate-NACK epoch guard, windowed
// retransmit accounting), the gateway FEC shim, and shard-count invariance
// of lossy runs.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "harness/experiment.h"
#include "harness/runner.h"
#include "stats/fct_recorder.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"
#include "transport/seq_window.h"

namespace lcmp {
namespace {

// Dumbbell: one host per DC, a single DCI link. Every DATA packet and every
// returning ACK/NACK/CNP crosses the lossy link, so control-packet loss is
// exercised as hard as data loss.
Graph Dumbbell(int64_t rate_bps = Gbps(50), TimeNs delay = Milliseconds(1)) {
  Graph g;
  FabricOptions fo;
  fo.hosts = 1;
  const NodeId dci0 = BuildDcFabric(g, 0, fo);
  const NodeId dci1 = BuildDcFabric(g, 1, fo);
  g.AddLink(dci0, dci1, rate_bps, delay);
  return g;
}

struct Harness {
  Harness(Graph g, const NetworkConfig& ncfg, TransportConfig tcfg)
      : graph(std::move(g)),
        net(graph, ncfg, MakePolicyFactory(PolicyKind::kEcmp, LcmpConfig{})),
        transport(&net, tcfg, [this](const FlowRecord& r) { records.push_back(r); }) {}
  Graph graph;
  Network net;
  RdmaTransport transport;
  std::vector<FlowRecord> records;
};

FlowSpec MakeFlow(FlowId id, NodeId src, NodeId dst, uint64_t bytes) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.key = FlowKey{src, dst, static_cast<uint32_t>(id), 4791, 17};
  f.size_bytes = bytes;
  return f;
}

NetworkConfig LossyNet(double loss_rate, int fec_k = 0, int fec_m = 0) {
  NetworkConfig ncfg;
  ncfg.dci_loss_rate = loss_rate;
  ncfg.fec_k = fec_k;
  ncfg.fec_m = fec_m;
  return ncfg;
}

// ---- SeqWindow unit coverage ----

TEST(SeqWindowTest, InsertDrainAdvance) {
  SeqWindow w;
  w.Reset(0, 64);
  EXPECT_TRUE(w.allocated());
  EXPECT_EQ(w.count(), 0u);
  EXPECT_TRUE(w.Insert(3));
  EXPECT_TRUE(w.Insert(5));
  EXPECT_FALSE(w.Insert(3));  // duplicate
  EXPECT_EQ(w.count(), 2u);
  EXPECT_EQ(w.FirstSet(), 3u);
  EXPECT_TRUE(w.TakeIfSet(3));
  EXPECT_FALSE(w.TakeIfSet(4));
  EXPECT_EQ(w.FirstSet(), 5u);
  w.AdvanceBaseTo(6);
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.FirstSet(), SeqWindow::kNone);
}

TEST(SeqWindowTest, RejectsOutOfWindow) {
  SeqWindow w;
  w.Reset(100, 64);
  EXPECT_FALSE(w.Insert(99));       // below base
  EXPECT_FALSE(w.Insert(100 + 64));  // beyond capacity
  EXPECT_TRUE(w.Insert(100));
  EXPECT_TRUE(w.Insert(163));
  EXPECT_EQ(w.count(), 2u);
}

TEST(SeqWindowTest, RingWrapKeepsOrder) {
  SeqWindow w;
  w.Reset(0, 64);
  // Walk the base far enough that slots wrap the ring several times; the
  // first-set scan must always report the lowest live sequence.
  uint32_t base = 0;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(w.Insert(base + 7));
    EXPECT_TRUE(w.Insert(base + 3));
    EXPECT_EQ(w.FirstSet(), base + 3);
    EXPECT_EQ(w.PopFirst(), base + 3);
    EXPECT_EQ(w.PopFirst(), base + 7);
    EXPECT_EQ(w.PopFirst(), SeqWindow::kNone);
    base += 50;  // not a multiple of 64: exercises mid-word wrap
    w.AdvanceBaseTo(base);
  }
}

// ---- loss-model recovery, both reliability modes ----

class LossyCompletionTest : public ::testing::TestWithParam<ReliabilityMode> {};

TEST_P(LossyCompletionTest, FlowsCompleteThroughWireLoss) {
  // 2% corruption on the DCI in both directions: DATA, ACKs, NACKs and CNPs
  // all die regularly. RTO probes plus (in IRN) chained NACK recovery must
  // still complete every flow.
  TransportConfig tcfg;
  tcfg.reliability = GetParam();
  Harness h(Dumbbell(), LossyNet(0.02), tcfg);
  for (FlowId i = 1; i <= 4; ++i) {
    h.transport.StartFlow(
        MakeFlow(i, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0], 1'000'000));
  }
  h.net.sim().Run(Seconds(60));
  ASSERT_EQ(h.records.size(), 4u);
  EXPECT_GT(h.net.CollectDciStats().lost_packets, 0);
  for (const FlowRecord& r : h.records) {
    EXPECT_GT(r.retransmitted_packets, 0u);
  }
}

TEST_P(LossyCompletionTest, WindowedSenderSurvivesLoss) {
  // Regression (windowed retransmit accounting): retransmitted segments lie
  // inside [acked, next_seq), whose bytes are already charged against the
  // in-flight window. Double-counting them would wedge a windowed sender
  // permanently once a loss pushed "inflight" over the cap.
  TransportConfig tcfg;
  tcfg.reliability = GetParam();
  tcfg.max_inflight_bytes = 64 * 1024;  // far below the 2 MB flow
  Harness h(Dumbbell(), LossyNet(0.02), tcfg);
  h.transport.StartFlow(
      MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0], 2'000'000));
  h.net.sim().Run(Seconds(60));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_GT(h.records[0].retransmitted_packets, 0u);
}

TEST_P(LossyCompletionTest, BurstLossRecovered) {
  // Gilbert–Elliott bursts (mean length 8) take out consecutive packets —
  // the worst case for selective recovery. Completion is still required.
  TransportConfig tcfg;
  tcfg.reliability = GetParam();
  NetworkConfig ncfg = LossyNet(0.01);
  ncfg.dci_burst_len = 8.0;
  Harness h(Dumbbell(), ncfg, tcfg);
  h.transport.StartFlow(
      MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0], 2'000'000));
  h.net.sim().Run(Seconds(60));
  ASSERT_EQ(h.records.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, LossyCompletionTest,
                         ::testing::Values(ReliabilityMode::kGoBackN, ReliabilityMode::kIrn),
                         [](const ::testing::TestParamInfo<ReliabilityMode>& info) {
                           return std::string(ReliabilityModeToken(info.param));
                         });

// ---- retransmit-path regressions ----

TEST(LossyTransportTest, IrnRetransmitsFarLessThanGbn) {
  // The point of IRN: at equal wire loss a selective sender repairs holes
  // instead of re-blasting windows. Same seed, same loss process.
  auto retransmits = [](ReliabilityMode mode) {
    TransportConfig tcfg;
    tcfg.reliability = mode;
    tcfg.max_inflight_bytes = 512 * 1024;
    Harness h(Dumbbell(), LossyNet(0.005), tcfg);
    h.transport.StartFlow(
        MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0], 8'000'000));
    h.net.sim().Run(Seconds(120));
    EXPECT_EQ(h.records.size(), 1u);
    return h.transport.retransmitted_packets();
  };
  const int64_t gbn = retransmits(ReliabilityMode::kGoBackN);
  const int64_t irn = retransmits(ReliabilityMode::kIrn);
  EXPECT_GT(gbn, 0);
  EXPECT_GT(irn, 0);
  EXPECT_LT(irn * 5, gbn);  // at least 5x fewer
}

TEST(LossyTransportTest, DuplicateNackEpochGuardBoundsGbnBlasts) {
  // Regression (duplicate Go-Back-N blasts): with ACKs dying on the lossy
  // reverse path, the receiver emits a NACK for the same gap on every
  // arrival. Without the retransmit-epoch guard each duplicate rewound
  // next_seq and re-blasted the window several times per RTT; the total
  // retransmit count then exceeds the flow size many times over. With the
  // guard, one blast per gap per RTT bounds the damage.
  TransportConfig tcfg;  // Go-Back-N default
  Harness h(Dumbbell(), LossyNet(0.01), tcfg);
  const uint64_t bytes = 4'000'000;
  h.transport.StartFlow(MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0], bytes));
  h.net.sim().Run(Seconds(120));
  ASSERT_EQ(h.records.size(), 1u);
  const uint64_t total_packets = h.records[0].total_packets;
  EXPECT_GT(h.records[0].retransmitted_packets, 0u);
  // Unguarded duplicate blasts retransmitted >10x the flow; guarded runs
  // stay within a few windows' worth.
  EXPECT_LT(h.records[0].retransmitted_packets, 5 * total_packets);
}

// ---- FEC shim ----

TEST(LossyTransportTest, FecReconstructsWithoutRetransmission) {
  // 4:2 FEC at 0.5% loss: isolated corruptions are reconstructed at the far
  // gateway, so the transport sees (almost) no loss at all.
  TransportConfig tcfg;
  tcfg.reliability = ReliabilityMode::kIrn;
  Harness h(Dumbbell(), LossyNet(0.005, /*fec_k=*/4, /*fec_m=*/2), tcfg);
  h.transport.StartFlow(
      MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0], 4'000'000));
  h.net.sim().Run(Seconds(60));
  ASSERT_EQ(h.records.size(), 1u);
  const DciTierStats stats = h.net.CollectDciStats();
  EXPECT_GT(stats.lost_packets, 0);
  EXPECT_GT(stats.repair_packets, 0);
  EXPECT_GT(stats.recovered_packets, 0);
  EXPECT_GT(stats.fec_groups, 0);
  // Reconstruction rides through most losses; the few unrecovered ones (or
  // late reconstructions) may still cost a handful of retransmits.
  EXPECT_LT(h.records[0].retransmitted_packets, 50u);
}

TEST(LossyTransportTest, FecOffMeansNoRepairTraffic) {
  TransportConfig tcfg;
  Harness h(Dumbbell(), LossyNet(0.02), tcfg);
  h.transport.StartFlow(
      MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0], 2'000'000));
  h.net.sim().Run(Seconds(60));
  const DciTierStats stats = h.net.CollectDciStats();
  EXPECT_GT(stats.lost_packets, 0);
  EXPECT_EQ(stats.repair_packets, 0);
  EXPECT_EQ(stats.recovered_packets, 0);
  EXPECT_EQ(stats.fec_groups, 0);
}

// ---- full-harness properties: digests and shard invariance ----

ExperimentConfig LossyExperiment() {
  ExperimentConfig config;
  config.num_flows = 60;
  config.seed = 11;
  config.reliability = ReliabilityMode::kIrn;
  config.dci_loss_rate = 0.001;
  config.max_inflight_bytes = 4 * 1024 * 1024;
  return config;
}

TEST(LossyTransportTest, ShardCountDoesNotChangeLossyDigest) {
  // The loss RNG is seeded per directed link from the global seed — never
  // from shard layout — so a lossy run must stay bit-identical across shard
  // counts, exactly like a loss-free one.
  ExperimentConfig config = LossyExperiment();
  const ExperimentResult seq = RunExperiment(config);
  config.shards = 2;
  const ExperimentResult sharded = RunExperiment(config);
  EXPECT_GT(seq.dci_lost_packets, 0);
  EXPECT_EQ(seq.flows_completed, seq.flows_requested);
  EXPECT_EQ(ExperimentDigest(seq), ExperimentDigest(sharded));
  EXPECT_EQ(seq.dci_lost_packets, sharded.dci_lost_packets);
}

TEST(LossyTransportTest, LossRateZeroMatchesBaselineDigest) {
  // Arming the tier with loss 0 / FEC off must not consume RNG or change
  // event order: the digest equals a run without the tier configured.
  ExperimentConfig base;
  base.num_flows = 60;
  base.seed = 11;
  const ExperimentResult a = RunExperiment(base);
  ExperimentConfig zero = base;
  zero.dci_loss_rate = 0.0;
  zero.dci_burst_len = 4.0;  // burst length alone must not matter
  const ExperimentResult b = RunExperiment(zero);
  EXPECT_EQ(ExperimentDigest(a), ExperimentDigest(b));
  EXPECT_EQ(b.dci_lost_packets, 0);
}

}  // namespace
}  // namespace lcmp
