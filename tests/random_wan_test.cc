// Property tests on randomly generated WANs: for many seeds, the control
// plane must produce loop-free full-coverage candidate sets, every policy
// must deliver traffic, and random link failures must never strand a flow
// while any path survives.
#include <gtest/gtest.h>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "stats/fct_recorder.h"
#include "topo/builders.h"
#include "topo/candidate_paths.h"
#include "transport/rdma_transport.h"
#include "workload/traffic_gen.h"

namespace lcmp {
namespace {

RandomWanOptions Options(uint64_t seed, int dcs = 10) {
  RandomWanOptions o;
  o.num_dcs = dcs;
  o.extra_chords = 6;
  o.seed = seed;
  o.fabric.hosts = 2;
  return o;
}

class RandomWanSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWanSweep, AllPairsHaveLoopFreeCandidates) {
  const Graph g = BuildRandomWan(Options(GetParam()));
  const InterDcRoutes routes = InterDcRoutes::Compute(g);
  for (DcId s = 0; s < g.num_dcs(); ++s) {
    for (DcId d = 0; d < g.num_dcs(); ++d) {
      if (s == d) {
        continue;
      }
      const NodeId dci = g.DciOfDc(s);
      const auto& cands = routes.Candidates(dci, d);
      ASSERT_GE(cands.size(), 1u) << "seed " << GetParam() << " pair " << s << "->" << d;
      for (const RouteCandidate& c : cands) {
        // Downhill: strictly decreasing hop distance (loop freedom).
        EXPECT_LT(routes.HopDistance(c.next_hop, d), routes.HopDistance(dci, d));
        EXPECT_GT(c.bottleneck_bps, 0);
        EXPECT_GT(c.path_delay_ns, 0);
      }
    }
  }
}

TEST_P(RandomWanSweep, LcmpDeliversAllFlows) {
  const Graph g = BuildRandomWan(Options(GetParam()));
  NetworkConfig ncfg;
  ncfg.seed = GetParam();
  Network net(g, ncfg, MakeLcmpFactory(LcmpConfig{}));
  ControlPlane cp{LcmpConfig{}};
  cp.Provision(net);
  int completed = 0;
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord&) { ++completed; });
  TrafficGenConfig traffic;
  traffic.offered_bps = Gbps(50);
  traffic.num_flows = 60;
  traffic.seed = GetParam() + 1;
  for (const FlowSpec& f :
       GenerateTraffic(g, AllOrderedDcPairs(g.num_dcs()), traffic)) {
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();
  net.sim().Run(Seconds(60));
  EXPECT_EQ(completed, 60) << "seed " << GetParam();
}

TEST_P(RandomWanSweep, SurvivesRandomChordFlap) {
  // Flap one random chord mid-run (down at 5 ms, back at 200 ms). Flows with
  // surviving candidates re-hash instantly (data-plane failover); flows
  // whose only downhill candidate was the chord stall until it returns and
  // recover via RTO. Either way every flow must finish.
  const Graph g = BuildRandomWan(Options(GetParam()));
  NetworkConfig ncfg;
  ncfg.seed = GetParam() ^ 0x5a5a;
  Network net(g, ncfg, MakeLcmpFactory(LcmpConfig{}));
  ControlPlane cp{LcmpConfig{}};
  cp.Provision(net);
  int completed = 0;
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord&) { ++completed; });
  TrafficGenConfig traffic;
  traffic.offered_bps = Gbps(40);
  traffic.num_flows = 40;
  traffic.seed = GetParam() + 2;
  for (const FlowSpec& f :
       GenerateTraffic(g, AllOrderedDcPairs(g.num_dcs()), traffic)) {
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();
  // Kill a chord (a link beyond the ring, index >= num_dcs among inter-DC
  // links) shortly into the run.
  const auto refs = net.InterDcDirectedLinks();
  Rng rng(GetParam());
  // Directed refs come in pairs per link; chord links follow the ring links.
  const int num_inter_links = static_cast<int>(refs.size()) / 2;
  const int chord_start = g.num_dcs();
  if (num_inter_links > chord_start) {
    const int victim = chord_start + static_cast<int>(rng.NextBounded(
                                         static_cast<uint64_t>(num_inter_links - chord_start)));
    const int link_idx = refs[static_cast<size_t>(victim * 2)].link_idx;
    net.sim().Schedule(Milliseconds(5), [&net, link_idx] { net.SetLinkUp(link_idx, false); });
    net.sim().Schedule(Milliseconds(200), [&net, link_idx] { net.SetLinkUp(link_idx, true); });
  }
  net.sim().Run(Seconds(120));
  EXPECT_EQ(completed, 40) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWanSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 11u, 23u, 42u));

TEST(RandomWanTest, DeterministicPerSeed) {
  const Graph a = BuildRandomWan(Options(9));
  const Graph b = BuildRandomWan(Options(9));
  ASSERT_EQ(a.num_links(), b.num_links());
  for (int i = 0; i < a.num_links(); ++i) {
    EXPECT_EQ(a.link(i).a, b.link(i).a);
    EXPECT_EQ(a.link(i).rate_bps, b.link(i).rate_bps);
    EXPECT_EQ(a.link(i).delay_ns, b.link(i).delay_ns);
  }
}

TEST(RandomWanTest, DifferentSeedsDiffer) {
  const Graph a = BuildRandomWan(Options(1));
  const Graph b = BuildRandomWan(Options(2));
  bool differs = a.num_links() != b.num_links();
  for (int i = 0; !differs && i < a.num_links(); ++i) {
    differs = a.link(i).rate_bps != b.link(i).rate_bps ||
              a.link(i).delay_ns != b.link(i).delay_ns || a.link(i).a != b.link(i).a ||
              a.link(i).b != b.link(i).b;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace lcmp
