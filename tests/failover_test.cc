// CTest mirror of examples/failover_demo: cut one of three parallel inter-DC
// links while RDMA elephants are in flight and assert LCMP's lazy flow-cache
// invalidation carries every flow across the cut with no control-plane help.
// Unlike the demo this drives the cut through the fault subsystem
// (FaultPlan + FaultInjector) under a strict InvariantMonitor, so any
// dead-path pinning, routing loop, or byte-ledger break aborts the test.
#include <gtest/gtest.h>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "stats/fct_recorder.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"
#include "workload/traffic_gen.h"

namespace lcmp {
namespace {

// Lowest-indexed inter-DC link (cutting a host access link would strand that
// host's flows instead of exercising DCI failover).
int FirstInterDcLink(const Graph& g) {
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    if (g.vertex(l.a).kind == VertexKind::kDciSwitch &&
        g.vertex(l.b).kind == VertexKind::kDciSwitch && g.vertex(l.a).dc != g.vertex(l.b).dc) {
      return li;
    }
  }
  return -1;
}

struct FailoverRun {
  int completed = 0;
  int64_t rehashes = 0;
  int64_t injections = 0;
  int64_t checks = 0;
  int64_t violations = 0;
  double p50 = 0;
};

// The demo scenario: two DCs, three parallel 100G links 5 ms apart, 60
// elephant flows of 8 MB; one inter-DC link is cut mid-flight. The cut lands
// at 12 ms — after the first ACKs (10 ms RTT) have established SRTTs but while all flows are still in flight — so their
// retransmissions arrive well inside the flow-cache idle timeout and exercise
// the lazy rehash (a cut before the first ACK would stall those flows on the
// 2 s initial RTO, expire their cache entries, and re-place rather than
// rehash them).
FailoverRun RunDumbbellCut(const FaultPlan& plan, bool stop_on_complete = true,
                           TimeNs horizon = Seconds(20)) {
  const Graph graph = BuildDumbbell(/*parallel_links=*/3, /*hosts_per_dc=*/4, Gbps(100),
                                    Milliseconds(5));
  const LcmpConfig lcmp_config;
  NetworkConfig net_config;
  net_config.seed = 3;
  Network net(graph, net_config, MakeLcmpFactory(lcmp_config));
  ControlPlane control_plane(lcmp_config);
  control_plane.Provision(net);

  FctRecorder recorder(&net.graph());
  const int num_flows = 60;
  Simulator& sim = net.sim();
  RdmaTransport transport(&net, TransportConfig{}, [&](const FlowRecord& rec) {
    recorder.OnComplete(rec);
    if (stop_on_complete && recorder.completed() >= num_flows) {
      sim.Stop();
    }
  });
  TrafficGenConfig traffic;
  traffic.workload = WorkloadKind::kWebSearch;
  traffic.offered_bps = Gbps(120);
  traffic.num_flows = num_flows;
  traffic.seed = 9;
  for (FlowSpec f : GenerateTraffic(graph, {{0, 1}, {1, 0}}, traffic)) {
    f.size_bytes = 8'000'000;  // uniform elephants make the rehash visible
    transport.ScheduleFlow(f);
  }

  // Strict: any invariant violation fails the whole test binary fast.
  InvariantMonitor monitor(net);
  FaultInjector injector(net, &control_plane);
  injector.SetMonitor(&monitor);
  injector.Arm(plan);
  monitor.Start();

  net.StartPolicyTicks();
  sim.Run(horizon);
  monitor.Stop();
  monitor.FinalCheck(num_flows, recorder.completed(), plan.AllClearTime());

  FailoverRun out;
  out.completed = recorder.completed();
  out.injections = injector.injections();
  out.checks = monitor.checks_run();
  out.violations = monitor.violations();
  out.p50 = recorder.Overall().p50;
  for (const SwitchTelemetry& t : control_plane.CollectTelemetry(net)) {
    out.rehashes += t.failover_rehashes;
  }
  return out;
}

TEST(FailoverTest, AllFlowsSurviveAPermanentCut) {
  const Graph graph = BuildDumbbell(3, 4, Gbps(100), Milliseconds(5));
  FaultPlan plan;
  FaultEvent cut;
  cut.at = Milliseconds(12);
  cut.kind = FaultKind::kLinkDown;
  cut.link_idx = FirstInterDcLink(graph);
  ASSERT_GE(cut.link_idx, 0);
  plan.events.push_back(cut);
  ASSERT_EQ(plan.AllClearTime(), -1);  // never repaired

  const FailoverRun run = RunDumbbellCut(plan);
  EXPECT_EQ(run.completed, 60) << "flows must survive the cut on the two remaining links";
  EXPECT_EQ(run.injections, 1);
  EXPECT_GT(run.rehashes, 0) << "the cut must have forced lazy flow-cache rehashes";
  EXPECT_GT(run.checks, 0);
  EXPECT_EQ(run.violations, 0);
  EXPECT_GT(run.p50, 0.0);
}

TEST(FailoverTest, LivenessHoldsAfterRepair) {
  // Cut-then-repair: AllClearTime is finite and inside the run, so
  // FinalCheck also asserts the liveness invariant (every started flow
  // completed once connectivity returned) instead of skipping it.
  const Graph graph = BuildDumbbell(3, 4, Gbps(100), Milliseconds(5));
  FaultPlan plan;
  FaultEvent cut;
  cut.at = Milliseconds(12);
  cut.kind = FaultKind::kLinkDown;
  cut.link_idx = FirstInterDcLink(graph);
  ASSERT_GE(cut.link_idx, 0);
  plan.events.push_back(cut);
  FaultEvent repair = cut;
  repair.at = Milliseconds(20);
  repair.kind = FaultKind::kLinkUp;
  plan.events.push_back(repair);
  ASSERT_EQ(plan.AllClearTime(), Milliseconds(20));

  // Run to a fixed horizon (flows can drain before the repair lands; the
  // repair must still fire for FinalCheck to assert liveness rather than
  // skip it).
  const FailoverRun run = RunDumbbellCut(plan, /*stop_on_complete=*/false, Seconds(1));
  EXPECT_EQ(run.completed, 60);
  EXPECT_EQ(run.injections, 2);
  EXPECT_GT(run.rehashes, 0);
  EXPECT_EQ(run.violations, 0);
}

}  // namespace
}  // namespace lcmp
