// Unit tests for the common substrate: RNG, hashing, histogram, logging,
// and the unit helpers in types.h.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/hashing.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/types.h"

namespace lcmp {
namespace {

TEST(TypesTest, DurationConstructors) {
  EXPECT_EQ(Microseconds(1), 1'000);
  EXPECT_EQ(Milliseconds(1), 1'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_EQ(Milliseconds(5), 5 * Microseconds(1000));
}

TEST(TypesTest, RateConstructors) {
  EXPECT_EQ(Gbps(100), 100'000'000'000LL);
  EXPECT_EQ(Mbps(1000), Gbps(1));
  EXPECT_EQ(Kbps(1'000'000), Gbps(1));
}

TEST(TypesTest, SerializationDelayBasics) {
  // 1500 B at 1 Gbps = 12 us.
  EXPECT_EQ(SerializationDelay(1500, Gbps(1)), 12'000);
  // 4 KB at 100 Gbps = 327.68 ns, rounded up to 328.
  EXPECT_EQ(SerializationDelay(4096, Gbps(100)), 328);
  // Rounds up: 1 byte on a fast link still takes >= 1 ns.
  EXPECT_GE(SerializationDelay(1, Gbps(400)), 1);
}

TEST(TypesTest, SerializationDelayLargeValuesDoNotOverflow) {
  // 10 GB at 1 Mbps: ~8e13 ns; must not overflow.
  const int64_t bytes = 10LL * 1000 * 1000 * 1000;
  EXPECT_EQ(SerializationDelay(bytes, Mbps(1)), bytes * 8 * 1000);
}

TEST(TypesTest, FiberDelayMatchesPaperFootnote) {
  // The paper: 1000 km -> 5 ms at 2e8 m/s.
  EXPECT_EQ(FiberDelayForKm(1000), Milliseconds(5));
  EXPECT_EQ(FiberDelayForKm(2000), Milliseconds(10));
  EXPECT_EQ(FiberDelayForKm(200), Milliseconds(1));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1'000'000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(RngTest, GaussianHasRoughlyRightMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(5);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(5);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(HashingTest, FlowKeyEqualityAndHashAgree) {
  FlowKey a{1, 2, 10, 4791, 17};
  FlowKey b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(HashFlowKey(a), HashFlowKey(b));
  b.src_port = 11;
  EXPECT_NE(a, b);
  EXPECT_NE(HashFlowKey(a), HashFlowKey(b));
}

TEST(HashingTest, SaltDecorrelates) {
  FlowKey k{1, 2, 10, 4791, 17};
  EXPECT_NE(HashFlowKey(k, 1), HashFlowKey(k, 2));
}

TEST(HashingTest, HashSpreadsAcrossBuckets) {
  // ECMP depends on good mixing: hashing 1000 sequential flows into 6
  // buckets should hit every bucket with a roughly fair share.
  std::vector<int> counts(6, 0);
  for (uint32_t i = 0; i < 1000; ++i) {
    FlowKey k{1, 2, i, 4791, 17};
    ++counts[HashFlowKey(k) % 6];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 100);
    EXPECT_LT(c, 250);
  }
}

TEST(HashingTest, RoutingFlowIdNeverZero) {
  for (uint32_t i = 0; i < 5000; ++i) {
    FlowKey k{static_cast<NodeId>(i % 17), static_cast<NodeId>(i % 13), i, 4791, 17};
    EXPECT_NE(RoutingFlowId(k), 0u);
  }
}

TEST(HashingTest, ReverseKeySwapsEndpoints) {
  FlowKey k{1, 2, 10, 4791, 17};
  const FlowKey r = ReverseKey(k);
  EXPECT_EQ(r.src, 2);
  EXPECT_EQ(r.dst, 1);
  EXPECT_EQ(r.src_port, 4791u);
  EXPECT_EQ(r.dst_port, 10u);
  EXPECT_EQ(ReverseKey(r), k);
  // Forward and reverse direction must map to distinct switch flow state.
  EXPECT_NE(RoutingFlowId(k), RoutingFlowId(r));
}

TEST(HistogramTest, PercentilesOnKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(HistogramTest, EmptySetIsZero) {
  SampleSet s;
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(HistogramTest, SingleSample) {
  SampleSet s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 3.5);
}

TEST(HistogramTest, AddAfterPercentileResorts) {
  SampleSet s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 10);
  s.Add(1);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1);
}

TEST(LoggingTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 5, "abc"), "x=5 y=abc");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(LoggingTest, LevelGate) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(GetLogLevel()), static_cast<int>(LogLevel::kError));
  SetLogLevel(prev);
}

}  // namespace
}  // namespace lcmp
