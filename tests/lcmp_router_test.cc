// Tests for the LCMP data plane (core/lcmp_router.h) on real Network
// instances: stickiness, diversity, congestion avoidance, path-quality
// preference, fast failover, GC, and telemetry counters.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "sim/network.h"
#include "topo/builders.h"

namespace lcmp {
namespace {

Packet MakeData(NodeId src, NodeId dst, uint32_t nonce) {
  Packet p;
  p.type = PacketType::kData;
  p.src = src;
  p.dst = dst;
  p.key = FlowKey{src, dst, nonce, 4791, 17};
  p.flow_id = FlowIdOf(p.key);
  p.size_bytes = 1000;
  return p;
}

struct Fixture {
  explicit Fixture(Graph graph_in, LcmpConfig config = {})
      : graph(std::move(graph_in)), net(graph, NetworkConfig{}, MakeLcmpFactory(config)) {
    ControlPlane cp(config);
    cp.Provision(net);
  }
  SwitchNode& Dci(DcId dc) { return net.switch_node(graph.DciOfDc(dc)); }
  LcmpRouter& Router(DcId dc) {
    return *dynamic_cast<LcmpRouter*>(Dci(dc).policy());
  }
  Graph graph;
  Network net;
};

TEST(LcmpRouterTest, FlowSticksToOnePort) {
  Fixture f(BuildDumbbell(4, 1, Gbps(100), Milliseconds(1)));
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  const Packet p = MakeData(f.graph.HostsInDc(0)[0], f.graph.HostsInDc(1)[0], 7);
  const PortIndex first = f.Router(0).SelectPort(sw, p, cands);
  ASSERT_NE(first, kInvalidPort);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(f.Router(0).SelectPort(sw, p, cands), first);
  }
  EXPECT_EQ(f.Router(0).stats().new_flow_decisions, 1);
  EXPECT_EQ(f.Router(0).stats().cache_hits, 50);
}

TEST(LcmpRouterTest, DistinctFlowsSpreadAcrossLowCostSet) {
  Fixture f(BuildDumbbell(4, 1, Gbps(100), Milliseconds(1)));
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  std::set<PortIndex> used;
  for (uint32_t i = 0; i < 200; ++i) {
    const Packet p = MakeData(f.graph.HostsInDc(0)[0], f.graph.HostsInDc(1)[0], i);
    used.insert(f.Router(0).SelectPort(sw, p, cands));
  }
  // 4 equal candidates, keep-half = 2: both kept ports must appear.
  EXPECT_EQ(used.size(), 2u);
}

TEST(LcmpRouterTest, PrefersLowDelayOnAsymmetricTopology) {
  Fixture f(BuildTestbed8({}));
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(7);
  ASSERT_EQ(cands.size(), 6u);
  // Map port -> path delay for checking.
  std::map<PortIndex, TimeNs> delay_of;
  for (const PathCandidate& c : cands) {
    delay_of[c.port] = c.path_delay_ns;
  }
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(7)[0];
  for (uint32_t i = 0; i < 300; ++i) {
    const PortIndex p = f.Router(0).SelectPort(sw, MakeData(src, dst, i), cands);
    // The two 125 ms routes (250 ms path delay) are never in the kept half
    // when everything is idle.
    EXPECT_LT(delay_of[p], Milliseconds(250)) << "picked a high-delay route";
  }
}

TEST(LcmpRouterTest, CongestionShiftsSelectionAway) {
  LcmpConfig config;
  Fixture f(BuildDumbbell(2, 1, Gbps(100), Milliseconds(1)), config);
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  ASSERT_EQ(cands.size(), 2u);
  // Congest candidate 0 by stuffing its queue (keeps queue_bytes high).
  Port& congested = sw.port(cands[0].port);
  for (int i = 0; i < 3000; ++i) {
    Packet filler = MakeData(0, f.graph.HostsInDc(1)[0], 999'000 + i);
    filler.size_bytes = 4096;
    congested.Enqueue(filler);
  }
  ASSERT_GT(congested.queue_bytes(), 1'000'000);
  // Let the monitor observe the queue.
  f.Router(0).OnTick(sw);
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(1)[0];
  int to_congested = 0;
  for (uint32_t i = 0; i < 200; ++i) {
    if (f.Router(0).SelectPort(sw, MakeData(src, dst, 1000 + i), cands) == cands[0].port) {
      ++to_congested;
    }
  }
  // keep-half of 2 = 1 candidate: every new flow should avoid the hot port.
  EXPECT_EQ(to_congested, 0);
}

TEST(LcmpRouterTest, FailoverRehashesToLivePort) {
  Fixture f(BuildDumbbell(3, 1, Gbps(100), Milliseconds(1)));
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(1)[0];
  const Packet p = MakeData(src, dst, 5);
  const PortIndex first = f.Router(0).SelectPort(sw, p, cands);
  ASSERT_NE(first, kInvalidPort);
  sw.port(first).SetUp(false);
  const PortIndex second = f.Router(0).SelectPort(sw, p, cands);
  ASSERT_NE(second, kInvalidPort);
  EXPECT_NE(second, first);
  EXPECT_TRUE(sw.port(second).up());
  EXPECT_EQ(f.Router(0).stats().failover_rehashes, 1);
  // The re-placement is itself sticky.
  EXPECT_EQ(f.Router(0).SelectPort(sw, p, cands), second);
}

TEST(LcmpRouterTest, AllPortsDownReturnsInvalid) {
  Fixture f(BuildDumbbell(2, 1, Gbps(100), Milliseconds(1)));
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  for (const PathCandidate& c : cands) {
    sw.port(c.port).SetUp(false);
  }
  const Packet p = MakeData(f.graph.HostsInDc(0)[0], f.graph.HostsInDc(1)[0], 5);
  EXPECT_EQ(f.Router(0).SelectPort(sw, p, cands), kInvalidPort);
}

TEST(LcmpRouterTest, GcEvictsIdleFlows) {
  LcmpConfig config;
  config.flow_idle_timeout = Milliseconds(10);
  Fixture f(BuildDumbbell(2, 1, Gbps(100), Milliseconds(1)), config);
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(1);
  for (uint32_t i = 0; i < 20; ++i) {
    const Packet p = MakeData(f.graph.HostsInDc(0)[0], f.graph.HostsInDc(1)[0], i);
    f.Router(0).SelectPort(sw, p, cands);
  }
  EXPECT_EQ(f.Router(0).flow_cache().size(), 20);
  // Advance time past the idle timeout and run enough ticks to hit the GC
  // cadence (gc_period / sample_interval ticks).
  f.net.sim().Schedule(Milliseconds(200), [] {});
  f.net.sim().Run();
  const int64_t ticks_per_gc = config.gc_period / config.sample_interval;
  for (int64_t i = 0; i <= ticks_per_gc; ++i) {
    f.Router(0).OnTick(sw);
  }
  EXPECT_EQ(f.Router(0).flow_cache().size(), 0);
  EXPECT_GT(f.Router(0).stats().gc_evictions, 0);
}

TEST(LcmpRouterTest, InstalledPathTableIsUsed) {
  // Install a deliberately inverted table (fast path expensive) and verify
  // decisions follow the installed scores, proving the lookup path is the
  // control-plane table rather than a recomputation.
  LcmpConfig config;
  Fixture f(BuildTestbed8({}), config);
  SwitchNode& sw = f.Dci(0);
  const auto cands = sw.CandidatesTo(7);
  std::vector<uint8_t> inverted(cands.size());
  for (size_t i = 0; i < cands.size(); ++i) {
    // Give the normally-best (lowest-delay) candidates the worst scores.
    inverted[i] = static_cast<uint8_t>(255 - i * 40);
  }
  f.Router(0).InstallPathTable(7, inverted);
  const NodeId src = f.graph.HostsInDc(0)[0];
  const NodeId dst = f.graph.HostsInDc(7)[0];
  std::set<PortIndex> used;
  for (uint32_t i = 0; i < 200; ++i) {
    used.insert(f.Router(0).SelectPort(sw, MakeData(src, dst, i), cands));
  }
  // With inverted scores the kept half is the *last* three candidates.
  for (const PortIndex p : used) {
    bool in_last_half = false;
    for (size_t i = 3; i < cands.size(); ++i) {
      if (cands[i].port == p) {
        in_last_half = true;
      }
    }
    EXPECT_TRUE(in_last_half);
  }
}

TEST(LcmpRouterTest, MemoryAccountingIncludesAllPieces) {
  LcmpConfig config;
  config.flow_cache_capacity = 50'000;
  Fixture f(BuildTestbed8({}), config);
  const size_t mem = f.Router(0).MemoryBytes();
  // Dominated by the 1 MB flow cache (paper: ~1.2 MB total).
  EXPECT_GT(mem, 900u * 1024u);
  EXPECT_LT(mem, 2u * 1024u * 1024u);
}

TEST(LcmpRouterTest, TickIntervalMatchesMonitorCadence) {
  LcmpConfig config;
  config.sample_interval = Microseconds(250);
  Fixture f(BuildDumbbell(2, 1, Gbps(100), Milliseconds(1)), config);
  EXPECT_EQ(f.Router(0).tick_interval(), Microseconds(250));
}

}  // namespace
}  // namespace lcmp
