// InvariantMonitor tests: a healthy LCMP run through a DCI link cut produces
// zero violations, and the monitor is not vacuous — deliberately switching
// off the Sec. 3.4 lazy-update fast failover (LcmpConfig::disable_failover)
// makes the dead-path-pinning invariant fire.
#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.h"

namespace lcmp {
namespace {

// First-hop link of the lowest-delay DC0 route: the path real traffic
// prefers, so cutting it forces actual failovers.
int VictimLink(const Graph& g) {
  const NodeId src_dci = g.DciOfDc(0);
  int victim = -1;
  TimeNs best_delay = 0;
  for (const int li : g.incident_links(src_dci)) {
    const LinkSpec& l = g.link(li);
    const NodeId peer = l.a == src_dci ? l.b : l.a;
    if (g.vertex(peer).kind != VertexKind::kDciSwitch || g.vertex(peer).dc == 0) {
      continue;
    }
    if (victim < 0 || l.delay_ns < best_delay) {
      victim = li;
      best_delay = l.delay_ns;
    }
  }
  return victim;
}

// Testbed8 LCMP run with a cut-then-repair of the preferred first-hop link,
// monitored in collect mode so tests can inspect the violation log.
ExperimentResult RunMonitoredCut(bool disable_failover) {
  ExperimentConfig config;
  config.topo = TopologyKind::kTestbed8;
  config.policy = PolicyKind::kLcmp;
  config.num_flows = 200;
  config.load = 0.3;
  config.seed = 5;
  config.horizon = Seconds(60);
  config.monitor_invariants = true;
  config.monitor_strict = false;
  config.lcmp.disable_failover = disable_failover;

  const Graph graph = BuildTopology(config);
  FaultEvent cut;
  cut.at = Milliseconds(5);
  cut.kind = FaultKind::kLinkDown;
  cut.link_idx = VictimLink(graph);
  config.fault_plan.events.push_back(cut);
  FaultEvent repair = cut;
  repair.at = Milliseconds(60);
  repair.kind = FaultKind::kLinkUp;
  config.fault_plan.events.push_back(repair);
  return RunExperiment(config);
}

TEST(InvariantMonitorTest, HealthyFailoverRunHasNoViolations) {
  const ExperimentResult result = RunMonitoredCut(/*disable_failover=*/false);
  EXPECT_EQ(result.faults_injected, 2);
  EXPECT_GT(result.invariant_checks, 0);
  EXPECT_EQ(result.invariant_violations, 0)
      << (result.violation_log.empty() ? "" : result.violation_log.front());
  // The repair precedes the end of the run, so liveness was checked too.
  EXPECT_EQ(result.flows_completed, result.flows_requested);
}

TEST(InvariantMonitorTest, CatchesDeadPathPinningWhenFailoverDisabled) {
  // Negative control: with lazy invalidation off, the router keeps returning
  // the cached (now dead) egress, so the flow-cache entry is refreshed after
  // the cut — exactly invariant (1). If this test fails, the monitor would
  // also wave through a genuinely broken data plane.
  const ExperimentResult result = RunMonitoredCut(/*disable_failover=*/true);
  EXPECT_EQ(result.faults_injected, 2);
  EXPECT_GT(result.invariant_violations, 0);
  bool saw_pinning = false;
  for (const std::string& v : result.violation_log) {
    if (v.find("pinned to dead port") != std::string::npos) {
      saw_pinning = true;
      break;
    }
  }
  EXPECT_TRUE(saw_pinning) << "expected a dead-path-pinning violation; log[0]: "
                           << (result.violation_log.empty() ? "<empty>"
                                                            : result.violation_log.front());
}

TEST(InvariantMonitorTest, MonitorIsReadOnly) {
  // Same faulted scenario with and without the monitor: identical flow
  // outcomes (the monitor's own timer events are the only difference, and
  // they must not touch the data plane).
  ExperimentConfig config;
  config.topo = TopologyKind::kTestbed8;
  config.policy = PolicyKind::kLcmp;
  config.num_flows = 120;
  config.load = 0.3;
  config.seed = 11;
  const Graph graph = BuildTopology(config);
  FaultEvent cut;
  cut.at = Milliseconds(5);
  cut.kind = FaultKind::kLinkDown;
  cut.link_idx = VictimLink(graph);
  config.fault_plan.events.push_back(cut);
  FaultEvent repair = cut;
  repair.at = Milliseconds(40);
  repair.kind = FaultKind::kLinkUp;
  config.fault_plan.events.push_back(repair);

  config.monitor_invariants = false;
  const ExperimentResult off = RunExperiment(config);
  config.monitor_invariants = true;
  config.monitor_strict = false;
  const ExperimentResult on = RunExperiment(config);

  ASSERT_EQ(off.samples.size(), on.samples.size());
  for (size_t i = 0; i < off.samples.size(); ++i) {
    EXPECT_EQ(off.samples[i].fct, on.samples[i].fct) << "sample " << i;
    EXPECT_EQ(off.samples[i].bytes, on.samples[i].bytes) << "sample " << i;
  }
  EXPECT_EQ(off.flows_completed, on.flows_completed);
  EXPECT_EQ(on.invariant_violations, 0);
}

}  // namespace
}  // namespace lcmp
