// Tests for the discrete-event queue and the simulation driver.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace lcmp {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    TimeNs t = 0;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimestampIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    q.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    TimeNs t = 0;
    q.Pop(&t)();
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, PopReportsTimestamp) {
  EventQueue q;
  q.Push(42, [] {});
  EXPECT_EQ(q.PeekTime(), 42);
  TimeNs t = 0;
  q.Pop(&t);
  EXPECT_EQ(t, 42);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, InterleavedPushPop) {
  EventQueue q;
  q.Push(10, [] {});
  q.Push(5, [] {});
  TimeNs t = 0;
  q.Pop(&t);
  EXPECT_EQ(t, 5);
  q.Push(1, [] {});
  q.Pop(&t);
  EXPECT_EQ(t, 1);
  q.Pop(&t);
  EXPECT_EQ(t, 10);
}

TEST(EventQueueTest, LargeHeapStaysSorted) {
  EventQueue q;
  // Pseudo-random insertion order.
  uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.Push(static_cast<TimeNs>(x % 100000), [] {});
  }
  TimeNs prev = -1;
  while (!q.empty()) {
    TimeNs t = 0;
    q.Pop(&t);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SimulatorTest, AdvancesTime) {
  Simulator sim;
  TimeNs seen = -1;
  sim.Schedule(100, [&] { seen = sim.now(); });
  sim.Run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<TimeNs> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.now());
    sim.Schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{10, 15}));
}

TEST(SimulatorTest, StopHaltsExecution) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, HorizonStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(1000, [&] { ++fired; });
  sim.Run(/*until=*/100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
  // Resuming runs the remaining event.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  TimeNs seen = -1;
  sim.ScheduleAt(77, [&] { seen = sim.now(); });
  sim.Run();
  EXPECT_EQ(seen, 77);
}

TEST(SimulatorTest, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 25; ++i) {
    sim.Schedule(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 25u);
}

}  // namespace
}  // namespace lcmp
