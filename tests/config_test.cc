// Tests for LcmpConfig validation and defaults (the paper's recommended
// operating point).
#include <gtest/gtest.h>

#include "core/config.h"

namespace lcmp {
namespace {

TEST(ConfigTest, DefaultsMatchPaperRecommendations) {
  const LcmpConfig c;
  EXPECT_EQ(c.alpha, 3);  // Sec. 5: (alpha, beta) = (3, 1)
  EXPECT_EQ(c.beta, 1);
  EXPECT_EQ(c.w_dl, 3);  // Sec. 7.3: delay-biased path quality
  EXPECT_EQ(c.w_lc, 1);
  EXPECT_EQ(c.w_ql, 2);  // Sec. 7.4: queue-first congestion weights
  EXPECT_EQ(c.w_tl, 1);
  EXPECT_EQ(c.w_dp, 1);
  EXPECT_EQ(c.trend_shift_k, 3);       // Sec. 3.3: K = 3
  EXPECT_EQ(c.keep_num * 2, c.keep_den);  // Sec. 3.4: keep the lower half
  EXPECT_EQ(c.flow_cache_capacity, 50'000);  // Sec. 4 example
}

TEST(ConfigTest, DefaultIsValid) { EXPECT_TRUE(ValidateConfig(LcmpConfig{})); }

TEST(ConfigTest, AblationVariantsAreValid) {
  // rm-alpha and rm-beta (Sec. 7.1) must validate: one of the two fusion
  // weights may be zero, not both.
  LcmpConfig rm_alpha;
  rm_alpha.alpha = 0;
  EXPECT_TRUE(ValidateConfig(rm_alpha));
  LcmpConfig rm_beta;
  rm_beta.beta = 0;
  EXPECT_TRUE(ValidateConfig(rm_beta));
  LcmpConfig both;
  both.alpha = 0;
  both.beta = 0;
  EXPECT_FALSE(ValidateConfig(both));
}

TEST(ConfigTest, RejectsNegativeWeights) {
  LcmpConfig c;
  c.w_ql = -1;
  EXPECT_FALSE(ValidateConfig(c));
}

TEST(ConfigTest, RejectsBadShifts) {
  LcmpConfig c;
  c.s_path = 40;
  EXPECT_FALSE(ValidateConfig(c));
  c = LcmpConfig{};
  c.trend_shift_k = -2;
  EXPECT_FALSE(ValidateConfig(c));
}

TEST(ConfigTest, RejectsBadKeepFraction) {
  LcmpConfig c;
  c.keep_num = 3;
  c.keep_den = 2;
  EXPECT_FALSE(ValidateConfig(c));
  c = LcmpConfig{};
  c.keep_den = 0;
  EXPECT_FALSE(ValidateConfig(c));
}

TEST(ConfigTest, RejectsBadLevels) {
  LcmpConfig c;
  c.num_queue_levels = 1;
  EXPECT_FALSE(ValidateConfig(c));
  c = LcmpConfig{};
  c.num_cap_classes = 500;
  EXPECT_FALSE(ValidateConfig(c));
}

TEST(ConfigTest, RejectsNonPositiveTimings) {
  LcmpConfig c;
  c.sample_interval = 0;
  EXPECT_FALSE(ValidateConfig(c));
  c = LcmpConfig{};
  c.flow_idle_timeout = -1;
  EXPECT_FALSE(ValidateConfig(c));
  c = LcmpConfig{};
  c.delay_saturation = 0;
  EXPECT_FALSE(ValidateConfig(c));
}

TEST(ConfigTest, SetDelaySaturationKeepsShiftInSync) {
  LcmpConfig c;
  c.SetDelaySaturation(Milliseconds(16));
  EXPECT_EQ(c.delay_shift, LcmpConfig::DelayShiftFor(Milliseconds(16)));
  EXPECT_TRUE(ValidateConfig(c));
}

TEST(ConfigTest, RejectsStaleDelayShift) {
  // Writing delay_saturation directly leaves the precomputed hot-path shift
  // stale; validation must catch it instead of silently mis-scoring delays.
  LcmpConfig c;
  c.delay_saturation = Milliseconds(16);  // bypasses SetDelaySaturation
  EXPECT_FALSE(ValidateConfig(c));
}

TEST(ConfigTest, DelayShiftForSaturatesAt255Quanta) {
  // The shift maps the saturation point to the top of the byte range.
  const TimeNs sat = Milliseconds(64);
  const int s = LcmpConfig::DelayShiftFor(sat);
  EXPECT_LE(sat >> s, 255);
  EXPECT_GT(sat >> (s - 1), 255);
}

TEST(ConfigTest, HighWaterLevelDerivation) {
  LcmpConfig c;
  c.num_queue_levels = 16;
  EXPECT_EQ(c.HighWaterLevel(), 12);
  c.num_queue_levels = 8;
  EXPECT_EQ(c.HighWaterLevel(), 6);
}

}  // namespace
}  // namespace lcmp
