// Tests for the on-switch congestion estimator (Sec. 3.3): Q quantization,
// trend EWMA (Eq. 3), duration penalty, fusion (Eq. 4/5), register layout.
#include <gtest/gtest.h>

#include <memory>

#include "core/bootstrap_tables.h"
#include "core/congestion_estimator.h"

namespace lcmp {
namespace {

struct Fixture {
  Fixture() : tables(BootstrapTables::Build(config)), est(config, &tables, 4) {}
  LcmpConfig config;
  BootstrapTables tables;
  CongestionEstimator est;
};

TEST(CongestionEstimatorTest, RegisterBlockIs24Bytes) {
  // The Sec. 4 accounting: 4 x 32-bit + 1 x 64-bit = 24 B per port.
  EXPECT_EQ(sizeof(PortCongestionState), 24u);
}

TEST(CongestionEstimatorTest, MemoryScalesWithPorts) {
  LcmpConfig c;
  BootstrapTables t = BootstrapTables::Build(c);
  CongestionEstimator est(c, &t, 48);
  EXPECT_EQ(est.MemoryBytes(), 48u * 24u);  // paper's 1152 B example
}

TEST(CongestionEstimatorTest, EmptyQueueScoresZero) {
  Fixture f;
  f.est.Sample(0, 0, Gbps(100), Microseconds(100));
  EXPECT_EQ(f.est.CongScore(0, Gbps(100)), 0);
}

TEST(CongestionEstimatorTest, DeepQueueScoresHigh) {
  Fixture f;
  // Queue ref for 100G @ 400us = 5 MB; 5 MB queue => top level.
  f.est.Sample(0, 5'000'000, Gbps(100), Microseconds(100));
  const CongestionSignals s = f.est.Signals(0, Gbps(100));
  EXPECT_EQ(s.queue_level, f.config.num_queue_levels - 1);
  EXPECT_EQ(s.q_score, 255);
  EXPECT_GT(s.fused, 100);
}

TEST(CongestionEstimatorTest, TrendPositiveOnGrowth) {
  Fixture f;
  TimeNs now = 0;
  int64_t q = 0;
  for (int i = 0; i < 10; ++i) {
    now += f.config.sample_interval;
    q += 400'000;  // steady growth
    f.est.Sample(0, q, Gbps(100), now);
  }
  EXPECT_GT(f.est.state(0).trend, 0);
  EXPECT_GT(f.est.Signals(0, Gbps(100)).t_score, 0);
}

TEST(CongestionEstimatorTest, TrendDecaysAfterGrowthStops) {
  Fixture f;
  TimeNs now = 0;
  for (int i = 0; i < 10; ++i) {
    now += f.config.sample_interval;
    f.est.Sample(0, (i + 1) * 400'000, Gbps(100), now);
  }
  const int32_t peak = f.est.state(0).trend;
  ASSERT_GT(peak, 0);
  for (int i = 0; i < 40; ++i) {
    now += f.config.sample_interval;
    f.est.Sample(0, 4'000'000, Gbps(100), now);  // flat queue
  }
  EXPECT_LT(f.est.state(0).trend, peak / 4);
}

TEST(CongestionEstimatorTest, ShrinkingQueueGivesNonPositiveTrendScore) {
  Fixture f;
  TimeNs now = 0;
  f.est.Sample(0, 4'000'000, Gbps(100), now);
  for (int i = 0; i < 10; ++i) {
    now += f.config.sample_interval;
    f.est.Sample(0, 4'000'000 - (i + 1) * 300'000, Gbps(100), now);
  }
  // Non-positive trends map to score 0 (focus on growing queues).
  EXPECT_EQ(f.est.Signals(0, Gbps(100)).t_score, 0);
}

TEST(CongestionEstimatorTest, DurationCounterAccumulatesAboveHighWater) {
  Fixture f;
  TimeNs now = 0;
  for (int i = 0; i < 8; ++i) {
    now += f.config.sample_interval;
    f.est.Sample(0, 5'000'000, Gbps(100), now);  // top level, above high water
  }
  EXPECT_EQ(f.est.state(0).dur_cnt, 8);
  EXPECT_GT(f.est.Signals(0, Gbps(100)).d_score, 0);
}

TEST(CongestionEstimatorTest, DurationDecaysBelowHighWater) {
  Fixture f;
  TimeNs now = 0;
  for (int i = 0; i < 8; ++i) {
    now += f.config.sample_interval;
    f.est.Sample(0, 5'000'000, Gbps(100), now);
  }
  ASSERT_EQ(f.est.state(0).dur_cnt, 8);
  for (int i = 0; i < 3; ++i) {
    now += f.config.sample_interval;
    f.est.Sample(0, 0, Gbps(100), now);
  }
  EXPECT_EQ(f.est.state(0).dur_cnt, 5);
}

TEST(CongestionEstimatorTest, DurationScoreSaturatesAt255) {
  Fixture f;
  TimeNs now = 0;
  for (int i = 0; i < 200; ++i) {
    now += f.config.sample_interval;
    f.est.Sample(0, 5'000'000, Gbps(100), now);
  }
  EXPECT_EQ(f.est.Signals(0, Gbps(100)).d_score, 255);
}

TEST(CongestionEstimatorTest, FusedScoreIsClampedByte) {
  Fixture f;
  TimeNs now = 0;
  for (int i = 0; i < 300; ++i) {
    now += f.config.sample_interval;
    f.est.Sample(0, 50'000'000 + i * 1'000'000, Gbps(100), now);
  }
  // Q, T, D are all saturated; fused = (2*255 + 255 + 255) >> 2 = 255 only
  // when the trend also pins; assert the hard clamp and a near-max value.
  EXPECT_LE(f.est.CongScore(0, Gbps(100)), 255);
  EXPECT_GE(f.est.CongScore(0, Gbps(100)), 200);
}

TEST(CongestionEstimatorTest, NeedsRefreshHonorsInterval) {
  Fixture f;
  f.est.Sample(0, 1000, Gbps(100), Microseconds(100));
  EXPECT_FALSE(f.est.NeedsRefresh(0, Microseconds(100) + f.config.min_refresh_interval - 1));
  EXPECT_TRUE(f.est.NeedsRefresh(0, Microseconds(100) + f.config.min_refresh_interval));
}

TEST(CongestionEstimatorTest, PortsAreIndependent) {
  Fixture f;
  f.est.Sample(0, 5'000'000, Gbps(100), Microseconds(100));
  f.est.Sample(1, 0, Gbps(100), Microseconds(100));
  EXPECT_GT(f.est.CongScore(0, Gbps(100)), 0);
  EXPECT_EQ(f.est.CongScore(1, Gbps(100)), 0);
}

TEST(CongestionEstimatorTest, WeightsChangeFusion) {
  LcmpConfig queue_heavy;
  queue_heavy.w_ql = 4;
  queue_heavy.w_tl = 0;
  queue_heavy.w_dp = 0;
  LcmpConfig trend_heavy;
  trend_heavy.w_ql = 0;
  trend_heavy.w_tl = 4;
  trend_heavy.w_dp = 0;
  BootstrapTables tq = BootstrapTables::Build(queue_heavy);
  BootstrapTables tt = BootstrapTables::Build(trend_heavy);
  CongestionEstimator eq(queue_heavy, &tq, 1);
  CongestionEstimator et(trend_heavy, &tt, 1);
  // Deep but static queue: queue-weighted sees it, trend-weighted does not.
  TimeNs now = 0;
  for (int i = 0; i < 20; ++i) {
    now += queue_heavy.sample_interval;
    eq.Sample(0, 5'000'000, Gbps(100), now);
    et.Sample(0, 5'000'000, Gbps(100), now);
  }
  EXPECT_GT(eq.CongScore(0, Gbps(100)), 100);
  EXPECT_EQ(et.CongScore(0, Gbps(100)), 0);
}

// Property sweep: the fused score never exceeds 255 and is non-decreasing in
// instantaneous queue depth, for several weight allocations.
class CongestionWeightSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CongestionWeightSweep, FusedMonotoneInQueueDepth) {
  LcmpConfig c;
  std::tie(c.w_ql, c.w_tl, c.w_dp) = GetParam();
  BootstrapTables t = BootstrapTables::Build(c);
  uint8_t prev = 0;
  for (int64_t q = 0; q <= 6'000'000; q += 250'000) {
    CongestionEstimator est(c, &t, 1);
    est.Sample(0, q, Gbps(100), Microseconds(100));
    const uint8_t s = est.CongScore(0, Gbps(100));
    EXPECT_LE(s, 255);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

INSTANTIATE_TEST_SUITE_P(Weights, CongestionWeightSweep,
                         ::testing::Values(std::make_tuple(2, 1, 1), std::make_tuple(1, 2, 1),
                                           std::make_tuple(1, 1, 2), std::make_tuple(1, 0, 0)));

// --- Regression: t=0 is a legitimate sample time, not "uninitialized" ---

TEST(CongestionEstimatorTest, SampleAtTimeZeroIsARealSample) {
  Fixture f;
  EXPECT_FALSE(f.est.has_sample(0));
  f.est.Sample(0, 0, Gbps(100), 0);
  EXPECT_TRUE(f.est.has_sample(0));
  EXPECT_FALSE(f.est.has_sample(1));
}

TEST(CongestionEstimatorTest, CadenceNormalizationAppliesAfterTimeZeroSample) {
  // Regression: the old code used `last_sample > 0` as an "uninitialized"
  // sentinel, so a port first sampled at t=0 looked never-sampled on its
  // SECOND sample and the early/late cadence normalization was skipped,
  // corrupting the first trend delta. With the explicit has-sample flag the
  // second sample (taken at half the nominal cadence) is normalized: the
  // observed delta doubles before entering the EWMA.
  Fixture f;
  f.est.Sample(0, 0, Gbps(100), 0);
  f.est.Sample(0, 8000, Gbps(100), f.config.sample_interval / 2);
  // delta = 8000 * sample_interval / (sample_interval/2) = 16000;
  // trend = 0 - (0 >> k) + (16000 >> 3) = 2000. The pre-fix code skipped the
  // normalization and produced 1000.
  EXPECT_EQ(f.est.state(0).trend, 16000 >> f.config.trend_shift_k);
}

TEST(CongestionEstimatorTest, FirstSampleIsNeverCadenceNormalized) {
  // A port whose first-ever sample arrives off-cadence has no previous
  // sample to measure against; the raw delta must enter the EWMA unscaled.
  Fixture f;
  f.est.Sample(0, 8000, Gbps(100), f.config.sample_interval / 2);
  EXPECT_EQ(f.est.state(0).trend, 8000 >> f.config.trend_shift_k);
}

}  // namespace
}  // namespace lcmp
