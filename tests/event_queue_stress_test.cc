// Randomized stress test of the indexed-heap EventQueue against a
// std::priority_queue reference: 10k pushes with heavy timestamp collisions,
// interleaved pops, and verification of the exact (time, seq) FIFO order the
// simulator's determinism contract depends on. Also exercises the slot free
// list (slab reuse) and InlineEvent's inline/heap accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace lcmp {
namespace {

struct RefEntry {
  TimeNs time;
  uint64_t seq;
};
struct RefGreater {
  bool operator()(const RefEntry& a, const RefEntry& b) const {
    return a.time > b.time || (a.time == b.time && a.seq > b.seq);
  }
};
using RefQueue = std::priority_queue<RefEntry, std::vector<RefEntry>, RefGreater>;

TEST(EventQueueStressTest, MatchesPriorityQueueReferenceWithDuplicateTimes) {
  EventQueue q;
  RefQueue ref;
  Rng rng(1234);

  // Each callback records the seq its push returned; popping must replay the
  // exact (time, seq) sequence the reference dictates.
  uint64_t fired_seq = ~0ull;
  constexpr int kPushes = 10'000;
  int pushed = 0;
  int pops = 0;
  while (pushed < kPushes || !q.empty()) {
    const bool push_more = pushed < kPushes && (q.empty() || rng.NextU64() % 3 != 0);
    if (push_more) {
      // Few distinct timestamps -> long FIFO runs at equal time. Seq ids are
      // sequential from 0, so the push count predicts the returned seq.
      const TimeNs t = static_cast<TimeNs>(rng.NextU64() % 64);
      const uint64_t expected_seq = static_cast<uint64_t>(pushed);
      const uint64_t seq =
          q.Push(t, [&fired_seq, expected_seq] { fired_seq = expected_seq; });
      ASSERT_EQ(seq, expected_seq);
      ref.push(RefEntry{t, seq});
      ++pushed;
    } else {
      ASSERT_FALSE(ref.empty());
      const RefEntry expect = ref.top();
      ref.pop();
      TimeNs t = 0;
      EventFn fn = q.Pop(&t);
      ASSERT_TRUE(static_cast<bool>(fn));
      fn();
      EXPECT_EQ(t, expect.time) << "pop #" << pops;
      EXPECT_EQ(fired_seq, expect.seq) << "pop #" << pops;
      ++pops;
    }
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(pops, kPushes);
}

TEST(EventQueueStressTest, CallbackOrderFollowsTimeSeqExactly) {
  EventQueue q;
  Rng rng(99);
  std::vector<std::pair<TimeNs, uint64_t>> pushed;  // (time, seq)
  std::vector<uint64_t> fired;

  constexpr int kPushes = 10'000;
  for (int i = 0; i < kPushes; ++i) {
    const TimeNs t = static_cast<TimeNs>(rng.NextU64() % 16);  // many duplicates
    uint64_t seq = 0;
    seq = q.Push(t, [&fired, i] { fired.push_back(static_cast<uint64_t>(i)); });
    pushed.emplace_back(t, seq);
  }

  // Expected firing order: stable sort by (time, seq); seq is the push index.
  std::vector<uint64_t> expect_order(kPushes);
  for (uint64_t i = 0; i < kPushes; ++i) {
    expect_order[i] = i;
  }
  std::stable_sort(expect_order.begin(), expect_order.end(), [&](uint64_t a, uint64_t b) {
    return pushed[a].first < pushed[b].first;
  });

  TimeNs prev = -1;
  while (!q.empty()) {
    TimeNs t = 0;
    q.Pop(&t)();
    EXPECT_GE(t, prev);  // non-decreasing time
    prev = t;
  }
  ASSERT_EQ(fired.size(), expect_order.size());
  EXPECT_EQ(fired, expect_order);
}

TEST(EventQueueStressTest, SlotSlabReusesFreedSlotsAllocationFree) {
  EventQueue q;
  // Steady-state churn: a bounded population cycled many times must neither
  // grow the callable slab beyond the high-water mark nor fall back to heap
  // callables for small captures.
  InlineEvent::ResetCounters();
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 32; ++i) {
      q.Push(round * 100 + i, [&fired] { ++fired; });
    }
    while (!q.empty()) {
      TimeNs t = 0;
      q.Pop(&t)();
    }
  }
  EXPECT_EQ(fired, 200 * 32);
  const InlineEvent::Counters c = InlineEvent::counters();
  EXPECT_EQ(c.heap_events, 0u);
  EXPECT_GE(c.inline_events, static_cast<uint64_t>(200 * 32));
}

}  // namespace
}  // namespace lcmp
