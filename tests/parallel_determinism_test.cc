// The parallel sweep engine's core guarantee: a run's result is
// bit-identical no matter how many worker threads execute the sweep or how
// the runs interleave. Each test expands one grid, runs it sequentially
// (jobs=1, the legacy inline call stack) and in parallel, and compares the
// per-run digests slot by slot.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "harness/sweep.h"

namespace lcmp {
namespace {

ExperimentConfig SmallBase() {
  ExperimentConfig c;
  c.num_flows = 30;
  c.hosts_per_dc = 2;
  return c;
}

std::vector<RunOutcome> RunWithJobs(const SweepSpec& spec, int jobs) {
  SweepRunnerOptions options;
  options.jobs = jobs;
  std::vector<RunOutcome> outcomes;
  std::string error;
  EXPECT_TRUE(RunSweep(spec, options, &outcomes, &error)) << error;
  return outcomes;
}

void ExpectIdenticalOutcomes(const std::vector<RunOutcome>& sequential,
                             const std::vector<RunOutcome>& parallel) {
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].run.index, i);
    EXPECT_EQ(parallel[i].run.index, i);
    EXPECT_EQ(sequential[i].run.label, parallel[i].run.label) << i;
    EXPECT_EQ(sequential[i].digest, parallel[i].digest)
        << "run " << i << " (" << sequential[i].run.label << ") diverged across job counts";
    EXPECT_EQ(sequential[i].result.flows_completed, parallel[i].result.flows_completed) << i;
    EXPECT_EQ(sequential[i].result.events_processed, parallel[i].result.events_processed) << i;
    EXPECT_EQ(sequential[i].result.sim_end_time, parallel[i].result.sim_end_time) << i;
  }
}

TEST(ParallelDeterminismTest, GridIsBitIdenticalAcrossJobCounts) {
  SweepSpec spec(SmallBase());
  spec.Policies({PolicyKind::kEcmp, PolicyKind::kLcmp}).Loads({0.2, 0.4}).Seeds({1, 2});
  const auto sequential = RunWithJobs(spec, 1);
  const auto parallel = RunWithJobs(spec, 4);
  ASSERT_EQ(sequential.size(), 8u);
  ExpectIdenticalOutcomes(sequential, parallel);

  // The digest must actually discriminate: different seeds of the same cell
  // are different simulations.
  std::set<uint64_t> digests;
  for (const RunOutcome& o : sequential) {
    digests.insert(o.digest);
  }
  EXPECT_GT(digests.size(), 1u);
}

TEST(ParallelDeterminismTest, ChaosRunsStayDeterministic) {
  // Fault injection draws from its own seeded stream; the parallel engine
  // must not perturb it.
  ExperimentConfig base = SmallBase();
  base.chaos_seed = 7;
  base.chaos_rate = 30.0;
  base.monitor_invariants = true;
  base.monitor_strict = false;
  SweepSpec spec(base);
  spec.Policies({PolicyKind::kEcmp, PolicyKind::kLcmp}).Seeds({1, 2});
  const auto sequential = RunWithJobs(spec, 1);
  const auto parallel = RunWithJobs(spec, 2);
  ASSERT_EQ(sequential.size(), 4u);
  ExpectIdenticalOutcomes(sequential, parallel);
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].result.faults_injected, parallel[i].result.faults_injected) << i;
    EXPECT_GT(sequential[i].result.faults_injected, 0) << i;
    EXPECT_EQ(sequential[i].result.invariant_violations,
              parallel[i].result.invariant_violations)
        << i;
  }
}

TEST(ParallelDeterminismTest, MoreJobsThanRunsAndDefaultJobs) {
  SweepSpec spec(SmallBase());
  spec.Policies({PolicyKind::kEcmp, PolicyKind::kLcmp});
  const auto sequential = RunWithJobs(spec, 1);
  const auto oversubscribed = RunWithJobs(spec, 16);  // capped at the run count
  const auto defaulted = RunWithJobs(spec, 0);        // DefaultJobs()
  ExpectIdenticalOutcomes(sequential, oversubscribed);
  ExpectIdenticalOutcomes(sequential, defaulted);
  EXPECT_GE(DefaultJobs(), 1);
}

TEST(ParallelDeterminismTest, ResultsJsonCarriesEveryRun) {
  SweepSpec spec(SmallBase());
  spec.Policies({PolicyKind::kEcmp, PolicyKind::kLcmp});
  const auto outcomes = RunWithJobs(spec, 2);
  const std::string json = SweepResultsToJson(outcomes, /*jobs=*/2);
  for (const RunOutcome& o : outcomes) {
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "0x%016llx",
                  static_cast<unsigned long long>(o.digest));
    EXPECT_NE(json.find(digest_hex), std::string::npos) << o.run.label;
    EXPECT_NE(json.find(o.run.label), std::string::npos) << o.run.label;
  }
}

}  // namespace
}  // namespace lcmp
