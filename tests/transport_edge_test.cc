// Edge-case hardening tests for the RDMA transport: stale control packets,
// duplicate deliveries, odd flow sizes, simultaneous bidirectional flows
// sharing one switch, and CNP pacing.
#include <gtest/gtest.h>

#include "routing/ecmp.h"
#include "sim/network.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"

namespace lcmp {
namespace {

PolicyFactory EcmpFactory() {
  return [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
}

FlowSpec MakeFlow(FlowId id, NodeId src, NodeId dst, uint64_t bytes, TimeNs start = 0) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.key = FlowKey{src, dst, static_cast<uint32_t>(id), 4791, 17};
  f.size_bytes = bytes;
  f.start_time = start;
  return f;
}

struct Harness {
  explicit Harness(Graph g, TransportConfig tcfg = {})
      : graph(std::move(g)),
        net(graph, NetworkConfig{}, EcmpFactory()),
        transport(&net, tcfg,
                  [this](const FlowRecord& r) { records.push_back(r); }) {}
  Graph graph;
  Network net;
  RdmaTransport transport;
  std::vector<FlowRecord> records;
};

class FlowSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowSizeSweep, ExactByteCountDelivered) {
  // Sizes around MTU boundaries: 1 B, MTU-1, MTU, MTU+1, 10*MTU+17, ...
  const LinearTopo t = BuildLinear();
  Harness h(t.graph);
  h.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, GetParam()));
  h.net.sim().Run(Seconds(10));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].spec.size_bytes, GetParam());
  const uint32_t expect_packets = static_cast<uint32_t>(
      (GetParam() + kDefaultMtuPayload - 1) / kDefaultMtuPayload);
  EXPECT_EQ(h.records[0].total_packets, expect_packets);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowSizeSweep,
                         ::testing::Values(1ull, 4095ull, 4096ull, 4097ull, 40977ull,
                                           1'000'000ull));

TEST(TransportEdgeTest, BidirectionalFlowsDoNotInterfereInSwitchState) {
  // A->B and B->A flows share the DCI switches; ACKs of one direction must
  // not collide with the other's data in any per-flow switch state.
  const Graph g = BuildDumbbell(2, 2, Gbps(10), Milliseconds(1));
  Harness h(g);
  const auto a = g.HostsInDc(0);
  const auto b = g.HostsInDc(1);
  h.transport.StartFlow(MakeFlow(1, a[0], b[0], 500'000));
  h.transport.StartFlow(MakeFlow(2, b[0], a[0], 500'000));
  h.transport.StartFlow(MakeFlow(3, a[1], b[1], 500'000));
  h.transport.StartFlow(MakeFlow(4, b[1], a[1], 500'000));
  h.net.sim().Run(Seconds(10));
  EXPECT_EQ(h.records.size(), 4u);
  for (const FlowRecord& r : h.records) {
    EXPECT_EQ(r.retransmitted_packets, 0u);
  }
}

TEST(TransportEdgeTest, ManySmallFlowsSameHostPair) {
  // 200 one-packet flows between the same pair: per-flow nonces must keep
  // transport and switch state separate.
  const LinearTopo t = BuildLinear();
  Harness h(t.graph);
  for (FlowId i = 1; i <= 200; ++i) {
    h.transport.ScheduleFlow(
        MakeFlow(i, t.src_host, t.dst_host, 100, static_cast<TimeNs>(i) * Microseconds(1)));
  }
  h.net.sim().Run(Seconds(10));
  EXPECT_EQ(h.records.size(), 200u);
}

TEST(TransportEdgeTest, CnpPacingLimitsCnpRate) {
  // Saturate a slow link; CNPs must be paced at >= cnp_interval per flow,
  // so their count is far below the number of marked packets.
  Graph g;
  FabricOptions fo;
  fo.hosts = 1;
  const NodeId dci0 = BuildDcFabric(g, 0, fo);
  const NodeId dci1 = BuildDcFabric(g, 1, fo);
  g.AddLink(dci0, dci1, Gbps(2), Milliseconds(1));
  TransportConfig tcfg;
  Harness h(std::move(g), tcfg);
  h.transport.StartFlow(MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0],
                                 8'000'000));
  h.net.sim().Run(Seconds(60));
  ASSERT_EQ(h.records.size(), 1u);
  const TimeNs fct = h.records[0].complete_time - h.records[0].start_time;
  const int64_t max_cnps = fct / tcfg.cnp_interval + 1;
  EXPECT_LE(h.transport.cnps_received(), max_cnps);
}

TEST(TransportEdgeTest, CompletionRecordsConsistentTimestamps) {
  const LinearTopo t = BuildLinear(Gbps(100), Milliseconds(2));
  Harness h(t.graph);
  h.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, 50'000));
  h.net.sim().Run();
  ASSERT_EQ(h.records.size(), 1u);
  const FlowRecord& r = h.records[0];
  EXPECT_GT(r.complete_time, r.start_time);
  // One-way delay alone is 4 ms (two 2 ms hops); FCT must exceed it.
  EXPECT_GT(r.complete_time - r.start_time, Milliseconds(4));
  EXPECT_GT(r.base_rtt, Milliseconds(8));
}

TEST(TransportEdgeTest, ZeroFlowsIsANoop) {
  const LinearTopo t = BuildLinear();
  Harness h(t.graph);
  h.net.sim().Run();
  EXPECT_TRUE(h.records.empty());
  EXPECT_EQ(h.transport.data_packets_sent(), 0);
}

TEST(TransportEdgeTest, SequentialFlowsReuseCleanState) {
  // The same five-tuple nonce is reused after the first flow fully
  // completes; the transport must treat it as a fresh flow.
  const LinearTopo t = BuildLinear();
  Harness h(t.graph);
  h.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, 10'000));
  h.net.sim().Run();
  ASSERT_EQ(h.records.size(), 1u);
  h.transport.StartFlow(MakeFlow(2, t.src_host, t.dst_host, 10'000));
  h.net.sim().Run();
  EXPECT_EQ(h.records.size(), 2u);
}

}  // namespace
}  // namespace lcmp
