// SegmentedCc composite: min-rate composition, per-segment signal demux
// (gateway-stamp RTT split, ECN mask routing, INT slicing, CNP fan-out), and
// the legacy --cc shim equivalence (a uniform spec must reproduce the
// single-instance transport bit for bit, at any shard count).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/runner.h"
#include "sim/int_pool.h"
#include "transport/cc/cc_registry.h"
#include "transport/cc/segmented_cc.h"

namespace lcmp {
namespace {

// Scripted controller: fixed rate, records every callback it receives.
class FakeCc : public CongestionControl {
 public:
  explicit FakeCc(int64_t rate) : rate_(rate) {}

  void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs /*now*/) override {
    init_line_rate = line_rate_bps;
    init_base_rtt = base_rtt;
  }
  void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs /*now*/) override {
    ++acks;
    last_rtt = rtt;
    last_ecn_echo = ack.ecn_echo;
    last_int_hops = telemetry != nullptr ? telemetry->hops : 0;
  }
  void OnCnp(TimeNs /*now*/, uint8_t /*ecn_mask*/) override { ++cnps; }
  void OnTimeout(TimeNs /*now*/) override { ++timeouts; }
  int64_t rate_bps() const override { return rate_; }
  const char* name() const override { return "fake"; }

  int64_t rate_;
  int64_t init_line_rate = 0;
  TimeNs init_base_rtt = 0;
  int acks = 0;
  int cnps = 0;
  int timeouts = 0;
  TimeNs last_rtt = 0;
  bool last_ecn_echo = false;
  int last_int_hops = 0;
};

struct Composite {
  FakeCc* intra_src;
  FakeCc* inter;
  FakeCc* intra_dst;
  std::unique_ptr<SegmentedCc> cc;
};

Composite MakeComposite(int64_t r0, int64_t r1, int64_t r2,
                        SegmentBaseRtts base = {Microseconds(20), Milliseconds(20),
                                                Microseconds(20)}) {
  auto s0 = std::make_unique<FakeCc>(r0);
  auto s1 = std::make_unique<FakeCc>(r1);
  auto s2 = std::make_unique<FakeCc>(r2);
  Composite c{s0.get(), s1.get(), s2.get(), nullptr};
  c.cc = std::make_unique<SegmentedCc>(std::move(s0), std::move(s1), std::move(s2), base,
                                       "fake/fake");
  return c;
}

TEST(SegmentedCcTest, RateIsMinOfSegments) {
  Composite c = MakeComposite(Gbps(100), Gbps(10), Gbps(40));
  EXPECT_EQ(c.cc->rate_bps(), Gbps(10));
  c.inter->rate_ = Gbps(200);
  EXPECT_EQ(c.cc->rate_bps(), Gbps(40));
  c.intra_src->rate_ = Gbps(1);
  EXPECT_EQ(c.cc->rate_bps(), Gbps(1));
}

TEST(SegmentedCcTest, InitHandsEachSegmentItsOwnBaseRtt) {
  SegmentBaseRtts base{Microseconds(15), Milliseconds(40), Microseconds(25)};
  Composite c = MakeComposite(Gbps(100), Gbps(100), Gbps(100), base);
  c.cc->Init(Gbps(100), /*base_rtt=*/Milliseconds(41), /*now=*/0);
  EXPECT_EQ(c.intra_src->init_base_rtt, Microseconds(15));
  EXPECT_EQ(c.inter->init_base_rtt, Milliseconds(40));
  EXPECT_EQ(c.intra_dst->init_base_rtt, Microseconds(25));
  EXPECT_EQ(c.inter->init_line_rate, Gbps(100));
}

// Pins the gateway-stamp RTT split exactly: the bugfix threads the source
// and destination DCI arrival offsets through the Packet so each segment sees
// its own round trip, not a base-RTT guess.
TEST(SegmentedCcTest, GatewayStampsSplitRttExactly) {
  Composite c = MakeComposite(Gbps(100), Gbps(100), Gbps(100));
  Packet ack;
  ack.type = PacketType::kAck;
  ack.sent_ts = Milliseconds(1);
  ack.gw_src_off = static_cast<uint32_t>(Microseconds(5));    // host -> src DCI
  ack.gw_dst_off = static_cast<uint32_t>(Milliseconds(10));   // host -> dst DCI
  const TimeNs rtt = Milliseconds(21);
  c.cc->OnAck(ack, nullptr, rtt, /*now=*/Milliseconds(22));

  const SegmentRtts& split = c.cc->last_rtts();
  EXPECT_EQ(split.intra_src, 2 * Microseconds(5));
  EXPECT_EQ(split.inter, 2 * (Milliseconds(10) - Microseconds(5)));
  EXPECT_EQ(split.intra_dst, rtt - split.intra_src - split.inter);
  EXPECT_EQ(split.intra_src + split.inter + split.intra_dst, rtt);
  // Each sub-controller received exactly its own segment round trip.
  EXPECT_EQ(c.intra_src->last_rtt, split.intra_src);
  EXPECT_EQ(c.inter->last_rtt, split.inter);
  EXPECT_EQ(c.intra_dst->last_rtt, split.intra_dst);
}

TEST(SegmentedCcTest, MissingStampsFallBackToProportionalSplit) {
  // Base RTTs 1:2:1 -> a 40us measured RTT splits 10/20/10.
  SegmentBaseRtts base{Microseconds(10), Microseconds(20), Microseconds(10)};
  Composite c = MakeComposite(Gbps(100), Gbps(100), Gbps(100), base);
  Packet ack;
  ack.type = PacketType::kAck;  // gw offsets stay 0: never crossed a DCI
  c.cc->OnAck(ack, nullptr, Microseconds(40), /*now=*/0);
  EXPECT_EQ(c.intra_src->last_rtt, Microseconds(10));
  EXPECT_EQ(c.inter->last_rtt, Microseconds(20));
  EXPECT_EQ(c.intra_dst->last_rtt, Microseconds(10));
}

TEST(SegmentedCcTest, EcnEchoRoutesByMask) {
  Composite c = MakeComposite(Gbps(100), Gbps(100), Gbps(100));
  Packet ack;
  ack.type = PacketType::kAck;
  ack.ecn_echo = true;
  ack.ecn_mask = kSegInterDc;  // the mark happened on the long haul
  c.cc->OnAck(ack, nullptr, Milliseconds(20), /*now=*/0);
  EXPECT_FALSE(c.intra_src->last_ecn_echo);
  EXPECT_TRUE(c.inter->last_ecn_echo);
  EXPECT_FALSE(c.intra_dst->last_ecn_echo);

  ack.ecn_mask = kSegIntraSrc | kSegIntraDst;
  c.cc->OnAck(ack, nullptr, Milliseconds(20), /*now=*/0);
  EXPECT_TRUE(c.intra_src->last_ecn_echo);
  EXPECT_FALSE(c.inter->last_ecn_echo);
  EXPECT_TRUE(c.intra_dst->last_ecn_echo);
}

TEST(SegmentedCcTest, IntStackSlicesByGatewayTimestamp) {
  Composite c = MakeComposite(Gbps(100), Gbps(100), Gbps(100));
  Packet ack;
  ack.type = PacketType::kAck;
  ack.sent_ts = 0;
  ack.gw_src_off = static_cast<uint32_t>(Microseconds(10));
  ack.gw_dst_off = static_cast<uint32_t>(Milliseconds(10));

  IntStack stack;
  stack.hops = 4;
  stack.rec[0].ts = Microseconds(5);    // before src gateway -> intra-src
  stack.rec[1].ts = Microseconds(10);   // at src DCI egress -> inter
  stack.rec[2].ts = Milliseconds(5);    // mid long-haul -> inter
  stack.rec[3].ts = Milliseconds(10);   // at/after dst gateway -> intra-dst
  c.cc->OnAck(ack, &stack, Milliseconds(21), /*now=*/0);

  EXPECT_EQ(c.intra_src->last_int_hops, 1);
  EXPECT_EQ(c.inter->last_int_hops, 2);
  EXPECT_EQ(c.intra_dst->last_int_hops, 1);
}

TEST(SegmentedCcTest, CnpRoutesByMaskAndFansOutWhenUnattributed) {
  Composite c = MakeComposite(Gbps(100), Gbps(100), Gbps(100));
  c.cc->OnCnp(/*now=*/0, kSegIntraDst);
  EXPECT_EQ(c.intra_src->cnps, 0);
  EXPECT_EQ(c.inter->cnps, 0);
  EXPECT_EQ(c.intra_dst->cnps, 1);
  // Unattributed CNP (mask 0) must not be dropped: hit every segment.
  c.cc->OnCnp(/*now=*/0, 0);
  EXPECT_EQ(c.intra_src->cnps, 1);
  EXPECT_EQ(c.inter->cnps, 1);
  EXPECT_EQ(c.intra_dst->cnps, 2);
}

TEST(SegmentedCcTest, TimeoutFansOutToAllSegments) {
  Composite c = MakeComposite(Gbps(100), Gbps(100), Gbps(100));
  c.cc->OnTimeout(/*now=*/0);
  EXPECT_EQ(c.intra_src->timeouts, 1);
  EXPECT_EQ(c.inter->timeouts, 1);
  EXPECT_EQ(c.intra_dst->timeouts, 1);
}

// --- legacy --cc shim equivalence ------------------------------------------

ExperimentConfig ShimBaseConfig() {
  ExperimentConfig c;
  c.topo = TopologyKind::kTestbed8;
  c.pairing = PairingKind::kEndpointPair;
  c.workload = WorkloadKind::kWebSearch;
  c.policy = PolicyKind::kLcmp;
  c.load = 0.3;
  c.num_flows = 60;
  c.hosts_per_dc = 4;
  c.seed = 404;
  return c;
}

// --cc=X and --cc-inter=X --cc-intra=X must produce the same spec, and the
// uniform spec must drive the simulation bit-identically to the pre-registry
// transport (whose digests the golden corpus pins) at any shard count.
TEST(CcShimTest, LegacyFlagEqualsExplicitUniformSplit) {
  for (const std::string& token : CcRegistry::Instance().Tokens()) {
    SegmentCcSpec legacy;
    std::string error;
    ASSERT_TRUE(ApplyLegacyCcFlag(token, &legacy, &error)) << error;

    SegmentCcSpec split;
    ASSERT_TRUE(ParseCcToken(token, &split.inter, &error)) << error;
    ASSERT_TRUE(ParseCcToken(token, &split.intra, &error)) << error;

    EXPECT_EQ(legacy, split) << token;
    EXPECT_TRUE(legacy.uniform());
    EXPECT_EQ(legacy.Token(), token);
  }
}

TEST(CcShimTest, UniformSpecDigestsMatchLegacyAcrossShardCounts) {
  for (const std::string& token : {std::string("dcqcn"), std::string("timely")}) {
    ExperimentConfig legacy = ShimBaseConfig();
    std::string error;
    ASSERT_TRUE(ApplyLegacyCcFlag(token, &legacy.cc, &error)) << error;
    const uint64_t legacy_digest = ExperimentDigest(RunExperiment(legacy));

    ExperimentConfig split = ShimBaseConfig();
    ASSERT_TRUE(ParseCcToken(token, &split.cc.inter, &error)) << error;
    ASSERT_TRUE(ParseCcToken(token, &split.cc.intra, &error)) << error;
    EXPECT_EQ(ExperimentDigest(RunExperiment(split)), legacy_digest) << token;

    split.shards = 4;
    EXPECT_EQ(ExperimentDigest(RunExperiment(split)), legacy_digest)
        << token << " at shards=4";
  }
}

// A split spec exercises the composite end to end: the run completes and the
// per-flow controller reported for a cross-DC flow is the SegmentedCc.
TEST(CcShimTest, SplitSpecRunsAndBeatsNothingButCompletes) {
  ExperimentConfig config = ShimBaseConfig();
  std::string error;
  ASSERT_TRUE(SegmentCcSpec::Parse("lcp/dcqcn", &config.cc, &error)) << error;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.flows_completed, result.flows_requested);
  EXPECT_GT(result.overall.p50, 0.0);

  // Determinism holds for the composite too.
  EXPECT_EQ(ExperimentDigest(RunExperiment(config)), ExperimentDigest(RunExperiment(config)));
}

}  // namespace
}  // namespace lcmp
