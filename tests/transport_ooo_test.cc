// Tests for the out-of-order-tolerance extension (paper Sec. 7.5 future
// work): selective retransmission, flowlet-gap steering, and the contrast
// with Go-Back-N under deliberate reordering.
#include <gtest/gtest.h>

#include <memory>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "routing/policy.h"
#include "stats/fct_recorder.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"

namespace lcmp {
namespace {

// Test-only policy: per-packet round-robin across candidates — maximal
// reordering pressure when candidate paths have different delays.
class PacketSprayPolicy : public MultipathPolicy {
 public:
  PortIndex SelectPort(SwitchNode& sw, const Packet&,
                       std::span<const PathCandidate> candidates) override {
    for (size_t i = 0; i < candidates.size(); ++i) {
      const PathCandidate& c = candidates[(next_ + i) % candidates.size()];
      if (sw.port(c.port).up()) {
        next_ = (next_ + i + 1) % candidates.size();
        return c.port;
      }
    }
    return kInvalidPort;
  }
  const char* name() const override { return "spray"; }

 private:
  size_t next_ = 0;
};

// Dumbbell with two parallel links of *different* delays so per-packet
// spraying reorders heavily.
Graph AsymmetricDumbbell() {
  Graph g;
  FabricOptions fo;
  fo.hosts = 1;
  const NodeId dci0 = BuildDcFabric(g, 0, fo);
  const NodeId dci1 = BuildDcFabric(g, 1, fo);
  g.AddLink(dci0, dci1, Gbps(50), Milliseconds(1));
  g.AddLink(dci0, dci1, Gbps(50), Milliseconds(3));
  return g;
}

struct Harness {
  Harness(Graph g, PolicyFactory factory, TransportConfig tcfg)
      : graph(std::move(g)),
        net(graph, NetworkConfig{}, std::move(factory)),
        recorder(&net.graph()),
        transport(&net, tcfg,
                  [this](const FlowRecord& r) { records.push_back(r); }) {}
  Graph graph;
  Network net;
  FctRecorder recorder;
  RdmaTransport transport;
  std::vector<FlowRecord> records;
};

FlowSpec MakeFlow(FlowId id, NodeId src, NodeId dst, uint64_t bytes) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.key = FlowKey{src, dst, static_cast<uint32_t>(id), 4791, 17};
  f.size_bytes = bytes;
  return f;
}

PolicyFactory SprayFactory() {
  return [](SwitchNode&) { return std::make_unique<PacketSprayPolicy>(); };
}

TEST(OooToleranceTest, GoBackNSuffersUnderSpraying) {
  // Baseline: per-packet spraying over asymmetric-delay paths with a
  // commodity (Go-Back-N) receiver causes heavy retransmission.
  TransportConfig tcfg;
  Harness h(AsymmetricDumbbell(), SprayFactory(), tcfg);
  h.transport.StartFlow(MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0],
                                 4'000'000));
  h.net.sim().Run(Seconds(30));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_GT(h.records[0].retransmitted_packets, 100u);
}

TEST(OooToleranceTest, SelectiveRetransmissionAbsorbsReordering) {
  // With OoO tolerance the same spraying completes with (near-)zero
  // retransmissions: reordered segments are buffered, holes fill naturally.
  TransportConfig tcfg;
  tcfg.ooo_tolerance = true;
  Harness h(AsymmetricDumbbell(), SprayFactory(), tcfg);
  h.transport.StartFlow(MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0],
                                 4'000'000));
  h.net.sim().Run(Seconds(30));
  ASSERT_EQ(h.records.size(), 1u);
  // Spurious NACKs may trigger a handful of selective retransmits, but the
  // Go-Back-N blowup (hundreds) must be gone.
  EXPECT_LT(h.records[0].retransmitted_packets, 20u);
}

TEST(OooToleranceTest, OooFctBeatsGbnUnderSpraying) {
  auto run = [](bool ooo) {
    TransportConfig tcfg;
    tcfg.ooo_tolerance = ooo;
    Harness h(AsymmetricDumbbell(), SprayFactory(), tcfg);
    h.transport.StartFlow(MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0],
                                   8'000'000));
    h.net.sim().Run(Seconds(60));
    return h.records.at(0).complete_time - h.records.at(0).start_time;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(OooToleranceTest, RecoversFromRealLossViaSelectiveRetransmit) {
  // Drop-inducing tiny buffer: holes are real losses, not reordering; the
  // selective path must still complete the flow.
  Graph g;
  FabricOptions fo;
  fo.hosts = 1;
  const NodeId dci0 = BuildDcFabric(g, 0, fo);
  const NodeId dci1 = BuildDcFabric(g, 1, fo);
  g.AddLink(dci0, dci1, Gbps(1), Milliseconds(1), /*buffer=*/20'000);
  TransportConfig tcfg;
  tcfg.ooo_tolerance = true;
  Harness h(std::move(g), SprayFactory(), tcfg);
  h.transport.StartFlow(MakeFlow(1, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0],
                                 2'000'000));
  h.net.sim().Run(Seconds(60));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_GT(h.records[0].retransmitted_packets, 0u);
}

TEST(OooToleranceTest, FlowletGapRestartsDecisionWithoutReorderDamage) {
  // Flowlet steering (tiny flow-cache idle timeout) + OoO tolerance: flows
  // complete cleanly even though the path may change at flowlet boundaries.
  LcmpConfig lcmp_config;
  lcmp_config.flow_idle_timeout = Microseconds(200);  // flowlet gap
  TransportConfig tcfg;
  tcfg.ooo_tolerance = true;
  Harness h(AsymmetricDumbbell(), MakeLcmpFactory(lcmp_config), tcfg);
  for (FlowId i = 1; i <= 10; ++i) {
    FlowSpec f = MakeFlow(i, h.graph.HostsInDc(0)[0], h.graph.HostsInDc(1)[0], 1'000'000);
    f.start_time = static_cast<TimeNs>(i) * Milliseconds(2);
    h.transport.ScheduleFlow(f);
  }
  h.net.sim().Run(Seconds(30));
  EXPECT_EQ(h.records.size(), 10u);
}

TEST(OooToleranceTest, InOrderTrafficUnaffected) {
  // Single-path topology: OoO mode must behave identically to the default.
  const LinearTopo t = BuildLinear();
  TransportConfig tcfg;
  tcfg.ooo_tolerance = true;
  Harness h(t.graph, nullptr, tcfg);
  h.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, 1'000'000));
  h.net.sim().Run();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].retransmitted_packets, 0u);
}

}  // namespace
}  // namespace lcmp
