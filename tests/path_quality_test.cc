// Tests for the compact path-quality representation (Sec. 3.2, Alg. 1/2,
// Eq. 2): saturation, monotonicity, weight sensitivity, and the bootstrap
// capacity-class tables.
#include <gtest/gtest.h>

#include "core/bootstrap_tables.h"
#include "core/config.h"
#include "core/path_quality.h"

namespace lcmp {
namespace {

LcmpConfig DefaultConfig() { return LcmpConfig{}; }

TEST(DelayCostTest, ZeroAndNegativeDelayIsZero) {
  const LcmpConfig c = DefaultConfig();
  EXPECT_EQ(CalcDelayCost(0, c), 0);
  EXPECT_EQ(CalcDelayCost(-5, c), 0);
}

TEST(DelayCostTest, SaturatesAtConfiguredMax) {
  LcmpConfig c = DefaultConfig();
  c.delay_saturation = Milliseconds(64);
  // Shift-based mapping (Alg. 1): the saturation point lands within one
  // shift quantum of 255 and anything well past it clamps exactly to 255.
  EXPECT_GE(CalcDelayCost(Milliseconds(64), c), 240);
  EXPECT_EQ(CalcDelayCost(Milliseconds(80), c), 255);
  EXPECT_EQ(CalcDelayCost(Milliseconds(250), c), 255);
  EXPECT_LT(CalcDelayCost(Milliseconds(32), c), 255);
}

TEST(DelayCostTest, MonotoneInDelay) {
  const LcmpConfig c = DefaultConfig();
  uint8_t prev = 0;
  for (TimeNs d = 0; d <= Milliseconds(100); d += Microseconds(500)) {
    const uint8_t score = CalcDelayCost(d, c);
    EXPECT_GE(score, prev) << "delay " << d;
    prev = score;
  }
}

TEST(DelayCostTest, ShiftMappingIsLinearBeforeSaturation) {
  LcmpConfig c = DefaultConfig();
  c.delay_saturation = Milliseconds(64);
  // Doubling the delay roughly doubles the score (integer truncation aside).
  const uint8_t s1 = CalcDelayCost(Milliseconds(8), c);
  const uint8_t s2 = CalcDelayCost(Milliseconds(16), c);
  EXPECT_NEAR(static_cast<double>(s2), 2.0 * s1, 2.0);
}

TEST(DelayCostTest, SetDelaySaturationRecomputesShift) {
  // The per-packet hot path uses the precomputed delay_shift, so changing
  // the saturation point must go through SetDelaySaturation. A smaller
  // saturation means scores climb (and clamp) earlier.
  LcmpConfig c = DefaultConfig();
  c.SetDelaySaturation(Milliseconds(16));
  EXPECT_EQ(c.delay_shift, LcmpConfig::DelayShiftFor(Milliseconds(16)));
  EXPECT_GE(CalcDelayCost(Milliseconds(16), c), 240);
  EXPECT_EQ(CalcDelayCost(Milliseconds(20), c), 255);
  // The default 64 ms shift would leave 16 ms well below saturation.
  EXPECT_LT(CalcDelayCost(Milliseconds(16), DefaultConfig()), 80);
}

TEST(DelayCostTest, ExactlyAtSaturationIsNearMax) {
  const LcmpConfig c = DefaultConfig();
  EXPECT_GE(CalcDelayCost(c.delay_saturation, c), 240);
  EXPECT_EQ(CalcDelayCost(c.delay_saturation * 2, c), 255);
}

TEST(LinkCapCostTest, SingleCapacityClassIsFree) {
  // With one capacity class every link is equally cheap; the guard must
  // return before consulting the class tables (which would divide by
  // num_cap_classes - 1 == 0).
  LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  c.num_cap_classes = 1;
  for (int64_t r : {Gbps(10), Gbps(40), Gbps(100), Gbps(400), Gbps(800)}) {
    EXPECT_EQ(CalcLinkCapCost(r, c, t), 0);
  }
}

TEST(LinkCapCostTest, FasterIsCheaper) {
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  const uint8_t s40 = CalcLinkCapCost(Gbps(40), c, t);
  const uint8_t s100 = CalcLinkCapCost(Gbps(100), c, t);
  const uint8_t s200 = CalcLinkCapCost(Gbps(200), c, t);
  const uint8_t s400 = CalcLinkCapCost(Gbps(400), c, t);
  EXPECT_GT(s40, s100);
  EXPECT_GT(s100, s200);
  EXPECT_GT(s200, s400);
  EXPECT_EQ(s400, 0);  // fastest class is free
}

TEST(LinkCapCostTest, AboveMaxClampsToFastestClass) {
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  EXPECT_EQ(CalcLinkCapCost(Gbps(800), c, t), CalcLinkCapCost(Gbps(400), c, t));
}

TEST(PathQualityTest, WithinByteRange) {
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  for (TimeNs d : {Microseconds(1), Milliseconds(5), Milliseconds(64), Milliseconds(500)}) {
    for (int64_t r : {Gbps(10), Gbps(40), Gbps(100), Gbps(400)}) {
      const uint8_t q = CalcPathQuality(d, r, c, t);
      EXPECT_LE(q, 255);
    }
  }
}

TEST(PathQualityTest, PrefersLowDelayWithDefaultWeights) {
  // With the paper's delay-biased (3,1) weights, a low-delay 40G route must
  // beat a high-delay 200G route.
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  const uint8_t low_delay_low_cap = CalcPathQuality(Milliseconds(10), Gbps(40), c, t);
  const uint8_t high_delay_high_cap = CalcPathQuality(Milliseconds(250), Gbps(200), c, t);
  EXPECT_LT(low_delay_low_cap, high_delay_high_cap);
}

TEST(PathQualityTest, CapacityBiasedWeightsPreferCapacity) {
  // Flipping to (1,3) must reverse the preference when delays differ little.
  LcmpConfig c = DefaultConfig();
  c.w_dl = 1;
  c.w_lc = 3;
  const BootstrapTables t = BootstrapTables::Build(c);
  const uint8_t slow_fat = CalcPathQuality(Milliseconds(12), Gbps(400), c, t);
  const uint8_t fast_thin = CalcPathQuality(Milliseconds(8), Gbps(40), c, t);
  EXPECT_LT(slow_fat, fast_thin);
}

TEST(PathQualityTest, Testbed8RankingMatchesDesign) {
  // On the Fig. 1a classes the (3,1) C_path ordering should put the two
  // low-delay, low/medium-capacity routes ahead of both 125 ms routes.
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  const uint8_t via_dc7 = CalcPathQuality(Milliseconds(10), Gbps(40), c, t);
  const uint8_t via_dc6 = CalcPathQuality(Milliseconds(50), Gbps(40), c, t);
  const uint8_t via_dc5 = CalcPathQuality(Milliseconds(30), Gbps(100), c, t);
  const uint8_t via_dc3 = CalcPathQuality(Milliseconds(60), Gbps(200), c, t);
  const uint8_t via_dc2 = CalcPathQuality(Milliseconds(250), Gbps(200), c, t);
  const uint8_t via_dc4 = CalcPathQuality(Milliseconds(250), Gbps(100), c, t);
  EXPECT_LT(via_dc7, via_dc2);
  EXPECT_LT(via_dc6, via_dc2);
  EXPECT_LT(via_dc5, via_dc2);
  EXPECT_LT(via_dc3, via_dc4);
  EXPECT_LT(via_dc2, via_dc4);  // same delay (saturated), more capacity
}

TEST(BootstrapTablesTest, CapacityClassesAreMonotone) {
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  int prev = -1;
  for (int64_t r = Gbps(10); r <= Gbps(400); r += Gbps(10)) {
    const int cls = t.CapacityClass(r);
    EXPECT_GE(cls, prev);
    prev = cls;
  }
  EXPECT_EQ(t.CapacityClass(Gbps(400)), c.num_cap_classes - 1);
}

TEST(BootstrapTablesTest, LevelScoreEndpoints) {
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  EXPECT_EQ(t.LevelScore(0), 0);
  EXPECT_EQ(t.LevelScore(t.num_levels() - 1), 255);
  EXPECT_EQ(t.LevelScore(t.num_levels() + 100), 255);  // clamped
  EXPECT_EQ(t.LevelScore(-3), 0);
}

TEST(BootstrapTablesTest, QueueLevelScalesWithRate) {
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  // The same absolute queue is more alarming on a slower link.
  const int64_t q = 200'000;
  EXPECT_GE(t.QueueLevel(q, Gbps(40)), t.QueueLevel(q, Gbps(400)));
  EXPECT_EQ(t.QueueLevel(0, Gbps(100)), 0);
  EXPECT_EQ(t.QueueLevel(-10, Gbps(100)), 0);
}

TEST(BootstrapTablesTest, QueueLevelSaturates) {
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  EXPECT_EQ(t.QueueLevel(int64_t{1} << 40, Gbps(100)), c.num_queue_levels - 1);
}

TEST(BootstrapTablesTest, TrendLevelZeroForNonPositive) {
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  EXPECT_EQ(t.TrendLevel(0, Gbps(100), c.sample_interval), 0);
  EXPECT_EQ(t.TrendLevel(-5000, Gbps(100), c.sample_interval), 0);
  EXPECT_GT(t.TrendLevel(100'000, Gbps(100), c.sample_interval), 0);
}

TEST(BootstrapTablesTest, MemoryFootprintIsTiny) {
  // Sec. 4: control tables are "a few dozen bytes each".
  const LcmpConfig c = DefaultConfig();
  const BootstrapTables t = BootstrapTables::Build(c);
  EXPECT_LT(t.MemoryBytes(), 256u);
}

// --- Property sweep: C_path is monotone in delay for any weight setting ---

class PathQualityWeightSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PathQualityWeightSweep, MonotoneInDelayForAllWeights) {
  LcmpConfig c = DefaultConfig();
  std::tie(c.w_dl, c.w_lc) = GetParam();
  const BootstrapTables t = BootstrapTables::Build(c);
  for (int64_t rate : {Gbps(40), Gbps(100), Gbps(400)}) {
    uint8_t prev = 0;
    for (TimeNs d = 0; d <= Milliseconds(80); d += Milliseconds(2)) {
      const uint8_t q = CalcPathQuality(d, rate, c, t);
      EXPECT_GE(q, prev);
      prev = q;
    }
  }
}

TEST_P(PathQualityWeightSweep, AntitoneInCapacityForAllWeights) {
  LcmpConfig c = DefaultConfig();
  std::tie(c.w_dl, c.w_lc) = GetParam();
  const BootstrapTables t = BootstrapTables::Build(c);
  for (TimeNs d : {Milliseconds(1), Milliseconds(20), Milliseconds(64)}) {
    uint8_t prev = 255;
    for (int64_t rate = Gbps(40); rate <= Gbps(400); rate += Gbps(40)) {
      const uint8_t q = CalcPathQuality(d, rate, c, t);
      EXPECT_LE(q, prev);
      prev = q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Weights, PathQualityWeightSweep,
                         ::testing::Values(std::make_tuple(3, 1), std::make_tuple(1, 1),
                                           std::make_tuple(1, 3), std::make_tuple(5, 2),
                                           std::make_tuple(0, 1), std::make_tuple(1, 0)));

}  // namespace
}  // namespace lcmp
