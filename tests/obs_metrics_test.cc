// Metrics registry semantics: handle stability, enable-gating, histogram
// bucketing, snapshots, and the JSON/CSV dump formats. The registry is a
// process-global singleton, so every test uses its own metric names and a
// fixture restores the disabled state.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace lcmp {
namespace obs {
namespace {

class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMetricsEnabled(true); }
  void TearDown() override {
    SetMetricsEnabled(false);
    SetProfileEnabled(false);
    MetricsRegistry::Instance().ResetValues();
  }
};

TEST_F(ObsMetricsTest, CounterAddsOnlyWhenEnabled) {
  Counter* c = MetricsRegistry::Instance().GetCounter("test.counter.gating");
  c->Inc();
  c->Add(4);
  EXPECT_EQ(c->value, 5);
  SetMetricsEnabled(false);
  c->Inc();
  c->Add(100);
  EXPECT_EQ(c->value, 5) << "disabled updates must be dropped";
  SetMetricsEnabled(true);
  c->Inc();
  EXPECT_EQ(c->value, 6);
}

TEST_F(ObsMetricsTest, GaugeSetsOnlyWhenEnabled) {
  Gauge* g = MetricsRegistry::Instance().GetGauge("test.gauge.gating");
  g->Set(42);
  EXPECT_EQ(g->value, 42);
  SetMetricsEnabled(false);
  g->Set(7);
  EXPECT_EQ(g->value, 42);
}

TEST_F(ObsMetricsTest, SameNameReturnsSameCell) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* a = reg.GetCounter("test.counter.reuse");
  Counter* b = reg.GetCounter("test.counter.reuse");
  EXPECT_EQ(a, b) << "same name must resolve to the same cell";
  EXPECT_NE(a, reg.GetCounter("test.counter.other"));
  // Handles survive ResetValues: the cell is zeroed in place, never moved.
  a->Add(3);
  reg.ResetValues();
  EXPECT_EQ(b->value, 0);
  b->Inc();
  EXPECT_EQ(a->value, 1);
}

TEST_F(ObsMetricsTest, HistogramBucketsByUpperBound) {
  Histogram* h = MetricsRegistry::Instance().GetHistogram("test.histo.buckets", {10, 20, 30});
  h->Add(5);    // <= 10
  h->Add(10);   // <= 10 (bounds are inclusive upper edges)
  h->Add(15);   // <= 20
  h->Add(31);   // overflow bucket
  h->Add(400);  // overflow bucket
  ASSERT_EQ(h->counts.size(), 4u);
  EXPECT_EQ(h->counts[0], 2u);
  EXPECT_EQ(h->counts[1], 1u);
  EXPECT_EQ(h->counts[2], 0u);
  EXPECT_EQ(h->counts[3], 2u);
  EXPECT_EQ(h->count, 5u);
  EXPECT_EQ(h->sum, 5 + 10 + 15 + 31 + 400);
  SetMetricsEnabled(false);
  h->Add(1);
  EXPECT_EQ(h->count, 5u);
}

TEST_F(ObsMetricsTest, HistogramSortsBoundsAndDedupResolvesByName) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Histogram* h = reg.GetHistogram("test.histo.sorted", {30, 10, 20});
  EXPECT_EQ(h->bounds, (std::vector<int64_t>{10, 20, 30}));
  // Second registration with different bounds returns the existing cell.
  Histogram* again = reg.GetHistogram("test.histo.sorted", {1, 2});
  EXPECT_EQ(h, again);
  EXPECT_EQ(again->bounds.size(), 3u);
}

TEST_F(ObsMetricsTest, SnapshotRecordsTimeSeries) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("test.counter.series");
  c->Add(1);
  reg.Snapshot(1000);
  c->Add(1);
  reg.Snapshot(2000);
  EXPECT_EQ(reg.num_snapshots(), 2u);
  const std::string json = reg.ToJson(3000);
  EXPECT_NE(json.find("\"time_ns\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"time_ns\": 2000"), std::string::npos);
  reg.ResetValues();
  EXPECT_EQ(reg.num_snapshots(), 0u);
}

TEST_F(ObsMetricsTest, JsonDumpRoundTripsNamesAndValues) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetCounter("test.json.counter")->Add(17);
  reg.GetGauge("test.json.gauge")->Set(-3);
  Histogram* h = reg.GetHistogram("test.json.histo", {100});
  h->Add(50);
  h->Add(150);
  const std::string json = reg.ToJson(12345);
  EXPECT_NE(json.find("\"sim_time_ns\": 12345"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.histo\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 200"), std::string::npos);
  // Structural sanity: balanced braces/brackets make it parseable JSON.
  int braces = 0;
  int brackets = 0;
  for (char ch : json) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(ObsMetricsTest, CsvDumpEmitsSnapshotRowsAndFinals) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("test.csv.counter");
  c->Add(2);
  reg.Snapshot(500);
  c->Add(2);
  const std::string csv = reg.ToCsv(999);
  EXPECT_EQ(csv.rfind("time_ns,name,value\n", 0), 0u);
  EXPECT_NE(csv.find("500,test.csv.counter,2"), std::string::npos);
  EXPECT_NE(csv.find("999,test.csv.counter,4"), std::string::npos);
}

TEST_F(ObsMetricsTest, CsvEscapesLabelsWithCommasAndQuotes) {
  // RFC-4180: fields containing commas, quotes, or newlines are quoted and
  // embedded quotes doubled; plain fields pass through unchanged.
  EXPECT_EQ(CsvEscapeField("plain.name"), "plain.name");
  EXPECT_EQ(CsvEscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscapeField("line\nbreak"), "\"line\nbreak\"");

  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("test.csv.link{dc1,dc2}");
  c->Add(7);
  const std::string csv = reg.ToCsv(42);
  // The comma-bearing label must appear quoted, so every row still parses to
  // exactly three CSV fields.
  EXPECT_NE(csv.find("42,\"test.csv.link{dc1,dc2}\",7"), std::string::npos);
  EXPECT_EQ(csv.find("42,test.csv.link{dc1,dc2},7"), std::string::npos);
}

TEST_F(ObsMetricsTest, ProfilerAttributesCallsToTaggedSites) {
  ResetProfile();
  SetProfileEnabled(true);
  for (int i = 0; i < 3; ++i) {
    LCMP_PROFILE_SCOPE("test.profile.site");
    // A trivial body still counts as one call of this event type.
  }
  SetProfileEnabled(false);
  {
    LCMP_PROFILE_SCOPE("test.profile.site");  // disabled: must not count
  }
  ProfileSite* site = RegisterProfileSite("test.profile.site");
  EXPECT_EQ(site->calls, 3u);
  const std::string report = ProfileReport();
  EXPECT_NE(report.find("test.profile.site"), std::string::npos);
  ResetProfile();
  EXPECT_EQ(site->calls, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace lcmp
