// Chaos soak: sweep ≥20 seeds of generated fault schedules against the 8-DC
// testbed, each run carrying the full invariant monitor in collect mode.
// Every seed must finish with zero violations; seeds whose plan clears
// in-run must also complete every flow (the liveness invariant). This is the
// subsystem's main confidence test: flapping, switch loss, degradation and
// telemetry outages composed at random, with failover always available
// (keep_one_path) so recovery — not disconnection — is what's exercised.
#include <gtest/gtest.h>

#include <cstdio>

#include "harness/experiment.h"

namespace lcmp {
namespace {

constexpr int kSeeds = 20;

TEST(ChaosSoakTest, TwentySeedsZeroViolations) {
  int64_t total_injected = 0;
  int64_t total_checks = 0;
  for (int s = 1; s <= kSeeds; ++s) {
    ExperimentConfig config;
    config.topo = TopologyKind::kTestbed8;
    config.policy = PolicyKind::kLcmp;
    config.num_flows = 120;
    config.load = 0.3;
    config.seed = static_cast<uint64_t>(100 + s);
    config.horizon = Seconds(60);
    config.monitor_invariants = true;
    config.monitor_strict = false;  // collect, so a failure names the seed

    // Compress the chaos window to overlap the (short) flow schedule: ~9
    // episodes inside the first 60 ms, repairs within 15 ms.
    ChaosOptions chaos;
    chaos.seed = static_cast<uint64_t>(s);
    chaos.faults_per_sec = 150;
    chaos.window_start = Milliseconds(1);
    chaos.window = Milliseconds(60);
    chaos.min_duration = Milliseconds(2);
    chaos.max_duration = Milliseconds(15);
    config.fault_plan = GenerateChaosPlan(BuildTopology(config), chaos);
    ASSERT_FALSE(config.fault_plan.empty()) << "seed " << s;

    const ExperimentResult result = RunExperiment(config);
    total_injected += result.faults_injected;
    total_checks += result.invariant_checks;

    EXPECT_EQ(result.invariant_violations, 0)
        << "seed " << s << ": "
        << (result.violation_log.empty() ? "<no log>" : result.violation_log.front());
    // keep_one_path guarantees a live route throughout, so once the plan has
    // cleared within the run every flow must have completed.
    const TimeNs all_clear = config.fault_plan.AllClearTime();
    if (all_clear >= 0 && result.sim_end_time >= all_clear) {
      EXPECT_EQ(result.flows_completed, result.flows_requested) << "seed " << s;
    }
    std::fprintf(stderr, "chaos seed %2d: %3zu events, %3lld injected, %d/%d flows, %lld checks\n",
                 s, config.fault_plan.size(), static_cast<long long>(result.faults_injected),
                 result.flows_completed, result.flows_requested,
                 static_cast<long long>(result.invariant_checks));
  }
  // The sweep must have actually exercised the injector and the monitor.
  EXPECT_GT(total_injected, kSeeds);
  EXPECT_GT(total_checks, 0);
}

}  // namespace
}  // namespace lcmp
