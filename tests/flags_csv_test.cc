// Tests for the CLI flag parser and the CSV exporters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/csv_writer.h"
#include "harness/experiment.h"
#include "harness/flags.h"

namespace lcmp {
namespace {

FlagSet MakeFlags() {
  FlagSet f;
  f.Define("load", "0.3", "load")
      .Define("flows", "500", "count")
      .Define("policy", "lcmp", "policy")
      .Define("emulation", "false", "emu");
  return f;
}

TEST(FlagsTest, DefaultsApply) {
  FlagSet f = MakeFlags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.Parse(1, argv));
  EXPECT_DOUBLE_EQ(f.GetDouble("load"), 0.3);
  EXPECT_EQ(f.GetInt("flows"), 500);
  EXPECT_EQ(f.GetString("policy"), "lcmp");
  EXPECT_FALSE(f.GetBool("emulation"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet f = MakeFlags();
  const char* argv[] = {"prog", "--load=0.8", "--flows=42", "--policy=ecmp"};
  ASSERT_TRUE(f.Parse(4, argv));
  EXPECT_DOUBLE_EQ(f.GetDouble("load"), 0.8);
  EXPECT_EQ(f.GetInt("flows"), 42);
  EXPECT_EQ(f.GetString("policy"), "ecmp");
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet f = MakeFlags();
  const char* argv[] = {"prog", "--flows", "7", "--policy", "ucmp"};
  ASSERT_TRUE(f.Parse(5, argv));
  EXPECT_EQ(f.GetInt("flows"), 7);
  EXPECT_EQ(f.GetString("policy"), "ucmp");
}

TEST(FlagsTest, BareBoolean) {
  FlagSet f = MakeFlags();
  const char* argv[] = {"prog", "--emulation"};
  ASSERT_TRUE(f.Parse(2, argv));
  EXPECT_TRUE(f.GetBool("emulation"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagSet f = MakeFlags();
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(f.Parse(2, argv));
  EXPECT_NE(f.error().find("unknown flag"), std::string::npos);
}

TEST(FlagsTest, PositionalRejected) {
  FlagSet f = MakeFlags();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(f.Parse(2, argv));
}

TEST(FlagsTest, HelpRequested) {
  FlagSet f = MakeFlags();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(f.Parse(2, argv));
  EXPECT_TRUE(f.help_requested());
  EXPECT_NE(f.Usage("prog").find("--load"), std::string::npos);
}

TEST(SweepObsValidationTest, NoSweepOrNoMetricsAlwaysOk) {
  SweepOptions sweep;  // inactive
  ObsOptions obs;
  obs.metrics_out = "metrics.json";
  std::string error;
  EXPECT_TRUE(ValidateSweepObsOptions(sweep, obs, &error));
  sweep.axes = "lcmp.alpha=1,3";
  obs.metrics_out.clear();
  EXPECT_TRUE(ValidateSweepObsOptions(sweep, obs, &error));
}

TEST(SweepObsValidationTest, ParallelSweepWithMetricsRejected) {
  // Regression: the metrics registry is process-global, so a --jobs>1 sweep
  // with --metrics-out used to silently interleave every worker's counters
  // into one meaningless snapshot. The combination must fail fast.
  SweepOptions sweep;
  sweep.axes = "lcmp.alpha=1,3";
  sweep.jobs = 4;
  ObsOptions obs;
  obs.metrics_out = "metrics.json";
  std::string error;
  EXPECT_FALSE(ValidateSweepObsOptions(sweep, obs, &error));
  EXPECT_NE(error.find("--jobs=1"), std::string::npos);
}

TEST(SweepObsValidationTest, DefaultJobsCountsAsParallel) {
  // jobs == 0 resolves to hardware concurrency, so it is parallel too.
  SweepOptions sweep;
  sweep.spec_file = "spec.json";
  sweep.jobs = 0;
  ObsOptions obs;
  obs.metrics_out = "metrics.csv";
  EXPECT_FALSE(ValidateSweepObsOptions(sweep, obs, nullptr));
}

TEST(SweepObsValidationTest, SequentialSweepWithMetricsAllowed) {
  // --jobs=1 is the documented escape hatch: the dump is a well-defined
  // sequential aggregate across all runs.
  SweepOptions sweep;
  sweep.axes = "lcmp.alpha=1,3";
  sweep.jobs = 1;
  ObsOptions obs;
  obs.metrics_out = "metrics.json";
  std::string error;
  EXPECT_TRUE(ValidateSweepObsOptions(sweep, obs, &error));
  EXPECT_TRUE(error.empty());
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ExperimentConfig c;
    c.num_flows = 40;
    c.hosts_per_dc = 2;
    c.policy = PolicyKind::kLcmp;
    c.seed = 6;
    result_ = RunExperiment(c);
  }
  static int CountLines(const std::string& path) {
    std::ifstream in(path);
    int lines = 0;
    std::string line;
    while (std::getline(in, line)) {
      ++lines;
    }
    return lines;
  }
  ExperimentResult result_;
};

TEST_F(CsvTest, FlowSamplesRoundTrip) {
  const std::string path = ::testing::TempDir() + "/flows.csv";
  ASSERT_TRUE(WriteFlowSamplesCsv(path, result_));
  EXPECT_EQ(CountLines(path), 1 + static_cast<int>(result_.samples.size()));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "flow_bytes,fct_ns,ideal_fct_ns,slowdown,src_dc,dst_dc");
  // First data row parses back to the first sample.
  std::string row;
  std::getline(in, row);
  std::stringstream ss(row);
  std::string cell;
  std::getline(ss, cell, ',');
  EXPECT_EQ(std::stoull(cell), result_.samples[0].bytes);
}

TEST_F(CsvTest, LinkUtilizationRows) {
  const std::string path = ::testing::TempDir() + "/links.csv";
  ASSERT_TRUE(WriteLinkUtilizationCsv(path, result_));
  EXPECT_EQ(CountLines(path), 1 + static_cast<int>(result_.link_utils.size()));
}

TEST_F(CsvTest, BucketRows) {
  const std::string path = ::testing::TempDir() + "/buckets.csv";
  ASSERT_TRUE(WriteBucketsCsv(path, result_));
  EXPECT_EQ(CountLines(path), 1 + static_cast<int>(result_.buckets.size()));
}

TEST_F(CsvTest, UnwritablePathFails) {
  EXPECT_FALSE(WriteFlowSamplesCsv("/nonexistent-dir/x.csv", result_));
}

}  // namespace
}  // namespace lcmp
