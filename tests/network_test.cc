// Tests for Network wiring: static intra-DC forwarding, inter-DC candidate
// installation, delivery across fabrics, link up/down plumbing.
#include <gtest/gtest.h>

#include "routing/ecmp.h"
#include "sim/network.h"
#include "topo/builders.h"

namespace lcmp {
namespace {

PolicyFactory EcmpFactory() {
  return [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
}

Packet MakeData(NodeId src, NodeId dst, uint32_t nonce) {
  Packet p;
  p.type = PacketType::kData;
  p.src = src;
  p.dst = dst;
  p.key = FlowKey{src, dst, nonce, 4791, 17};
  p.flow_id = FlowIdOf(p.key);
  p.size_bytes = 1000;
  return p;
}

TEST(NetworkTest, DeliversWithinOneDc) {
  Graph g;
  FabricOptions fabric;
  fabric.hosts = 2;
  BuildDcFabric(g, 0, fabric);
  Network net(g, NetworkConfig{}, nullptr);
  const auto hosts = g.HostsInDc(0);
  int delivered = 0;
  net.host(hosts[1]).SetSink([&](Packet) { ++delivered; });
  net.host(hosts[0]).Send(MakeData(hosts[0], hosts[1], 1));
  net.sim().Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, DeliversAcrossDcs) {
  const Graph g = BuildDumbbell(2, 2, Gbps(100), Milliseconds(5));
  Network net(g, NetworkConfig{}, EcmpFactory());
  const auto src_hosts = g.HostsInDc(0);
  const auto dst_hosts = g.HostsInDc(1);
  int delivered = 0;
  TimeNs arrival = 0;
  net.host(dst_hosts[0]).SetSink([&](Packet) {
    ++delivered;
    arrival = net.sim().now();
  });
  net.host(src_hosts[0]).Send(MakeData(src_hosts[0], dst_hosts[0], 1));
  net.sim().Run();
  EXPECT_EQ(delivered, 1);
  // Dominated by the 5 ms inter-DC propagation.
  EXPECT_GT(arrival, Milliseconds(5));
  EXPECT_LT(arrival, Milliseconds(6));
}

TEST(NetworkTest, DeliversAcrossLeafSpineFabrics) {
  Testbed8Options opts;
  opts.fabric.kind = FabricKind::kLeafSpine;
  const Graph g = BuildTestbed8(opts);
  Network net(g, NetworkConfig{}, EcmpFactory());
  const auto src_hosts = g.HostsInDc(0);
  const auto dst_hosts = g.HostsInDc(7);
  ASSERT_EQ(src_hosts.size(), 16u);
  int delivered = 0;
  net.host(dst_hosts[3]).SetSink([&](Packet) { ++delivered; });
  net.host(src_hosts[5]).Send(MakeData(src_hosts[5], dst_hosts[3], 9));
  net.sim().Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, EcmpSpreadsFlowsAcrossCandidates) {
  const Graph g = BuildDumbbell(4, 2, Gbps(100), Milliseconds(1));
  Network net(g, NetworkConfig{}, EcmpFactory());
  const auto src_hosts = g.HostsInDc(0);
  const auto dst_hosts = g.HostsInDc(1);
  for (uint32_t i = 0; i < 64; ++i) {
    net.host(src_hosts[0]).Send(MakeData(src_hosts[0], dst_hosts[0], i));
  }
  net.sim().Run();
  // All four parallel links should carry traffic.
  int used = 0;
  for (const DirectedLinkRef& ref : net.InterDcDirectedLinks()) {
    if (ref.port->tx_packets() > 0) {
      ++used;
    }
  }
  EXPECT_GE(used, 3);  // 4 directed a->b links exist plus 4 b->a (idle)
}

TEST(NetworkTest, SameFlowUsesSamePath) {
  const Graph g = BuildDumbbell(4, 2, Gbps(100), Milliseconds(1));
  Network net(g, NetworkConfig{}, EcmpFactory());
  const auto src_hosts = g.HostsInDc(0);
  const auto dst_hosts = g.HostsInDc(1);
  for (int i = 0; i < 10; ++i) {
    net.host(src_hosts[0]).Send(MakeData(src_hosts[0], dst_hosts[0], 777));
  }
  net.sim().Run();
  int links_used = 0;
  for (const DirectedLinkRef& ref : net.InterDcDirectedLinks()) {
    if (ref.port->tx_packets() > 0) {
      ++links_used;
    }
  }
  EXPECT_EQ(links_used, 1);
}

TEST(NetworkTest, InterDcCandidatesInstalledOnDci) {
  const Graph g = BuildTestbed8({});
  Network net(g, NetworkConfig{}, EcmpFactory());
  SwitchNode& dci1 = net.switch_node(g.DciOfDc(0));
  EXPECT_EQ(dci1.CandidatesTo(7).size(), 6u);
  EXPECT_EQ(dci1.CandidatesTo(0).size(), 0u);
  // Candidate ports point at distinct egress ports.
  std::set<PortIndex> ports;
  for (const PathCandidate& c : dci1.CandidatesTo(7)) {
    ports.insert(c.port);
  }
  EXPECT_EQ(ports.size(), 6u);
}

TEST(NetworkTest, SetLinkUpDownPropagatesToPorts) {
  const Graph g = BuildDumbbell(2, 1, Gbps(100), Milliseconds(1));
  Network net(g, NetworkConfig{}, EcmpFactory());
  const auto refs = net.InterDcDirectedLinks();
  ASSERT_FALSE(refs.empty());
  const int link = refs[0].link_idx;
  net.SetLinkUp(link, false);
  Port* p = net.FindPort(refs[0].from, link);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->up());
  net.SetLinkUp(link, true);
  EXPECT_TRUE(p->up());
}

TEST(NetworkTest, DirectedLinkNamesAreHumanReadable) {
  const Graph g = BuildDumbbell(1, 1, Gbps(100), Milliseconds(1));
  Network net(g, NetworkConfig{}, EcmpFactory());
  const auto refs = net.InterDcDirectedLinks();
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(net.DirectedLinkName(refs[0]), "dc1.dci->dc2.dci");
  EXPECT_EQ(net.DirectedLinkName(refs[1]), "dc2.dci->dc1.dci");
}

TEST(NetworkTest, EcnThresholdsScaleWithRate) {
  // A 40G port and a 400G port must get proportionally different Kmin.
  Graph g;
  const NodeId a = g.AddVertex(VertexKind::kDciSwitch, 0, "a");
  const NodeId b = g.AddVertex(VertexKind::kDciSwitch, 1, "b");
  g.AddLink(a, b, Gbps(40), Milliseconds(1));
  g.AddLink(a, b, Gbps(400), Milliseconds(1));
  Network net(g, NetworkConfig{}, EcmpFactory());
  // Sample the ports' behavior indirectly via utilization refs.
  const auto refs = net.InterDcDirectedLinks();
  ASSERT_EQ(refs.size(), 4u);
  EXPECT_EQ(refs[0].port->rate_bps() * 10, refs[2].port->rate_bps());
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run = [] {
    const Graph g = BuildDumbbell(4, 2, Gbps(100), Milliseconds(1));
    NetworkConfig cfg;
    cfg.seed = 99;
    Network net(g, cfg, EcmpFactory());
    const auto src_hosts = g.HostsInDc(0);
    const auto dst_hosts = g.HostsInDc(1);
    for (uint32_t i = 0; i < 32; ++i) {
      net.host(src_hosts[i % 2]).Send(MakeData(src_hosts[i % 2], dst_hosts[0], i));
    }
    net.sim().Run();
    std::vector<int64_t> txs;
    for (const DirectedLinkRef& ref : net.InterDcDirectedLinks()) {
      txs.push_back(ref.port->tx_bytes());
    }
    return txs;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace lcmp
