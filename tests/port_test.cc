// Tests for the egress-port model: serialization, FIFO order, propagation,
// buffer drops, ECN marking and administrative up/down.
#include <gtest/gtest.h>

#include <vector>

#include "sim/int_pool.h"
#include "sim/node.h"
#include "sim/port.h"
#include "sim/simulator.h"

namespace lcmp {
namespace {

// Minimal sink node capturing arrivals.
class SinkNode : public Node {
 public:
  SinkNode(Simulator* sim, NodeId id) : Node(sim, id, Kind::kHost, 0, 1) {}
  void Receive(Packet pkt, PortIndex) override {
    arrival_times.push_back(sim_->now());
    packets.push_back(pkt);
  }
  std::vector<TimeNs> arrival_times;
  std::vector<Packet> packets;
};

// Source node whose single port we exercise.
class SourceNode : public Node {
 public:
  SourceNode(Simulator* sim, NodeId id) : Node(sim, id, Kind::kHost, 0, 2) {}
  void Receive(Packet, PortIndex) override {}
};

struct Fixture {
  explicit Fixture(PortConfig config) : src(&sim, 0), dst(&sim, 1) {
    port_idx = src.AddPort(config, /*graph_link_idx=*/0);
    src.port(port_idx).ConnectTo(&dst, 0);
  }
  Packet MakeData(uint32_t size, uint32_t seq = 0) {
    Packet p;
    p.type = PacketType::kData;
    p.size_bytes = size;
    p.seq = seq;
    return p;
  }
  Simulator sim;
  SourceNode src;
  SinkNode dst;
  PortIndex port_idx = kInvalidPort;
};

PortConfig BaseConfig() {
  PortConfig c;
  c.rate_bps = Gbps(1);  // 1 byte == 8 ns
  c.prop_delay_ns = 1000;
  c.buffer_bytes = 1'000'000;
  c.ecn_kmin = 0;  // marking off unless enabled
  return c;
}

TEST(PortTest, SerializationPlusPropagation) {
  Fixture f(BaseConfig());
  f.src.port(f.port_idx).Enqueue(f.MakeData(1000));
  f.sim.Run();
  ASSERT_EQ(f.dst.arrival_times.size(), 1u);
  // 1000 B at 1 Gbps = 8000 ns serialization + 1000 ns propagation.
  EXPECT_EQ(f.dst.arrival_times[0], 9000);
}

TEST(PortTest, BackToBackPacketsAreSpacedBySerialization) {
  Fixture f(BaseConfig());
  f.src.port(f.port_idx).Enqueue(f.MakeData(1000, 0));
  f.src.port(f.port_idx).Enqueue(f.MakeData(1000, 1));
  f.sim.Run();
  ASSERT_EQ(f.dst.arrival_times.size(), 2u);
  EXPECT_EQ(f.dst.arrival_times[1] - f.dst.arrival_times[0], 8000);
  EXPECT_EQ(f.dst.packets[0].seq, 0u);
  EXPECT_EQ(f.dst.packets[1].seq, 1u);
}

TEST(PortTest, FifoOrderPreserved) {
  Fixture f(BaseConfig());
  for (uint32_t i = 0; i < 20; ++i) {
    f.src.port(f.port_idx).Enqueue(f.MakeData(100, i));
  }
  f.sim.Run();
  ASSERT_EQ(f.dst.packets.size(), 20u);
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(f.dst.packets[i].seq, i);
  }
}

TEST(PortTest, BufferOverflowDrops) {
  PortConfig c = BaseConfig();
  c.buffer_bytes = 2500;  // room for two 1000 B packets in the queue
  Fixture f(c);
  // First packet starts transmitting immediately (leaves the queue); then
  // the queue can hold two more; the rest drop.
  for (uint32_t i = 0; i < 6; ++i) {
    f.src.port(f.port_idx).Enqueue(f.MakeData(1000, i));
  }
  EXPECT_GT(f.src.port(f.port_idx).dropped_packets(), 0);
  f.sim.Run();
  EXPECT_EQ(f.dst.packets.size() + static_cast<size_t>(f.src.port(f.port_idx).dropped_packets()),
            6u);
}

TEST(PortTest, QueueBytesTracksOccupancy) {
  Fixture f(BaseConfig());
  Port& p = f.src.port(f.port_idx);
  EXPECT_EQ(p.queue_bytes(), 0);
  p.Enqueue(f.MakeData(1000, 0));  // starts transmitting, leaves queue
  p.Enqueue(f.MakeData(1000, 1));
  p.Enqueue(f.MakeData(1000, 2));
  EXPECT_EQ(p.queue_bytes(), 2000);
  f.sim.Run();
  EXPECT_EQ(p.queue_bytes(), 0);
  EXPECT_EQ(p.tx_bytes(), 3000);
  EXPECT_EQ(p.tx_packets(), 3);
}

TEST(PortTest, EcnMarksAboveKmax) {
  PortConfig c = BaseConfig();
  c.ecn_kmin = 500;
  c.ecn_kmax = 1500;
  c.ecn_pmax = 0.5;
  Fixture f(c);
  Port& p = f.src.port(f.port_idx);
  // Fill the queue beyond kmax, then everything enqueued must be marked.
  for (uint32_t i = 0; i < 10; ++i) {
    p.Enqueue(f.MakeData(1000, i));
  }
  f.sim.Run();
  int marked = 0;
  for (const Packet& pkt : f.dst.packets) {
    if (pkt.ecn_ce) {
      ++marked;
    }
  }
  // Packets enqueued once occupancy > kmax (1500 B) are always marked:
  // occupancy before packets 3.. was >= 2000 B.
  EXPECT_GE(marked, 6);
}

TEST(PortTest, NoEcnWhenDisabled) {
  Fixture f(BaseConfig());
  for (uint32_t i = 0; i < 10; ++i) {
    f.src.port(f.port_idx).Enqueue(f.MakeData(1000, i));
  }
  f.sim.Run();
  for (const Packet& pkt : f.dst.packets) {
    EXPECT_FALSE(pkt.ecn_ce);
  }
  EXPECT_EQ(f.src.port(f.port_idx).ecn_marked_packets(), 0);
}

TEST(PortTest, ControlPacketsNeverMarked) {
  PortConfig c = BaseConfig();
  c.ecn_kmin = 1;
  c.ecn_kmax = 2;
  Fixture f(c);
  Packet ack;
  ack.type = PacketType::kAck;
  ack.size_bytes = 64;
  f.src.port(f.port_idx).Enqueue(f.MakeData(1000, 0));
  f.src.port(f.port_idx).Enqueue(ack);
  f.sim.Run();
  ASSERT_EQ(f.dst.packets.size(), 2u);
  EXPECT_FALSE(f.dst.packets[1].ecn_ce);
}

TEST(PortTest, DownPortDropsAndFlushes) {
  Fixture f(BaseConfig());
  Port& p = f.src.port(f.port_idx);
  p.Enqueue(f.MakeData(1000, 0));
  p.Enqueue(f.MakeData(1000, 1));
  p.SetUp(false);
  EXPECT_EQ(p.queue_bytes(), 0);  // queue flushed
  p.Enqueue(f.MakeData(1000, 2));  // dropped while down
  f.sim.Run();
  // Only the packet already on the wire (in transmission) arrives.
  EXPECT_EQ(f.dst.packets.size(), 1u);
  EXPECT_GE(p.dropped_packets(), 2);
}

TEST(PortTest, PortRecoversAfterUp) {
  Fixture f(BaseConfig());
  Port& p = f.src.port(f.port_idx);
  p.SetUp(false);
  p.Enqueue(f.MakeData(1000, 0));  // dropped
  p.SetUp(true);
  p.Enqueue(f.MakeData(1000, 1));
  f.sim.Run();
  ASSERT_EQ(f.dst.packets.size(), 1u);
  EXPECT_EQ(f.dst.packets[0].seq, 1u);
}

TEST(PortTest, IntStampingRecordsHopState) {
  Fixture f(BaseConfig());
  IntStackPool pool;
  f.src.SetIntPool(&pool);
  Packet p = f.MakeData(1000, 0);
  p.int_stack = pool.Acquire();  // INT-enabled packets carry a pool handle
  f.src.port(f.port_idx).Enqueue(f.MakeData(1000, 5));  // queue builder
  f.src.port(f.port_idx).Enqueue(p);
  f.sim.Run();
  ASSERT_EQ(f.dst.packets.size(), 2u);
  const Packet& got = f.dst.packets[1];
  ASSERT_NE(got.int_stack, kInvalidIntHandle);
  const IntStack& stack = pool.Get(got.int_stack);
  ASSERT_EQ(stack.hops, 1);
  EXPECT_EQ(stack.rec[0].rate_bps, Gbps(1));
  EXPECT_EQ(stack.rec[0].qlen_bytes, 0);  // nothing behind it
  EXPECT_EQ(stack.rec[0].tx_bytes, 2000);
  EXPECT_EQ(pool.in_use(), 1u);  // the non-INT packet never acquired a slot
}

TEST(PortTest, BusyTimeAccumulates) {
  Fixture f(BaseConfig());
  f.src.port(f.port_idx).Enqueue(f.MakeData(1000, 0));
  f.sim.Run();
  EXPECT_EQ(f.src.port(f.port_idx).busy_ns(), 8000);
}

}  // namespace
}  // namespace lcmp
