// Tests for the PFC (lossless flow control) substrate: pause/resume
// mechanics, ingress accounting, incast losslessness, and interaction with
// the RDMA transport.
#include <gtest/gtest.h>

#include "routing/ecmp.h"
#include "sim/network.h"
#include "sim/pfc.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"

namespace lcmp {
namespace {

PolicyFactory EcmpFactory() {
  return [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
}

// One DC, N hosts on the DCI switch: a classic incast onto host 0's link.
Graph IncastFabric(int hosts) {
  Graph g;
  FabricOptions fo;
  fo.hosts = hosts;
  BuildDcFabric(g, 0, fo);
  return g;
}

int64_t TotalSwitchDrops(Network& net) {
  int64_t drops = 0;
  const Graph& g = net.graph();
  for (NodeId id = 0; id < g.num_vertices(); ++id) {
    if (g.vertex(id).kind == VertexKind::kHost) {
      continue;
    }
    Node& n = net.node(id);
    for (PortIndex p = 0; p < n.num_ports(); ++p) {
      drops += n.port(p).dropped_packets();
    }
  }
  return drops;
}

TEST(PfcTest, PausedPortStopsAfterInFlightPacket) {
  const Graph g = IncastFabric(2);
  Network net(g, NetworkConfig{}, EcmpFactory());
  const auto hosts = g.HostsInDc(0);
  Port& nic = net.host(hosts[0]).port(0);
  for (uint32_t i = 0; i < 5; ++i) {
    Packet p;
    p.type = PacketType::kData;
    p.src = hosts[0];
    p.dst = hosts[1];
    p.key = FlowKey{hosts[0], hosts[1], i, 4791, 17};
    p.size_bytes = 4096;
    net.host(hosts[0]).Send(p);
  }
  nic.SetPaused(true);
  net.sim().Run();
  // The in-flight packet completes; the rest stay queued.
  EXPECT_EQ(nic.tx_packets(), 1);
  EXPECT_EQ(nic.queue_bytes(), 4 * 4096);
  nic.SetPaused(false);
  net.sim().Run();
  EXPECT_EQ(nic.tx_packets(), 5);
  EXPECT_GT(nic.paused_ns(), 0);
}

TEST(PfcTest, IngressAccountingChargesAndCredits) {
  NetworkConfig ncfg;
  ncfg.pfc.enabled = true;
  ncfg.pfc.xoff_bytes = 1 << 20;
  ncfg.pfc.xon_bytes = 1 << 19;
  const Graph g = IncastFabric(3);
  Network net(g, ncfg, EcmpFactory());
  const auto hosts = g.HostsInDc(0);
  SwitchNode& sw = net.switch_node(g.DciOfDc(0));
  ASSERT_NE(sw.pfc(), nullptr);
  // Send one packet through and drain.
  Packet p;
  p.type = PacketType::kData;
  p.src = hosts[1];
  p.dst = hosts[0];
  p.key = FlowKey{hosts[1], hosts[0], 1, 4791, 17};
  p.size_bytes = 4096;
  net.host(hosts[1]).Send(p);
  net.sim().Run();
  for (PortIndex i = 0; i < sw.num_ports(); ++i) {
    EXPECT_EQ(sw.pfc()->ingress_buffered_bytes(i), 0) << "ingress " << i;
  }
}

TEST(PfcTest, IncastDropsWithoutPfc) {
  // Tiny buffers + ECN off: senders blast at line rate and the receiver
  // egress overflows.
  NetworkConfig ncfg;
  ncfg.default_buffer_bytes = 200 * 1024;
  ncfg.ecn_kmin_at_rate = 0;  // ECN off
  const Graph g = IncastFabric(5);
  Network net(g, ncfg, EcmpFactory());
  TransportConfig tcfg;
  tcfg.host_backlog_bytes = 100 * 1024;
  int completed = 0;
  RdmaTransport transport(&net, tcfg,
                          [&](const FlowRecord&) { ++completed; });
  const auto hosts = g.HostsInDc(0);
  for (FlowId i = 1; i <= 4; ++i) {
    FlowSpec f;
    f.id = i;
    f.src = hosts[i];
    f.dst = hosts[0];
    f.key = FlowKey{f.src, f.dst, static_cast<uint32_t>(i), 4791, 17};
    f.size_bytes = 2'000'000;
    transport.StartFlow(f);
  }
  net.sim().Run(Seconds(20));
  EXPECT_GT(TotalSwitchDrops(net), 0);
  EXPECT_EQ(completed, 4);  // Go-Back-N still completes the transfers
}

TEST(PfcTest, IncastLosslessWithPfc) {
  // Same setup with PFC on: zero switch drops; backpressure reaches the
  // sending NICs instead. Losslessness requires the buffer to hold the sum
  // of per-ingress XOFF thresholds plus one pause-propagation RTT of
  // headroom per ingress (4 x (64 KB + ~30 KB) here).
  NetworkConfig ncfg;
  ncfg.default_buffer_bytes = 512 * 1024;
  ncfg.ecn_kmin_at_rate = 0;
  ncfg.pfc.enabled = true;
  ncfg.pfc.xoff_bytes = 64 * 1024;
  ncfg.pfc.xon_bytes = 32 * 1024;
  const Graph g = IncastFabric(5);
  Network net(g, ncfg, EcmpFactory());
  TransportConfig tcfg;
  tcfg.host_backlog_bytes = 100 * 1024;
  int completed = 0;
  RdmaTransport transport(&net, tcfg,
                          [&](const FlowRecord&) { ++completed; });
  const auto hosts = g.HostsInDc(0);
  for (FlowId i = 1; i <= 4; ++i) {
    FlowSpec f;
    f.id = i;
    f.src = hosts[i];
    f.dst = hosts[0];
    f.key = FlowKey{f.src, f.dst, static_cast<uint32_t>(i), 4791, 17};
    f.size_bytes = 2'000'000;
    transport.StartFlow(f);
  }
  net.sim().Run(Seconds(20));
  EXPECT_EQ(TotalSwitchDrops(net), 0);
  EXPECT_EQ(completed, 4);
  SwitchNode& sw = net.switch_node(g.DciOfDc(0));
  EXPECT_GT(sw.pfc()->pause_frames_sent(), 0);
  EXPECT_GT(sw.pfc()->resume_frames_sent(), 0);
}

TEST(PfcTest, PauseCountersBalance) {
  NetworkConfig ncfg;
  ncfg.default_buffer_bytes = 512 * 1024;
  ncfg.ecn_kmin_at_rate = 0;
  ncfg.pfc.enabled = true;
  ncfg.pfc.xoff_bytes = 64 * 1024;
  ncfg.pfc.xon_bytes = 32 * 1024;
  const Graph g = IncastFabric(4);
  Network net(g, ncfg, EcmpFactory());
  TransportConfig tcfg;
  tcfg.host_backlog_bytes = 100 * 1024;
  RdmaTransport transport(&net, tcfg, nullptr);
  const auto hosts = g.HostsInDc(0);
  for (FlowId i = 1; i <= 3; ++i) {
    FlowSpec f;
    f.id = i;
    f.src = hosts[i];
    f.dst = hosts[0];
    f.key = FlowKey{f.src, f.dst, static_cast<uint32_t>(i), 4791, 17};
    f.size_bytes = 1'000'000;
    transport.StartFlow(f);
  }
  net.sim().Run(Seconds(20));
  SwitchNode& sw = net.switch_node(g.DciOfDc(0));
  // Every pause is eventually matched by a resume once traffic drains.
  EXPECT_EQ(sw.pfc()->pause_frames_sent(), sw.pfc()->resume_frames_sent());
  for (PortIndex i = 0; i < sw.num_ports(); ++i) {
    EXPECT_FALSE(sw.pfc()->ingress_paused(i));
    EXPECT_EQ(sw.pfc()->ingress_buffered_bytes(i), 0);
  }
}

TEST(PfcTest, DisabledByDefault) {
  const Graph g = IncastFabric(2);
  Network net(g, NetworkConfig{}, EcmpFactory());
  EXPECT_EQ(net.switch_node(g.DciOfDc(0)).pfc(), nullptr);
}

}  // namespace
}  // namespace lcmp
