// Tests for the diversity-preserving two-stage selection (Sec. 3.4).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/hashing.h"
#include "core/selector.h"

namespace lcmp {
namespace {

std::vector<ScoredCandidate> MakeCandidates(std::vector<int32_t> costs,
                                            std::vector<uint8_t> cong = {}) {
  std::vector<ScoredCandidate> out;
  for (size_t i = 0; i < costs.size(); ++i) {
    ScoredCandidate c;
    c.port = static_cast<PortIndex>(i);
    c.fused_cost = costs[i];
    c.cong_score = i < cong.size() ? cong[i] : 0;
    out.push_back(c);
  }
  return out;
}

TEST(SelectorTest, EmptyReturnsInvalid) {
  std::vector<ScoredCandidate> scratch;
  const SelectionResult r = SelectDiverse({}, 123, LcmpConfig{}, scratch);
  EXPECT_EQ(r.port, kInvalidPort);
}

TEST(SelectorTest, SingleCandidateAlwaysWins) {
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({50});
  for (uint64_t h = 0; h < 16; ++h) {
    EXPECT_EQ(SelectDiverse(cands, h, LcmpConfig{}, scratch).port, 0);
  }
}

TEST(SelectorTest, KeepsLowerHalfOnly) {
  // 6 candidates, keep 3: the high-cost suffix (ports 3,4,5 by cost) must
  // never be selected.
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({10, 20, 30, 100, 200, 300});
  for (uint64_t h = 0; h < 1000; ++h) {
    const SelectionResult r = SelectDiverse(cands, h, LcmpConfig{}, scratch);
    EXPECT_LE(r.port, 2);
    EXPECT_EQ(r.reduced_set_size, 3);
  }
}

TEST(SelectorTest, HashSpreadsWithinReducedSet) {
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({10, 20, 30, 100, 200, 300});
  std::map<PortIndex, int> counts;
  for (uint32_t i = 0; i < 3000; ++i) {
    FlowKey k{1, 2, i, 4791, 17};
    ++counts[SelectDiverse(cands, HashFlowKey(k), LcmpConfig{}, scratch).port];
  }
  // All three low-cost candidates used with a roughly fair share.
  for (PortIndex p = 0; p < 3; ++p) {
    EXPECT_GT(counts[p], 700) << "port " << p;
  }
}

TEST(SelectorTest, CostOrderNotInputOrderDeterminesFilter) {
  std::vector<ScoredCandidate> scratch;
  // Costs shuffled relative to port order.
  const auto cands = MakeCandidates({300, 10, 200, 30, 100, 20});
  for (uint64_t h = 0; h < 500; ++h) {
    const PortIndex p = SelectDiverse(cands, h, LcmpConfig{}, scratch).port;
    EXPECT_TRUE(p == 1 || p == 3 || p == 5) << p;
  }
}

TEST(SelectorTest, AllCongestedSetsFlagButStillFilters) {
  // All-congested is telemetry only: the two-stage filter still runs, so
  // with 3 candidates keep = 3/2 = 1 and the cheapest wins regardless.
  LcmpConfig config;
  std::vector<ScoredCandidate> scratch;
  const auto cands =
      MakeCandidates({90, 50, 70}, {250, 240, 255});  // all >= threshold (224)
  for (uint64_t h = 0; h < 64; ++h) {
    const SelectionResult r = SelectDiverse(cands, h, config, scratch);
    EXPECT_TRUE(r.used_fallback);
    EXPECT_EQ(r.port, 1);  // minimum fused cost
    EXPECT_EQ(r.reduced_set_size, 1);
  }
}

TEST(SelectorTest, NotAllCongestedDoesNotFallBack) {
  LcmpConfig config;
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({90, 50, 70}, {250, 100, 255});
  const SelectionResult r = SelectDiverse(cands, 7, config, scratch);
  EXPECT_FALSE(r.used_fallback);
}

TEST(SelectorTest, AllCongestedStillSpreadsAcrossKeptPrefix) {
  // Regression for the herding bug: the old all-congested branch returned
  // the single minimum-cost candidate, so every flow on a congested fabric
  // re-converged onto one port — the exact herd the two-stage selection
  // exists to prevent. The fix keeps hashing over the kept prefix.
  LcmpConfig config;
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({10, 20, 30, 100, 200, 300},
                                    {255, 240, 250, 230, 245, 235});
  std::map<PortIndex, int> counts;
  for (uint32_t i = 0; i < 3000; ++i) {
    FlowKey k{1, 2, i, 4791, 17};
    const SelectionResult r = SelectDiverse(cands, HashFlowKey(k), config, scratch);
    EXPECT_TRUE(r.used_fallback);
    EXPECT_EQ(r.reduced_set_size, 3);
    ++counts[r.port];
  }
  // Pre-fix behavior: counts[0] == 3000 and the other ports never appear.
  EXPECT_EQ(counts.size(), 3u);
  for (PortIndex p = 0; p < 3; ++p) {
    EXPECT_GT(counts[p], 700) << "port " << p;
  }
}

TEST(SelectorTest, KeepRoundingAtBoundaries) {
  // n * keep_num / keep_den truncates; pin the exact kept-set sizes at the
  // rounding boundaries so a refactor cannot silently change the fraction.
  std::vector<ScoredCandidate> scratch;
  struct Case {
    int n, keep_num, keep_den, expect_keep;
  };
  const Case cases[] = {
      {5, 1, 2, 2},   // 5/2 truncates down
      {3, 2, 3, 2},   // exact
      {4, 3, 4, 3},   // exact
      {7, 3, 4, 5},   // 21/4 truncates down
      {2, 1, 2, 1},   // minimum non-degenerate set
      {4, 1, 1, 4},   // keep everything
  };
  for (const Case& c : cases) {
    LcmpConfig config;
    config.keep_num = c.keep_num;
    config.keep_den = c.keep_den;
    std::vector<int32_t> costs;
    for (int i = 0; i < c.n; ++i) {
      costs.push_back(10 * (i + 1));
    }
    const auto cands = MakeCandidates(costs);
    for (uint64_t h = 0; h < 128; ++h) {
      const SelectionResult r = SelectDiverse(cands, h, config, scratch);
      EXPECT_EQ(r.reduced_set_size, c.expect_keep)
          << "n=" << c.n << " keep=" << c.keep_num << "/" << c.keep_den;
      EXPECT_LT(r.port, c.expect_keep);
    }
  }
}

TEST(SelectorTest, KeepFractionConfigurable) {
  LcmpConfig config;
  config.keep_num = 1;
  config.keep_den = 3;  // keep only the cheapest third
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({10, 20, 30, 40, 50, 60});
  for (uint64_t h = 0; h < 200; ++h) {
    const SelectionResult r = SelectDiverse(cands, h, config, scratch);
    EXPECT_LE(r.port, 1);
    EXPECT_EQ(r.reduced_set_size, 2);
  }
}

TEST(SelectorTest, KeepAtLeastOne) {
  LcmpConfig config;
  config.keep_num = 1;
  config.keep_den = 100;
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({10, 20});
  const SelectionResult r = SelectDiverse(cands, 3, config, scratch);
  EXPECT_EQ(r.port, 0);
  EXPECT_EQ(r.reduced_set_size, 1);
}

TEST(SelectorTest, EqualCostsStayDiverse) {
  // Herd-effect core case: all candidates equally cheap; the hash must
  // spread across the kept half rather than collapsing onto one.
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({40, 40, 40, 40});
  std::map<PortIndex, int> counts;
  for (uint32_t i = 0; i < 1000; ++i) {
    FlowKey k{3, 4, i, 4791, 17};
    ++counts[SelectDiverse(cands, HashFlowKey(k), LcmpConfig{}, scratch).port];
  }
  EXPECT_EQ(counts.size(), 2u);  // keep-half of 4 = 2 candidates in play
  for (const auto& [port, n] : counts) {
    EXPECT_GT(n, 300);
  }
}

TEST(SelectorTest, DeterministicForSameHash) {
  std::vector<ScoredCandidate> scratch;
  const auto cands = MakeCandidates({10, 20, 30, 40});
  const PortIndex first = SelectDiverse(cands, 12345, LcmpConfig{}, scratch).port;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SelectDiverse(cands, 12345, LcmpConfig{}, scratch).port, first);
  }
}

// Property sweep over candidate-set sizes: selection always returns a valid
// candidate from the cheapest ceil(n*keep) subset.
class SelectorSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SelectorSizeSweep, AlwaysPicksFromKeptPrefix) {
  const int n = GetParam();
  std::vector<int32_t> costs;
  for (int i = 0; i < n; ++i) {
    costs.push_back(10 * (i + 1));
  }
  const auto cands = MakeCandidates(costs);
  std::vector<ScoredCandidate> scratch;
  const size_t keep = std::max<size_t>(static_cast<size_t>(n) / 2, 1);
  for (uint64_t h = 0; h < 256; ++h) {
    const SelectionResult r = SelectDiverse(cands, h, LcmpConfig{}, scratch);
    ASSERT_NE(r.port, kInvalidPort);
    EXPECT_LT(static_cast<size_t>(r.port), keep);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectorSizeSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 16));

}  // namespace
}  // namespace lcmp
