// Analytic-oracle suite: simulation outcomes checked against pencil-and-paper
// quantities (byte conservation, FCT floors, degenerate-topology policy
// equivalence, queue-buildup arithmetic). See src/validate/oracles.h.
#include <gtest/gtest.h>

#include "validate/oracles.h"

namespace lcmp {
namespace validate {
namespace {

class OracleSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleSeedSweep, ByteConservation) {
  const OracleResult r = CheckByteConservation(GetParam());
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST_P(OracleSeedSweep, SingleFlowCeiling) {
  const OracleResult r = CheckSingleFlowCeiling(GetParam());
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST_P(OracleSeedSweep, SinglePathPolicyEquivalence) {
  const OracleResult r = CheckSinglePathPolicyEquivalence(GetParam());
  EXPECT_TRUE(r.passed) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSeedSweep, ::testing::Values(1u, 7u, 42u));

TEST(OracleTest, QueueBuildupRate) {
  const OracleResult r = CheckQueueBuildupRate();
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(OracleTest, RunAllCoversEveryOracle) {
  const auto all = RunAllOracles(1);
  ASSERT_EQ(all.size(), 4u);
  for (const auto& [name, result] : all) {
    EXPECT_TRUE(result.passed) << name << ": " << result.detail;
    EXPECT_FALSE(result.detail.empty()) << name << " reported no numbers";
  }
}

}  // namespace
}  // namespace validate
}  // namespace lcmp
