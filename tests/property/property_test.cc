// Property-based invariant suite, driven by the seeded harness in
// src/validate/property.h. Each TEST runs one property across >= 200 derived
// seeds; a failure prints a shrunk one-line repro (seed + size).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "core/bootstrap_tables.h"
#include "core/congestion_estimator.h"
#include "core/flow_cache.h"
#include "core/path_quality.h"
#include "core/selector.h"
#include "fault/fault_plan.h"
#include "harness/sweep.h"
#include "topo/builders.h"
#include "validate/property.h"

namespace lcmp {
namespace validate {
namespace {

void ExpectPassed(const PropertyResult& result) {
  EXPECT_TRUE(result.passed) << result.Report();
  EXPECT_GE(result.cases_run, 200) << result.name << " ran too few cases";
}

TEST(PropertyTest, GeneratedConfigsAreAlwaysValid) {
  // Meta-property: every other property trusts GenLcmpConfig to produce
  // ValidateConfig-clean inputs.
  ExpectPassed(RunProperty("gen-config-valid", {}, [](Rng& rng, int) {
    const LcmpConfig c = GenLcmpConfig(rng);
    if (!ValidateConfig(c)) {
      return std::optional<std::string>("GenLcmpConfig produced an invalid config");
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, SelectorReturnsMemberOfKeptPrefix) {
  // Alg. 2 invariants for arbitrary configs and candidate sets: the chosen
  // port is a real candidate, the reduced set size is the exact stage-1
  // arithmetic, and the chosen candidate's cost is within the kept prefix of
  // the cost-sorted order.
  ExpectPassed(RunProperty("selector-membership", {}, [](Rng& rng, int size) {
    const LcmpConfig config = GenLcmpConfig(rng);
    const auto cands = GenCandidates(rng, size);
    const uint64_t flow_hash = rng.NextU64();
    std::vector<ScoredCandidate> scratch;
    const SelectionResult r = SelectDiverse(cands, flow_hash, config, scratch);
    if (size == 0) {
      if (r.port != kInvalidPort) {
        return std::optional<std::string>("empty candidate set produced a port");
      }
      return std::optional<std::string>();
    }
    const auto is_member = std::any_of(cands.begin(), cands.end(),
                                       [&](const ScoredCandidate& c) { return c.port == r.port; });
    if (!is_member) {
      return std::optional<std::string>("selected port is not a candidate");
    }
    const size_t expect_keep =
        std::max<size_t>(cands.size() * static_cast<size_t>(config.keep_num) /
                             static_cast<size_t>(config.keep_den),
                         1);
    if (static_cast<size_t>(r.reduced_set_size) != expect_keep) {
      return std::optional<std::string>(
          "reduced_set_size " + std::to_string(r.reduced_set_size) + " != expected " +
          std::to_string(expect_keep));
    }
    // Cost-prefix check: the selected candidate's cost must not exceed the
    // keep-th smallest cost.
    std::vector<int32_t> costs;
    int32_t selected_cost = 0;
    for (const ScoredCandidate& c : cands) {
      costs.push_back(c.fused_cost);
      if (c.port == r.port) {
        selected_cost = c.fused_cost;
      }
    }
    std::nth_element(costs.begin(), costs.begin() + static_cast<long>(expect_keep) - 1,
                     costs.end());
    if (selected_cost > costs[expect_keep - 1]) {
      return std::optional<std::string>("selected cost " + std::to_string(selected_cost) +
                                        " outside the kept prefix (threshold " +
                                        std::to_string(costs[expect_keep - 1]) + ")");
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, SelectorIsDeterministic) {
  ExpectPassed(RunProperty("selector-deterministic", {}, [](Rng& rng, int size) {
    if (size == 0) {
      return std::optional<std::string>();
    }
    const LcmpConfig config = GenLcmpConfig(rng);
    const auto cands = GenCandidates(rng, size);
    const uint64_t flow_hash = rng.NextU64();
    std::vector<ScoredCandidate> scratch;
    const SelectionResult a = SelectDiverse(cands, flow_hash, config, scratch);
    const SelectionResult b = SelectDiverse(cands, flow_hash, config, scratch);
    if (a.port != b.port || a.reduced_set_size != b.reduced_set_size ||
        a.used_fallback != b.used_fallback) {
      return std::optional<std::string>("same inputs produced different selections");
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, PathQualityMonotoneInDelay) {
  // Eq. 2: more delay can never make a path look better, for any valid
  // weight/shift assignment.
  ExpectPassed(RunProperty("path-quality-monotone-delay", {}, [](Rng& rng, int) {
    const LcmpConfig config = GenLcmpConfig(rng);
    const BootstrapTables tables = BootstrapTables::Build(config);
    const int64_t rate = Gbps(1 + static_cast<int64_t>(rng.NextBounded(400)));
    TimeNs d1 = static_cast<TimeNs>(rng.NextBounded(Milliseconds(300)));
    TimeNs d2 = static_cast<TimeNs>(rng.NextBounded(Milliseconds(300)));
    if (d1 > d2) {
      std::swap(d1, d2);
    }
    const uint8_t q1 = CalcPathQuality(d1, rate, config, tables);
    const uint8_t q2 = CalcPathQuality(d2, rate, config, tables);
    if (q1 > q2) {
      return std::optional<std::string>("quality(" + std::to_string(d1) + "ns)=" +
                                        std::to_string(q1) + " > quality(" +
                                        std::to_string(d2) + "ns)=" + std::to_string(q2));
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, PathQualityAntitoneInCapacity) {
  ExpectPassed(RunProperty("path-quality-antitone-capacity", {}, [](Rng& rng, int) {
    const LcmpConfig config = GenLcmpConfig(rng);
    const BootstrapTables tables = BootstrapTables::Build(config);
    const TimeNs delay = static_cast<TimeNs>(rng.NextBounded(Milliseconds(200)));
    int64_t r1 = Gbps(1 + static_cast<int64_t>(rng.NextBounded(400)));
    int64_t r2 = Gbps(1 + static_cast<int64_t>(rng.NextBounded(400)));
    if (r1 > r2) {
      std::swap(r1, r2);
    }
    const uint8_t q_slow = CalcPathQuality(delay, r1, config, tables);
    const uint8_t q_fast = CalcPathQuality(delay, r2, config, tables);
    if (q_fast > q_slow) {
      return std::optional<std::string>("faster link scored worse: " + std::to_string(r2) +
                                        "bps=" + std::to_string(q_fast) + " vs " +
                                        std::to_string(r1) + "bps=" + std::to_string(q_slow));
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, CongScoreMonotoneInFinalQueueDepth) {
  // Two estimators fed an identical random history must rank a deeper final
  // queue at least as congested (Q, trend delta and duration all move the
  // same way).
  ExpectPassed(RunProperty("cong-score-monotone", {}, [](Rng& rng, int size) {
    const LcmpConfig config = GenLcmpConfig(rng);
    BootstrapTables tables = BootstrapTables::Build(config);
    CongestionEstimator est_a(config, &tables, 1);
    CongestionEstimator est_b(config, &tables, 1);
    const int64_t rate = Gbps(10 + static_cast<int64_t>(rng.NextBounded(390)));
    TimeNs now = 0;
    for (int i = 0; i < size; ++i) {
      now += config.sample_interval;
      const int64_t q = static_cast<int64_t>(rng.NextBounded(8'000'000));
      est_a.Sample(0, q, rate, now);
      est_b.Sample(0, q, rate, now);
    }
    now += config.sample_interval;
    int64_t qa = static_cast<int64_t>(rng.NextBounded(8'000'000));
    int64_t qb = static_cast<int64_t>(rng.NextBounded(8'000'000));
    if (qa > qb) {
      std::swap(qa, qb);
    }
    est_a.Sample(0, qa, rate, now);
    est_b.Sample(0, qb, rate, now);
    const uint8_t sa = est_a.CongScore(0, rate);
    const uint8_t sb = est_b.CongScore(0, rate);
    if (sa > sb) {
      return std::optional<std::string>("score(q=" + std::to_string(qa) + ")=" +
                                        std::to_string(sa) + " > score(q=" +
                                        std::to_string(qb) + ")=" + std::to_string(sb));
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, FlowCacheEntriesNeverOutliveGcHorizon) {
  // After a GC sweep at time `now`, no surviving entry may be idle past the
  // timeout, expired entries must not resolve via Lookup, and invalidated
  // (dead-path) entries must be gone entirely.
  ExpectPassed(RunProperty("flow-cache-gc-horizon", {}, [](Rng& rng, int size) {
    const int capacity = 4 + static_cast<int>(rng.NextBounded(64));
    const TimeNs timeout = Microseconds(100 + static_cast<int64_t>(rng.NextBounded(100'000)));
    FlowCache cache(capacity, timeout);
    const TimeNs now = 2 * timeout + static_cast<TimeNs>(rng.NextBounded(Seconds(1)));
    const int inserts = 1 + size;
    std::vector<FlowId> inserted;
    for (int i = 0; i < inserts; ++i) {
      const FlowId flow = 1 + rng.NextU64() % 1'000'000;
      const TimeNs seen = static_cast<TimeNs>(rng.NextBounded(static_cast<uint64_t>(now) + 1));
      const PortIndex port = static_cast<PortIndex>(rng.NextBounded(8));
      cache.Insert(flow, port, seen);
      inserted.push_back(flow);
    }
    // Dead-path invalidation happens after all inserts so a random flow-id
    // collision cannot resurrect an invalidated entry.
    std::vector<FlowId> dead_flows;
    for (const FlowId flow : inserted) {
      if (rng.NextBounded(4) == 0) {
        cache.Invalidate(flow);
        dead_flows.push_back(flow);
      }
    }
    cache.Gc(now);
    std::optional<std::string> violation;
    cache.ForEachEntry([&](const FlowCache::Entry& e) {
      if (now - e.last_seen > timeout && !violation.has_value()) {
        violation = "entry idle " + std::to_string(now - e.last_seen) +
                    "ns survived GC (timeout " + std::to_string(timeout) + "ns)";
      }
    });
    if (violation.has_value()) {
      return violation;
    }
    for (const FlowId flow : dead_flows) {
      if (cache.Lookup(flow, now) != kInvalidPort) {
        return std::optional<std::string>("invalidated flow " + std::to_string(flow) +
                                          " still resolves to a port");
      }
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, FlowCacheLookupRejectsExpiredEntries) {
  ExpectPassed(RunProperty("flow-cache-expiry", {}, [](Rng& rng, int) {
    const TimeNs timeout = Microseconds(100 + static_cast<int64_t>(rng.NextBounded(100'000)));
    FlowCache cache(64, timeout);
    const FlowId flow = 1 + rng.NextU64() % 1'000'000;
    const PortIndex port = static_cast<PortIndex>(rng.NextBounded(8));
    cache.Insert(flow, port, 0);
    const TimeNs fresh = static_cast<TimeNs>(rng.NextBounded(static_cast<uint64_t>(timeout)));
    if (cache.Lookup(flow, fresh) != port) {
      return std::optional<std::string>("fresh entry did not resolve");
    }
    // Lookup refreshed last_seen to `fresh`; anything past fresh + timeout
    // must now miss.
    const TimeNs stale =
        fresh + timeout + 1 + static_cast<TimeNs>(rng.NextBounded(Seconds(1)));
    if (cache.Lookup(flow, stale) != kInvalidPort) {
      return std::optional<std::string>("expired entry still resolves");
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, ChaosPlanTextFormIsAFixedPoint) {
  // FaultPlan::ToString must parse back to a plan whose text form is
  // identical (one round trip reaches the grammar's canonical form), for
  // arbitrary seeded chaos plans on arbitrary random WANs.
  PropertyOptions options;
  options.max_size = 16;
  ExpectPassed(RunProperty("fault-plan-round-trip", options, [](Rng& rng, int size) {
    RandomWanOptions wan;
    wan.num_dcs = 3 + static_cast<int>(rng.NextBounded(6));
    wan.extra_chords = static_cast<int>(rng.NextBounded(6));
    wan.seed = rng.NextU64();
    wan.fabric.hosts = 1;
    const Graph graph = BuildRandomWan(wan);
    ChaosOptions chaos;
    chaos.seed = rng.NextU64();
    chaos.faults_per_sec = 5.0 + static_cast<double>(rng.NextBounded(100));
    chaos.window = Milliseconds(10 + static_cast<int64_t>(size) * 20);
    const FaultPlan plan = GenerateChaosPlan(graph, chaos);
    const std::string text = plan.ToString();
    FaultPlan parsed;
    std::string error;
    if (!ParseFaultPlan(text, graph, &parsed, &error)) {
      return std::optional<std::string>("ToString output failed to parse: " + error);
    }
    if (parsed.ToString() != text) {
      return std::optional<std::string>("text form is not a fixed point under round-trip");
    }
    if (parsed.size() != plan.size()) {
      return std::optional<std::string>("round trip changed event count");
    }
    return std::optional<std::string>();
  }));
}

TEST(PropertyTest, ConfigRegistryGetApplyIsAFixedPoint) {
  // For every registry field: reading a (randomized) config and re-applying
  // the encoded value onto a fresh config reproduces the same encoding.
  ExpectPassed(RunProperty("config-registry-round-trip", {}, [](Rng& rng, int) {
    ExperimentConfig config;
    // Randomize through the registry itself so only encodable states occur.
    const char* kPolicies[] = {"ecmp", "wcmp", "ucmp", "redte", "lcmp"};
    const char* kTopos[] = {"testbed8", "bso13", "testbed8-sym"};
    std::string error;
    if (!ApplyConfigField(&config, "policy", kPolicies[rng.NextBounded(5)], &error) ||
        !ApplyConfigField(&config, "topo", kTopos[rng.NextBounded(3)], &error) ||
        !ApplyConfigField(&config, "flows",
                          std::to_string(1 + rng.NextBounded(5000)), &error) ||
        !ApplyConfigField(&config, "seed", std::to_string(rng.NextU64() >> 1), &error) ||
        !ApplyConfigField(&config, "lcmp.alpha",
                          std::to_string(rng.NextBounded(8)), &error)) {
      return std::optional<std::string>("randomization failed: " + error);
    }
    for (const std::string& field : KnownConfigFields()) {
      std::string encoded;
      if (!GetConfigField(config, field, &encoded)) {
        // The per-segment cc selectors are write-only by design: their state
        // echoes through the composite "cc" field instead.
        if (field == "cc.inter" || field == "cc.intra") {
          continue;
        }
        return std::optional<std::string>("GetConfigField failed for " + field);
      }
      ExperimentConfig fresh;
      if (!ApplyConfigField(&fresh, field, encoded, &error)) {
        return std::optional<std::string>("ApplyConfigField(" + field + ", '" + encoded +
                                          "') failed: " + error);
      }
      std::string back;
      if (!GetConfigField(fresh, field, &back) || back != encoded) {
        return std::optional<std::string>("field " + field + " round-trips '" + encoded +
                                          "' to '" + back + "'");
      }
    }
    return std::optional<std::string>();
  }));
}

}  // namespace
}  // namespace validate
}  // namespace lcmp
