// Golden-digest regression suite: every canonical scenario's current
// ExperimentDigest must equal the record pinned in tests/golden/. A failure
// means an intentional behavior change (re-pin with `lcmp_validate
// --update-golden` and review the new records) or an unintended one (fix it).
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "validate/golden.h"

namespace lcmp {
namespace validate {
namespace {

class GoldenDigestTest : public ::testing::TestWithParam<GoldenScenario> {};

TEST_P(GoldenDigestTest, MatchesPinnedRecord) {
  const GoldenScenario& scenario = GetParam();
  GoldenRecord pinned;
  std::string error;
  const std::string path = GoldenPath(GoldenDir(), scenario.name);
  ASSERT_TRUE(LoadGoldenRecord(path, &pinned, &error))
      << error << "\nMissing or unreadable golden record. Generate the corpus with:\n"
      << "  lcmp_validate --update-golden";
  const GoldenRecord current = ComputeGoldenRecord(scenario);
  const GoldenDiff diff = CompareGolden(pinned, current);
  EXPECT_TRUE(diff.match) << "scenario '" << scenario.name << "' drifted: " << diff.detail
                          << "\nIf this change is intentional, re-pin with:\n"
                          << "  lcmp_validate --update-golden\nand review " << path
                          << " like any other diff.";
}

TEST(GoldenCorpusTest, HasAtLeastTwelveScenarios) {
  EXPECT_GE(GoldenScenarios().size(), 12u);
}

TEST(GoldenCorpusTest, ScenarioNamesAreUniqueAndConfigsValid) {
  std::set<std::string> names;
  for (const GoldenScenario& scenario : GoldenScenarios()) {
    EXPECT_TRUE(names.insert(scenario.name).second) << "duplicate name " << scenario.name;
    ExperimentConfig config;
    std::string error;
    EXPECT_TRUE(BuildGoldenConfig(scenario, &config, &error))
        << scenario.name << ": " << error;
  }
}

TEST(GoldenRecordTest, JsonRoundTrip) {
  GoldenRecord rec;
  rec.name = "x";
  rec.digest = 0xdeadbeefcafef00dULL;
  rec.events_processed = 123456;
  rec.flows_completed = 120;
  rec.sim_end_ns = 987654321;
  rec.config_echo = "policy=lcmp flows=120";
  rec.p50_slowdown = 1.25;
  rec.p99_slowdown = 9.5;
  GoldenRecord back;
  std::string error;
  ASSERT_TRUE(ParseGoldenRecord(GoldenRecordToJson(rec), &back, &error)) << error;
  EXPECT_EQ(back.name, rec.name);
  EXPECT_EQ(back.digest, rec.digest);
  EXPECT_EQ(back.events_processed, rec.events_processed);
  EXPECT_EQ(back.flows_completed, rec.flows_completed);
  EXPECT_EQ(back.sim_end_ns, rec.sim_end_ns);
  EXPECT_EQ(back.config_echo, rec.config_echo);
  EXPECT_TRUE(CompareGolden(rec, back).match);
}

TEST(GoldenRecordTest, CompareNamesEveryDivergingField) {
  GoldenRecord a;
  a.digest = 1;
  a.events_processed = 10;
  GoldenRecord b;
  b.digest = 2;
  b.events_processed = 20;
  const GoldenDiff diff = CompareGolden(a, b);
  EXPECT_FALSE(diff.match);
  EXPECT_NE(diff.detail.find("digest"), std::string::npos);
  EXPECT_NE(diff.detail.find("events_processed"), std::string::npos);
}

std::string ParamName(const ::testing::TestParamInfo<GoldenScenario>& info) {
  std::string name = info.param.name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenDigestTest, ::testing::ValuesIn(GoldenScenarios()),
                         ParamName);

}  // namespace
}  // namespace validate
}  // namespace lcmp
