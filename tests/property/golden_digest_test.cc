// Golden-digest regression suite: every canonical scenario's current
// ExperimentDigest must equal the record pinned in tests/golden/. A failure
// means an intentional behavior change (re-pin with `lcmp_validate
// --update-golden` and review the new records) or an unintended one (fix it).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "validate/golden.h"

namespace lcmp {
namespace validate {
namespace {

class GoldenDigestTest : public ::testing::TestWithParam<GoldenScenario> {};

TEST_P(GoldenDigestTest, MatchesPinnedRecord) {
  const GoldenScenario& scenario = GetParam();
  GoldenRecord pinned;
  std::string error;
  const std::string path = GoldenPath(GoldenDir(), scenario.name);
  ASSERT_TRUE(LoadGoldenRecord(path, &pinned, &error))
      << error << "\nMissing or unreadable golden record. Generate the corpus with:\n"
      << "  lcmp_validate --update-golden";
  const GoldenRecord current = ComputeGoldenRecord(scenario);
  const GoldenDiff diff = CompareGolden(pinned, current);
  EXPECT_TRUE(diff.match) << "scenario '" << scenario.name << "' drifted: " << diff.detail
                          << "\nIf this change is intentional, re-pin with:\n"
                          << "  lcmp_validate --update-golden\nand review " << path
                          << " like any other diff.";
}

TEST(GoldenCorpusTest, HasAtLeastTwelveScenarios) {
  EXPECT_GE(GoldenScenarios().size(), 12u);
}

TEST(GoldenCorpusTest, ScenarioNamesAreUniqueAndConfigsValid) {
  std::set<std::string> names;
  for (const GoldenScenario& scenario : GoldenScenarios()) {
    EXPECT_TRUE(names.insert(scenario.name).second) << "duplicate name " << scenario.name;
    ExperimentConfig config;
    std::string error;
    EXPECT_TRUE(BuildGoldenConfig(scenario, &config, &error))
        << scenario.name << ": " << error;
  }
}

TEST(GoldenRecordTest, JsonRoundTrip) {
  GoldenRecord rec;
  rec.name = "x";
  rec.digest = 0xdeadbeefcafef00dULL;
  rec.events_processed = 123456;
  rec.flows_completed = 120;
  rec.sim_end_ns = 987654321;
  rec.config_echo = "policy=lcmp flows=120";
  rec.p50_slowdown = 1.25;
  rec.p99_slowdown = 9.5;
  GoldenRecord back;
  std::string error;
  ASSERT_TRUE(ParseGoldenRecord(GoldenRecordToJson(rec), &back, &error)) << error;
  EXPECT_EQ(back.name, rec.name);
  EXPECT_EQ(back.digest, rec.digest);
  EXPECT_EQ(back.events_processed, rec.events_processed);
  EXPECT_EQ(back.flows_completed, rec.flows_completed);
  EXPECT_EQ(back.sim_end_ns, rec.sim_end_ns);
  EXPECT_EQ(back.config_echo, rec.config_echo);
  EXPECT_TRUE(CompareGolden(rec, back).match);
}

TEST(GoldenRecordTest, CompareNamesEveryDivergingField) {
  GoldenRecord a;
  a.digest = 1;
  a.events_processed = 10;
  GoldenRecord b;
  b.digest = 2;
  b.events_processed = 20;
  const GoldenDiff diff = CompareGolden(a, b);
  EXPECT_FALSE(diff.match);
  EXPECT_NE(diff.detail.find("digest"), std::string::npos);
  EXPECT_NE(diff.detail.find("events_processed"), std::string::npos);
}

// --- topology-family structural goldens (topo/gen) ---

TEST(TopoFamilyGoldenTest, EveryFamilyMatchesPinnedStructuralDigest) {
  std::vector<TopoFamilyRecord> pinned;
  std::string error;
  const std::string path = TopoFamilyGoldenPath(GoldenDir());
  ASSERT_TRUE(LoadTopoFamilyRecords(path, &pinned, &error))
      << error << "\nGenerate the family corpus with:\n  lcmp_validate --update-golden";
  for (const TopoFamilyScenario& family : TopoFamilyScenarios()) {
    const TopoFamilyRecord* rec = nullptr;
    for (const TopoFamilyRecord& r : pinned) {
      if (r.name == family.name) {
        rec = &r;
        break;
      }
    }
    ASSERT_NE(rec, nullptr) << "family '" << family.name << "' missing from " << path;
    uint64_t digest = 0;
    ASSERT_TRUE(ComputeTopoFamilyDigest(family, &digest, &error)) << error;
    EXPECT_EQ(digest, rec->digest)
        << "generator drift in family '" << family.name << "' (" << family.overrides
        << "): re-pin with lcmp_validate --update-golden and review the diff.";
  }
}

TEST(TopoFamilyGoldenTest, CorpusCoversAllGeneratedFamiliesAndRoundTrips) {
  std::set<std::string> names;
  for (const TopoFamilyScenario& family : TopoFamilyScenarios()) {
    EXPECT_TRUE(names.insert(family.name).second) << "duplicate family " << family.name;
  }
  for (const char* required : {"dragonfly", "slimfly", "fattree", "random"}) {
    EXPECT_TRUE(names.count(required)) << required;
  }

  const std::vector<TopoFamilyRecord> records = {
      {"dragonfly", "topo=dragonfly dcs=32", 0xdeadbeefcafef00dULL},
      {"random", "topo=random", 0x1ULL},
  };
  const std::string path = testing::TempDir() + "lcmp_topo_families.json";
  std::string error;
  ASSERT_TRUE(SaveTopoFamilyRecords(path, records, &error)) << error;
  std::vector<TopoFamilyRecord> back;
  ASSERT_TRUE(LoadTopoFamilyRecords(path, &back, &error)) << error;
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].name, records[i].name);
    EXPECT_EQ(back[i].config_echo, records[i].config_echo);
    EXPECT_EQ(back[i].digest, records[i].digest);
  }
}

std::string ParamName(const ::testing::TestParamInfo<GoldenScenario>& info) {
  std::string name = info.param.name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenDigestTest, ::testing::ValuesIn(GoldenScenarios()),
                         ParamName);

}  // namespace
}  // namespace validate
}  // namespace lcmp
