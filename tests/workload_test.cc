// Tests for the flow-size CDFs and the Poisson traffic generator.
#include <gtest/gtest.h>

#include <set>

#include "topo/builders.h"
#include "workload/flow_cdf.h"
#include "workload/traffic_gen.h"

namespace lcmp {
namespace {

class CdfTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(CdfTest, SamplesWithinSupport) {
  const FlowCdf& cdf = FlowCdf::Get(GetParam());
  Rng rng(1);
  const double max_bytes = cdf.points().back().first;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t s = cdf.Sample(rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(static_cast<double>(s), max_bytes);
  }
}

TEST_P(CdfTest, EmpiricalMeanMatchesAnalytic) {
  const FlowCdf& cdf = FlowCdf::Get(GetParam());
  Rng rng(2);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(cdf.Sample(rng));
  }
  const double empirical = sum / n;
  EXPECT_NEAR(empirical / cdf.mean_bytes(), 1.0, 0.05)
      << WorkloadKindName(GetParam()) << " empirical=" << empirical
      << " analytic=" << cdf.mean_bytes();
}

TEST_P(CdfTest, CdfAtKnotsMatchesTable) {
  const FlowCdf& cdf = FlowCdf::Get(GetParam());
  for (const auto& [bytes, prob] : cdf.points()) {
    EXPECT_NEAR(cdf.CdfAt(bytes), prob, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, CdfTest,
                         ::testing::Values(WorkloadKind::kWebSearch, WorkloadKind::kFbHdp,
                                           WorkloadKind::kAliStorage),
                         [](const ::testing::TestParamInfo<WorkloadKind>& info) {
                           return WorkloadKindName(info.param);
                         });

TEST(CdfShapeTest, WorkloadsDifferAsPublished) {
  // FbHdp is dominated by tiny flows; WebSearch has a much larger mean.
  const double ws = FlowCdf::Get(WorkloadKind::kWebSearch).mean_bytes();
  const double fb = FlowCdf::Get(WorkloadKind::kFbHdp).mean_bytes();
  const double ali = FlowCdf::Get(WorkloadKind::kAliStorage).mean_bytes();
  EXPECT_GT(ws, 1'000'000.0);
  EXPECT_LT(fb, ws);
  EXPECT_LT(ali, ws);
  // FbHdp median is sub-2KB.
  Rng rng(3);
  int small = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (FlowCdf::Get(WorkloadKind::kFbHdp).Sample(rng) < 2000) {
      ++small;
    }
  }
  EXPECT_GT(small, 4'500);
}

TEST(TrafficGenTest, AllOrderedPairs) {
  const auto pairs = AllOrderedDcPairs(4);
  EXPECT_EQ(pairs.size(), 12u);
  std::set<std::pair<DcId, DcId>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), 12u);
  for (const auto& [s, d] : pairs) {
    EXPECT_NE(s, d);
  }
}

TEST(TrafficGenTest, GeneratesRequestedFlows) {
  const Graph g = BuildTestbed8({});
  TrafficGenConfig cfg;
  cfg.num_flows = 500;
  cfg.offered_bps = Gbps(100);
  const auto flows = GenerateTraffic(g, {{0, 7}, {7, 0}}, cfg);
  ASSERT_EQ(flows.size(), 500u);
  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowSpec& f = flows[i];
    EXPECT_EQ(f.id, i + 1);
    EXPECT_GT(f.size_bytes, 0u);
    const DcId sdc = g.vertex(f.src).dc;
    const DcId ddc = g.vertex(f.dst).dc;
    EXPECT_TRUE((sdc == 0 && ddc == 7) || (sdc == 7 && ddc == 0));
    if (i > 0) {
      EXPECT_GE(f.start_time, flows[i - 1].start_time);
    }
  }
}

TEST(TrafficGenTest, ArrivalRateMatchesOfferedLoad) {
  const Graph g = BuildTestbed8({});
  TrafficGenConfig cfg;
  cfg.num_flows = 20'000;
  cfg.offered_bps = Gbps(200);
  cfg.seed = 5;
  const auto flows = GenerateTraffic(g, {{0, 7}}, cfg);
  // Aggregate bytes / makespan should approximate the offered load.
  uint64_t total_bytes = 0;
  for (const FlowSpec& f : flows) {
    total_bytes += f.size_bytes;
  }
  const double makespan_s =
      static_cast<double>(flows.back().start_time) / static_cast<double>(kNsPerSec);
  const double achieved_bps = static_cast<double>(total_bytes) * 8.0 / makespan_s;
  EXPECT_NEAR(achieved_bps / static_cast<double>(cfg.offered_bps), 1.0, 0.1);
}

TEST(TrafficGenTest, DeterministicForSeed) {
  const Graph g = BuildTestbed8({});
  TrafficGenConfig cfg;
  cfg.num_flows = 100;
  cfg.offered_bps = Gbps(50);
  cfg.seed = 77;
  const auto a = GenerateTraffic(g, {{0, 7}}, cfg);
  const auto b = GenerateTraffic(g, {{0, 7}}, cfg);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
    EXPECT_EQ(a[i].start_time, b[i].start_time);
    EXPECT_EQ(a[i].src, b[i].src);
  }
}

TEST(TrafficGenTest, OfferedLoadForUtilizationTestbed8) {
  const Graph g = BuildTestbed8({});
  const InterDcRoutes routes = InterDcRoutes::Compute(g);
  // Directed inter-DC capacity: 2 * 2 * (200+200+100+100+40+40) G = 2720 G.
  // Mean hops over {0->7, 7->0} = 2. Offered at 30% = 0.3 * 2720/2 = 408 G.
  const int64_t offered =
      OfferedLoadForUtilization(g, routes, {{0, 7}, {7, 0}}, 0.30);
  EXPECT_NEAR(static_cast<double>(offered), 0.3 * 2720.0e9 / 2.0, 1e9);
}

TEST(TrafficGenTest, StartTimeOffsetRespected) {
  const Graph g = BuildTestbed8({});
  TrafficGenConfig cfg;
  cfg.num_flows = 10;
  cfg.offered_bps = Gbps(50);
  cfg.start_time = Milliseconds(7);
  const auto flows = GenerateTraffic(g, {{0, 7}}, cfg);
  for (const FlowSpec& f : flows) {
    EXPECT_GE(f.start_time, Milliseconds(7));
  }
}

}  // namespace
}  // namespace lcmp
