// Whole-system invariants checked over randomized scenarios: when a run
// drains, no packet may be left buffered anywhere; without failures and with
// ample buffers nothing is dropped; flow-cache occupancy never exceeds its
// bound; and identical seeds give identical simulations across policies.
#include <gtest/gtest.h>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "harness/experiment.h"
#include "stats/fct_recorder.h"
#include "workload/traffic_gen.h"

namespace lcmp {
namespace {

struct RunArtifacts {
  int completed = 0;
  int64_t switch_drops = 0;
  int64_t leftover_queue_bytes = 0;
  int64_t nic_drops = 0;
};

RunArtifacts RunScenario(PolicyKind policy, uint64_t seed) {
  Testbed8Options topo_opts;
  topo_opts.fabric.hosts = 4;
  const Graph graph = BuildTestbed8(topo_opts);
  NetworkConfig ncfg;
  ncfg.seed = seed;
  Network net(graph, ncfg, MakePolicyFactory(policy, LcmpConfig{}));
  ControlPlane cp{LcmpConfig{}};
  cp.Provision(net);
  int completed = 0;
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord&) { ++completed; });
  TrafficGenConfig traffic;
  traffic.offered_bps = Gbps(150);
  traffic.num_flows = 80;
  traffic.seed = seed;
  for (const FlowSpec& f : GenerateTraffic(graph, {{0, 7}, {7, 0}}, traffic)) {
    transport.ScheduleFlow(f);
  }
  // No StartPolicyTicks: let the queue fully drain so the invariants below
  // talk about a quiescent network (LCMP still samples on demand).
  net.sim().Run(Seconds(120));

  RunArtifacts a;
  a.completed = completed;
  for (NodeId id = 0; id < graph.num_vertices(); ++id) {
    Node& n = net.node(id);
    for (PortIndex p = 0; p < n.num_ports(); ++p) {
      a.leftover_queue_bytes += n.port(p).queue_bytes();
      if (graph.vertex(id).kind == VertexKind::kHost) {
        a.nic_drops += n.port(p).dropped_packets();
      } else {
        a.switch_drops += n.port(p).dropped_packets();
      }
    }
  }
  return a;
}

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<PolicyKind, uint64_t>> {};

TEST_P(InvariantSweep, DrainedNetworkIsEmptyAndLossless) {
  const auto [policy, seed] = GetParam();
  const RunArtifacts a = RunScenario(policy, seed);
  EXPECT_EQ(a.completed, 80) << PolicyKindName(policy);
  // Quiescence: every queue empty once the event queue drained.
  EXPECT_EQ(a.leftover_queue_bytes, 0);
  // Ample buffers, no failures: nothing may drop anywhere.
  EXPECT_EQ(a.switch_drops, 0);
  EXPECT_EQ(a.nic_drops, 0);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySeeds, InvariantSweep,
    ::testing::Combine(::testing::Values(PolicyKind::kEcmp, PolicyKind::kUcmp,
                                         PolicyKind::kLcmp),
                       ::testing::Values(1u, 7u, 13u)),
    [](const ::testing::TestParamInfo<std::tuple<PolicyKind, uint64_t>>& info) {
      return std::string(PolicyKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(InvariantTest, FlowCacheNeverExceedsCapacity) {
  LcmpConfig config;
  config.flow_cache_capacity = 64;
  const Graph graph = BuildDumbbell(3, 2, Gbps(100), Milliseconds(1));
  Network net(graph, NetworkConfig{}, MakeLcmpFactory(config));
  ControlPlane cp(config);
  cp.Provision(net);
  SwitchNode& sw = net.switch_node(graph.DciOfDc(0));
  auto* router = dynamic_cast<LcmpRouter*>(sw.policy());
  const auto cands = sw.CandidatesTo(1);
  for (uint32_t i = 0; i < 5000; ++i) {
    Packet p;
    p.type = PacketType::kData;
    p.src = graph.HostsInDc(0)[0];
    p.dst = graph.HostsInDc(1)[0];
    p.key = FlowKey{p.src, p.dst, i, 4791, 17};
    router->SelectPort(sw, p, cands);
    ASSERT_LE(router->flow_cache().size(), 64);
  }
}

TEST(InvariantTest, SlowdownNeverBelowOneOnSymmetricSinglePath) {
  // On a single-path topology the ideal path is the only path, so measured
  // FCT can never beat the ideal.
  const LinearTopo t = BuildLinear();
  FctRecorder recorder(&t.graph);
  Network net(t.graph, NetworkConfig{}, nullptr);
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord& r) { recorder.OnComplete(r); });
  for (FlowId i = 1; i <= 20; ++i) {
    FlowSpec f;
    f.id = i;
    f.src = t.src_host;
    f.dst = t.dst_host;
    f.key = FlowKey{f.src, f.dst, static_cast<uint32_t>(i), 4791, 17};
    f.size_bytes = 10'000 * i;
    f.start_time = static_cast<TimeNs>(i) * Microseconds(30);
    transport.ScheduleFlow(f);
  }
  net.sim().Run(Seconds(10));
  ASSERT_EQ(recorder.completed(), 20);
  for (const auto& s : recorder.samples()) {
    EXPECT_GE(s.slowdown, 0.999);
  }
}

}  // namespace
}  // namespace lcmp
