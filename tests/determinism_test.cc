// Determinism regression for the zero-allocation event/packet hot path: the
// same seeded scenario run twice must be bit-identical — event counts,
// per-switch forwarded-packet counts, and the exact FCT sequence. This is the
// contract the InlineEvent queue, the indexed-heap layout, the pooled INT
// side-buffer, and ScheduleEvery all preserve (FIFO (time, seq) tie-break).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "harness/experiment.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "stats/fct_recorder.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"
#include "workload/traffic_gen.h"

namespace lcmp {
namespace {

struct RunDigest {
  uint64_t events = 0;
  int completed = 0;
  uint64_t fct_hash = 0;               // order-sensitive digest of all FCTs
  std::vector<int64_t> forwarded;      // per-switch forwarded packets
  size_t int_stacks_live = 0;          // INT pool leak detector
  int64_t telemetry_sweeps = 0;

  bool operator==(const RunDigest& o) const {
    return events == o.events && completed == o.completed && fct_hash == o.fct_hash &&
           forwarded == o.forwarded && int_stacks_live == o.int_stacks_live &&
           telemetry_sweeps == o.telemetry_sweeps;
  }
};

uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// `with_obs` turns on every observability subsystem (metrics + untargeted
// flight recorder + profiling) for the run; observability must only *read*
// simulation state, so the digest has to match an obs-off run bit for bit.
RunDigest RunScenario(const std::string& cc, uint64_t seed, bool with_obs = false) {
  obs::SetMetricsEnabled(with_obs);
  obs::SetProfileEnabled(with_obs);
  obs::MetricsRegistry::Instance().ResetValues();
  obs::FlightRecorder::Instance().Clear();
  obs::FlightRecorder::Instance().SetFilters(-1, kInvalidNode);
  obs::FlightRecorder::Instance().Enable(with_obs);

  Testbed8Options topts;
  topts.fabric.hosts = 2;
  const Graph graph = BuildTestbed8(topts);

  NetworkConfig ncfg;
  ncfg.seed = seed;
  ncfg.enable_int = CcRegistry::Instance().NeedsInt(cc);
  Network net(graph, ncfg, MakeLcmpFactory(LcmpConfig{}));
  ControlPlane cp{LcmpConfig{}};
  cp.Provision(net);
  // Standing telemetry loop rides the recurring-timer path; its events must
  // be as reproducible as the data plane's.
  cp.StartTelemetryLoop(net, Milliseconds(10));

  FctRecorder recorder(&net.graph());
  const int num_flows = 80;
  Simulator& sim = net.sim();
  TransportConfig tcfg;
  tcfg.cc.inter = cc;
  tcfg.cc.intra = cc;
  RdmaTransport transport(&net, tcfg, [&](const FlowRecord& rec) {
    recorder.OnComplete(rec);
    if (recorder.completed() >= num_flows) {
      sim.Stop();
    }
  });
  const std::vector<std::pair<DcId, DcId>> pairs = {{0, 7}, {7, 0}};
  TrafficGenConfig traffic;
  traffic.offered_bps = OfferedLoadForUtilization(graph, net.routes(), pairs, 0.30);
  traffic.num_flows = num_flows;
  traffic.seed = seed;
  for (const FlowSpec& f : GenerateTraffic(graph, pairs, traffic)) {
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();
  sim.Run(Seconds(120));
  // Stop() fires the instant the last flow completes, freezing in-flight
  // packets (trailing ACKs, Go-Back-N duplicates) that legitimately hold INT
  // handles. Drain to data-plane quiescence before sampling the pool so the
  // leak check measures true leaks, not a mid-flight snapshot. Recurring
  // control-plane timers re-arm forever, so the drain must use a bounded
  // horizon rather than wait for an empty queue.
  cp.StopTelemetryLoop(net);
  sim.Run(sim.now() + Seconds(5));

  RunDigest d;
  d.events = sim.events_processed();
  d.completed = recorder.completed();
  for (const FctRecorder::Sample& s : recorder.samples()) {
    d.fct_hash = HashMix(d.fct_hash, static_cast<uint64_t>(s.fct));
    d.fct_hash = HashMix(d.fct_hash, s.bytes);
  }
  for (const NodeId dci : graph.DciSwitches()) {
    d.forwarded.push_back(net.switch_node(dci).forwarded_packets());
  }
  d.int_stacks_live = net.int_pool().in_use();
  d.telemetry_sweeps = cp.telemetry_sweeps();

  // Restore the default-off globals so later tests see a clean slate.
  obs::SetMetricsEnabled(false);
  obs::SetProfileEnabled(false);
  obs::FlightRecorder::Instance().Enable(false);
  return d;
}

TEST(DeterminismTest, SameSeedSameRunIsBitIdentical) {
  const RunDigest a = RunScenario("dcqcn", 7);
  const RunDigest b = RunScenario("dcqcn", 7);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.fct_hash, b.fct_hash);
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.completed, 80);
  EXPECT_GT(a.telemetry_sweeps, 0);
}

TEST(DeterminismTest, HpccIntPathIsDeterministicAndLeakFree) {
  const RunDigest a = RunScenario("hpcc", 11);
  const RunDigest b = RunScenario("hpcc", 11);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.completed, 80);
  // Every acquired INT stack must have been released by a packet death site
  // (delivery, drop, flush, or ACK consumption).
  EXPECT_EQ(a.int_stacks_live, 0u);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const RunDigest a = RunScenario("dcqcn", 7);
  const RunDigest b = RunScenario("dcqcn", 8);
  EXPECT_NE(a.fct_hash, b.fct_hash);
}

// --- fault-injection determinism (src/fault/) ---
//
// Chaos plans are drawn from Rng(seed) only and the injector only schedules
// simulator events, so (experiment seed, chaos seed) must fully determine a
// faulted run. Digested through the harness: the exact FCT sequence plus the
// injection count. Event counts are deliberately excluded where the monitor
// is involved (its sweep timer adds events but must not touch the data
// plane).
struct FaultRunDigest {
  int completed = 0;
  uint64_t fct_hash = 0;
  uint64_t events = 0;
  int64_t faults_injected = 0;
  std::string plan_text;
};

FaultRunDigest RunFaultedScenario(uint64_t chaos_seed, bool monitor) {
  ExperimentConfig config;
  config.topo = TopologyKind::kTestbed8;
  config.policy = PolicyKind::kLcmp;
  config.num_flows = 100;
  config.load = 0.3;
  config.seed = 7;
  ChaosOptions chaos;
  chaos.seed = chaos_seed;
  chaos.faults_per_sec = 150;
  chaos.window_start = Milliseconds(1);
  chaos.window = Milliseconds(40);
  chaos.max_duration = Milliseconds(15);
  config.fault_plan = GenerateChaosPlan(BuildTopology(config), chaos);
  config.monitor_invariants = monitor;
  config.monitor_strict = false;
  const ExperimentResult result = RunExperiment(config);

  FaultRunDigest d;
  d.completed = result.flows_completed;
  for (const FctRecorder::Sample& s : result.samples) {
    d.fct_hash = HashMix(d.fct_hash, static_cast<uint64_t>(s.fct));
    d.fct_hash = HashMix(d.fct_hash, s.bytes);
  }
  d.events = result.events_processed;
  d.faults_injected = result.faults_injected;
  d.plan_text = config.fault_plan.ToString();
  return d;
}

TEST(DeterminismTest, SameSeedAndFaultPlanIsBitIdentical) {
  const FaultRunDigest a = RunFaultedScenario(21, /*monitor=*/false);
  const FaultRunDigest b = RunFaultedScenario(21, /*monitor=*/false);
  EXPECT_EQ(a.plan_text, b.plan_text);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fct_hash, b.fct_hash);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_GT(a.faults_injected, 0);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

TEST(DeterminismTest, DifferentChaosSeedsDiverge) {
  const FaultRunDigest a = RunFaultedScenario(21, /*monitor=*/false);
  const FaultRunDigest b = RunFaultedScenario(22, /*monitor=*/false);
  EXPECT_NE(a.plan_text, b.plan_text) << "different chaos seeds must draw different schedules";
  EXPECT_NE(a.fct_hash, b.fct_hash);
}

TEST(DeterminismTest, InvariantMonitorDoesNotPerturbFaultedRuns) {
  const FaultRunDigest off = RunFaultedScenario(21, /*monitor=*/false);
  const FaultRunDigest on = RunFaultedScenario(21, /*monitor=*/true);
  EXPECT_EQ(off.fct_hash, on.fct_hash);
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.faults_injected, on.faults_injected);
}

TEST(DeterminismTest, ObservabilityDoesNotPerturbTheRun) {
  // The zero-overhead-when-off contract's stronger sibling: even *enabled*
  // observability (metrics + flight recorder + profiling) only reads sim
  // state and writes obs state, so event counts, forwarded-packet counts and
  // the FCT sequence must be identical to a run with everything off.
  const RunDigest off = RunScenario("dcqcn", 7, /*with_obs=*/false);
  const RunDigest on = RunScenario("dcqcn", 7, /*with_obs=*/true);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.fct_hash, on.fct_hash);
  EXPECT_EQ(off.forwarded, on.forwarded);
  EXPECT_TRUE(off == on);
  // The obs run must actually have observed something, or the guard is vacuous.
  EXPECT_GT(obs::MetricsRegistry::Instance().GetCounter("sim.port.tx_packets")->value, 0);
  EXPECT_GT(obs::FlightRecorder::Instance().total_recorded(), 0u);
}

}  // namespace
}  // namespace lcmp
