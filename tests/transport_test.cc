// Tests for the RDMA transport: completion, pacing, ACK semantics,
// Go-Back-N on loss/reorder, RTO recovery after link failure, CNP/ECN
// plumbing, and every registered congestion controller.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "routing/ecmp.h"
#include "sim/network.h"
#include "topo/builders.h"
#include "transport/cc/dcqcn.h"
#include "transport/cc/dctcp.h"
#include "transport/cc/hpcc.h"
#include "transport/cc/timely.h"
#include "transport/rdma_transport.h"

namespace lcmp {
namespace {

PolicyFactory EcmpFactory() {
  return [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
}

FlowSpec MakeFlow(FlowId id, NodeId src, NodeId dst, uint64_t bytes, TimeNs start = 0) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.key = FlowKey{src, dst, static_cast<uint32_t>(id), 4791, 17};
  f.size_bytes = bytes;
  f.start_time = start;
  return f;
}

struct Harness {
  explicit Harness(Graph g, TransportConfig tcfg = {}, NetworkConfig ncfg = {})
      : graph(std::move(g)),
        net(graph, ncfg, EcmpFactory()),
        transport(&net, tcfg, [this](const FlowRecord& r) { records.push_back(r); }) {}
  Graph graph;
  Network net;
  RdmaTransport transport;
  std::vector<FlowRecord> records;
};

TEST(TransportTest, SingleFlowCompletes) {
  const LinearTopo t = BuildLinear(Gbps(100), Microseconds(1));
  Harness h(t.graph);
  h.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, 100'000));
  h.net.sim().Run();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].spec.size_bytes, 100'000u);
  EXPECT_EQ(h.records[0].retransmitted_packets, 0u);
}

TEST(TransportTest, FctClosesOnIdealForLoneFlow) {
  const LinearTopo t = BuildLinear(Gbps(100), Microseconds(1));
  Harness h(t.graph);
  const uint64_t bytes = 1'000'000;
  h.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, bytes));
  h.net.sim().Run();
  ASSERT_EQ(h.records.size(), 1u);
  const TimeNs fct = h.records[0].complete_time - h.records[0].start_time;
  // Ideal: ~2 us propagation + 80 us serialization at 100G (plus headers).
  const TimeNs ideal = Microseconds(2) + SerializationDelay(bytes, Gbps(100));
  EXPECT_GT(fct, ideal);
  EXPECT_LT(fct, 2 * ideal);
}

TEST(TransportTest, TinyFlowIsSinglePacket) {
  const LinearTopo t = BuildLinear();
  Harness h(t.graph);
  h.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, 100));
  h.net.sim().Run();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].total_packets, 1u);
}

TEST(TransportTest, ManyConcurrentFlowsAllComplete) {
  const Graph g = BuildDumbbell(2, 4, Gbps(100), Milliseconds(1));
  Harness h(g);
  const auto src_hosts = g.HostsInDc(0);
  const auto dst_hosts = g.HostsInDc(1);
  for (FlowId i = 1; i <= 40; ++i) {
    h.transport.ScheduleFlow(MakeFlow(i, src_hosts[i % src_hosts.size()],
                                      dst_hosts[(i + 1) % dst_hosts.size()], 50'000 * i,
                                      static_cast<TimeNs>(i) * Microseconds(10)));
  }
  h.net.sim().Run();
  EXPECT_EQ(h.records.size(), 40u);
  EXPECT_EQ(h.transport.active_senders(), 0);
}

TEST(TransportTest, ScheduledFlowStartsAtRequestedTime) {
  const LinearTopo t = BuildLinear();
  Harness h(t.graph);
  h.transport.ScheduleFlow(MakeFlow(1, t.src_host, t.dst_host, 1000, Milliseconds(3)));
  h.net.sim().Run();
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].start_time, Milliseconds(3));
}

TEST(TransportTest, GoBackNRecoversFromDrops) {
  // Tiny inter-DC buffer forces drops; Go-Back-N must still complete the
  // flow, with retransmissions recorded.
  Graph g = BuildDumbbell(1, 1, Gbps(1), Milliseconds(1));
  // Shrink the single inter-DC link buffer.
  Graph g2;
  FabricOptions fo;
  fo.hosts = 1;
  const NodeId dci0 = BuildDcFabric(g2, 0, fo);
  const NodeId dci1 = BuildDcFabric(g2, 1, fo);
  g2.AddLink(dci0, dci1, Gbps(1), Milliseconds(1), /*buffer=*/20'000);
  Harness h(std::move(g2));
  const auto src = h.graph.HostsInDc(0)[0];
  const auto dst = h.graph.HostsInDc(1)[0];
  h.transport.StartFlow(MakeFlow(1, src, dst, 3'000'000));
  h.net.sim().Run(Seconds(30));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_GT(h.records[0].retransmitted_packets, 0u);
  (void)g;
}

TEST(TransportTest, RtoRecoversFromLinkBlackout) {
  // Kill the only link mid-flow, then restore it: the RTO path must resume
  // and complete the transfer.
  Graph g;
  FabricOptions fo;
  fo.hosts = 1;
  const NodeId dci0 = BuildDcFabric(g, 0, fo);
  const NodeId dci1 = BuildDcFabric(g, 1, fo);
  const int inter = g.AddLink(dci0, dci1, Gbps(10), Milliseconds(1));
  Harness h(std::move(g));
  const auto src = h.graph.HostsInDc(0)[0];
  const auto dst = h.graph.HostsInDc(1)[0];
  h.transport.StartFlow(MakeFlow(1, src, dst, 2'000'000));
  h.net.sim().Schedule(Microseconds(300), [&] { h.net.SetLinkUp(inter, false); });
  h.net.sim().Schedule(Milliseconds(20), [&] { h.net.SetLinkUp(inter, true); });
  h.net.sim().Run(Seconds(30));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_GT(h.transport.timeouts(), 0);
}

TEST(TransportTest, EcnMarksGenerateCnps) {
  // Saturate a slow link with two big flows: ECN marks must flow back as
  // CNPs and DCQCN must cut the rate.
  const Graph g = BuildDumbbell(1, 2, Gbps(100), Milliseconds(1));
  // ECN is on by default in NetworkConfig; inter-DC link is 1 Gbps? No:
  // dumbbell passes rate for inter-DC links; keep it slow relative to hosts.
  Graph g2 = BuildDumbbell(1, 2, Gbps(10), Milliseconds(1));
  Harness h(std::move(g2));
  const auto src_hosts = h.graph.HostsInDc(0);
  const auto dst_hosts = h.graph.HostsInDc(1);
  h.transport.StartFlow(MakeFlow(1, src_hosts[0], dst_hosts[0], 4'000'000));
  h.transport.StartFlow(MakeFlow(2, src_hosts[1], dst_hosts[1], 4'000'000));
  h.net.sim().Run(Seconds(10));
  EXPECT_EQ(h.records.size(), 2u);
  EXPECT_GT(h.transport.cnps_received(), 0);
  (void)g;
}

TEST(TransportTest, EmulationModeAddsLatency) {
  const LinearTopo t = BuildLinear();
  TransportConfig plain;
  TransportConfig emu;
  emu.emulation_mode = true;
  Harness fast(t.graph, plain);
  Harness slow(t.graph, emu);
  fast.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, 100'000));
  slow.transport.StartFlow(MakeFlow(1, t.src_host, t.dst_host, 100'000));
  fast.net.sim().Run();
  slow.net.sim().Run();
  ASSERT_EQ(fast.records.size(), 1u);
  ASSERT_EQ(slow.records.size(), 1u);
  const TimeNs fct_fast = fast.records[0].complete_time - fast.records[0].start_time;
  const TimeNs fct_slow = slow.records[0].complete_time - slow.records[0].start_time;
  EXPECT_GT(fct_slow, fct_fast);
}

class AllCcTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllCcTest, CompletesUnderEveryCc) {
  const Graph g = BuildDumbbell(2, 2, Gbps(10), Milliseconds(1));
  NetworkConfig ncfg;
  ncfg.enable_int = CcRegistry::Instance().NeedsInt(GetParam());
  TransportConfig tcfg;
  tcfg.cc.inter = GetParam();
  tcfg.cc.intra = GetParam();
  Harness h(g, tcfg, ncfg);
  const auto src_hosts = g.HostsInDc(0);
  const auto dst_hosts = g.HostsInDc(1);
  for (FlowId i = 1; i <= 8; ++i) {
    h.transport.ScheduleFlow(MakeFlow(i, src_hosts[i % 2], dst_hosts[(i + 1) % 2],
                                      500'000, static_cast<TimeNs>(i) * Microseconds(50)));
  }
  h.net.sim().Run(Seconds(20));
  EXPECT_EQ(h.records.size(), 8u) << "cc=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllCcs, AllCcTest,
                         ::testing::Values("dcqcn", "hpcc", "timely", "dctcp", "lcp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// --- Unit tests of the CC modules themselves ---

TEST(DcqcnUnitTest, CnpCutsRateAndRecovers) {
  Dcqcn cc;
  cc.Init(Gbps(100), Milliseconds(1), 0);
  EXPECT_EQ(cc.rate_bps(), Gbps(100));
  cc.OnCnp(Microseconds(10));
  const int64_t after_cut = cc.rate_bps();
  EXPECT_LT(after_cut, Gbps(100));
  // Rate recovers over time through FR/AI on ACK clocking.
  Packet ack;
  cc.OnAck(ack, nullptr, Milliseconds(1), Milliseconds(50));
  EXPECT_GT(cc.rate_bps(), after_cut);
}

TEST(DcqcnUnitTest, RepeatedCnpsCompound) {
  Dcqcn cc;
  cc.Init(Gbps(100), Milliseconds(1), 0);
  cc.OnCnp(Microseconds(10));
  const int64_t one = cc.rate_bps();
  cc.OnCnp(Microseconds(20));
  EXPECT_LT(cc.rate_bps(), one);
}

TEST(DcqcnUnitTest, AlphaDecaysWithoutCnps) {
  Dcqcn cc;
  cc.Init(Gbps(100), Milliseconds(1), 0);
  cc.OnCnp(Microseconds(10));
  const double alpha_after_cnp = cc.alpha();
  Packet ack;
  cc.OnAck(ack, nullptr, Milliseconds(1), Milliseconds(100));
  EXPECT_LT(cc.alpha(), alpha_after_cnp);
}

TEST(DctcpUnitTest, MarkedWindowCutsRate) {
  Dctcp cc;
  cc.Init(Gbps(100), Microseconds(100), 0);
  Packet marked;
  marked.ecn_echo = true;
  // A full RTT window of marked ACKs.
  for (int i = 0; i < 50; ++i) {
    cc.OnAck(marked, nullptr, Microseconds(100), Microseconds(2 * i));
  }
  cc.OnAck(marked, nullptr, Microseconds(100), Microseconds(150));
  EXPECT_LT(cc.rate_bps(), Gbps(100));
  EXPECT_GT(cc.alpha(), 0.0);
}

TEST(DctcpUnitTest, CleanWindowGrowsRate) {
  Dctcp cc;
  cc.Init(Gbps(100), Microseconds(100), 0);
  Packet marked;
  marked.ecn_echo = true;
  for (int i = 0; i < 50; ++i) {
    cc.OnAck(marked, nullptr, Microseconds(100), Microseconds(2 * i));
  }
  cc.OnAck(marked, nullptr, Microseconds(100), Microseconds(150));
  const int64_t low = cc.rate_bps();
  Packet clean;
  for (int i = 0; i < 200; ++i) {
    cc.OnAck(clean, nullptr, Microseconds(100), Microseconds(200 + 2 * i));
  }
  EXPECT_GT(cc.rate_bps(), low);
}

TEST(TimelyUnitTest, RisingRttCutsRate) {
  Timely cc;
  cc.Init(Gbps(100), Milliseconds(1), 0);
  Packet ack;
  // Steeply rising RTT well above t_high.
  for (int i = 0; i < 20; ++i) {
    cc.OnAck(ack, nullptr, Milliseconds(1) + Microseconds(100) * i + Microseconds(600), 0);
  }
  EXPECT_LT(cc.rate_bps(), Gbps(100));
}

TEST(TimelyUnitTest, LowRttGrowsRateBack) {
  Timely cc;
  cc.Init(Gbps(100), Milliseconds(1), 0);
  Packet ack;
  for (int i = 0; i < 20; ++i) {
    cc.OnAck(ack, nullptr, Milliseconds(2), 0);
  }
  const int64_t low = cc.rate_bps();
  ASSERT_LT(low, Gbps(100));
  for (int i = 0; i < 50; ++i) {
    cc.OnAck(ack, nullptr, Milliseconds(1) + Microseconds(10), 0);
  }
  EXPECT_GT(cc.rate_bps(), low);
}

TEST(HpccUnitTest, HighUtilizationCutsRate) {
  Hpcc cc;
  cc.Init(Gbps(100), Milliseconds(1), 0);
  Packet ack;
  IntStack stack;
  stack.hops = 1;
  stack.rec[0].rate_bps = Gbps(100);
  // Queue of a full BDP -> U >= 1 > eta.
  stack.rec[0].qlen_bytes = Gbps(100) / 8 / 1000;  // 1 ms of line rate
  stack.rec[0].tx_bytes = 1'000'000;
  stack.rec[0].ts = Microseconds(100);
  cc.OnAck(ack, &stack, Milliseconds(1), Microseconds(100));
  EXPECT_LT(cc.rate_bps(), Gbps(100));
}

TEST(HpccUnitTest, LowUtilizationProbesUp) {
  Hpcc cc;
  cc.Init(Gbps(100), Milliseconds(1), 0);
  // Drop the rate first.
  cc.OnTimeout(0);
  const int64_t low = cc.rate_bps();
  Packet ack;
  IntStack stack;
  stack.hops = 1;
  stack.rec[0].rate_bps = Gbps(100);
  stack.rec[0].qlen_bytes = 0;
  stack.rec[0].ts = Microseconds(100);
  cc.OnAck(ack, &stack, Milliseconds(1), Microseconds(100));
  EXPECT_GT(cc.rate_bps(), low);
}

TEST(CcRegistryTest, TokensFactoriesAndIntFlag) {
  CcRegistry& reg = CcRegistry::Instance();
  for (const char* token : {"dcqcn", "hpcc", "timely", "dctcp", "lcp"}) {
    ASSERT_TRUE(reg.Known(token)) << token;
    EXPECT_STREQ(reg.Create(token)->name(), token);
  }
  EXPECT_FALSE(reg.Known("cubic"));
  EXPECT_TRUE(reg.NeedsInt("hpcc"));
  EXPECT_FALSE(reg.NeedsInt("dcqcn"));
  EXPECT_FALSE(reg.NeedsInt("lcp"));
  EXPECT_FALSE(CcNeedsInt(SegmentCcSpec{"lcp", "dcqcn"}));
  EXPECT_TRUE(CcNeedsInt(SegmentCcSpec{"hpcc", "dcqcn"}));
  EXPECT_TRUE(CcNeedsInt(SegmentCcSpec{"dcqcn", "hpcc"}));
  std::string token;
  std::string error;
  EXPECT_TRUE(ParseCcToken("lcp", &token, &error));
  EXPECT_EQ(token, "lcp");
  EXPECT_FALSE(ParseCcToken("reno", &token, &error));
  EXPECT_NE(error.find("lcp"), std::string::npos) << error;
}

}  // namespace
}  // namespace lcmp
