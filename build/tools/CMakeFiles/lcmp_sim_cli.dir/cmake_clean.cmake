file(REMOVE_RECURSE
  "CMakeFiles/lcmp_sim_cli.dir/lcmp_sim.cc.o"
  "CMakeFiles/lcmp_sim_cli.dir/lcmp_sim.cc.o.d"
  "lcmp_sim"
  "lcmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
