# Empty compiler generated dependencies file for lcmp_sim_cli.
# This may be replaced when dependencies are built.
