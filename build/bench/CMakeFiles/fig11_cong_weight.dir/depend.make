# Empty dependencies file for fig11_cong_weight.
# This may be replaced when dependencies are built.
