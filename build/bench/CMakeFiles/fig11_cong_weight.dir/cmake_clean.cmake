file(REMOVE_RECURSE
  "CMakeFiles/fig11_cong_weight.dir/fig11_cong_weight.cc.o"
  "CMakeFiles/fig11_cong_weight.dir/fig11_cong_weight.cc.o.d"
  "fig11_cong_weight"
  "fig11_cong_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cong_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
