# Empty dependencies file for fig11_global_weight.
# This may be replaced when dependencies are built.
