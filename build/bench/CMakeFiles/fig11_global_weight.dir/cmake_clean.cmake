file(REMOVE_RECURSE
  "CMakeFiles/fig11_global_weight.dir/fig11_global_weight.cc.o"
  "CMakeFiles/fig11_global_weight.dir/fig11_global_weight.cc.o.d"
  "fig11_global_weight"
  "fig11_global_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_global_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
