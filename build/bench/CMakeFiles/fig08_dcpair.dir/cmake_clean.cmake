file(REMOVE_RECURSE
  "CMakeFiles/fig08_dcpair.dir/fig08_dcpair.cc.o"
  "CMakeFiles/fig08_dcpair.dir/fig08_dcpair.cc.o.d"
  "fig08_dcpair"
  "fig08_dcpair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_dcpair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
