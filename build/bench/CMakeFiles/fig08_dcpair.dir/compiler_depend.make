# Empty compiler generated dependencies file for fig08_dcpair.
# This may be replaced when dependencies are built.
