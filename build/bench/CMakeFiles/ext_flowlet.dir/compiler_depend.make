# Empty compiler generated dependencies file for ext_flowlet.
# This may be replaced when dependencies are built.
