file(REMOVE_RECURSE
  "CMakeFiles/ext_flowlet.dir/ext_flowlet.cc.o"
  "CMakeFiles/ext_flowlet.dir/ext_flowlet.cc.o.d"
  "ext_flowlet"
  "ext_flowlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_flowlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
