file(REMOVE_RECURSE
  "CMakeFiles/ext_herd.dir/ext_herd.cc.o"
  "CMakeFiles/ext_herd.dir/ext_herd.cc.o.d"
  "ext_herd"
  "ext_herd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_herd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
