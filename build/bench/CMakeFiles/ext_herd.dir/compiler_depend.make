# Empty compiler generated dependencies file for ext_herd.
# This may be replaced when dependencies are built.
