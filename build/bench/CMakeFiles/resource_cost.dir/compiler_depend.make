# Empty compiler generated dependencies file for resource_cost.
# This may be replaced when dependencies are built.
