file(REMOVE_RECURSE
  "CMakeFiles/resource_cost.dir/resource_cost.cc.o"
  "CMakeFiles/resource_cost.dir/resource_cost.cc.o.d"
  "resource_cost"
  "resource_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
