file(REMOVE_RECURSE
  "CMakeFiles/ext_pfc.dir/ext_pfc.cc.o"
  "CMakeFiles/ext_pfc.dir/ext_pfc.cc.o.d"
  "ext_pfc"
  "ext_pfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
