# Empty dependencies file for ext_pfc.
# This may be replaced when dependencies are built.
