# Empty compiler generated dependencies file for fig06_fidelity.
# This may be replaced when dependencies are built.
