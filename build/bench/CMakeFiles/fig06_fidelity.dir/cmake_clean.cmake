file(REMOVE_RECURSE
  "CMakeFiles/fig06_fidelity.dir/fig06_fidelity.cc.o"
  "CMakeFiles/fig06_fidelity.dir/fig06_fidelity.cc.o.d"
  "fig06_fidelity"
  "fig06_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
