file(REMOVE_RECURSE
  "CMakeFiles/fig10_cc_orthogonality.dir/fig10_cc_orthogonality.cc.o"
  "CMakeFiles/fig10_cc_orthogonality.dir/fig10_cc_orthogonality.cc.o.d"
  "fig10_cc_orthogonality"
  "fig10_cc_orthogonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cc_orthogonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
