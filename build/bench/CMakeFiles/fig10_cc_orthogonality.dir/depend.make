# Empty dependencies file for fig10_cc_orthogonality.
# This may be replaced when dependencies are built.
