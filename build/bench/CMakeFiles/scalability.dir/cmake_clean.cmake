file(REMOVE_RECURSE
  "CMakeFiles/scalability.dir/scalability.cc.o"
  "CMakeFiles/scalability.dir/scalability.cc.o.d"
  "scalability"
  "scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
