# Empty compiler generated dependencies file for fig07_largescale.
# This may be replaced when dependencies are built.
