file(REMOVE_RECURSE
  "CMakeFiles/fig07_largescale.dir/fig07_largescale.cc.o"
  "CMakeFiles/fig07_largescale.dir/fig07_largescale.cc.o.d"
  "fig07_largescale"
  "fig07_largescale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_largescale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
