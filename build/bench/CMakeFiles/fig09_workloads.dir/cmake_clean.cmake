file(REMOVE_RECURSE
  "CMakeFiles/fig09_workloads.dir/fig09_workloads.cc.o"
  "CMakeFiles/fig09_workloads.dir/fig09_workloads.cc.o.d"
  "fig09_workloads"
  "fig09_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
