# Empty dependencies file for fig09_workloads.
# This may be replaced when dependencies are built.
