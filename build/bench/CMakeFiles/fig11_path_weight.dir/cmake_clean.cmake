file(REMOVE_RECURSE
  "CMakeFiles/fig11_path_weight.dir/fig11_path_weight.cc.o"
  "CMakeFiles/fig11_path_weight.dir/fig11_path_weight.cc.o.d"
  "fig11_path_weight"
  "fig11_path_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_path_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
