# Empty compiler generated dependencies file for fig11_path_weight.
# This may be replaced when dependencies are built.
