file(REMOVE_RECURSE
  "CMakeFiles/fig05_testbed.dir/fig05_testbed.cc.o"
  "CMakeFiles/fig05_testbed.dir/fig05_testbed.cc.o.d"
  "fig05_testbed"
  "fig05_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
