# Empty dependencies file for fig05_testbed.
# This may be replaced when dependencies are built.
