# Empty dependencies file for events_hotpath.
# This may be replaced when dependencies are built.
