file(REMOVE_RECURSE
  "CMakeFiles/events_hotpath.dir/events_hotpath.cc.o"
  "CMakeFiles/events_hotpath.dir/events_hotpath.cc.o.d"
  "events_hotpath"
  "events_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/events_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
