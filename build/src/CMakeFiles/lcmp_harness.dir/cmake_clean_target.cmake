file(REMOVE_RECURSE
  "liblcmp_harness.a"
)
