# Empty compiler generated dependencies file for lcmp_harness.
# This may be replaced when dependencies are built.
