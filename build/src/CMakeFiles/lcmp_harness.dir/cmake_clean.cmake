file(REMOVE_RECURSE
  "CMakeFiles/lcmp_harness.dir/harness/csv_writer.cc.o"
  "CMakeFiles/lcmp_harness.dir/harness/csv_writer.cc.o.d"
  "CMakeFiles/lcmp_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/lcmp_harness.dir/harness/experiment.cc.o.d"
  "CMakeFiles/lcmp_harness.dir/harness/flags.cc.o"
  "CMakeFiles/lcmp_harness.dir/harness/flags.cc.o.d"
  "CMakeFiles/lcmp_harness.dir/harness/scenario.cc.o"
  "CMakeFiles/lcmp_harness.dir/harness/scenario.cc.o.d"
  "CMakeFiles/lcmp_harness.dir/harness/table.cc.o"
  "CMakeFiles/lcmp_harness.dir/harness/table.cc.o.d"
  "liblcmp_harness.a"
  "liblcmp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
