
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap_tables.cc" "src/CMakeFiles/lcmp_core.dir/core/bootstrap_tables.cc.o" "gcc" "src/CMakeFiles/lcmp_core.dir/core/bootstrap_tables.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/lcmp_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/lcmp_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/congestion_estimator.cc" "src/CMakeFiles/lcmp_core.dir/core/congestion_estimator.cc.o" "gcc" "src/CMakeFiles/lcmp_core.dir/core/congestion_estimator.cc.o.d"
  "/root/repo/src/core/control_plane.cc" "src/CMakeFiles/lcmp_core.dir/core/control_plane.cc.o" "gcc" "src/CMakeFiles/lcmp_core.dir/core/control_plane.cc.o.d"
  "/root/repo/src/core/flow_cache.cc" "src/CMakeFiles/lcmp_core.dir/core/flow_cache.cc.o" "gcc" "src/CMakeFiles/lcmp_core.dir/core/flow_cache.cc.o.d"
  "/root/repo/src/core/lcmp_router.cc" "src/CMakeFiles/lcmp_core.dir/core/lcmp_router.cc.o" "gcc" "src/CMakeFiles/lcmp_core.dir/core/lcmp_router.cc.o.d"
  "/root/repo/src/core/path_quality.cc" "src/CMakeFiles/lcmp_core.dir/core/path_quality.cc.o" "gcc" "src/CMakeFiles/lcmp_core.dir/core/path_quality.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/CMakeFiles/lcmp_core.dir/core/selector.cc.o" "gcc" "src/CMakeFiles/lcmp_core.dir/core/selector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcmp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcmp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
