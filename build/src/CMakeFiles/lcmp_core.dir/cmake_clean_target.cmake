file(REMOVE_RECURSE
  "liblcmp_core.a"
)
