# Empty compiler generated dependencies file for lcmp_core.
# This may be replaced when dependencies are built.
