file(REMOVE_RECURSE
  "CMakeFiles/lcmp_core.dir/core/bootstrap_tables.cc.o"
  "CMakeFiles/lcmp_core.dir/core/bootstrap_tables.cc.o.d"
  "CMakeFiles/lcmp_core.dir/core/config.cc.o"
  "CMakeFiles/lcmp_core.dir/core/config.cc.o.d"
  "CMakeFiles/lcmp_core.dir/core/congestion_estimator.cc.o"
  "CMakeFiles/lcmp_core.dir/core/congestion_estimator.cc.o.d"
  "CMakeFiles/lcmp_core.dir/core/control_plane.cc.o"
  "CMakeFiles/lcmp_core.dir/core/control_plane.cc.o.d"
  "CMakeFiles/lcmp_core.dir/core/flow_cache.cc.o"
  "CMakeFiles/lcmp_core.dir/core/flow_cache.cc.o.d"
  "CMakeFiles/lcmp_core.dir/core/lcmp_router.cc.o"
  "CMakeFiles/lcmp_core.dir/core/lcmp_router.cc.o.d"
  "CMakeFiles/lcmp_core.dir/core/path_quality.cc.o"
  "CMakeFiles/lcmp_core.dir/core/path_quality.cc.o.d"
  "CMakeFiles/lcmp_core.dir/core/selector.cc.o"
  "CMakeFiles/lcmp_core.dir/core/selector.cc.o.d"
  "liblcmp_core.a"
  "liblcmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
