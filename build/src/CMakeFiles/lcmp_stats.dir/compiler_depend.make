# Empty compiler generated dependencies file for lcmp_stats.
# This may be replaced when dependencies are built.
