
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/fct_recorder.cc" "src/CMakeFiles/lcmp_stats.dir/stats/fct_recorder.cc.o" "gcc" "src/CMakeFiles/lcmp_stats.dir/stats/fct_recorder.cc.o.d"
  "/root/repo/src/stats/link_utilization.cc" "src/CMakeFiles/lcmp_stats.dir/stats/link_utilization.cc.o" "gcc" "src/CMakeFiles/lcmp_stats.dir/stats/link_utilization.cc.o.d"
  "/root/repo/src/stats/pearson.cc" "src/CMakeFiles/lcmp_stats.dir/stats/pearson.cc.o" "gcc" "src/CMakeFiles/lcmp_stats.dir/stats/pearson.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
