file(REMOVE_RECURSE
  "liblcmp_stats.a"
)
