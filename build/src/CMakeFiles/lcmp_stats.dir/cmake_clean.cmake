file(REMOVE_RECURSE
  "CMakeFiles/lcmp_stats.dir/stats/fct_recorder.cc.o"
  "CMakeFiles/lcmp_stats.dir/stats/fct_recorder.cc.o.d"
  "CMakeFiles/lcmp_stats.dir/stats/link_utilization.cc.o"
  "CMakeFiles/lcmp_stats.dir/stats/link_utilization.cc.o.d"
  "CMakeFiles/lcmp_stats.dir/stats/pearson.cc.o"
  "CMakeFiles/lcmp_stats.dir/stats/pearson.cc.o.d"
  "liblcmp_stats.a"
  "liblcmp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
