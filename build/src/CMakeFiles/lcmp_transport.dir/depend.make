# Empty dependencies file for lcmp_transport.
# This may be replaced when dependencies are built.
