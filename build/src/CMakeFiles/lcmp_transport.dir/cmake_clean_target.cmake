file(REMOVE_RECURSE
  "liblcmp_transport.a"
)
