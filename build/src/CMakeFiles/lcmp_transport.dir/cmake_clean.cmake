file(REMOVE_RECURSE
  "CMakeFiles/lcmp_transport.dir/transport/cc/congestion_control.cc.o"
  "CMakeFiles/lcmp_transport.dir/transport/cc/congestion_control.cc.o.d"
  "CMakeFiles/lcmp_transport.dir/transport/cc/dcqcn.cc.o"
  "CMakeFiles/lcmp_transport.dir/transport/cc/dcqcn.cc.o.d"
  "CMakeFiles/lcmp_transport.dir/transport/cc/dctcp.cc.o"
  "CMakeFiles/lcmp_transport.dir/transport/cc/dctcp.cc.o.d"
  "CMakeFiles/lcmp_transport.dir/transport/cc/hpcc.cc.o"
  "CMakeFiles/lcmp_transport.dir/transport/cc/hpcc.cc.o.d"
  "CMakeFiles/lcmp_transport.dir/transport/cc/timely.cc.o"
  "CMakeFiles/lcmp_transport.dir/transport/cc/timely.cc.o.d"
  "CMakeFiles/lcmp_transport.dir/transport/rdma_transport.cc.o"
  "CMakeFiles/lcmp_transport.dir/transport/rdma_transport.cc.o.d"
  "liblcmp_transport.a"
  "liblcmp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
