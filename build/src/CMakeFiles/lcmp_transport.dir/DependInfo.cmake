
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/cc/congestion_control.cc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/congestion_control.cc.o" "gcc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/congestion_control.cc.o.d"
  "/root/repo/src/transport/cc/dcqcn.cc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/dcqcn.cc.o" "gcc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/dcqcn.cc.o.d"
  "/root/repo/src/transport/cc/dctcp.cc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/dctcp.cc.o" "gcc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/dctcp.cc.o.d"
  "/root/repo/src/transport/cc/hpcc.cc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/hpcc.cc.o" "gcc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/hpcc.cc.o.d"
  "/root/repo/src/transport/cc/timely.cc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/timely.cc.o" "gcc" "src/CMakeFiles/lcmp_transport.dir/transport/cc/timely.cc.o.d"
  "/root/repo/src/transport/rdma_transport.cc" "src/CMakeFiles/lcmp_transport.dir/transport/rdma_transport.cc.o" "gcc" "src/CMakeFiles/lcmp_transport.dir/transport/rdma_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcmp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
