
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/ecmp.cc" "src/CMakeFiles/lcmp_routing.dir/routing/ecmp.cc.o" "gcc" "src/CMakeFiles/lcmp_routing.dir/routing/ecmp.cc.o.d"
  "/root/repo/src/routing/policy.cc" "src/CMakeFiles/lcmp_routing.dir/routing/policy.cc.o" "gcc" "src/CMakeFiles/lcmp_routing.dir/routing/policy.cc.o.d"
  "/root/repo/src/routing/redte.cc" "src/CMakeFiles/lcmp_routing.dir/routing/redte.cc.o" "gcc" "src/CMakeFiles/lcmp_routing.dir/routing/redte.cc.o.d"
  "/root/repo/src/routing/ucmp.cc" "src/CMakeFiles/lcmp_routing.dir/routing/ucmp.cc.o" "gcc" "src/CMakeFiles/lcmp_routing.dir/routing/ucmp.cc.o.d"
  "/root/repo/src/routing/wcmp.cc" "src/CMakeFiles/lcmp_routing.dir/routing/wcmp.cc.o" "gcc" "src/CMakeFiles/lcmp_routing.dir/routing/wcmp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcmp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
