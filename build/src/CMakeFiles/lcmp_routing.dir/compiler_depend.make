# Empty compiler generated dependencies file for lcmp_routing.
# This may be replaced when dependencies are built.
