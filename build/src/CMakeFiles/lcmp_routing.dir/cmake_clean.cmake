file(REMOVE_RECURSE
  "CMakeFiles/lcmp_routing.dir/routing/ecmp.cc.o"
  "CMakeFiles/lcmp_routing.dir/routing/ecmp.cc.o.d"
  "CMakeFiles/lcmp_routing.dir/routing/policy.cc.o"
  "CMakeFiles/lcmp_routing.dir/routing/policy.cc.o.d"
  "CMakeFiles/lcmp_routing.dir/routing/redte.cc.o"
  "CMakeFiles/lcmp_routing.dir/routing/redte.cc.o.d"
  "CMakeFiles/lcmp_routing.dir/routing/ucmp.cc.o"
  "CMakeFiles/lcmp_routing.dir/routing/ucmp.cc.o.d"
  "CMakeFiles/lcmp_routing.dir/routing/wcmp.cc.o"
  "CMakeFiles/lcmp_routing.dir/routing/wcmp.cc.o.d"
  "liblcmp_routing.a"
  "liblcmp_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
