file(REMOVE_RECURSE
  "liblcmp_routing.a"
)
