file(REMOVE_RECURSE
  "liblcmp_workload.a"
)
