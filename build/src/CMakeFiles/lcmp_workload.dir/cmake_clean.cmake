file(REMOVE_RECURSE
  "CMakeFiles/lcmp_workload.dir/workload/flow_cdf.cc.o"
  "CMakeFiles/lcmp_workload.dir/workload/flow_cdf.cc.o.d"
  "CMakeFiles/lcmp_workload.dir/workload/traffic_gen.cc.o"
  "CMakeFiles/lcmp_workload.dir/workload/traffic_gen.cc.o.d"
  "liblcmp_workload.a"
  "liblcmp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
