# Empty dependencies file for lcmp_workload.
# This may be replaced when dependencies are built.
