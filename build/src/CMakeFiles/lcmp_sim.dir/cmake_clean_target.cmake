file(REMOVE_RECURSE
  "liblcmp_sim.a"
)
