file(REMOVE_RECURSE
  "CMakeFiles/lcmp_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/lcmp_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/lcmp_sim.dir/sim/network.cc.o"
  "CMakeFiles/lcmp_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/lcmp_sim.dir/sim/node.cc.o"
  "CMakeFiles/lcmp_sim.dir/sim/node.cc.o.d"
  "CMakeFiles/lcmp_sim.dir/sim/pfc.cc.o"
  "CMakeFiles/lcmp_sim.dir/sim/pfc.cc.o.d"
  "CMakeFiles/lcmp_sim.dir/sim/port.cc.o"
  "CMakeFiles/lcmp_sim.dir/sim/port.cc.o.d"
  "CMakeFiles/lcmp_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/lcmp_sim.dir/sim/simulator.cc.o.d"
  "liblcmp_sim.a"
  "liblcmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
