
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/lcmp_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/lcmp_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/lcmp_sim.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/lcmp_sim.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/node.cc" "src/CMakeFiles/lcmp_sim.dir/sim/node.cc.o" "gcc" "src/CMakeFiles/lcmp_sim.dir/sim/node.cc.o.d"
  "/root/repo/src/sim/pfc.cc" "src/CMakeFiles/lcmp_sim.dir/sim/pfc.cc.o" "gcc" "src/CMakeFiles/lcmp_sim.dir/sim/pfc.cc.o.d"
  "/root/repo/src/sim/port.cc" "src/CMakeFiles/lcmp_sim.dir/sim/port.cc.o" "gcc" "src/CMakeFiles/lcmp_sim.dir/sim/port.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/lcmp_sim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/lcmp_sim.dir/sim/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcmp_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
