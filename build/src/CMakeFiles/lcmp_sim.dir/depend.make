# Empty dependencies file for lcmp_sim.
# This may be replaced when dependencies are built.
