file(REMOVE_RECURSE
  "CMakeFiles/lcmp_topo.dir/topo/builders.cc.o"
  "CMakeFiles/lcmp_topo.dir/topo/builders.cc.o.d"
  "CMakeFiles/lcmp_topo.dir/topo/candidate_paths.cc.o"
  "CMakeFiles/lcmp_topo.dir/topo/candidate_paths.cc.o.d"
  "CMakeFiles/lcmp_topo.dir/topo/graph.cc.o"
  "CMakeFiles/lcmp_topo.dir/topo/graph.cc.o.d"
  "liblcmp_topo.a"
  "liblcmp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
