file(REMOVE_RECURSE
  "liblcmp_topo.a"
)
