# Empty compiler generated dependencies file for lcmp_topo.
# This may be replaced when dependencies are built.
