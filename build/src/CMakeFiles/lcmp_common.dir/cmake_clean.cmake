file(REMOVE_RECURSE
  "CMakeFiles/lcmp_common.dir/common/hashing.cc.o"
  "CMakeFiles/lcmp_common.dir/common/hashing.cc.o.d"
  "CMakeFiles/lcmp_common.dir/common/histogram.cc.o"
  "CMakeFiles/lcmp_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/lcmp_common.dir/common/logging.cc.o"
  "CMakeFiles/lcmp_common.dir/common/logging.cc.o.d"
  "CMakeFiles/lcmp_common.dir/common/rng.cc.o"
  "CMakeFiles/lcmp_common.dir/common/rng.cc.o.d"
  "liblcmp_common.a"
  "liblcmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
