file(REMOVE_RECURSE
  "liblcmp_common.a"
)
