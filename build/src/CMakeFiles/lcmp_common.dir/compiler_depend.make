# Empty compiler generated dependencies file for lcmp_common.
# This may be replaced when dependencies are built.
