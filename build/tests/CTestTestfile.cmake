# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/port_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/path_quality_test[1]_include.cmake")
include("/root/repo/build/tests/congestion_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/selector_test[1]_include.cmake")
include("/root/repo/build/tests/flow_cache_test[1]_include.cmake")
include("/root/repo/build/tests/lcmp_router_test[1]_include.cmake")
include("/root/repo/build/tests/routing_policies_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/control_plane_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/transport_ooo_test[1]_include.cmake")
include("/root/repo/build/tests/pfc_test[1]_include.cmake")
include("/root/repo/build/tests/flags_csv_test[1]_include.cmake")
include("/root/repo/build/tests/random_wan_test[1]_include.cmake")
include("/root/repo/build/tests/sim_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/transport_edge_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_stress_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
