file(REMOVE_RECURSE
  "CMakeFiles/transport_ooo_test.dir/transport_ooo_test.cc.o"
  "CMakeFiles/transport_ooo_test.dir/transport_ooo_test.cc.o.d"
  "transport_ooo_test"
  "transport_ooo_test.pdb"
  "transport_ooo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_ooo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
