file(REMOVE_RECURSE
  "CMakeFiles/lcmp_router_test.dir/lcmp_router_test.cc.o"
  "CMakeFiles/lcmp_router_test.dir/lcmp_router_test.cc.o.d"
  "lcmp_router_test"
  "lcmp_router_test.pdb"
  "lcmp_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmp_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
