# Empty compiler generated dependencies file for lcmp_router_test.
# This may be replaced when dependencies are built.
