# Empty dependencies file for routing_policies_test.
# This may be replaced when dependencies are built.
