file(REMOVE_RECURSE
  "CMakeFiles/routing_policies_test.dir/routing_policies_test.cc.o"
  "CMakeFiles/routing_policies_test.dir/routing_policies_test.cc.o.d"
  "routing_policies_test"
  "routing_policies_test.pdb"
  "routing_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
