# Empty dependencies file for flow_cache_test.
# This may be replaced when dependencies are built.
