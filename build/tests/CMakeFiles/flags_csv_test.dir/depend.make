# Empty dependencies file for flags_csv_test.
# This may be replaced when dependencies are built.
