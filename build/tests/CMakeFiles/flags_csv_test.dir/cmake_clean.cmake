file(REMOVE_RECURSE
  "CMakeFiles/flags_csv_test.dir/flags_csv_test.cc.o"
  "CMakeFiles/flags_csv_test.dir/flags_csv_test.cc.o.d"
  "flags_csv_test"
  "flags_csv_test.pdb"
  "flags_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flags_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
