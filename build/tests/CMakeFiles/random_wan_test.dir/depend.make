# Empty dependencies file for random_wan_test.
# This may be replaced when dependencies are built.
