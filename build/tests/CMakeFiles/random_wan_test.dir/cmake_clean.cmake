file(REMOVE_RECURSE
  "CMakeFiles/random_wan_test.dir/random_wan_test.cc.o"
  "CMakeFiles/random_wan_test.dir/random_wan_test.cc.o.d"
  "random_wan_test"
  "random_wan_test.pdb"
  "random_wan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_wan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
