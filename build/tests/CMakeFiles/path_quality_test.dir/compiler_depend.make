# Empty compiler generated dependencies file for path_quality_test.
# This may be replaced when dependencies are built.
