file(REMOVE_RECURSE
  "CMakeFiles/path_quality_test.dir/path_quality_test.cc.o"
  "CMakeFiles/path_quality_test.dir/path_quality_test.cc.o.d"
  "path_quality_test"
  "path_quality_test.pdb"
  "path_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
