file(REMOVE_RECURSE
  "CMakeFiles/pfc_test.dir/pfc_test.cc.o"
  "CMakeFiles/pfc_test.dir/pfc_test.cc.o.d"
  "pfc_test"
  "pfc_test.pdb"
  "pfc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
