file(REMOVE_RECURSE
  "CMakeFiles/congestion_estimator_test.dir/congestion_estimator_test.cc.o"
  "CMakeFiles/congestion_estimator_test.dir/congestion_estimator_test.cc.o.d"
  "congestion_estimator_test"
  "congestion_estimator_test.pdb"
  "congestion_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
