# Empty compiler generated dependencies file for congestion_estimator_test.
# This may be replaced when dependencies are built.
