// Figure 11d (congestion-cost weight sensitivity): (w_ql, w_tl, w_dp) in
// {(2,1,1), (1,2,1), (1,1,2)} inside C_cong, WebSearch at 30% load, 8-DC.
//
// Expected shape (paper Sec. 7.4): similar medians for small/medium flows;
// the queue-focused (2,1,1) allocation is the most stable; trend-heavy and
// duration-heavy allocations inflate the largest flows' p50/p99.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 11d - congestion weights (w_ql, w_tl, w_dp)",
         "queue-focused (2,1,1) most stable; others inflate elephant tails");

  ExperimentConfig base = Testbed8Config();
  base.policy = PolicyKind::kLcmp;
  SweepSpec spec(base);
  spec.Variants({{"lcmp.w_ql=2 lcmp.w_tl=1 lcmp.w_dp=1", "(2,1,1)"},
                 {"lcmp.w_ql=1 lcmp.w_tl=2 lcmp.w_dp=1", "(1,2,1)"},
                 {"lcmp.w_ql=1 lcmp.w_tl=1 lcmp.w_dp=2", "(1,1,2)"}});
  const std::vector<NamedResult> results = ToNamedResults(RunSpec(spec));
  PrintBucketTable("Fig. 11d - per-size p50/p99 slowdown", results);

  TablePrinter overall({"(w_ql,w_tl,w_dp)", "p50", "p99"});
  for (const NamedResult& nr : results) {
    overall.AddRow({nr.name, Fmt(nr.result.overall.p50), Fmt(nr.result.overall.p99)});
  }
  std::printf("\n== Fig. 11d - overall ==\n");
  overall.Print();
  return 0;
}
