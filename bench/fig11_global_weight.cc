// Figure 11b (global fusion-weight sensitivity): (alpha, beta) in
// {(3,1), (1,1), (1,3)} for WebSearch at 30% load, DCQCN, 8-DC topology.
//
// Expected shape (paper Sec. 7.2): all three settings give similar medians;
// the delay-biased (3,1) setting yields clearly smaller tails (roughly half
// the p99 of balanced/congestion-heavy settings).
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 11b - global fusion weights (alpha, beta)",
         "similar p50 everywhere; (3,1) roughly halves p99 vs (1,1)/(1,3)");

  ExperimentConfig base = Testbed8Config();
  base.policy = PolicyKind::kLcmp;
  SweepSpec spec(base);
  spec.Variants({{"lcmp.alpha=3 lcmp.beta=1", "(3,1)"},
                 {"lcmp.alpha=1 lcmp.beta=1", "(1,1)"},
                 {"lcmp.alpha=1 lcmp.beta=3", "(1,3)"}});
  const std::vector<NamedResult> results = ToNamedResults(RunSpec(spec));
  PrintBucketTable("Fig. 11b - per-size p50/p99 slowdown", results);

  TablePrinter overall({"(alpha,beta)", "p50", "p99"});
  for (const NamedResult& nr : results) {
    overall.AddRow({nr.name, Fmt(nr.result.overall.p50), Fmt(nr.result.overall.p99)});
  }
  std::printf("\n== Fig. 11b - overall ==\n");
  overall.Print();
  return 0;
}
