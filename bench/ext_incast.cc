// Incast / oversubscription extension (DESIGN.md §14): the scenario family
// the segment-split transport was built for.
//
// A 64-to-1 incast bursts into the last DC on top of a mixed intra+inter
// WebSearch background matrix, with the DCI border links optionally
// oversubscribed (os_borders divides their rate). Axes:
//   * os_borders {1, 4}            - healthy vs oversubscribed borders
//   * policy {ECMP, RedTE, LCMP}   - routing is orthogonal to transport
//   * cc {dcqcn, lcp/dcqcn}        - end-to-end DCQCN vs the split stack
//     (delay-based LCP on the long haul, DCQCN inside the fabrics)
//
// Expected shape: under oversubscribed borders the incast tail is governed by
// the long-haul segment; end-to-end DCQCN's CNP loop arrives BDPs late and
// oscillates, while lcp/dcqcn holds the border queue inside its headroom
// budget and cuts the incast p99 slowdown. LCMP routing helps the background
// matrix but cannot fix the shared last-hop — that is the transport's job.
//
// JSON goes to --json=PATH or $LCMP_BENCH_JSON. --quick trims the grid for
// the CI incast-smoke job; --shards=N reruns the same grid on the sharded
// core — every run prints a "digest <label> <hex>" line, so two invocations
// at different shard counts must grep-cmp identical digest sets.
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace lcmp;

  std::string json_path;
  if (const char* env = std::getenv("LCMP_BENCH_JSON")) {
    json_path = env;
  }
  bool quick = false;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    }
  }

  Banner("Incast + oversubscribed borders - 64-to-1 into the last DC, mixed matrix",
         "lcp/dcqcn (split stack) beats end-to-end DCQCN on incast p99 when the "
         "DCI borders are oversubscribed; routing policy cannot fix the shared sink");

  ExperimentConfig base = IncastScenarioConfig(quick ? 16 : 64);
  if (quick) {
    base.num_flows = 120;
  }
  base.shards = shards;

  SweepSpec spec(base);
  if (quick) {
    spec.Axis("os_borders", {"4"});
  } else {
    spec.Axis("os_borders", {"1", "4"})
        .Policies({PolicyKind::kEcmp, PolicyKind::kRedte, PolicyKind::kLcmp});
  }
  spec.Ccs({"dcqcn", "lcp/dcqcn"});

  const std::vector<RunOutcome> outcomes = RunSpec(spec);

  TablePrinter table({"OS", "policy", "cc", "incast flows", "incast p50", "incast p99",
                      "background p99"});
  bool ok = true;
  // p99 per (os, cc) for the LCMP rows (quick mode runs only LCMP's policy
  // default), to report the split-stack win.
  std::map<std::pair<std::string, std::string>, double> lcmp_p99;
  for (const RunOutcome& o : outcomes) {
    ok = ok && o.result.flows_completed == o.result.flows_requested;
    table.AddRow({CellLabel(o, "os_borders"), CellLabel(o, "policy"), CellLabel(o, "cc"),
                  std::to_string(o.result.incast.count), Fmt(o.result.incast.p50),
                  Fmt(o.result.incast.p99), Fmt(o.result.overall.p99)});
    if (o.run.config.policy == PolicyKind::kLcmp) {
      lcmp_p99[{CellLabel(o, "os_borders"), o.run.config.cc.Token()}] = o.result.incast.p99;
    }
  }
  table.Print();

  const std::string os_key = "4";
  const double e2e = lcmp_p99.count({os_key, "dcqcn"}) ? lcmp_p99[{os_key, "dcqcn"}] : 0;
  const double split =
      lcmp_p99.count({os_key, "lcp/dcqcn"}) ? lcmp_p99[{os_key, "lcp/dcqcn"}] : 0;
  const bool split_wins = e2e > 0 && split > 0 && split < e2e;
  if (e2e > 0 && split > 0) {
    std::printf("\nincast p99 at os_borders=4 under LCMP: dcqcn %.2f vs lcp/dcqcn %.2f "
                "(%+.1f%%)\n",
                e2e, split, (split - e2e) / e2e * 100.0);
  }
  Note("incast rows summarize only the fan-in flows; the background matrix "
       "(25% intra-DC) stays in the last column.");

  for (const RunOutcome& o : outcomes) {
    std::printf("digest %s %016llx\n", o.run.label.c_str(),
                static_cast<unsigned long long>(o.digest));
  }

  std::string json = "{\n  \"bench\": \"ext_incast\",\n  \"quick\": " +
                     std::string(quick ? "true" : "false") +
                     ",\n  \"incast_fanin\": " + std::to_string(base.incast_fanin) +
                     ",\n  \"split_beats_e2e_at_os4\": " +
                     std::string(split_wins ? "true" : "false") + ",\n  \"runs\": [\n";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& o = outcomes[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"os_borders\": %d, \"policy\": \"%s\", \"cc\": \"%s\", "
                  "\"digest\": \"%016llx\",\n"
                  "     \"incast_flows\": %d, \"incast_p50\": %.3f, \"incast_p99\": %.3f,\n"
                  "     \"background_p99\": %.3f, \"flows_completed\": %d}%s\n",
                  o.run.config.os_borders, PolicyKindToken(o.run.config.policy),
                  o.run.config.cc.Token().c_str(),
                  static_cast<unsigned long long>(o.digest), o.result.incast.count,
                  o.result.incast.p50, o.result.incast.p99, o.result.overall.p99,
                  o.result.flows_completed, i + 1 < outcomes.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  } else {
    std::fputs(json.c_str(), stdout);
  }
  // Incomplete flows are a bug; the p99 comparison is a result, not a gate.
  return ok ? 0 : 1;
}
