// Figure 8 (DC-pair case study): the same 13-DC all-to-all runs as Fig. 7,
// filtered to flows between DC1 and DC13 — a pair with multiple candidate
// routes of opposite delay/capacity trade-offs.
//
// Expected shape (paper Sec. 6.2.2): focused gains emerge: p50 down 7-11%
// and p99 down 15-18% vs ECMP/RedTE; p50 down 25-30% vs UCMP.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 8 - DC-pair case study (DC1, DC13) at 30/50/80% load",
         "clear multipath gains: p50 -7..11% and p99 -15..18% vs ECMP; "
         "p50 -25..30% vs UCMP");

  ExperimentConfig base = Bso13Config();
  // Oversample the focal pair so each cell has enough samples; the
  // background traffic is still the Fig. 7 all-to-all mix.
  base.pairing = PairingKind::kAllToAllFocusEndpoints;
  SweepSpec spec(base);
  spec.Loads({0.30, 0.50, 0.80})
      .Policies({PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kRedte, PolicyKind::kLcmp});
  const auto cells = ToSweepCells(RunSpec(spec));
  PrintSlowdownTable("Fig. 8 - flows between DC1 and DC13 only", cells,
                     /*dc_pair_only=*/true, /*pair_a=*/0, /*pair_b=*/12);
  Note("rows use only the samples whose endpoints are DC1/DC13 (both directions); "
       "the pair is oversampled ~4x on top of the Fig. 7 all-to-all mix so the "
       "percentiles are statistically meaningful without saturating the pair.");
  return 0;
}
