// Scalability sweep: simulator throughput and LCMP behavior as the WAN
// grows, plus the sharded-core axis (DESIGN.md §12).
//
// Part 1 — random sparse WANs of 8..32 DCs, all-to-all WebSearch traffic at
// 30% load under LCMP, sequential core. Expected shape: events scale with
// delivered traffic; per-switch LCMP state stays bounded (the flow cache and
// 24 B/port registers are size-independent of the topology); wall-clock
// throughput stays in the millions of events per second.
//
// Part 2 — shard-count axis {1,2,4,8} on the paper's two fixed topologies at
// high load, through the harness so --shards exercises the same path as the
// CLI. Emits events/s, parallel speedup over shards=1, and a digest-match
// check (the bit-identical contract, re-verified on every bench run). JSON
// goes to --json=PATH or $LCMP_BENCH_JSON for the BENCH_*.json trajectory;
// `hardware_concurrency` is included so a speedup measured on a small box is
// interpretable (shards beyond the core count time-slice and cannot win).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "obs/shard_profile.h"
#include "stats/fct_recorder.h"
#include "workload/traffic_gen.h"

namespace {

using namespace lcmp;

struct WanRow {
  int dcs = 0;
  uint64_t events = 0;
  double wall_ms = 0;
  double mev = 0;
  size_t max_mem = 0;
};

struct ShardRow {
  const char* topo = "";
  int dcs = 0;
  int shards = 0;
  uint64_t events = 0;
  uint64_t digest = 0;
  double wall_ms = 0;
  double mev = 0;
  double speedup = 0;
  bool match = false;
  // Barrier/stall profile of the run (shards > 1 only; ROADMAP item 1's
  // work-stealing question is decided off these numbers).
  obs::BarrierProfiler::Summary barrier;
};

// Aggregate stall fraction: of total worker wall time (busy + parked), the
// share spent parked waiting for the window's slowest shard.
double StallPct(const obs::BarrierProfiler::Summary& s) {
  uint64_t busy = 0;
  uint64_t stall = 0;
  for (const auto& sh : s.per_shard) {
    busy += sh.busy_ns;
    stall += sh.stall_ns;
  }
  return busy + stall > 0 ? 100.0 * static_cast<double>(stall) /
                                static_cast<double>(busy + stall)
                          : 0.0;
}

ShardRow RunSharded(TopologyKind topo, const char* topo_name, int dcs, int shards) {
  ExperimentConfig config;
  config.topo = topo;
  config.policy = PolicyKind::kLcmp;
  config.num_flows = 600;
  config.hosts_per_dc = 2;
  config.load = 0.7;
  config.seed = 7;
  config.shards = shards;
  config.profile_barriers = true;
  const auto t0 = std::chrono::steady_clock::now();
  const ExperimentResult result = RunExperiment(config);
  const auto t1 = std::chrono::steady_clock::now();
  ShardRow row;
  row.topo = topo_name;
  row.dcs = dcs;
  row.shards = shards;
  row.events = result.events_processed;
  row.digest = ExperimentDigest(result);
  row.wall_ms = std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
  row.mev = row.wall_ms > 0 ? static_cast<double>(row.events) / (row.wall_ms * 1000.0) : 0.0;
  if (shards > 1) {
    row.barrier = obs::BarrierProfiler::Instance().Summarize();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcmp;

  std::string json_path;
  if (const char* env = std::getenv("LCMP_BENCH_JSON")) {
    json_path = env;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  Banner("Scalability - random WANs of 8..32 DCs under LCMP",
         "bounded per-switch state; millions of simulated events per second");

  std::vector<WanRow> wan_rows;
  TablePrinter table({"DCs", "hosts", "flows", "p50", "p99", "sim events", "wall ms",
                      "Mevents/s", "max switch mem (KB)"});
  for (const int dcs : {8, 16, 24, 32}) {
    RandomWanOptions opts;
    opts.num_dcs = dcs;
    opts.extra_chords = dcs / 2;
    opts.seed = 7;
    opts.fabric.hosts = 2;
    const Graph graph = BuildRandomWan(opts);

    NetworkConfig ncfg;
    ncfg.seed = 7;
    Network net(graph, ncfg, MakeLcmpFactory(LcmpConfig{}));
    ControlPlane cp{LcmpConfig{}};
    cp.Provision(net);

    FctRecorder recorder(&net.graph());
    const int num_flows = 300;
    Simulator& sim = net.sim();
    RdmaTransport transport(&net, TransportConfig{},
                            [&](const FlowRecord& rec) {
                              recorder.OnComplete(rec);
                              if (recorder.completed() >= num_flows) {
                                sim.Stop();
                              }
                            });
    const auto pairs = AllOrderedDcPairs(graph.num_dcs());
    TrafficGenConfig traffic;
    traffic.offered_bps = OfferedLoadForUtilization(graph, net.routes(), pairs, 0.30);
    traffic.num_flows = num_flows;
    traffic.seed = 99;
    for (const FlowSpec& f : GenerateTraffic(graph, pairs, traffic)) {
      transport.ScheduleFlow(f);
    }
    net.StartPolicyTicks();

    const auto t0 = std::chrono::steady_clock::now();
    sim.Run(Seconds(120));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;

    size_t max_mem = 0;
    for (const SwitchTelemetry& t : cp.CollectTelemetry(net)) {
      max_mem = std::max(max_mem, t.memory_bytes);
    }
    const SlowdownStats s = recorder.Overall();
    const double mev = wall_ms > 0 ? static_cast<double>(sim.events_processed()) /
                                         (wall_ms * 1000.0)
                                   : 0.0;
    table.AddRow({std::to_string(dcs), std::to_string(dcs * 2), std::to_string(s.count),
                  Fmt(s.p50), Fmt(s.p99), std::to_string(sim.events_processed()),
                  Fmt(wall_ms, 1), Fmt(mev, 2), Fmt(static_cast<double>(max_mem) / 1024.0, 1)});
    wan_rows.push_back({dcs, sim.events_processed(), wall_ms, mev, max_mem});
  }
  table.Print();
  Note("per-switch memory is dominated by the fixed-size 50k-entry flow cache, "
       "independent of WAN size (Sec. 4's deployability argument).");

  Banner("Sharded core - conservative PDES on the fixed testbeds at 70% load",
         "speedup over shards=1; digest must match the sequential core bit for bit");

  const int hw = DefaultJobs();
  std::vector<ShardRow> shard_rows;
  TablePrinter stable({"topo", "DCs", "shards", "sim events", "wall ms", "Mevents/s",
                       "speedup", "stall %", "windows", "digest match"});
  for (const auto& [topo, name, dcs] :
       {std::tuple{TopologyKind::kTestbed8, "testbed8", 8},
        std::tuple{TopologyKind::kBso13, "bso13", 13}}) {
    double base_ms = 0;
    uint64_t base_digest = 0;
    for (const int shards : {1, 2, 4, 8}) {
      ShardRow row = RunSharded(topo, name, dcs, shards);
      if (shards == 1) {
        base_ms = row.wall_ms;
        base_digest = row.digest;
      }
      row.speedup = row.wall_ms > 0 ? base_ms / row.wall_ms : 0.0;
      row.match = row.digest == base_digest;
      stable.AddRow({row.topo, std::to_string(row.dcs), std::to_string(row.shards),
                     std::to_string(row.events), Fmt(row.wall_ms, 1), Fmt(row.mev, 2),
                     Fmt(row.speedup, 2), shards > 1 ? Fmt(StallPct(row.barrier), 1) : "-",
                     std::to_string(row.barrier.windows), row.match ? "yes" : "NO"});
      shard_rows.push_back(row);
    }
  }
  stable.Print();
  std::printf("hardware concurrency: %d\n", hw);
  Note("lookahead = min DCI propagation delay, so barrier windows span "
       "millions of events; shards beyond the core count only time-slice.");

  bool all_match = true;
  std::string json = "{\n  \"bench\": \"scalability\",\n  \"hardware_concurrency\": " +
                     std::to_string(hw) + ",\n  \"random_wan\": [\n";
  for (size_t i = 0; i < wan_rows.size(); ++i) {
    const WanRow& r = wan_rows[i];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "    {\"dcs\": %d, \"events\": %llu, \"wall_ms\": %.1f, "
                  "\"events_per_sec\": %.0f}%s\n",
                  r.dcs, static_cast<unsigned long long>(r.events), r.wall_ms, r.mev * 1e6,
                  i + 1 < wan_rows.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"shard_axis\": [\n";
  for (size_t i = 0; i < shard_rows.size(); ++i) {
    const ShardRow& r = shard_rows[i];
    all_match = all_match && r.match;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"topo\": \"%s\", \"dcs\": %d, \"shards\": %d, \"events\": %llu, "
                  "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, \"speedup\": %.3f, "
                  "\"digest_match\": %s",
                  r.topo, r.dcs, r.shards, static_cast<unsigned long long>(r.events), r.wall_ms,
                  r.mev * 1e6, r.speedup, r.match ? "true" : "false");
    json += buf;
    if (r.shards > 1) {
      // The barrier/stall profile ROADMAP item 1 asks for: per-shard busy vs
      // parked time, the window imbalance histogram (10% buckets of
      // (max-min)/max busy), and cross-shard channel pressure.
      const obs::BarrierProfiler::Summary& b = r.barrier;
      std::snprintf(buf, sizeof(buf),
                    ",\n     \"barrier\": {\"windows\": %llu, \"stall_pct\": %.1f, "
                    "\"drained_items\": %llu, \"channel_high_water\": %llu, "
                    "\"coord_drain_ms\": %.2f, \"coord_advance_ms\": %.2f, "
                    "\"coord_control_ms\": %.2f,\n      \"imbalance_hist\": [",
                    static_cast<unsigned long long>(b.windows), StallPct(b),
                    static_cast<unsigned long long>(b.drained_items),
                    static_cast<unsigned long long>(b.channel_high_water),
                    b.coord_drain_ns / 1e6, b.coord_advance_ns / 1e6, b.coord_control_ns / 1e6);
      json += buf;
      for (size_t k = 0; k < b.imbalance_hist.size(); ++k) {
        json += (k > 0 ? ", " : "") + std::to_string(b.imbalance_hist[k]);
      }
      json += "],\n      \"per_shard\": [";
      for (size_t k = 0; k < b.per_shard.size(); ++k) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"busy_ms\": %.2f, \"stall_ms\": %.2f, \"events\": %llu}",
                      k > 0 ? ", " : "", b.per_shard[k].busy_ns / 1e6,
                      b.per_shard[k].stall_ns / 1e6,
                      static_cast<unsigned long long>(b.per_shard[k].events));
        json += buf;
      }
      json += "]}";
    }
    json += std::string("}") + (i + 1 < shard_rows.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  } else {
    std::fputs(json.c_str(), stdout);
  }
  // A digest mismatch is a correctness bug, not a performance result.
  return all_match ? 0 : 1;
}
