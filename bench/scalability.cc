// Scalability sweep: simulator throughput and LCMP behavior as the WAN
// grows. Random sparse WANs of 8..32 DCs, all-to-all WebSearch traffic at
// 30% load under LCMP.
//
// Expected shape: events scale with delivered traffic; per-switch LCMP state
// stays bounded (the flow cache and 24 B/port registers are size-independent
// of the topology); wall-clock throughput stays in the millions of events
// per second.
#include <chrono>

#include "bench/bench_util.h"
#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "stats/fct_recorder.h"
#include "workload/traffic_gen.h"

int main() {
  using namespace lcmp;
  Banner("Scalability - random WANs of 8..32 DCs under LCMP",
         "bounded per-switch state; millions of simulated events per second");

  TablePrinter table({"DCs", "hosts", "flows", "p50", "p99", "sim events", "wall ms",
                      "Mevents/s", "max switch mem (KB)"});
  for (const int dcs : {8, 16, 24, 32}) {
    RandomWanOptions opts;
    opts.num_dcs = dcs;
    opts.extra_chords = dcs / 2;
    opts.seed = 7;
    opts.fabric.hosts = 2;
    const Graph graph = BuildRandomWan(opts);

    NetworkConfig ncfg;
    ncfg.seed = 7;
    Network net(graph, ncfg, MakeLcmpFactory(LcmpConfig{}));
    ControlPlane cp{LcmpConfig{}};
    cp.Provision(net);

    FctRecorder recorder(&net.graph());
    const int num_flows = 300;
    Simulator& sim = net.sim();
    RdmaTransport transport(&net, TransportConfig{}, CcKind::kDcqcn,
                            [&](const FlowRecord& rec) {
                              recorder.OnComplete(rec);
                              if (recorder.completed() >= num_flows) {
                                sim.Stop();
                              }
                            });
    const auto pairs = AllOrderedDcPairs(graph.num_dcs());
    TrafficGenConfig traffic;
    traffic.offered_bps = OfferedLoadForUtilization(graph, net.routes(), pairs, 0.30);
    traffic.num_flows = num_flows;
    traffic.seed = 99;
    for (const FlowSpec& f : GenerateTraffic(graph, pairs, traffic)) {
      transport.ScheduleFlow(f);
    }
    net.StartPolicyTicks();

    const auto t0 = std::chrono::steady_clock::now();
    sim.Run(Seconds(120));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;

    size_t max_mem = 0;
    for (const SwitchTelemetry& t : cp.CollectTelemetry(net)) {
      max_mem = std::max(max_mem, t.memory_bytes);
    }
    const SlowdownStats s = recorder.Overall();
    const double mev = wall_ms > 0 ? static_cast<double>(sim.events_processed()) /
                                         (wall_ms * 1000.0)
                                   : 0.0;
    table.AddRow({std::to_string(dcs), std::to_string(dcs * 2), std::to_string(s.count),
                  Fmt(s.p50), Fmt(s.p99), std::to_string(sim.events_processed()),
                  Fmt(wall_ms, 1), Fmt(mev, 2), Fmt(static_cast<double>(max_mem) / 1024.0, 1)});
  }
  table.Print();
  Note("per-switch memory is dominated by the fixed-size 50k-entry flow cache, "
       "independent of WAN size (Sec. 4's deployability argument).");
  return 0;
}
