// Figure 10 (congestion-control orthogonality): median and tail FCT
// slowdown for WebSearch at 30% load under DCQCN, HPCC, TIMELY and DCTCP,
// comparing ECMP, UCMP and LCMP on the 8-DC topology.
//
// Expected shape (paper Sec. 6.3.2): LCMP's improvements are consistent
// across all four CCs (p50 down 32-35% vs ECMP and 74-75% vs UCMP; p99 down
// 39-45% vs ECMP and ~40% vs UCMP) — routing gains are orthogonal to the
// end-host transport.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 10 - CC orthogonality at 30% load (8-DC)",
         "similar LCMP gains under DCQCN, HPCC, TIMELY and DCTCP");

  SweepSpec spec(Testbed8Config());
  spec.Ccs({"dcqcn", "hpcc", "timely", "dctcp"})
      .Policies({PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kLcmp});

  TablePrinter table({"cc", "policy", "p50 slowdown", "p99 slowdown"});
  for (const RunOutcome& o : RunSpec(spec)) {
    table.AddRow({CellLabel(o, "cc"), CellLabel(o, "policy"),
                  Fmt(o.result.overall.p50), Fmt(o.result.overall.p99)});
  }
  std::printf("\n== Fig. 10 - four congestion controllers ==\n");
  table.Print();
  Note("HPCC runs with in-band telemetry stamping enabled on DATA packets.");
  return 0;
}
