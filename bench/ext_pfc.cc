// Substrate experiment: PFC pressure under different routing policies.
//
// The paper's setting is lossless RDMA: PFC keeps queues drop-free but
// head-of-line-blocks upstream ports, and long-haul PFC needs huge headroom
// (Sec. 6.2's 6 GB buffers; SWING/Bifrost in related work exist precisely
// because of this). Routing that collides flows onto one egress causes more
// and longer pauses. This bench runs the 8-DC WebSearch workload at 50%
// load on a lossless (PFC-enabled) network and reports, per policy:
// switch drops (must be 0), pause frames, and total paused time on the
// inter-DC transmitters.
//
// Expected shape: every policy is lossless (0 drops). What differs is the
// head-of-line-blocking *time*: UCMP's persistent concentration keeps ports
// paused longest, ECMP's random collisions pause for less, and LCMP's
// congestion-aware spreading clears pauses almost immediately (many short
// XOFF/XON cycles, near-zero cumulative paused time).
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Substrate - PFC (lossless) pressure per routing policy @ 80% load",
         "all lossless (0 drops); LCMP minimizes cumulative paused time");

  ExperimentConfig base = Testbed8Config();
  base.load = 0.8;
  base.num_flows = 400;
  // Long-haul PFC: XOFF above the ECN operating point (so steady state does
  // not pause) but low enough that bursts which outrun the delayed ECN
  // feedback do. Headroom for the 125 ms links is covered by the 2 GB
  // inter-DC buffers the topology provisions.
  base.pfc_enabled = true;
  base.pfc_xoff_bytes = 1LL * 1024 * 1024;
  base.pfc_xon_bytes = 512LL * 1024;
  SweepSpec spec(base);
  spec.Policies({PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kRedte, PolicyKind::kLcmp});

  TablePrinter table({"policy", "flows", "p50", "p99", "switch drops", "pause frames",
                      "paused (ms, all ports)"});
  for (const RunOutcome& o : RunSpec(spec)) {
    table.AddRow({CellLabel(o, "policy"), std::to_string(o.result.flows_completed),
                  Fmt(o.result.overall.p50), Fmt(o.result.overall.p99),
                  std::to_string(o.result.switch_dropped_packets),
                  std::to_string(o.result.pfc_pause_frames),
                  Fmt(static_cast<double>(o.result.total_paused_ns) / kNsPerMs, 1)});
  }
  table.Print();
  Note("PFC XOFF=1MB/XON=512KB per ingress; 2GB inter-DC buffers provide the "
       "long-haul headroom (the paper provisions 6GB for the same reason).");
  return 0;
}
