// Substrate experiment: PFC pressure under different routing policies.
//
// The paper's setting is lossless RDMA: PFC keeps queues drop-free but
// head-of-line-blocks upstream ports, and long-haul PFC needs huge headroom
// (Sec. 6.2's 6 GB buffers; SWING/Bifrost in related work exist precisely
// because of this). Routing that collides flows onto one egress causes more
// and longer pauses. This bench runs the 8-DC WebSearch workload at 50%
// load on a lossless (PFC-enabled) network and reports, per policy:
// switch drops (must be 0), pause frames, and total paused time on the
// inter-DC transmitters.
//
// Expected shape: every policy is lossless (0 drops). What differs is the
// head-of-line-blocking *time*: UCMP's persistent concentration keeps ports
// paused longest, ECMP's random collisions pause for less, and LCMP's
// congestion-aware spreading clears pauses almost immediately (many short
// XOFF/XON cycles, near-zero cumulative paused time).
#include "bench/bench_util.h"
#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "stats/fct_recorder.h"
#include "workload/traffic_gen.h"

namespace {

struct Outcome {
  lcmp::SlowdownStats stats;
  int64_t drops = 0;
  int64_t pause_frames = 0;
  double paused_ms = 0;
  int completed = 0;
};

Outcome Run(lcmp::PolicyKind policy) {
  using namespace lcmp;
  ExperimentConfig c = Testbed8Config();
  c.load = 0.8;
  c.num_flows = 400;

  Testbed8Options topo_opts;
  topo_opts.fabric.hosts = c.hosts_per_dc;
  const Graph graph = BuildTestbed8(topo_opts);
  NetworkConfig ncfg;
  ncfg.seed = c.seed;
  ncfg.pfc.enabled = true;
  // Long-haul PFC: XOFF above the ECN operating point (so steady state does
  // not pause) but low enough that bursts which outrun the delayed ECN
  // feedback do. Headroom for the 125 ms links is covered by the 2 GB
  // inter-DC buffers the topology provisions.
  ncfg.pfc.xoff_bytes = 1LL * 1024 * 1024;
  ncfg.pfc.xon_bytes = 512LL * 1024;
  Network net(graph, ncfg, MakePolicyFactory(policy, c.lcmp));
  ControlPlane cp(c.lcmp);
  cp.Provision(net);

  FctRecorder recorder(&net.graph());
  Simulator& sim = net.sim();
  RdmaTransport transport(&net, TransportConfig{}, c.cc, [&](const FlowRecord& rec) {
    recorder.OnComplete(rec);
    if (recorder.completed() >= c.num_flows) {
      sim.Stop();
    }
  });
  const auto pairs = BuildPairing(c, graph.num_dcs());
  TrafficGenConfig traffic;
  traffic.workload = c.workload;
  traffic.offered_bps = OfferedLoadForUtilization(graph, net.routes(), pairs, c.load);
  traffic.num_flows = c.num_flows;
  traffic.seed = Mix64(c.seed ^ 0x7ea1);
  for (const FlowSpec& f : GenerateTraffic(graph, pairs, traffic)) {
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();
  sim.Run(c.horizon);

  Outcome out;
  out.stats = recorder.Overall();
  out.completed = recorder.completed();
  for (NodeId id = 0; id < graph.num_vertices(); ++id) {
    if (graph.vertex(id).kind == VertexKind::kHost) {
      continue;
    }
    SwitchNode& sw = net.switch_node(id);
    for (PortIndex p = 0; p < sw.num_ports(); ++p) {
      out.drops += sw.port(p).dropped_packets();
      out.paused_ms += static_cast<double>(sw.port(p).paused_ns()) / kNsPerMs;
    }
    if (sw.pfc() != nullptr) {
      out.pause_frames += sw.pfc()->pause_frames_sent();
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace lcmp;
  Banner("Substrate - PFC (lossless) pressure per routing policy @ 80% load",
         "all lossless (0 drops); LCMP minimizes cumulative paused time");

  TablePrinter table({"policy", "flows", "p50", "p99", "switch drops", "pause frames",
                      "paused (ms, all ports)"});
  for (const PolicyKind p :
       {PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kRedte, PolicyKind::kLcmp}) {
    const Outcome o = Run(p);
    table.AddRow({PolicyKindName(p), std::to_string(o.completed), Fmt(o.stats.p50),
                  Fmt(o.stats.p99), std::to_string(o.drops), std::to_string(o.pause_frames),
                  Fmt(o.paused_ms, 1)});
  }
  table.Print();
  Note("PFC XOFF=1MB/XON=512KB per ingress; 2GB inter-DC buffers provide the "
       "long-haul headroom (the paper provisions 6GB for the same reason).");
  return 0;
}
