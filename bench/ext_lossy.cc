// Lossy long-haul tier extension (DESIGN.md §15): what the transport and the
// gateway FEC shim buy once DCI links actually corrupt packets.
//
// Three phases on the 8-DC testbed, all with windowed senders (a bounded
// in-flight window is what makes selective recovery effective — open-loop
// blasting overruns the receiver's OOO window and degrades IRN to RTO
// probing):
//   1. reliability {gbn, irn} x dci_loss_rate {0, 1e-3}
//      -> IRN retransmits a small fraction of Go-Back-N's at equal loss.
//   2. fec {off, 8:2} at 1e-3 loss under IRN
//      -> the shim reconstructs most wire losses before the transport sees
//         them; residual retransmits collapse.
//   3. a degraded DCI (rate cut to 35%, 1% loss from t=5ms) under
//      policy {ecmp, lcmp} x fec {off, 8:2}
//      -> LCMP routes around the sick link; FEC rides through it. Either
//         beats pure end-to-end retransmission on p99 FCT.
//
// JSON goes to --json=PATH or $LCMP_BENCH_JSON. --quick trims the grid for
// the CI lossy-smoke job; --shards=N reruns the same grid on the sharded
// core — every run prints a "digest <label> <hex>" line, so two invocations
// at different shard counts must grep-cmp identical digest sets.
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/fault_plan.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace lcmp;

  std::string json_path;
  if (const char* env = std::getenv("LCMP_BENCH_JSON")) {
    json_path = env;
  }
  bool quick = false;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    }
  }

  Banner("Lossy DCI tier - IRN selective retransmit + gateway FEC vs Go-Back-N",
         "at 1e-3 DCI loss IRN retransmits <5% of Go-Back-N's; on a degraded "
         "DCI, 8:2 FEC ride-through beats pure retransmission on p99 FCT");

  ExperimentConfig base = Testbed8Config();
  base.num_flows = quick ? 120 : 600;
  base.shards = shards;
  // Windowed senders (~1 long-haul BDP). See the header comment.
  base.max_inflight_bytes = 4 * 1024 * 1024;

  // ---- phase 1: reliability mode vs wire loss ----
  SweepSpec p1(base);
  if (quick) {
    p1.Axis("dci_loss_rate", {"0.001"});
  } else {
    p1.Axis("dci_loss_rate", {"0", "0.001"});
  }
  p1.Axis("reliability", {"gbn", "irn"});
  const std::vector<RunOutcome> loss_runs = RunSpec(p1);

  TablePrinter t1({"loss", "reliability", "retransmits", "wire losses", "p50", "p99"});
  bool ok = true;
  std::map<std::string, int64_t> retx_at_loss;  // reliability -> retransmits at 1e-3
  for (const RunOutcome& o : loss_runs) {
    ok = ok && o.result.flows_completed == o.result.flows_requested;
    t1.AddRow({CellLabel(o, "dci_loss_rate"), CellLabel(o, "reliability"),
               std::to_string(o.result.retransmitted_packets),
               std::to_string(o.result.dci_lost_packets), Fmt(o.result.overall.p50),
               Fmt(o.result.overall.p99)});
    if (CellLabel(o, "dci_loss_rate") == "0.001") {
      retx_at_loss[CellLabel(o, "reliability")] = o.result.retransmitted_packets;
    }
  }
  t1.Print();
  const int64_t gbn_retx = retx_at_loss.count("gbn") ? retx_at_loss["gbn"] : 0;
  const int64_t irn_retx = retx_at_loss.count("irn") ? retx_at_loss["irn"] : 0;
  const bool irn_wins = gbn_retx > 0 && irn_retx * 20 < gbn_retx;  // < 5%
  if (gbn_retx > 0) {
    std::printf("\nretransmits at 1e-3 loss: gbn %lld vs irn %lld (%.2f%%)\n",
                static_cast<long long>(gbn_retx), static_cast<long long>(irn_retx),
                100.0 * static_cast<double>(irn_retx) / static_cast<double>(gbn_retx));
  }

  // ---- phase 2: gateway FEC at the same loss ----
  ExperimentConfig fec_base = base;
  std::string error;
  LCMP_CHECK(ApplyConfigField(&fec_base, "reliability", "irn", &error));
  LCMP_CHECK(ApplyConfigField(&fec_base, "dci_loss_rate", "0.001", &error));
  SweepSpec p2(fec_base);
  p2.Axis("fec", {"off", "8:2"});
  const std::vector<RunOutcome> fec_runs = RunSpec(p2);

  TablePrinter t2({"fec", "retransmits", "wire losses", "recovered", "unrecovered", "p99"});
  for (const RunOutcome& o : fec_runs) {
    ok = ok && o.result.flows_completed == o.result.flows_requested;
    t2.AddRow({CellLabel(o, "fec"), std::to_string(o.result.retransmitted_packets),
               std::to_string(o.result.dci_lost_packets),
               std::to_string(o.result.fec_recovered_packets),
               std::to_string(o.result.fec_unrecovered_packets), Fmt(o.result.overall.p99)});
  }
  t2.Print();

  // ---- phase 3: degraded DCI - reroute (LCMP) vs ride-through (FEC) ----
  ExperimentConfig deg_base = fec_base;
  LCMP_CHECK(ApplyConfigField(&deg_base, "dci_loss_rate", "0", &error));
  {
    const Graph graph = BuildTopology(deg_base);
    LCMP_CHECK_MSG(ParseFaultPlan("5ms degrade dci=0:2 rate=0.35 loss=0.01", graph,
                                  &deg_base.fault_plan, &error),
                   "%s", error.c_str());
  }
  SweepSpec p3(deg_base);
  if (quick) {
    p3.Policies({PolicyKind::kLcmp});
  } else {
    p3.Policies({PolicyKind::kEcmp, PolicyKind::kLcmp});
  }
  p3.Axis("fec", {"off", "8:2"});
  const std::vector<RunOutcome> deg_runs = RunSpec(p3);

  TablePrinter t3({"policy", "fec", "retransmits", "recovered", "p50", "p99"});
  std::map<std::pair<std::string, std::string>, double> deg_p99;
  for (const RunOutcome& o : deg_runs) {
    ok = ok && o.result.flows_completed == o.result.flows_requested;
    t3.AddRow({CellLabel(o, "policy"), CellLabel(o, "fec"),
               std::to_string(o.result.retransmitted_packets),
               std::to_string(o.result.fec_recovered_packets), Fmt(o.result.overall.p50),
               Fmt(o.result.overall.p99)});
    deg_p99[{CellLabel(o, "policy"), CellLabel(o, "fec")}] = o.result.overall.p99;
  }
  t3.Print();
  // Claim (b): with the same routing policy, FEC ride-through beats pure
  // retransmission on the degraded link's p99.
  const std::string deg_policy = quick ? "LCMP" : "ECMP";
  const double p99_off =
      deg_p99.count({deg_policy, "off"}) ? deg_p99[{deg_policy, "off"}] : 0;
  const double p99_fec =
      deg_p99.count({deg_policy, "8:2"}) ? deg_p99[{deg_policy, "8:2"}] : 0;
  const bool fec_wins = p99_off > 0 && p99_fec > 0 && p99_fec < p99_off;
  if (p99_off > 0 && p99_fec > 0) {
    std::printf("\ndegraded-DCI p99 under %s: fec off %.2f vs 8:2 %.2f (%+.1f%%)\n",
                deg_policy.c_str(), p99_off, p99_fec, (p99_fec - p99_off) / p99_off * 100.0);
  }
  Note("phase 3 degrades one 0<->2 DCI to 35% rate + 1% loss at t=5ms and "
       "leaves it down; LCMP shifts traffic off it, FEC repairs across it.");

  std::vector<RunOutcome> all;
  all.insert(all.end(), loss_runs.begin(), loss_runs.end());
  all.insert(all.end(), fec_runs.begin(), fec_runs.end());
  all.insert(all.end(), deg_runs.begin(), deg_runs.end());
  for (const RunOutcome& o : all) {
    std::printf("digest %s %016llx\n", o.run.label.c_str(),
                static_cast<unsigned long long>(o.digest));
  }

  std::string json = "{\n  \"bench\": \"ext_lossy\",\n  \"quick\": " +
                     std::string(quick ? "true" : "false") +
                     ",\n  \"irn_under_5pct_of_gbn_at_1e3\": " +
                     std::string(irn_wins ? "true" : "false") +
                     ",\n  \"fec_beats_retx_p99_on_degraded_dci\": " +
                     std::string(fec_wins ? "true" : "false") + ",\n  \"runs\": [\n";
  auto phase_of = [&](size_t i) {
    if (i < loss_runs.size()) return "loss";
    if (i < loss_runs.size() + fec_runs.size()) return "fec";
    return "degraded";
  };
  for (size_t i = 0; i < all.size(); ++i) {
    const RunOutcome& o = all[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"phase\": \"%s\", \"label\": \"%s\", \"digest\": \"%016llx\",\n"
        "     \"retransmits\": %lld, \"dci_lost\": %lld, \"fec_recovered\": %lld,\n"
        "     \"fec_unrecovered\": %lld, \"p50\": %.3f, \"p99\": %.3f, "
        "\"flows_completed\": %d}%s\n",
        phase_of(i), o.run.label.c_str(), static_cast<unsigned long long>(o.digest),
        static_cast<long long>(o.result.retransmitted_packets),
        static_cast<long long>(o.result.dci_lost_packets),
        static_cast<long long>(o.result.fec_recovered_packets),
        static_cast<long long>(o.result.fec_unrecovered_packets), o.result.overall.p50,
        o.result.overall.p99, o.result.flows_completed,
        i + 1 < all.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  } else {
    std::fputs(json.c_str(), stdout);
  }
  // Incomplete flows are a bug; the headline comparisons are results, not
  // gates — except the two claims this extension exists to demonstrate.
  return ok && irn_wins && fec_wins ? 0 : 1;
}
