// Failover recovery bench (fault-injection subsystem): cut one DCI link on
// the 8-DC testbed mid-run and measure, per policy, how fast the FCT
// distribution returns to its pre-fault level.
//
// Method: a continuous stream of flows crosses DC1<->DC8 while the lowest-
// delay route's first-hop link is cut at t_cut and repaired 300 ms later
// (the outage spans multiple RedTE control-loop periods). Completed flows
// are binned by *start* time; a policy has "recovered" in the first bin
// whose p50 slowdown is back within 10% of the pre-fault baseline (flows
// that both started and finished before the cut). The cut link is the ideal-
// FCT reference path, so no policy can recover before the repair; what
// differs is the tail after it. LCMP's per-flow decisions read live on-switch
// state and move flows back the moment the port reappears, while RedTE keeps
// hashing on stale weights until its next 100 ms control-loop pass.
//
// Output: one JSON object per policy on stdout (plus a human table on
// stderr); pass a path argument to also write the JSON array to a file.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "fault/fault_plan.h"

namespace {

using namespace lcmp;

constexpr TimeNs kCut = Milliseconds(80);
constexpr TimeNs kRepair = Milliseconds(180);
constexpr TimeNs kBin = Milliseconds(10);
constexpr int kMinBinSamples = 5;
constexpr double kRecoveredWithin = 1.10;  // within 10% of pre-fault p50

struct PolicyOutcome {
  PolicyKind policy;
  int completed = 0;
  int requested = 0;
  double baseline_p50 = 0;   // flows started & finished before the cut
  double outage_p50 = 0;     // flows started in [cut, cut+50ms)
  double inflation = 0;      // outage_p50 / baseline_p50
  double recovery_ms = -1;   // start-time offset after the cut of the first
                             // recovered bin; -1 = never within the horizon
  double last_start_ms = 0;  // arrival span sanity check
  int64_t failover_rehashes = 0;
  int64_t faults_injected = 0;
};

double BinP50(const std::vector<FctRecorder::Sample>& samples, TimeNs lo, TimeNs hi,
              int* count_out = nullptr) {
  SampleSet set;
  for (const auto& s : samples) {
    if (s.start >= lo && s.start < hi) {
      set.Add(s.slowdown);
    }
  }
  if (count_out != nullptr) {
    *count_out = static_cast<int>(set.size());
  }
  return set.size() == 0 ? 0.0 : set.Percentile(50);
}

// First-hop link of the lowest-delay DC1->DC8 route (the paper's preferred
// path, so the cut displaces real traffic for every policy).
int VictimLink(const Graph& g) {
  const NodeId src_dci = g.DciOfDc(0);
  int victim = -1;
  TimeNs best_delay = 0;
  for (const int li : g.incident_links(src_dci)) {
    const LinkSpec& l = g.link(li);
    const NodeId peer = l.a == src_dci ? l.b : l.a;
    if (g.vertex(peer).kind != VertexKind::kDciSwitch || g.vertex(peer).dc == 0) {
      continue;
    }
    if (victim < 0 || l.delay_ns < best_delay) {
      victim = li;
      best_delay = l.delay_ns;
    }
  }
  LCMP_CHECK(victim >= 0);
  return victim;
}

PolicyOutcome RunPolicy(PolicyKind policy) {
  ExperimentConfig config = Testbed8Config();
  config.policy = policy;
  config.load = 0.40;
  config.num_flows = 12000;
  config.horizon = Seconds(30);

  const Graph graph = BuildTopology(config);
  FaultEvent cut;
  cut.at = kCut;
  cut.kind = FaultKind::kLinkDown;
  cut.link_idx = VictimLink(graph);
  config.fault_plan.events.push_back(cut);
  FaultEvent repair = cut;
  repair.at = kRepair;
  repair.kind = FaultKind::kLinkUp;
  config.fault_plan.events.push_back(repair);

  const ExperimentResult result = RunExperiment(config);

  PolicyOutcome out;
  out.policy = policy;
  out.completed = result.flows_completed;
  out.requested = result.flows_requested;
  out.faults_injected = result.faults_injected;
  for (const SwitchTelemetry& t : result.telemetry) {
    out.failover_rehashes += t.failover_rehashes;
  }

  // Baseline: p50 over flows *started* in the pre-fault window (minus a
  // warmup bin). Binning by start keeps the comparison apples-to-apples with
  // the post-cut bins; filtering on completion time instead would bias the
  // baseline toward fast-finishing flows on fast paths and make "back within
  // 10% of pre-fault" unreachable by construction.
  TimeNs last_start = 0;
  for (const auto& s : result.samples) {
    last_start = std::max(last_start, s.start);
  }
  out.baseline_p50 = BinP50(result.samples, Milliseconds(10), kCut);
  out.last_start_ms = static_cast<double>(last_start) / kNsPerMs;
  out.outage_p50 = BinP50(result.samples, kCut, kCut + Milliseconds(50));
  out.inflation = out.baseline_p50 > 0 ? out.outage_p50 / out.baseline_p50 : 0;

  // Recovered = two consecutive post-cut bins back under the threshold
  // (a single bin can dip on noise mid-outage).
  const double threshold = out.baseline_p50 * kRecoveredWithin;
  std::fprintf(stderr, "%s p50 by 10ms start bin:", PolicyKindName(policy));
  double prev_p50 = -1;
  TimeNs prev_lo = 0;
  for (TimeNs lo = 0; lo + kBin <= last_start; lo += kBin) {
    int count = 0;
    const double p50 = BinP50(result.samples, lo, lo + kBin, &count);
    std::fprintf(stderr, " %.2f", p50);
    if (lo >= kCut && count >= kMinBinSamples) {
      if (out.recovery_ms < 0 && prev_p50 >= 0 && prev_p50 <= threshold && p50 <= threshold &&
          prev_lo >= kCut) {
        out.recovery_ms = static_cast<double>(prev_lo + kBin - kCut) / kNsPerMs;
      }
      prev_p50 = p50;
      prev_lo = lo;
    }
  }
  std::fprintf(stderr, "\n");
  return out;
}

std::string ToJson(const PolicyOutcome& o) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"policy\":\"%s\",\"completed\":%d,\"requested\":%d,"
                "\"baseline_p50_slowdown\":%.3f,\"outage_p50_slowdown\":%.3f,"
                "\"fct_inflation\":%.3f,\"recovery_ms\":%.1f,\"last_start_ms\":%.1f,"
                "\"failover_rehashes\":%lld,\"faults_injected\":%lld}",
                PolicyKindName(o.policy), o.completed, o.requested, o.baseline_p50,
                o.outage_p50, o.inflation, o.recovery_ms, o.last_start_ms,
                static_cast<long long>(o.failover_rehashes),
                static_cast<long long>(o.faults_injected));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Failover recovery after a single DCI link cut (8-DC testbed)",
         "LCMP's lazy-invalidation rehash restores pre-fault FCT faster than RedTE's "
         "100 ms control loop; ECMP/WCMP keep hashing onto stale static splits");

  const std::vector<PolicyKind> policies = {PolicyKind::kEcmp, PolicyKind::kWcmp,
                                            PolicyKind::kRedte, PolicyKind::kLcmp};
  std::vector<PolicyOutcome> outcomes;
  std::string json = "[";
  for (const PolicyKind p : policies) {
    outcomes.push_back(RunPolicy(p));
    json += (outcomes.size() > 1 ? ",\n " : "\n ") + ToJson(outcomes.back());
    std::printf("%s\n", ToJson(outcomes.back()).c_str());
    std::fflush(stdout);
  }
  json += "\n]\n";

  TablePrinter table(
      {"policy", "baseline p50", "outage p50", "inflation", "recovery (ms)", "rehashes"});
  for (const PolicyOutcome& o : outcomes) {
    table.AddRow({PolicyKindName(o.policy), Fmt(o.baseline_p50), Fmt(o.outage_p50),
                  Fmt(o.inflation), o.recovery_ms < 0 ? "never" : Fmt(o.recovery_ms),
                  std::to_string(o.failover_rehashes)});
  }
  table.Print();

  const auto find = [&](PolicyKind k) {
    return *std::find_if(outcomes.begin(), outcomes.end(),
                         [k](const PolicyOutcome& o) { return o.policy == k; });
  };
  const PolicyOutcome& lcmp = find(PolicyKind::kLcmp);
  const PolicyOutcome& redte = find(PolicyKind::kRedte);
  const bool lcmp_faster =
      lcmp.recovery_ms >= 0 && (redte.recovery_ms < 0 || lcmp.recovery_ms <= redte.recovery_ms);
  Note(lcmp_faster ? "LCMP recovered at least as fast as RedTE (expected)"
                   : "UNEXPECTED: RedTE recovered faster than LCMP");

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return lcmp_faster ? 0 : 1;
}
