// Figure 11c (path-quality weight sensitivity): (w_dl, w_lc) in
// {(3,1), (1,1), (1,3)} inside C_path, WebSearch at 30% load, 8-DC.
//
// Expected shape (paper Sec. 7.3): the delay-biased (3,1) score gives the
// best medians and tails; balanced (1,1) slightly worse medians and much
// larger tails; capacity-biased (1,3) worst everywhere (it drags
// latency-sensitive flows onto high-capacity, slow links).
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 11c - path-quality weights (w_dl, w_lc)",
         "(3,1) best; (1,1) worse tails; (1,3) worst medians and tails");

  ExperimentConfig base = Testbed8Config();
  base.policy = PolicyKind::kLcmp;
  SweepSpec spec(base);
  spec.Variants({{"lcmp.w_dl=3 lcmp.w_lc=1", "(3,1)"},
                 {"lcmp.w_dl=1 lcmp.w_lc=1", "(1,1)"},
                 {"lcmp.w_dl=1 lcmp.w_lc=3", "(1,3)"}});
  const std::vector<NamedResult> results = ToNamedResults(RunSpec(spec));
  PrintBucketTable("Fig. 11c - per-size p50/p99 slowdown", results);

  TablePrinter overall({"(w_dl,w_lc)", "p50", "p99"});
  for (const NamedResult& nr : results) {
    overall.AddRow({nr.name, Fmt(nr.result.overall.p50), Fmt(nr.result.overall.p99)});
  }
  std::printf("\n== Fig. 11c - overall ==\n");
  overall.Print();
  return 0;
}
