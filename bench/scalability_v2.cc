// Scalability v2: extreme-scale sweep over generated dragonfly WANs with
// leaf-spine DC fabrics and FatPaths-style layered path sets (DESIGN.md §13).
//
// Sweeps the DC count from the paper's 13-DC scale up to 200 DCs (~5000
// switches with the 16-leaf/8-spine fabric) and emits, per point: simulated
// events per second, the arena-backed per-switch path-table footprint, the
// topology + static-table footprints, and the process peak RSS. Expected
// shape: path-table bytes per DCI switch grow roughly linearly in the DC
// count (slots are O(layers x DCs) per DCI) while interning keeps the arena
// far below the naive per-switch copy; peak RSS stays bounded (hundreds of
// MB, not tens of GB) at 200 DCs.
//
// A shard-equivalence check on the smallest point re-verifies that generated
// topologies and layered paths are bit-identical across shards {1,2,4} — the
// same contract shard_determinism_test pins, re-run here on every bench run.
//
// JSON goes to --json=PATH or $LCMP_BENCH_JSON. --quick trims the sweep to
// {13,50,200} DCs with fewer flows for the CI topo-scale-smoke job; the RSS
// gate lives in the workflow, this binary only reports. Exit code is 0 iff
// every point completed all flows and the shard digests match.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/runner.h"

namespace {

using namespace lcmp;

struct ScaleRow {
  int dcs = 0;
  int switches = 0;
  int dcis = 0;
  int flows = 0;
  uint64_t events = 0;
  uint64_t digest = 0;
  double wall_ms = 0;
  double mev = 0;
  double p50 = 0;
  double p99 = 0;
  size_t topo_bytes = 0;
  size_t path_table_bytes = 0;
  size_t static_table_bytes = 0;
  size_t peak_rss_bytes = 0;
  bool completed = false;
};

// Process peak RSS so far. ru_maxrss is KB on Linux; it is monotone, so
// sampling after each point (run in increasing size order) attributes the
// high-water mark to the largest topology built so far.
size_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
  return static_cast<size_t>(ru.ru_maxrss) * 1024;
}

// One sweep point: a dragonfly WAN of `dcs` DCs, each a 16-leaf/8-spine
// fabric, all-to-all WebSearch under LCMP with 4 layered path sets.
ExperimentConfig PointConfig(int dcs, int flows, int shards) {
  ExperimentConfig config;
  config.topo = TopologyKind::kDragonfly;
  config.num_dcs = dcs;
  config.topo_seed = 7;
  config.fabric = FabricKind::kLeafSpine;
  config.fabric_leaves = 16;
  config.fabric_spines = 8;
  config.hosts_per_dc = 16;
  config.pairing = PairingKind::kAllToAll;
  config.workload = WorkloadKind::kWebSearch;
  config.policy = PolicyKind::kLcmp;
  config.path_strategy = PathStrategyKind::kLayered;
  config.path_layers = 4;
  config.load = 0.25;
  config.num_flows = flows;
  config.seed = 7;
  config.shards = shards;
  // Size the flow cache to the offered flows instead of the paper's fixed
  // 50k-entry table: at 5000 switches the fixed table alone would be ~6 GB.
  config.lcmp.flow_cache_auto = true;
  return config;
}

ScaleRow RunPoint(int dcs, int flows, int shards) {
  const ExperimentConfig config = PointConfig(dcs, flows, shards);
  const auto t0 = std::chrono::steady_clock::now();
  const ExperimentResult result = RunExperiment(config);
  const auto t1 = std::chrono::steady_clock::now();
  ScaleRow row;
  row.dcs = dcs;
  row.switches = result.num_switches;
  row.dcis = result.num_dcis;
  row.flows = result.flows_completed;
  row.events = result.events_processed;
  row.digest = ExperimentDigest(result);
  row.wall_ms = std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
  row.mev = row.wall_ms > 0 ? static_cast<double>(row.events) / (row.wall_ms * 1000.0) : 0.0;
  row.p50 = result.overall.p50;
  row.p99 = result.overall.p99;
  row.topo_bytes = result.topo_bytes;
  row.path_table_bytes = result.path_table_bytes;
  row.static_table_bytes = result.static_table_bytes;
  row.peak_rss_bytes = PeakRssBytes();
  row.completed = result.flows_completed == result.flows_requested;
  return row;
}

double PerDci(size_t bytes, int dcis) {
  return dcis > 0 ? static_cast<double>(bytes) / dcis : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcmp;

  std::string json_path;
  if (const char* env = std::getenv("LCMP_BENCH_JSON")) {
    json_path = env;
  }
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  const std::vector<int> points =
      quick ? std::vector<int>{13, 50, 200} : std::vector<int>{13, 25, 50, 100, 200};
  const int flows = quick ? 200 : 600;

  Banner("Scalability v2 - dragonfly WANs of 13..200 DCs, leaf-spine fabrics, layered paths",
         "bounded memory at ~5000 switches; path-table bytes linear in DCs per DCI switch");

  bool ok = true;
  std::vector<ScaleRow> rows;
  TablePrinter table({"DCs", "switches", "DCIs", "flows", "p50", "p99", "sim events", "wall ms",
                      "Mevents/s", "topo", "path tables", "B/DCI", "static fwd", "peak RSS"});
  for (const int dcs : points) {
    const ScaleRow row = RunPoint(dcs, flows, /*shards=*/1);
    ok = ok && row.completed;
    table.AddRow({std::to_string(row.dcs), std::to_string(row.switches), std::to_string(row.dcis),
                  std::to_string(row.flows), Fmt(row.p50), Fmt(row.p99),
                  std::to_string(row.events), Fmt(row.wall_ms, 1), Fmt(row.mev, 2),
                  FmtBytes(row.topo_bytes), FmtBytes(row.path_table_bytes),
                  Fmt(PerDci(row.path_table_bytes, row.dcis), 0),
                  FmtBytes(row.static_table_bytes), FmtBytes(row.peak_rss_bytes)});
    rows.push_back(row);
  }
  table.Print();
  Note("path tables live on DCI switches only; B/DCI = interned arena + slot bytes "
       "per DCI. Leaf/spine switches carry CSR static tables and a lazily "
       "allocated (empty) flow cache.");

  Banner("Shard equivalence on the smallest point",
         "same generated topology, layered paths, and digest at shards {1,2,4}");

  bool shard_match = true;
  std::vector<std::pair<int, uint64_t>> shard_digests;
  TablePrinter stable({"shards", "sim events", "wall ms", "digest", "match"});
  uint64_t base_digest = 0;
  for (const int shards : {1, 2, 4}) {
    const ScaleRow row = RunPoint(points.front(), flows, shards);
    if (shards == 1) {
      base_digest = row.digest;
    }
    const bool match = row.digest == base_digest;
    shard_match = shard_match && match;
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(row.digest));
    stable.AddRow({std::to_string(shards), std::to_string(row.events), Fmt(row.wall_ms, 1), hex,
                   match ? "yes" : "NO"});
    shard_digests.emplace_back(shards, row.digest);
  }
  stable.Print();
  ok = ok && shard_match;

  std::string json = "{\n  \"bench\": \"scalability_v2\",\n  \"quick\": " +
                     std::string(quick ? "true" : "false") + ",\n  \"flows_per_point\": " +
                     std::to_string(flows) + ",\n  \"points\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"dcs\": %d, \"switches\": %d, \"dcis\": %d, \"flows\": %d, "
                  "\"events\": %llu, \"wall_ms\": %.1f, \"events_per_sec\": %.0f,\n"
                  "     \"p50_slowdown\": %.3f, \"p99_slowdown\": %.3f,\n"
                  "     \"topo_bytes\": %zu, \"path_table_bytes\": %zu, "
                  "\"path_table_bytes_per_dci\": %.0f,\n"
                  "     \"static_table_bytes\": %zu, \"peak_rss_bytes\": %zu, "
                  "\"completed\": %s}%s\n",
                  r.dcs, r.switches, r.dcis, r.flows,
                  static_cast<unsigned long long>(r.events), r.wall_ms, r.mev * 1e6, r.p50, r.p99,
                  r.topo_bytes, r.path_table_bytes, PerDci(r.path_table_bytes, r.dcis),
                  r.static_table_bytes, r.peak_rss_bytes, r.completed ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"shard_check\": {\"dcs\": " + std::to_string(points.front()) +
          ", \"digests\": [\n";
  for (size_t i = 0; i < shard_digests.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "    {\"shards\": %d, \"digest\": \"%016llx\"}%s\n",
                  shard_digests[i].first,
                  static_cast<unsigned long long>(shard_digests[i].second),
                  i + 1 < shard_digests.size() ? "," : "");
    json += buf;
  }
  json += std::string("  ], \"match\": ") + (shard_match ? "true" : "false") + "}\n}\n";

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  } else {
    std::fputs(json.c_str(), stdout);
  }
  // Incomplete flows or a shard digest mismatch is a correctness bug.
  return ok ? 0 : 1;
}
