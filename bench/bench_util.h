// Shared presets and output helpers for the figure benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/scenario.h"
#include "harness/table.h"

namespace lcmp {

// Expands and runs a sweep spec on the parallel engine (all cores by
// default; set LCMP_BENCH_JOBS to pin the worker count, 1 = sequential).
// Results are deterministic regardless of the job count. A malformed spec
// is a bench bug: report and abort.
inline std::vector<RunOutcome> RunSpec(const SweepSpec& spec) {
  SweepRunnerOptions opts;
  if (const char* jobs = std::getenv("LCMP_BENCH_JOBS")) {
    opts.jobs = std::atoi(jobs);
  }
  std::vector<RunOutcome> outcomes;
  std::string error;
  if (!RunSweep(spec, opts, &outcomes, &error)) {
    std::fprintf(stderr, "sweep spec error: %s\n", error.c_str());
    std::exit(1);
  }
  return outcomes;
}

// The display label one axis contributed to a run's cell (falls back to the
// full run label if the axis is absent).
inline std::string CellLabel(const RunOutcome& outcome, const std::string& field) {
  for (const auto& [axis_field, label] : outcome.run.cell) {
    if (axis_field == field) {
      return label;
    }
  }
  return outcome.run.label;
}

// Baseline configuration for the 8-DC testbed experiments (Fig. 1/5/6/9/10/11).
inline ExperimentConfig Testbed8Config() {
  ExperimentConfig c;
  c.topo = TopologyKind::kTestbed8;
  c.pairing = PairingKind::kEndpointPair;
  c.workload = WorkloadKind::kWebSearch;
  c.load = 0.30;
  c.num_flows = 600;
  c.hosts_per_dc = 8;
  c.seed = 2026;
  return c;
}

// Baseline configuration for the 13-DC BSONetwork experiments (Fig. 7/8).
inline ExperimentConfig Bso13Config() {
  ExperimentConfig c;
  c.topo = TopologyKind::kBso13;
  c.pairing = PairingKind::kAllToAll;
  c.workload = WorkloadKind::kWebSearch;
  c.load = 0.30;
  c.num_flows = 1500;
  c.hosts_per_dc = 4;
  c.seed = 2026;
  return c;
}

// Prints the figure banner and the paper's expectation for the shape.
inline void Banner(const std::string& figure, const std::string& paper_expectation) {
  std::printf("\n########################################################################\n");
  std::printf("# %s\n", figure.c_str());
  std::printf("# Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("########################################################################\n");
}

inline void Note(const std::string& text) { std::printf("NOTE: %s\n", text.c_str()); }

}  // namespace lcmp
