// Shared presets and output helpers for the figure benches.
#pragma once

#include <cstdio>
#include <string>

#include "harness/experiment.h"
#include "harness/scenario.h"
#include "harness/table.h"

namespace lcmp {

// Baseline configuration for the 8-DC testbed experiments (Fig. 1/5/6/9/10/11).
inline ExperimentConfig Testbed8Config() {
  ExperimentConfig c;
  c.topo = TopologyKind::kTestbed8;
  c.pairing = PairingKind::kEndpointPair;
  c.workload = WorkloadKind::kWebSearch;
  c.cc = CcKind::kDcqcn;
  c.load = 0.30;
  c.num_flows = 600;
  c.hosts_per_dc = 8;
  c.seed = 2026;
  return c;
}

// Baseline configuration for the 13-DC BSONetwork experiments (Fig. 7/8).
inline ExperimentConfig Bso13Config() {
  ExperimentConfig c;
  c.topo = TopologyKind::kBso13;
  c.pairing = PairingKind::kAllToAll;
  c.workload = WorkloadKind::kWebSearch;
  c.cc = CcKind::kDcqcn;
  c.load = 0.30;
  c.num_flows = 1500;
  c.hosts_per_dc = 4;
  c.seed = 2026;
  return c;
}

// Prints the figure banner and the paper's expectation for the shape.
inline void Banner(const std::string& figure, const std::string& paper_expectation) {
  std::printf("\n########################################################################\n");
  std::printf("# %s\n", figure.c_str());
  std::printf("# Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("########################################################################\n");
}

inline void Note(const std::string& text) { std::printf("NOTE: %s\n", text.c_str()); }

}  // namespace lcmp
