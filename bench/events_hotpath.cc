// Event hot-path microbenchmark: InlineEvent vs the seed std::function loop.
//
// Reproduces the simulator's steady state — a fixed population of in-flight
// "packets", each delivery scheduling the next hop with a closure that
// captures the Packet by value — against two queues with identical heap
// algorithms and (time, seq) FIFO tie-break:
//   * fn_queue:     EventFn = std::function<void()>  (the seed implementation;
//                   a ~80 B capture exceeds the 16 B libstdc++ SBO, so every
//                   event heap-allocates)
//   * inline_queue: the production EventQueue over InlineEvent (capture lives
//                   in the queue entry; steady state allocates nothing)
//
// Reports events/sec and allocations/event (measured with a real operator
// new/delete override, cross-checked against InlineEvent's inline/heap
// counters) and emits JSON for the BENCH_*.json trajectory:
//   --json=PATH or LCMP_BENCH_JSON=PATH writes the JSON file (next to the
//   other bench outputs); otherwise the JSON goes to stdout.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/shard_context.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "transport/seq_window.h"

// --- allocation counter -----------------------------------------------------
// Counts every global operator new; the benchmark reads deltas around each
// timed section. Atomic so the --shards mode's worker threads count too;
// relaxed ordering keeps the hot path at one uncontended RMW.
static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lcmp {
namespace {

// The seed event queue: same hole-based binary heap and FIFO tie-break as
// sim/event_queue.cc, but storing std::function<void()> like the original
// implementation did.
class FnEventQueue {
 public:
  using Fn = std::function<void()>;

  uint64_t Push(TimeNs time, Fn fn) {
    const uint64_t seq = next_seq_++;
    heap_.push_back(Entry{time, seq, std::move(fn)});
    SiftUp(heap_.size() - 1);
    return seq;
  }

  Fn Pop(TimeNs* time) {
    Entry& top = heap_.front();
    *time = top.time;
    Fn fn = std::move(top.fn);
    Entry last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = std::move(last);
      SiftDown(0);
    }
    return fn;
  }

  bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    TimeNs time;
    uint64_t seq;
    Fn fn;
  };
  static bool Less(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }
  void SiftUp(size_t i) {
    Entry moving = std::move(heap_[i]);
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!Less(moving, heap_[parent])) {
        break;
      }
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(moving);
  }
  void SiftDown(size_t i) {
    Entry moving = std::move(heap_[i]);
    const size_t n = heap_.size();
    while (true) {
      size_t best = 2 * i + 1;
      if (best >= n) {
        break;
      }
      if (best + 1 < n && Less(heap_[best + 1], heap_[best])) {
        ++best;
      }
      if (!Less(heap_[best], moving)) {
        break;
      }
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(moving);
  }

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

struct RunResult {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  uint64_t checksum = 0;  // keeps the closures from being optimized away
};

// Replica of the pre-refactor Packet: the INT telemetry stack rode along in
// every packet (and thus in every scheduled closure), which is what pushed
// the seed's per-event captures to ~500 B and onto the heap. The reference
// loop schedules this so the baseline reproduces the seed implementation's
// cost honestly.
struct SeedPacket {
  Packet slim;
  bool int_enabled = false;
  uint8_t int_hops = 0;
  std::array<IntRecord, kMaxIntHops> int_rec{};
};
static_assert(sizeof(SeedPacket) > 400, "seed replica should match the old fat Packet");

// Shared loop state lives behind one pointer so the per-event closure is
// "context pointer + Packet by value" — the simulator's link-delivery shape
// and size (and small enough for the inline buffer).
template <typename Queue>
struct HopContext {
  Queue* q = nullptr;
  uint64_t processed = 0;
  uint64_t checksum = 0;
  uint64_t rng = 0x9e3779b97f4a7c15ull;  // deterministic LCG hop delays
  uint64_t total = 0;
  TimeNs now = 0;
  // Metric handles for the instrumented variant; living in the shared
  // context (not the closure) mirrors how the simulator keeps obs state
  // behind the Port pointer so event closures never grow.
  obs::Counter* c_events = nullptr;
  obs::Counter* c_bytes = nullptr;

  TimeNs NextDelay() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<TimeNs>(1 + (rng >> 33) % 10000);
  }
};

// One self-propagating closure per in-flight packet. PacketT is the slim
// Packet for the InlineEvent queue and SeedPacket for the reference queue.
// kInstrumented adds the production per-packet observability calls (two
// counter updates + one flight-recorder trace) so the bench measures their
// cost directly: with obs off each call is one predictable branch, which is
// exactly what the <2% regression gate guards.
template <typename Queue, typename PacketT, bool kInstrumented = false>
struct Hop {
  HopContext<Queue>* ctx;
  PacketT pkt;
  void operator()() {
    uint32_t& seq = SeqOf(pkt);
    ++ctx->processed;
    ctx->checksum += seq + static_cast<uint64_t>(SizeOf(pkt));
    if constexpr (kInstrumented) {
      ctx->c_events->Inc();
      ctx->c_bytes->Add(SizeOf(pkt));
      LCMP_TRACE(obs::TraceEv::kEnqueue, ctx->now, seq, /*node=*/0, /*port=*/0, SizeOf(pkt));
    }
    if (ctx->processed >= ctx->total) {
      return;
    }
    ++seq;
    ctx->q->Push(ctx->now + ctx->NextDelay(), Hop{*this});
  }
  static Packet& SlimOf(Packet& p) { return p; }
  static Packet& SlimOf(SeedPacket& p) { return p.slim; }
  static uint32_t& SeqOf(PacketT& p) { return SlimOf(p).seq; }
  static uint32_t SizeOf(PacketT& p) { return SlimOf(p).size_bytes; }
};

static_assert(InlineEvent::kFitsInline<Hop<EventQueue, Packet>>,
              "benchmark hop closure must exercise the inline path");
static_assert(InlineEvent::kFitsInline<Hop<EventQueue, Packet, true>>,
              "instrumentation must not grow the hop closure");

// Steady-state hop loop: `population` packets in flight, `total_events`
// deliveries, each delivery re-scheduling the packet's next hop. `shard >= 0`
// installs a shard obs context for the loop, the way Simulator::RunWindow
// does on a PDES worker, so instrumented calls exercise the per-lane
// counter/ring paths instead of lane 0.
template <typename PacketT, bool kInstrumented = false, typename Queue>
RunResult RunHopLoop(Queue& q, int population, uint64_t total_events, int shard = -1) {
  HopContext<Queue> ctx;
  ctx.q = &q;
  ctx.total = total_events;
  obs::ShardContext obs_ctx;
  obs_ctx.lane = shard >= 0 ? obs::LaneForShard(shard) : 0;
  obs_ctx.shard = shard;
  obs_ctx.sim_now = &ctx.now;
  obs_ctx.event_key = &ctx.processed;  // monotonic per thread; fine for a bench
  obs::ScopedShardContext scoped(shard >= 0 ? obs_ctx : obs::CurrentShardContext());
  if constexpr (kInstrumented) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
    ctx.c_events = reg.GetCounter("bench.hop.events");
    ctx.c_bytes = reg.GetCounter("bench.hop.bytes");
  }

  for (int i = 0; i < population; ++i) {
    PacketT pkt{};
    Packet& slim = Hop<Queue, PacketT>::SlimOf(pkt);
    slim.type = PacketType::kData;
    slim.seq = static_cast<uint32_t>(i);
    slim.size_bytes = 1064;
    q.Push(ctx.NextDelay(), Hop<Queue, PacketT, kInstrumented>{&ctx, pkt});
  }

  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  while (!q.empty() && ctx.processed < total_events) {
    auto fn = q.Pop(&ctx.now);
    fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);

  // Drain leftovers outside the timed section.
  while (!q.empty()) {
    q.Pop(&ctx.now);
  }

  RunResult r;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = secs > 0 ? static_cast<double>(ctx.processed) / secs : 0;
  r.allocs_per_event =
      ctx.processed > 0 ? static_cast<double>(allocs_after - allocs_before) / ctx.processed : 0;
  r.checksum = ctx.checksum;
  return r;
}

// Sharded pass: N worker threads, each with its own queue and shard obs
// context, the same thread topology as the PDES engine's windows. Throughput
// is aggregate events over the outer wall time (thread create/join included,
// as it is in a real windowed run); the checksum sums the per-thread loops so
// plain and instrumented passes can still be compared for identical work.
template <bool kInstrumented>
RunResult RunShardedPass(int shards, int population, uint64_t total_events) {
  std::vector<RunResult> per(static_cast<size_t>(shards));
  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    threads.emplace_back([&per, s, shards, population, total_events] {
      EventQueue q;
      per[static_cast<size_t>(s)] = RunHopLoop<Packet, kInstrumented>(
          q, population / shards, total_events / shards, s);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);

  RunResult r;
  const uint64_t processed = (total_events / shards) * static_cast<uint64_t>(shards);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = secs > 0 ? static_cast<double>(processed) / secs : 0;
  r.allocs_per_event =
      processed > 0 ? static_cast<double>(allocs_after - allocs_before) / processed : 0;
  for (const RunResult& p : per) {
    r.checksum += p.checksum;
  }
  return r;
}

// --- IRN OoO-tracker comparison ---------------------------------------------
// The transport's receiver used to track buffered out-of-order segments in a
// std::set<uint32_t> (one red-black node allocation per buffered segment);
// SeqWindow replaces it with a fixed ring bitmap whose only allocation is the
// Reset() outside the packet path. Both loops run the identical arrival
// pattern: per round, segments [base+1, base+window) land in a permuted
// order (worst case: everything buffers behind one hole), then the hole
// fills and the run drains in sequence.
struct OooResult {
  double ops_per_sec = 0;
  uint64_t allocs = 0;
  uint64_t drained = 0;  // checksum: both trackers must drain the same count
};

// 1217 is coprime to window-1 = 2047 (= 23 * 89), so the stride walk visits
// every buffered slot exactly once per round.
inline uint32_t OooPermuted(uint32_t base, uint32_t k, uint32_t window) {
  return base + 1 + (k * 1217) % (window - 1);
}

OooResult RunOooSetLoop(uint32_t window, int rounds) {
  std::set<uint32_t> ooo;
  uint32_t expected = 0;
  OooResult r;
  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    const uint32_t base = expected;
    for (uint32_t k = 1; k < window; ++k) {
      ooo.insert(OooPermuted(base, k, window));
    }
    ++expected;  // the hole fills
    auto it = ooo.begin();
    while (it != ooo.end() && *it == expected) {
      ++expected;
      it = ooo.erase(it);
      ++r.drained;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double ops = static_cast<double>(rounds) * window;
  r.ops_per_sec = secs > 0 ? ops / secs : 0;
  return r;
}

OooResult RunOooBitmapLoop(uint32_t window, int rounds) {
  SeqWindow ooo;
  ooo.Reset(0, window);  // the tracker's one allocation, outside the timed loop
  uint32_t expected = 0;
  OooResult r;
  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    const uint32_t base = expected;
    for (uint32_t k = 1; k < window; ++k) {
      ooo.Insert(OooPermuted(base, k, window));
    }
    ++expected;
    while (ooo.TakeIfSet(expected)) {
      ++expected;
      ++r.drained;
    }
    ooo.AdvanceBaseTo(expected);
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double ops = static_cast<double>(rounds) * window;
  r.ops_per_sec = secs > 0 ? ops / secs : 0;
  return r;
}

}  // namespace
}  // namespace lcmp

int main(int argc, char** argv) {
  using namespace lcmp;

  std::string json_path;
  std::string obs_mode = "off";
  int shards = 1;
  if (const char* env = std::getenv("LCMP_BENCH_JSON")) {
    json_path = env;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--obs=", 6) == 0) {
      obs_mode = argv[i] + 6;
      if (obs_mode != "off" && obs_mode != "on") {
        std::fprintf(stderr, "unknown --obs mode '%s' (off|on)\n", obs_mode.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
      if (shards < 1 || shards > 16) {
        std::fprintf(stderr, "--shards must be in [1, 16], got '%s'\n", argv[i] + 9);
        return 2;
      }
    }
  }

  constexpr int kPopulation = 4096;     // in-flight packets ≈ heap size
  constexpr uint64_t kEvents = 4'000'000;

  // Warm-up pass sizes both heaps' backing vectors, then the measured pass
  // runs allocation-free where the callable representation allows it.
  FnEventQueue fn_q;
  RunHopLoop<SeedPacket>(fn_q, kPopulation, kEvents / 8);
  const RunResult fn_r = RunHopLoop<SeedPacket>(fn_q, kPopulation, kEvents);

  // Instrumented loop setup: the production per-packet obs calls compiled
  // in. --obs=off leaves the subsystems disabled and measures the cost of
  // the dormant branches (the <2% regression gate); --obs=on turns metrics
  // and tracing on and measures the full recording cost.
  if (obs_mode == "on") {
    obs::SetMetricsEnabled(true);
    obs::FlightRecorder::Instance().Configure(65536);
    obs::FlightRecorder::Instance().Enable(true);
  }

  EventQueue inline_q;
  EventQueue obs_q;
  RunHopLoop<Packet>(inline_q, kPopulation, kEvents / 8);
  RunHopLoop<Packet, /*kInstrumented=*/true>(obs_q, kPopulation, kEvents / 8);

  // Best-of-3 with interleaved passes: the plain-vs-instrumented delta is
  // single-digit percent at most, well inside run-to-run scheduling noise,
  // so each variant's best pass is compared rather than one sample of each.
  RunResult inline_r;
  RunResult obs_r;
  InlineEvent::ResetCounters();
  for (int rep = 0; rep < 3; ++rep) {
    const RunResult a = RunHopLoop<Packet>(inline_q, kPopulation, kEvents);
    const RunResult b = RunHopLoop<Packet, /*kInstrumented=*/true>(obs_q, kPopulation, kEvents);
    if (a.events_per_sec > inline_r.events_per_sec) {
      inline_r = a;
    }
    if (b.events_per_sec > obs_r.events_per_sec) {
      obs_r = b;
    }
  }
  const InlineEvent::Counters counters = InlineEvent::counters();
  const double obs_overhead_pct =
      inline_r.events_per_sec > 0
          ? (inline_r.events_per_sec - obs_r.events_per_sec) / inline_r.events_per_sec * 100.0
          : 0;

  if (fn_r.checksum != inline_r.checksum || obs_r.checksum != inline_r.checksum) {
    std::fprintf(stderr, "checksum mismatch: queues executed different work\n");
    return 1;
  }

  // Sharded variant (--shards=N): the same plain-vs-instrumented comparison
  // run on N worker threads under per-shard obs contexts, so the overhead
  // gate also covers the per-lane counter/ring paths under real concurrency.
  RunResult sharded_plain;
  RunResult sharded_obs;
  double sharded_overhead_pct = 0;
  if (shards > 1) {
    RunShardedPass<false>(shards, kPopulation, kEvents / 8);  // warm-up
    RunShardedPass<true>(shards, kPopulation, kEvents / 8);
    for (int rep = 0; rep < 3; ++rep) {
      const RunResult a = RunShardedPass<false>(shards, kPopulation, kEvents);
      const RunResult b = RunShardedPass<true>(shards, kPopulation, kEvents);
      if (a.events_per_sec > sharded_plain.events_per_sec) {
        sharded_plain = a;
      }
      if (b.events_per_sec > sharded_obs.events_per_sec) {
        sharded_obs = b;
      }
    }
    if (sharded_plain.checksum != sharded_obs.checksum) {
      std::fprintf(stderr, "sharded checksum mismatch: passes executed different work\n");
      return 1;
    }
    sharded_overhead_pct =
        sharded_plain.events_per_sec > 0
            ? (sharded_plain.events_per_sec - sharded_obs.events_per_sec) /
                  sharded_plain.events_per_sec * 100.0
            : 0;
  }

  const double speedup =
      fn_r.events_per_sec > 0 ? inline_r.events_per_sec / fn_r.events_per_sec : 0;

  // IRN OoO-tracker section: identical synthetic arrival pattern through the
  // old std::set tracker and the SeqWindow ring bitmap. The bitmap's timed
  // loop must be allocation-free — that is the point of the replacement.
  constexpr uint32_t kOooWindow = 2048;  // TransportConfig::ooo_window_segments
  constexpr int kOooRounds = 2000;
  RunOooSetLoop(kOooWindow, kOooRounds / 8);     // warm-up
  RunOooBitmapLoop(kOooWindow, kOooRounds / 8);  // sizes the bitmap once
  const OooResult ooo_set = RunOooSetLoop(kOooWindow, kOooRounds);
  const OooResult ooo_bitmap = RunOooBitmapLoop(kOooWindow, kOooRounds);
  if (ooo_set.drained != ooo_bitmap.drained) {
    std::fprintf(stderr, "ooo checksum mismatch: set drained %llu, bitmap drained %llu\n",
                 static_cast<unsigned long long>(ooo_set.drained),
                 static_cast<unsigned long long>(ooo_bitmap.drained));
    return 1;
  }
  // Reset() ran before the timed section, so any allocation here means the
  // packet-path operations (Insert/TakeIfSet/AdvanceBaseTo) regressed.
  if (ooo_bitmap.allocs != 0) {
    std::fprintf(stderr, "SeqWindow hot path allocated %llu times (must be 0)\n",
                 static_cast<unsigned long long>(ooo_bitmap.allocs));
    return 1;
  }
  const double ooo_speedup =
      ooo_set.ops_per_sec > 0 ? ooo_bitmap.ops_per_sec / ooo_set.ops_per_sec : 0;

  std::printf("events_hotpath: %llu events, population %d\n",
              static_cast<unsigned long long>(kEvents), kPopulation);
  std::printf("  std::function queue : %12.0f events/s  %.3f allocs/event\n",
              fn_r.events_per_sec, fn_r.allocs_per_event);
  std::printf("  InlineEvent queue   : %12.0f events/s  %.3f allocs/event  "
              "(%llu inline, %llu heap)\n",
              inline_r.events_per_sec, inline_r.allocs_per_event,
              static_cast<unsigned long long>(counters.inline_events),
              static_cast<unsigned long long>(counters.heap_events));
  std::printf("  speedup             : %.2fx\n", speedup);
  std::printf("  instrumented (obs=%s): %12.0f events/s  %.3f allocs/event  "
              "(%.2f%% vs plain inline)\n",
              obs_mode.c_str(), obs_r.events_per_sec, obs_r.allocs_per_event, obs_overhead_pct);
  if (shards > 1) {
    std::printf("  sharded x%d plain   : %12.0f events/s\n", shards,
                sharded_plain.events_per_sec);
    std::printf("  sharded x%d obs=%s  : %12.0f events/s  (%.2f%% vs sharded plain)\n", shards,
                obs_mode.c_str(), sharded_obs.events_per_sec, sharded_overhead_pct);
  }
  std::printf("  ooo set tracker     : %12.0f ops/s  %llu allocs\n", ooo_set.ops_per_sec,
              static_cast<unsigned long long>(ooo_set.allocs));
  std::printf("  ooo bitmap tracker  : %12.0f ops/s  %llu allocs  (%.2fx)\n",
              ooo_bitmap.ops_per_sec, static_cast<unsigned long long>(ooo_bitmap.allocs),
              ooo_speedup);

  char sharded_json[320] = "";
  if (shards > 1) {
    std::snprintf(sharded_json, sizeof(sharded_json),
                  "  \"sharded\": {\"plain_events_per_sec\": %.0f, "
                  "\"obs_events_per_sec\": %.0f, \"obs_overhead_pct\": %.3f},\n",
                  sharded_plain.events_per_sec, sharded_obs.events_per_sec,
                  sharded_overhead_pct);
  }

  char json[1792];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"events_hotpath\",\n"
      "  \"events\": %llu,\n"
      "  \"population\": %d,\n"
      "  \"shards\": %d,\n"
      "  \"fn_queue\": {\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f},\n"
      "  \"inline_queue\": {\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f,\n"
      "                   \"inline_events\": %llu, \"heap_events\": %llu},\n"
      "  \"speedup\": %.3f,\n"
      "  \"obs_mode\": \"%s\",\n"
      "  \"obs_queue\": {\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f},\n"
      "%s"
      "  \"ooo_set\": {\"ops_per_sec\": %.0f, \"allocs\": %llu},\n"
      "  \"ooo_bitmap\": {\"ops_per_sec\": %.0f, \"allocs\": %llu},\n"
      "  \"ooo_speedup\": %.3f,\n"
      "  \"obs_overhead_pct\": %.3f\n"
      "}\n",
      static_cast<unsigned long long>(kEvents), kPopulation, shards, fn_r.events_per_sec,
      fn_r.allocs_per_event, inline_r.events_per_sec, inline_r.allocs_per_event,
      static_cast<unsigned long long>(counters.inline_events),
      static_cast<unsigned long long>(counters.heap_events), speedup, obs_mode.c_str(),
      obs_r.events_per_sec, obs_r.allocs_per_event, sharded_json, ooo_set.ops_per_sec,
      static_cast<unsigned long long>(ooo_set.allocs), ooo_bitmap.ops_per_sec,
      static_cast<unsigned long long>(ooo_bitmap.allocs), ooo_speedup, obs_overhead_pct);

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json, f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  } else {
    std::fputs(json, stdout);
  }
  return 0;
}
