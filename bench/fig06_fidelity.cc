// Figure 6 (simulator fidelity): correlate FCT slowdowns measured in
// emulation mode (the SoftRoCE/Mininet testbed stand-in) against pure
// simulation mode under identical settings at 30% load.
//
// Expected shape: near-linear correlation; the paper reports Pearson 95%
// for p50 and 97% for p99, validating the simulator for the larger-scale
// experiments.
#include <vector>

#include "bench/bench_util.h"
#include "stats/pearson.h"

int main() {
  using namespace lcmp;
  Banner("Figure 6 - simulator fidelity: emulation vs simulation slowdowns",
         "near-linear correlation, Pearson ~0.95 (p50) / ~0.97 (p99)");

  ExperimentConfig base = Testbed8Config();
  base.num_flows = 400;

  // Policy is the slow axis, emulation the fast one, so outcomes come back
  // as (sim, emu) pairs per policy.
  SweepSpec spec(base);
  spec.Policies({PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kLcmp})
      .Axis("emulation", {"false", "true"});
  const auto outcomes = RunSpec(spec);

  TablePrinter table({"policy", "size bucket", "sim p50", "emu p50", "sim p99", "emu p99"});
  std::vector<double> sim_p50, emu_p50, sim_p99, emu_p99;
  for (size_t i = 0; i + 1 < outcomes.size(); i += 2) {
    const ExperimentResult& sim_r = outcomes[i].result;
    const ExperimentResult& emu_r = outcomes[i + 1].result;
    const std::string policy = CellLabel(outcomes[i], "policy");
    for (const auto& sb : sim_r.buckets) {
      for (const auto& eb : emu_r.buckets) {
        if (sb.size_hi == eb.size_hi && sb.stats.count >= 5 && eb.stats.count >= 5) {
          sim_p50.push_back(sb.stats.p50);
          emu_p50.push_back(eb.stats.p50);
          sim_p99.push_back(sb.stats.p99);
          emu_p99.push_back(eb.stats.p99);
          table.AddRow({policy, FmtBytes(sb.size_hi), Fmt(sb.stats.p50),
                        Fmt(eb.stats.p50), Fmt(sb.stats.p99), Fmt(eb.stats.p99)});
        }
      }
    }
  }
  std::printf("\n== Fig. 6 - per-bucket slowdowns, simulation vs emulation ==\n");
  table.Print();

  const double r50 = PearsonCorrelation(sim_p50, emu_p50);
  const double r99 = PearsonCorrelation(sim_p99, emu_p99);
  std::printf("\nPearson correlation (p50): %.3f   [paper: 0.95]\n", r50);
  std::printf("Pearson correlation (p99): %.3f   [paper: 0.97]\n", r99);
  Note("points pool all three policies so the scatter spans the slowdown range, "
       "as in the paper's scheme-vs-scheme scatter.");
  return 0;
}
