// Figure 11a (ablation): per-flow-size p50/p99 slowdown for
//   rm-alpha (alpha=0, congestion-only), rm-beta (beta=0, path-only) and
//   full LCMP, WebSearch at 30% load, DCQCN, 8-DC topology.
//
// Expected shape (paper Sec. 7.1): rm-alpha blows up across nearly all
// sizes (flows land on high-delay routes, medians up ~3-4x); rm-beta keeps
// small/medium flows fine but fails for the largest transfers (elephants
// herd onto the same paths, tails up ~3x); full LCMP lowest and most stable.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 11a - ablation: rm-alpha / rm-beta / full LCMP",
         "rm-alpha hurts all sizes; rm-beta hurts the largest flows; full wins");

  ExperimentConfig base = Testbed8Config();
  base.policy = PolicyKind::kLcmp;
  SweepSpec spec(base);
  spec.Variants({{"lcmp.alpha=0", "rm-alpha"},  // path-quality removed
                 {"lcmp.beta=0", "rm-beta"},    // congestion removed
                 {"", "full"}});
  const std::vector<NamedResult> results = ToNamedResults(RunSpec(spec));

  PrintBucketTable("Fig. 11a - per-size p50/p99 slowdown", results);

  TablePrinter overall({"variant", "p50", "p99"});
  for (const NamedResult& nr : results) {
    overall.AddRow({nr.name, Fmt(nr.result.overall.p50), Fmt(nr.result.overall.p99)});
  }
  std::printf("\n== Fig. 11a - overall ==\n");
  overall.Print();
  return 0;
}
