// Future-work extension (paper Sec. 7.5): fine-grained flowlet steering with
// lightweight out-of-order tolerance.
//
// The paper pins each flow to one path because commodity RNICs collapse
// under reordering (Go-Back-N). Its future-work section proposes trading a
// small, controlled amount of reordering for faster congestion reaction via
// flowlet-level steering plus IRN-style OoO tracking. This bench implements
// and evaluates exactly that trade on the 8-DC topology at 50% load:
//   - flow-level LCMP (the paper's shipped design),
//   - flowlet LCMP (200 us gap) with a Go-Back-N receiver (shows the damage
//     reordering does to RNIC-style recovery), and
//   - flowlet LCMP with selective-retransmission OoO tolerance (the proposed
//     future design).
//
// Expected shape: flowlet+GBN suffers heavy retransmission; flowlet+OoO
// removes the retransmit blowup and matches or beats flow-level stickiness.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Extension (Sec. 7.5) - flowlet steering with OoO tolerance",
         "flowlet+GBN: retransmit blowup; flowlet+OoO: no blowup, responsive");

  ExperimentConfig base = Testbed8Config();
  base.policy = PolicyKind::kLcmp;
  base.load = 0.5;
  base.num_flows = 400;
  SweepSpec spec(base);
  spec.Variants({{"", "flow-level LCMP (paper)"},
                 {"lcmp.flow_idle_timeout_us=200 lcmp.gc_period_ms=10",
                  "flowlet LCMP + Go-Back-N"},
                 {"lcmp.flow_idle_timeout_us=200 lcmp.gc_period_ms=10 ooo_tolerance=true",
                  "flowlet LCMP + OoO tolerance"}});

  TablePrinter table({"variant", "flows", "p50 slowdown", "p99 slowdown", "retransmits"});
  for (const RunOutcome& o : RunSpec(spec)) {
    table.AddRow({o.run.label, std::to_string(o.result.flows_completed),
                  Fmt(o.result.overall.p50), Fmt(o.result.overall.p99),
                  std::to_string(o.result.retransmitted_packets)});
  }
  std::printf("\n== Flowlet steering trade-off (WebSearch @ 50%%, 8-DC) ==\n");
  table.Print();
  Note("flowlet gap = 200 us of flow idleness; OoO tolerance = bounded receiver "
       "reorder buffer + selective retransmission (IRN-style).");
  return 0;
}
