// Future-work extension (paper Sec. 7.5): fine-grained flowlet steering with
// lightweight out-of-order tolerance.
//
// The paper pins each flow to one path because commodity RNICs collapse
// under reordering (Go-Back-N). Its future-work section proposes trading a
// small, controlled amount of reordering for faster congestion reaction via
// flowlet-level steering plus IRN-style OoO tracking. This bench implements
// and evaluates exactly that trade on the 8-DC topology at 50% load:
//   - flow-level LCMP (the paper's shipped design),
//   - flowlet LCMP (200 us gap) with a Go-Back-N receiver (shows the damage
//     reordering does to RNIC-style recovery), and
//   - flowlet LCMP with selective-retransmission OoO tolerance (the proposed
//     future design).
//
// Expected shape: flowlet+GBN suffers heavy retransmission; flowlet+OoO
// removes the retransmit blowup and matches or beats flow-level stickiness.
#include "bench/bench_util.h"
#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "stats/fct_recorder.h"
#include "workload/traffic_gen.h"

namespace {

struct Variant {
  const char* name;
  lcmp::TimeNs flowlet_gap;  // 0 = flow-level stickiness
  bool ooo;
};

struct Outcome {
  lcmp::SlowdownStats stats;
  int64_t retransmits = 0;
  int completed = 0;
};

Outcome Run(const Variant& v) {
  using namespace lcmp;
  ExperimentConfig c = Testbed8Config();
  c.load = 0.5;
  c.num_flows = 400;

  Testbed8Options topo_opts;
  topo_opts.fabric.hosts = c.hosts_per_dc;
  const Graph graph = BuildTestbed8(topo_opts);
  LcmpConfig lcmp_config = c.lcmp;
  if (v.flowlet_gap > 0) {
    lcmp_config.flow_idle_timeout = v.flowlet_gap;
    lcmp_config.gc_period = Milliseconds(10);
  }
  NetworkConfig ncfg;
  ncfg.seed = c.seed;
  Network net(graph, ncfg, MakeLcmpFactory(lcmp_config));
  ControlPlane cp(lcmp_config);
  cp.Provision(net);

  FctRecorder recorder(&net.graph());
  TransportConfig tcfg;
  tcfg.ooo_tolerance = v.ooo;
  Simulator& sim = net.sim();
  RdmaTransport transport(&net, tcfg, c.cc, [&](const FlowRecord& rec) {
    recorder.OnComplete(rec);
    if (recorder.completed() >= c.num_flows) {
      sim.Stop();
    }
  });
  const auto pairs = BuildPairing(c, graph.num_dcs());
  TrafficGenConfig traffic;
  traffic.workload = c.workload;
  traffic.offered_bps = OfferedLoadForUtilization(graph, net.routes(), pairs, c.load);
  traffic.num_flows = c.num_flows;
  traffic.seed = Mix64(c.seed ^ 0x7ea1);
  for (const FlowSpec& f : GenerateTraffic(graph, pairs, traffic)) {
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();
  sim.Run(c.horizon);

  Outcome out;
  out.stats = recorder.Overall();
  out.retransmits = transport.retransmitted_packets();
  out.completed = recorder.completed();
  return out;
}

}  // namespace

int main() {
  using namespace lcmp;
  Banner("Extension (Sec. 7.5) - flowlet steering with OoO tolerance",
         "flowlet+GBN: retransmit blowup; flowlet+OoO: no blowup, responsive");

  const Variant variants[] = {
      {"flow-level LCMP (paper)", 0, false},
      {"flowlet LCMP + Go-Back-N", Microseconds(200), false},
      {"flowlet LCMP + OoO tolerance", Microseconds(200), true},
  };
  TablePrinter table({"variant", "flows", "p50 slowdown", "p99 slowdown", "retransmits"});
  for (const Variant& v : variants) {
    const Outcome o = Run(v);
    table.AddRow({v.name, std::to_string(o.completed), Fmt(o.stats.p50), Fmt(o.stats.p99),
                  std::to_string(o.retransmits)});
  }
  std::printf("\n== Flowlet steering trade-off (WebSearch @ 50%%, 8-DC) ==\n");
  table.Print();
  Note("flowlet gap = 200 us of flow idleness; OoO tolerance = bounded receiver "
       "reorder buffer + selective retransmission (IRN-style).");
  return 0;
}
