// Section 4 (analysis of resource cost): microbenchmarks of the per-new-flow
// decision path and the per-packet fast path, plus the paper's storage
// accounting table.
//
// Expected shape: a new-flow decision costs on the order of 100 integer
// primitives (~tens of ns on a CPU); the established-flow fast path is a
// single O(1) lookup; the 48-port register file is 1152 B and a 50k-entry
// flow cache is ~1 MB.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "core/path_quality.h"
#include "harness/table.h"
#include "sim/network.h"
#include "topo/builders.h"

namespace lcmp {
namespace {

struct DecisionFixture {
  DecisionFixture()
      : graph(BuildTestbed8({})),
        net(graph, NetworkConfig{}, MakeLcmpFactory(LcmpConfig{})) {
    ControlPlane cp(LcmpConfig{});
    cp.Provision(net);
    sw = &net.switch_node(graph.DciOfDc(0));
    router = dynamic_cast<LcmpRouter*>(sw->policy());
    src = graph.HostsInDc(0)[0];
    dst = graph.HostsInDc(7)[0];
  }
  Packet MakePacket(uint32_t nonce) const {
    Packet p;
    p.type = PacketType::kData;
    p.src = src;
    p.dst = dst;
    p.key = FlowKey{src, dst, nonce, 4791, 17};
    p.flow_id = FlowIdOf(p.key);
    p.size_bytes = 4096;
    return p;
  }
  Graph graph;
  Network net;
  SwitchNode* sw = nullptr;
  LcmpRouter* router = nullptr;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
};

// Full new-flow decision: congestion refresh + 6 candidate scores + sort +
// filtered hash + flow-cache insert (m = 6 candidates, the paper's example).
void BM_NewFlowDecision(benchmark::State& state) {
  DecisionFixture f;
  const auto cands = f.sw->CandidatesTo(7);
  uint32_t nonce = 0;
  for (auto _ : state) {
    const Packet p = f.MakePacket(nonce++);
    benchmark::DoNotOptimize(f.router->SelectPort(*f.sw, p, cands));
  }
  state.SetLabel("m=6 candidates, cold flow each iteration");
}
BENCHMARK(BM_NewFlowDecision);

// Established-flow fast path: flow-cache hit + timestamp refresh.
void BM_EstablishedFlowLookup(benchmark::State& state) {
  DecisionFixture f;
  const auto cands = f.sw->CandidatesTo(7);
  const Packet p = f.MakePacket(1);
  f.router->SelectPort(*f.sw, p, cands);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.router->SelectPort(*f.sw, p, cands));
  }
  state.SetLabel("flow-cache hit");
}
BENCHMARK(BM_EstablishedFlowLookup);

// Congestion monitor: one port sample (Q/T/D register update).
void BM_CongestionSample(benchmark::State& state) {
  const LcmpConfig config;
  const BootstrapTables tables = BootstrapTables::Build(config);
  CongestionEstimator est(config, &tables, 1);
  TimeNs now = 0;
  int64_t q = 0;
  for (auto _ : state) {
    now += config.sample_interval;
    q = (q + 100'000) % 5'000'000;
    est.Sample(0, q, Gbps(100), now);
  }
}
BENCHMARK(BM_CongestionSample);

// C_path computation (Alg. 1 + Alg. 2 + Eq. 2) from raw attributes.
void BM_PathQualityScore(benchmark::State& state) {
  const LcmpConfig config;
  const BootstrapTables tables = BootstrapTables::Build(config);
  TimeNs d = Milliseconds(1);
  for (auto _ : state) {
    d = (d + Milliseconds(1)) % Milliseconds(200);
    benchmark::DoNotOptimize(CalcPathQuality(d, Gbps(100), config, tables));
  }
}
BENCHMARK(BM_PathQualityScore);

// Flow cache primitives at the paper's 50k capacity.
void BM_FlowCacheInsertLookup(benchmark::State& state) {
  FlowCache cache(50'000, Milliseconds(500));
  FlowId f = 1;
  for (auto _ : state) {
    cache.Insert(f, static_cast<PortIndex>(f % 6), static_cast<TimeNs>(f));
    benchmark::DoNotOptimize(cache.Lookup(f, static_cast<TimeNs>(f)));
    ++f;
  }
}
BENCHMARK(BM_FlowCacheInsertLookup);

void PrintAccountingTable() {
  std::printf("\n== Sec. 4 - storage accounting (paper vs this implementation) ==\n");
  TablePrinter t({"item", "paper", "measured"});
  t.AddRow({"per-port registers", "24 B", std::to_string(sizeof(PortCongestionState)) + " B"});
  t.AddRow({"48-port register file", "1152 B",
            std::to_string(48 * sizeof(PortCongestionState)) + " B"});
  t.AddRow({"per-flow cache entry", "20 B", std::to_string(FlowCache::kBytesPerEntry) + " B"});
  FlowCache cache(50'000, Milliseconds(500));
  t.AddRow({"50k-entry flow cache", "~1.2 MB (24 B/flow in paper's total)",
            Fmt(static_cast<double>(cache.MemoryBytes()) / (1024.0 * 1024.0), 2) + " MB"});
  const BootstrapTables tables = BootstrapTables::Build(LcmpConfig{});
  t.AddRow({"bootstrap tables", "a few dozen bytes", std::to_string(tables.MemoryBytes()) + " B"});
  t.Print();
  std::printf("Per-new-flow compute (paper): ~105 integer primitives for m=6; see the\n"
              "BM_NewFlowDecision timing above for the software-switch equivalent.\n");
}

}  // namespace
}  // namespace lcmp

int main(int argc, char** argv) {
  std::printf("########################################################################\n");
  std::printf("# Section 4 - resource cost analysis\n");
  std::printf("########################################################################\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lcmp::PrintAccountingTable();
  return 0;
}
