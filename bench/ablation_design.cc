// Design-choice ablations beyond the paper's figures, covering the knobs
// DESIGN.md calls out:
//   A) selection keep-fraction (Sec. 3.4 uses "the lower half"),
//   B) monitor sampling cadence (Sec. 3.3 "modest cadence"),
//   C) the queue-level reference span (our substitution for dividing the raw
//      multi-GB buffer: levels anchored to a line-rate time span), and
//   D) flow-cache capacity (Sec. 4 uses 50k entries).
//
// Expected shapes: keeping everything (no filter) admits high-delay routes
// into the hash and inflates tails; keeping only the minimum re-creates the
// herd effect under bursts; slower sampling delays congestion reaction;
// tiny flow caches thrash (evictions) without breaking correctness.
#include <functional>

#include "bench/bench_util.h"

namespace {

lcmp::ExperimentResult RunWith(const std::function<void(lcmp::LcmpConfig&)>& tweak,
                               double load = 0.5) {
  lcmp::ExperimentConfig c = lcmp::Testbed8Config();
  c.policy = lcmp::PolicyKind::kLcmp;
  c.load = load;
  c.num_flows = 400;
  tweak(c.lcmp);
  return lcmp::RunExperiment(c);
}

}  // namespace

int main() {
  using namespace lcmp;
  Banner("Design ablations - keep fraction, sampling cadence, queue scale, cache size",
         "keep-half balances quality vs herd; 100us sampling suffices; "
         "tiny caches thrash but stay correct");

  {
    TablePrinter t({"keep fraction", "p50", "p99"});
    const std::pair<int, int> fractions[] = {{1, 1}, {2, 3}, {1, 2}, {1, 3}, {1, 6}};
    for (const auto& [num, den] : fractions) {
      const ExperimentResult r = RunWith([&](LcmpConfig& lc) {
        lc.keep_num = num;
        lc.keep_den = den;
      });
      t.AddRow({std::to_string(num) + "/" + std::to_string(den), Fmt(r.overall.p50),
                Fmt(r.overall.p99)});
    }
    std::printf("\n== A) selection keep-fraction (paper default 1/2) ==\n");
    t.Print();
  }
  {
    TablePrinter t({"sample interval", "p50", "p99"});
    for (const TimeNs si : {Microseconds(10), Microseconds(100), Milliseconds(1),
                            Milliseconds(10)}) {
      const ExperimentResult r = RunWith([&](LcmpConfig& lc) { lc.sample_interval = si; });
      t.AddRow({Fmt(static_cast<double>(si) / kNsPerUs, 0) + " us", Fmt(r.overall.p50),
                Fmt(r.overall.p99)});
    }
    std::printf("\n== B) congestion-monitor sampling cadence ==\n");
    t.Print();
  }
  {
    TablePrinter t({"queue ref span", "p50", "p99"});
    for (const TimeNs ref : {Microseconds(100), Microseconds(400), Microseconds(1600),
                             Microseconds(6400)}) {
      const ExperimentResult r = RunWith([&](LcmpConfig& lc) { lc.queue_ref_time = ref; });
      t.AddRow({Fmt(static_cast<double>(ref) / kNsPerUs, 0) + " us", Fmt(r.overall.p50),
                Fmt(r.overall.p99)});
    }
    std::printf("\n== C) queue-level reference span (substitution knob) ==\n");
    t.Print();
  }
  {
    TablePrinter t({"cache capacity", "p50", "p99", "max evictions/switch"});
    for (const int cap : {256, 4096, 50'000}) {
      const ExperimentResult r = RunWith([&](LcmpConfig& lc) { lc.flow_cache_capacity = cap; });
      int64_t max_failover = 0;
      for (const auto& tel : r.telemetry) {
        max_failover = std::max(max_failover, tel.new_flow_decisions);
      }
      t.AddRow({std::to_string(cap), Fmt(r.overall.p50), Fmt(r.overall.p99),
                std::to_string(max_failover)});
    }
    std::printf("\n== D) flow-cache capacity (paper example 50k) ==\n");
    t.Print();
    Note("'max evictions/switch' reports new-flow decisions: with a thrashing "
         "cache the same flow is re-decided repeatedly.");
  }
  return 0;
}
