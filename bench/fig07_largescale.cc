// Figure 7 (system-wide validation): aggregate median and tail FCT slowdown
// for all-to-all inter-DC WebSearch traffic on the 13-DC BSONetwork topology
// at 30/50/80% load.
//
// Expected shape (paper Sec. 6.2.1): gains are moderate at the aggregate
// level because only ~25% of DC pairs have multiple candidate routes (the
// multipath wins are diluted by single-path flows): medians ~unchanged vs
// ECMP, p99 down a few percent, larger wins vs RedTE.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 7 - 13-DC system-wide FCT slowdown at 30/50/80% load",
         "median ~ECMP, p99 modestly better; diluted by single-path pairs");

  SweepSpec spec(Bso13Config());
  spec.Loads({0.30, 0.50, 0.80})
      .Policies({PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kRedte, PolicyKind::kLcmp});
  const auto cells = ToSweepCells(RunSpec(spec));
  PrintSlowdownTable("Fig. 7 - all-to-all aggregate (13-DC BSONetwork, DCQCN)", cells);

  if (!cells.empty()) {
    std::printf("\nTopology multipath statistic: %.1f%% of ordered DC pairs have >= 2 "
                "candidate routes [paper: 25.6%% of unordered pairs]\n",
                cells.front().result.multipath_pair_fraction * 100.0);
  }
  return 0;
}
