// Figure 5: median and tail FCT slowdown for WebSearch on the 8-DC testbed
// (SoftRoCE emulation mode) under 30%, 50% and 80% load, comparing ECMP,
// UCMP, RedTE and LCMP with DCQCN.
//
// Expected shape (paper Sec. 6.1): LCMP reduces median slowdown by 36-41%
// vs ECMP, ~76% vs UCMP, 36-54% vs RedTE; p99 reductions 56-68% vs ECMP,
// 45-64% vs UCMP, 73-77% vs RedTE; RedTE behaves like ECMP because its
// 100 ms control loop cannot track microsecond bursts.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 5 - testbed (emulation mode): FCT slowdown at 30/50/80% load",
         "LCMP lowest at every load; UCMP worst medians; RedTE ~ ECMP");

  ExperimentConfig base = Testbed8Config();
  base.emulation_mode = true;
  base.num_flows = 400;
  // Loads first: the slowest-varying axis, matching the legacy load-major
  // table order.
  SweepSpec spec(base);
  spec.Loads({0.30, 0.50, 0.80})
      .Policies({PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kRedte, PolicyKind::kLcmp});
  const auto cells = ToSweepCells(RunSpec(spec));
  PrintSlowdownTable("Fig. 5 - WebSearch on the 8-DC testbed (DCQCN, emulation mode)", cells);

  Note("'pXX vs LCMP' columns report the reduction LCMP achieves relative to that "
       "baseline at the same load (negative = LCMP lower/better).");
  return 0;
}
