// Figure 1 (motivation): per-link utilization (1b) and median/tail FCT
// slowdown (1c) for WebSearch at 30% load under DCQCN, comparing ECMP, UCMP
// and LCMP on the 8-DC topology.
//
// Expected shape: UCMP concentrates on the high-capacity/high-delay routes
// (through DC2/DC3) and leaves the low-delay 40G routes idle; ECMP's random
// hashing loads the 40G routes to the highest relative utilization; LCMP
// spreads across the low-delay set and achieves the lowest p50/p99.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 1 - motivation: link utilization & FCT under ECMP/UCMP/LCMP",
         "UCMP: 17%-class util on DC1-DC2 high-delay route, 0% on the 40G low-delay "
         "routes; ECMP: ~30% on the 40G routes; LCMP balances and wins both p50 and p99");

  SweepSpec spec(Testbed8Config());
  spec.Policies({PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kLcmp});
  std::vector<NamedResult> results;
  for (const RunOutcome& o : RunSpec(spec)) {
    results.push_back(NamedResult{CellLabel(o, "policy"), o.result});
  }

  PrintLinkUtilizationTable("Fig. 1b - per-link utilization (directed inter-DC links)",
                            results);

  TablePrinter fct({"policy", "p50 slowdown", "p99 slowdown"});
  for (const NamedResult& nr : results) {
    fct.AddRow({nr.name, Fmt(nr.result.overall.p50), Fmt(nr.result.overall.p99)});
  }
  std::printf("\n== Fig. 1c - median and tail FCT slowdown ==\n");
  fct.Print();

  Note("utilization rows dc1.dci->dc2.dci .. dc1.dci->dc7.dci are the six candidate "
       "first hops; classes are 200G/125ms, 200G/30ms, 100G/125ms, 100G/15ms, "
       "40G/25ms, 40G/5ms in that order.");
  return 0;
}
