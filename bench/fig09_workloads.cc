// Figure 9 (workload sensitivity): median and tail FCT slowdown for
// WebSearch, Facebook Hadoop and Alibaba Storage at 30% load with DCQCN on
// the 8-DC topology (DC1 <-> DC8 pair).
//
// Expected shape (paper Sec. 6.3.1): improvements persist across all three
// flow-size distributions; medians improve vs ECMP by ~26-36% and vs UCMP
// by ~76-80%; tails improve by ~58-69%.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Figure 9 - workload sensitivity at 30% load (DCQCN, 8-DC)",
         "LCMP wins medians and tails on every workload; UCMP worst medians");

  SweepSpec spec(Testbed8Config());
  spec.Workloads({WorkloadKind::kWebSearch, WorkloadKind::kFbHdp, WorkloadKind::kAliStorage})
      .Policies({PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kLcmp});

  TablePrinter table({"workload", "policy", "p50 slowdown", "p99 slowdown"});
  for (const RunOutcome& o : RunSpec(spec)) {
    table.AddRow({CellLabel(o, "workload"), CellLabel(o, "policy"),
                  Fmt(o.result.overall.p50), Fmt(o.result.overall.p99)});
  }
  std::printf("\n== Fig. 9 - three workloads, ECMP vs UCMP vs LCMP ==\n");
  table.Print();
  Note("AliStorage uses a shape-equivalent CDF (original trace proprietary); "
       "FbHdp is truncated at 30MB - see DESIGN.md substitutions.");
  return 0;
}
