// Herd-effect micro-experiment (paper Sec. 2.3 challenge 3 / Sec. 3.4).
//
// 120 identical flows start at the *same instant* from DC1 to DC8 on the
// dumbbell-like equal-candidate variant of the 8-DC topology (all six routes
// given identical delay/capacity so path quality cannot separate them).
// Policies compared:
//   - greedy min-cost: keep fraction 1/6 -> every simultaneous flow picks
//     the currently-cheapest egress (the "selection cascade" the paper warns
//     about: congestion state cannot update between simultaneous decisions),
//   - full LCMP: filter + hash inside the kept half,
//   - ECMP: oblivious hash (the no-information baseline).
//
// Expected shape: greedy herds the burst onto one egress (high max-queue and
// tail FCT); LCMP and ECMP spread it. LCMP then beats ECMP once asymmetry or
// background congestion exists (the other figures); here the point is purely
// the cascade.
#include "bench/bench_util.h"

int main() {
  using namespace lcmp;
  Banner("Herd effect - 120 simultaneous identical flows, symmetric 6-way topology",
         "greedy min-cost cascades onto one egress; LCMP's filter+hash and "
         "ECMP's hash spread the burst");

  ExperimentConfig base;
  base.topo = TopologyKind::kTestbed8Sym;
  base.pairing = PairingKind::kEndpointOneWay;
  base.policy = PolicyKind::kLcmp;
  base.burst_mode = true;
  base.burst_size_bytes = 2'000'000;  // identical elephants
  base.num_flows = 120;
  base.hosts_per_dc = 8;
  base.seed = 5;
  base.horizon = Seconds(60);
  SweepSpec spec(base);
  spec.Variants({{"lcmp.keep_num=1 lcmp.keep_den=6", "greedy min-cost (no filter+hash)"},
                 {"", "LCMP two-stage (Sec. 3.4)"},
                 {"policy=ecmp", "ECMP hash"}});

  TablePrinter table({"selection", "p50", "p99", "DC1 egresses used", "max egress queue"});
  for (const RunOutcome& o : RunSpec(spec)) {
    table.AddRow({o.run.label, Fmt(o.result.overall.p50), Fmt(o.result.overall.p99),
                  std::to_string(o.result.endpoint_egress_used),
                  FmtBytes(static_cast<uint64_t>(o.result.endpoint_max_queue_bytes))});
  }
  table.Print();
  Note("all six DC1->DC8 routes are identical (100G, 2x10ms), so only the "
       "selection mechanism differs; flows are 2MB each, arriving at t=0.");
  return 0;
}
