// Herd-effect micro-experiment (paper Sec. 2.3 challenge 3 / Sec. 3.4).
//
// 120 identical flows start at the *same instant* from DC1 to DC8 on the
// dumbbell-like equal-candidate variant of the 8-DC topology (all six routes
// given identical delay/capacity so path quality cannot separate them).
// Policies compared:
//   - greedy min-cost: keep fraction 1/6 -> every simultaneous flow picks
//     the currently-cheapest egress (the "selection cascade" the paper warns
//     about: congestion state cannot update between simultaneous decisions),
//   - full LCMP: filter + hash inside the kept half,
//   - ECMP: oblivious hash (the no-information baseline).
//
// Expected shape: greedy herds the burst onto one egress (high max-queue and
// tail FCT); LCMP and ECMP spread it. LCMP then beats ECMP once asymmetry or
// background congestion exists (the other figures); here the point is purely
// the cascade.
#include "bench/bench_util.h"
#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "stats/fct_recorder.h"
#include "workload/traffic_gen.h"

namespace {

// 8-DC topology with all six routes identical: 100G / 10 ms per leg.
lcmp::Graph SymmetricTestbed() {
  lcmp::Testbed8Options opts;
  for (auto& cls : opts.classes) {
    cls.rate_bps = lcmp::Gbps(100);
    cls.per_link_delay_ns = lcmp::Milliseconds(10);
  }
  opts.fabric.hosts = 8;
  return lcmp::BuildTestbed8(opts);
}

struct Outcome {
  lcmp::SlowdownStats stats;
  int64_t max_queue = 0;  // max egress occupancy on DC1's inter-DC ports
  int ports_used = 0;     // distinct DC1 egresses carrying burst traffic
};

Outcome Run(const char* variant) {
  using namespace lcmp;
  const Graph graph = SymmetricTestbed();
  LcmpConfig lcmp_config;
  PolicyFactory factory;
  if (std::string(variant) == "greedy") {
    lcmp_config.keep_num = 1;
    lcmp_config.keep_den = 6;  // keep exactly the cheapest candidate
    factory = MakeLcmpFactory(lcmp_config);
  } else if (std::string(variant) == "lcmp") {
    factory = MakeLcmpFactory(lcmp_config);
  } else {
    factory = MakePolicyFactory(PolicyKind::kEcmp, lcmp_config);
  }
  NetworkConfig ncfg;
  ncfg.seed = 5;
  Network net(graph, ncfg, factory);
  ControlPlane cp(lcmp_config);
  cp.Provision(net);

  FctRecorder recorder(&net.graph());
  const int num_flows = 120;
  Simulator& sim = net.sim();
  RdmaTransport transport(&net, TransportConfig{}, CcKind::kDcqcn,
                          [&](const FlowRecord& rec) {
                            recorder.OnComplete(rec);
                            if (recorder.completed() >= num_flows) {
                              sim.Stop();
                            }
                          });
  BurstConfig burst;
  burst.num_flows = num_flows;
  burst.fixed_size_bytes = 2'000'000;  // identical elephants
  burst.seed = 3;
  for (const FlowSpec& f : GenerateBurst(graph, {{0, 7}}, burst)) {
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();
  sim.Run(Seconds(60));

  Outcome out;
  out.stats = recorder.Overall();
  SwitchNode& dci1 = net.switch_node(graph.DciOfDc(0));
  for (const PathCandidate& c : dci1.CandidatesTo(7)) {
    const Port& p = dci1.port(c.port);
    out.max_queue = std::max(out.max_queue, p.max_queue_bytes());
    if (p.tx_bytes() > 1'000'000) {
      ++out.ports_used;
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace lcmp;
  Banner("Herd effect - 120 simultaneous identical flows, symmetric 6-way topology",
         "greedy min-cost cascades onto one egress; LCMP's filter+hash and "
         "ECMP's hash spread the burst");

  TablePrinter table({"selection", "p50", "p99", "DC1 egresses used", "max egress queue"});
  for (const char* v : {"greedy", "lcmp", "ecmp"}) {
    const Outcome o = Run(v);
    const char* name = std::string(v) == "greedy" ? "greedy min-cost (no filter+hash)"
                       : std::string(v) == "lcmp" ? "LCMP two-stage (Sec. 3.4)"
                                                  : "ECMP hash";
    table.AddRow({name, Fmt(o.stats.p50), Fmt(o.stats.p99), std::to_string(o.ports_used),
                  FmtBytes(static_cast<uint64_t>(o.max_queue))});
  }
  table.Print();
  Note("all six DC1->DC8 routes are identical (100G, 2x10ms), so only the "
       "selection mechanism differs; flows are 2MB each, arriving at t=0.");
  return 0;
}
