// Quickstart: build the paper's 8-DC topology, run the same WebSearch
// workload under ECMP and under LCMP, and compare FCT slowdowns.
//
//   $ ./examples/quickstart
//
// This exercises the whole public API surface: topology builders, the
// experiment harness, and the result statistics.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace lcmp;

  ExperimentConfig config;
  config.topo = TopologyKind::kTestbed8;      // Fig. 1a: six asymmetric routes
  config.pairing = PairingKind::kEndpointPair;  // DC1 <-> DC8 traffic
  config.workload = WorkloadKind::kWebSearch;
  config.load = 0.3;
  config.num_flows = 300;
  config.seed = 42;

  std::printf("Running WebSearch @ 30%% load on the 8-DC testbed topology...\n");

  config.policy = PolicyKind::kEcmp;
  const ExperimentResult ecmp = RunExperiment(config);

  config.policy = PolicyKind::kLcmp;
  const ExperimentResult lcmp_result = RunExperiment(config);

  TablePrinter table({"policy", "flows", "p50 slowdown", "p99 slowdown"});
  table.AddRow({"ECMP", std::to_string(ecmp.overall.count), Fmt(ecmp.overall.p50),
                Fmt(ecmp.overall.p99)});
  table.AddRow({"LCMP", std::to_string(lcmp_result.overall.count),
                Fmt(lcmp_result.overall.p50), Fmt(lcmp_result.overall.p99)});
  table.Print();

  std::printf("\nLCMP switch telemetry (control-plane view):\n");
  for (const SwitchTelemetry& t : lcmp_result.telemetry) {
    std::printf("  %-10s decisions=%-6lld cache_hits=%-8lld mem=%.2f KB\n", t.name.c_str(),
                static_cast<long long>(t.new_flow_decisions),
                static_cast<long long>(t.cache_hits),
                static_cast<double>(t.memory_bytes) / 1024.0);
  }
  return 0;
}
