// Data-plane fast-failover demo (Sec. 3.4): cut an inter-DC link while RDMA
// traffic is in flight and watch LCMP's lazy flow-cache invalidation re-hash
// the affected flows onto surviving routes — no control-plane involvement.
//
// The demo drives the network objects directly (rather than the experiment
// harness) to show the lower-level public API: Network, ControlPlane,
// RdmaTransport, FctRecorder.
#include <cstdio>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "harness/table.h"
#include "stats/fct_recorder.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"
#include "workload/traffic_gen.h"

int main() {
  using namespace lcmp;

  // Two DCs joined by three parallel 100G links, 5 ms apart (~1000 km).
  const Graph graph = BuildDumbbell(/*parallel_links=*/3, /*hosts_per_dc=*/4, Gbps(100),
                                    Milliseconds(5));
  const LcmpConfig lcmp_config;
  NetworkConfig net_config;
  net_config.seed = 3;
  Network net(graph, net_config, MakeLcmpFactory(lcmp_config));
  ControlPlane control_plane(lcmp_config);
  control_plane.Provision(net);

  FctRecorder recorder(&net.graph());
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord& rec) { recorder.OnComplete(rec); });

  // 60 elephant flows of 8 MB each, arriving over the first few ms.
  TrafficGenConfig traffic;
  traffic.workload = WorkloadKind::kWebSearch;
  traffic.offered_bps = Gbps(120);
  traffic.num_flows = 60;
  traffic.seed = 9;
  for (FlowSpec f : GenerateTraffic(graph, {{0, 1}, {1, 0}}, traffic)) {
    f.size_bytes = 8'000'000;  // uniform elephants make the rehash visible
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();

  // Cut link 0 at t = 3 ms — mid-flight for most flows.
  const auto inter_links = net.InterDcDirectedLinks();
  const int victim_link = inter_links[0].link_idx;
  net.sim().Schedule(Milliseconds(3), [&] {
    std::printf("[t=%.1f ms] cutting inter-DC link %s\n",
                static_cast<double>(net.sim().now()) / kNsPerMs,
                net.DirectedLinkName(inter_links[0]).c_str());
    net.SetLinkUp(victim_link, false);
  });

  net.sim().Run(Seconds(20));

  std::printf("\nflows completed: %d / 60 (all must survive the cut)\n", recorder.completed());
  std::printf("p50 slowdown: %.2f, p99 slowdown: %.2f\n", recorder.Overall().p50,
              recorder.Overall().p99);

  TablePrinter table({"DCI switch", "failover rehashes", "new-flow decisions", "cache hits"});
  for (const SwitchTelemetry& t : control_plane.CollectTelemetry(net)) {
    table.AddRow({t.name, std::to_string(t.failover_rehashes),
                  std::to_string(t.new_flow_decisions), std::to_string(t.cache_hits)});
  }
  std::printf("\nLCMP failover telemetry (rehashes = flows lazily moved off the dead port):\n");
  table.Print();
  return 0;
}
