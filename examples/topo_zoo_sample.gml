graph [
  label "MiniEurope"
  Network "Sample WAN for the lcmp_topo importer (Topology Zoo GML subset)"
  node [
    id 0
    label "Amsterdam"
    Latitude 52.37
    Longitude 4.90
  ]
  node [
    id 1
    label "Frankfurt"
    Latitude 50.11
    Longitude 8.68
  ]
  node [
    id 2
    label "Paris"
    Latitude 48.86
    Longitude 2.35
  ]
  node [
    id 3
    label "Zurich"
    Latitude 47.38
    Longitude 8.54
  ]
  node [
    id 4
    label "Milan"
    Latitude 45.46
    Longitude 9.19
  ]
  node [
    id 5
    label "Madrid"
    Latitude 40.42
    Longitude -3.70
  ]
  edge [
    source 0
    target 1
    LinkSpeedRaw 200000000000
  ]
  edge [
    source 0
    target 2
    LinkSpeedRaw 100000000000
  ]
  edge [
    source 1
    target 3
    LinkSpeedRaw 200000000000
  ]
  edge [
    source 2
    target 3
    LinkSpeedRaw 100000000000
  ]
  edge [
    source 2
    target 5
    LinkSpeedRaw 40000000000
  ]
  edge [
    source 3
    target 4
    LinkSpeedRaw 100000000000
  ]
  edge [
    source 4
    target 5
    LinkSpeedRaw 40000000000
  ]
  edge [
    source 0
    target 3
    LinkSpeedRaw 100000000000
  ]
]
