// Incremental-rollout demo (Sec. 5): LCMP supports partial upgrades — some
// DCI switches run LCMP while the rest keep legacy ECMP, with no protocol or
// header changes. This example upgrades only DC1's and DC8's edge switches
// on the 8-DC topology and shows that (a) traffic still flows, and (b) most
// of the benefit already materializes because the upgraded switches make the
// critical first-hop choice.
#include <cstdio>

#include "core/control_plane.h"
#include "core/lcmp_router.h"
#include "harness/table.h"
#include "routing/ecmp.h"
#include "stats/fct_recorder.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"
#include "workload/traffic_gen.h"

namespace {

// Runs the 8-DC WebSearch scenario with a caller-chosen per-switch policy
// assignment and returns (p50, p99).
std::pair<double, double> Run(const lcmp::PolicyFactory& factory) {
  using namespace lcmp;
  Testbed8Options topo_opts;
  topo_opts.fabric.hosts = 4;
  const Graph graph = BuildTestbed8(topo_opts);
  NetworkConfig net_config;
  net_config.seed = 12;
  Network net(graph, net_config, factory);
  ControlPlane control_plane{LcmpConfig{}};
  control_plane.Provision(net);

  FctRecorder recorder(&net.graph());
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord& rec) {
                            recorder.OnComplete(rec);
                            if (recorder.completed() >= 300) {
                              net.sim().Stop();
                            }
                          });
  TrafficGenConfig traffic;
  traffic.offered_bps = OfferedLoadForUtilization(graph, net.routes(), {{0, 7}, {7, 0}}, 0.3);
  traffic.num_flows = 300;
  traffic.seed = 21;
  for (const FlowSpec& f : GenerateTraffic(graph, {{0, 7}, {7, 0}}, traffic)) {
    transport.ScheduleFlow(f);
  }
  net.StartPolicyTicks();
  net.sim().Run(Seconds(60));
  return {recorder.Overall().p50, recorder.Overall().p99};
}

}  // namespace

int main() {
  using namespace lcmp;
  const LcmpConfig lcmp_config;

  std::printf("Incremental rollout on the 8-DC topology (WebSearch @ 30%%):\n\n");

  PolicyFactory all_ecmp = [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
  // Partial: only the endpoint DCI switches (DC1 = dc 0, DC8 = dc 7) upgrade.
  PolicyFactory partial = [&lcmp_config](SwitchNode& sw) -> std::unique_ptr<MultipathPolicy> {
    if (sw.dc() == 0 || sw.dc() == 7) {
      return MakeLcmpFactory(lcmp_config)(sw);
    }
    return std::make_unique<EcmpPolicy>();
  };
  PolicyFactory all_lcmp = MakeLcmpFactory(lcmp_config);

  const auto [e50, e99] = Run(all_ecmp);
  const auto [p50, p99] = Run(partial);
  const auto [l50, l99] = Run(all_lcmp);

  TablePrinter table({"deployment", "p50 slowdown", "p99 slowdown"});
  table.AddRow({"legacy (all ECMP)", Fmt(e50), Fmt(e99)});
  table.AddRow({"partial (DC1+DC8 upgraded)", Fmt(p50), Fmt(p99)});
  table.AddRow({"full LCMP", Fmt(l50), Fmt(l99)});
  table.Print();

  std::printf("\nPartial deployment needs no host, header or transit-switch changes; the\n"
              "upgraded edge switches already make the delay/capacity-aware first-hop "
              "choice.\n");
  return 0;
}
