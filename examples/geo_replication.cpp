// Geo-replicated storage scenario (the paper's motivating workload):
// a 13-DC European deployment replicates storage writes between all regions
// using the Alibaba-storage flow-size mix. The example compares routing
// policies on the DC1<->DC13 long-haul pair, shows the control-plane
// telemetry an operator would monitor, and prints the per-link utilization
// of the two candidate long-haul routes.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main() {
  using namespace lcmp;

  ExperimentConfig config;
  config.topo = TopologyKind::kBso13;
  config.pairing = PairingKind::kAllToAll;
  config.workload = WorkloadKind::kAliStorage;
  config.load = 0.4;
  config.num_flows = 400;
  config.hosts_per_dc = 2;
  config.seed = 7;

  std::printf("Geo-replicated storage on the 13-DC European topology (AliStorage mix)\n");
  std::printf("All-to-all replication at 40%% average inter-DC utilization.\n\n");

  TablePrinter table({"policy", "aggregate p50", "aggregate p99", "DC1<->DC13 p50",
                      "DC1<->DC13 p99"});
  for (const PolicyKind p : {PolicyKind::kEcmp, PolicyKind::kUcmp, PolicyKind::kLcmp}) {
    config.policy = p;
    const ExperimentResult r = RunExperiment(config);
    const SlowdownStats pair = r.ForDcPairBidir(0, 12);
    table.AddRow({PolicyKindName(p), Fmt(r.overall.p50), Fmt(r.overall.p99), Fmt(pair.p50),
                  Fmt(pair.p99)});
    if (p == PolicyKind::kLcmp) {
      std::printf("LCMP control-plane telemetry (first three DCI switches):\n");
      int shown = 0;
      for (const SwitchTelemetry& t : r.telemetry) {
        if (shown++ >= 3) {
          break;
        }
        std::printf("  %-10s cache=%d entries, decisions=%lld, failovers=%lld, "
                    "switch memory=%.2f KB\n",
                    t.name.c_str(), t.flow_cache_entries,
                    static_cast<long long>(t.new_flow_decisions),
                    static_cast<long long>(t.failover_rehashes),
                    static_cast<double>(t.memory_bytes) / 1024.0);
      }
      std::printf("\n");
    }
  }
  std::printf("FCT slowdown (lower is better); the DC1<->DC13 columns isolate the pair\n");
  std::printf("with two long-haul candidate routes of opposite delay/capacity trade-offs:\n\n");
  table.Print();
  return 0;
}
