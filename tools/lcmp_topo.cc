// lcmp_topo: topology inspection CLI for the topo/gen/ subsystem.
//
// Builds any topology the experiment harness understands (the paper's fixed
// WANs, the generated dragonfly/slimfly/fattree/random families, or an
// imported Topology Zoo file) and prints structural statistics, the golden
// structural digest, and optional DOT/JSON exports:
//
//   lcmp_topo --topo=dragonfly --dcs=200 --seed=7
//   lcmp_topo --topo=imported --topo-file=examples/topo_zoo_sample.gml --json=-
//   lcmp_topo --topo=slimfly --dcs=50 --dot=slimfly.dot
#include <cstdio>
#include <fstream>
#include <string>

#include "harness/experiment.h"
#include "harness/flags.h"
#include "topo/gen/topo_stats.h"

namespace {

using namespace lcmp;

// Writes `text` to `path`, with "-" meaning stdout.
bool WriteOut(const std::string& path, const std::string& text, const char* what) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s file '%s'\n", what, path.c_str());
    return false;
  }
  out << text;
  std::printf("wrote %s to %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.Define("topo", "testbed8",
               "topology: testbed8 | bso13 | testbed8-sym | random | dragonfly | slimfly | "
               "fattree | imported")
      .Define("dcs", "16", "DC count for generated topologies (slimfly/fattree round up)")
      .Define("seed", "1", "topology-generation seed")
      .Define("chords", "8", "random topology: chords on top of the ring")
      .Define("df-group-size", "0", "dragonfly: DCs per group (0 = auto)")
      .Define("df-global-links", "2", "dragonfly: global-link budget per DC")
      .Define("topo-file", "", "imported topology: edge-list or .gml path")
      .Define("fabric", "collapsed", "DC fabric: collapsed | leafspine")
      .Define("fabric-leaves", "4", "leaf-spine fabric: leaf switches per DC")
      .Define("fabric-spines", "2", "leaf-spine fabric: spine switches per DC")
      .Define("hosts-per-dc", "8", "hosts per datacenter")
      .Define("dot", "", "write a Graphviz DOT of the inter-DC graph ('-' = stdout)")
      .Define("json", "", "write stats + inter-DC links as JSON ('-' = stdout)")
      .Define("bisection-trials", "16", "random balanced cuts for the bisection estimate");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(), flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  ExperimentConfig config;
  std::string error;
  if (!ParseTopologyKind(flags.GetString("topo"), &config.topo, &error) ||
      !ParseFabricKind(flags.GetString("fabric"), &config.fabric, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  config.num_dcs = static_cast<int>(flags.GetInt("dcs"));
  config.topo_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.seed = config.topo_seed;
  config.extra_chords = static_cast<int>(flags.GetInt("chords"));
  config.df_group_size = static_cast<int>(flags.GetInt("df-group-size"));
  config.df_global_links = static_cast<int>(flags.GetInt("df-global-links"));
  config.topo_file = flags.GetString("topo-file");
  config.fabric_leaves = static_cast<int>(flags.GetInt("fabric-leaves"));
  config.fabric_spines = static_cast<int>(flags.GetInt("fabric-spines"));
  config.hosts_per_dc = static_cast<int>(flags.GetInt("hosts-per-dc"));
  if (config.topo == TopologyKind::kImported && config.topo_file.empty()) {
    std::fprintf(stderr, "--topo=imported requires --topo-file\n");
    return 2;
  }

  const Graph g = BuildTopology(config);
  const TopoStats stats =
      ComputeTopoStats(g, config.topo_seed, static_cast<int>(flags.GetInt("bisection-trials")));

  std::printf("topology %s (seed %llu)\n", TopologyKindName(config.topo),
              static_cast<unsigned long long>(config.topo_seed));
  std::printf("  dcs               %d\n", stats.dcs);
  std::printf("  vertices          %d (%d hosts, %d switches, %d DCIs)\n", stats.vertices,
              stats.hosts, stats.switches, stats.dci_switches);
  std::printf("  links             %d (%d inter-DC)\n", stats.links, stats.inter_dc_links);
  std::printf("  connected         %s\n", stats.connected ? "yes" : "NO");
  std::printf("  inter-DC diameter %d hops\n", stats.diameter);
  std::printf("  avg DCI degree    %.2f\n", stats.avg_dci_degree);
  std::printf("  inter-DC capacity %.1f Tbps (one direction)\n",
              static_cast<double>(stats.inter_dc_capacity_bps) / 1e12);
  std::printf("  bisection (est.)  %.1f Tbps\n", static_cast<double>(stats.bisection_bps) / 1e12);
  std::printf("  structural digest %016llx\n",
              static_cast<unsigned long long>(StructuralDigest(g)));

  const std::string dot_path = flags.GetString("dot");
  if (!dot_path.empty() && !WriteOut(dot_path, TopoToDot(g), "DOT")) {
    return 1;
  }
  const std::string json_path = flags.GetString("json");
  if (!json_path.empty() && !WriteOut(json_path, TopoToJson(g, stats), "JSON")) {
    return 1;
  }
  return stats.connected ? 0 : 1;
}
