// lcmp_sim: command-line experiment driver (the artifact's scripts/ folder
// equivalent). Runs one experiment described by flags, prints the summary
// table, and optionally dumps CSVs for external analysis/plotting.
//
//   lcmp_sim --topo=testbed8 --policy=lcmp --workload=websearch
//            --cc=dcqcn --load=0.5 --flows=500 --seed=7 --csv-prefix=out/run1
//
// Sweep mode: --sweep-spec=<file.json> and/or --sweep-axes="..." switch to
// the parallel sweep engine. The single-run flags above still apply — they
// seed the sweep's base config — and --jobs picks the worker count:
//
//   lcmp_sim --flows=300 --sweep-axes="load=0.3,0.5;policy=ecmp,lcmp"
//            --jobs=8 --sweep-out=sweep_results.json
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/csv_writer.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace {

using namespace lcmp;

bool ParseEnums(const FlagSet& flags, ExperimentConfig& config, std::string& error) {
  return ParseTopologyKind(flags.GetString("topo"), &config.topo, &error) &&
         ParsePolicyKind(flags.GetString("policy"), &config.policy, &error) &&
         ParseWorkloadKind(flags.GetString("workload"), &config.workload, &error) &&
         ParsePairingKind(flags.GetString("pairing"), &config.pairing, &error) &&
         ParseFabricKind(flags.GetString("fabric"), &config.fabric, &error) &&
         ParsePathStrategyKind(flags.GetString("paths"), &config.path_strategy, &error) &&
         ParseReliabilityMode(flags.GetString("reliability"), &config.reliability, &error) &&
         ApplyConfigField(&config, "fec", flags.GetString("fec"), &error);
}

// Segment-split CC selection. All three flags default to "" so "not given"
// is distinguishable: the deprecated --cc shim applies first (setting both
// segments), then --cc-inter/--cc-intra override their segment.
bool ApplyCcFlags(const FlagSet& flags, ExperimentConfig& config, std::string& error) {
  const std::string legacy = flags.GetString("cc");
  if (!legacy.empty() && !ApplyLegacyCcFlag(legacy, &config.cc, &error)) {
    return false;
  }
  const std::string inter = flags.GetString("cc-inter");
  if (!inter.empty() && !ParseCcToken(inter, &config.cc.inter, &error)) {
    return false;
  }
  const std::string intra = flags.GetString("cc-intra");
  if (!intra.empty() && !ParseCcToken(intra, &config.cc.intra, &error)) {
    return false;
  }
  return true;
}

int RunSweepMode(const ExperimentConfig& base, const SweepOptions& sweep_opts,
                 const FaultOptions& fault_opts, int jobs, const std::string& csv_prefix) {
  SweepSpec spec(base);
  // In sweep mode the chaos flags become config fields so every run draws
  // its own plan against its own topology (an explicit --fault-plan file was
  // already resolved into base.fault_plan against the base topology).
  spec.base.chaos_seed = fault_opts.chaos_seed;
  spec.base.chaos_rate = fault_opts.chaos_rate;
  spec.base.chaos_window_ms = fault_opts.chaos_window_ms;

  std::string error;
  if (!sweep_opts.spec_file.empty() && !LoadSweepSpecFile(sweep_opts.spec_file, &spec, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (!sweep_opts.axes.empty() && !ParseSweepAxes(sweep_opts.axes, &spec, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  if (!sweep_opts.spec_out.empty()) {
    if (!SaveSweepSpecFile(sweep_opts.spec_out, spec, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("wrote resolved sweep spec to %s\n", sweep_opts.spec_out.c_str());
  }

  SweepRunnerOptions runner_opts;
  runner_opts.jobs = jobs;

  const auto start = std::chrono::steady_clock::now();
  std::vector<RunOutcome> outcomes;
  if (!RunSweep(spec, runner_opts, &outcomes, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  double run_seconds = 0;
  for (const RunOutcome& o : outcomes) {
    run_seconds += o.wall_seconds;
  }
  std::printf("sweep: %zu runs on %d jobs in %.2f s (%.2f s of simulation, %.2fx)\n",
              outcomes.size(), jobs, wall, run_seconds, wall > 0 ? run_seconds / wall : 0.0);

  TablePrinter table({"run", "flows", "p50 slowdown", "p99 slowdown", "digest", "wall s"});
  for (const RunOutcome& o : outcomes) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx", static_cast<unsigned long long>(o.digest));
    table.AddRow({o.run.label, std::to_string(o.result.flows_completed), Fmt(o.result.overall.p50),
                  Fmt(o.result.overall.p99), digest, Fmt(o.wall_seconds, 2)});
  }
  table.Print();

  if (sweep_opts.verify_sequential) {
    std::vector<RunOutcome> sequential;
    SweepRunnerOptions seq_opts;
    seq_opts.jobs = 1;
    if (!RunSweep(spec, seq_opts, &sequential, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    int mismatches = 0;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].digest != sequential[i].digest) {
        std::fprintf(stderr,
                     "DIGEST MISMATCH run %zu (%s): jobs=%d -> %016llx, jobs=1 -> %016llx\n", i,
                     outcomes[i].run.label.c_str(), jobs,
                     static_cast<unsigned long long>(outcomes[i].digest),
                     static_cast<unsigned long long>(sequential[i].digest));
        ++mismatches;
      }
    }
    if (mismatches > 0) {
      std::fprintf(stderr, "verify-sequential: %d of %zu runs diverged\n", mismatches,
                   outcomes.size());
      return 1;
    }
    std::printf("verify-sequential: all %zu digests identical to --jobs=1\n", outcomes.size());
  }

  if (!sweep_opts.results_out.empty()) {
    if (!WriteSweepResultsJson(sweep_opts.results_out, outcomes, jobs, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote sweep results to %s\n", sweep_opts.results_out.c_str());
  }
  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + "_sweep.csv";
    if (!WriteSweepSummaryCsv(path, outcomes)) {
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.Define("topo", "testbed8",
               "topology: testbed8 | bso13 | testbed8-sym | random | dragonfly | slimfly | "
               "fattree | imported")
      .Define("dcs", "16", "DC count for generated topologies (slimfly/fattree round up)")
      .Define("topo-seed", "0", "topology-generation seed; 0 = derive from --seed")
      .Define("chords", "8", "random topology: chords on top of the ring")
      .Define("df-group-size", "0", "dragonfly: DCs per group (0 = auto)")
      .Define("df-global-links", "2", "dragonfly: global-link budget per DC")
      .Define("topo-file", "", "imported topology: edge-list or .gml path")
      .Define("fabric", "collapsed", "generated-DC fabric: collapsed | leafspine")
      .Define("fabric-leaves", "4", "leaf-spine fabric: leaf switches per DC")
      .Define("fabric-spines", "2", "leaf-spine fabric: spine switches per DC")
      .Define("paths", "downhill", "candidate-path strategy: downhill | layered")
      .Define("path-layers", "4", "layered paths: total layers incl. minimal layer 0")
      .Define("layer-drop-permille", "250", "layered paths: per-layer link drop rate (1/1000)")
      .Define("flow-cache-auto", "false", "right-size LCMP flow caches to the flow count")
      .Define("policy", "lcmp", "routing policy: ecmp | wcmp | ucmp | redte | lcmp")
      .Define("workload", "websearch", "flow-size mix: websearch | fbhdp | alistorage")
      .Define("cc", "", "DEPRECATED: sets both --cc-inter and --cc-intra")
      .Define("cc-inter", "", "long-haul segment CC: dcqcn | hpcc | timely | dctcp | lcp")
      .Define("cc-intra", "", "intra-DC segment CC: dcqcn | hpcc | timely | dctcp | lcp")
      .Define("incast-fanin", "0", "N-to-1 incast senders at the last DC (0 = off)")
      .Define("incast-bytes", "1048576", "bytes each incast sender ships")
      .Define("os-borders", "1", "divide every DCI<->DCI link rate by this factor")
      .Define("mix-intra", "0", "fraction of background flows kept intra-DC [0,1)")
      .Define("reliability", "gbn", "transport loss recovery: gbn (Go-Back-N) | irn")
      .Define("dci-loss-rate", "0", "standing DCI packet corruption rate [0,1)")
      .Define("dci-burst-len", "1", "mean DCI corruption-burst length in packets")
      .Define("fec", "off", "DCI gateway FEC shim: k:m (e.g. 8:2) | off")
      .Define("max-inflight-bytes", "0",
              "bounded in-flight sender window in bytes (0 = legacy unbounded)")
      .Define("pairing", "endpoints",
              "traffic pairing: endpoints | all | all-focus | endpoints-oneway")
      .Define("load", "0.3", "target average inter-DC link utilization (0, 1]")
      .Define("flows", "500", "number of flows to generate")
      .Define("hosts-per-dc", "8", "hosts per datacenter")
      .Define("seed", "1", "PRNG seed (runs are deterministic per seed)")
      .Define("emulation", "false", "SoftRoCE-style host emulation mode")
      .Define("alpha", "3", "LCMP global fusion weight for C_path")
      .Define("beta", "1", "LCMP global fusion weight for C_cong")
      .Define("w-dl", "3", "LCMP path-quality delay weight")
      .Define("w-lc", "1", "LCMP path-quality capacity weight")
      .Define("w-ql", "2", "LCMP congestion queue-level weight")
      .Define("w-tl", "1", "LCMP congestion trend weight")
      .Define("w-dp", "1", "LCMP congestion duration weight")
      .Define("csv-prefix", "", "if set, write <prefix>_{flows,links,buckets}.csv"
              " (in sweep mode: <prefix>_sweep.csv)");
  DefineSweepFlags(flags);
  DefineShardFlags(flags);
  DefineObsFlags(flags);
  DefineFaultFlags(flags);
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(), flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  ExperimentConfig config;
  std::string error;
  if (!ParseEnums(flags, config, error) || !ApplyCcFlags(flags, config, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  config.load = flags.GetDouble("load");
  config.incast_fanin = static_cast<int>(flags.GetInt("incast-fanin"));
  config.incast_bytes = static_cast<uint64_t>(flags.GetInt("incast-bytes"));
  config.os_borders = static_cast<int>(flags.GetInt("os-borders"));
  config.mix_intra = flags.GetDouble("mix-intra");
  config.max_inflight_bytes = flags.GetInt("max-inflight-bytes");
  config.dci_loss_rate = flags.GetDouble("dci-loss-rate");
  config.dci_burst_len = flags.GetDouble("dci-burst-len");
  config.num_flows = static_cast<int>(flags.GetInt("flows"));
  config.hosts_per_dc = static_cast<int>(flags.GetInt("hosts-per-dc"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.num_dcs = static_cast<int>(flags.GetInt("dcs"));
  config.topo_seed = static_cast<uint64_t>(flags.GetInt("topo-seed"));
  config.extra_chords = static_cast<int>(flags.GetInt("chords"));
  config.df_group_size = static_cast<int>(flags.GetInt("df-group-size"));
  config.df_global_links = static_cast<int>(flags.GetInt("df-global-links"));
  config.topo_file = flags.GetString("topo-file");
  config.fabric_leaves = static_cast<int>(flags.GetInt("fabric-leaves"));
  config.fabric_spines = static_cast<int>(flags.GetInt("fabric-spines"));
  config.path_layers = static_cast<int>(flags.GetInt("path-layers"));
  config.layer_drop_permille = static_cast<int>(flags.GetInt("layer-drop-permille"));
  config.lcmp.flow_cache_auto = flags.GetBool("flow-cache-auto");
  config.emulation_mode = flags.GetBool("emulation");
  config.lcmp.alpha = static_cast<int>(flags.GetInt("alpha"));
  config.lcmp.beta = static_cast<int>(flags.GetInt("beta"));
  config.lcmp.w_dl = static_cast<int>(flags.GetInt("w-dl"));
  config.lcmp.w_lc = static_cast<int>(flags.GetInt("w-lc"));
  config.lcmp.w_ql = static_cast<int>(flags.GetInt("w-ql"));
  config.lcmp.w_tl = static_cast<int>(flags.GetInt("w-tl"));
  config.lcmp.w_dp = static_cast<int>(flags.GetInt("w-dp"));

  const ObsOptions obs_opts = ApplyObsFlags(flags);
  if (obs_opts.telemetry_period_ms > 0) {
    config.telemetry_period = Milliseconds(obs_opts.telemetry_period_ms);
  } else if (!obs_opts.metrics_out.empty() || !obs_opts.timeseries_out.empty() ||
             (obs_opts.trace && obs_opts.TraceOutIsJson())) {
    // Metrics/time-series/Perfetto-counter outputs without an explicit
    // cadence still deserve a time series. NOTE: the telemetry loop adds
    // control events and so changes the digest — obs-on/obs-off digest
    // comparisons must pin --telemetry-period-ms identically on both sides.
    config.telemetry_period = Milliseconds(10);
  }

  const FaultOptions fault_opts = GetFaultOptions(flags);
  const SweepOptions sweep_opts = GetSweepOptions(flags);
  config.monitor_invariants = fault_opts.monitor;

  if (!ValidateSweepObsOptions(sweep_opts, obs_opts, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const ShardOptions shard_opts = GetShardOptions(flags);
  if (!ValidateShardOptions(shard_opts, sweep_opts, obs_opts, config.emulation_mode,
                            DefaultJobs(), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  config.shards = shard_opts.shards;

  if (sweep_opts.active()) {
    // An explicit plan file is resolved once against the base topology;
    // chaos flags are passed through as config fields (see RunSweepMode).
    if (!fault_opts.fault_plan_file.empty()) {
      FaultOptions plan_only = fault_opts;
      plan_only.chaos_seed = 0;
      if (!BuildFaultPlan(plan_only, BuildTopology(config), &config.fault_plan, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
    }
    const int status =
        RunSweepMode(config, sweep_opts, fault_opts,
                     ResolveSweepJobs(sweep_opts, shard_opts, DefaultJobs()),
                     flags.GetString("csv-prefix"));
    FinalizeObs(obs_opts, 0);
    return status;
  }

  if (!BuildFaultPlan(fault_opts, BuildTopology(config), &config.fault_plan, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }

  const ExperimentResult result = RunExperiment(config);

  std::printf("topology=%s policy=%s workload=%s cc=%s load=%.2f seed=%llu\n",
              TopologyKindName(config.topo), PolicyKindName(config.policy),
              WorkloadKindName(config.workload), config.cc.Token().c_str(), config.load,
              static_cast<unsigned long long>(config.seed));
  std::printf("flows completed: %d/%d  (sim time %.3f s, %llu events)\n",
              result.flows_completed, result.flows_requested,
              static_cast<double>(result.sim_end_time) / kNsPerSec,
              static_cast<unsigned long long>(result.events_processed));
  // Machine-greppable determinism digest (same folding as sweep mode): CI's
  // obs-trace-smoke job compares this line across obs-on/obs-off runs.
  std::printf("digest %016llx\n",
              static_cast<unsigned long long>(ExperimentDigest(result)));

  if (!config.fault_plan.empty()) {
    std::printf("faults: %zu planned events, %lld injections, monitor %s (%lld checks, %lld "
                "violations)\n",
                config.fault_plan.size(), static_cast<long long>(result.faults_injected),
                config.monitor_invariants ? "on" : "off",
                static_cast<long long>(result.invariant_checks),
                static_cast<long long>(result.invariant_violations));
  }

  TablePrinter summary({"metric", "value"});
  summary.AddRow({"p50 slowdown", Fmt(result.overall.p50)});
  summary.AddRow({"p95 slowdown", Fmt(result.overall.p95)});
  summary.AddRow({"p99 slowdown", Fmt(result.overall.p99)});
  summary.AddRow({"mean slowdown", Fmt(result.overall.mean)});
  summary.AddRow({"retransmitted packets", std::to_string(result.retransmitted_packets)});
  if (config.dci_loss_rate > 0 || config.fec_k > 0) {
    summary.AddRow({"dci lost packets", std::to_string(result.dci_lost_packets)});
    summary.AddRow({"fec repair packets", std::to_string(result.fec_repair_packets)});
    summary.AddRow({"fec recovered", std::to_string(result.fec_recovered_packets)});
    summary.AddRow({"fec unrecovered", std::to_string(result.fec_unrecovered_packets)});
  }
  if (config.incast_fanin > 0) {
    summary.AddRow({"incast flows completed", std::to_string(result.incast_flows_completed)});
    summary.AddRow({"incast p50 slowdown", Fmt(result.incast.p50)});
    summary.AddRow({"incast p99 slowdown", Fmt(result.incast.p99)});
  }
  summary.Print();

  const std::string prefix = flags.GetString("csv-prefix");
  if (!prefix.empty()) {
    const bool ok = WriteFlowSamplesCsv(prefix + "_flows.csv", result) &&
                    WriteLinkUtilizationCsv(prefix + "_links.csv", result) &&
                    WriteBucketsCsv(prefix + "_buckets.csv", result);
    if (!ok) {
      return 1;
    }
    std::printf("wrote %s_{flows,links,buckets}.csv\n", prefix.c_str());
  }
  FinalizeObs(obs_opts, result.sim_end_time);
  return 0;
}
