// lcmp_sim: command-line experiment driver (the artifact's scripts/ folder
// equivalent). Runs one experiment described by flags, prints the summary
// table, and optionally dumps CSVs for external analysis/plotting.
//
//   lcmp_sim --topo=testbed8 --policy=lcmp --workload=websearch
//            --cc=dcqcn --load=0.5 --flows=500 --seed=7 --csv-prefix=out/run1
#include <cstdio>
#include <string>

#include "harness/csv_writer.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "harness/table.h"

namespace {

using namespace lcmp;

bool ParseEnums(const FlagSet& flags, ExperimentConfig& config, std::string& error) {
  const std::string topo = flags.GetString("topo");
  if (topo == "testbed8") {
    config.topo = TopologyKind::kTestbed8;
  } else if (topo == "bso13") {
    config.topo = TopologyKind::kBso13;
  } else {
    error = "unknown --topo: " + topo + " (testbed8|bso13)";
    return false;
  }
  const std::string policy = flags.GetString("policy");
  if (policy == "ecmp") {
    config.policy = PolicyKind::kEcmp;
  } else if (policy == "wcmp") {
    config.policy = PolicyKind::kWcmp;
  } else if (policy == "ucmp") {
    config.policy = PolicyKind::kUcmp;
  } else if (policy == "redte") {
    config.policy = PolicyKind::kRedte;
  } else if (policy == "lcmp") {
    config.policy = PolicyKind::kLcmp;
  } else {
    error = "unknown --policy: " + policy + " (ecmp|wcmp|ucmp|redte|lcmp)";
    return false;
  }
  const std::string workload = flags.GetString("workload");
  if (workload == "websearch") {
    config.workload = WorkloadKind::kWebSearch;
  } else if (workload == "fbhdp") {
    config.workload = WorkloadKind::kFbHdp;
  } else if (workload == "alistorage") {
    config.workload = WorkloadKind::kAliStorage;
  } else {
    error = "unknown --workload: " + workload + " (websearch|fbhdp|alistorage)";
    return false;
  }
  const std::string cc = flags.GetString("cc");
  if (cc == "dcqcn") {
    config.cc = CcKind::kDcqcn;
  } else if (cc == "hpcc") {
    config.cc = CcKind::kHpcc;
  } else if (cc == "timely") {
    config.cc = CcKind::kTimely;
  } else if (cc == "dctcp") {
    config.cc = CcKind::kDctcp;
  } else {
    error = "unknown --cc: " + cc + " (dcqcn|hpcc|timely|dctcp)";
    return false;
  }
  const std::string pairing = flags.GetString("pairing");
  if (pairing == "endpoints") {
    config.pairing = PairingKind::kEndpointPair;
  } else if (pairing == "all") {
    config.pairing = PairingKind::kAllToAll;
  } else if (pairing == "all-focus") {
    config.pairing = PairingKind::kAllToAllFocusEndpoints;
  } else {
    error = "unknown --pairing: " + pairing + " (endpoints|all|all-focus)";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.Define("topo", "testbed8", "topology: testbed8 | bso13")
      .Define("policy", "lcmp", "routing policy: ecmp | wcmp | ucmp | redte | lcmp")
      .Define("workload", "websearch", "flow-size mix: websearch | fbhdp | alistorage")
      .Define("cc", "dcqcn", "congestion control: dcqcn | hpcc | timely | dctcp")
      .Define("pairing", "endpoints", "traffic pairing: endpoints | all | all-focus")
      .Define("load", "0.3", "target average inter-DC link utilization (0, 1]")
      .Define("flows", "500", "number of flows to generate")
      .Define("hosts-per-dc", "8", "hosts per datacenter")
      .Define("seed", "1", "PRNG seed (runs are deterministic per seed)")
      .Define("emulation", "false", "SoftRoCE-style host emulation mode")
      .Define("alpha", "3", "LCMP global fusion weight for C_path")
      .Define("beta", "1", "LCMP global fusion weight for C_cong")
      .Define("w-dl", "3", "LCMP path-quality delay weight")
      .Define("w-lc", "1", "LCMP path-quality capacity weight")
      .Define("w-ql", "2", "LCMP congestion queue-level weight")
      .Define("w-tl", "1", "LCMP congestion trend weight")
      .Define("w-dp", "1", "LCMP congestion duration weight")
      .Define("csv-prefix", "", "if set, write <prefix>_{flows,links,buckets}.csv");
  DefineObsFlags(flags);
  DefineFaultFlags(flags);
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(), flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  ExperimentConfig config;
  std::string error;
  if (!ParseEnums(flags, config, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  config.load = flags.GetDouble("load");
  config.num_flows = static_cast<int>(flags.GetInt("flows"));
  config.hosts_per_dc = static_cast<int>(flags.GetInt("hosts-per-dc"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.emulation_mode = flags.GetBool("emulation");
  config.lcmp.alpha = static_cast<int>(flags.GetInt("alpha"));
  config.lcmp.beta = static_cast<int>(flags.GetInt("beta"));
  config.lcmp.w_dl = static_cast<int>(flags.GetInt("w-dl"));
  config.lcmp.w_lc = static_cast<int>(flags.GetInt("w-lc"));
  config.lcmp.w_ql = static_cast<int>(flags.GetInt("w-ql"));
  config.lcmp.w_tl = static_cast<int>(flags.GetInt("w-tl"));
  config.lcmp.w_dp = static_cast<int>(flags.GetInt("w-dp"));

  const ObsOptions obs_opts = ApplyObsFlags(flags);
  if (obs_opts.telemetry_period_ms > 0) {
    config.telemetry_period = Milliseconds(obs_opts.telemetry_period_ms);
  } else if (!obs_opts.metrics_out.empty()) {
    // Metrics without an explicit cadence still deserve a time series.
    config.telemetry_period = Milliseconds(10);
  }

  const FaultOptions fault_opts = GetFaultOptions(flags);
  if (!BuildFaultPlan(fault_opts, BuildTopology(config), &config.fault_plan, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  config.monitor_invariants = fault_opts.monitor;

  const ExperimentResult result = RunExperiment(config);

  std::printf("topology=%s policy=%s workload=%s cc=%s load=%.2f seed=%llu\n",
              TopologyKindName(config.topo), PolicyKindName(config.policy),
              WorkloadKindName(config.workload), CcKindName(config.cc), config.load,
              static_cast<unsigned long long>(config.seed));
  std::printf("flows completed: %d/%d  (sim time %.3f s, %llu events)\n",
              result.flows_completed, result.flows_requested,
              static_cast<double>(result.sim_end_time) / kNsPerSec,
              static_cast<unsigned long long>(result.events_processed));

  if (!config.fault_plan.empty()) {
    std::printf("faults: %zu planned events, %lld injections, monitor %s (%lld checks, %lld "
                "violations)\n",
                config.fault_plan.size(), static_cast<long long>(result.faults_injected),
                config.monitor_invariants ? "on" : "off",
                static_cast<long long>(result.invariant_checks),
                static_cast<long long>(result.invariant_violations));
  }

  TablePrinter summary({"metric", "value"});
  summary.AddRow({"p50 slowdown", Fmt(result.overall.p50)});
  summary.AddRow({"p95 slowdown", Fmt(result.overall.p95)});
  summary.AddRow({"p99 slowdown", Fmt(result.overall.p99)});
  summary.AddRow({"mean slowdown", Fmt(result.overall.mean)});
  summary.AddRow({"retransmitted packets", std::to_string(result.retransmitted_packets)});
  summary.Print();

  const std::string prefix = flags.GetString("csv-prefix");
  if (!prefix.empty()) {
    const bool ok = WriteFlowSamplesCsv(prefix + "_flows.csv", result) &&
                    WriteLinkUtilizationCsv(prefix + "_links.csv", result) &&
                    WriteBucketsCsv(prefix + "_buckets.csv", result);
    if (!ok) {
      return 1;
    }
    std::printf("wrote %s_{flows,links,buckets}.csv\n", prefix.c_str());
  }
  FinalizeObs(obs_opts, result.sim_end_time);
  return 0;
}
