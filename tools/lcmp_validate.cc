// Validation CLI: checks (or re-pins) the golden-digest corpus and runs the
// analytic oracles. The golden/oracle/property ctest suites are the CI
// entry point; this binary is the human workflow:
//
//   lcmp_validate                  # check goldens + oracles, exit 1 on drift
//   lcmp_validate --update-golden  # re-pin the corpus after an intentional
//                                  # behavior change (review the diff!)
//   lcmp_validate --list           # print the scenario table
#include <cstdio>
#include <string>

#include "harness/flags.h"
#include "harness/sweep.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "validate/golden.h"
#include "validate/oracles.h"

namespace lcmp {
namespace {

int ListScenarios() {
  for (const validate::GoldenScenario& scenario : validate::GoldenScenarios()) {
    std::printf("%-28s %s\n", scenario.name.c_str(), scenario.overrides.c_str());
  }
  for (const validate::TopoFamilyScenario& family : validate::TopoFamilyScenarios()) {
    std::printf("%-28s %s\n", ("topo/" + family.name).c_str(), family.overrides.c_str());
  }
  return 0;
}

// Re-pins the per-family structural digests (tests/golden/topo_families.json).
int UpdateTopoFamilies(const std::string& dir) {
  std::vector<validate::TopoFamilyRecord> records;
  for (const validate::TopoFamilyScenario& family : validate::TopoFamilyScenarios()) {
    validate::TopoFamilyRecord rec;
    rec.name = family.name;
    std::string error;
    ExperimentConfig config;
    if (!validate::ComputeTopoFamilyDigest(family, &rec.digest, &error) ||
        !ApplyConfigField(&config, "overrides", family.overrides, &error)) {
      std::fprintf(stderr, "topo/%s: %s\n", family.name.c_str(), error.c_str());
      return 1;
    }
    rec.config_echo = validate::ConfigEcho(config);
    records.push_back(std::move(rec));
  }
  const std::string path = validate::TopoFamilyGoldenPath(dir);
  std::string error;
  if (!validate::SaveTopoFamilyRecords(path, records, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  for (const validate::TopoFamilyRecord& rec : records) {
    std::printf("pinned %-28s digest=%016llx -> %s\n", ("topo/" + rec.name).c_str(),
                static_cast<unsigned long long>(rec.digest), path.c_str());
  }
  return 0;
}

// Structural digests are shard-independent by construction, so the family
// check has no --shards dimension.
int CheckTopoFamilies(const std::string& dir) {
  std::vector<validate::TopoFamilyRecord> pinned;
  std::string error;
  if (!validate::LoadTopoFamilyRecords(validate::TopoFamilyGoldenPath(dir), &pinned, &error)) {
    std::fprintf(stderr, "MISSING topo-family corpus: %s (run with --update-golden to pin)\n",
                 error.c_str());
    return 1;
  }
  int failures = 0;
  for (const validate::TopoFamilyScenario& family : validate::TopoFamilyScenarios()) {
    const validate::TopoFamilyRecord* rec = nullptr;
    for (const validate::TopoFamilyRecord& r : pinned) {
      if (r.name == family.name) {
        rec = &r;
        break;
      }
    }
    uint64_t digest = 0;
    if (rec == nullptr) {
      std::fprintf(stderr, "MISSING topo/%s (run with --update-golden to pin)\n",
                   family.name.c_str());
      ++failures;
    } else if (!validate::ComputeTopoFamilyDigest(family, &digest, &error)) {
      std::fprintf(stderr, "DRIFT   topo/%s: %s\n", family.name.c_str(), error.c_str());
      ++failures;
    } else if (digest != rec->digest) {
      std::fprintf(stderr, "DRIFT   topo/%s: pinned %016llx, current %016llx\n",
                   family.name.c_str(), static_cast<unsigned long long>(rec->digest),
                   static_cast<unsigned long long>(digest));
      ++failures;
    } else {
      std::printf("ok      topo/%s\n", family.name.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

int UpdateGolden(const std::string& dir) {
  int failures = 0;
  for (const validate::GoldenScenario& scenario : validate::GoldenScenarios()) {
    const validate::GoldenRecord record = validate::ComputeGoldenRecord(scenario);
    const std::string path = validate::GoldenPath(dir, scenario.name);
    std::string error;
    if (!validate::SaveGoldenRecord(path, record, &error)) {
      std::fprintf(stderr, "%s: %s\n", scenario.name.c_str(), error.c_str());
      ++failures;
      continue;
    }
    std::printf("pinned %-28s digest=%016llx flows=%lld -> %s\n", scenario.name.c_str(),
                static_cast<unsigned long long>(record.digest),
                static_cast<long long>(record.flows_completed), path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

// With shards > 1 the corpus runs on the sharded PDES core but is compared
// against the *sequentially pinned* records: the digest contract is
// bit-identical results for every shard count.
int CheckGolden(const std::string& dir, int shards) {
  int failures = 0;
  for (const validate::GoldenScenario& scenario : validate::GoldenScenarios()) {
    const std::string path = validate::GoldenPath(dir, scenario.name);
    validate::GoldenRecord pinned;
    std::string error;
    if (!validate::LoadGoldenRecord(path, &pinned, &error)) {
      std::fprintf(stderr, "MISSING %s: %s (run with --update-golden to pin)\n",
                   scenario.name.c_str(), error.c_str());
      ++failures;
      continue;
    }
    const validate::GoldenRecord current = validate::ComputeGoldenRecord(scenario, shards);
    const validate::GoldenDiff diff = validate::CompareGolden(pinned, current);
    if (diff.match) {
      std::printf("ok      %s\n", scenario.name.c_str());
    } else {
      std::fprintf(stderr, "DRIFT   %s: %s\n", scenario.name.c_str(), diff.detail.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunOracles(uint64_t seed) {
  int failures = 0;
  for (const auto& [name, result] : validate::RunAllOracles(seed)) {
    if (result.passed) {
      std::printf("ok      %s: %s\n", name.c_str(), result.detail.c_str());
    } else {
      std::fprintf(stderr, "FAILED  %s: %s\n", name.c_str(), result.detail.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.Define("update-golden", "false", "re-run every scenario and overwrite its pinned record")
      .Define("golden-dir", "", "golden corpus directory (default: $LCMP_GOLDEN_DIR or the "
                                "source tree's tests/golden)")
      .Define("list", "false", "print the scenario table and exit")
      .Define("skip-oracles", "false", "golden corpus only, skip the analytic oracles")
      .Define("seed", "1", "seed for the seeded oracles")
      .Define("shards", "1", "run scenarios on this many PDES shards; the digests must still "
                             "match the sequentially pinned corpus")
      .Define("trace", "false", "enable the flight recorder across the scenario runs (the "
                                "digest contract holds with observability on)")
      .Define("trace-out", "", "dump the flight recorder here on exit (.json = Chrome trace); "
                               "implies --trace");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(), flags.Usage("lcmp_validate").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("lcmp_validate").c_str());
    return 0;
  }
  if (flags.GetBool("list")) {
    return ListScenarios();
  }
  std::string dir = flags.GetString("golden-dir");
  if (dir.empty()) {
    dir = validate::GoldenDir();
  }
  const int shards = static_cast<int>(flags.GetInt("shards"));
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  if (flags.GetBool("update-golden")) {
    if (shards != 1) {
      std::fprintf(stderr, "refusing to re-pin the corpus from a sharded run; goldens are "
                           "pinned sequentially (drop --shards)\n");
      return 2;
    }
    const int rc = UpdateGolden(dir);
    const int topo_rc = UpdateTopoFamilies(dir);
    return rc != 0 ? rc : topo_rc;
  }
  // Observability pass-through: tracing across the scenario runs exercises
  // "obs on does not change results" on the exact digest corpus.
  const std::string trace_out = flags.GetString("trace-out");
  const bool trace = flags.GetBool("trace") || !trace_out.empty();
  if (trace) {
    obs::FlightRecorder::Instance().Enable(true);
  }
  int rc = CheckGolden(dir, shards);
  const int topo_rc = CheckTopoFamilies(dir);
  rc = rc != 0 ? rc : topo_rc;
  if (!flags.GetBool("skip-oracles")) {
    const int oracle_rc = RunOracles(static_cast<uint64_t>(flags.GetInt("seed")));
    rc = rc != 0 ? rc : oracle_rc;
  }
  if (trace && !trace_out.empty()) {
    const std::string suffix = ".json";
    const bool is_json = trace_out.size() >= suffix.size() &&
                         trace_out.compare(trace_out.size() - suffix.size(), suffix.size(),
                                           suffix) == 0;
    const bool ok = is_json ? obs::WriteChromeTrace(trace_out, /*sim_end_ns=*/0)
                            : obs::FlightRecorder::Instance().DumpToFile(trace_out);
    if (ok) {
      std::printf("wrote trace to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      rc = rc != 0 ? rc : 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace lcmp

int main(int argc, char** argv) { return lcmp::Main(argc, argv); }
