#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file written by --trace-out=<file>.json.

Checks the structural contract documented in DESIGN.md §7 (and
src/obs/trace_export.h): a top-level object with a `traceEvents` array whose
entries are well-formed Chrome-trace events (phase-dependent required fields,
numeric timestamps, non-negative durations). Optional flags assert the
LCMP-specific content CI cares about:

  --require-barrier-spans   at least one complete "window" span on a shard row
                            (only sharded runs emit these)
  --require-instant=NAME    at least one instant event named NAME
                            (e.g. failover, fault.link_down); repeatable
  --min-counter-tracks=N    at least N distinct counter ("C") track names

Stdlib only; exits 0 on success, 1 on a contract violation, 2 on usage/IO
errors. Prints a one-line summary on success so CI logs show what was seen.
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "B", "E", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}


def fail(msg):
    print(f"trace_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    if not isinstance(ev, dict):
        fail(f"traceEvents[{i}] is not an object")
    ph = ev.get("ph")
    if not isinstance(ph, str) or ph not in VALID_PHASES:
        fail(f"traceEvents[{i}] has invalid phase {ph!r}")
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        fail(f"traceEvents[{i}] ({ph!r}) has no name")
    if "pid" not in ev:
        fail(f"traceEvents[{i}] ({ev['name']!r}) has no pid")
    # Metadata events carry no timestamp; everything else must.
    if ph == "M":
        return
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)):
        fail(f"traceEvents[{i}] ({ev['name']!r}) has non-numeric ts {ts!r}")
    if ts < 0:
        fail(f"traceEvents[{i}] ({ev['name']!r}) has negative ts {ts}")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"traceEvents[{i}] ({ev['name']!r}) has invalid dur {dur!r}")
    if ph == "C":
        args = ev.get("args")
        if not isinstance(args, dict) or not args:
            fail(f"traceEvents[{i}] (counter {ev['name']!r}) has no args")
        for k, v in args.items():
            if not isinstance(v, (int, float)):
                fail(f"traceEvents[{i}] (counter {ev['name']!r}) arg {k!r} "
                     f"is non-numeric: {v!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the Chrome-trace JSON file")
    parser.add_argument("--require-barrier-spans", action="store_true",
                        help="require at least one per-shard 'window' span")
    parser.add_argument("--require-instant", action="append", default=[],
                        metavar="NAME",
                        help="require at least one instant event named NAME")
    parser.add_argument("--min-counter-tracks", type=int, default=0,
                        metavar="N",
                        help="require at least N distinct counter tracks")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"trace_schema: cannot read {args.trace}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"{args.trace} is not valid JSON: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents array")
    if not events:
        fail("traceEvents is empty")

    counter_tracks = set()
    instants = {}
    barrier_spans = 0
    for i, ev in enumerate(events):
        check_event(i, ev)
        ph = ev.get("ph")
        if ph == "C":
            counter_tracks.add(ev["name"])
        elif ph in ("i", "I"):
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1
        elif ph == "X" and ev["name"] == "window" and ev.get("cat") == "barrier":
            barrier_spans += 1

    if args.require_barrier_spans and barrier_spans == 0:
        fail("no per-shard barrier 'window' spans found")
    for name in args.require_instant:
        if instants.get(name, 0) == 0:
            fail(f"no instant event named {name!r} found "
                 f"(instants seen: {sorted(instants) or 'none'})")
    if len(counter_tracks) < args.min_counter_tracks:
        fail(f"only {len(counter_tracks)} counter tracks "
             f"({sorted(counter_tracks)}), need {args.min_counter_tracks}")

    print(f"trace_schema: OK: {len(events)} events, {barrier_spans} barrier "
          f"spans, {len(counter_tracks)} counter tracks, "
          f"{sum(instants.values())} instants across {len(instants)} names")
    sys.exit(0)


if __name__ == "__main__":
    main()
