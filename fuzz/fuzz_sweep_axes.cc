// Fuzz target: the --sweep-axes grammar and grid expansion
// (src/harness/sweep.cc).
//
// Arbitrary bytes go through ParseSweepAxes; accepted specs are expanded
// (guarded by a cartesian-product cap so the fuzzer never allocates an
// unbounded grid) and every expanded run must carry a config the field
// registry can echo back.
#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  lcmp::SweepSpec spec;
  std::string error;
  if (!lcmp::ParseSweepAxes(text, &spec, &error)) {
    return 0;
  }
  uint64_t grid = 1;
  for (const lcmp::SweepAxis& axis : spec.axes) {
    grid *= axis.values.empty() ? 1 : axis.values.size();
    if (grid > 10000) {
      return 0;  // accepted but too large to expand under the fuzzer
    }
  }
  std::vector<lcmp::SweepRun> runs;
  if (!lcmp::ExpandSweep(spec, &runs, &error)) {
    return 0;  // axis values may fail field validation; a clean error is fine
  }
  for (const lcmp::SweepRun& run : runs) {
    std::string value;
    for (const auto& [field, label] : run.cell) {
      if (field == "overrides") {
        continue;  // write-only pseudo-field; GetConfigField rejects it by design
      }
      if (!lcmp::GetConfigField(run.config, field, &value)) {
        __builtin_trap();  // expansion produced a field the registry disowns
      }
    }
  }
  return 0;
}
