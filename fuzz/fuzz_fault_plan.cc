// Fuzz target: the fault-plan text grammar (src/fault/fault_plan.cc).
//
// Feeds arbitrary bytes to ParseFaultPlan against a fixed testbed8 graph.
// Rejections must come back as clean (error, false) returns; accepted plans
// must round-trip through ToString() to a fixed point and support
// AllClearTime() without tripping a sanitizer.
#include <cstdint>
#include <string>

#include "fault/fault_plan.h"
#include "topo/builders.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const lcmp::Graph* graph = new lcmp::Graph(lcmp::BuildTestbed8());
  const std::string text(reinterpret_cast<const char*>(data), size);
  lcmp::FaultPlan plan;
  std::string error;
  if (!lcmp::ParseFaultPlan(text, *graph, &plan, &error)) {
    return 0;
  }
  (void)plan.AllClearTime();
  // An accepted plan's text form must itself parse, to an identical text form.
  const std::string canonical = plan.ToString();
  lcmp::FaultPlan again;
  if (!lcmp::ParseFaultPlan(canonical, *graph, &again, &error)) {
    __builtin_trap();
  }
  if (again.ToString() != canonical) {
    __builtin_trap();
  }
  return 0;
}
