// Standalone driver for the fuzz targets on toolchains without libFuzzer
// (gcc). Links against the same LLVMFuzzerTestOneInput entry point and
// supplies inputs two ways:
//
//   fuzz_<target> FILE...            replay corpus / crash files
//   fuzz_<target> --random=N [SEED]  N seeded pseudo-random inputs (a smoke
//                                    loop: coverage-blind, but it runs the
//                                    target under the configured sanitizers)
//
// Under Clang with -DLCMP_FUZZ=ON this file is not linked; the real
// -fsanitize=fuzzer runtime provides main().
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// xorshift*-style generator; good enough for smoke inputs, no libc rand state.
uint64_t Next(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

// Mixes printable structure-ish bytes with raw binary so text grammars get
// past their first token more often than pure noise would.
std::vector<uint8_t> RandomInput(uint64_t* state) {
  static const char kVocab[] =
      " \t\n=,;:{}[]\"'0123456789.-+eE"
      "abcdefghijklmnopqrstuvwxyz_"
      "linkdownupatmsflapdegradeoutageloadpolicyseedtrue";
  const size_t len = Next(state) % 512;
  std::vector<uint8_t> input(len);
  for (size_t i = 0; i < len; ++i) {
    const uint64_t r = Next(state);
    input[i] = (r & 3) == 0 ? static_cast<uint8_t>(r >> 8)
                            : static_cast<uint8_t>(kVocab[(r >> 8) % (sizeof(kVocab) - 1)]);
  }
  return input;
}

int RunFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(data.data(), data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strncmp(argv[1], "--random=", 9) == 0) {
    const long runs = std::strtol(argv[1] + 9, nullptr, 10);
    uint64_t state = argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 1;
    state = state ? state : 1;  // xorshift must not start at 0
    for (long i = 0; i < runs; ++i) {
      const std::vector<uint8_t> input = RandomInput(&state);
      LLVMFuzzerTestOneInput(input.data(), input.size());
    }
    std::printf("ran %ld random inputs\n", runs);
    return 0;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc |= RunFile(argv[i]);
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE... | --random=N [SEED]\n", argv[0]);
    return 2;
  }
  return rc;
}
