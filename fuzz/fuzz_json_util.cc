// Fuzz target: the hand-rolled JSON parser (src/harness/json_util.cc).
//
// Arbitrary bytes go through ParseJson; on success the whole tree is walked
// and every accessor is exercised, then the value is re-serialized and
// re-parsed (parse ∘ serialize must accept its own output).
#include <cstdint>
#include <string>

#include "harness/json_util.h"

namespace {

void Walk(const lcmp::json::JsonValue& v, int depth) {
  if (depth > 64) {
    return;
  }
  std::string s;
  (void)v.AsString(&s);
  for (const auto& [key, child] : v.members) {
    (void)v.Find(key);
    Walk(child, depth + 1);
  }
  for (const auto& child : v.items) {
    Walk(child, depth + 1);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  lcmp::json::JsonValue root;
  std::string error;
  if (!lcmp::json::ParseJson(text, &root, &error)) {
    return 0;
  }
  Walk(root, 0);
  return 0;
}
