// Sample accumulation and percentile extraction for FCT-slowdown reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace lcmp {

// Collects double-valued samples and answers percentile / mean queries.
// Storage is exact (all samples kept); experiment sizes here are 1e3-1e6
// samples, far below any memory concern, and exact percentiles make the
// paper-figure tables stable.
class SampleSet {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Percentile in [0, 100]. Nearest-rank on the sorted samples.
  // Returns 0 for an empty set.
  double Percentile(double p) const;

  double Mean() const;
  double Min() const;
  double Max() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorted lazily by Percentile(); mutable keeps the accessor const.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace lcmp
