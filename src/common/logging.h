// Minimal leveled logging. The simulator is performance-sensitive, so debug
// logging compiles down to a branch on a global level.
#pragma once

#include <cstdio>
#include <string>

namespace lcmp {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Current-simulation-time source for log prefixes. While a Simulator runs it
// points at the simulator's clock (installed/restored by Simulator::Run), so
// every log line — including crash logs — carries the simulation timestamp.
// The source is thread-local: each parallel sweep worker installs its own
// simulator's clock without affecting other threads' log prefixes.
// Pass nullptr to clear. Returns the previous source so scopes can nest.
const int64_t* SetLogSimTimeSource(const int64_t* now_ns);

// Shard id for log prefixes under `--shards>1`. Each shard worker installs
// its shard id for the duration of its window (RunWindow does this alongside
// the time source), so a line reads `[... s=2 t=1234ns]` and the timestamp
// is unambiguously that shard's local clock — before this, a sharded run's
// lines stamped whichever shard's clock the thread happened to see, with no
// way to tell shards apart. Thread-local; -1 means "no shard" and drops the
// `s=` field. Returns the previous id so scopes can nest.
int SetLogShard(int shard);

// Hook invoked once when an LCMP_CHECK fails, before the process traps; the
// observability layer installs the flight-recorder dump here so crashes ship
// their trailing event history. Re-entrant failures skip the hook.
using CheckFailureHook = void (*)();
void SetCheckFailureHook(CheckFailureHook hook);
// Called by the LCMP_CHECK macros; not for direct use.
void NotifyCheckFailure();

// printf-style log emission; prefer the LCMP_LOG* macros below. Messages at
// kError also flush stderr so crash logs are never lost in a buffer.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

// Assembles a std::string printf-style.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace lcmp

#define LCMP_LOG(level, ...)                                                  \
  do {                                                                        \
    if (static_cast<int>(level) >= static_cast<int>(::lcmp::GetLogLevel())) { \
      ::lcmp::LogMessage(level, __FILE__, __LINE__, ::lcmp::StrFormat(__VA_ARGS__)); \
    }                                                                         \
  } while (0)

#define LCMP_DEBUG(...) LCMP_LOG(::lcmp::LogLevel::kDebug, __VA_ARGS__)
#define LCMP_INFO(...) LCMP_LOG(::lcmp::LogLevel::kInfo, __VA_ARGS__)
#define LCMP_WARN(...) LCMP_LOG(::lcmp::LogLevel::kWarning, __VA_ARGS__)
#define LCMP_ERROR(...) LCMP_LOG(::lcmp::LogLevel::kError, __VA_ARGS__)

// Invariant check that stays on in release builds; simulation correctness
// bugs must never be silently ignored.
#define LCMP_CHECK(cond)                                                         \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::lcmp::LogMessage(::lcmp::LogLevel::kError, __FILE__, __LINE__,           \
                         std::string("CHECK failed: ") + #cond);                 \
      ::lcmp::NotifyCheckFailure();                                              \
      __builtin_trap();                                                          \
    }                                                                            \
  } while (0)

#define LCMP_CHECK_MSG(cond, ...)                                                \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::lcmp::LogMessage(::lcmp::LogLevel::kError, __FILE__, __LINE__,           \
                         std::string("CHECK failed: ") + #cond + " " +           \
                             ::lcmp::StrFormat(__VA_ARGS__));                    \
      ::lcmp::NotifyCheckFailure();                                              \
      __builtin_trap();                                                          \
    }                                                                            \
  } while (0)
