#include "common/hashing.h"

namespace lcmp {

uint64_t HashFlowKey(const FlowKey& key, uint64_t salt) {
  uint64_t h = salt ^ 0x2545f4914f6cdd1dULL;
  h = Mix64(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(key.src)) |
                 (static_cast<uint64_t>(static_cast<uint32_t>(key.dst)) << 32)));
  h = Mix64(h ^ (static_cast<uint64_t>(key.src_port) |
                 (static_cast<uint64_t>(key.dst_port) << 32)));
  h = Mix64(h ^ key.protocol);
  return h;
}

FlowId FlowIdOf(const FlowKey& key) { return HashFlowKey(key, /*salt=*/0); }

FlowId RoutingFlowId(const FlowKey& key) {
  const FlowId id = HashFlowKey(key, /*salt=*/0x10f1);
  return id == 0 ? 1 : id;
}

FlowKey ReverseKey(const FlowKey& key) {
  FlowKey r = key;
  r.src = key.dst;
  r.dst = key.src;
  r.src_port = key.dst_port;
  r.dst_port = key.src_port;
  return r;
}

}  // namespace lcmp
