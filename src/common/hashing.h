// Flow hashing used by every multipath policy (ECMP, LCMP's in-set hash, ...).
//
// The data plane identifies a flow by its five tuple; we carry a condensed
// FlowKey instead of raw headers. Hashes must be (a) deterministic across
// runs, (b) well mixed so ECMP spreads flows, and (c) cheap.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace lcmp {

// Condensed five-tuple. src/dst are simulator host NodeIds; src_port holds a
// per-flow nonce so that two flows between the same host pair can hash to
// different paths (mirrors distinct TCP/UDP source ports or RDMA QPNs).
struct FlowKey {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint32_t src_port = 0;
  uint32_t dst_port = 0;
  uint8_t protocol = 17;  // RoCEv2 rides on UDP.

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

// 64-bit finalizer-quality mix (from MurmurHash3 / SplitMix64 family).
// Inline: this sits on the event-scheduling hot path (lineage tie-break
// keys, Simulator::MintKeyFor) as well as in per-packet flow hashing.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Deterministic hash of the five tuple, optionally perturbed by `salt`
// (switches use their NodeId as salt so different hops decorrelate).
uint64_t HashFlowKey(const FlowKey& key, uint64_t salt = 0);

// Compact flow identifier derived from the key; used for flow-cache lookup.
FlowId FlowIdOf(const FlowKey& key);

// Flow id used by switch-side flow state: derived from the packet's own
// five tuple (so DATA and reverse-direction ACK/CNP traffic of one RDMA flow
// are distinct entries), never zero (zero marks empty flow-cache slots).
FlowId RoutingFlowId(const FlowKey& key);

// The reverse five tuple (ACK direction of a flow).
FlowKey ReverseKey(const FlowKey& key);

}  // namespace lcmp
