#include "common/rng.h"

#include <cmath>

namespace lcmp {
namespace {

// SplitMix64: expands a single seed into well-distributed state words.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) { Seed(seed); }

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) {
    w = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for the
  // bounds used here (candidate counts, host counts).
  const __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  // Box-Muller using two fresh uniforms each call (no cached spare, keeps the
  // stream position deterministic regardless of call interleaving).
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

}  // namespace lcmp
