#include "common/logging.h"

#include <cstdarg>

namespace lcmp {
namespace {

LogLevel g_level = LogLevel::kWarning;
// Installed per-Simulator::Run; thread_local so each parallel sweep worker's
// log lines carry its own simulator's clock.
thread_local const int64_t* g_sim_now = nullptr;
CheckFailureHook g_check_hook = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

const int64_t* SetLogSimTimeSource(const int64_t* now_ns) {
  const int64_t* prev = g_sim_now;
  g_sim_now = now_ns;
  return prev;
}

void SetCheckFailureHook(CheckFailureHook hook) { g_check_hook = hook; }

void NotifyCheckFailure() {
  // A hook that CHECK-fails itself must not recurse into the hook forever.
  static thread_local bool in_hook = false;
  if (g_check_hook != nullptr && !in_hook) {
    in_hook = true;
    g_check_hook();
    in_hook = false;
  }
  std::fflush(stderr);
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  if (g_sim_now != nullptr) {
    std::fprintf(stderr, "[%s %s:%d t=%lldns] %s\n", LevelName(level), base, line,
                 static_cast<long long>(*g_sim_now), msg.c_str());
  } else {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
  }
  if (level == LogLevel::kError) {
    std::fflush(stderr);
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace lcmp
