#include "common/logging.h"

#include <cstdarg>
#include <mutex>

namespace lcmp {
namespace {

LogLevel g_level = LogLevel::kWarning;
// Installed per-Simulator::Run; thread_local so each parallel sweep worker's
// log lines carry its own simulator's clock.
thread_local const int64_t* g_sim_now = nullptr;
thread_local int g_log_shard = -1;
CheckFailureHook g_check_hook = nullptr;
// Serializes kError emission: shard workers CHECK-fail concurrently, and an
// interleaved half-line crash log is worse than none. Lower levels keep the
// single-fprintf fast path (one stdio call is atomic enough in practice).
std::mutex g_error_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

const int64_t* SetLogSimTimeSource(const int64_t* now_ns) {
  const int64_t* prev = g_sim_now;
  g_sim_now = now_ns;
  return prev;
}

int SetLogShard(int shard) {
  const int prev = g_log_shard;
  g_log_shard = shard;
  return prev;
}

void SetCheckFailureHook(CheckFailureHook hook) { g_check_hook = hook; }

void NotifyCheckFailure() {
  // A hook that CHECK-fails itself must not recurse into the hook forever.
  static thread_local bool in_hook = false;
  if (g_check_hook != nullptr && !in_hook) {
    in_hook = true;
    g_check_hook();
    in_hook = false;
  }
  std::fflush(stderr);
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  // Prefix: `[LEVEL file:line s=<shard> t=<ns>ns]`, with the s= field only
  // under --shards>1 and the t= field only while a simulator runs.
  char prefix[96];
  char shard_part[24] = "";
  if (g_log_shard >= 0) {
    std::snprintf(shard_part, sizeof(shard_part), " s=%d", g_log_shard);
  }
  if (g_sim_now != nullptr) {
    std::snprintf(prefix, sizeof(prefix), "[%s %s:%d%s t=%lldns]", LevelName(level), base, line,
                  shard_part, static_cast<long long>(*g_sim_now));
  } else {
    std::snprintf(prefix, sizeof(prefix), "[%s %s:%d%s]", LevelName(level), base, line,
                  shard_part);
  }
  if (level == LogLevel::kError) {
    // One writer at a time so concurrent shard workers' crash lines never
    // interleave, and the line is flushed before the lock drops.
    std::lock_guard<std::mutex> lock(g_error_mu);
    std::fprintf(stderr, "%s %s\n", prefix, msg.c_str());
    std::fflush(stderr);
  } else {
    std::fprintf(stderr, "%s %s\n", prefix, msg.c_str());
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace lcmp
