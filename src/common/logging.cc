#include "common/logging.h"

#include <cstdarg>

namespace lcmp {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace lcmp
