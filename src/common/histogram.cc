#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lcmp {

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0) {
    return samples_.front();
  }
  if (p >= 100) {
    return samples_.back();
  }
  // Nearest-rank (ceil) definition: the smallest value with at least p% of
  // samples at or below it.
  const size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * samples_.size()));
  return samples_[std::min(samples_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) / samples_.size();
}

double SampleSet::Min() const { return Percentile(0); }
double SampleSet::Max() const { return Percentile(100); }

}  // namespace lcmp
