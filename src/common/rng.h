// Deterministic pseudo-random number generation.
//
// Experiments must be bit-for-bit reproducible from a seed, so every random
// choice in the project goes through Rng (xoshiro256**) rather than
// std::random_device or rand().
#pragma once

#include <cstdint>

#include "common/types.h"

namespace lcmp {

// Small, fast, seedable PRNG (xoshiro256**, public-domain algorithm).
// Not thread-safe; the simulator is single-threaded by design.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed value with the given mean (> 0). Used for
  // Poisson inter-arrival times in the traffic generator.
  double NextExponential(double mean);

  // Normally distributed value (Box-Muller). Used by the SoftRoCE emulation
  // jitter model.
  double NextGaussian(double mean, double stddev);

  // Re-seed, resetting the stream.
  void Seed(uint64_t seed);

 private:
  uint64_t s_[4];
};

}  // namespace lcmp
