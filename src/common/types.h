// Fundamental value types and unit helpers shared by every LCMP subsystem.
//
// All simulation time is kept in signed 64-bit nanoseconds (TimeNs). All
// data-plane arithmetic in core/ is integer-only; these helpers keep unit
// conversions explicit so a "5" can never silently mean both 5 ms and 5 us.
#pragma once

#include <cstdint>

namespace lcmp {

// Simulation timestamp / duration in nanoseconds.
using TimeNs = int64_t;

// Dense node identifier assigned by the topology/network builder.
using NodeId = int32_t;

// Globally unique flow identifier (assigned by the traffic generator).
using FlowId = uint64_t;

// Egress port index within a node. -1 means "no port / invalid".
using PortIndex = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr PortIndex kInvalidPort = -1;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

// Duration constructors. Keep these constexpr so configs can be literals.
constexpr TimeNs Nanoseconds(int64_t n) { return n; }
constexpr TimeNs Microseconds(int64_t us) { return us * kNsPerUs; }
constexpr TimeNs Milliseconds(int64_t ms) { return ms * kNsPerMs; }
constexpr TimeNs Seconds(int64_t s) { return s * kNsPerSec; }

// Link rate constructors, in bits per second.
constexpr int64_t Kbps(int64_t k) { return k * 1'000; }
constexpr int64_t Mbps(int64_t m) { return m * 1'000'000; }
constexpr int64_t Gbps(int64_t g) { return g * 1'000'000'000; }

// Time to serialize `bytes` onto a link of `rate_bps`, rounded up to a whole
// nanosecond so back-to-back packets never overlap.
constexpr TimeNs SerializationDelay(int64_t bytes, int64_t rate_bps) {
  // bytes * 8 * 1e9 / rate. Keep the multiply in 64 bits: bytes fits in
  // ~2^32, 8e9 fits in 2^33, so use __int128 to be safe for jumbo sizes.
  return static_cast<TimeNs>((static_cast<__int128>(bytes) * 8 * kNsPerSec + rate_bps - 1) /
                             rate_bps);
}

// Propagation delay for a fiber span, using the paper's 2e8 m/s light speed
// in fiber: 1000 km -> 5 ms.
constexpr TimeNs FiberDelayForKm(int64_t km) { return km * kNsPerMs / 200; }

}  // namespace lcmp
