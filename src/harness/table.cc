#include "harness/table.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace lcmp {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  LCMP_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_sep = [&]() {
    os << "+";
    for (const size_t w : widths) {
      os << std::string(w + 2, '-') << "+";
    }
    os << "\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_sep();
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FmtPct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.0f%%", fraction * 100.0);
  return buf;
}

}  // namespace lcmp
