#include "harness/experiment.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "core/lcmp_router.h"
#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "routing/ecmp.h"
#include "routing/redte.h"
#include "routing/ucmp.h"
#include "routing/wcmp.h"

namespace lcmp {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEcmp:
      return "ECMP";
    case PolicyKind::kWcmp:
      return "WCMP";
    case PolicyKind::kUcmp:
      return "UCMP";
    case PolicyKind::kRedte:
      return "RedTE";
    case PolicyKind::kLcmp:
      return "LCMP";
  }
  return "?";
}

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kTestbed8:
      return "testbed-8dc";
    case TopologyKind::kBso13:
      return "bso-13dc";
  }
  return "?";
}

PolicyFactory MakePolicyFactory(PolicyKind kind, const LcmpConfig& lcmp_config) {
  switch (kind) {
    case PolicyKind::kEcmp:
      return [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
    case PolicyKind::kWcmp:
      return [](SwitchNode&) { return std::make_unique<WcmpPolicy>(); };
    case PolicyKind::kUcmp:
      return [](SwitchNode&) { return std::make_unique<UcmpPolicy>(); };
    case PolicyKind::kRedte:
      return [](SwitchNode&) { return std::make_unique<RedtePolicy>(); };
    case PolicyKind::kLcmp:
      return MakeLcmpFactory(lcmp_config);
  }
  return [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
}

Graph BuildTopology(const ExperimentConfig& config) {
  switch (config.topo) {
    case TopologyKind::kTestbed8: {
      Testbed8Options opts;
      opts.fabric.hosts = config.hosts_per_dc;
      return BuildTestbed8(opts);
    }
    case TopologyKind::kBso13: {
      Bso13Options opts;
      opts.fabric.hosts = config.hosts_per_dc;
      return BuildBso13(opts);
    }
  }
  return BuildTestbed8({});
}

std::vector<std::pair<DcId, DcId>> BuildPairing(const ExperimentConfig& config, int num_dcs) {
  if (config.pairing == PairingKind::kAllToAll) {
    return AllOrderedDcPairs(num_dcs);
  }
  if (config.pairing == PairingKind::kAllToAllFocusEndpoints) {
    std::vector<std::pair<DcId, DcId>> pairs = AllOrderedDcPairs(num_dcs);
    const DcId a = 0;
    const DcId b = static_cast<DcId>(num_dcs - 1);
    for (int i = 0; i < 3; ++i) {
      pairs.emplace_back(a, b);
      pairs.emplace_back(b, a);
    }
    return pairs;
  }
  // Endpoint pair: first and last DC, both directions (DC1 <-> DC8 on the
  // testbed topology; DC1 <-> DC13 endpoints carry hosts in bso13 too).
  const DcId a = 0;
  const DcId b = static_cast<DcId>(num_dcs - 1);
  return {{a, b}, {b, a}};
}

SlowdownStats ExperimentResult::ForDcPair(DcId src, DcId dst) const {
  SampleSet set;
  for (const auto& s : samples) {
    if (s.src_dc == src && s.dst_dc == dst) {
      set.Add(s.slowdown);
    }
  }
  SlowdownStats out;
  out.count = static_cast<int>(set.size());
  if (out.count > 0) {
    out.mean = set.Mean();
    out.p50 = set.Percentile(50);
    out.p95 = set.Percentile(95);
    out.p99 = set.Percentile(99);
  }
  return out;
}

SlowdownStats ExperimentResult::ForDcPairBidir(DcId a, DcId b) const {
  SampleSet set;
  for (const auto& s : samples) {
    if ((s.src_dc == a && s.dst_dc == b) || (s.src_dc == b && s.dst_dc == a)) {
      set.Add(s.slowdown);
    }
  }
  SlowdownStats out;
  out.count = static_cast<int>(set.size());
  if (out.count > 0) {
    out.mean = set.Mean();
    out.p50 = set.Percentile(50);
    out.p95 = set.Percentile(95);
    out.p99 = set.Percentile(99);
  }
  return out;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  LCMP_CHECK(ValidateConfig(config.lcmp));
  const Graph graph = BuildTopology(config);

  NetworkConfig net_config;
  net_config.seed = config.seed;
  net_config.enable_int = CcNeedsInt(config.cc);
  Network net(graph, net_config, MakePolicyFactory(config.policy, config.lcmp));

  // Control plane provisioning (no-op for non-LCMP policies).
  ControlPlane control_plane(config.lcmp);
  control_plane.Provision(net);

  // Workload.
  const auto pairs = BuildPairing(config, graph.num_dcs());
  TrafficGenConfig traffic;
  traffic.workload = config.workload;
  traffic.offered_bps = OfferedLoadForUtilization(graph, net.routes(), pairs, config.load);
  traffic.num_flows = config.num_flows;
  traffic.seed = Mix64(config.seed ^ 0x7ea1);
  const std::vector<FlowSpec> flows = GenerateTraffic(graph, pairs, traffic);

  // Transport + stats.
  FctRecorder recorder(&net.graph());
  TransportConfig tconfig;
  tconfig.emulation_mode = config.emulation_mode;
  Simulator& sim = net.sim();
  const int expected = static_cast<int>(flows.size());
  RdmaTransport transport(&net, tconfig, config.cc, [&](const FlowRecord& rec) {
    recorder.OnComplete(rec);
    if (recorder.completed() >= expected) {
      sim.Stop();
    }
  });
  for (const FlowSpec& f : flows) {
    transport.ScheduleFlow(f);
  }

  // Fault injection + invariant monitoring (no-ops when unconfigured; the
  // monitor only reads state, so enabling it cannot change the run).
  FaultInjector injector(net, &control_plane);
  std::unique_ptr<InvariantMonitor> monitor;
  if (config.monitor_invariants) {
    InvariantMonitorOptions mopts;
    mopts.strict = config.monitor_strict;
    monitor = std::make_unique<InvariantMonitor>(net, mopts);
    injector.SetMonitor(monitor.get());
    monitor->Start();
  }
  if (!config.fault_plan.empty()) {
    injector.Arm(config.fault_plan);
  }

  LinkUtilizationTracker util(&net);
  util.Begin();
  net.StartPolicyTicks();
  if (config.telemetry_period > 0) {
    control_plane.StartTelemetryLoop(net, config.telemetry_period);
  }
  sim.Run(config.horizon);
  control_plane.StopTelemetryLoop(net);
  if (monitor != nullptr) {
    monitor->Stop();
    monitor->FinalCheck(expected, recorder.completed(), config.fault_plan.AllClearTime());
  }

  ExperimentResult result;
  result.config = config;
  result.overall = recorder.Overall();
  result.buckets = recorder.ByBuckets(SizeBucketEdges(config.workload));
  result.link_utils = util.End();
  result.samples = recorder.samples();
  result.telemetry = control_plane.CollectTelemetry(net);
  result.flows_completed = recorder.completed();
  result.flows_requested = expected;
  result.retransmitted_packets = transport.retransmitted_packets();
  result.timeouts = transport.timeouts();
  result.events_processed = sim.events_processed();
  result.sim_end_time = sim.now();
  result.multipath_pair_fraction = net.routes().MultipathPairFraction();
  result.faults_injected = injector.injections();
  if (monitor != nullptr) {
    result.invariant_checks = monitor->checks_run();
    result.invariant_violations = monitor->violations();
    result.violation_log = monitor->violation_log();
  }
  if (result.flows_completed < expected) {
    LCMP_WARN("experiment finished %d/%d flows before the horizon (policy=%s load=%.2f)",
              result.flows_completed, expected, PolicyKindName(config.policy), config.load);
  }
  return result;
}

}  // namespace lcmp
