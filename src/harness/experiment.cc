#include "harness/experiment.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/lcmp_router.h"
#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "obs/metrics.h"
#include "obs/shard_profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "routing/ecmp.h"
#include "routing/redte.h"
#include "routing/ucmp.h"
#include "routing/wcmp.h"
#include "sim/shard_engine.h"
#include "topo/gen/import.h"
#include "topo/gen/wan_gen.h"

namespace lcmp {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEcmp:
      return "ECMP";
    case PolicyKind::kWcmp:
      return "WCMP";
    case PolicyKind::kUcmp:
      return "UCMP";
    case PolicyKind::kRedte:
      return "RedTE";
    case PolicyKind::kLcmp:
      return "LCMP";
  }
  return "?";
}

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kTestbed8:
      return "testbed-8dc";
    case TopologyKind::kBso13:
      return "bso-13dc";
    case TopologyKind::kTestbed8Sym:
      return "testbed-8dc-sym";
    case TopologyKind::kRandomWan:
      return "random-wan";
    case TopologyKind::kDragonfly:
      return "dragonfly-wan";
    case TopologyKind::kSlimFly:
      return "slimfly-wan";
    case TopologyKind::kFatTree:
      return "fattree-wan";
    case TopologyKind::kImported:
      return "imported-wan";
  }
  return "?";
}

const char* PolicyKindToken(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEcmp:
      return "ecmp";
    case PolicyKind::kWcmp:
      return "wcmp";
    case PolicyKind::kUcmp:
      return "ucmp";
    case PolicyKind::kRedte:
      return "redte";
    case PolicyKind::kLcmp:
      return "lcmp";
  }
  return "?";
}

const char* TopologyKindToken(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kTestbed8:
      return "testbed8";
    case TopologyKind::kBso13:
      return "bso13";
    case TopologyKind::kTestbed8Sym:
      return "testbed8-sym";
    case TopologyKind::kRandomWan:
      return "random";
    case TopologyKind::kDragonfly:
      return "dragonfly";
    case TopologyKind::kSlimFly:
      return "slimfly";
    case TopologyKind::kFatTree:
      return "fattree";
    case TopologyKind::kImported:
      return "imported";
  }
  return "?";
}

const char* FabricKindToken(FabricKind kind) {
  switch (kind) {
    case FabricKind::kCollapsed:
      return "collapsed";
    case FabricKind::kLeafSpine:
      return "leafspine";
  }
  return "?";
}

const char* PathStrategyKindToken(PathStrategyKind kind) {
  switch (kind) {
    case PathStrategyKind::kDownhill:
      return "downhill";
    case PathStrategyKind::kLayered:
      return "layered";
  }
  return "?";
}

const char* WorkloadKindToken(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kWebSearch:
      return "websearch";
    case WorkloadKind::kFbHdp:
      return "fbhdp";
    case WorkloadKind::kAliStorage:
      return "alistorage";
  }
  return "?";
}

const char* PairingKindToken(PairingKind kind) {
  switch (kind) {
    case PairingKind::kEndpointPair:
      return "endpoints";
    case PairingKind::kAllToAll:
      return "all";
    case PairingKind::kAllToAllFocusEndpoints:
      return "all-focus";
    case PairingKind::kEndpointOneWay:
      return "endpoints-oneway";
  }
  return "?";
}

namespace {

// Shared skeleton for the Parse*Kind helpers: match `text` against the token
// table; on failure compose "unknown <what> '<text>' (expected one of: ...)".
template <typename Kind>
bool ParseKindToken(const std::string& text, const char* what,
                    const std::vector<std::pair<const char*, Kind>>& table, Kind* out,
                    std::string* error) {
  for (const auto& [token, kind] : table) {
    if (text == token) {
      *out = kind;
      return true;
    }
  }
  if (error != nullptr) {
    std::string expected;
    for (const auto& [token, kind] : table) {
      (void)kind;
      if (!expected.empty()) {
        expected += " | ";
      }
      expected += token;
    }
    *error = std::string("unknown ") + what + " '" + text + "' (expected one of: " + expected +
             ")";
  }
  return false;
}

}  // namespace

bool ParsePolicyKind(const std::string& text, PolicyKind* out, std::string* error) {
  return ParseKindToken<PolicyKind>(text, "policy",
                                    {{"ecmp", PolicyKind::kEcmp},
                                     {"wcmp", PolicyKind::kWcmp},
                                     {"ucmp", PolicyKind::kUcmp},
                                     {"redte", PolicyKind::kRedte},
                                     {"lcmp", PolicyKind::kLcmp}},
                                    out, error);
}

bool ParseTopologyKind(const std::string& text, TopologyKind* out, std::string* error) {
  return ParseKindToken<TopologyKind>(text, "topology",
                                      {{"testbed8", TopologyKind::kTestbed8},
                                       {"bso13", TopologyKind::kBso13},
                                       {"testbed8-sym", TopologyKind::kTestbed8Sym},
                                       {"random", TopologyKind::kRandomWan},
                                       {"dragonfly", TopologyKind::kDragonfly},
                                       {"slimfly", TopologyKind::kSlimFly},
                                       {"fattree", TopologyKind::kFatTree},
                                       {"imported", TopologyKind::kImported}},
                                      out, error);
}

bool ParseFabricKind(const std::string& text, FabricKind* out, std::string* error) {
  return ParseKindToken<FabricKind>(text, "fabric",
                                    {{"collapsed", FabricKind::kCollapsed},
                                     {"leafspine", FabricKind::kLeafSpine}},
                                    out, error);
}

bool ParsePathStrategyKind(const std::string& text, PathStrategyKind* out, std::string* error) {
  return ParseKindToken<PathStrategyKind>(text, "path strategy",
                                          {{"downhill", PathStrategyKind::kDownhill},
                                           {"layered", PathStrategyKind::kLayered}},
                                          out, error);
}

bool ParseWorkloadKind(const std::string& text, WorkloadKind* out, std::string* error) {
  return ParseKindToken<WorkloadKind>(text, "workload",
                                      {{"websearch", WorkloadKind::kWebSearch},
                                       {"fbhdp", WorkloadKind::kFbHdp},
                                       {"alistorage", WorkloadKind::kAliStorage}},
                                      out, error);
}

bool ParsePairingKind(const std::string& text, PairingKind* out, std::string* error) {
  return ParseKindToken<PairingKind>(text, "pairing",
                                     {{"endpoints", PairingKind::kEndpointPair},
                                      {"all", PairingKind::kAllToAll},
                                      {"all-focus", PairingKind::kAllToAllFocusEndpoints},
                                      {"endpoints-oneway", PairingKind::kEndpointOneWay}},
                                     out, error);
}

PolicyFactory MakePolicyFactory(PolicyKind kind, const LcmpConfig& lcmp_config) {
  switch (kind) {
    case PolicyKind::kEcmp:
      return [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
    case PolicyKind::kWcmp:
      return [](SwitchNode&) { return std::make_unique<WcmpPolicy>(); };
    case PolicyKind::kUcmp:
      return [](SwitchNode&) { return std::make_unique<UcmpPolicy>(); };
    case PolicyKind::kRedte:
      return [](SwitchNode&) { return std::make_unique<RedtePolicy>(); };
    case PolicyKind::kLcmp:
      return MakeLcmpFactory(lcmp_config);
  }
  return [](SwitchNode&) { return std::make_unique<EcmpPolicy>(); };
}

namespace {

// Topology-generation seed: its own field when set, otherwise the run seed.
// Kept separate so a sweep can vary traffic seeds over one fixed graph.
uint64_t EffectiveTopoSeed(const ExperimentConfig& config) {
  return config.topo_seed != 0 ? config.topo_seed : config.seed;
}

// Fabric shape for the generated/imported WAN kinds.
FabricOptions GeneratedFabric(const ExperimentConfig& config) {
  FabricOptions fabric;
  fabric.kind = config.fabric;
  fabric.hosts = config.hosts_per_dc;
  fabric.leaves = config.fabric_leaves;
  fabric.spines = config.fabric_spines;
  return fabric;
}

// The base topology before experiment-axis post-processing.
Graph BuildBaseTopology(const ExperimentConfig& config) {
  switch (config.topo) {
    case TopologyKind::kTestbed8: {
      Testbed8Options opts;
      opts.fabric.hosts = config.hosts_per_dc;
      return BuildTestbed8(opts);
    }
    case TopologyKind::kBso13: {
      Bso13Options opts;
      opts.fabric.hosts = config.hosts_per_dc;
      return BuildBso13(opts);
    }
    case TopologyKind::kTestbed8Sym: {
      Testbed8Options opts;
      for (auto& cls : opts.classes) {
        cls.rate_bps = Gbps(100);
        cls.per_link_delay_ns = Milliseconds(10);
      }
      opts.fabric.hosts = config.hosts_per_dc;
      return BuildTestbed8(opts);
    }
    case TopologyKind::kRandomWan: {
      RandomWanOptions opts;
      opts.num_dcs = config.num_dcs;
      opts.extra_chords = config.extra_chords;
      opts.seed = EffectiveTopoSeed(config);
      opts.fabric = GeneratedFabric(config);
      return BuildRandomWan(opts);
    }
    case TopologyKind::kDragonfly: {
      DragonflyWanOptions opts;
      opts.num_dcs = config.num_dcs;
      opts.group_size = config.df_group_size;
      opts.global_links_per_dc = config.df_global_links;
      opts.seed = EffectiveTopoSeed(config);
      opts.fabric = GeneratedFabric(config);
      return BuildDragonflyWan(opts);
    }
    case TopologyKind::kSlimFly: {
      SlimFlyWanOptions opts;
      opts.num_dcs = config.num_dcs;
      opts.seed = EffectiveTopoSeed(config);
      opts.fabric = GeneratedFabric(config);
      return BuildSlimFlyWan(opts);
    }
    case TopologyKind::kFatTree: {
      FatTreeWanOptions opts;
      opts.num_dcs = config.num_dcs;
      opts.seed = EffectiveTopoSeed(config);
      opts.fabric = GeneratedFabric(config);
      return BuildFatTreeWan(opts);
    }
    case TopologyKind::kImported: {
      WanImportOptions opts;
      opts.path = config.topo_file;
      opts.fabric = GeneratedFabric(config);
      Graph g;
      std::string error;
      LCMP_CHECK_MSG(ImportWan(opts, &g, &error), "topology import failed: %s", error.c_str());
      return g;
    }
  }
  return BuildTestbed8({});
}

}  // namespace

Graph BuildTopology(const ExperimentConfig& config) {
  Graph g = BuildBaseTopology(config);
  // Oversubscribed DCI borders: divide every inter-DC link's rate by
  // os_borders, leaving intra-DC fabric capacity untouched. os_borders == 1
  // (the default) touches nothing, so pinned topologies stay bit-identical.
  if (config.os_borders > 1) {
    for (int li = 0; li < g.num_links(); ++li) {
      const LinkSpec& l = g.link(li);
      if (g.vertex(l.a).kind == VertexKind::kDciSwitch &&
          g.vertex(l.b).kind == VertexKind::kDciSwitch && g.vertex(l.a).dc != g.vertex(l.b).dc) {
        g.SetLinkRate(li, std::max<int64_t>(l.rate_bps / config.os_borders, 1));
      }
    }
  }
  return g;
}

std::vector<std::pair<DcId, DcId>> BuildPairing(const ExperimentConfig& config, int num_dcs) {
  if (config.pairing == PairingKind::kAllToAll) {
    return AllOrderedDcPairs(num_dcs);
  }
  if (config.pairing == PairingKind::kAllToAllFocusEndpoints) {
    std::vector<std::pair<DcId, DcId>> pairs = AllOrderedDcPairs(num_dcs);
    const DcId a = 0;
    const DcId b = static_cast<DcId>(num_dcs - 1);
    for (int i = 0; i < 3; ++i) {
      pairs.emplace_back(a, b);
      pairs.emplace_back(b, a);
    }
    return pairs;
  }
  const DcId a = 0;
  const DcId b = static_cast<DcId>(num_dcs - 1);
  if (config.pairing == PairingKind::kEndpointOneWay) {
    return {{a, b}};
  }
  // Endpoint pair: first and last DC, both directions (DC1 <-> DC8 on the
  // testbed topology; DC1 <-> DC13 endpoints carry hosts in bso13 too).
  return {{a, b}, {b, a}};
}

SlowdownStats ExperimentResult::ForDcPair(DcId src, DcId dst) const {
  SampleSet set;
  for (const auto& s : samples) {
    if (s.src_dc == src && s.dst_dc == dst) {
      set.Add(s.slowdown);
    }
  }
  SlowdownStats out;
  out.count = static_cast<int>(set.size());
  if (out.count > 0) {
    out.mean = set.Mean();
    out.p50 = set.Percentile(50);
    out.p95 = set.Percentile(95);
    out.p99 = set.Percentile(99);
  }
  return out;
}

SlowdownStats ExperimentResult::ForDcPairBidir(DcId a, DcId b) const {
  SampleSet set;
  for (const auto& s : samples) {
    if ((s.src_dc == a && s.dst_dc == b) || (s.src_dc == b && s.dst_dc == a)) {
      set.Add(s.slowdown);
    }
  }
  SlowdownStats out;
  out.count = static_cast<int>(set.size());
  if (out.count > 0) {
    out.mean = set.Mean();
    out.p50 = set.Percentile(50);
    out.p95 = set.Percentile(95);
    out.p99 = set.Percentile(99);
  }
  return out;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  LCMP_CHECK(ValidateConfig(config.lcmp));
  const Graph graph = BuildTopology(config);

  // Right-size the flow cache to the run when requested. Applied to a copy:
  // the config echoed in results/digests stays exactly what the user set.
  LcmpConfig lcmp_eff = config.lcmp;
  if (lcmp_eff.flow_cache_auto) {
    lcmp_eff.flow_cache_capacity =
        std::clamp(4 * config.num_flows, 1024, config.lcmp.flow_cache_capacity);
  }

  NetworkConfig net_config;
  net_config.seed = config.seed;
  net_config.shards = config.shards;
  net_config.enable_int = CcNeedsInt(config.cc);
  net_config.pfc.enabled = config.pfc_enabled;
  net_config.pfc.xoff_bytes = config.pfc_xoff_bytes;
  net_config.pfc.xon_bytes = config.pfc_xon_bytes;
  net_config.paths.strategy = config.path_strategy;
  net_config.paths.layers = config.path_layers;
  net_config.paths.drop_permille = config.layer_drop_permille;
  net_config.paths.seed = EffectiveTopoSeed(config);
  LCMP_CHECK(config.fec_k == 0 || config.fec_m > 0);
  net_config.dci_loss_rate = config.dci_loss_rate;
  net_config.dci_burst_len = config.dci_burst_len;
  net_config.fec_k = config.fec_k;
  net_config.fec_m = config.fec_m;
  Network net(graph, net_config, MakePolicyFactory(config.policy, lcmp_eff));

  // Control plane provisioning (no-op for non-LCMP policies).
  ControlPlane control_plane(lcmp_eff);
  control_plane.Provision(net);

  // Workload: open-loop Poisson arrivals by default, or a simultaneous burst
  // (herd-effect experiments) when burst_mode is set.
  auto pairs = BuildPairing(config, graph.num_dcs());
  // Transit-heavy WANs (fat-tree agg/core stages, imported backbones) have
  // host-less DCs that cannot source or sink traffic: drop those pairs, and
  // if the endpoint pairing itself landed on transit DCs, retarget it to the
  // first/last host-bearing DC. No-op on the paper topologies (their endpoint
  // DCs always carry hosts, and all-to-all over them never hits an empty DC).
  {
    std::vector<bool> has_hosts(static_cast<size_t>(graph.num_dcs()), false);
    for (NodeId id = 0; id < graph.num_vertices(); ++id) {
      const Vertex& v = graph.vertex(id);
      if (v.kind == VertexKind::kHost && v.dc >= 0) {
        has_hosts[static_cast<size_t>(v.dc)] = true;
      }
    }
    auto hostless = [&](const std::pair<DcId, DcId>& p) {
      return !has_hosts[static_cast<size_t>(p.first)] || !has_hosts[static_cast<size_t>(p.second)];
    };
    pairs.erase(std::remove_if(pairs.begin(), pairs.end(), hostless), pairs.end());
    if (pairs.empty()) {
      DcId first = kInvalidDc;
      DcId last = kInvalidDc;
      for (DcId dc = 0; dc < graph.num_dcs(); ++dc) {
        if (has_hosts[static_cast<size_t>(dc)]) {
          if (first == kInvalidDc) {
            first = dc;
          }
          last = dc;
        }
      }
      LCMP_CHECK_MSG(first != kInvalidDc && last != first,
                     "topology has fewer than two host-bearing DCs");
      pairs = config.pairing == PairingKind::kEndpointOneWay
                  ? std::vector<std::pair<DcId, DcId>>{{first, last}}
                  : std::vector<std::pair<DcId, DcId>>{{first, last}, {last, first}};
    }
  }
  std::vector<FlowSpec> flows;
  if (config.burst_mode) {
    BurstConfig burst;
    burst.workload = config.workload;
    burst.num_flows = config.num_flows;
    burst.fixed_size_bytes = config.burst_size_bytes;
    burst.seed = Mix64(config.seed ^ 0x7ea1);
    flows = GenerateBurst(graph, pairs, burst);
  } else {
    TrafficGenConfig traffic;
    traffic.workload = config.workload;
    traffic.offered_bps = OfferedLoadForUtilization(graph, net.routes(), pairs, config.load);
    traffic.num_flows = config.num_flows;
    traffic.seed = Mix64(config.seed ^ 0x7ea1);
    traffic.mix_intra = config.mix_intra;
    flows = GenerateTraffic(graph, pairs, traffic);
  }
  // Synchronized N-to-1 incast rides on top of the background matrix; its
  // flow ids start right after the background flows so the result can be
  // split into background vs incast populations by id.
  FlowId incast_first_id = 0;
  if (config.incast_fanin > 0) {
    IncastConfig inc;
    inc.fanin = config.incast_fanin;
    inc.bytes_per_sender = config.incast_bytes;
    inc.start_time = 0;
    inc.first_flow_id = static_cast<FlowId>(flows.size()) + 1;
    incast_first_id = inc.first_flow_id;
    const std::vector<FlowSpec> inc_flows = GenerateIncast(graph, inc);
    flows.insert(flows.end(), inc_flows.begin(), inc_flows.end());
  }

  // Transport + stats.
  FctRecorder recorder(&net.graph());
  TransportConfig tconfig;
  tconfig.cc = config.cc;
  tconfig.cc_inter = config.cc_inter;
  tconfig.cc_intra = config.cc_intra;
  tconfig.emulation_mode = config.emulation_mode;
  // Either the first-class mode switch or the deprecated ooo_tolerance
  // alias selects IRN (the transport ctor honors the alias too).
  tconfig.reliability = config.reliability;
  tconfig.ooo_tolerance = config.ooo_tolerance;
  tconfig.max_inflight_bytes = config.max_inflight_bytes;
  Simulator& sim = net.sim();
  const int expected = static_cast<int>(flows.size());
  // Sharded runs buffer completions with their (time, key) stamps and replay
  // them into the recorder in merged order after the run — the exact order
  // the sequential core's callback saw them (digest equality depends on it).
  std::unique_ptr<ShardEngine<FlowRecord>> engine;
  if (net.num_shards() > 1) {
    engine = std::make_unique<ShardEngine<FlowRecord>>(&net, config.horizon, expected);
  }
  RdmaTransport transport(&net, tconfig, [&](const FlowRecord& rec) {
    if (engine != nullptr) {
      engine->OnComplete(rec, rec.spec.dst);
      return;
    }
    recorder.OnComplete(rec);
    if (recorder.completed() >= expected) {
      sim.Stop();
    }
  });
  for (const FlowSpec& f : flows) {
    transport.ScheduleFlow(f);
  }

  // Fault injection + invariant monitoring (no-ops when unconfigured; the
  // monitor only reads state, so enabling it cannot change the run).
  FaultInjector injector(net, &control_plane);
  std::unique_ptr<InvariantMonitor> monitor;
  if (config.monitor_invariants) {
    InvariantMonitorOptions mopts;
    mopts.strict = config.monitor_strict;
    monitor = std::make_unique<InvariantMonitor>(net, mopts);
    injector.SetMonitor(monitor.get());
    monitor->Start();
  }
  // An explicit plan wins; otherwise a non-zero chaos seed draws one, so
  // fault sweeps are expressible as plain (sweepable) config fields.
  FaultPlan armed_plan = config.fault_plan;
  if (armed_plan.empty() && config.chaos_seed != 0) {
    ChaosOptions chaos;
    chaos.seed = config.chaos_seed;
    chaos.faults_per_sec = config.chaos_rate;
    chaos.window = Milliseconds(config.chaos_window_ms);
    armed_plan = GenerateChaosPlan(graph, chaos);
  }
  if (!armed_plan.empty()) {
    injector.Arm(armed_plan);
  }

  LinkUtilizationTracker util(&net);
  util.Begin();
  net.StartPolicyTicks();
  if (config.telemetry_period > 0) {
    control_plane.StartTelemetryLoop(net, config.telemetry_period);
  }
  if (engine != nullptr) {
    // Barrier/stall profiling is wall-clock-only, so arm it whenever any obs
    // subsystem is on (the trace export and bench JSON consume it) or the
    // caller asked explicitly. Begin() can fail only if another run holds the
    // profiler (e.g. a parallel sweep); then this run just goes unprofiled.
    const bool profile_barriers =
        (config.profile_barriers || obs::MetricsEnabled() || obs::TraceEnabled() ||
         obs::ProfileEnabled() || obs::TimeSeriesHub::Instance().enabled()) &&
        obs::BarrierProfiler::Instance().Begin(net.num_shards());
    engine->Run();
    if (profile_barriers) {
      obs::BarrierProfiler::Instance().End();
    }
    for (const auto& c : engine->SortedCompletions()) {
      recorder.OnComplete(c.rec);
    }
  } else {
    sim.Run(config.horizon);
  }
  control_plane.StopTelemetryLoop(net);
  if (monitor != nullptr) {
    monitor->Stop();
    monitor->FinalCheck(expected, recorder.completed(), armed_plan.AllClearTime());
  }

  ExperimentResult result;
  result.config = config;
  result.overall = recorder.Overall();
  if (incast_first_id > 0) {
    result.incast = recorder.Where(
        [incast_first_id](const FctRecorder::Sample& s) { return s.flow >= incast_first_id; });
    result.incast_flows_completed = result.incast.count;
  }
  result.buckets = recorder.ByBuckets(SizeBucketEdges(config.workload));
  result.link_utils = util.End();
  result.samples = recorder.samples();
  result.telemetry = control_plane.CollectTelemetry(net);
  result.flows_completed = recorder.completed();
  result.flows_requested = expected;
  result.retransmitted_packets = transport.retransmitted_packets();
  result.timeouts = transport.timeouts();
  const DciTierStats dci_stats = net.CollectDciStats();
  result.dci_lost_packets = dci_stats.lost_packets;
  result.fec_repair_packets = dci_stats.repair_packets;
  result.fec_recovered_packets = dci_stats.recovered_packets;
  result.fec_unrecovered_packets = dci_stats.unrecovered_packets;
  result.events_processed = engine != nullptr ? engine->events_processed() : sim.events_processed();
  result.sim_end_time = engine != nullptr ? engine->end_time() : sim.now();
  result.multipath_pair_fraction = net.routes().MultipathPairFraction();
  result.faults_injected = injector.injections();
  result.topo_bytes = net.TopoBytes();
  result.path_table_bytes = net.PathTableBytes();
  result.static_table_bytes = net.StaticTableBytes();
  result.num_dcis = net.NumDciSwitches();
  for (NodeId id = 0; id < graph.num_vertices(); ++id) {
    if (graph.vertex(id).kind != VertexKind::kHost) {
      ++result.num_switches;
    }
  }
  // Substrate accounting (cheap: one pass over switch ports).
  for (NodeId id = 0; id < graph.num_vertices(); ++id) {
    if (graph.vertex(id).kind == VertexKind::kHost) {
      continue;
    }
    SwitchNode& sw = net.switch_node(id);
    for (PortIndex p = 0; p < sw.num_ports(); ++p) {
      result.switch_dropped_packets += sw.port(p).dropped_packets();
      result.total_paused_ns += sw.port(p).paused_ns();
    }
    if (sw.pfc() != nullptr) {
      result.pfc_pause_frames += sw.pfc()->pause_frames_sent();
    }
  }
  // Endpoint egress spread: the first DC's candidate egresses toward the
  // last DC (herd-effect experiments read these off the result).
  if (graph.num_dcs() >= 2) {
    const DcId last = static_cast<DcId>(graph.num_dcs() - 1);
    SwitchNode& first_dci = net.switch_node(graph.DciOfDc(0));
    for (const PathCandidate& cand : first_dci.CandidatesTo(last)) {
      const Port& port = first_dci.port(cand.port);
      result.endpoint_max_queue_bytes =
          std::max(result.endpoint_max_queue_bytes, port.max_queue_bytes());
      if (port.tx_bytes() > 1'000'000) {
        ++result.endpoint_egress_used;
      }
    }
  }
  if (monitor != nullptr) {
    result.invariant_checks = monitor->checks_run();
    result.invariant_violations = monitor->violations();
    result.violation_log = monitor->violation_log();
  }
  if (result.flows_completed < expected) {
    LCMP_WARN("experiment finished %d/%d flows before the horizon (policy=%s load=%.2f)",
              result.flows_completed, expected, PolicyKindName(config.policy), config.load);
  }
  return result;
}

}  // namespace lcmp
