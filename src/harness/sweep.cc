#include "harness/sweep.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "harness/json_util.h"
#include "transport/cc/cc_registry.h"
#include "workload/flow_cdf.h"

namespace lcmp {
namespace {

using json::FormatDouble;
using json::JsonEscape;
using json::JsonValue;

// ---- scalar codecs ----

bool ParseI64Val(const char* field, const std::string& text, int64_t* out, std::string* error) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    if (error != nullptr) {
      *error = std::string("field '") + field + "': expected integer, got '" + text + "'";
    }
    return false;
  }
  *out = v;
  return true;
}

bool ParseIntVal(const char* field, const std::string& text, int* out, std::string* error) {
  int64_t v = 0;
  if (!ParseI64Val(field, text, &v, error)) {
    return false;
  }
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    if (error != nullptr) {
      *error = std::string("field '") + field + "': value " + text + " out of int range";
    }
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseU64Val(const char* field, const std::string& text, uint64_t* out, std::string* error) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || text[0] == '-' || end != text.c_str() + text.size() || errno == ERANGE) {
    if (error != nullptr) {
      *error = std::string("field '") + field + "': expected unsigned integer, got '" + text + "'";
    }
    return false;
  }
  *out = v;
  return true;
}

bool ParseDoubleVal(const char* field, const std::string& text, double* out, std::string* error) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    if (error != nullptr) {
      *error = std::string("field '") + field + "': expected number, got '" + text + "'";
    }
    return false;
  }
  *out = v;
  return true;
}

bool ParseBoolVal(const char* field, const std::string& text, bool* out, std::string* error) {
  if (text == "true" || text == "1" || text == "on" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "off" || text == "no") {
    *out = false;
    return true;
  }
  if (error != nullptr) {
    *error = std::string("field '") + field + "': expected true|false, got '" + text + "'";
  }
  return false;
}

// ---- field registry ----

struct FieldEntry {
  const char* name;
  bool (*apply)(ExperimentConfig*, const std::string&, std::string*);
  // Null for write-only fields (the per-segment cc selectors): they never
  // appear in config echoes or serialized specs — their state is already
  // carried by the composite "cc" field.
  std::string (*get)(const ExperimentConfig&);
};

// REF is a member chain off ExperimentConfig (e.g. `load` or `lcmp.alpha`).
#define LCMP_FIELD_INT(NAME, REF)                                    \
  {NAME,                                                             \
   [](ExperimentConfig* c, const std::string& v, std::string* e) {   \
     return ParseIntVal(NAME, v, &(c->REF), e);                      \
   },                                                                \
   [](const ExperimentConfig& c) { return std::to_string(c.REF); }}

#define LCMP_FIELD_I64(NAME, REF)                                    \
  {NAME,                                                             \
   [](ExperimentConfig* c, const std::string& v, std::string* e) {   \
     return ParseI64Val(NAME, v, &(c->REF), e);                      \
   },                                                                \
   [](const ExperimentConfig& c) { return std::to_string(c.REF); }}

#define LCMP_FIELD_U64(NAME, REF)                                    \
  {NAME,                                                             \
   [](ExperimentConfig* c, const std::string& v, std::string* e) {   \
     return ParseU64Val(NAME, v, &(c->REF), e);                      \
   },                                                                \
   [](const ExperimentConfig& c) { return std::to_string(c.REF); }}

#define LCMP_FIELD_DOUBLE(NAME, REF)                                 \
  {NAME,                                                             \
   [](ExperimentConfig* c, const std::string& v, std::string* e) {   \
     return ParseDoubleVal(NAME, v, &(c->REF), e);                   \
   },                                                                \
   [](const ExperimentConfig& c) { return FormatDouble(c.REF); }}

#define LCMP_FIELD_BOOL(NAME, REF)                                   \
  {NAME,                                                             \
   [](ExperimentConfig* c, const std::string& v, std::string* e) {   \
     return ParseBoolVal(NAME, v, &(c->REF), e);                     \
   },                                                                \
   [](const ExperimentConfig& c) {                                   \
     return std::string(c.REF ? "true" : "false");                   \
   }}

// Time fields are exposed in a human unit (the NAME's _ms/_us suffix) and
// stored as TimeNs; sub-unit precision is not representable by design.
#define LCMP_FIELD_TIME(NAME, REF, UNIT_NS)                          \
  {NAME,                                                             \
   [](ExperimentConfig* c, const std::string& v, std::string* e) {   \
     int64_t units = 0;                                              \
     if (!ParseI64Val(NAME, v, &units, e)) {                         \
       return false;                                                 \
     }                                                               \
     c->REF = units * (UNIT_NS);                                     \
     return true;                                                    \
   },                                                                \
   [](const ExperimentConfig& c) {                                   \
     return std::to_string(c.REF / (UNIT_NS));                       \
   }}

const std::vector<FieldEntry>& FieldTable() {
  static const std::vector<FieldEntry>* table = new std::vector<FieldEntry>{
      // Experiment shape.
      {"topo",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParseTopologyKind(v, &c->topo, e);
       },
       [](const ExperimentConfig& c) { return std::string(TopologyKindToken(c.topo)); }},
      {"pairing",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParsePairingKind(v, &c->pairing, e);
       },
       [](const ExperimentConfig& c) { return std::string(PairingKindToken(c.pairing)); }},
      {"policy",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParsePolicyKind(v, &c->policy, e);
       },
       [](const ExperimentConfig& c) { return std::string(PolicyKindToken(c.policy)); }},
      // "cc" carries the whole SegmentCcSpec: a bare token ("dcqcn") sets
      // both segments — so uniform specs echo exactly what the legacy enum
      // field echoed — while "lcp/dcqcn" splits inter/intra.
      {"cc",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return SegmentCcSpec::Parse(v, &c->cc, e);
       },
       [](const ExperimentConfig& c) { return c.cc.Token(); }},
      {"cc.inter",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParseCcToken(v, &c->cc.inter, e);
       },
       nullptr},
      {"cc.intra",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParseCcToken(v, &c->cc.intra, e);
       },
       nullptr},
      {"workload",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParseWorkloadKind(v, &c->workload, e);
       },
       [](const ExperimentConfig& c) { return std::string(WorkloadKindToken(c.workload)); }},
      LCMP_FIELD_DOUBLE("load", load),
      LCMP_FIELD_INT("flows", num_flows),
      LCMP_FIELD_U64("seed", seed),
      LCMP_FIELD_INT("hosts_per_dc", hosts_per_dc),
      // Generated/imported topologies (topo/gen/).
      LCMP_FIELD_INT("dcs", num_dcs),
      LCMP_FIELD_U64("topo_seed", topo_seed),
      LCMP_FIELD_INT("chords", extra_chords),
      LCMP_FIELD_INT("df_group_size", df_group_size),
      LCMP_FIELD_INT("df_global_links", df_global_links),
      {"topo_file",
       [](ExperimentConfig* c, const std::string& v, std::string*) {
         c->topo_file = v;
         return true;
       },
       [](const ExperimentConfig& c) { return c.topo_file; }},
      {"fabric",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParseFabricKind(v, &c->fabric, e);
       },
       [](const ExperimentConfig& c) { return std::string(FabricKindToken(c.fabric)); }},
      LCMP_FIELD_INT("fabric_leaves", fabric_leaves),
      LCMP_FIELD_INT("fabric_spines", fabric_spines),
      {"paths",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParsePathStrategyKind(v, &c->path_strategy, e);
       },
       [](const ExperimentConfig& c) {
         return std::string(PathStrategyKindToken(c.path_strategy));
       }},
      LCMP_FIELD_INT("path_layers", path_layers),
      LCMP_FIELD_INT("layer_drop_permille", layer_drop_permille),
      LCMP_FIELD_BOOL("emulation", emulation_mode),
      LCMP_FIELD_TIME("horizon_ms", horizon, 1'000'000),
      LCMP_FIELD_TIME("telemetry_us", telemetry_period, 1'000),
      // Faults / invariants.
      LCMP_FIELD_BOOL("monitor", monitor_invariants),
      LCMP_FIELD_BOOL("monitor_strict", monitor_strict),
      LCMP_FIELD_U64("chaos_seed", chaos_seed),
      LCMP_FIELD_DOUBLE("chaos_rate", chaos_rate),
      LCMP_FIELD_I64("chaos_window_ms", chaos_window_ms),
      // Transport / substrate.
      {"reliability",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         return ParseReliabilityMode(v, &c->reliability, e);
       },
       [](const ExperimentConfig& c) { return std::string(ReliabilityModeToken(c.reliability)); }},
      LCMP_FIELD_BOOL("ooo_tolerance", ooo_tolerance),
      // Lossy long-haul tier (DESIGN.md §15).
      LCMP_FIELD_DOUBLE("dci_loss_rate", dci_loss_rate),
      LCMP_FIELD_DOUBLE("dci_burst_len", dci_burst_len),
      LCMP_FIELD_INT("fec_k", fec_k),
      LCMP_FIELD_INT("fec_m", fec_m),
      // Composite FEC spec "k:m" (or "off"); echoes alongside fec_k/fec_m
      // (re-applying both is idempotent).
      {"fec",
       [](ExperimentConfig* c, const std::string& v, std::string* e) {
         if (v == "off" || v == "0") {
           c->fec_k = 0;
           c->fec_m = 0;
           return true;
         }
         const size_t colon = v.find(':');
         int k = 0;
         int m = 0;
         if (colon == std::string::npos || !ParseIntVal("fec", v.substr(0, colon), &k, e) ||
             !ParseIntVal("fec", v.substr(colon + 1), &m, e) || k <= 0 || m <= 0) {
           if (e != nullptr && e->empty()) {
             *e = "fec expects k:m (positive integers) or off";
           }
           return false;
         }
         c->fec_k = k;
         c->fec_m = m;
         return true;
       },
       [](const ExperimentConfig& c) {
         return c.fec_k > 0 ? std::to_string(c.fec_k) + ":" + std::to_string(c.fec_m)
                            : std::string("off");
       }},
      LCMP_FIELD_BOOL("pfc", pfc_enabled),
      LCMP_FIELD_I64("pfc_xoff_bytes", pfc_xoff_bytes),
      LCMP_FIELD_I64("pfc_xon_bytes", pfc_xon_bytes),
      LCMP_FIELD_BOOL("burst", burst_mode),
      LCMP_FIELD_U64("burst_size_bytes", burst_size_bytes),
      // Incast / oversubscription scenario family (DESIGN.md §14).
      LCMP_FIELD_INT("incast_fanin", incast_fanin),
      LCMP_FIELD_U64("incast_bytes", incast_bytes),
      LCMP_FIELD_INT("os_borders", os_borders),
      LCMP_FIELD_DOUBLE("mix_intra", mix_intra),
      LCMP_FIELD_I64("max_inflight_bytes", max_inflight_bytes),
      // Per-segment CC tuning (defaults match each algorithm's paper values,
      // so an unset field changes nothing).
      LCMP_FIELD_DOUBLE("cc.inter.lcp.gain", cc_inter.lcp.gain),
      LCMP_FIELD_TIME("cc.inter.lcp.headroom_us", cc_inter.lcp.headroom, 1'000),
      LCMP_FIELD_I64("cc.inter.lcp.ai_bps", cc_inter.lcp.ai_bps),
      LCMP_FIELD_DOUBLE("cc.inter.dcqcn.g", cc_inter.dcqcn.g),
      LCMP_FIELD_I64("cc.inter.dcqcn.rai_bps", cc_inter.dcqcn.rai_bps),
      LCMP_FIELD_DOUBLE("cc.inter.dctcp.g", cc_inter.dctcp.g),
      LCMP_FIELD_DOUBLE("cc.inter.timely.beta", cc_inter.timely.beta),
      LCMP_FIELD_DOUBLE("cc.inter.hpcc.eta", cc_inter.hpcc.eta),
      LCMP_FIELD_DOUBLE("cc.intra.lcp.gain", cc_intra.lcp.gain),
      LCMP_FIELD_TIME("cc.intra.lcp.headroom_us", cc_intra.lcp.headroom, 1'000),
      LCMP_FIELD_I64("cc.intra.lcp.ai_bps", cc_intra.lcp.ai_bps),
      LCMP_FIELD_DOUBLE("cc.intra.dcqcn.g", cc_intra.dcqcn.g),
      LCMP_FIELD_I64("cc.intra.dcqcn.rai_bps", cc_intra.dcqcn.rai_bps),
      LCMP_FIELD_DOUBLE("cc.intra.dctcp.g", cc_intra.dctcp.g),
      LCMP_FIELD_DOUBLE("cc.intra.timely.beta", cc_intra.timely.beta),
      LCMP_FIELD_DOUBLE("cc.intra.hpcc.eta", cc_intra.hpcc.eta),
      // LCMP ablation knobs (paper Sec. 7.2-7.5).
      LCMP_FIELD_INT("lcmp.alpha", lcmp.alpha),
      LCMP_FIELD_INT("lcmp.beta", lcmp.beta),
      LCMP_FIELD_INT("lcmp.w_dl", lcmp.w_dl),
      LCMP_FIELD_INT("lcmp.w_lc", lcmp.w_lc),
      LCMP_FIELD_INT("lcmp.s_path", lcmp.s_path),
      LCMP_FIELD_INT("lcmp.w_ql", lcmp.w_ql),
      LCMP_FIELD_INT("lcmp.w_tl", lcmp.w_tl),
      LCMP_FIELD_INT("lcmp.w_dp", lcmp.w_dp),
      LCMP_FIELD_INT("lcmp.s_cong", lcmp.s_cong),
      LCMP_FIELD_INT("lcmp.trend_shift_k", lcmp.trend_shift_k),
      LCMP_FIELD_INT("lcmp.keep_num", lcmp.keep_num),
      LCMP_FIELD_INT("lcmp.keep_den", lcmp.keep_den),
      LCMP_FIELD_INT("lcmp.all_congested_threshold", lcmp.all_congested_threshold),
      LCMP_FIELD_INT("lcmp.flow_cache_capacity", lcmp.flow_cache_capacity),
      LCMP_FIELD_BOOL("lcmp.flow_cache_auto", lcmp.flow_cache_auto),
      LCMP_FIELD_TIME("lcmp.sample_interval_us", lcmp.sample_interval, 1'000),
      LCMP_FIELD_TIME("lcmp.flow_idle_timeout_us", lcmp.flow_idle_timeout, 1'000),
      LCMP_FIELD_TIME("lcmp.gc_period_ms", lcmp.gc_period, 1'000'000),
      LCMP_FIELD_BOOL("lcmp.disable_failover", lcmp.disable_failover),
  };
  return *table;
}

#undef LCMP_FIELD_INT
#undef LCMP_FIELD_I64
#undef LCMP_FIELD_U64
#undef LCMP_FIELD_DOUBLE
#undef LCMP_FIELD_BOOL
#undef LCMP_FIELD_TIME

bool IsKnownField(const std::string& field) {
  for (const FieldEntry& entry : FieldTable()) {
    if (field == entry.name) {
      return true;
    }
  }
  return false;
}

bool UnknownFieldError(const std::string& field, std::string* error) {
  if (error != nullptr) {
    std::string known;
    for (const FieldEntry& entry : FieldTable()) {
      if (!known.empty()) {
        known += ", ";
      }
      known += entry.name;
    }
    *error = "unknown config field '" + field + "' (known: " + known + ", overrides)";
  }
  return false;
}

}  // namespace

std::vector<std::string> KnownConfigFields() {
  std::vector<std::string> names;
  names.reserve(FieldTable().size());
  for (const FieldEntry& entry : FieldTable()) {
    names.emplace_back(entry.name);
  }
  return names;
}

bool ApplyConfigField(ExperimentConfig* config, const std::string& field,
                      const std::string& value, std::string* error) {
  if (field == "overrides") {
    std::istringstream stream(value);
    std::string token;
    while (stream >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        if (error != nullptr) {
          *error = "overrides token '" + token + "' is not of the form field=value";
        }
        return false;
      }
      if (!ApplyConfigField(config, token.substr(0, eq), token.substr(eq + 1), error)) {
        return false;
      }
    }
    return true;
  }
  for (const FieldEntry& entry : FieldTable()) {
    if (field == entry.name) {
      return entry.apply(config, value, error);
    }
  }
  return UnknownFieldError(field, error);
}

bool GetConfigField(const ExperimentConfig& config, const std::string& field, std::string* out) {
  for (const FieldEntry& entry : FieldTable()) {
    if (field == entry.name) {
      if (entry.get == nullptr) {
        return false;  // write-only field
      }
      *out = entry.get(config);
      return true;
    }
  }
  return false;
}

// ---- builder ----

SweepSpec& SweepSpec::Axis(std::string field, std::vector<std::string> values) {
  SweepAxis axis;
  axis.field = std::move(field);
  axis.values.reserve(values.size());
  for (std::string& value : values) {
    axis.values.emplace_back(std::move(value));
  }
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::AxisLabeled(std::string field, std::vector<AxisValue> values) {
  SweepAxis axis;
  axis.field = std::move(field);
  axis.values = std::move(values);
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::Policies(const std::vector<PolicyKind>& kinds) {
  SweepAxis axis;
  axis.field = "policy";
  for (const PolicyKind kind : kinds) {
    axis.values.emplace_back(PolicyKindToken(kind), PolicyKindName(kind));
  }
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::Loads(const std::vector<double>& loads) {
  SweepAxis axis;
  axis.field = "load";
  for (const double load : loads) {
    axis.values.emplace_back(json::FormatDouble(load));
  }
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::Seeds(const std::vector<uint64_t>& seeds) {
  SweepAxis axis;
  axis.field = "seed";
  for (const uint64_t seed : seeds) {
    axis.values.emplace_back(std::to_string(seed));
  }
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::Workloads(const std::vector<WorkloadKind>& kinds) {
  SweepAxis axis;
  axis.field = "workload";
  for (const WorkloadKind kind : kinds) {
    axis.values.emplace_back(WorkloadKindToken(kind), WorkloadKindName(kind));
  }
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::Ccs(const std::vector<std::string>& tokens) {
  SweepAxis axis;
  axis.field = "cc";
  for (const std::string& token : tokens) {
    axis.values.emplace_back(token);
  }
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::Variants(std::vector<AxisValue> variants) {
  return AxisLabeled("overrides", std::move(variants));
}

// ---- expansion ----

bool ExpandSweep(const SweepSpec& spec, std::vector<SweepRun>* runs, std::string* error) {
  runs->clear();
  size_t total = 1;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.field != "overrides" && !IsKnownField(axis.field)) {
      return UnknownFieldError(axis.field, error);
    }
    if (axis.values.empty()) {
      if (error != nullptr) {
        *error = "axis '" + axis.field + "' has no values";
      }
      return false;
    }
    if (total > 1'000'000 / axis.values.size()) {
      if (error != nullptr) {
        *error = "sweep grid exceeds 1e6 cells";
      }
      return false;
    }
    total *= axis.values.size();
  }
  runs->reserve(total);
  for (size_t idx = 0; idx < total; ++idx) {
    SweepRun run;
    run.index = idx;
    run.config = spec.base;
    // Mixed-radix decode, first axis most significant (varies slowest).
    size_t rem = idx;
    size_t place = total;
    for (const SweepAxis& axis : spec.axes) {
      place /= axis.values.size();
      const AxisValue& av = axis.values[rem / place];
      rem %= place;
      std::string apply_error;
      if (!ApplyConfigField(&run.config, axis.field, av.value, &apply_error)) {
        if (error != nullptr) {
          *error = "axis '" + axis.field + "' value '" + av.value + "': " + apply_error;
        }
        return false;
      }
      run.cell.emplace_back(axis.field, av.Label());
      if (!run.label.empty()) {
        run.label += ' ';
      }
      if (axis.field == "overrides") {
        run.label += av.Label().empty() ? std::string("base") : av.Label();
      } else {
        run.label += axis.field + "=" + av.Label();
      }
    }
    if (run.label.empty()) {
      run.label = "base";
    }
    runs->push_back(std::move(run));
  }
  return true;
}

// ---- JSON ----

std::string SweepSpecToJson(const SweepSpec& spec) {
  const ExperimentConfig defaults;
  std::string out = "{\n  \"base\": {";
  bool first = true;
  for (const FieldEntry& entry : FieldTable()) {
    if (entry.get == nullptr) {
      continue;  // write-only; the composite "cc" field carries the state
    }
    const std::string cur = entry.get(spec.base);
    if (cur == entry.get(defaults)) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += std::string("    \"") + entry.name + "\": \"" + JsonEscape(cur) + "\"";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"axes\": [";
  first = true;
  for (const SweepAxis& axis : spec.axes) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"field\": \"" + JsonEscape(axis.field) + "\", \"values\": [";
    bool value_first = true;
    for (const AxisValue& value : axis.values) {
      if (!value_first) {
        out += ", ";
      }
      value_first = false;
      if (value.label.empty()) {
        out += "\"" + JsonEscape(value.value) + "\"";
      } else {
        out += "{\"label\": \"" + JsonEscape(value.label) + "\", \"value\": \"" +
               JsonEscape(value.value) + "\"}";
      }
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

namespace {

bool AxisValueFromJson(const JsonValue& value, AxisValue* out, std::string* error) {
  if (value.kind == JsonValue::Kind::kObject) {
    const JsonValue* inner = value.Find("value");
    if (inner == nullptr || !inner->AsString(&out->value)) {
      if (error != nullptr) {
        *error = "axis value object needs a scalar \"value\" member";
      }
      return false;
    }
    if (const JsonValue* label = value.Find("label")) {
      if (!label->AsString(&out->label)) {
        if (error != nullptr) {
          *error = "axis value \"label\" must be a scalar";
        }
        return false;
      }
    }
    return true;
  }
  if (value.AsString(&out->value)) {
    return true;
  }
  if (error != nullptr) {
    *error = "axis values must be scalars or {\"label\", \"value\"} objects";
  }
  return false;
}

}  // namespace

bool ParseSweepSpecJson(const std::string& text, SweepSpec* spec, std::string* error) {
  JsonValue root;
  if (!json::ParseJson(text, &root, error)) {
    return false;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) {
      *error = "sweep spec must be a JSON object";
    }
    return false;
  }
  for (const auto& [key, value] : root.members) {
    if (key == "base") {
      if (value.kind != JsonValue::Kind::kObject) {
        if (error != nullptr) {
          *error = "\"base\" must be an object of config fields";
        }
        return false;
      }
      for (const auto& [field, field_value] : value.members) {
        std::string encoded;
        if (!field_value.AsString(&encoded)) {
          if (error != nullptr) {
            *error = "base field '" + field + "' must be a scalar";
          }
          return false;
        }
        if (!ApplyConfigField(&spec->base, field, encoded, error)) {
          return false;
        }
      }
    } else if (key == "axes") {
      if (value.kind != JsonValue::Kind::kArray) {
        if (error != nullptr) {
          *error = "\"axes\" must be an array";
        }
        return false;
      }
      spec->axes.clear();
      for (const JsonValue& axis_json : value.items) {
        if (axis_json.kind != JsonValue::Kind::kObject) {
          if (error != nullptr) {
            *error = "each axis must be an object with \"field\" and \"values\"";
          }
          return false;
        }
        SweepAxis axis;
        const JsonValue* field = axis_json.Find("field");
        if (field == nullptr || field->kind != JsonValue::Kind::kString) {
          if (error != nullptr) {
            *error = "axis needs a string \"field\" member";
          }
          return false;
        }
        axis.field = field->scalar;
        if (axis.field != "overrides" && !IsKnownField(axis.field)) {
          return UnknownFieldError(axis.field, error);
        }
        const JsonValue* values = axis_json.Find("values");
        if (values == nullptr || values->kind != JsonValue::Kind::kArray ||
            values->items.empty()) {
          if (error != nullptr) {
            *error = "axis '" + axis.field + "' needs a non-empty \"values\" array";
          }
          return false;
        }
        for (const JsonValue& value_json : values->items) {
          AxisValue av;
          if (!AxisValueFromJson(value_json, &av, error)) {
            return false;
          }
          axis.values.push_back(std::move(av));
        }
        spec->axes.push_back(std::move(axis));
      }
    } else {
      if (error != nullptr) {
        *error = "unknown top-level key '" + key + "' (expected \"base\" / \"axes\")";
      }
      return false;
    }
  }
  return true;
}

bool ParseSweepAxes(const std::string& text, SweepSpec* spec, std::string* error) {
  size_t start = 0;
  while (start <= text.size()) {
    const size_t semi = text.find(';', start);
    const std::string part =
        text.substr(start, semi == std::string::npos ? std::string::npos : semi - start);
    start = semi == std::string::npos ? text.size() + 1 : semi + 1;
    if (part.empty()) {
      continue;  // tolerate a trailing ';'
    }
    const size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) {
        *error = "sweep axis '" + part + "' is not of the form field=v1,v2,...";
      }
      return false;
    }
    SweepAxis axis;
    axis.field = part.substr(0, eq);
    if (axis.field != "overrides" && !IsKnownField(axis.field)) {
      return UnknownFieldError(axis.field, error);
    }
    size_t value_start = eq + 1;
    while (value_start <= part.size()) {
      const size_t comma = part.find(',', value_start);
      const std::string value = part.substr(
          value_start, comma == std::string::npos ? std::string::npos : comma - value_start);
      value_start = comma == std::string::npos ? part.size() + 1 : comma + 1;
      if (value.empty()) {
        if (error != nullptr) {
          *error = "sweep axis '" + axis.field + "' has an empty value";
        }
        return false;
      }
      axis.values.emplace_back(value);
    }
    if (axis.values.empty()) {
      if (error != nullptr) {
        *error = "sweep axis '" + axis.field + "' has no values";
      }
      return false;
    }
    spec->axes.push_back(std::move(axis));
  }
  return true;
}

bool LoadSweepSpecFile(const std::string& path, SweepSpec* spec, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open sweep spec '" + path + "'";
    }
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!ParseSweepSpecJson(buffer.str(), spec, error)) {
    if (error != nullptr) {
      *error = path + ": " + *error;
    }
    return false;
  }
  return true;
}

bool SaveSweepSpecFile(const std::string& path, const SweepSpec& spec, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot write sweep spec '" + path + "'";
    }
    return false;
  }
  out << SweepSpecToJson(spec);
  return static_cast<bool>(out);
}

}  // namespace lcmp
