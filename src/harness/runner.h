// Parallel sweep runner: executes an expanded SweepRun list on an N-thread
// worker pool and aggregates per-run results.
//
// Determinism model: a Simulator and everything it owns (Network, transport,
// traffic, recorders) is built, run, and torn down entirely inside one
// RunExperiment call, which executes on exactly one worker thread. Workers
// share nothing but the run queue (an atomic index) and the pre-sized output
// vector, where each run writes only its own slot — so every run is
// bit-identical to a sequential execution, regardless of --jobs. The
// remaining process-global state (metrics registry, flight recorder, profile
// sites, log clock) is either internally synchronized or thread-local; see
// DESIGN.md "Parallel sweep engine".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.h"

namespace lcmp {

struct SweepRunnerOptions {
  // Worker threads; <= 0 means DefaultJobs(). Capped at the number of runs.
  // jobs == 1 runs inline on the calling thread (no pool), preserving the
  // exact legacy sequential call stack.
  int jobs = 0;
};

// std::thread::hardware_concurrency(), with the mandated >= 1 fallback.
// The LCMP_THREAD_BUDGET environment variable (a positive integer) overrides
// the detected value: containers and CI runners often misreport concurrency,
// and sharded smoke runs on small boxes are correct (just slower) when
// oversubscribed.
int DefaultJobs();

struct RunOutcome {
  SweepRun run;
  ExperimentResult result;
  uint64_t digest = 0;     // ExperimentDigest(result)
  double wall_seconds = 0; // wall-clock time of this run alone
};

// Order-sensitive digest over the per-flow samples (fct, bytes) plus the
// event and completion counters — the same folding determinism_test.cc uses.
// Two runs of the same config produce the same digest iff the simulations
// were event-for-event identical.
uint64_t ExperimentDigest(const ExperimentResult& result);

// Runs every SweepRun; outcomes[i] corresponds to runs[i] (expansion order),
// independent of which worker executed it or when it finished.
std::vector<RunOutcome> RunSweep(std::vector<SweepRun> runs,
                                 const SweepRunnerOptions& options = {});

// Convenience: ExpandSweep + RunSweep. False (with *error) if expansion fails.
bool RunSweep(const SweepSpec& spec, const SweepRunnerOptions& options,
              std::vector<RunOutcome>* outcomes, std::string* error);

// Machine-readable results: one record per run with its cell labels, config
// echo (non-default fields), seed, digest (hex), wall time, flow/event
// counts, and FCT-slowdown percentiles.
std::string SweepResultsToJson(const std::vector<RunOutcome>& outcomes, int jobs);
bool WriteSweepResultsJson(const std::string& path, const std::vector<RunOutcome>& outcomes,
                           int jobs, std::string* error = nullptr);

}  // namespace lcmp
