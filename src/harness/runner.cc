#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "harness/json_util.h"

namespace lcmp {

int DefaultJobs() {
  if (const char* env = std::getenv("LCMP_THREAD_BUDGET")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

void HashMix(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9e3779b97f4a7c15ull + (*h << 6) + (*h >> 2);
}

}  // namespace

uint64_t ExperimentDigest(const ExperimentResult& result) {
  uint64_t h = 0;
  for (const FctRecorder::Sample& sample : result.samples) {
    HashMix(&h, static_cast<uint64_t>(sample.fct));
    HashMix(&h, sample.bytes);
  }
  HashMix(&h, result.events_processed);
  HashMix(&h, static_cast<uint64_t>(result.flows_completed));
  HashMix(&h, static_cast<uint64_t>(result.sim_end_time));
  return h;
}

std::vector<RunOutcome> RunSweep(std::vector<SweepRun> runs, const SweepRunnerOptions& options) {
  std::vector<RunOutcome> outcomes(runs.size());
  if (runs.empty()) {
    return outcomes;
  }
  int jobs = options.jobs > 0 ? options.jobs : DefaultJobs();
  jobs = std::max(1, std::min(jobs, static_cast<int>(runs.size())));

  // Each worker claims run indices off a shared atomic counter and writes
  // only outcomes[i] — index-ordered output regardless of thread timing.
  std::atomic<size_t> next{0};
  auto worker = [&runs, &outcomes, &next]() {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < runs.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      RunOutcome& outcome = outcomes[i];
      outcome.run = std::move(runs[i]);
      const auto start = std::chrono::steady_clock::now();
      outcome.result = RunExperiment(outcome.run.config);
      outcome.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      outcome.digest = ExperimentDigest(outcome.result);
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int t = 0; t < jobs; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return outcomes;
}

bool RunSweep(const SweepSpec& spec, const SweepRunnerOptions& options,
              std::vector<RunOutcome>* outcomes, std::string* error) {
  std::vector<SweepRun> runs;
  if (!ExpandSweep(spec, &runs, error)) {
    return false;
  }
  *outcomes = RunSweep(std::move(runs), options);
  return true;
}

namespace {

std::string HexDigest(uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace

std::string SweepResultsToJson(const std::vector<RunOutcome>& outcomes, int jobs) {
  using json::FormatDouble;
  using json::JsonEscape;
  const ExperimentConfig defaults;
  std::string out = "{\n";
  out += "  \"jobs\": " + std::to_string(jobs) + ",\n";
  out += "  \"runs\": [";
  bool first = true;
  for (const RunOutcome& outcome : outcomes) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\n";
    out += "      \"index\": " + std::to_string(outcome.run.index) + ",\n";
    out += "      \"label\": \"" + JsonEscape(outcome.run.label) + "\",\n";
    out += "      \"cell\": {";
    bool cell_first = true;
    for (const auto& [field, label] : outcome.run.cell) {
      if (!cell_first) {
        out += ", ";
      }
      cell_first = false;
      out += "\"" + JsonEscape(field) + "\": \"" + JsonEscape(label) + "\"";
    }
    out += "},\n";
    // Config echo: every field whose encoding differs from the defaults.
    out += "      \"config\": {";
    bool config_first = true;
    for (const std::string& field : KnownConfigFields()) {
      std::string cur;
      std::string def;
      if (!GetConfigField(outcome.run.config, field, &cur) ||
          !GetConfigField(defaults, field, &def) || cur == def) {
        continue;
      }
      if (!config_first) {
        out += ", ";
      }
      config_first = false;
      out += "\"" + JsonEscape(field) + "\": \"" + JsonEscape(cur) + "\"";
    }
    out += "},\n";
    out += "      \"seed\": " + std::to_string(outcome.run.config.seed) + ",\n";
    out += "      \"digest\": \"" + HexDigest(outcome.digest) + "\",\n";
    out += "      \"wall_seconds\": " + FormatDouble(outcome.wall_seconds) + ",\n";
    out += "      \"flows_completed\": " + std::to_string(outcome.result.flows_completed) + ",\n";
    out += "      \"flows_requested\": " + std::to_string(outcome.result.flows_requested) + ",\n";
    out += "      \"events_processed\": " + std::to_string(outcome.result.events_processed) + ",\n";
    out += "      \"sim_end_ms\": " +
           FormatDouble(static_cast<double>(outcome.result.sim_end_time) / 1e6) + ",\n";
    const SlowdownStats& fct = outcome.result.overall;
    out += "      \"fct_slowdown\": {\"count\": " + std::to_string(fct.count) +
           ", \"mean\": " + FormatDouble(fct.mean) + ", \"p50\": " + FormatDouble(fct.p50) +
           ", \"p95\": " + FormatDouble(fct.p95) + ", \"p99\": " + FormatDouble(fct.p99) + "}";
    // Incast family runs carry the incast-population breakdown so CC tuning
    // sweeps can rank cells on the metric that matters (the overall quantiles
    // are dominated by the background matrix).
    if (outcome.run.config.incast_fanin > 0) {
      const SlowdownStats& inc = outcome.result.incast;
      out += ",\n      \"incast_slowdown\": {\"count\": " + std::to_string(inc.count) +
             ", \"mean\": " + FormatDouble(inc.mean) + ", \"p50\": " + FormatDouble(inc.p50) +
             ", \"p95\": " + FormatDouble(inc.p95) + ", \"p99\": " + FormatDouble(inc.p99) + "}";
    }
    out += "\n    }";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool WriteSweepResultsJson(const std::string& path, const std::vector<RunOutcome>& outcomes,
                           int jobs, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot write sweep results '" + path + "'";
    }
    return false;
  }
  out << SweepResultsToJson(outcomes, jobs);
  return static_cast<bool>(out);
}

}  // namespace lcmp
