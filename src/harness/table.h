// Aligned ASCII table output for the bench binaries (each bench prints the
// rows/series of one paper figure).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace lcmp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "12.34" style fixed formatting.
std::string Fmt(double v, int precision = 2);
// Human-readable byte size ("3.4KB", "29.7MB").
std::string FmtBytes(uint64_t bytes);
// Percent with sign, e.g. "-41%".
std::string FmtPct(double fraction);

}  // namespace lcmp
