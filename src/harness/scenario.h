// Figure-level scenario helpers shared by the bench binaries: bridge sweep
// outcomes into the paper-style comparison tables.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/runner.h"

namespace lcmp {

// Result of one (policy, load) grid cell (legacy table input).
struct SweepCell {
  PolicyKind policy;
  double load;
  ExperimentResult result;
};

// Bridges sweep outcomes to the legacy (policy, load) tables by reading
// policy and load back out of each run's config.
std::vector<SweepCell> ToSweepCells(const std::vector<RunOutcome>& outcomes);

// Runs every (policy, load) combination of `base` in load-major, policy-minor
// order. Thin shim over the sweep engine, kept so pre-sweep callers print
// byte-identical tables; new code should build a SweepSpec and call RunSweep.
[[deprecated("build a SweepSpec and call RunSweep instead")]]
std::vector<SweepCell> RunPolicyLoadSweep(const ExperimentConfig& base,
                                          const std::vector<PolicyKind>& policies,
                                          const std::vector<double>& loads);

// Prints "load | policy | p50 | p99 | vs-LCMP reductions" rows for a sweep
// (the shape of Fig. 5 / 7 / 9 / 10).
void PrintSlowdownTable(const std::string& title, const std::vector<SweepCell>& cells,
                        bool dc_pair_only = false, DcId pair_a = 0, DcId pair_b = -1);

// Prints per-size-bucket p50/p99 rows for a set of named results
// (the shape of Fig. 11).
struct NamedResult {
  std::string name;
  ExperimentResult result;
};
// Bridges sweep outcomes to the named-result printers (name = run label).
std::vector<NamedResult> ToNamedResults(const std::vector<RunOutcome>& outcomes);

void PrintBucketTable(const std::string& title, const std::vector<NamedResult>& results);

// Prints Fig. 1b-style per-link utilization for a set of named results.
void PrintLinkUtilizationTable(const std::string& title, const std::vector<NamedResult>& results);

// Base configuration for the incast/oversubscription scenario family
// (ext_incast and the incast-smoke CI job): a mixed intra+inter WebSearch
// background matrix on the 8-DC testbed plus a fanin-to-1 incast burst into
// the last DC. Sweep `os_borders` and the `cc`/`cc.inter`/`cc.intra` split
// on top of this base.
ExperimentConfig IncastScenarioConfig(int fanin = 64);

// Prints "variant | incast flows | incast p50/p99 | background p99" rows for
// runs produced from IncastScenarioConfig (result.incast is only populated
// when incast_fanin > 0).
void PrintIncastTable(const std::string& title, const std::vector<NamedResult>& results);

}  // namespace lcmp
