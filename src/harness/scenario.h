// Figure-level scenario helpers shared by the bench binaries: run a grid of
// (policy x load) experiments and print the paper-style comparison tables.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace lcmp {

// Result of one grid cell.
struct SweepCell {
  PolicyKind policy;
  double load;
  ExperimentResult result;
};

// Runs every (policy, load) combination of `base` sequentially.
std::vector<SweepCell> RunPolicyLoadSweep(const ExperimentConfig& base,
                                          const std::vector<PolicyKind>& policies,
                                          const std::vector<double>& loads);

// Prints "load | policy | p50 | p99 | vs-LCMP reductions" rows for a sweep
// (the shape of Fig. 5 / 7 / 9 / 10).
void PrintSlowdownTable(const std::string& title, const std::vector<SweepCell>& cells,
                        bool dc_pair_only = false, DcId pair_a = 0, DcId pair_b = -1);

// Prints per-size-bucket p50/p99 rows for a set of named results
// (the shape of Fig. 11).
struct NamedResult {
  std::string name;
  ExperimentResult result;
};
void PrintBucketTable(const std::string& title, const std::vector<NamedResult>& results);

// Prints Fig. 1b-style per-link utilization for a set of named results.
void PrintLinkUtilizationTable(const std::string& title, const std::vector<NamedResult>& results);

}  // namespace lcmp
