// Minimal JSON support for the sweep engine: a small recursive-descent
// parser plus escaping/number-formatting helpers. Deliberately tiny — the
// repo takes no external dependencies, and sweep specs only need objects,
// arrays, strings, numbers and booleans. Numbers are kept as their raw
// source text so a parsed spec re-serializes byte-identically (round-trip
// fidelity matters for --sweep-spec-out).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace lcmp {
namespace json {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  // String contents (unescaped), raw number text, or "true"/"false".
  std::string scalar;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members; // kObject, in order

  // Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  // Scalar (string/number/bool) as a string; false for null/array/object.
  bool AsString(std::string* out) const;
};

// Parses strict JSON. On failure returns false and sets `error` with a
// message that includes the line/column of the offending byte.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Escapes a string's contents for embedding between double quotes.
std::string JsonEscape(const std::string& s);

// Shortest "%g"-family rendering of `v` that strtod parses back to exactly
// `v` — stable under spec round-trips without "0.29999999999999999" noise.
std::string FormatDouble(double v);

}  // namespace json
}  // namespace lcmp
