// Declarative sweep specification over ExperimentConfig — the unified
// experiment API every figure binary and the CLI drive.
//
// A SweepSpec is a base config plus an ordered list of axes; each axis names
// a config field and the string-encoded values it takes. Expansion is the
// cartesian product in row-major order with the FIRST axis varying SLOWEST,
// so axes [load, policy] reproduce the legacy load-major / policy-minor cell
// order of RunPolicyLoadSweep exactly.
//
// The same spec is constructible three ways with identical semantics:
//   * fluent C++ builder (the bench/ binaries):
//       SweepSpec(base).Loads({.3, .5}).Policies({kEcmp, kLcmp}).Seeds({1, 2})
//   * CLI flags (--sweep-axes "load=0.3,0.5;policy=ecmp,lcmp"), see flags.h
//   * a JSON file (--sweep-spec=...), round-trippable via SweepSpecToJson.
//
// Field values are strings everywhere (builder methods encode for you); the
// ApplyConfigField/GetConfigField registry below defines the field names and
// their encodings. The pseudo-field "overrides" takes a space-separated
// "field=value ..." list applied on top of base — that is how ablation
// variants (e.g. "lcmp.alpha=0 lcmp.beta=1") become one labeled axis value.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"

namespace lcmp {

// One value of a sweep axis with an optional display label (tables and run
// labels show Label(); the value string is what gets applied).
struct AxisValue {
  std::string value;
  std::string label;

  AxisValue() = default;
  AxisValue(std::string v) : value(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  AxisValue(std::string v, std::string l) : value(std::move(v)), label(std::move(l)) {}

  const std::string& Label() const { return label.empty() ? value : label; }
};

struct SweepAxis {
  std::string field;  // a registry field name, or "overrides"
  std::vector<AxisValue> values;
};

struct SweepSpec {
  ExperimentConfig base;
  std::vector<SweepAxis> axes;

  SweepSpec() = default;
  explicit SweepSpec(ExperimentConfig base_config) : base(std::move(base_config)) {}

  // Generic axes. Values use the registry's string encoding.
  SweepSpec& Axis(std::string field, std::vector<std::string> values);
  SweepSpec& AxisLabeled(std::string field, std::vector<AxisValue> values);

  // Typed conveniences for the common axes. Labels follow the display names
  // the legacy tables used (PolicyKindName etc.), so migrated benches print
  // the same row/column headers.
  SweepSpec& Policies(const std::vector<PolicyKind>& kinds);
  SweepSpec& Loads(const std::vector<double>& loads);
  SweepSpec& Seeds(const std::vector<uint64_t>& seeds);
  SweepSpec& Workloads(const std::vector<WorkloadKind>& kinds);
  // CC axis values are registry tokens ("dcqcn", "lcp", ...) or split
  // "inter/intra" specs ("lcp/dcqcn") — anything SegmentCcSpec::Parse takes.
  SweepSpec& Ccs(const std::vector<std::string>& tokens);
  // Ablation variants: one "overrides" axis; each value is a space-separated
  // "field=value ..." list (empty = baseline) with a mandatory label.
  SweepSpec& Variants(std::vector<AxisValue> variants);
};

// One expanded cell of the grid, ready to run.
struct SweepRun {
  size_t index = 0;            // position in expansion order
  ExperimentConfig config;
  std::string label;           // e.g. "load=0.3 policy=LCMP seed=2"
  // Per-axis (field, value label) in axis-declaration order; lets callers
  // group results by any axis without re-parsing the label.
  std::vector<std::pair<std::string, std::string>> cell;
};

// ---- Config field registry (string-encoded ExperimentConfig access) ----

// Every field name ApplyConfigField accepts (excluding the "overrides"
// pseudo-field), in registry order.
std::vector<std::string> KnownConfigFields();

// Sets one field from its string encoding. Unknown fields and malformed
// values fail with a diagnostic naming the field and the accepted form.
bool ApplyConfigField(ExperimentConfig* config, const std::string& field,
                      const std::string& value, std::string* error);

// Reads one field back as its string encoding (the exact string that
// ApplyConfigField would accept to reproduce it). False for unknown fields
// and for the write-only "overrides" pseudo-field.
bool GetConfigField(const ExperimentConfig& config, const std::string& field, std::string* out);

// ---- Expansion ----

// Expands the grid (validating every axis field and value up-front). A spec
// with no axes expands to one run of the base config.
bool ExpandSweep(const SweepSpec& spec, std::vector<SweepRun>* runs, std::string* error);

// ---- JSON spec (schema in examples/sweep_policy_load.json) ----
//
//   { "base": { "<field>": <string|number|bool>, ... },
//     "axes": [ { "field": "...",
//                 "values": [ "v", 0.3, {"label": "...", "value": "..."} ] } ] }

// Serializes spec to JSON. "base" carries exactly the fields whose encoding
// differs from a default-constructed ExperimentConfig, so parse(serialize(s))
// reproduces s for any spec built through the registry.
std::string SweepSpecToJson(const SweepSpec& spec);

// Parses a JSON spec into *spec (axes are replaced; "base" fields are applied
// on top of spec->base, so callers may pre-seed CLI overrides).
bool ParseSweepSpecJson(const std::string& text, SweepSpec* spec, std::string* error);

// File wrappers around the two above.
bool LoadSweepSpecFile(const std::string& path, SweepSpec* spec, std::string* error);
bool SaveSweepSpecFile(const std::string& path, const SweepSpec& spec, std::string* error);

// CLI axis syntax for --sweep-axes: semicolon-separated axes, each
// "field=v1,v2,..." — e.g. "load=0.3,0.5;policy=ecmp,lcmp;seed=1,2".
// Appends to spec->axes (axis order = declaration order, as everywhere).
// Values that need spaces or labels (the "overrides" pseudo-field) belong in
// a JSON spec instead.
bool ParseSweepAxes(const std::string& text, SweepSpec* spec, std::string* error);

}  // namespace lcmp
