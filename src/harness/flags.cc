#include "harness/flags.h"

#include <cstdlib>

namespace lcmp {

FlagSet& FlagSet::Define(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  if (flags_.find(name) == flags_.end()) {
    order_.push_back(name);
  }
  flags_[name] = Flag{default_value, default_value, help};
  return *this;
}

bool FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string FlagSet::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n\nflags:\n";
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    out += "  --" + name + " (default: " + f.default_value + ")\n      " + f.help + "\n";
  }
  return out;
}

}  // namespace lcmp
