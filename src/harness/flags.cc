#include "harness/flags.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace lcmp {

FlagSet& FlagSet::Define(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  if (flags_.find(name) == flags_.end()) {
    order_.push_back(name);
  }
  flags_[name] = Flag{default_value, default_value, help};
  return *this;
}

bool FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string FlagSet::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n\nflags:\n";
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    out += "  --" + name + " (default: " + f.default_value + ")\n      " + f.help + "\n";
  }
  return out;
}

void DefineObsFlags(FlagSet& flags) {
  flags.Define("metrics-out", "", "write the metrics registry as JSON (.csv for CSV) on exit")
      .Define("trace", "false", "enable the packet flight recorder (no filters = all events)")
      .Define("trace-flow", "-1", "flight recorder: record this flow id (enables tracing)")
      .Define("trace-node", "-1", "flight recorder: record this node id (enables tracing)")
      .Define("trace-out", "trace.csv",
              "flight recorder dump path (written when tracing); a .json path "
              "writes a Chrome-trace/Perfetto export instead of CSV")
      .Define("trace-depth", "65536", "flight recorder ring capacity in records")
      .Define("timeseries-out", "",
              "write the time-series telemetry rings (link util, queue depth, CC "
              "rate) as CSV on exit; sampled on the --telemetry-period-ms sweep")
      .Define("profile", "false", "per-event-type wall-time profile, reported on exit")
      .Define("telemetry-period-ms", "0",
              "control-plane telemetry + metric snapshot cadence; 0 disables the loop");
}

bool ObsOptions::TraceOutIsJson() const {
  const std::string suffix = ".json";
  return trace_out.size() >= suffix.size() &&
         trace_out.compare(trace_out.size() - suffix.size(), suffix.size(), suffix) == 0;
}

ObsOptions ApplyObsFlags(const FlagSet& flags) {
  ObsOptions opts;
  opts.metrics_out = flags.GetString("metrics-out");
  opts.trace_out = flags.GetString("trace-out");
  opts.timeseries_out = flags.GetString("timeseries-out");
  opts.trace_flow = flags.GetInt("trace-flow");
  opts.trace_node = static_cast<int32_t>(flags.GetInt("trace-node"));
  opts.trace_depth = flags.GetInt("trace-depth");
  opts.trace = flags.GetBool("trace") || opts.trace_flow >= 0 || opts.trace_node >= 0;
  opts.profile = flags.GetBool("profile");
  opts.telemetry_period_ms = flags.GetInt("telemetry-period-ms");

  if (!opts.metrics_out.empty()) {
    obs::SetMetricsEnabled(true);
  }
  if (opts.trace) {
    obs::FlightRecorder& rec = obs::FlightRecorder::Instance();
    if (opts.trace_depth > 0) {
      rec.Configure(static_cast<size_t>(opts.trace_depth));
    }
    rec.SetFilters(opts.trace_flow, opts.trace_node);
    rec.Enable(true);
  }
  // Time-series telemetry feeds the --timeseries-out CSV and the counter
  // tracks of a Chrome-trace export; both need the hub sampling. The CC-rate
  // series reads a metrics gauge, so metrics come on too.
  if (!opts.timeseries_out.empty() || (opts.trace && opts.TraceOutIsJson())) {
    obs::TimeSeriesHub::Instance().SetEnabled(true);
    obs::SetMetricsEnabled(true);
  }
  // --metrics-out implies a profile: attributing wall time by event type is
  // part of the same "what did this run spend its time on" story.
  if (opts.profile || !opts.metrics_out.empty()) {
    obs::SetProfileEnabled(true);
  }
  return opts;
}

void FinalizeObs(const ObsOptions& opts, int64_t now_ns) {
  if (!opts.metrics_out.empty()) {
    if (obs::MetricsRegistry::Instance().WriteFile(opts.metrics_out, now_ns)) {
      std::printf("wrote metrics to %s\n", opts.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n", opts.metrics_out.c_str());
    }
  }
  if (opts.trace && !opts.trace_out.empty()) {
    obs::FlightRecorder& rec = obs::FlightRecorder::Instance();
    if (opts.TraceOutIsJson()) {
      if (obs::WriteChromeTrace(opts.trace_out, now_ns)) {
        std::printf("wrote Chrome trace (%llu recorded, %zu in ring) to %s\n",
                    static_cast<unsigned long long>(rec.total_recorded()), rec.size(),
                    opts.trace_out.c_str());
      } else {
        std::fprintf(stderr, "failed to write Chrome trace to %s\n", opts.trace_out.c_str());
      }
    } else if (rec.DumpToFile(opts.trace_out)) {
      std::printf("wrote %llu trace records (%zu in ring) to %s\n",
                  static_cast<unsigned long long>(rec.total_recorded()), rec.size(),
                  opts.trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", opts.trace_out.c_str());
    }
  }
  if (!opts.timeseries_out.empty()) {
    if (obs::TimeSeriesHub::Instance().WriteCsv(opts.timeseries_out)) {
      std::printf("wrote %zu time series to %s\n", obs::TimeSeriesHub::Instance().num_series(),
                  opts.timeseries_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write time series to %s\n", opts.timeseries_out.c_str());
    }
  }
  if (obs::ProfileEnabled()) {
    std::printf("%s", obs::ProfileReport().c_str());
  }
}

void DefineSweepFlags(FlagSet& flags) {
  flags
      .Define("jobs", "0",
              "parallel sweep worker threads; 0 = hardware concurrency, 1 = sequential")
      .Define("sweep-spec", "", "JSON sweep spec file (enables sweep mode)")
      .Define("sweep-axes", "",
              "inline sweep axes 'field=v1,v2;field2=...' (enables sweep mode)")
      .Define("sweep-spec-out", "", "write the resolved sweep spec JSON to this path")
      .Define("sweep-out", "", "write machine-readable sweep results JSON to this path")
      .Define("verify-sequential", "false",
              "re-run the sweep at --jobs=1 and fail on any digest mismatch");
}

SweepOptions GetSweepOptions(const FlagSet& flags) {
  SweepOptions opts;
  opts.jobs = static_cast<int>(flags.GetInt("jobs"));
  opts.spec_file = flags.GetString("sweep-spec");
  opts.spec_out = flags.GetString("sweep-spec-out");
  opts.axes = flags.GetString("sweep-axes");
  opts.results_out = flags.GetString("sweep-out");
  opts.verify_sequential = flags.GetBool("verify-sequential");
  return opts;
}

bool ValidateSweepObsOptions(const SweepOptions& sweep, const ObsOptions& obs,
                             std::string* error) {
  if (!sweep.active() || obs.metrics_out.empty()) {
    return true;
  }
  // jobs == 0 means DefaultJobs(), which is > 1 on any multicore machine —
  // only an explicit --jobs=1 makes the merged snapshot well-defined.
  if (sweep.jobs != 1) {
    if (error != nullptr) {
      *error =
          "--metrics-out with a parallel sweep (--jobs != 1) would merge all "
          "concurrent runs into one process-global metrics snapshot; re-run "
          "with --jobs=1 for a sequential aggregate, or drop --metrics-out";
    }
    return false;
  }
  return true;
}

void DefineShardFlags(FlagSet& flags) {
  flags.Define("shards", "1",
               "partition the event core into N DC-group shards (conservative PDES, "
               "bit-identical results; see DESIGN.md); 1 = sequential core");
}

ShardOptions GetShardOptions(const FlagSet& flags) {
  ShardOptions opts;
  opts.shards = static_cast<int>(flags.GetInt("shards"));
  return opts;
}

bool ValidateShardOptions(const ShardOptions& shard, const SweepOptions& sweep,
                          const ObsOptions& obs, bool emulation_mode, int thread_budget,
                          std::string* error) {
  if (shard.shards < 1) {
    if (error != nullptr) {
      *error = "--shards must be >= 1";
    }
    return false;
  }
  if (shard.shards == 1) {
    return true;
  }
  // Observability (--trace*, --metrics-out, --timeseries-out) composes with
  // sharding: the recorder and metric cells are per-shard-lane and merge
  // deterministically by (sim-time, lineage key) at dump time (DESIGN.md §7).
  (void)obs;
  if (emulation_mode) {
    if (error != nullptr) {
      *error =
          "--emulation with --shards > 1: host emulation pipeline state is "
          "not partitioned by shard; re-run with --shards=1";
    }
    return false;
  }
  // Thread budget: every concurrent experiment spawns `shards` workers, so
  // even one run (or an auto-sized sweep, which caps jobs but not shards)
  // needs the shard count alone to fit.
  const int runs = sweep.active() && sweep.jobs > 0 ? sweep.jobs : 1;
  if (runs * shard.shards > thread_budget) {
    if (error != nullptr) {
      char buf[256];
      // --jobs=0 auto-sizing only helps when the shard count itself fits.
      const bool autosize_helps = sweep.active() && shard.shards <= thread_budget;
      std::snprintf(buf, sizeof(buf),
                    "oversubscribed: %d concurrent run%s x %d shard workers = %d threads, but "
                    "hardware concurrency is %d; lower %s",
                    runs, runs == 1 ? "" : "s", shard.shards, runs * shard.shards, thread_budget,
                    autosize_helps
                        ? "--jobs or --shards (or --jobs=0 to auto-size under the budget)"
                        : "--shards");
      *error = buf;
    }
    return false;
  }
  return true;
}

int ResolveSweepJobs(const SweepOptions& sweep, const ShardOptions& shard, int thread_budget) {
  if (sweep.jobs > 0) {
    return sweep.jobs;
  }
  const int shards = shard.shards < 1 ? 1 : shard.shards;
  const int jobs = thread_budget / shards;
  return jobs < 1 ? 1 : jobs;
}

void DefineFaultFlags(FlagSet& flags) {
  flags
      .Define("fault-plan", "",
              "fault plan file to inject (see src/fault/fault_plan.h for the format)")
      .Define("chaos-seed", "0",
              "seed for the chaos fault generator; 0 disables (ignored with --fault-plan)")
      .Define("chaos-rate", "20", "chaos generator: average fault episodes per simulated second")
      .Define("chaos-window-ms", "300", "chaos generator: injection window length in ms")
      .Define("monitor", "false",
              "run the fault-invariant monitor (fails fast on any violation)")
      .Define("fault-plan-out", "", "write the resolved fault plan text to this path");
}

FaultOptions GetFaultOptions(const FlagSet& flags) {
  FaultOptions opts;
  opts.fault_plan_file = flags.GetString("fault-plan");
  opts.chaos_seed = static_cast<uint64_t>(flags.GetInt("chaos-seed"));
  opts.chaos_rate = flags.GetDouble("chaos-rate");
  opts.chaos_window_ms = flags.GetInt("chaos-window-ms");
  opts.monitor = flags.GetBool("monitor");
  opts.fault_plan_out = flags.GetString("fault-plan-out");
  return opts;
}

bool BuildFaultPlan(const FaultOptions& opts, const Graph& graph, FaultPlan* plan,
                    std::string* error) {
  plan->events.clear();
  if (!opts.fault_plan_file.empty()) {
    if (!LoadFaultPlanFile(opts.fault_plan_file, graph, plan, error)) {
      return false;
    }
  } else if (opts.chaos_seed != 0) {
    ChaosOptions chaos;
    chaos.seed = opts.chaos_seed;
    chaos.faults_per_sec = opts.chaos_rate;
    chaos.window = Milliseconds(opts.chaos_window_ms);
    *plan = GenerateChaosPlan(graph, chaos);
  }
  if (!opts.fault_plan_out.empty()) {
    std::ofstream out(opts.fault_plan_out);
    if (!out) {
      if (error != nullptr) {
        *error = "cannot write fault plan to " + opts.fault_plan_out;
      }
      return false;
    }
    out << plan->ToString();
  }
  return true;
}

}  // namespace lcmp
