#include "harness/csv_writer.h"

#include <cstdio>
#include <limits>

#include "common/logging.h"

namespace lcmp {
namespace {

// RAII FILE holder.
struct File {
  explicit File(const std::string& path) : f(std::fopen(path.c_str(), "w")) {}
  ~File() {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
  FILE* f;
};

}  // namespace

bool WriteFlowSamplesCsv(const std::string& path, const ExperimentResult& result) {
  File file(path);
  if (file.f == nullptr) {
    LCMP_ERROR("cannot open %s for writing", path.c_str());
    return false;
  }
  std::fprintf(file.f, "flow_bytes,fct_ns,ideal_fct_ns,slowdown,src_dc,dst_dc\n");
  for (const auto& s : result.samples) {
    std::fprintf(file.f, "%llu,%lld,%lld,%.6f,%d,%d\n",
                 static_cast<unsigned long long>(s.bytes), static_cast<long long>(s.fct),
                 static_cast<long long>(s.ideal_fct), s.slowdown, s.src_dc, s.dst_dc);
  }
  return true;
}

bool WriteLinkUtilizationCsv(const std::string& path, const ExperimentResult& result) {
  File file(path);
  if (file.f == nullptr) {
    LCMP_ERROR("cannot open %s for writing", path.c_str());
    return false;
  }
  std::fprintf(file.f, "link,from,to,rate_bps,bytes,utilization\n");
  for (const auto& u : result.link_utils) {
    std::fprintf(file.f, "%s,%d,%d,%lld,%lld,%.6f\n", u.name.c_str(), u.from, u.to,
                 static_cast<long long>(u.rate_bps), static_cast<long long>(u.bytes),
                 u.utilization);
  }
  return true;
}

bool WriteBucketsCsv(const std::string& path, const ExperimentResult& result) {
  File file(path);
  if (file.f == nullptr) {
    LCMP_ERROR("cannot open %s for writing", path.c_str());
    return false;
  }
  std::fprintf(file.f, "size_hi_bytes,count,p50,p95,p99,mean\n");
  for (const auto& b : result.buckets) {
    const unsigned long long hi = b.size_hi == std::numeric_limits<uint64_t>::max()
                                      ? 0ULL
                                      : static_cast<unsigned long long>(b.size_hi);
    std::fprintf(file.f, "%llu,%d,%.4f,%.4f,%.4f,%.4f\n", hi, b.stats.count, b.stats.p50,
                 b.stats.p95, b.stats.p99, b.stats.mean);
  }
  return true;
}

bool WriteSweepSummaryCsv(const std::string& path, const std::vector<RunOutcome>& outcomes) {
  File file(path);
  if (file.f == nullptr) {
    LCMP_ERROR("cannot open %s for writing", path.c_str());
    return false;
  }
  std::fprintf(file.f,
               "index,label,policy,load,seed,flows_completed,p50,p95,p99,mean,digest,"
               "wall_seconds\n");
  for (const RunOutcome& o : outcomes) {
    // Labels can contain spaces but never commas/quotes (axis labels are
    // token-like), so plain CSV quoting is enough.
    std::fprintf(file.f, "%zu,\"%s\",%s,%.4f,%llu,%d,%.4f,%.4f,%.4f,%.4f,0x%016llx,%.3f\n",
                 o.run.index, o.run.label.c_str(), PolicyKindToken(o.run.config.policy),
                 o.run.config.load, static_cast<unsigned long long>(o.run.config.seed),
                 o.result.flows_completed, o.result.overall.p50, o.result.overall.p95,
                 o.result.overall.p99, o.result.overall.mean,
                 static_cast<unsigned long long>(o.digest), o.wall_seconds);
  }
  return true;
}

}  // namespace lcmp
