// End-to-end experiment runner: builds topology + network + policy +
// transport + workload, runs to completion, and returns the statistics every
// paper figure is derived from.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "core/control_plane.h"
#include "fault/fault_plan.h"
#include "routing/policy.h"
#include "stats/fct_recorder.h"
#include "stats/link_utilization.h"
#include "topo/builders.h"
#include "topo/candidate_paths.h"
#include "transport/rdma_transport.h"
#include "workload/traffic_gen.h"

namespace lcmp {

enum class PolicyKind : uint8_t { kEcmp, kWcmp, kUcmp, kRedte, kLcmp };
const char* PolicyKindName(PolicyKind kind);

// Policy factory for a Network (LCMP consumes the LcmpConfig).
PolicyFactory MakePolicyFactory(PolicyKind kind, const LcmpConfig& lcmp_config);

enum class TopologyKind : uint8_t {
  kTestbed8,
  kBso13,
  // The herd-effect variant of the 8-DC testbed: all six DC1->DC8 routes are
  // identical (100G, 2x10ms), so path quality cannot separate candidates and
  // only the selection mechanism differs (paper Sec. 2.3 challenge 3).
  kTestbed8Sym,
  // Parameterized WANs (topo/gen/): sized by `num_dcs`, seeded through the
  // dedicated TopoRng stream so the graph is identical across --shards/--jobs.
  kRandomWan,   // ring + random chords (BuildRandomWan)
  kDragonfly,   // dragonfly-of-DCs
  kSlimFly,     // slim-fly-of-DCs (MMS), num_dcs rounds up to 2q²
  kFatTree,     // fat-tree-of-DCs (k-ary Clos), num_dcs rounds up to (5/4)k²
  kImported,    // Topology Zoo-style file import (`topo_file`)
};
const char* TopologyKindName(TopologyKind kind);

// Which (src DC, dst DC) pairs exchange traffic.
enum class PairingKind : uint8_t {
  kEndpointPair,    // DC1 <-> DC8 style, both directions (testbed workloads)
  kAllToAll,        // every ordered DC pair
  // All ordered pairs, with the endpoint pair (first DC, last DC) oversampled
  // ~4x so pair-focused analyses (Fig. 8) get enough samples while the pair's
  // share of offered load stays small (a heavy focus share would saturate the
  // pair's low-delay route and wash out the effect being measured).
  kAllToAllFocusEndpoints,
  // First DC -> last DC only (burst/herd micro-experiments).
  kEndpointOneWay,
};

// String -> enum parsing for CLI flags and the JSON sweep-spec loader. Each
// accepts the lower-case CLI token ("ecmp", "bso13", ...); on failure the
// target is left untouched and `error` lists every accepted token.
bool ParsePolicyKind(const std::string& text, PolicyKind* out, std::string* error);
bool ParseTopologyKind(const std::string& text, TopologyKind* out, std::string* error);
bool ParseWorkloadKind(const std::string& text, WorkloadKind* out, std::string* error);
bool ParsePairingKind(const std::string& text, PairingKind* out, std::string* error);
bool ParseFabricKind(const std::string& text, FabricKind* out, std::string* error);
bool ParsePathStrategyKind(const std::string& text, PathStrategyKind* out, std::string* error);

// The CLI token each parser accepts for a kind (inverse of the Parse*
// helpers; distinct from the display-oriented *KindName strings). CC
// algorithms are not an enum: they parse through the CcRegistry
// (transport/cc/cc_registry.h) into a SegmentCcSpec.
const char* PolicyKindToken(PolicyKind kind);
const char* TopologyKindToken(TopologyKind kind);
const char* PairingKindToken(PairingKind kind);
const char* WorkloadKindToken(WorkloadKind kind);
const char* FabricKindToken(FabricKind kind);
const char* PathStrategyKindToken(PathStrategyKind kind);

struct ExperimentConfig {
  TopologyKind topo = TopologyKind::kTestbed8;
  PairingKind pairing = PairingKind::kEndpointPair;
  PolicyKind policy = PolicyKind::kLcmp;
  // Segmented congestion control (DESIGN.md §14): registry tokens per
  // segment. The uniform default reproduces the legacy single-instance
  // transport; "lcp/dcqcn"-style splits run distinct inter/intra algorithms.
  SegmentCcSpec cc;
  // Per-segment algorithm tuning (sweepable via the cc.inter.* / cc.intra.*
  // registry fields).
  CcTuning cc_inter;
  CcTuning cc_intra;
  WorkloadKind workload = WorkloadKind::kWebSearch;
  double load = 0.3;       // target average inter-DC link utilization
  int num_flows = 1000;
  uint64_t seed = 1;
  // SoftRoCE/Mininet-style host emulation (Fig. 5/6 testbed mode).
  bool emulation_mode = false;
  // LCMP tunables (ablations override alpha/beta/w_* here).
  LcmpConfig lcmp;
  // Safety horizon; the run stops early once all flows complete.
  TimeNs horizon = Seconds(120);
  int hosts_per_dc = 8;
  // ---- generated/imported topologies (topo/gen/) ----
  // DC count for the parameterized WAN kinds (slimfly/fattree round up to
  // their family's nearest valid size); ignored by the fixed paper topologies.
  int num_dcs = 16;
  // Seed for topology generation; 0 = derive from `seed`. Generated WANs only
  // ever draw from TopoRng(EffectiveTopoSeed), so two experiments that share
  // this value share the exact graph regardless of workload/shard settings.
  uint64_t topo_seed = 0;
  int extra_chords = 8;    // kRandomWan: chords on top of the ring
  int df_group_size = 0;   // kDragonfly: DCs per group, 0 = auto
  int df_global_links = 2; // kDragonfly: global-link budget per DC
  std::string topo_file;   // kImported: edge-list or .gml path
  // Intra-DC fabric shape for generated/imported WANs (the fixed paper
  // topologies keep their collapsed testbed fabric).
  FabricKind fabric = FabricKind::kCollapsed;
  int fabric_leaves = 4;
  int fabric_spines = 2;
  // Candidate-path strategy: plain downhill (the paper) or FatPaths-style
  // layered non-minimal sets.
  PathStrategyKind path_strategy = PathStrategyKind::kDownhill;
  int path_layers = 4;
  int layer_drop_permille = 250;
  // Control-plane telemetry sweep cadence; each sweep also snapshots the
  // metrics registry when metrics are enabled. 0 keeps the loop off so the
  // event stream (and thus determinism digests) is identical to a run
  // without observability.
  TimeNs telemetry_period = 0;
  // Fault injection: a non-empty plan is armed on the network before the run
  // (see src/fault/). With monitor_invariants the run also carries an
  // InvariantMonitor; in strict mode any violation aborts via LCMP_CHECK,
  // otherwise violations are reported in the result.
  FaultPlan fault_plan;
  bool monitor_invariants = false;
  bool monitor_strict = true;
  // Declarative chaos: when fault_plan is empty and chaos_seed != 0,
  // RunExperiment draws a seeded chaos plan against the built topology
  // (GenerateChaosPlan), so fault sweeps are expressible as plain config
  // fields — no pre-built plan object needed.
  uint64_t chaos_seed = 0;
  double chaos_rate = 20.0;        // fault episodes per simulated second
  int64_t chaos_window_ms = 300;   // injection window length
  // Transport loss recovery (DESIGN.md §15): Go-Back-N (RoCE default) or
  // IRN selective retransmission with SACK-range NACKs.
  ReliabilityMode reliability = ReliabilityMode::kGoBackN;
  // Deprecated alias for reliability = irn; kept so existing sweep files
  // and goldens keep parsing. Either switch selects IRN.
  bool ooo_tolerance = false;
  // Lossy long-haul tier on every inter-DC link (DESIGN.md §15): standing
  // Gilbert–Elliott corruption plus an optional k:m FEC shim at the DCI
  // gateways. All-defaults keeps the tier off and digests unchanged.
  double dci_loss_rate = 0.0;
  double dci_burst_len = 1.0;
  int fec_k = 0;
  int fec_m = 0;
  // Lossless operation: hop-by-hop PFC on every switch (the ext_pfc
  // substrate experiment). Thresholds follow its long-haul operating point.
  bool pfc_enabled = false;
  int64_t pfc_xoff_bytes = 1LL * 1024 * 1024;
  int64_t pfc_xon_bytes = 512LL * 1024;
  // Burst workload: all flows start at t=0 (herd-effect experiments). When
  // burst_size_bytes != 0 every flow gets that size instead of a CDF draw.
  bool burst_mode = false;
  uint64_t burst_size_bytes = 0;
  // ---- incast / oversubscription scenario family (DESIGN.md §14) ----
  // N-to-1 incast at the *destination* DC: `incast_fanin` senders spread
  // round-robin over the other host-bearing DCs all target one receiver host
  // in the last host-bearing DC, each shipping `incast_bytes`, starting
  // together at t=0. 0 keeps the family off. Incast flows ride on top of the
  // regular background matrix (num_flows) and are reported separately in
  // ExperimentResult::incast.
  int incast_fanin = 0;
  uint64_t incast_bytes = 1 << 20;
  // Oversubscribed DCI borders: divide every DCI<->DCI link's rate by this
  // factor after topology build (the OS_BORDERS axis). 1 = no change.
  int os_borders = 1;
  // Mixed traffic matrix: fraction of generated background flows redirected
  // to an intra-DC destination (same-DC host). 0 keeps the legacy pure
  // inter-DC matrix — and, critically, the legacy RNG stream.
  double mix_intra = 0.0;
  // Bounded in-flight sender window (TransportConfig::max_inflight_bytes).
  // 0 = the legacy open-loop sender. The incast family runs windowed: with
  // unbounded in-flight, any sub-BDP flow is fully transmitted before the
  // first inter-DC feedback returns and every CC algorithm degenerates to
  // the same line-rate blast.
  int64_t max_inflight_bytes = 0;
  // Conservative-PDES shard count (DESIGN.md §12): partitions the event core
  // by DC group and runs one worker thread per shard. Clamped to the DC
  // count; 1 keeps the sequential core. Deliberately NOT a registry-echoed
  // config field — any shard count produces bit-identical results, so it is
  // an execution knob like --jobs, not part of the experiment's identity.
  int shards = 1;
  // Arm the PDES barrier/stall profiler (obs/shard_profile.h) on sharded runs
  // even when no other obs subsystem is on — the scalability bench uses this
  // to report per-shard stall/imbalance. Measures wall time only; never
  // touches sim state, so results stay bit-identical. Like `shards`, an
  // execution knob outside the experiment's identity.
  bool profile_barriers = false;
};

struct ExperimentResult {
  ExperimentConfig config;
  SlowdownStats overall;
  std::vector<BucketStats> buckets;           // per workload-CDF size bucket
  std::vector<LinkUtilization> link_utils;    // inter-DC directed links
  std::vector<FctRecorder::Sample> samples;   // raw per-flow samples
  std::vector<SwitchTelemetry> telemetry;     // LCMP switches only
  int flows_completed = 0;
  int flows_requested = 0;
  int64_t retransmitted_packets = 0;
  int64_t timeouts = 0;
  // Lossy-DCI tier accounting (all zero when the tier is off).
  int64_t dci_lost_packets = 0;
  int64_t fec_repair_packets = 0;
  int64_t fec_recovered_packets = 0;
  int64_t fec_unrecovered_packets = 0;
  uint64_t events_processed = 0;
  TimeNs sim_end_time = 0;
  double multipath_pair_fraction = 0;  // topology statistic (Sec. 6.2.1)
  // Fault-injection accounting (zero when no plan/monitor was configured).
  int64_t faults_injected = 0;
  int64_t invariant_checks = 0;
  int64_t invariant_violations = 0;
  std::vector<std::string> violation_log;
  // Switch-level substrate accounting, summed over every switch port:
  // drops (0 under PFC), PFC pause frames sent, and cumulative paused time.
  int64_t switch_dropped_packets = 0;
  int64_t pfc_pause_frames = 0;
  int64_t total_paused_ns = 0;
  // Endpoint egress spread (herd-effect experiments): over the first DC's
  // candidate egresses toward the last DC, the number of ports that carried
  // > 1 MB and the maximum egress queue depth observed.
  int endpoint_egress_used = 0;
  int64_t endpoint_max_queue_bytes = 0;
  // Memory accounting (bench/scalability_v2): graph bytes, multipath table
  // bytes (shared arena + per-switch slots), and the fleet shape they are
  // amortized over.
  size_t topo_bytes = 0;
  size_t path_table_bytes = 0;
  size_t static_table_bytes = 0;
  int num_switches = 0;
  int num_dcis = 0;
  // Incast family only (incast_fanin > 0): slowdown summary over the incast
  // flows alone (the background matrix stays in `overall`).
  SlowdownStats incast;
  int incast_flows_completed = 0;

  // Slowdown summary filtered to one ordered DC pair.
  SlowdownStats ForDcPair(DcId src, DcId dst) const;
  // Summary over both directions of a DC pair.
  SlowdownStats ForDcPairBidir(DcId a, DcId b) const;
};

// Builds the experiment's graph (exposed for tests/examples).
Graph BuildTopology(const ExperimentConfig& config);

// Traffic pairing for the experiment's topology.
std::vector<std::pair<DcId, DcId>> BuildPairing(const ExperimentConfig& config, int num_dcs);

// Runs one experiment to completion (or the horizon) and gathers results.
ExperimentResult RunExperiment(const ExperimentConfig& config);

}  // namespace lcmp
