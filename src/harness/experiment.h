// End-to-end experiment runner: builds topology + network + policy +
// transport + workload, runs to completion, and returns the statistics every
// paper figure is derived from.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "core/control_plane.h"
#include "fault/fault_plan.h"
#include "routing/policy.h"
#include "stats/fct_recorder.h"
#include "stats/link_utilization.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"
#include "workload/traffic_gen.h"

namespace lcmp {

enum class PolicyKind : uint8_t { kEcmp, kWcmp, kUcmp, kRedte, kLcmp };
const char* PolicyKindName(PolicyKind kind);

// Policy factory for a Network (LCMP consumes the LcmpConfig).
PolicyFactory MakePolicyFactory(PolicyKind kind, const LcmpConfig& lcmp_config);

enum class TopologyKind : uint8_t { kTestbed8, kBso13 };
const char* TopologyKindName(TopologyKind kind);

// Which (src DC, dst DC) pairs exchange traffic.
enum class PairingKind : uint8_t {
  kEndpointPair,    // DC1 <-> DC8 style, both directions (testbed workloads)
  kAllToAll,        // every ordered DC pair
  // All ordered pairs, with the endpoint pair (first DC, last DC) oversampled
  // ~4x so pair-focused analyses (Fig. 8) get enough samples while the pair's
  // share of offered load stays small (a heavy focus share would saturate the
  // pair's low-delay route and wash out the effect being measured).
  kAllToAllFocusEndpoints,
};

struct ExperimentConfig {
  TopologyKind topo = TopologyKind::kTestbed8;
  PairingKind pairing = PairingKind::kEndpointPair;
  PolicyKind policy = PolicyKind::kLcmp;
  CcKind cc = CcKind::kDcqcn;
  WorkloadKind workload = WorkloadKind::kWebSearch;
  double load = 0.3;       // target average inter-DC link utilization
  int num_flows = 1000;
  uint64_t seed = 1;
  // SoftRoCE/Mininet-style host emulation (Fig. 5/6 testbed mode).
  bool emulation_mode = false;
  // LCMP tunables (ablations override alpha/beta/w_* here).
  LcmpConfig lcmp;
  // Safety horizon; the run stops early once all flows complete.
  TimeNs horizon = Seconds(120);
  int hosts_per_dc = 8;
  // Control-plane telemetry sweep cadence; each sweep also snapshots the
  // metrics registry when metrics are enabled. 0 keeps the loop off so the
  // event stream (and thus determinism digests) is identical to a run
  // without observability.
  TimeNs telemetry_period = 0;
  // Fault injection: a non-empty plan is armed on the network before the run
  // (see src/fault/). With monitor_invariants the run also carries an
  // InvariantMonitor; in strict mode any violation aborts via LCMP_CHECK,
  // otherwise violations are reported in the result.
  FaultPlan fault_plan;
  bool monitor_invariants = false;
  bool monitor_strict = true;
};

struct ExperimentResult {
  ExperimentConfig config;
  SlowdownStats overall;
  std::vector<BucketStats> buckets;           // per workload-CDF size bucket
  std::vector<LinkUtilization> link_utils;    // inter-DC directed links
  std::vector<FctRecorder::Sample> samples;   // raw per-flow samples
  std::vector<SwitchTelemetry> telemetry;     // LCMP switches only
  int flows_completed = 0;
  int flows_requested = 0;
  int64_t retransmitted_packets = 0;
  int64_t timeouts = 0;
  uint64_t events_processed = 0;
  TimeNs sim_end_time = 0;
  double multipath_pair_fraction = 0;  // topology statistic (Sec. 6.2.1)
  // Fault-injection accounting (zero when no plan/monitor was configured).
  int64_t faults_injected = 0;
  int64_t invariant_checks = 0;
  int64_t invariant_violations = 0;
  std::vector<std::string> violation_log;

  // Slowdown summary filtered to one ordered DC pair.
  SlowdownStats ForDcPair(DcId src, DcId dst) const;
  // Summary over both directions of a DC pair.
  SlowdownStats ForDcPairBidir(DcId a, DcId b) const;
};

// Builds the experiment's graph (exposed for tests/examples).
Graph BuildTopology(const ExperimentConfig& config);

// Traffic pairing for the experiment's topology.
std::vector<std::pair<DcId, DcId>> BuildPairing(const ExperimentConfig& config, int num_dcs);

// Runs one experiment to completion (or the horizon) and gathers results.
ExperimentResult RunExperiment(const ExperimentConfig& config);

}  // namespace lcmp
