#include "harness/scenario.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/logging.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace lcmp {

std::vector<SweepCell> ToSweepCells(const std::vector<RunOutcome>& outcomes) {
  std::vector<SweepCell> cells;
  cells.reserve(outcomes.size());
  for (const RunOutcome& outcome : outcomes) {
    cells.push_back(SweepCell{outcome.run.config.policy, outcome.run.config.load,
                              outcome.result});
  }
  return cells;
}

std::vector<NamedResult> ToNamedResults(const std::vector<RunOutcome>& outcomes) {
  std::vector<NamedResult> results;
  results.reserve(outcomes.size());
  for (const RunOutcome& outcome : outcomes) {
    results.push_back(NamedResult{outcome.run.label, outcome.result});
  }
  return results;
}

// Defining the deprecated shim is not itself a deprecated use, but some
// compilers warn anyway; keep the build quiet either way.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::vector<SweepCell> RunPolicyLoadSweep(const ExperimentConfig& base,
                                          const std::vector<PolicyKind>& policies,
                                          const std::vector<double>& loads) {
  // Loads before Policies: the legacy loop nested policies inside loads, and
  // the first-declared axis varies slowest, so cell order is preserved.
  SweepSpec spec(base);
  spec.Loads(loads).Policies(policies);
  std::vector<RunOutcome> outcomes;
  std::string error;
  if (!RunSweep(spec, SweepRunnerOptions{}, &outcomes, &error)) {
    LCMP_ERROR("RunPolicyLoadSweep: %s", error.c_str());
    return {};
  }
  return ToSweepCells(outcomes);
}
#pragma GCC diagnostic pop

void PrintSlowdownTable(const std::string& title, const std::vector<SweepCell>& cells,
                        bool dc_pair_only, DcId pair_a, DcId pair_b) {
  std::cout << "\n== " << title << " ==\n";
  TablePrinter table({"load", "policy", "flows", "p50 slowdown", "p99 slowdown",
                      "p50 vs LCMP", "p99 vs LCMP"});
  // Locate the LCMP reference per load for the reduction columns.
  std::map<double, SlowdownStats> lcmp_ref;
  auto stats_of = [&](const SweepCell& c) {
    if (!dc_pair_only) {
      return c.result.overall;
    }
    DcId b = pair_b;
    if (b < 0) {
      // Default: the highest DC id observed among samples (the far endpoint).
      for (const auto& s : c.result.samples) {
        b = std::max({b, s.src_dc, s.dst_dc});
      }
    }
    return c.result.ForDcPairBidir(pair_a, b);
  };
  for (const SweepCell& c : cells) {
    if (c.policy == PolicyKind::kLcmp) {
      lcmp_ref[c.load] = stats_of(c);
    }
  }
  for (const SweepCell& c : cells) {
    const SlowdownStats s = stats_of(c);
    std::string dp50 = "-", dp99 = "-";
    auto ref = lcmp_ref.find(c.load);
    if (ref != lcmp_ref.end() && c.policy != PolicyKind::kLcmp && s.p50 > 0 && s.p99 > 0) {
      // Reduction achieved by LCMP relative to this baseline.
      dp50 = FmtPct((ref->second.p50 - s.p50) / s.p50);
      dp99 = FmtPct((ref->second.p99 - s.p99) / s.p99);
    }
    table.AddRow({Fmt(c.load, 2), PolicyKindName(c.policy), std::to_string(s.count),
                  Fmt(s.p50), Fmt(s.p99), dp50, dp99});
  }
  table.Print();
}

void PrintBucketTable(const std::string& title, const std::vector<NamedResult>& results) {
  std::cout << "\n== " << title << " ==\n";
  TablePrinter table({"flow size", "variant", "count", "p50 slowdown", "p99 slowdown"});
  if (results.empty()) {
    table.Print();
    return;
  }
  // Iterate buckets of the first result; match others by bucket edge.
  for (const BucketStats& ref_bucket : results.front().result.buckets) {
    for (const NamedResult& nr : results) {
      for (const BucketStats& b : nr.result.buckets) {
        if (b.size_hi == ref_bucket.size_hi) {
          table.AddRow({FmtBytes(b.size_hi == std::numeric_limits<uint64_t>::max()
                                     ? ref_bucket.size_lo
                                     : b.size_hi),
                        nr.name, std::to_string(b.stats.count), Fmt(b.stats.p50),
                        Fmt(b.stats.p99)});
        }
      }
    }
  }
  table.Print();
}

void PrintLinkUtilizationTable(const std::string& title,
                               const std::vector<NamedResult>& results) {
  std::cout << "\n== " << title << " ==\n";
  std::vector<std::string> headers = {"directed link"};
  for (const NamedResult& nr : results) {
    headers.push_back(nr.name + " util");
  }
  TablePrinter table(headers);
  if (results.empty()) {
    table.Print();
    return;
  }
  const auto& ref_links = results.front().result.link_utils;
  for (size_t i = 0; i < ref_links.size(); ++i) {
    std::vector<std::string> row = {ref_links[i].name};
    for (const NamedResult& nr : results) {
      row.push_back(Fmt(nr.result.link_utils[i].utilization * 100.0, 1) + "%");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

ExperimentConfig IncastScenarioConfig(int fanin) {
  ExperimentConfig c;
  c.topo = TopologyKind::kTestbed8;
  c.pairing = PairingKind::kEndpointPair;
  c.workload = WorkloadKind::kWebSearch;
  c.load = 0.20;
  c.num_flows = 400;
  c.hosts_per_dc = 8;
  c.seed = 2026;
  // One quarter of the background matrix stays inside the source DC so the
  // intra segment sees realistic cross traffic, not just the incast itself.
  c.mix_intra = 0.25;
  c.incast_fanin = fanin;
  // Each incast sender ships several windows' worth (16 MB against the 4 MB
  // cap below): a flow that fits inside one window is transmitted open-loop
  // before any long-haul feedback returns, and the CC comparison this family
  // exists for would measure nothing.
  c.incast_bytes = 16 << 20;
  // The incast family runs with a bounded in-flight window: with the legacy
  // open-loop sender every sub-BDP flow is fully transmitted before the first
  // long-haul feedback returns (~1 RTT = 20 ms = 250 MB at 100G), so every CC
  // algorithm degenerates to the same line-rate blast. 4 MB caps a single
  // flow at roughly W/RTT = 1.6 Gbps over the long haul — about the fair
  // share of a 64-to-1 incast on a 100G border — which makes the inter-DC CC
  // choice observable.
  c.max_inflight_bytes = 4 * 1024 * 1024;
  return c;
}

void PrintIncastTable(const std::string& title, const std::vector<NamedResult>& results) {
  std::cout << "\n== " << title << " ==\n";
  TablePrinter table({"variant", "incast flows", "incast p50", "incast p99",
                      "background p99"});
  for (const NamedResult& nr : results) {
    table.AddRow({nr.name, std::to_string(nr.result.incast.count),
                  Fmt(nr.result.incast.p50), Fmt(nr.result.incast.p99),
                  Fmt(nr.result.overall.p99)});
  }
  table.Print();
}

}  // namespace lcmp
