// Minimal command-line flag parsing for the lcmp_sim CLI (no external
// dependencies). Flags look like --name=value or --name value; --help lists
// registered flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lcmp {

class FlagSet {
 public:
  // Parses argv; returns false (and fills error()) on malformed input or an
  // unknown flag. Registered flags must be declared before Parse.
  bool Parse(int argc, const char* const* argv);

  // Declares a flag with a default and a help string; returns *this for
  // chaining.
  FlagSet& Define(const std::string& name, const std::string& default_value,
                  const std::string& help);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }

  // Formats the flag table for --help.
  std::string Usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace lcmp
