// Minimal command-line flag parsing for the lcmp_sim CLI (no external
// dependencies). Flags look like --name=value or --name value; --help lists
// registered flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_plan.h"

namespace lcmp {

class FlagSet {
 public:
  // Parses argv; returns false (and fills error()) on malformed input or an
  // unknown flag. Registered flags must be declared before Parse.
  bool Parse(int argc, const char* const* argv);

  // Declares a flag with a default and a help string; returns *this for
  // chaining.
  FlagSet& Define(const std::string& name, const std::string& default_value,
                  const std::string& help);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }

  // Formats the flag table for --help.
  std::string Usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
  std::string error_;
};

// --- observability flags (shared by lcmp_sim and the example binaries) ---
//
// DefineObsFlags registers the --metrics-out / --trace-* / --profile family;
// ApplyObsFlags reads them, turns the matching obs subsystems on, and returns
// the parsed options; FinalizeObs writes the requested dumps at end of run.
struct ObsOptions {
  std::string metrics_out;       // "" = metrics disabled
  std::string trace_out;         // flight-recorder dump path (.json = Chrome trace)
  std::string timeseries_out;    // time-series telemetry CSV path
  int64_t trace_flow = -1;       // -1 = no flow filter
  int32_t trace_node = -1;       // -1 = no node filter
  int64_t trace_depth = 65536;   // ring capacity (records)
  bool trace = false;            // recorder on (implied by filters/trace-out)
  bool profile = false;          // per-event-type profiling on
  int64_t telemetry_period_ms = 0;  // 0 = no periodic metric snapshots

  // True when --trace-out names a .json file: FinalizeObs then writes the
  // Chrome-trace/Perfetto export (obs/trace_export.h) instead of the CSV dump.
  bool TraceOutIsJson() const;
};

void DefineObsFlags(FlagSet& flags);
ObsOptions ApplyObsFlags(const FlagSet& flags);
// Dumps metrics/trace/profile as requested; `now_ns` stamps the metrics file.
void FinalizeObs(const ObsOptions& opts, int64_t now_ns);

// --- sweep flags (the parallel sweep engine; src/harness/sweep.h) ---
//
// DefineSweepFlags registers --jobs / --sweep-* / --verify-sequential;
// GetSweepOptions reads them. Sweep mode activates when a spec file or
// inline axes are given; otherwise the CLI runs one experiment as before.
struct SweepOptions {
  int jobs = 0;                   // 0 = hardware concurrency
  std::string spec_file;          // --sweep-spec: JSON spec to load
  std::string spec_out;           // --sweep-spec-out: resolved spec round-trip
  std::string axes;               // --sweep-axes: "field=v1,v2;field2=..."
  std::string results_out;        // --sweep-out: sweep_results.json path
  bool verify_sequential = false; // re-run at jobs=1 and compare digests

  bool active() const { return !spec_file.empty() || !axes.empty(); }
};

void DefineSweepFlags(FlagSet& flags);
SweepOptions GetSweepOptions(const FlagSet& flags);

// Rejects flag combinations whose output would be silently wrong. Today that
// is --metrics-out with a parallel sweep: the metrics registry is
// process-global, so a sweep at --jobs>1 would merge every concurrent run's
// counters into one indistinguishable snapshot. Metrics in sweep mode are
// therefore only allowed at --jobs=1, where the dump is a well-defined
// sequential aggregate over all runs (documented in DESIGN.md §9). Returns
// false and fills `error` on a bad combination.
bool ValidateSweepObsOptions(const SweepOptions& sweep, const ObsOptions& obs,
                             std::string* error);

// --- shard flags (the conservative-PDES sharded core; DESIGN.md §12) ---
//
// DefineShardFlags registers --shards; GetShardOptions reads it;
// ValidateShardOptions enforces the combination rules; ResolveSweepJobs picks
// a sweep worker count that keeps jobs x shards inside the thread budget.
struct ShardOptions {
  int shards = 1;  // event-core partitions per run; 1 = the sequential core
};

void DefineShardFlags(FlagSet& flags);
ShardOptions GetShardOptions(const FlagSet& flags);

// Rejects flag combinations the sharded core cannot honor. Two classes:
//
// Shard-unsafe subsystems: --emulation keeps host pipeline state that is not
// partitioned by shard. Observability is *not* rejected — metric cells are
// per-lane relaxed atomics merged at snapshot time, and the flight recorder
// keeps a per-shard-lane ring whose records merge deterministically by
// (sim-time, lineage key) at dump time (DESIGN.md §7), so --trace* and
// --metrics-out both compose with --shards > 1.
//
// Thread budget: a run at --shards=S spawns S workers and a sweep at
// --jobs=J runs J experiments concurrently, so the process needs J*S (or S)
// threads. Explicit combinations over `thread_budget` (callers pass
// DefaultJobs(); parameterized for tests) are rejected; --jobs=0 in a sweep
// auto-sizes instead (ResolveSweepJobs) and always validates.
//
// Returns false and fills `error` on a bad combination (CLI exits 2).
bool ValidateShardOptions(const ShardOptions& shard, const SweepOptions& sweep,
                          const ObsOptions& obs, bool emulation_mode, int thread_budget,
                          std::string* error);

// Effective sweep worker count under the thread budget: an explicit --jobs
// wins (ValidateShardOptions vetted the product); --jobs=0 resolves to
// max(1, thread_budget / shards) so auto-sized sweeps never oversubscribe
// when every run spawns its own shard workers.
int ResolveSweepJobs(const SweepOptions& sweep, const ShardOptions& shard, int thread_budget);

// --- fault-injection flags (src/fault/; shared by lcmp_sim and soak tools) ---
//
// DefineFaultFlags registers --fault-plan / --chaos-* / --monitor;
// GetFaultOptions reads them; BuildFaultPlan resolves them into a FaultPlan
// against the experiment's graph (an explicit plan file wins over chaos).
struct FaultOptions {
  std::string fault_plan_file;   // "" = no plan file
  uint64_t chaos_seed = 0;       // 0 = chaos generator off
  double chaos_rate = 20.0;      // fault episodes per simulated second
  int64_t chaos_window_ms = 300; // injection window length
  bool monitor = false;          // attach the InvariantMonitor (strict)
  std::string fault_plan_out;    // dump the resolved plan text here
};

void DefineFaultFlags(FlagSet& flags);
FaultOptions GetFaultOptions(const FlagSet& flags);
// Builds the plan from the options (file > chaos > empty) and, if requested,
// writes its resolved text to fault_plan_out. Returns false + `error` when
// the plan file is missing or malformed.
bool BuildFaultPlan(const FaultOptions& opts, const Graph& graph, FaultPlan* plan,
                    std::string* error);

}  // namespace lcmp
