// CSV export of experiment results (the artifact's analysis/ folder writes
// the same kinds of files for its plotting scripts).
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/runner.h"

namespace lcmp {

// Writes one row per completed flow:
//   flow_bytes,fct_ns,ideal_fct_ns,slowdown,src_dc,dst_dc
bool WriteFlowSamplesCsv(const std::string& path, const ExperimentResult& result);

// Writes one row per directed inter-DC link:
//   link,from,to,rate_bps,bytes,utilization
bool WriteLinkUtilizationCsv(const std::string& path, const ExperimentResult& result);

// Writes one row per flow-size bucket:
//   size_hi_bytes,count,p50,p95,p99,mean
bool WriteBucketsCsv(const std::string& path, const ExperimentResult& result);

// Writes one row per sweep run (expansion order):
//   index,label,policy,load,seed,flows_completed,p50,p95,p99,mean,digest,wall_seconds
bool WriteSweepSummaryCsv(const std::string& path, const std::vector<RunOutcome>& outcomes);

}  // namespace lcmp
