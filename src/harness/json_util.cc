#include "harness/json_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lcmp {
namespace json {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

bool JsonValue::AsString(std::string* out) const {
  switch (kind) {
    case Kind::kString:
    case Kind::kNumber:
    case Kind::kBool:
      *out = scalar;
      return true;
    case Kind::kNull:
    case Kind::kArray:
    case Kind::kObject:
      return false;
  }
  return false;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return true;
  }

 private:
  bool Fail(const std::string& msg) {
    if (error_ != nullptr) {
      int line = 1;
      int col = 1;
      for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      *error_ = msg + " (line " + std::to_string(line) + ", column " + std::to_string(col) + ")";
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

  bool ParseValue(JsonValue* out) {
    if (AtEnd()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->scalar);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber(out);
        }
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  bool ParseKeyword(JsonValue* out) {
    static const struct {
      const char* word;
      JsonValue::Kind kind;
    } kKeywords[] = {
        {"true", JsonValue::Kind::kBool},
        {"false", JsonValue::Kind::kBool},
        {"null", JsonValue::Kind::kNull},
    };
    for (const auto& kw : kKeywords) {
      const size_t len = std::strlen(kw.word);
      if (text_.compare(pos_, len, kw.word) == 0) {
        out->kind = kw.kind;
        out->scalar = kw.word;
        pos_ += len;
        return true;
      }
    }
    return Fail("invalid keyword (expected true/false/null)");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || (c >= '0' && c <= '9')) {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string raw = text_.substr(start, pos_ - start);
    char* end = nullptr;
    std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0') {
      pos_ = start;
      return Fail("malformed number '" + raw + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->scalar = raw;  // raw text preserved for round-trip fidelity
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) {
        return Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) {
        return Fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid hex digit in \\u escape");
            }
          }
          // Sweep specs are ASCII; anything beyond is out of scope here.
          if (code > 0x7f) {
            return Fail("non-ASCII \\u escape not supported");
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (!AtEnd() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWs();
      if (!ParseValue(&item)) {
        return false;
      }
      out->items.push_back(std::move(item));
      SkipWs();
      if (AtEnd()) {
        return Fail("unterminated array");
      }
      const char c = text_[pos_++];
      if (c == ']') {
        return true;
      }
      if (c != ',') {
        --pos_;
        return Fail("expected ',' or ']' in array");
      }
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (!AtEnd() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (AtEnd() || text_[pos_] != '"') {
        return Fail("expected string key in object");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (AtEnd() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (AtEnd()) {
        return Fail("unterminated object");
      }
      const char c = text_[pos_++];
      if (c == '}') {
        return true;
      }
      if (c != ',') {
        --pos_;
        return Fail("expected ',' or '}' in object");
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return Parser(text, error).Parse(out);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) {
      return buf;
    }
  }
  return buf;
}

}  // namespace json
}  // namespace lcmp
