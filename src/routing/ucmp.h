// UCMP reproduction (Li et al., SIGCOMM '24): unified-cost multipath routing
// designed for reconfigurable DCNs. Its cost blends a capacity term (the
// dominant one in a conventional WAN, where the circuit-wait component is
// zero) with an estimate of the queue-wait at the egress. The effect the
// paper's motivation highlights: traffic concentrates on high-capacity paths
// regardless of their propagation delay, leaving low-delay, lower-capacity
// links idle.
#pragma once

#include "routing/policy.h"

namespace lcmp {

struct UcmpConfig {
  // Abstract cost = capacity_weight * (1 Tbps / bottleneck) +
  //                 wait_weight * queue_wait_us.
  int64_t capacity_weight = 10;
  int64_t wait_weight = 1;
  TimeNs sticky_timeout = Milliseconds(500);
};

class UcmpPolicy : public MultipathPolicy {
 public:
  explicit UcmpPolicy(const UcmpConfig& config = {}) : config_(config) {}

  PortIndex SelectPort(SwitchNode& sw, const Packet& pkt,
                       std::span<const PathCandidate> candidates) override;
  TimeNs tick_interval() const override { return Milliseconds(100); }
  void OnTick(SwitchNode& sw) override;
  const char* name() const override { return "ucmp"; }

 private:
  int64_t CostOf(SwitchNode& sw, const PathCandidate& c) const;

  UcmpConfig config_;
  StickyFlowMap flows_{Milliseconds(500)};
};

}  // namespace lcmp
