// RedTE stand-in (Gui et al., SIGCOMM '24): distributed WAN traffic
// engineering that adjusts per-destination traffic split ratios at edge
// routers on a ~100 ms control loop. The published system learns the
// adjustment with multi-agent RL; what matters for the paper's comparison is
// the control-loop timescale, so we adjust the ratios with a measurement-
// driven rebalancing step (shift weight from the most- to the least-utilized
// candidate each period). On microsecond-scale RDMA bursts this loop is far
// too slow and the policy degenerates to (weighted) static hashing, which is
// exactly the behavior the paper reports for RedTE.
#pragma once

#include <vector>

#include "routing/policy.h"

namespace lcmp {

struct RedteConfig {
  TimeNs control_period = Milliseconds(100);
  // Fraction (in 1/256ths) of split weight moved per period.
  int rebalance_step_256 = 32;
  // Minimum utilization gap between the most- and least-loaded candidate
  // before weight moves (hysteresis).
  double rebalance_min_gap = 0.05;
  TimeNs sticky_timeout = Milliseconds(500);
};

class RedtePolicy : public MultipathPolicy {
 public:
  explicit RedtePolicy(const RedteConfig& config = {}) : config_(config) {}

  PortIndex SelectPort(SwitchNode& sw, const Packet& pkt,
                       std::span<const PathCandidate> candidates) override;
  TimeNs tick_interval() const override { return config_.control_period; }
  void OnTick(SwitchNode& sw) override;
  const char* name() const override { return "redte"; }

 private:
  struct PortState {
    int weight_256 = 0;      // current split weight (sums to 256 per group)
    int64_t last_tx_bytes = 0;  // for utilization delta
  };
  // Split state per destination DC, keyed by the first candidate port seen.
  struct Group {
    std::vector<PortIndex> ports;
    std::vector<PortState> state;
  };

  Group& GroupFor(SwitchNode& sw, const Packet& pkt, std::span<const PathCandidate> candidates);

  RedteConfig config_;
  std::vector<Group> groups_;       // indexed by dst DC
  StickyFlowMap flows_{Milliseconds(500)};
};

}  // namespace lcmp
