#include "routing/wcmp.h"

namespace lcmp {

PortIndex WcmpPolicy::SelectPort(SwitchNode& sw, const Packet& pkt,
                                 std::span<const PathCandidate> candidates) {
  // Weight each live candidate by bottleneck capacity in Gbps and pick a
  // deterministic per-flow point in the cumulative weight range.
  int64_t total = 0;
  for (const PathCandidate& c : candidates) {
    if (sw.port(c.port).up()) {
      total += c.bottleneck_bps / Gbps(1) + 1;
    }
  }
  if (total == 0) {
    return kInvalidPort;
  }
  const uint64_t h = HashFlowKey(pkt.key, 0x3c3cULL ^ static_cast<uint64_t>(sw.id()));
  int64_t point = static_cast<int64_t>(h % static_cast<uint64_t>(total));
  for (const PathCandidate& c : candidates) {
    if (!sw.port(c.port).up()) {
      continue;
    }
    point -= c.bottleneck_bps / Gbps(1) + 1;
    if (point < 0) {
      return c.port;
    }
  }
  return kInvalidPort;
}

}  // namespace lcmp
