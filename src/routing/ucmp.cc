#include "routing/ucmp.h"

#include <limits>

namespace lcmp {

int64_t UcmpPolicy::CostOf(SwitchNode& sw, const PathCandidate& c) const {
  const Port& port = sw.port(c.port);
  // Capacity term: 1 Tbps / bottleneck -> 5 for 200G, 10 for 100G, 25 for 40G.
  const int64_t cap_cost = Gbps(1000) / std::max<int64_t>(c.bottleneck_bps, 1);
  // Queue-wait term in microseconds at the local egress.
  const int64_t wait_us = port.queue_bytes() * 8 * 1'000'000 / port.rate_bps();
  return config_.capacity_weight * cap_cost + config_.wait_weight * wait_us;
}

PortIndex UcmpPolicy::SelectPort(SwitchNode& sw, const Packet& pkt,
                                 std::span<const PathCandidate> candidates) {
  const TimeNs now = sw.sim().now();
  if (auto cached = flows_.Lookup(RoutingFlowId(pkt.key), now); cached.has_value()) {
    if (sw.port(*cached).up()) {
      return *cached;
    }
  }
  // New flow: minimum unified cost; per-flow hash breaks ties so equal-cost
  // high-capacity paths share load.
  int64_t best_cost = std::numeric_limits<int64_t>::max();
  int ties = 0;
  for (const PathCandidate& c : candidates) {
    if (!sw.port(c.port).up()) {
      continue;
    }
    const int64_t cost = CostOf(sw, c);
    if (cost < best_cost) {
      best_cost = cost;
      ties = 1;
    } else if (cost == best_cost) {
      ++ties;
    }
  }
  if (ties == 0) {
    return kInvalidPort;
  }
  const uint64_t h = HashFlowKey(pkt.key, 0x0c3a ^ static_cast<uint64_t>(sw.id()));
  uint64_t pick = h % static_cast<uint64_t>(ties);
  PortIndex chosen = kInvalidPort;
  for (const PathCandidate& c : candidates) {
    if (!sw.port(c.port).up() || CostOf(sw, c) != best_cost) {
      continue;
    }
    if (pick == 0) {
      chosen = c.port;
      break;
    }
    --pick;
  }
  if (chosen != kInvalidPort) {
    flows_.Insert(RoutingFlowId(pkt.key), chosen, now);
  }
  return chosen;
}

void UcmpPolicy::OnTick(SwitchNode& sw) { flows_.Gc(sw.sim().now()); }

}  // namespace lcmp
