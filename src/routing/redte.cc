#include "routing/redte.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace lcmp {

RedtePolicy::Group& RedtePolicy::GroupFor(SwitchNode& sw, const Packet& pkt,
                                          std::span<const PathCandidate> candidates) {
  const DcId dst_dc = sw.DstDcOf(pkt);
  if (groups_.empty()) {
    groups_.resize(static_cast<size_t>(sw.NumDcs()));
  }
  Group& g = groups_[static_cast<size_t>(dst_dc)];
  if (g.ports.empty()) {
    // Initialize split weights proportional to bottleneck capacity (what a
    // TE controller would install as the steady-state allocation).
    int64_t total_cap = 0;
    for (const PathCandidate& c : candidates) {
      total_cap += c.bottleneck_bps;
    }
    int assigned = 0;
    for (const PathCandidate& c : candidates) {
      g.ports.push_back(c.port);
      PortState st;
      st.weight_256 = static_cast<int>(256 * c.bottleneck_bps / std::max<int64_t>(total_cap, 1));
      st.last_tx_bytes = sw.port(c.port).tx_bytes();
      assigned += st.weight_256;
      g.state.push_back(st);
    }
    if (!g.state.empty()) {
      g.state.front().weight_256 += 256 - assigned;  // rounding remainder
    }
  }
  return g;
}

PortIndex RedtePolicy::SelectPort(SwitchNode& sw, const Packet& pkt,
                                  std::span<const PathCandidate> candidates) {
  const TimeNs now = sw.sim().now();
  if (auto cached = flows_.Lookup(RoutingFlowId(pkt.key), now); cached.has_value()) {
    if (sw.port(*cached).up()) {
      return *cached;
    }
  }
  Group& g = GroupFor(sw, pkt, candidates);
  int total = 0;
  for (size_t i = 0; i < g.ports.size(); ++i) {
    if (sw.port(g.ports[i]).up()) {
      total += g.state[i].weight_256;
    }
  }
  if (total <= 0) {
    return HashPickLive(sw, pkt, candidates, 0x8ed7);
  }
  const uint64_t h = HashFlowKey(pkt.key, 0x8ed7ULL ^ static_cast<uint64_t>(sw.id()));
  int point = static_cast<int>(h % static_cast<uint64_t>(total));
  PortIndex chosen = kInvalidPort;
  for (size_t i = 0; i < g.ports.size(); ++i) {
    if (!sw.port(g.ports[i]).up()) {
      continue;
    }
    point -= g.state[i].weight_256;
    if (point < 0) {
      chosen = g.ports[i];
      break;
    }
  }
  if (chosen != kInvalidPort) {
    flows_.Insert(RoutingFlowId(pkt.key), chosen, now);
  }
  return chosen;
}

void RedtePolicy::OnTick(SwitchNode& sw) {
  LCMP_PROFILE_SCOPE("redte.control_tick");
  // 100 ms control loop: move split weight from the most- to the least-
  // utilized candidate of every destination group.
  for (Group& g : groups_) {
    if (g.ports.size() < 2) {
      continue;
    }
    double max_util = -1.0, min_util = 2.0;
    int max_i = -1, min_i = -1;
    for (size_t i = 0; i < g.ports.size(); ++i) {
      Port& p = sw.port(g.ports[i]);
      const int64_t delta = p.tx_bytes() - g.state[i].last_tx_bytes;
      g.state[i].last_tx_bytes = p.tx_bytes();
      const double capacity_bytes = static_cast<double>(p.rate_bps()) / 8.0 *
                                    static_cast<double>(config_.control_period) / kNsPerSec;
      const double util = capacity_bytes > 0 ? static_cast<double>(delta) / capacity_bytes : 0.0;
      if (util > max_util) {
        max_util = util;
        max_i = static_cast<int>(i);
      }
      if (util < min_util) {
        min_util = util;
        min_i = static_cast<int>(i);
      }
    }
    if (max_i >= 0 && min_i >= 0 && max_i != min_i && max_util - min_util > config_.rebalance_min_gap) {
      const int step = std::min(config_.rebalance_step_256, g.state[static_cast<size_t>(max_i)].weight_256);
      g.state[static_cast<size_t>(max_i)].weight_256 -= step;
      g.state[static_cast<size_t>(min_i)].weight_256 += step;
      static obs::Counter* m_rebalances =
          obs::MetricsRegistry::Instance().GetCounter("redte.weight_rebalances");
      m_rebalances->Inc();
    }
  }
  flows_.Gc(sw.sim().now());
}

}  // namespace lcmp
