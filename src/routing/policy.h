// Shared helpers for multipath policies (baselines live here; LCMP in core/).
#pragma once

#include <optional>
#include <span>
#include <unordered_map>

#include "sim/node.h"

namespace lcmp {

// Deterministic hash pick among the *live* candidates (down ports skipped).
// Returns kInvalidPort when no candidate is usable.
PortIndex HashPickLive(SwitchNode& sw, const Packet& pkt,
                       std::span<const PathCandidate> candidates, uint64_t salt);

// Minimal per-switch sticky flow table used by the stateful baselines
// (UCMP, RedTE): new flows get a policy decision, later packets reuse it.
// LCMP uses its own FlowCache (core/flow_cache.h) with the paper's exact
// entry layout, GC and failover semantics.
class StickyFlowMap {
 public:
  explicit StickyFlowMap(TimeNs idle_timeout = Milliseconds(500))
      : idle_timeout_(idle_timeout) {}

  // Returns the recorded port if the flow is live, refreshing last-seen.
  std::optional<PortIndex> Lookup(FlowId flow, TimeNs now);

  void Insert(FlowId flow, PortIndex port, TimeNs now);

  // Drops entries idle for longer than the timeout.
  void Gc(TimeNs now);

  size_t size() const { return map_.size(); }

 private:
  struct Entry {
    PortIndex port;
    TimeNs last_seen;
  };
  TimeNs idle_timeout_;
  std::unordered_map<FlowId, Entry> map_;
};

}  // namespace lcmp
