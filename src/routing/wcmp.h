// WCMP: weighted-cost multipathing (Zhou et al., EuroSys '14). Static hash
// weights proportional to each candidate's bottleneck capacity; no congestion
// awareness. Included as the "static weights" baseline of Sec. 2.2.
#pragma once

#include "routing/policy.h"

namespace lcmp {

class WcmpPolicy : public MultipathPolicy {
 public:
  PortIndex SelectPort(SwitchNode& sw, const Packet& pkt,
                       std::span<const PathCandidate> candidates) override;
  const char* name() const override { return "wcmp"; }
};

}  // namespace lcmp
