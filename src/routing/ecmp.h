// ECMP: oblivious per-flow hashing across all candidate next hops
// (RFC 2992). The widely deployed default the paper compares against.
#pragma once

#include "routing/policy.h"

namespace lcmp {

class EcmpPolicy : public MultipathPolicy {
 public:
  PortIndex SelectPort(SwitchNode& sw, const Packet& pkt,
                       std::span<const PathCandidate> candidates) override;
  const char* name() const override { return "ecmp"; }
};

}  // namespace lcmp
