#include "routing/ecmp.h"

namespace lcmp {

PortIndex EcmpPolicy::SelectPort(SwitchNode& sw, const Packet& pkt,
                                 std::span<const PathCandidate> candidates) {
  // Pure hash: per-flow deterministic, capacity- and delay-oblivious.
  return HashPickLive(sw, pkt, candidates, /*salt=*/0x0ec3);
}

}  // namespace lcmp
