#include "routing/policy.h"

#include <vector>

namespace lcmp {

PortIndex HashPickLive(SwitchNode& sw, const Packet& pkt,
                       std::span<const PathCandidate> candidates, uint64_t salt) {
  // Collect live candidates without allocating for the common all-up case.
  int live = 0;
  for (const PathCandidate& c : candidates) {
    if (sw.port(c.port).up()) {
      ++live;
    }
  }
  if (live == 0) {
    return kInvalidPort;
  }
  const uint64_t h = HashFlowKey(pkt.key, salt ^ static_cast<uint64_t>(sw.id()));
  uint64_t pick = h % static_cast<uint64_t>(live);
  for (const PathCandidate& c : candidates) {
    if (!sw.port(c.port).up()) {
      continue;
    }
    if (pick == 0) {
      return c.port;
    }
    --pick;
  }
  return kInvalidPort;
}

std::optional<PortIndex> StickyFlowMap::Lookup(FlowId flow, TimeNs now) {
  auto it = map_.find(flow);
  if (it == map_.end()) {
    return std::nullopt;
  }
  if (now - it->second.last_seen > idle_timeout_) {
    map_.erase(it);
    return std::nullopt;
  }
  it->second.last_seen = now;
  return it->second.port;
}

void StickyFlowMap::Insert(FlowId flow, PortIndex port, TimeNs now) {
  map_[flow] = Entry{port, now};
}

void StickyFlowMap::Gc(TimeNs now) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (now - it->second.last_seen > idle_timeout_) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace lcmp
