// Deterministic fault schedules for the fault-injection subsystem.
//
// A FaultPlan is a time-sorted list of typed fault events against a concrete
// topology: link down/up, periodic link flapping, whole-switch failure,
// degraded links (rate cut / added latency / random loss) and control-plane
// telemetry outages. Plans come from three sources:
//   - built programmatically (tests, benches),
//   - parsed from the plan text format (--fault-plan=<file>), or
//   - drawn from the seeded chaos generator (--chaos-seed / --chaos-rate),
// and in every case replaying the same plan against the same seeded network
// reproduces the run bit for bit (the generator uses the project Rng and the
// injector only schedules simulator events).
//
// Plan text format — one event per line, '#' starts a comment:
//
//   <time> <action> <target> [key=value ...]
//
//   3ms   link-down  link=0
//   9ms   link-up    link=0
//   2ms   flap       dci=0:7#1 period=500us count=6
//   1ms   switch-down dc=3
//   12ms  switch-up  dc=3
//   4ms   degrade    link=1 rate=0.5 delay=2ms loss=0.001
//   10ms  restore    link=1
//   5ms   telemetry-outage duration=30ms
//
// Times accept ns/us/ms/s suffixes. Link targets are either `link=<idx>`
// (graph link index) or `dci=<dcA>:<dcB>[#k]` (the k-th inter-DC link between
// the DCI switches of two datacenters, default k=0). Switch targets are
// `dc=<d>` (the DCI switch of DC d) or `node=<id>`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/port.h"
#include "topo/graph.h"

namespace lcmp {

enum class FaultKind : uint8_t {
  kLinkDown,         // cut both directions of a link
  kLinkUp,           // restore a cut link
  kLinkFlap,         // toggle down/up `flap_count` times, `flap_period` apart
  kSwitchDown,       // fail every link attached to a switch
  kSwitchUp,         // restore every link attached to a switch
  kDegrade,          // apply LinkDegrade (rate cut / extra delay / loss)
  kRestore,          // clear a link's degradation
  kTelemetryOutage,  // drop control-plane telemetry sweeps for `duration`
};
const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  TimeNs at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  int link_idx = -1;            // kLink* / kDegrade / kRestore target
  NodeId node = kInvalidNode;   // kSwitch* target
  TimeNs flap_period = 0;       // kLinkFlap: time between toggles
  int flap_count = 0;           // kLinkFlap: number of toggles (down first)
  LinkDegrade degrade;          // kDegrade parameters
  TimeNs duration = 0;          // kTelemetryOutage length
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by `at` (stable for ties)

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }

  // Time-sorts events (stable). Parsers/generators call this; hand-built
  // plans should too before arming an injector.
  void Sort();

  // Simulation time after which every injected fault has been lifted: links
  // re-raised, degradations cleared, flaps finished, outages over. Faults
  // with no matching restore event (e.g. a permanent cut) make this -1.
  // Soak harnesses use it to decide whether "all flows complete" may be
  // asserted.
  TimeNs AllClearTime() const;

  // Round-trippable text form (the plan file grammar above).
  std::string ToString() const;
};

// Parses the plan text format against `graph` (targets are resolved to link
// indices / node ids immediately so a bad plan fails before the run starts).
// Returns false and fills `error` (with a line number) on malformed input.
bool ParseFaultPlan(const std::string& text, const Graph& graph, FaultPlan* plan,
                    std::string* error);

// Reads `path` and parses it. Returns false on IO or parse errors.
bool LoadFaultPlanFile(const std::string& path, const Graph& graph, FaultPlan* plan,
                       std::string* error);

// Seeded random chaos schedules. All faults are drawn from Rng(seed) only,
// so (seed, options, graph) fully determines the plan.
struct ChaosOptions {
  uint64_t seed = 1;
  // Average fault episodes per simulated second of the injection window.
  double faults_per_sec = 20.0;
  // Episodes start uniformly inside [window_start, window_start + window).
  TimeNs window_start = Milliseconds(1);
  TimeNs window = Milliseconds(300);
  // Every episode is repaired after a duration in [min_duration, max_duration]
  // so connectivity is always eventually restored.
  TimeNs min_duration = Milliseconds(2);
  TimeNs max_duration = Milliseconds(50);
  // Fault-class toggles (all on by default).
  bool link_faults = true;
  bool flap_faults = true;
  bool switch_faults = true;
  bool degrade_faults = true;
  bool telemetry_faults = true;
  // Never cut the last live inter-DC link of a DC pair's candidate set when
  // true; keeps at least one route available so fast failover (rather than
  // RTO recovery) is what gets exercised.
  bool keep_one_path = true;
};

// Draws a chaos plan against `graph`. Targets only inter-DC links and DCI
// switches (intra-DC fabrics are out of the paper's fault scope). The plan
// is sorted and every fault carries a matching repair event.
FaultPlan GenerateChaosPlan(const Graph& graph, const ChaosOptions& options);

}  // namespace lcmp
