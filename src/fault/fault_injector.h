// Arms a FaultPlan onto a live Network: every FaultEvent becomes one or more
// simulator events (flaps expand to their individual toggles), so a fault run
// is just a normal deterministic event-driven run with extra scheduled state
// changes. All link/switch mutations funnel through Network::SetLinkUp /
// SetLinkDegraded, which emit flight-recorder records and bump the sim.link.*
// metrics — the injector itself only adds scheduling and bookkeeping.
#pragma once

#include <cstdint>

#include "core/control_plane.h"
#include "fault/fault_plan.h"
#include "sim/network.h"

namespace lcmp {

class InvariantMonitor;

class FaultInjector {
 public:
  // `cp` may be null; then kTelemetryOutage events are ignored (counted as
  // skipped, not injected).
  explicit FaultInjector(Network& net, ControlPlane* cp = nullptr) : net_(net), cp_(cp) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Registers the monitor to notify on every link state change the injector
  // performs (precise down-since timestamps for the dead-path-pinning check).
  void SetMonitor(InvariantMonitor* monitor) { monitor_ = monitor; }

  // Schedules every event of `plan` on the network's simulator. Must be
  // called before Simulator::Run. May be called once per injector.
  void Arm(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }
  // State changes actually applied (flap toggles count individually).
  int64_t injections() const { return injections_; }
  int64_t skipped() const { return skipped_; }

 private:
  void Apply(const FaultEvent& e);
  void SetLink(int link_idx, bool up);

  Network& net_;
  ControlPlane* cp_;
  InvariantMonitor* monitor_ = nullptr;
  FaultPlan plan_;
  bool armed_ = false;
  int64_t injections_ = 0;
  int64_t skipped_ = 0;
};

}  // namespace lcmp
