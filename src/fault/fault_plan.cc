#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace lcmp {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kLinkFlap:
      return "flap";
    case FaultKind::kSwitchDown:
      return "switch-down";
    case FaultKind::kSwitchUp:
      return "switch-up";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kRestore:
      return "restore";
    case FaultKind::kTelemetryOutage:
      return "telemetry-outage";
  }
  return "?";
}

void FaultPlan::Sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
}

TimeNs FaultPlan::AllClearTime() const {
  // Replay the schedule symbolically: every break must have a visible repair
  // (link-up for link-down, switch-up for switch-down, restore for degrade,
  // even-toggle flaps end up, outages end at at+duration). Pairings that
  // never resolve (a permanent cut) make the plan "never all clear" (-1).
  TimeNs clear = 0;
  std::vector<int> down_links, down_nodes, degraded_links;
  auto mark = [](std::vector<int>& v, int key) {
    if (std::find(v.begin(), v.end(), key) == v.end()) {
      v.push_back(key);
    }
  };
  auto unmark = [](std::vector<int>& v, int key) {
    v.erase(std::remove(v.begin(), v.end(), key), v.end());
  };
  for (const FaultEvent& e : events) {
    switch (e.kind) {
      case FaultKind::kLinkDown:
        mark(down_links, e.link_idx);
        break;
      case FaultKind::kLinkUp:
        unmark(down_links, e.link_idx);
        clear = std::max(clear, e.at);
        break;
      case FaultKind::kLinkFlap: {
        const TimeNs end = e.at + e.flap_period * std::max(e.flap_count - 1, 0);
        if (e.flap_count % 2 == 0) {
          clear = std::max(clear, end);
        } else {
          mark(down_links, e.link_idx);  // odd toggle count leaves it down
        }
        break;
      }
      case FaultKind::kSwitchDown:
        mark(down_nodes, e.node);
        break;
      case FaultKind::kSwitchUp:
        unmark(down_nodes, e.node);
        clear = std::max(clear, e.at);
        break;
      case FaultKind::kDegrade:
        mark(degraded_links, e.link_idx);
        break;
      case FaultKind::kRestore:
        unmark(degraded_links, e.link_idx);
        clear = std::max(clear, e.at);
        break;
      case FaultKind::kTelemetryOutage:
        clear = std::max(clear, e.at + e.duration);
        break;
    }
  }
  if (!down_links.empty() || !down_nodes.empty() || !degraded_links.empty()) {
    return -1;
  }
  return clear;
}

namespace {

std::string FormatTime(TimeNs t) {
  char buf[32];
  if (t != 0 && t % kNsPerSec == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(t / kNsPerSec));
  } else if (t != 0 && t % kNsPerMs == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(t / kNsPerMs));
  } else if (t != 0 && t % kNsPerUs == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t / kNsPerUs));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(t));
  }
  return buf;
}

bool ParseTime(const std::string& tok, TimeNs* out) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || v < 0) {
    return false;
  }
  const std::string suffix(end);
  double scale = 0;
  if (suffix == "ns") {
    scale = 1;
  } else if (suffix == "us") {
    scale = kNsPerUs;
  } else if (suffix == "ms") {
    scale = kNsPerMs;
  } else if (suffix == "s") {
    scale = kNsPerSec;
  } else {
    return false;
  }
  *out = static_cast<TimeNs>(v * scale);
  return true;
}

// Resolves `dci=<a>:<b>[#k]`: the k-th (by link index) inter-DC link between
// the DCI switches of DC a and DC b.
bool ResolveDciLink(const std::string& value, const Graph& g, int* out) {
  int a = -1, b = -1, k = 0;
  const size_t colon = value.find(':');
  if (colon == std::string::npos) {
    return false;
  }
  a = std::atoi(value.substr(0, colon).c_str());
  std::string rest = value.substr(colon + 1);
  const size_t hash = rest.find('#');
  if (hash != std::string::npos) {
    k = std::atoi(rest.substr(hash + 1).c_str());
    rest = rest.substr(0, hash);
  }
  b = std::atoi(rest.c_str());
  if (a < 0 || b < 0 || a >= g.num_dcs() || b >= g.num_dcs() || k < 0) {
    return false;
  }
  const NodeId da = g.DciOfDc(a);
  const NodeId db = g.DciOfDc(b);
  if (da == kInvalidNode || db == kInvalidNode) {
    return false;
  }
  int seen = 0;
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    if ((l.a == da && l.b == db) || (l.a == db && l.b == da)) {
      if (seen == k) {
        *out = li;
        return true;
      }
      ++seen;
    }
  }
  return false;
}

struct KvArgs {
  std::vector<std::pair<std::string, std::string>> kv;
  const std::string* Find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

// Resolves the event's link target from `link=`/`dci=` args.
bool ResolveLinkTarget(const KvArgs& args, const Graph& g, int* out, std::string* error) {
  if (const std::string* v = args.Find("link")) {
    const int idx = std::atoi(v->c_str());
    if (idx < 0 || idx >= g.num_links()) {
      *error = "link index out of range: " + *v;
      return false;
    }
    *out = idx;
    return true;
  }
  if (const std::string* v = args.Find("dci")) {
    if (!ResolveDciLink(*v, g, out)) {
      *error = "cannot resolve inter-DC link: dci=" + *v;
      return false;
    }
    return true;
  }
  *error = "missing link target (link=<idx> or dci=<a>:<b>[#k])";
  return false;
}

bool ResolveSwitchTarget(const KvArgs& args, const Graph& g, NodeId* out, std::string* error) {
  if (const std::string* v = args.Find("node")) {
    const int id = std::atoi(v->c_str());
    if (id < 0 || id >= g.num_vertices() || g.vertex(id).kind == VertexKind::kHost) {
      *error = "not a switch node id: " + *v;
      return false;
    }
    *out = id;
    return true;
  }
  if (const std::string* v = args.Find("dc")) {
    const int dc = std::atoi(v->c_str());
    if (dc < 0 || dc >= g.num_dcs() || g.DciOfDc(dc) == kInvalidNode) {
      *error = "no DCI switch for dc=" + *v;
      return false;
    }
    *out = g.DciOfDc(dc);
    return true;
  }
  *error = "missing switch target (dc=<d> or node=<id>)";
  return false;
}

}  // namespace

std::string FaultPlan::ToString() const {
  std::string out = "# fault plan (" + std::to_string(events.size()) + " events)\n";
  for (const FaultEvent& e : events) {
    out += FormatTime(e.at);
    out += ' ';
    out += FaultKindName(e.kind);
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kRestore:
        out += " link=" + std::to_string(e.link_idx);
        break;
      case FaultKind::kLinkFlap:
        out += " link=" + std::to_string(e.link_idx) + " period=" + FormatTime(e.flap_period) +
               " count=" + std::to_string(e.flap_count);
        break;
      case FaultKind::kSwitchDown:
      case FaultKind::kSwitchUp:
        out += " node=" + std::to_string(e.node);
        break;
      case FaultKind::kDegrade: {
        char buf[96];
        std::snprintf(buf, sizeof(buf), " link=%d rate=%g delay=%s loss=%g", e.link_idx,
                      e.degrade.rate_factor, FormatTime(e.degrade.extra_delay_ns).c_str(),
                      e.degrade.loss_rate);
        out += buf;
        break;
      }
      case FaultKind::kTelemetryOutage:
        out += " duration=" + FormatTime(e.duration);
        break;
    }
    out += '\n';
  }
  return out;
}

bool ParseFaultPlan(const std::string& text, const Graph& graph, FaultPlan* plan,
                    std::string* error) {
  plan->events.clear();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = "fault plan line " + std::to_string(lineno) + ": " + msg;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    // '#' opens a comment only at line start or after whitespace — it is also
    // the parallel-link selector inside dci=<a>:<b>#k targets.
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' && (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) {
        line = line.substr(0, i);
        break;
      }
    }
    std::istringstream tokens(line);
    std::string time_tok, action;
    if (!(tokens >> time_tok)) {
      continue;  // blank/comment-only line
    }
    if (!(tokens >> action)) {
      return fail("missing action after time");
    }
    FaultEvent ev;
    if (!ParseTime(time_tok, &ev.at)) {
      return fail("bad time: " + time_tok + " (want <num>{ns|us|ms|s})");
    }
    KvArgs args;
    std::string tok;
    while (tokens >> tok) {
      const size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        return fail("expected key=value, got: " + tok);
      }
      args.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }
    std::string terr;
    if (action == "link-down" || action == "link-up" || action == "restore") {
      ev.kind = action == "link-down" ? FaultKind::kLinkDown
                : action == "link-up" ? FaultKind::kLinkUp
                                      : FaultKind::kRestore;
      if (!ResolveLinkTarget(args, graph, &ev.link_idx, &terr)) {
        return fail(terr);
      }
    } else if (action == "flap") {
      ev.kind = FaultKind::kLinkFlap;
      if (!ResolveLinkTarget(args, graph, &ev.link_idx, &terr)) {
        return fail(terr);
      }
      const std::string* period = args.Find("period");
      const std::string* count = args.Find("count");
      if (period == nullptr || !ParseTime(*period, &ev.flap_period) || ev.flap_period <= 0) {
        return fail("flap needs period=<time>");
      }
      ev.flap_count = count != nullptr ? std::atoi(count->c_str()) : 2;
      if (ev.flap_count <= 0) {
        return fail("flap count must be positive");
      }
    } else if (action == "switch-down" || action == "switch-up") {
      ev.kind = action == "switch-down" ? FaultKind::kSwitchDown : FaultKind::kSwitchUp;
      if (!ResolveSwitchTarget(args, graph, &ev.node, &terr)) {
        return fail(terr);
      }
    } else if (action == "degrade") {
      ev.kind = FaultKind::kDegrade;
      if (!ResolveLinkTarget(args, graph, &ev.link_idx, &terr)) {
        return fail(terr);
      }
      if (const std::string* v = args.Find("rate")) {
        ev.degrade.rate_factor = std::atof(v->c_str());
        if (ev.degrade.rate_factor <= 0 || ev.degrade.rate_factor > 1.0) {
          return fail("degrade rate must be in (0, 1]");
        }
      }
      if (const std::string* v = args.Find("delay")) {
        if (!ParseTime(*v, &ev.degrade.extra_delay_ns)) {
          return fail("bad degrade delay: " + *v);
        }
      }
      if (const std::string* v = args.Find("loss")) {
        ev.degrade.loss_rate = std::atof(v->c_str());
        if (ev.degrade.loss_rate < 0 || ev.degrade.loss_rate >= 1.0) {
          return fail("degrade loss must be in [0, 1)");
        }
      }
      if (!ev.degrade.active()) {
        return fail("degrade needs at least one of rate=/delay=/loss=");
      }
    } else if (action == "telemetry-outage") {
      ev.kind = FaultKind::kTelemetryOutage;
      const std::string* v = args.Find("duration");
      if (v == nullptr || !ParseTime(*v, &ev.duration) || ev.duration <= 0) {
        return fail("telemetry-outage needs duration=<time>");
      }
    } else {
      return fail("unknown action: " + action);
    }
    plan->events.push_back(ev);
  }
  plan->Sort();
  return true;
}

bool LoadFaultPlanFile(const std::string& path, const Graph& graph, FaultPlan* plan,
                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open fault plan file: " + path;
    }
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseFaultPlan(buf.str(), graph, plan, error);
}

namespace {

// One scheduled outage interval of a link, for overlap bookkeeping.
struct Interval {
  TimeNs start;
  TimeNs end;
};

bool Overlaps(const std::vector<Interval>& v, TimeNs start, TimeNs end) {
  for (const Interval& i : v) {
    if (start < i.end && i.start < end) {
      return true;
    }
  }
  return false;
}

}  // namespace

FaultPlan GenerateChaosPlan(const Graph& graph, const ChaosOptions& options) {
  FaultPlan plan;
  Rng rng(options.seed);

  // Fault targets: inter-DC links, and DCI switches of host-less (transit)
  // DCs — failing a DC that terminates traffic would disconnect its flows
  // for the whole episode instead of exercising failover.
  std::vector<int> dci_links;
  for (int li = 0; li < graph.num_links(); ++li) {
    const LinkSpec& l = graph.link(li);
    if (graph.vertex(l.a).kind == VertexKind::kDciSwitch &&
        graph.vertex(l.b).kind == VertexKind::kDciSwitch &&
        graph.vertex(l.a).dc != graph.vertex(l.b).dc) {
      dci_links.push_back(li);
    }
  }
  std::vector<NodeId> transit_dcis;
  for (const NodeId dci : graph.DciSwitches()) {
    if (graph.HostsInDc(graph.vertex(dci).dc).empty()) {
      transit_dcis.push_back(dci);
    }
  }
  if (dci_links.empty() || options.window <= 0) {
    return plan;
  }

  // Per-link scheduled outage intervals, for keep_one_path and to avoid
  // conflicting events (a flap toggling a link another episode already cut).
  std::vector<std::vector<Interval>> busy(static_cast<size_t>(graph.num_links()));

  // A link may be taken down over [start, end) if it is not already busy and
  // (keep_one_path) each endpoint DCI keeps at least one other inter-DC link
  // live throughout the interval.
  auto can_cut = [&](int li, TimeNs start, TimeNs end) {
    if (Overlaps(busy[static_cast<size_t>(li)], start, end)) {
      return false;
    }
    if (!options.keep_one_path) {
      return true;
    }
    const LinkSpec& l = graph.link(li);
    for (const NodeId endpoint : {l.a, l.b}) {
      int live = 0;
      for (const int other : graph.incident_links(endpoint)) {
        if (other == li) {
          continue;
        }
        const LinkSpec& ol = graph.link(other);
        const bool inter_dc = graph.vertex(ol.a).kind == VertexKind::kDciSwitch &&
                              graph.vertex(ol.b).kind == VertexKind::kDciSwitch &&
                              graph.vertex(ol.a).dc != graph.vertex(ol.b).dc;
        if (inter_dc && !Overlaps(busy[static_cast<size_t>(other)], start, end)) {
          ++live;
        }
      }
      if (live == 0) {
        return false;
      }
    }
    return true;
  };
  auto mark_busy = [&](int li, TimeNs start, TimeNs end) {
    busy[static_cast<size_t>(li)].push_back({start, end});
  };

  const int episodes = std::max<int>(
      1, static_cast<int>(options.faults_per_sec * static_cast<double>(options.window) /
                          static_cast<double>(kNsPerSec) +
                          0.5));
  const TimeNs dur_span = std::max<TimeNs>(options.max_duration - options.min_duration, 1);
  for (int ep = 0; ep < episodes; ++ep) {
    const TimeNs at =
        options.window_start + static_cast<TimeNs>(rng.NextBounded(
                                   static_cast<uint64_t>(options.window)));
    const TimeNs duration =
        options.min_duration + static_cast<TimeNs>(rng.NextBounded(
                                   static_cast<uint64_t>(dur_span)));
    // Weighted fault-class pick; disabled classes fall through to link cuts.
    const uint64_t roll = rng.NextBounded(100);
    if (roll < 10 && options.telemetry_faults) {
      FaultEvent ev;
      ev.at = at;
      ev.kind = FaultKind::kTelemetryOutage;
      ev.duration = duration;
      plan.events.push_back(ev);
      continue;
    }
    if (roll < 20 && options.switch_faults && !transit_dcis.empty()) {
      const NodeId node =
          transit_dcis[rng.NextBounded(static_cast<uint64_t>(transit_dcis.size()))];
      bool ok = true;
      for (const int li : graph.incident_links(node)) {
        if (!can_cut(li, at, at + duration)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const int li : graph.incident_links(node)) {
          mark_busy(li, at, at + duration);
        }
        FaultEvent down;
        down.at = at;
        down.kind = FaultKind::kSwitchDown;
        down.node = node;
        plan.events.push_back(down);
        FaultEvent up = down;
        up.at = at + duration;
        up.kind = FaultKind::kSwitchUp;
        plan.events.push_back(up);
        continue;
      }
      // Switch not safely cuttable right now: fall through to a link fault.
    }
    const int li = dci_links[rng.NextBounded(static_cast<uint64_t>(dci_links.size()))];
    if (roll < 40 && options.degrade_faults) {
      if (Overlaps(busy[static_cast<size_t>(li)], at, at + duration)) {
        continue;  // skip rather than stack degradation onto an outage
      }
      FaultEvent ev;
      ev.at = at;
      ev.kind = FaultKind::kDegrade;
      ev.link_idx = li;
      switch (rng.NextBounded(3)) {
        case 0:
          ev.degrade.rate_factor = 0.25 + 0.25 * static_cast<double>(rng.NextBounded(3));
          break;
        case 1:
          ev.degrade.extra_delay_ns =
              Microseconds(100) + static_cast<TimeNs>(rng.NextBounded(Milliseconds(2)));
          break;
        default:
          ev.degrade.loss_rate = 1e-4 * static_cast<double>(1 + rng.NextBounded(100));
          break;
      }
      plan.events.push_back(ev);
      FaultEvent restore;
      restore.at = at + duration;
      restore.kind = FaultKind::kRestore;
      restore.link_idx = li;
      plan.events.push_back(restore);
      mark_busy(li, at, at + duration);
      continue;
    }
    if (roll < 60 && options.flap_faults) {
      const int toggles = 2 * static_cast<int>(1 + rng.NextBounded(3));  // 2/4/6, ends up
      const TimeNs period = std::max<TimeNs>(duration / toggles, Microseconds(200));
      const TimeNs end = at + period * (toggles - 1);
      if (can_cut(li, at, end)) {
        FaultEvent ev;
        ev.at = at;
        ev.kind = FaultKind::kLinkFlap;
        ev.link_idx = li;
        ev.flap_period = period;
        ev.flap_count = toggles;
        plan.events.push_back(ev);
        mark_busy(li, at, end);
      }
      continue;
    }
    if (options.link_faults && can_cut(li, at, at + duration)) {
      FaultEvent down;
      down.at = at;
      down.kind = FaultKind::kLinkDown;
      down.link_idx = li;
      plan.events.push_back(down);
      FaultEvent up = down;
      up.at = at + duration;
      up.kind = FaultKind::kLinkUp;
      plan.events.push_back(up);
      mark_busy(li, at, at + duration);
    }
  }
  plan.Sort();
  return plan;
}

}  // namespace lcmp
