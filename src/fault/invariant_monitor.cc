#include "fault/invariant_monitor.h"

#include <cstdio>

#include "common/logging.h"
#include "core/lcmp_router.h"
#include "obs/metrics.h"

namespace lcmp {

InvariantMonitor::InvariantMonitor(Network& net, InvariantMonitorOptions options)
    : net_(net), options_(options) {
  const int n = net_.graph().num_links();
  link_up_.resize(static_cast<size_t>(n));
  down_since_.resize(static_cast<size_t>(n), 0);
  for (int li = 0; li < n; ++li) {
    link_up_[static_cast<size_t>(li)] = net_.LinkIsUp(li);
  }
}

void InvariantMonitor::Start() {
  if (timer_ != Simulator::kInvalidTimer) {
    return;
  }
  timer_ = net_.control_sim().ScheduleEvery(options_.check_period, [this] { RunChecks(); });
}

void InvariantMonitor::Stop() {
  if (timer_ != Simulator::kInvalidTimer) {
    net_.control_sim().CancelTimer(timer_);
    timer_ = Simulator::kInvalidTimer;
  }
}

void InvariantMonitor::OnLinkStateChange(int link_idx, bool up, TimeNs now) {
  link_up_[static_cast<size_t>(link_idx)] = up;
  if (!up) {
    down_since_[static_cast<size_t>(link_idx)] = now;
  }
}

void InvariantMonitor::ReconcileLinkStates() {
  const TimeNs now = net_.control_sim().now();
  for (int li = 0; li < net_.graph().num_links(); ++li) {
    const bool up = net_.LinkIsUp(li);
    if (up != link_up_[static_cast<size_t>(li)]) {
      OnLinkStateChange(li, up, now);
    }
  }
}

void InvariantMonitor::Violate(const std::string& what) {
  ++violations_;
  static obs::Counter* m_violations =
      obs::MetricsRegistry::Instance().GetCounter("fault.invariant_violations");
  m_violations->Inc();
  if (options_.strict) {
    LCMP_CHECK_MSG(false, "invariant violation: %s", what.c_str());
  }
  if (violation_log_.size() < options_.max_recorded) {
    violation_log_.push_back(what);
  }
}

void InvariantMonitor::RunChecks() {
  ++checks_run_;
  ReconcileLinkStates();
  const TimeNs now = net_.control_sim().now();
  const Graph& g = net_.graph();
  char buf[256];

  // (3) routing loops, fleet-wide.
  int64_t ttl_drops = 0;
  for (NodeId id = 0; id < g.num_vertices(); ++id) {
    if (g.vertex(id).kind != VertexKind::kHost) {
      ttl_drops += net_.switch_node(id).ttl_exhausted_drops();
    }
  }
  if (ttl_drops > last_ttl_drops_) {
    std::snprintf(buf, sizeof(buf), "routing loop: %lld TTL-exhausted drops (was %lld)",
                  static_cast<long long>(ttl_drops), static_cast<long long>(last_ttl_drops_));
    last_ttl_drops_ = ttl_drops;
    Violate(buf);
  }

  // (4) byte conservation on every port of every node.
  for (NodeId id = 0; id < g.num_vertices(); ++id) {
    Node& node = net_.node(id);
    for (PortIndex p = 0; p < node.num_ports(); ++p) {
      const Port& port = node.port(p);
      const int64_t ledger = port.tx_bytes() + port.flushed_bytes() + port.queue_bytes();
      if (port.accepted_bytes() != ledger) {
        std::snprintf(buf, sizeof(buf),
                      "byte conservation broken at node %d port %d: accepted=%lld != "
                      "tx+flushed+queued=%lld",
                      id, p, static_cast<long long>(port.accepted_bytes()),
                      static_cast<long long>(ledger));
        Violate(buf);
      }
    }
  }

  // (1)+(2) flow-cache invariants on every LCMP DCI switch.
  for (const NodeId dci : g.DciSwitches()) {
    SwitchNode& sw = net_.switch_node(dci);
    auto* router = dynamic_cast<LcmpRouter*>(sw.policy());
    if (router == nullptr) {
      continue;
    }
    const LcmpConfig& cfg = router->config();
    router->flow_cache().ForEachEntry([&](const FlowCache::Entry& e) {
      if (e.out_dev_idx == kInvalidPort || e.out_dev_idx >= sw.num_ports()) {
        return;
      }
      const Port& port = sw.port(e.out_dev_idx);
      if (port.up()) {
        return;
      }
      const TimeNs since = down_since_[static_cast<size_t>(port.graph_link_idx())];
      // A healthy lazy-invalidation data plane can leave an entry pointing at
      // a dead port (that's the design), but it can never *refresh* one: the
      // first post-failure lookup rehashes the flow. A refresh later than one
      // estimator period after the cut means failover is broken.
      if (e.last_seen > since + cfg.sample_interval) {
        std::snprintf(buf, sizeof(buf),
                      "flow %llu pinned to dead port %d of switch %d: last_seen=%lld > "
                      "down_since=%lld + estimator period",
                      static_cast<unsigned long long>(e.flow_id), e.out_dev_idx, dci,
                      static_cast<long long>(e.last_seen), static_cast<long long>(since));
        Violate(buf);
      }
      // GC must reap dead-egress entries once idle past the timeout (slack:
      // two GC periods, since the sweep itself is periodic).
      if (now - e.last_seen > cfg.flow_idle_timeout + 2 * cfg.gc_period) {
        std::snprintf(buf, sizeof(buf),
                      "flow %llu entry for dead port %d of switch %d not GC'd: idle %lld ns "
                      "exceeds timeout+2*gc_period",
                      static_cast<unsigned long long>(e.flow_id), e.out_dev_idx, dci,
                      static_cast<long long>(now - e.last_seen));
        Violate(buf);
      }
    });
  }
}

void InvariantMonitor::FinalCheck(int64_t flows_started, int64_t flows_completed,
                                  TimeNs all_clear_time) {
  RunChecks();
  // (5) liveness: once connectivity is restored and the run drained, every
  // started flow completed. Skipped for plans that never fully heal or runs
  // that ended mid-fault.
  if (all_clear_time < 0 || net_.control_sim().now() < all_clear_time) {
    return;
  }
  if (flows_completed != flows_started) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "liveness: %lld of %lld flows incomplete after faults cleared at %lld ns",
                  static_cast<long long>(flows_started - flows_completed),
                  static_cast<long long>(flows_started),
                  static_cast<long long>(all_clear_time));
    Violate(buf);
  }
}

}  // namespace lcmp
