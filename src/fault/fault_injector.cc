#include "fault/fault_injector.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/invariant_monitor.h"
#include "obs/metrics.h"

namespace lcmp {

void FaultInjector::Arm(const FaultPlan& plan) {
  LCMP_CHECK_MSG(!armed_, "FaultInjector::Arm called twice");
  armed_ = true;
  plan_ = plan;
  plan_.Sort();
  Simulator& sim = net_.control_sim();
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kLinkFlap) {
      // Expand the flap into its toggles at arm time so each one is a plain
      // timestamped event (down first, then alternating).
      for (int k = 0; k < e.flap_count; ++k) {
        const bool up = k % 2 == 1;
        const int li = e.link_idx;
        sim.ScheduleAt(e.at + e.flap_period * k, [this, li, up] { SetLink(li, up); });
      }
      continue;
    }
    sim.ScheduleAt(e.at, [this, e] { Apply(e); });
  }
}

void FaultInjector::SetLink(int link_idx, bool up) {
  if (net_.LinkIsUp(link_idx) == up) {
    ++skipped_;  // overlapping plan events; Network would no-op anyway
    return;
  }
  net_.SetLinkUp(link_idx, up);
  ++injections_;
  static obs::Counter* m_injected =
      obs::MetricsRegistry::Instance().GetCounter("fault.injections");
  m_injected->Inc();
  if (monitor_ != nullptr) {
    monitor_->OnLinkStateChange(link_idx, up, net_.control_sim().now());
  }
}

void FaultInjector::Apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kLinkDown:
      SetLink(e.link_idx, false);
      break;
    case FaultKind::kLinkUp:
      SetLink(e.link_idx, true);
      break;
    case FaultKind::kLinkFlap:
      LCMP_CHECK_MSG(false, "flaps are expanded at Arm time");
      break;
    case FaultKind::kSwitchDown:
    case FaultKind::kSwitchUp: {
      // Per-link loop (rather than Network::SetSwitchUp) so the monitor sees
      // each constituent link transition with its exact timestamp.
      const bool up = e.kind == FaultKind::kSwitchUp;
      for (const int li : net_.graph().incident_links(e.node)) {
        SetLink(li, up);
      }
      break;
    }
    case FaultKind::kDegrade:
      net_.SetLinkDegraded(e.link_idx, e.degrade);
      ++injections_;
      break;
    case FaultKind::kRestore:
      net_.SetLinkDegraded(e.link_idx, LinkDegrade{});
      ++injections_;
      break;
    case FaultKind::kTelemetryOutage:
      if (cp_ == nullptr) {
        ++skipped_;
        break;
      }
      cp_->SetTelemetryOutageUntil(
          std::max(cp_->telemetry_outage_until(), net_.control_sim().now() + e.duration));
      ++injections_;
      break;
  }
}

}  // namespace lcmp
