// Runtime invariant checking during fault-injection runs.
//
// The monitor periodically sweeps read-only simulator state and asserts the
// properties that must hold no matter what the fault plan does:
//
//   1. Dead-path pinning: no LCMP flow-cache entry is refreshed (last_seen
//      advanced) after its egress port went down — lazy invalidation must
//      rehash the flow within one estimator period of the first packet.
//   2. Flow-cache GC: entries pointing at a dead egress are evicted within
//      the idle timeout plus two GC periods.
//   3. No routing loops: the fleet-wide TTL-exhaustion drop counter stays 0.
//   4. Byte conservation per port: accepted == transmitted + flushed + queued
//      at every instant (no byte is created or silently lost by a fault).
//   5. Liveness (FinalCheck): once every fault has been lifted and the run
//      drained, every started flow has completed.
//
// Checks only *read* state — they never schedule data-plane events or draw
// randomness — so enabling the monitor cannot change a run's outcome. In
// strict mode a violation fails fast through LCMP_CHECK_MSG (dumping the
// flight recorder); in collect mode violations are recorded and exposed, so
// tests can assert that a deliberately broken system is caught.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lcmp {

struct InvariantMonitorOptions {
  // Sweep cadence once Start()ed.
  TimeNs check_period = Microseconds(500);
  // Fail fast via LCMP_CHECK_MSG (true) or record and keep going (false).
  bool strict = true;
  // In collect mode, cap the violation log (the count keeps increasing).
  size_t max_recorded = 64;
};

class InvariantMonitor {
 public:
  explicit InvariantMonitor(Network& net, InvariantMonitorOptions options = {});

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  // Begins periodic sweeps on the network's simulator (idempotent).
  void Start();
  void Stop();

  // Precise link-transition timestamps, called by FaultInjector. Transitions
  // performed behind the monitor's back are still caught by polling, just
  // with the sweep period as timestamp slack.
  void OnLinkStateChange(int link_idx, bool up, TimeNs now);

  // One sweep of checks 1-4; callable directly from tests.
  void RunChecks();

  // End-of-run check: one final sweep plus the liveness invariant. Callers
  // pass all_clear_time = FaultPlan::AllClearTime(); liveness is skipped when
  // it is negative (a permanent fault legitimately strands flows) or lies
  // beyond the current simulation time (the run ended mid-fault).
  void FinalCheck(int64_t flows_started, int64_t flows_completed, TimeNs all_clear_time);

  int64_t checks_run() const { return checks_run_; }
  int64_t violations() const { return violations_; }
  const std::vector<std::string>& violation_log() const { return violation_log_; }

 private:
  void Violate(const std::string& what);
  // Polls every link's up/down state against the last known state so
  // transitions not reported through OnLinkStateChange get a down-since time.
  void ReconcileLinkStates();

  Network& net_;
  InvariantMonitorOptions options_;
  Simulator::TimerId timer_ = Simulator::kInvalidTimer;
  std::vector<bool> link_up_;         // last observed state per graph link
  std::vector<TimeNs> down_since_;    // valid while !link_up_[i]
  int64_t last_ttl_drops_ = 0;        // report TTL jumps once, not per sweep
  int64_t checks_run_ = 0;
  int64_t violations_ = 0;
  std::vector<std::string> violation_log_;
};

}  // namespace lcmp
