// Seeded property-based testing harness (validation layer, DESIGN.md §10).
//
// A property is a function from (Rng, size) to an optional failure message:
// it draws arbitrary inputs from the Rng — scaled by `size` — checks an
// invariant, and returns the violation (or nullopt). RunProperty executes the
// property across `cases` derived seeds with sizes cycling through
// [1, max_size]; on the first failure it SHRINKS the size dimension (same
// seed, smaller sizes) to the minimal still-failing case and reports a
// one-line repro:
//     name: FAILED seed=<s> size=<n>: <message>
//     repro: RunProperty once with PropertyOptions{.base_seed=<s>,
//            .cases=1, .min_size=<n>, .max_size=<n>}
// so a CI failure is reproducible locally without replaying the whole run.
//
// Generators for the project's domain types (valid LcmpConfigs, scored
// candidate sets, random WAN topologies via BuildRandomWan, chaos fault
// plans via GenerateChaosPlan) live alongside the harness so every property
// draws from the same vocabulary.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/selector.h"

namespace lcmp {
namespace validate {

struct PropertyOptions {
  uint64_t base_seed = 1;  // case i uses seed base_seed + i
  int cases = 200;
  int min_size = 1;
  int max_size = 64;  // sizes cycle min_size..max_size across cases
};

struct PropertyResult {
  std::string name;
  bool passed = false;
  int cases_run = 0;
  // Populated on failure (after shrinking).
  uint64_t failing_seed = 0;
  int failing_size = 0;
  std::string failure;
  std::string repro;  // one-line reproduction recipe

  // "name: OK (N cases)" or the failure + repro lines.
  std::string Report() const;
};

// The property draws inputs from `rng` (deterministic per case) at the given
// size and returns a failure message, or nullopt when the invariant holds.
using PropertyFn = std::function<std::optional<std::string>(Rng& rng, int size)>;

PropertyResult RunProperty(const std::string& name, const PropertyOptions& options,
                           const PropertyFn& property);

// ---- Generators ----

// A random *valid* LcmpConfig (ValidateConfig-true by construction): weights,
// shifts, keep fraction, thresholds and timings drawn from their full legal
// ranges, delay saturation applied via SetDelaySaturation.
LcmpConfig GenLcmpConfig(Rng& rng);

// `size` scored candidates with random ports (a permutation), costs and
// congestion scores.
std::vector<ScoredCandidate> GenCandidates(Rng& rng, int size);

}  // namespace validate
}  // namespace lcmp
