#include "validate/oracles.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/experiment.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/port.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "transport/rdma_transport.h"

namespace lcmp {
namespace validate {
namespace {

std::string Fmt(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

FlowSpec MakeFlow(FlowId id, NodeId src, NodeId dst, uint64_t bytes, TimeNs start) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.key = FlowKey{src, dst, static_cast<uint32_t>(id), 4791, 17};
  f.size_bytes = bytes;
  f.start_time = start;
  return f;
}

// Runs `num_flows` DC0 -> DC1 transfers over `graph` under `policy` and
// returns the completion records sorted by flow id.
std::vector<FlowRecord> RunDumbbellFlows(const Graph& graph, PolicyKind policy, int num_flows,
                                         uint64_t seed) {
  Network net(graph, NetworkConfig{}, MakePolicyFactory(policy, LcmpConfig{}));
  net.StartPolicyTicks();
  std::vector<FlowRecord> records;
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord& r) { records.push_back(r); });
  const auto src_hosts = graph.HostsInDc(0);
  const auto dst_hosts = graph.HostsInDc(1);
  Rng rng(seed);
  for (FlowId i = 1; i <= static_cast<FlowId>(num_flows); ++i) {
    const uint64_t bytes = 20'000 + rng.NextBounded(400'000);
    const TimeNs start = static_cast<TimeNs>(rng.NextBounded(Milliseconds(2)));
    transport.ScheduleFlow(MakeFlow(i, src_hosts[i % src_hosts.size()],
                                    dst_hosts[(i + 1) % dst_hosts.size()], bytes, start));
  }
  net.sim().Run(Seconds(60));
  std::sort(records.begin(), records.end(),
            [](const FlowRecord& a, const FlowRecord& b) { return a.spec.id < b.spec.id; });
  return records;
}

}  // namespace

OracleResult CheckByteConservation(uint64_t seed) {
  const Graph graph = BuildDumbbell(/*parallel_links=*/2, /*hosts_per_dc=*/2, Gbps(10),
                                    Milliseconds(1));
  Network net(graph, NetworkConfig{}, MakePolicyFactory(PolicyKind::kEcmp, LcmpConfig{}));
  std::vector<FlowRecord> records;
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord& r) { records.push_back(r); });
  const auto src_hosts = graph.HostsInDc(0);
  const auto dst_hosts = graph.HostsInDc(1);
  Rng rng(seed);
  const int num_flows = 20;
  for (FlowId i = 1; i <= static_cast<FlowId>(num_flows); ++i) {
    const uint64_t bytes = 10'000 + rng.NextBounded(200'000);
    transport.ScheduleFlow(MakeFlow(i, src_hosts[i % src_hosts.size()],
                                    dst_hosts[i % dst_hosts.size()], bytes,
                                    static_cast<TimeNs>(i) * Microseconds(20)));
  }
  net.sim().Run(Seconds(60));
  if (static_cast<int>(records.size()) != num_flows) {
    return {false, Fmt("only %zu of %d flows completed", records.size(), num_flows)};
  }
  // End-to-end ledger: every byte a port ever accepted was transmitted,
  // administratively flushed, or is still queued — and at quiescence nothing
  // may still be queued.
  int ports_checked = 0;
  for (NodeId id = 0; id < graph.num_vertices(); ++id) {
    Node& node = net.node(id);
    for (PortIndex p = 0; p < node.num_ports(); ++p) {
      const Port& port = node.port(p);
      ++ports_checked;
      const int64_t ledger = port.tx_bytes() + port.flushed_bytes() + port.queue_bytes();
      if (port.accepted_bytes() != ledger) {
        return {false, Fmt("node %d port %d: accepted %lld != tx %lld + flushed %lld + "
                           "queued %lld",
                           static_cast<int>(id), static_cast<int>(p),
                           static_cast<long long>(port.accepted_bytes()),
                           static_cast<long long>(port.tx_bytes()),
                           static_cast<long long>(port.flushed_bytes()),
                           static_cast<long long>(port.queue_bytes()))};
      }
      if (port.queue_bytes() != 0) {
        return {false, Fmt("node %d port %d: %lld bytes still queued after quiescence",
                           static_cast<int>(id), static_cast<int>(p),
                           static_cast<long long>(port.queue_bytes()))};
      }
    }
  }
  return {true, Fmt("%d flows, %d port ledgers balanced", num_flows, ports_checked)};
}

OracleResult CheckSingleFlowCeiling(uint64_t seed) {
  const int64_t bottleneck = Gbps(10);
  const TimeNs inter_delay = Milliseconds(5);
  const Graph graph = BuildDumbbell(1, 1, bottleneck, inter_delay);
  Network net(graph, NetworkConfig{}, MakePolicyFactory(PolicyKind::kEcmp, LcmpConfig{}));
  std::vector<FlowRecord> records;
  RdmaTransport transport(&net, TransportConfig{},
                          [&](const FlowRecord& r) { records.push_back(r); });
  const uint64_t bytes = 1'000'000 + (seed % 7) * 100'000;
  transport.StartFlow(
      MakeFlow(1, graph.HostsInDc(0)[0], graph.HostsInDc(1)[0], bytes, 0));
  net.sim().Run(Seconds(60));
  if (records.size() != 1) {
    return {false, "single flow did not complete"};
  }
  const TimeNs fct = records[0].complete_time - records[0].start_time;
  // Physics floor: the payload must at least serialize at the bottleneck and
  // cross the inter-DC propagation once. (Headers, intra-DC hops, ACK-clocked
  // ramp-up only add to this.)
  const TimeNs floor = SerializationDelay(static_cast<int64_t>(bytes), bottleneck) + inter_delay;
  if (fct < floor) {
    return {false, Fmt("FCT %lld ns beats the analytic floor %lld ns",
                       static_cast<long long>(fct), static_cast<long long>(floor))};
  }
  // Goodput ceiling: payload bits per FCT second cannot exceed line rate.
  const double goodput_bps = static_cast<double>(bytes) * 8e9 / static_cast<double>(fct);
  if (goodput_bps > static_cast<double>(bottleneck)) {
    return {false, Fmt("goodput %.0f bps exceeds the %lld bps bottleneck", goodput_bps,
                       static_cast<long long>(bottleneck))};
  }
  return {true, Fmt("%llu B: FCT %lld ns >= floor %lld ns, goodput %.2f Gbps <= 10 Gbps",
                    static_cast<unsigned long long>(bytes), static_cast<long long>(fct),
                    static_cast<long long>(floor), goodput_bps / 1e9)};
}

OracleResult CheckSinglePathPolicyEquivalence(uint64_t seed) {
  // One inter-DC link: every policy's candidate set is a singleton, so the
  // routing decision is forced and the transports must behave identically.
  const Graph graph = BuildDumbbell(1, 2, Gbps(10), Milliseconds(5));
  const int num_flows = 12;
  const auto ecmp = RunDumbbellFlows(graph, PolicyKind::kEcmp, num_flows, seed);
  const auto lcmp = RunDumbbellFlows(graph, PolicyKind::kLcmp, num_flows, seed);
  if (ecmp.size() != lcmp.size() || static_cast<int>(ecmp.size()) != num_flows) {
    return {false, Fmt("completion counts differ: ecmp %zu, lcmp %zu (want %d)", ecmp.size(),
                       lcmp.size(), num_flows)};
  }
  for (int i = 0; i < num_flows; ++i) {
    const TimeNs fct_e = ecmp[i].complete_time - ecmp[i].start_time;
    const TimeNs fct_l = lcmp[i].complete_time - lcmp[i].start_time;
    if (ecmp[i].spec.id != lcmp[i].spec.id || fct_e != fct_l ||
        ecmp[i].spec.size_bytes != lcmp[i].spec.size_bytes) {
      return {false, Fmt("flow %lld diverges: ecmp FCT %lld ns, lcmp FCT %lld ns",
                         static_cast<long long>(ecmp[i].spec.id),
                         static_cast<long long>(fct_e), static_cast<long long>(fct_l))};
    }
  }
  return {true, Fmt("%d flows bit-identical across ECMP and LCMP", num_flows)};
}

namespace {

// Minimal nodes for driving one Port directly (no routing, no transport).
class OracleSink : public Node {
 public:
  OracleSink(Simulator* sim, NodeId id) : Node(sim, id, Kind::kHost, 0, 1) {}
  void Receive(Packet, PortIndex) override {}
};

class OracleSource : public Node {
 public:
  OracleSource(Simulator* sim, NodeId id) : Node(sim, id, Kind::kHost, 0, 2) {}
  void Receive(Packet, PortIndex) override {}
};

}  // namespace

OracleResult CheckQueueBuildupRate() {
  Simulator sim;
  OracleSource src(&sim, 0);
  OracleSink dst(&sim, 1);
  PortConfig pc;
  pc.rate_bps = Gbps(1);  // drain µ = 1 Gbps
  pc.prop_delay_ns = 1000;
  pc.buffer_bytes = 16'000'000;
  pc.ecn_kmin = 0;
  const PortIndex idx = src.AddPort(pc, /*graph_link_idx=*/0);
  src.port(idx).ConnectTo(&dst, 0);
  // Offer λ = 2 Gbps: one 1000 B packet every 4 µs.
  const int64_t pkt_bytes = 1000;
  const TimeNs spacing = 4000;
  const TimeNs horizon = Milliseconds(1);
  for (TimeNs t = 0; t < horizon; t += spacing) {
    sim.ScheduleAt(t, [&src, idx, pkt_bytes] {
      Packet p;
      p.type = PacketType::kData;
      p.size_bytes = static_cast<uint32_t>(pkt_bytes);
      src.port(idx).Enqueue(p);
    });
  }
  sim.Run(horizon);
  // Arithmetic: queue(T) = (λ - µ)·T / 8 = 1 Gbps · 1 ms / 8 = 125000 B.
  const int64_t expected = (Gbps(2) - Gbps(1)) / 8 * horizon / Seconds(1);
  const int64_t actual = src.port(idx).queue_bytes();
  const int64_t tolerance = 4 * pkt_bytes;  // packet quantization at both rates
  if (actual < expected - tolerance || actual > expected + tolerance) {
    return {false, Fmt("queue after 1 ms at 2x load: %lld B, expected %lld +/- %lld B",
                       static_cast<long long>(actual), static_cast<long long>(expected),
                       static_cast<long long>(tolerance))};
  }
  return {true, Fmt("queue %lld B matches (λ-µ)·T = %lld B within %lld B",
                    static_cast<long long>(actual), static_cast<long long>(expected),
                    static_cast<long long>(tolerance))};
}

std::vector<std::pair<std::string, OracleResult>> RunAllOracles(uint64_t seed) {
  std::vector<std::pair<std::string, OracleResult>> out;
  out.emplace_back("byte-conservation", CheckByteConservation(seed));
  out.emplace_back("single-flow-ceiling", CheckSingleFlowCeiling(seed));
  out.emplace_back("single-path-equivalence", CheckSinglePathPolicyEquivalence(seed));
  out.emplace_back("queue-buildup-rate", CheckQueueBuildupRate());
  return out;
}

}  // namespace validate
}  // namespace lcmp
