// Golden-digest regression corpus (validation layer, DESIGN.md §10).
//
// A golden scenario is a canonical ExperimentConfig — policy × topology ×
// workload, some with a seeded chaos plan — whose deterministic
// ExperimentDigest is pinned in tests/golden/<name>.json. The golden test
// re-runs every scenario and diffs the digest (plus the event/flow counters
// and the config echo) against the pinned record, so ANY change to the
// event-for-event behavior of the simulator, a routing policy, the transport
// or the fault injector shows up as a named scenario diff instead of a
// silent drift. Intentional behavior changes re-pin the corpus with
//   lcmp_validate --update-golden
// and the new records are reviewed like any other diff.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace lcmp {
namespace validate {

struct GoldenScenario {
  std::string name;       // file stem under the golden dir
  std::string overrides;  // registry "field=value ..." list applied to defaults
};

// The canonical corpus: every routing policy on the 8-DC testbed, both paper
// topologies, the herd-effect symmetric variant, chaos plans with the
// invariant monitor attached, and the substrate/transport extensions.
const std::vector<GoldenScenario>& GoldenScenarios();

// Builds the scenario's ExperimentConfig from its overrides string. Dies
// (LCMP_CHECK-style false return) only on a malformed scenario table.
bool BuildGoldenConfig(const GoldenScenario& scenario, ExperimentConfig* config,
                       std::string* error);

// What gets pinned per scenario. digest/events/flows/sim_end are compared
// exactly; config_echo is compared to catch default-value drift (a changed
// default silently changes what "the same scenario" means); the percentiles
// are informational context for reviewing an intentional re-pin.
struct GoldenRecord {
  std::string name;
  uint64_t digest = 0;
  uint64_t events_processed = 0;
  int64_t flows_completed = 0;
  int64_t sim_end_ns = 0;
  // "field=value field=value ..." over registry fields that differ from a
  // default-constructed ExperimentConfig, in registry order.
  std::string config_echo;
  double p50_slowdown = 0;  // informational, not compared
  double p99_slowdown = 0;  // informational, not compared
};

// Runs the scenario and folds the result into a record. `shards` > 1 runs
// the sharded PDES core (DESIGN.md §12); because sharding is bit-exact, the
// record must match the sequentially-pinned one for every shard count.
GoldenRecord ComputeGoldenRecord(const GoldenScenario& scenario, int shards = 1);

// The registry-order non-default config echo used in records.
std::string ConfigEcho(const ExperimentConfig& config);

// JSON (de)serialization of one record.
std::string GoldenRecordToJson(const GoldenRecord& record);
bool ParseGoldenRecord(const std::string& text, GoldenRecord* record, std::string* error);
bool LoadGoldenRecord(const std::string& path, GoldenRecord* record, std::string* error);
bool SaveGoldenRecord(const std::string& path, const GoldenRecord& record, std::string* error);

// Pinned-vs-current comparison; `detail` names every differing field.
struct GoldenDiff {
  bool match = false;
  std::string detail;
};
GoldenDiff CompareGolden(const GoldenRecord& pinned, const GoldenRecord& current);

// --- topology-family structural goldens (topo/gen, DESIGN.md §13) ---
//
// One pinned StructuralDigest per generated-WAN family (plus the historical
// random WAN). The digest covers every vertex and link of the built graph,
// so any change to a generator — ordering, link classes, fabric shape, the
// TopoRng stream — shows up as a named family diff. Pinned together in
// tests/golden/topo_families.json; re-pin with `lcmp_validate
// --update-golden` after an intentional generator change.

struct TopoFamilyScenario {
  std::string name;       // record key in topo_families.json
  std::string overrides;  // registry "field=value ..." list selecting the family
};

const std::vector<TopoFamilyScenario>& TopoFamilyScenarios();

// Builds the scenario's topology and computes its structural digest. False
// (with *error) on a malformed overrides string.
bool ComputeTopoFamilyDigest(const TopoFamilyScenario& scenario, uint64_t* digest,
                             std::string* error);

struct TopoFamilyRecord {
  std::string name;
  std::string config_echo;  // non-default registry fields, as in GoldenRecord
  uint64_t digest = 0;
};

// The single-file family corpus: dir + "/topo_families.json".
std::string TopoFamilyGoldenPath(const std::string& dir);
bool LoadTopoFamilyRecords(const std::string& path, std::vector<TopoFamilyRecord>* out,
                           std::string* error);
bool SaveTopoFamilyRecords(const std::string& path,
                           const std::vector<TopoFamilyRecord>& records, std::string* error);

// Golden corpus directory: $LCMP_GOLDEN_DIR if set, else the compiled-in
// source-tree path (tests/golden).
std::string GoldenDir();

// Path of one scenario's record file inside `dir`.
std::string GoldenPath(const std::string& dir, const std::string& scenario_name);

}  // namespace validate
}  // namespace lcmp
