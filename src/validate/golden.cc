#include "validate/golden.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/json_util.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "topo/gen/topo_stats.h"

namespace lcmp {
namespace validate {
namespace {

// Every scenario keeps the flow count small enough that the full corpus runs
// in a few seconds; the digest folds every per-flow sample, so even these
// short runs pin the behavior of the whole stack.
constexpr char kBaseline[] = "flows=120 hosts_per_dc=2 seed=11";

std::string HexDigest(uint64_t digest) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace

const std::vector<GoldenScenario>& GoldenScenarios() {
  static const std::vector<GoldenScenario>* scenarios = new std::vector<GoldenScenario>{
      // Every policy on the Fig. 1a asymmetric testbed.
      {"testbed8-ecmp", std::string(kBaseline) + " policy=ecmp"},
      {"testbed8-wcmp", std::string(kBaseline) + " policy=wcmp"},
      {"testbed8-ucmp", std::string(kBaseline) + " policy=ucmp"},
      {"testbed8-redte", std::string(kBaseline) + " policy=redte"},
      {"testbed8-lcmp", std::string(kBaseline) + " policy=lcmp"},
      // The sparse Europe-like backbone (Fig. 4b).
      {"bso13-ecmp", std::string(kBaseline) + " topo=bso13 policy=ecmp"},
      {"bso13-lcmp", std::string(kBaseline) + " topo=bso13 policy=lcmp"},
      // Herd-effect micro-benchmark: symmetric routes, synchronized burst.
      {"testbed8sym-lcmp-burst", std::string(kBaseline) +
                                     " topo=testbed8-sym policy=lcmp pairing=endpoints-oneway"
                                     " burst=true burst_size_bytes=2000000 flows=48"},
      // Fault injection: seeded chaos dense enough to hit in-use routes
      // inside the short run, with and without LCMP, monitor attached.
      {"testbed8-lcmp-chaos",
       std::string(kBaseline) + " policy=lcmp chaos_seed=7 chaos_rate=150 chaos_window_ms=50"
                                " monitor=true monitor_strict=false"},
      {"testbed8-ecmp-chaos",
       std::string(kBaseline) + " policy=ecmp chaos_seed=7 chaos_rate=150 chaos_window_ms=50"},
      // Substrate / transport extensions, at a load high enough that the
      // congestion-control and OoO machinery actually engages.
      {"testbed8-lcmp-pfc", std::string(kBaseline) + " policy=lcmp pfc=true workload=fbhdp"},
      {"testbed8-lcmp-ooo-hpcc",
       std::string(kBaseline) + " policy=lcmp ooo_tolerance=true cc=hpcc load=0.8"},
      {"testbed8-lcmp-timely-ali",
       std::string(kBaseline) + " policy=lcmp cc=timely workload=alistorage load=0.5"},
      // Segment-split CC + windowed sender (DESIGN.md §14): the incast /
      // oversubscription family with the LCP long-haul stack, and a plain
      // split run without incast. Both pin the gateway-stamp RTT demux, the
      // SegmentedCc min-rate composition and the in-flight window.
      {"testbed8-incast-split",
       std::string(kBaseline) +
           " policy=lcmp cc=lcp/dcqcn incast_fanin=8 incast_bytes=8388608"
           " os_borders=4 mix_intra=0.25 max_inflight_bytes=4194304"},
      {"testbed8-lcmp-split-windowed",
       std::string(kBaseline) + " policy=lcmp cc=lcp/dcqcn max_inflight_bytes=2097152 load=0.5"},
      // Lossy DCI tier (DESIGN.md §15): IRN selective retransmit on a clean
      // wire (digest must match gbn when nothing is lost or reordered), the
      // Gilbert-Elliott loss model under both reliability modes, and the
      // gateway FEC shim reconstructing across the loss.
      {"testbed8-lcmp-irn", std::string(kBaseline) + " policy=lcmp reliability=irn"},
      {"testbed8-lossy-gbn",
       std::string(kBaseline) +
           " policy=lcmp dci_loss_rate=0.001 dci_burst_len=4 max_inflight_bytes=4194304"},
      {"testbed8-lossy-irn",
       std::string(kBaseline) + " policy=lcmp reliability=irn dci_loss_rate=0.001"
                                " dci_burst_len=4 max_inflight_bytes=4194304"},
      {"testbed8-lossy-fec",
       std::string(kBaseline) + " policy=lcmp reliability=irn dci_loss_rate=0.001 fec=8:2"
                                " max_inflight_bytes=4194304"},
  };
  return *scenarios;
}

bool BuildGoldenConfig(const GoldenScenario& scenario, ExperimentConfig* config,
                       std::string* error) {
  *config = ExperimentConfig{};
  return ApplyConfigField(config, "overrides", scenario.overrides, error);
}

std::string ConfigEcho(const ExperimentConfig& config) {
  const ExperimentConfig defaults;
  std::string out;
  for (const std::string& field : KnownConfigFields()) {
    std::string cur;
    std::string def;
    if (!GetConfigField(config, field, &cur) || !GetConfigField(defaults, field, &def) ||
        cur == def) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += field + '=' + cur;
  }
  return out;
}

GoldenRecord ComputeGoldenRecord(const GoldenScenario& scenario, int shards) {
  ExperimentConfig config;
  std::string error;
  GoldenRecord record;
  record.name = scenario.name;
  if (!BuildGoldenConfig(scenario, &config, &error)) {
    record.config_echo = "INVALID SCENARIO: " + error;
    return record;
  }
  config.shards = shards;
  const ExperimentResult result = RunExperiment(config);
  record.digest = ExperimentDigest(result);
  record.events_processed = result.events_processed;
  record.flows_completed = result.flows_completed;
  record.sim_end_ns = result.sim_end_time;
  record.config_echo = ConfigEcho(config);
  record.p50_slowdown = result.overall.p50;
  record.p99_slowdown = result.overall.p99;
  return record;
}

std::string GoldenRecordToJson(const GoldenRecord& record) {
  using json::FormatDouble;
  using json::JsonEscape;
  std::string out = "{\n";
  out += "  \"name\": \"" + JsonEscape(record.name) + "\",\n";
  out += "  \"digest\": \"" + HexDigest(record.digest) + "\",\n";
  out += "  \"events_processed\": " + std::to_string(record.events_processed) + ",\n";
  out += "  \"flows_completed\": " + std::to_string(record.flows_completed) + ",\n";
  out += "  \"sim_end_ns\": " + std::to_string(record.sim_end_ns) + ",\n";
  out += "  \"config\": \"" + JsonEscape(record.config_echo) + "\",\n";
  out += "  \"p50_slowdown\": " + FormatDouble(record.p50_slowdown) + ",\n";
  out += "  \"p99_slowdown\": " + FormatDouble(record.p99_slowdown) + "\n";
  out += "}\n";
  return out;
}

bool ParseGoldenRecord(const std::string& text, GoldenRecord* record, std::string* error) {
  json::JsonValue root;
  if (!json::ParseJson(text, &root, error)) {
    return false;
  }
  if (root.kind != json::JsonValue::Kind::kObject) {
    *error = "golden record is not a JSON object";
    return false;
  }
  auto scalar = [&](const char* key, std::string* out) {
    const json::JsonValue* v = root.Find(key);
    if (v == nullptr || !v->AsString(out)) {
      *error = std::string("golden record missing field '") + key + "'";
      return false;
    }
    return true;
  };
  std::string digest_hex;
  std::string events;
  std::string flows;
  std::string sim_end;
  if (!scalar("name", &record->name) || !scalar("digest", &digest_hex) ||
      !scalar("events_processed", &events) || !scalar("flows_completed", &flows) ||
      !scalar("sim_end_ns", &sim_end) || !scalar("config", &record->config_echo)) {
    return false;
  }
  record->digest = std::strtoull(digest_hex.c_str(), nullptr, 16);
  record->events_processed = std::strtoull(events.c_str(), nullptr, 10);
  record->flows_completed = std::strtoll(flows.c_str(), nullptr, 10);
  record->sim_end_ns = std::strtoll(sim_end.c_str(), nullptr, 10);
  std::string p;
  if (scalar("p50_slowdown", &p)) {
    record->p50_slowdown = std::strtod(p.c_str(), nullptr);
  }
  if (scalar("p99_slowdown", &p)) {
    record->p99_slowdown = std::strtod(p.c_str(), nullptr);
  }
  *error = {};
  return true;
}

bool LoadGoldenRecord(const std::string& path, GoldenRecord* record, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open golden record '" + path + "'";
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ParseGoldenRecord(ss.str(), record, error);
}

bool SaveGoldenRecord(const std::string& path, const GoldenRecord& record, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot write golden record '" + path + "'";
    return false;
  }
  out << GoldenRecordToJson(record);
  if (!out) {
    *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

GoldenDiff CompareGolden(const GoldenRecord& pinned, const GoldenRecord& current) {
  GoldenDiff diff;
  std::string detail;
  auto mismatch = [&](const std::string& what, const std::string& want,
                      const std::string& got) {
    if (!detail.empty()) {
      detail += "; ";
    }
    detail += what + ": pinned " + want + ", current " + got;
  };
  if (pinned.digest != current.digest) {
    mismatch("digest", HexDigest(pinned.digest), HexDigest(current.digest));
  }
  if (pinned.events_processed != current.events_processed) {
    mismatch("events_processed", std::to_string(pinned.events_processed),
             std::to_string(current.events_processed));
  }
  if (pinned.flows_completed != current.flows_completed) {
    mismatch("flows_completed", std::to_string(pinned.flows_completed),
             std::to_string(current.flows_completed));
  }
  if (pinned.sim_end_ns != current.sim_end_ns) {
    mismatch("sim_end_ns", std::to_string(pinned.sim_end_ns),
             std::to_string(current.sim_end_ns));
  }
  if (pinned.config_echo != current.config_echo) {
    mismatch("config", "'" + pinned.config_echo + "'", "'" + current.config_echo + "'");
  }
  diff.match = detail.empty();
  diff.detail = std::move(detail);
  return diff;
}

const std::vector<TopoFamilyScenario>& TopoFamilyScenarios() {
  // Sizes are small enough to build in milliseconds but large enough that a
  // generator change cannot hide (partial dragonfly group, rounded-up MMS
  // and Clos sizes, chorded random ring).
  static const std::vector<TopoFamilyScenario>* scenarios =
      new std::vector<TopoFamilyScenario>{
          {"dragonfly", "topo=dragonfly dcs=32 topo_seed=7 hosts_per_dc=2"},
          {"slimfly", "topo=slimfly dcs=50 topo_seed=7 hosts_per_dc=2"},
          {"fattree", "topo=fattree dcs=20 topo_seed=7 hosts_per_dc=2"},
          {"random", "topo=random dcs=16 chords=8 topo_seed=7 hosts_per_dc=2"},
      };
  return *scenarios;
}

bool ComputeTopoFamilyDigest(const TopoFamilyScenario& scenario, uint64_t* digest,
                             std::string* error) {
  ExperimentConfig config;
  if (!ApplyConfigField(&config, "overrides", scenario.overrides, error)) {
    return false;
  }
  *digest = StructuralDigest(BuildTopology(config));
  return true;
}

std::string TopoFamilyGoldenPath(const std::string& dir) {
  return dir + "/topo_families.json";
}

bool LoadTopoFamilyRecords(const std::string& path, std::vector<TopoFamilyRecord>* out,
                           std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open topo-family corpus '" + path + "'";
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  json::JsonValue root;
  if (!json::ParseJson(ss.str(), &root, error)) {
    return false;
  }
  const json::JsonValue* families = root.Find("families");
  if (families == nullptr || families->kind != json::JsonValue::Kind::kArray) {
    *error = "topo-family corpus has no 'families' array";
    return false;
  }
  out->clear();
  for (const json::JsonValue& item : families->items) {
    TopoFamilyRecord rec;
    std::string digest_hex;
    const json::JsonValue* name = item.Find("name");
    const json::JsonValue* digest = item.Find("digest");
    const json::JsonValue* config = item.Find("config");
    if (name == nullptr || !name->AsString(&rec.name) || digest == nullptr ||
        !digest->AsString(&digest_hex) || config == nullptr ||
        !config->AsString(&rec.config_echo)) {
      *error = "malformed topo-family record in '" + path + "'";
      return false;
    }
    rec.digest = std::strtoull(digest_hex.c_str(), nullptr, 16);
    out->push_back(std::move(rec));
  }
  return true;
}

bool SaveTopoFamilyRecords(const std::string& path,
                           const std::vector<TopoFamilyRecord>& records, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot write topo-family corpus '" + path + "'";
    return false;
  }
  out << "{\n  \"families\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    out << "    {\"name\": \"" << json::JsonEscape(records[i].name) << "\", \"digest\": \""
        << HexDigest(records[i].digest) << "\", \"config\": \""
        << json::JsonEscape(records[i].config_echo) << "\"}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out) {
    *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

std::string GoldenDir() {
  const char* env = std::getenv("LCMP_GOLDEN_DIR");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
#ifdef LCMP_GOLDEN_DIR
  return LCMP_GOLDEN_DIR;
#else
  return "tests/golden";
#endif
}

std::string GoldenPath(const std::string& dir, const std::string& scenario_name) {
  return dir + "/" + scenario_name + ".json";
}

}  // namespace validate
}  // namespace lcmp
