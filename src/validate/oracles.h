// Analytic oracles (validation layer, DESIGN.md §10).
//
// Each oracle checks a simulation outcome against a quantity derivable with
// pencil and paper — independent of the simulator's own bookkeeping — so a
// bug that shifts behavior *consistently* (and therefore survives the golden
// digests, which only pin change) still gets caught:
//   - per-port byte conservation: accepted == transmitted + flushed + queued
//     on every port of a transport run, end to end;
//   - single-flow FCT floor / throughput ceiling: one flow on an idle path
//     cannot beat serialization + propagation, and its goodput cannot exceed
//     the bottleneck line rate;
//   - degenerate-topology policy equivalence: on a single-path topology every
//     multipath policy has exactly one choice, so ECMP and LCMP must produce
//     identical per-flow completion times;
//   - queue-buildup arithmetic: a port offered λ > µ builds queue at λ - µ.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lcmp {
namespace validate {

struct OracleResult {
  bool passed = false;
  std::string detail;  // human-readable numbers behind the verdict
};

// Runs ~20 flows over a 2-link dumbbell and checks every port's byte ledger.
OracleResult CheckByteConservation(uint64_t seed);

// One flow, one path: FCT >= bottleneck serialization + propagation, and
// goodput <= bottleneck rate.
OracleResult CheckSingleFlowCeiling(uint64_t seed);

// Single-path dumbbell: ECMP and LCMP per-flow FCT sequences are identical.
OracleResult CheckSinglePathPolicyEquivalence(uint64_t seed);

// Offered load 2x the drain rate: after T the queue holds (λ-µ)·T bits,
// within a packet-quantization tolerance.
OracleResult CheckQueueBuildupRate();

// All oracles, named, for the test suite and the lcmp_validate CLI.
std::vector<std::pair<std::string, OracleResult>> RunAllOracles(uint64_t seed);

}  // namespace validate
}  // namespace lcmp
