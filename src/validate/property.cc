#include "validate/property.h"

#include <algorithm>
#include <utility>

namespace lcmp {
namespace validate {

std::string PropertyResult::Report() const {
  if (passed) {
    return name + ": OK (" + std::to_string(cases_run) + " cases)";
  }
  std::string out = name + ": FAILED seed=" + std::to_string(failing_seed) +
                    " size=" + std::to_string(failing_size) + ": " + failure;
  out += "\n  repro: " + repro;
  return out;
}

PropertyResult RunProperty(const std::string& name, const PropertyOptions& options,
                           const PropertyFn& property) {
  PropertyResult result;
  result.name = name;
  const int span = std::max(options.max_size - options.min_size + 1, 1);
  uint64_t failing_seed = 0;
  int failing_size = 0;
  std::string failure;
  bool failed = false;
  for (int i = 0; i < options.cases; ++i) {
    const uint64_t seed = options.base_seed + static_cast<uint64_t>(i);
    const int size = options.min_size + i % span;
    Rng rng(seed);
    std::optional<std::string> violation = property(rng, size);
    ++result.cases_run;
    if (violation.has_value()) {
      failed = true;
      failing_seed = seed;
      failing_size = size;
      failure = std::move(*violation);
      break;
    }
  }
  if (!failed) {
    result.passed = true;
    return result;
  }
  // Shrink the size dimension: find the smallest size in [min_size,
  // failing_size] that still fails under the SAME seed. Sizes are scanned
  // from the bottom — properties are cheap, and the smallest repro is worth
  // a linear pass far more than a log-factor speedup.
  for (int size = options.min_size; size < failing_size; ++size) {
    Rng rng(failing_seed);
    std::optional<std::string> violation = property(rng, size);
    if (violation.has_value()) {
      failing_size = size;
      failure = std::move(*violation);
      break;
    }
  }
  result.passed = false;
  result.failing_seed = failing_seed;
  result.failing_size = failing_size;
  result.failure = std::move(failure);
  result.repro = "RunProperty(\"" + name + "\", {.base_seed=" + std::to_string(failing_seed) +
                 ", .cases=1, .min_size=" + std::to_string(failing_size) +
                 ", .max_size=" + std::to_string(failing_size) + "}, <property>)";
  return result;
}

LcmpConfig GenLcmpConfig(Rng& rng) {
  LcmpConfig c;
  // Fusion and scoring weights: full legal ranges, re-rolling the "not both
  // zero" pairs.
  c.alpha = static_cast<int>(rng.NextBounded(8));
  c.beta = static_cast<int>(rng.NextBounded(8));
  if (c.alpha == 0 && c.beta == 0) {
    c.alpha = 1;
  }
  c.w_dl = static_cast<int>(rng.NextBounded(8));
  c.w_lc = static_cast<int>(rng.NextBounded(8));
  if (c.w_dl == 0 && c.w_lc == 0) {
    c.w_dl = 1;
  }
  c.s_path = static_cast<int>(rng.NextBounded(7));
  c.w_ql = static_cast<int>(rng.NextBounded(5));
  c.w_tl = static_cast<int>(rng.NextBounded(5));
  c.w_dp = static_cast<int>(rng.NextBounded(5));
  c.s_cong = static_cast<int>(rng.NextBounded(7));
  c.SetDelaySaturation(Milliseconds(1 + static_cast<int64_t>(rng.NextBounded(256))));
  c.num_cap_classes = 2 + static_cast<int>(rng.NextBounded(31));
  c.num_queue_levels = 2 + static_cast<int>(rng.NextBounded(31));
  c.num_trend_levels = 2 + static_cast<int>(rng.NextBounded(31));
  c.trend_shift_k = static_cast<int>(rng.NextBounded(9));
  // Keep fraction in (0, 1]: draw the denominator first.
  c.keep_den = 1 + static_cast<int>(rng.NextBounded(8));
  c.keep_num = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(c.keep_den)));
  c.all_congested_threshold = 1 + static_cast<int>(rng.NextBounded(255));
  c.flow_cache_capacity = 16 + static_cast<int>(rng.NextBounded(4096));
  c.flow_idle_timeout = Microseconds(100 + static_cast<int64_t>(rng.NextBounded(500'000)));
  c.gc_period = Microseconds(100 + static_cast<int64_t>(rng.NextBounded(200'000)));
  c.sample_interval = Microseconds(10 + static_cast<int64_t>(rng.NextBounded(1000)));
  return c;
}

std::vector<ScoredCandidate> GenCandidates(Rng& rng, int size) {
  std::vector<ScoredCandidate> out;
  out.reserve(static_cast<size_t>(size));
  // Ports are a random permutation so "returns a member of the candidate
  // set" is not trivially satisfied by returning any small integer.
  std::vector<PortIndex> ports;
  for (int i = 0; i < size; ++i) {
    ports.push_back(static_cast<PortIndex>(i));
  }
  for (int i = size - 1; i > 0; --i) {
    std::swap(ports[static_cast<size_t>(i)],
              ports[rng.NextBounded(static_cast<uint64_t>(i + 1))]);
  }
  for (int i = 0; i < size; ++i) {
    ScoredCandidate c;
    c.port = ports[static_cast<size_t>(i)];
    c.fused_cost = static_cast<int32_t>(rng.NextBounded(512));
    c.cong_score = static_cast<uint8_t>(rng.NextBounded(256));
    out.push_back(c);
  }
  return out;
}

}  // namespace validate
}  // namespace lcmp
