#include "sim/node.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/int_pool.h"

namespace lcmp {

PortIndex Node::AddPort(const PortConfig& config, int graph_link_idx) {
  const PortIndex idx = static_cast<PortIndex>(ports_.size());
  ports_.push_back(std::make_unique<Port>(sim_, &rng_, this, idx, config, graph_link_idx));
  return idx;
}

void Node::ReleaseIntStack(Packet& pkt) {
  if (pkt.int_stack != kInvalidIntHandle && int_pool_ != nullptr) {
    int_pool_->ReleaseFrom(pkt);
  }
}

void SwitchNode::Receive(Packet pkt, PortIndex in_port) {
  if (++pkt.hops > kMaxForwardHops) {
    ++ttl_exhausted_drops_;
    static obs::Counter* m_ttl = obs::MetricsRegistry::Instance().GetCounter(
        "sim.switch.ttl_exhausted");
    m_ttl->Inc();
    LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, id_, in_port, /*aux=*/-2);
    ReleaseIntStack(pkt);
    return;
  }
  const PortIndex out = ResolveEgress(pkt);
  if (out == kInvalidPort) {
    ++dropped_no_route_;
    static obs::Counter* m_no_route = obs::MetricsRegistry::Instance().GetCounter(
        "sim.switch.drops_no_route");
    m_no_route->Inc();
    LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, id_, kInvalidPort, /*aux=*/-1);
    ReleaseIntStack(pkt);
    return;
  }
  ++forwarded_packets_;
  // Gateway stamps for segmented CC: the first DCI a DATA packet crosses is
  // the source-side gateway, the destination DC's DCI the dest-side one
  // (first-stamp-wins keeps transit DCIs out of the picture). Pure field
  // writes — no timing or RNG impact, so digests are unaffected.
  if (is_dci_ && pkt.type == PacketType::kData) {
    const int64_t delta = sim_->now() - pkt.sent_ts;
    const uint32_t off =
        delta <= 0 ? 1u
                   : static_cast<uint32_t>(std::min<int64_t>(delta, UINT32_MAX));
    if ((*dc_of_node_)[static_cast<size_t>(pkt.dst)] == dc_) {
      if (pkt.gw_dst_off == 0) {
        pkt.gw_dst_off = off;
      }
    } else if (pkt.gw_src_off == 0) {
      pkt.gw_src_off = off;
    }
  }
  pkt.ingress_port = in_port;  // PFC accounting tag (harmless when PFC off)
  const int64_t charge_bytes = pkt.size_bytes;
  // Charge *before* Enqueue: an idle port starts transmitting synchronously
  // and the dequeue hook would otherwise credit an uncharged packet.
  if (pfc_ != nullptr) {
    pfc_->OnPacketBuffered(charge_bytes, in_port);
  }
  const bool accepted = ports_[static_cast<size_t>(out)]->Enqueue(std::move(pkt));
  if (!accepted && pfc_ != nullptr) {
    pfc_->OnPacketFreed(charge_bytes, in_port);  // rejected: refund the charge
  }
}

void SwitchNode::EnablePfc(const PfcConfig& config) {
  pfc_ = std::make_unique<PfcController>(sim_, this, config);
  for (auto& port : ports_) {
    port->SetDequeueHook(
        [this](const Packet& pkt) { pfc_->OnPacketFreed(pkt.size_bytes, pkt.ingress_port); });
  }
}

PortIndex SwitchNode::PickStatic(const Packet& pkt, NodeId toward) {
  // The compact table only covers this switch's own DC; any other target has
  // no static route (the old full-size table kept empty rows for them).
  if ((*dc_of_node_)[static_cast<size_t>(toward)] != dc_) {
    return kInvalidPort;
  }
  const int32_t lo = (*static_local_index_)[static_cast<size_t>(toward)];
  const int32_t begin = static_offsets_[static_cast<size_t>(lo)];
  const int32_t count = static_offsets_[static_cast<size_t>(lo) + 1] - begin;
  if (count == 0) {
    return kInvalidPort;
  }
  if (count == 1) {
    return static_ports_[static_cast<size_t>(begin)];
  }
  // Intra-fabric ECMP: deterministic per-flow hash salted by switch id.
  const uint64_t h = HashFlowKey(pkt.key, static_cast<uint64_t>(id_));
  return static_ports_[static_cast<size_t>(begin) +
                       static_cast<size_t>(h % static_cast<uint64_t>(count))];
}

PortIndex SwitchNode::ResolveEgress(const Packet& pkt) {
  LCMP_CHECK(dc_of_node_ != nullptr);
  const DcId dst_dc = (*dc_of_node_)[static_cast<size_t>(pkt.dst)];
  if (dst_dc == dc_) {
    return PickStatic(pkt, pkt.dst);
  }
  if (!is_dci_) {
    // Interior switch: haul the packet to the local DCI edge.
    LCMP_CHECK(local_dci_ != kInvalidNode);
    return PickStatic(pkt, local_dci_);
  }
  // DCI switch: pin the flow to a path layer, then let the multipath policy
  // pick among that layer's candidates. The layer hash is unsalted by switch
  // id, so every hop of a flow agrees on the layer; a layer with no
  // candidates here falls back to the (total) minimal layer 0, which cannot
  // recur because layer-0 forwarding is strictly downhill from then on.
  int layer = 0;
  if (path_table_.num_layers() > 1) {
    layer = static_cast<int>(HashFlowKey(pkt.key, kPathLayerSalt) %
                             static_cast<uint64_t>(path_table_.num_layers()));
  }
  std::span<const PathCandidate> candidates = path_table_.Get(dst_dc, layer);
  if (candidates.empty() && layer != 0) {
    layer = 0;
    candidates = path_table_.Get(dst_dc, 0);
  }
  current_path_layer_ = layer;
  if (candidates.empty()) {
    return kInvalidPort;
  }
  LCMP_CHECK(policy_ != nullptr);
  return policy_->SelectPort(*this, pkt, candidates);
}

void HostNode::Receive(Packet pkt, PortIndex /*in_port*/) {
  if (sink_) {
    sink_(std::move(pkt));
  } else {
    ReleaseIntStack(pkt);  // no transport attached: the packet dies here
  }
}

void HostNode::Send(Packet pkt) {
  LCMP_CHECK(!ports_.empty());
  ports_[0]->Enqueue(std::move(pkt));
}

}  // namespace lcmp
