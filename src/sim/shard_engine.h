// Conservative barrier-synchronized PDES driver (DESIGN.md §12).
//
// Drives one Network whose event core is partitioned into N shard simulators.
// Execution alternates between parallel windows and a single-threaded barrier
// step ("coordinate"): N worker threads each run their shard's queue up to a
// common exclusive window end, then park on a std::barrier whose completion
// step drains the cross-shard channels, advances every shard to the global
// minimum next-event time T, runs the control-plane queue through T, and
// opens the next window [T, min(T + lookahead, next control event, horizon)).
// Cross-shard deliveries are timestamped at least one lookahead into the
// future, so nothing drained at a barrier can land inside an already-executed
// window — the classic conservative-synchronization argument, with the
// long-haul DCI propagation delay as the (enormous) lookahead.
//
// Determinism contract: every executed event carries a (time, key) pair that
// totally orders it against events of other shards (see EventQueue's key
// modes), which lets the engine reconstruct exactly what the sequential core
// would have counted and recorded:
//   - completions are stamped with their event's (time, key) and merged in
//     that order before replaying into the FCT recorder;
//   - the sequential Stop()-on-last-completion is reproduced without
//     rollback by finding the maximal completion stamp K_stop and counting
//     only final-window events at or before it (earlier windows closed
//     strictly before K_stop's window, so they are counted wholesale).
#pragma once

#include <algorithm>
#include <barrier>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/profile.h"
#include "obs/shard_profile.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lcmp {

// Rec is the completion payload (the transport's FlowRecord); the engine is
// templated so the sim layer stays independent of the transport's types.
template <typename Rec>
class ShardEngine {
 public:
  struct Completion {
    Rec rec{};
    TimeNs time = 0;
    uint64_t key = 0;
  };

  // `expected_completions` > 0 reproduces the harness's stop-on-last-flow;
  // 0 means "run to the horizon" (the sequential callback never stops).
  ShardEngine(Network* net, TimeNs horizon, int64_t expected_completions)
      : net_(net),
        horizon_(horizon),
        expected_(expected_completions),
        completions_(static_cast<size_t>(net->num_shards())),
        logs_(static_cast<size_t>(net->num_shards())),
        prev_events_(static_cast<size_t>(net->num_shards()), 0) {
    LCMP_CHECK(net_->num_shards() > 1 && horizon_ >= 0);
  }

  // Records a completion observed on `home`'s shard. Called from that
  // shard's worker thread, inside the completing event.
  void OnComplete(const Rec& rec, NodeId home) {
    const int shard = net_->shard_of(home);
    Simulator& sim = net_->shard_sim(shard);
    completions_[static_cast<size_t>(shard)].push_back(
        Completion{rec, sim.now(), sim.current_event_key()});
  }

  void Run() {
    const int n = net_->num_shards();
    auto on_barrier = [this]() noexcept { Coordinate(); };
    std::barrier barrier(n, on_barrier);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers.emplace_back([this, i, &barrier] {
        obs::BarrierProfiler& prof = obs::BarrierProfiler::Instance();
        for (;;) {
          barrier.arrive_and_wait();
          if (done_) {
            break;
          }
          if (prof.active()) {
            const uint64_t wall_start = obs::ProfileClockNs();
            net_->shard_sim(i).RunWindow(window_end_, &logs_[static_cast<size_t>(i)]);
            prof.OnShardWindow(i, wall_start, obs::ProfileClockNs() - wall_start,
                               logs_[static_cast<size_t>(i)].size());
          } else {
            net_->shard_sim(i).RunWindow(window_end_, &logs_[static_cast<size_t>(i)]);
          }
        }
      });
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }

  // All completions in merged (time, key) order — the order the sequential
  // core's recorder saw them. Valid after Run().
  std::vector<Completion> SortedCompletions() {
    std::vector<Completion> all;
    for (std::vector<Completion>& v : completions_) {
      all.insert(all.end(), std::make_move_iterator(v.begin()), std::make_move_iterator(v.end()));
      v.clear();
    }
    std::sort(all.begin(), all.end(), [](const Completion& a, const Completion& b) {
      return a.time < b.time || (a.time == b.time && a.key < b.key);
    });
    return all;
  }

  // Matches the sequential run's Simulator counters. Valid after Run().
  uint64_t events_processed() const { return events_processed_; }
  TimeNs end_time() const { return end_time_; }

 private:
  static constexpr TimeNs kNoEvent = std::numeric_limits<TimeNs>::max();

  void Coordinate() noexcept {
    const int n = net_->num_shards();
    // Completion-step phase timing for the barrier/stall profiler. All four
    // stamps are taken on this (single) coordinator thread; when the
    // profiler is dormant no clocks are read at all.
    obs::BarrierProfiler& prof = obs::BarrierProfiler::Instance();
    const bool profiling = prof.active();
    const uint64_t wall0 = profiling ? obs::ProfileClockNs() : 0;
    const Network::ChannelDrainStats drain_stats = net_->DrainCrossShardChannels();
    const uint64_t wall_drained = profiling ? obs::ProfileClockNs() : 0;
    if (expected_ > 0) {
      int64_t total = 0;
      for (const std::vector<Completion>& v : completions_) {
        total += static_cast<int64_t>(v.size());
      }
      if (total >= expected_) {
        FinalizeStopped();
        done_ = true;
        return;
      }
    }
    Simulator& global = net_->control_sim();
    TimeNs t = kNoEvent;
    for (int i = 0; i < n; ++i) {
      Simulator& s = net_->shard_sim(i);
      if (s.has_events() && s.next_event_time() < t) {
        t = s.next_event_time();
      }
    }
    if (global.has_events() && global.next_event_time() < t) {
      t = global.next_event_time();
    }
    if (t == kNoEvent) {
      FinalizeDrained();
      done_ = true;
      return;
    }
    if (t > horizon_) {
      global.Run(horizon_);
      FinalizeHorizon();
      done_ = true;
      return;
    }
    for (int i = 0; i < n; ++i) {
      net_->shard_sim(i).AdvanceTo(t);
    }
    const uint64_t wall_advanced = profiling ? obs::ProfileClockNs() : 0;
    // Control-plane events due at T (fault transitions, telemetry samples)
    // execute here, on the coordinator, against quiesced shard state; any
    // port events they spawn land in the owning shard's queue at >= T.
    global.Run(t);
    const uint64_t wall_control = profiling ? obs::ProfileClockNs() : 0;
    TimeNs window_end = horizon_ + 1;
    const TimeNs lookahead = net_->shard_plan().lookahead_ns;
    if (lookahead < window_end - t) {
      window_end = t + lookahead;
    }
    // Never execute shard events past the next control-plane event: it must
    // observe (and mutate — faults flip ports) state as of its own time.
    if (global.has_events() && global.next_event_time() < window_end) {
      window_end = global.next_event_time();
    }
    LCMP_CHECK(window_end > t);
    window_end_ = window_end;
    if (profiling) {
      // Closes the previous window (every worker's slot write for it
      // happened-before this barrier) and opens [t, window_end).
      prof.OnWindowOpen(t, window_end, wall0, wall_drained - wall0, wall_advanced - wall_drained,
                        wall_control - wall_advanced, drain_stats.items, drain_stats.high_water);
    }
    for (int i = 0; i < n; ++i) {
      prev_events_[static_cast<size_t>(i)] = net_->shard_sim(i).events_processed();
      logs_[static_cast<size_t>(i)].clear();
    }
  }

  // Stop path: the sequential core executes through the last completion
  // event (its Stop() takes effect after that event returns) and nothing
  // after it. K_stop = max completion stamp; earlier windows ended strictly
  // before K_stop's window start, so only final-window events need the
  // (time, key) <= K_stop filter.
  void FinalizeStopped() {
    TimeNs stop_time = -1;
    uint64_t stop_key = 0;
    for (const std::vector<Completion>& v : completions_) {
      for (const Completion& c : v) {
        if (c.time > stop_time || (c.time == stop_time && c.key > stop_key)) {
          stop_time = c.time;
          stop_key = c.key;
        }
      }
    }
    Simulator& global = net_->control_sim();
    global.Run(stop_time);
    uint64_t events = global.events_processed();
    const int n = net_->num_shards();
    for (int i = 0; i < n; ++i) {
      events += prev_events_[static_cast<size_t>(i)];
      for (const Simulator::EventKey& e : logs_[static_cast<size_t>(i)]) {
        if (e.time < stop_time || (e.time == stop_time && e.key <= stop_key)) {
          ++events;
        }
      }
    }
    events_processed_ = events;
    end_time_ = stop_time;
  }

  void FinalizeHorizon() {
    events_processed_ = TotalEvents();
    end_time_ = horizon_;
  }

  // Every queue drained before the horizon (only reachable without recurring
  // timers, i.e. not from the harness): match Run(-1) semantics.
  void FinalizeDrained() {
    events_processed_ = TotalEvents();
    TimeNs end = net_->control_sim().now();
    for (int i = 0; i < net_->num_shards(); ++i) {
      end = std::max(end, net_->shard_sim(i).now());
    }
    end_time_ = end;
  }

  uint64_t TotalEvents() const {
    uint64_t events = net_->control_sim().events_processed();
    for (int i = 0; i < net_->num_shards(); ++i) {
      events += net_->shard_sim(i).events_processed();
    }
    return events;
  }

  Network* net_;
  const TimeNs horizon_;
  const int64_t expected_;

  // Written only by the barrier completion step; read by workers after the
  // barrier — both edges are ordered by the barrier itself.
  TimeNs window_end_ = 0;
  bool done_ = false;

  std::vector<std::vector<Completion>> completions_;        // per shard
  std::vector<std::vector<Simulator::EventKey>> logs_;      // final-window events
  std::vector<uint64_t> prev_events_;                       // at window start

  uint64_t events_processed_ = 0;
  TimeNs end_time_ = 0;
};

}  // namespace lcmp
