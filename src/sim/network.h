// Network: instantiates simulation nodes/ports from a topo::Graph, installs
// static intra-DC forwarding, attaches one multipath-policy instance to each
// DCI switch, and starts the per-switch policy ticks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/int_pool.h"
#include "sim/node.h"
#include "sim/pfc.h"
#include "sim/shard_channel.h"
#include "sim/simulator.h"
#include "topo/candidate_paths.h"
#include "topo/graph.h"
#include "topo/shard_plan.h"

namespace lcmp {

struct NetworkConfig {
  // Egress buffer for links whose LinkSpec leaves buffer_bytes == 0.
  int64_t default_buffer_bytes = 32 * 1024 * 1024;
  // ECN marking thresholds expressed as time-at-line-rate; kmin 0 disables.
  TimeNs ecn_kmin_at_rate = Microseconds(40);
  TimeNs ecn_kmax_at_rate = Microseconds(160);
  double ecn_pmax = 0.2;
  // Stamp HPCC INT records on DATA packets.
  bool enable_int = false;
  // Hop-by-hop PFC (lossless operation); applied to every switch.
  PfcConfig pfc;
  uint64_t seed = 1;
  // Partition the event core into this many DC-group shards (conservative
  // PDES, DESIGN.md §12); clamped to [1, num_dcs]. 1 = sequential core.
  int shards = 1;
  // Candidate-path strategy (plain downhill vs FatPaths-style layers).
  CandidatePathOptions paths;
  // Lossy long-haul tier (DESIGN.md §15): applied to both directions of
  // every inter-DC link. loss_rate == 0 && fec_k == 0 leaves the ports
  // untouched (bit-identical to builds without the tier).
  double dci_loss_rate = 0.0;
  double dci_burst_len = 1.0;
  int fec_k = 0;
  int fec_m = 0;
};

// Fleet-wide lossy-DCI tier counters, summed over all inter-DC ports.
struct DciTierStats {
  int64_t lost_packets = 0;       // wire corruptions (DATA + control + repairs)
  int64_t repair_packets = 0;     // FEC repair symbols transmitted
  int64_t recovered_packets = 0;  // corrupted DATA reconstructed by FEC
  int64_t unrecovered_packets = 0;
  int64_t fec_groups = 0;
};

// Identifies one direction of a graph link, for utilization reporting.
struct DirectedLinkRef {
  int link_idx = -1;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  const Port* port = nullptr;
};

class Network {
 public:
  // `factory` is invoked once per DCI switch. It may be null when the graph
  // has no inter-DC links (single-DC tests).
  Network(const Graph& graph, const NetworkConfig& config, PolicyFactory factory);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // The first (or only) partition simulator. Single-shard code — unit tests,
  // benches, the sequential experiment path — keeps using this everywhere.
  Simulator& sim() { return *sims_[0]; }

  // --- sharded-core accessors (DESIGN.md §12) ---
  int num_shards() const { return plan_.num_shards; }
  const ShardPlan& shard_plan() const { return plan_; }
  Simulator& shard_sim(int shard) { return *sims_[static_cast<size_t>(shard)]; }
  int shard_of(NodeId id) const {
    const DcId dc = dc_of(id);
    return dc < 0 ? 0 : plan_.shard_of_dc[static_cast<size_t>(dc)];
  }
  // Home simulator of a node — where its events execute and stamp times.
  Simulator& sim_of(NodeId id) { return *sims_[static_cast<size_t>(shard_of(id))]; }
  // Control-plane simulator: telemetry loops, fault injection and the
  // invariant monitor run here. Identical to sim() on single-shard runs; a
  // dedicated global queue (executed at barriers) on sharded runs.
  Simulator& control_sim() { return global_sim_ != nullptr ? *global_sim_ : *sims_[0]; }
  // Moves pending cross-shard handoffs into their destination queues. Called
  // only by the barrier coordinator while every worker is parked. Returns
  // this drain's item count and the deepest single-channel pre-drain
  // occupancy (barrier/stall profiler input).
  struct ChannelDrainStats {
    uint64_t items = 0;
    uint64_t high_water = 0;
  };
  ChannelDrainStats DrainCrossShardChannels();

  const Graph& graph() const { return graph_; }
  const InterDcRoutes& routes() const { return routes_; }
  const NetworkConfig& config() const { return config_; }
  // Side-buffer pool for HPCC INT stacks (shared by all nodes/ports; the
  // transport acquires a slot per telemetry-carrying DATA packet).
  IntStackPool& int_pool() { return int_pool_; }

  Node& node(NodeId id) { return *nodes_[static_cast<size_t>(id)]; }
  HostNode& host(NodeId id);
  SwitchNode& switch_node(NodeId id);
  DcId dc_of(NodeId id) const { return dc_of_node_[static_cast<size_t>(id)]; }

  // Egress port on `from` for graph link `link_idx`; null if absent.
  Port* FindPort(NodeId from, int link_idx);

  // All directed inter-DC links (DCI<->DCI), for utilization reports.
  std::vector<DirectedLinkRef> InterDcDirectedLinks() const;

  // Sums the lossy-DCI tier counters over every inter-DC port (all zeros
  // when the tier is off). Call after the run has quiesced.
  DciTierStats CollectDciStats() const;

  // Human-readable "dc1.dci->dc2.dci" label for a directed link.
  std::string DirectedLinkName(const DirectedLinkRef& ref) const;

  // Begins periodic policy ticks on every DCI switch (idempotent).
  void StartPolicyTicks();

  // Marks both directions of graph link `link_idx` down/up (failure tests
  // and the fault-injection subsystem). No-op if already in that state.
  void SetLinkUp(int link_idx, bool up);

  // True while graph link `link_idx` is up (both directions share state).
  bool LinkIsUp(int link_idx) const;

  // Applies the degraded-link model to both directions of `link_idx`; pass
  // a default-constructed LinkDegrade to restore the link.
  void SetLinkDegraded(int link_idx, const LinkDegrade& degrade);

  // Fails/restores a whole switch by toggling every incident link — the
  // fault model for a chassis power loss (OpenSM-style sweep-on-fault treats
  // a dead switch as the set of its dead links).
  void SetSwitchUp(NodeId node, bool up);

  // --- memory accounting (lcmp.topo.bytes / lcmp.paths.bytes) ---
  // Bytes owned by the topology description (Graph: vertices, links, CSR).
  size_t TopoBytes() const { return topo_bytes_; }
  // Bytes of multipath state: shared interned arena + per-switch slot
  // arrays.
  size_t PathTableBytes() const { return path_table_bytes_; }
  // Bytes of compact intra-DC static forwarding across all switches.
  size_t StaticTableBytes() const { return static_table_bytes_; }
  int NumDciSwitches() const { return num_dcis_; }
  const PathTableArena& path_arena() const { return path_arena_; }

 private:
  void BuildNodes(const NetworkConfig& config, const PolicyFactory& factory);
  void BuildStaticForwarding();
  void BuildInterDcCandidates();
  ShardChannel* ChannelFor(int src_shard, int dst_shard);

  Graph graph_;
  NetworkConfig config_;
  ShardPlan plan_;
  std::vector<std::unique_ptr<Simulator>> sims_;  // one per shard
  std::unique_ptr<Simulator> global_sim_;         // control plane, shards > 1 only
  uint64_t setup_seq_ = 0;  // shared pre-run tie-break counter (all queues)
  // channels_[src * num_shards + dst], created only for linked shard pairs.
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  IntStackPool int_pool_;
  InterDcRoutes routes_;
  // Declared before nodes_: switches hold spans into the arena slab, so the
  // arena must outlive them (members destroy in reverse order).
  PathTableArena path_arena_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<DcId> dc_of_node_;
  // Dense index of each node within its own DC (static-forwarding rows are
  // per-DC, not per-graph). Shared read-only by every switch.
  std::vector<int32_t> local_index_of_node_;
  // port_of_link_[link_idx] = {port index at a, port index at b}.
  std::vector<std::pair<PortIndex, PortIndex>> port_of_link_;
  size_t topo_bytes_ = 0;
  size_t path_table_bytes_ = 0;
  size_t static_table_bytes_ = 0;
  int num_dcis_ = 0;
  bool ticks_started_ = false;
};

}  // namespace lcmp
