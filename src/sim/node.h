// Simulation nodes: hosts and switches, plus the multipath-policy interface
// implemented by routing/ (ECMP, WCMP, UCMP, RedTE) and core/ (LCMP).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/hashing.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/packet.h"
#include "sim/path_table.h"
#include "sim/pfc.h"
#include "sim/port.h"
#include "sim/simulator.h"
#include "topo/graph.h"

namespace lcmp {

class IntStackPool;

class Node {
 public:
  enum class Kind : uint8_t { kHost, kSwitch };

  Node(Simulator* sim, NodeId id, Kind kind, DcId dc, uint64_t rng_seed)
      : sim_(sim), id_(id), kind_(kind), dc_(dc), rng_(rng_seed) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual void Receive(Packet pkt, PortIndex in_port) = 0;

  // Adds an egress port; returns its index.
  PortIndex AddPort(const PortConfig& config, int graph_link_idx);

  Port& port(PortIndex idx) { return *ports_[static_cast<size_t>(idx)]; }
  const Port& port(PortIndex idx) const { return *ports_[static_cast<size_t>(idx)]; }
  int num_ports() const { return static_cast<int>(ports_.size()); }

  Simulator& sim() { return *sim_; }
  NodeId id() const { return id_; }
  Kind kind() const { return kind_; }
  DcId dc() const { return dc_; }
  Rng& rng() { return rng_; }

  // INT side-buffer pool (owned by the Network; null when telemetry is off
  // and in port-level unit tests that never stamp INT).
  void SetIntPool(IntStackPool* pool) { int_pool_ = pool; }
  IntStackPool* int_pool() const { return int_pool_; }

 protected:
  // Releases `pkt`'s INT side-buffer when this node terminates the packet.
  void ReleaseIntStack(Packet& pkt);

  Simulator* sim_;
  NodeId id_;
  Kind kind_;
  DcId dc_;
  Rng rng_;
  IntStackPool* int_pool_ = nullptr;
  std::vector<std::unique_ptr<Port>> ports_;
};

// Salt for the per-flow path-layer hash (FatPaths-style layered routing).
// Deliberately NOT combined with the switch id: every hop must agree on a
// flow's layer or mixed-layer forwarding could loop.
inline constexpr uint64_t kPathLayerSalt = 0xfa7b0a7b5ULL;

// One candidate egress at a DCI switch toward a destination DC, annotated
// with the control-plane path attributes LCMP's C_path consumes.
struct PathCandidate {
  PortIndex port = kInvalidPort;
  NodeId next_hop = kInvalidNode;
  TimeNs path_delay_ns = 0;    // residual one-way propagation delay
  int64_t bottleneck_bps = 0;  // residual bottleneck capacity
  int graph_link_idx = -1;     // first-hop link (for stats/debug)
};

class SwitchNode;

// Per-switch multipath decision engine. One instance is created per DCI
// switch, so implementations may keep per-switch state (flow caches, split
// ratios, congestion registers).
class MultipathPolicy {
 public:
  virtual ~MultipathPolicy() = default;

  // Chooses the egress port for `pkt` among `candidates` (all inter-DC ports
  // toward pkt's destination DC). Called for *every* inter-DC packet; sticky
  // policies consult their own flow state. Must return a valid candidate
  // port or kInvalidPort to drop.
  virtual PortIndex SelectPort(SwitchNode& sw, const Packet& pkt,
                               std::span<const PathCandidate> candidates) = 0;

  // Interval for OnTick; 0 disables the tick.
  virtual TimeNs tick_interval() const { return 0; }
  // Periodic hook (congestion sampling, control loops, garbage collection).
  virtual void OnTick(SwitchNode& /*sw*/) {}

  virtual const char* name() const = 0;
};

using PolicyFactory = std::function<std::unique_ptr<MultipathPolicy>(SwitchNode&)>;

class SwitchNode : public Node {
 public:
  SwitchNode(Simulator* sim, NodeId id, DcId dc, bool is_dci, uint64_t rng_seed)
      : Node(sim, id, Kind::kSwitch, dc, rng_seed), is_dci_(is_dci) {}

  void Receive(Packet pkt, PortIndex in_port) override;

  bool is_dci() const { return is_dci_; }

  // --- wiring performed by Network ---
  void SetDcOfNode(const std::vector<DcId>* dc_of_node) { dc_of_node_ = dc_of_node; }
  // Compact intra-DC forwarding table: `local_index` (Network-owned) maps a
  // global node id to its dense index within this switch's DC; `offsets`
  // (num-local-nodes + 1 entries) and `ports` form a CSR over the equal-cost
  // egress port sets.
  void SetStaticTable(const std::vector<int32_t>* local_index, std::vector<int32_t> offsets,
                      std::vector<PortIndex> ports) {
    static_local_index_ = local_index;
    static_offsets_ = std::move(offsets);
    static_ports_ = std::move(ports);
  }
  void SetLocalDci(NodeId dci) { local_dci_ = dci; }
  // Installs the (layer, dst DC) candidate table backed by the Network's
  // shared PathTableArena.
  void SetPathTable(SwitchPathTable table) { path_table_ = std::move(table); }
  void SetPolicy(std::unique_ptr<MultipathPolicy> policy) { policy_ = std::move(policy); }

  MultipathPolicy* policy() { return policy_.get(); }

  // Enables hop-by-hop PFC on this switch (must be called after all ports
  // exist; installs dequeue hooks on every egress).
  void EnablePfc(const PfcConfig& config);
  PfcController* pfc() { return pfc_.get(); }

  // Destination datacenter of a packet (policies group state per dst DC).
  DcId DstDcOf(const Packet& pkt) const {
    return (*dc_of_node_)[static_cast<size_t>(pkt.dst)];
  }
  // Total number of DCs known to this switch's candidate table.
  int NumDcs() const { return path_table_.num_dcs(); }
  // Path layers in the candidate table (1 = plain downhill routing).
  int num_path_layers() const { return path_table_.num_layers(); }
  // Layer the most recent ResolveEgress pinned the current packet's flow to;
  // layer-aware policies (LCMP's C_path tables) key their state on it.
  int current_path_layer() const { return current_path_layer_; }

  std::span<const PathCandidate> CandidatesTo(DcId dst_dc, int layer = 0) const {
    return path_table_.Get(dst_dc, layer);
  }

  int64_t forwarded_packets() const { return forwarded_packets_; }
  int64_t dropped_no_route() const { return dropped_no_route_; }
  // Packets dropped because they exceeded kMaxForwardHops switch traversals.
  // Nonzero means a routing loop — the fault-injection invariant monitor
  // treats any increment as a hard violation.
  int64_t ttl_exhausted_drops() const { return ttl_exhausted_drops_; }

 private:
  PortIndex ResolveEgress(const Packet& pkt);
  PortIndex PickStatic(const Packet& pkt, NodeId toward);

  bool is_dci_;
  const std::vector<DcId>* dc_of_node_ = nullptr;
  // Intra-DC forwarding in CSR form over the DC-local node index: the
  // equal-cost egress ports toward local node `lo` are
  // static_ports_[static_offsets_[lo] .. static_offsets_[lo + 1]).
  const std::vector<int32_t>* static_local_index_ = nullptr;
  std::vector<int32_t> static_offsets_;
  std::vector<PortIndex> static_ports_;
  NodeId local_dci_ = kInvalidNode;
  // (layer, dst DC) -> interned DCI-level multipath candidates.
  SwitchPathTable path_table_;
  int current_path_layer_ = 0;
  std::unique_ptr<MultipathPolicy> policy_;
  std::unique_ptr<PfcController> pfc_;

  int64_t forwarded_packets_ = 0;
  int64_t dropped_no_route_ = 0;
  int64_t ttl_exhausted_drops_ = 0;
};

class HostNode : public Node {
 public:
  using PacketSink = std::function<void(Packet pkt)>;

  HostNode(Simulator* sim, NodeId id, DcId dc, uint64_t rng_seed)
      : Node(sim, id, Kind::kHost, dc, rng_seed) {}

  void Receive(Packet pkt, PortIndex in_port) override;

  // Registers the transport-layer receive handler.
  void SetSink(PacketSink sink) { sink_ = std::move(sink); }

  // Transmits a packet out of the host NIC (port 0).
  void Send(Packet pkt);

 private:
  PacketSink sink_;
};

}  // namespace lcmp
