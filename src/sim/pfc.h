// Priority Flow Control (IEEE 802.1Qbb) — the lossless-Ethernet substrate
// RoCE deployments rely on (paper Sec. 2.1 / 6.2: switch buffers are sized
// for PFC headroom on long-haul links).
//
// Model: per ingress port the switch tracks how many bytes from that ingress
// are currently buffered in its egress queues. Crossing XOFF sends a PAUSE
// upstream (taking one propagation delay to arrive); falling below XON sends
// RESUME. A paused upstream egress finishes its in-flight packet and stops.
// Headroom = XOFF-to-buffer-top must absorb one RTT of in-flight data, which
// is why long-haul PFC needs multi-GB buffers (motivating the paper's 6 GB).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace lcmp {

class SwitchNode;

struct PfcConfig {
  bool enabled = false;
  // Thresholds on per-ingress buffered bytes.
  int64_t xoff_bytes = 512 * 1024;
  int64_t xon_bytes = 256 * 1024;
};

// Per-switch PFC engine. The owning SwitchNode reports every buffered /
// freed packet; the controller pauses and resumes upstream transmitters.
class PfcController {
 public:
  PfcController(Simulator* sim, SwitchNode* node, const PfcConfig& config);

  PfcController(const PfcController&) = delete;
  PfcController& operator=(const PfcController&) = delete;

  // `bytes` from `ingress` were accepted into some egress queue. Plain byte
  // accounting — the controller never needs the packet itself, and passing
  // the bytes keeps the hot path free of scratch Packet copies.
  void OnPacketBuffered(int64_t bytes, PortIndex ingress);

  // A previously buffered packet's bytes left the switch (transmitted or
  // flushed). `ingress` is the pkt.ingress_port tag Receive() stamps.
  void OnPacketFreed(int64_t bytes, PortIndex ingress);

  int64_t ingress_buffered_bytes(PortIndex ingress) const {
    return ingress_bytes_[static_cast<size_t>(ingress)];
  }
  bool ingress_paused(PortIndex ingress) const {
    return pause_asserted_[static_cast<size_t>(ingress)];
  }

  // --- statistics ---
  int64_t pause_frames_sent() const { return pause_frames_; }
  int64_t resume_frames_sent() const { return resume_frames_; }

 private:
  // Sends PAUSE/RESUME to the transmitter feeding `ingress`; it takes one
  // link propagation delay to act, as a real PFC frame would.
  void SignalUpstream(PortIndex ingress, bool pause);

  Simulator* sim_;
  SwitchNode* node_;
  PfcConfig config_;
  std::vector<int64_t> ingress_bytes_;
  std::vector<bool> pause_asserted_;
  int64_t pause_frames_ = 0;
  int64_t resume_frames_ = 0;
  // Fleet-wide metric handles, resolved once at construction.
  obs::Counter* m_pause_frames_;
  obs::Counter* m_resume_frames_;
};

}  // namespace lcmp
