// Single-threaded discrete-event simulation driver.
#pragma once

#include <cstdint>

#include "common/logging.h"
#include "sim/event_queue.h"

namespace lcmp {

class Simulator {
 public:
  TimeNs now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  void Schedule(TimeNs delay, EventFn fn) {
    LCMP_CHECK(delay >= 0);
    queue_.Push(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `t` (t >= now()).
  void ScheduleAt(TimeNs t, EventFn fn) {
    LCMP_CHECK(t >= now_);
    queue_.Push(t, std::move(fn));
  }

  // Runs until the queue drains, Stop() is called, or `until` is reached
  // (until < 0 means "no horizon"). Returns the final simulation time.
  TimeNs Run(TimeNs until = -1);

  // Stops the run loop after the current event returns.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  uint64_t events_processed() const { return events_processed_; }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  bool stopped_ = false;
  uint64_t events_processed_ = 0;
};

}  // namespace lcmp
