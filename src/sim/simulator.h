// Single-threaded discrete-event simulation driver.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/hashing.h"
#include "common/logging.h"
#include "sim/event_queue.h"

namespace lcmp {

class Simulator {
 public:
  // Handle for a recurring timer created by ScheduleEvery.
  using TimerId = uint32_t;
  static constexpr TimerId kInvalidTimer = UINT32_MAX;

  TimeNs now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  void Schedule(TimeNs delay, EventFn fn) {
    LCMP_CHECK(delay >= 0);
    const TimeNs t = now_ + delay;
    queue_.PushKeyed(t, MintKeyFor(t), std::move(fn));
  }

  // Schedules `fn` at absolute time `t` (t >= now()).
  void ScheduleAt(TimeNs t, EventFn fn) {
    LCMP_CHECK(t >= now_);
    queue_.PushKeyed(t, MintKeyFor(t), std::move(fn));
  }

  // Self-rearming recurring timer: `fn` first fires `interval` from now and
  // then every `interval` after the previous firing. The callable is stored
  // once; each firing only pushes a tiny (16 B, always-inline) re-arm thunk,
  // so periodic control loops (policy ticks, RedTE's 100 ms rebalance,
  // telemetry sampling, RTO scans) never rebuild their closures.
  TimerId ScheduleEvery(TimeNs interval, EventFn fn);

  // Changes the period applied at the timer's *next* re-arm (the firing
  // already in the queue keeps its scheduled time). Used by adaptive timers
  // such as the transport's SRTT-driven RTO.
  void SetTimerInterval(TimerId id, TimeNs interval);

  // Stops the timer: the pending firing is consumed without invoking the
  // callback and the slot is recycled. Safe to call from the timer's own
  // callback.
  void CancelTimer(TimerId id);

  // Runs until the queue drains, Stop() is called, or `until` is reached
  // (until < 0 means "no horizon"). Returns the final simulation time.
  TimeNs Run(TimeNs until = -1);

  // Stops the run loop after the current event returns.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  uint64_t events_processed() const { return events_processed_; }

  // --- sharded-core interface (conservative PDES, DESIGN.md §12) ---
  // A shard engine drives each partition simulator through bounded windows
  // instead of Run(), and uses the (time, key) pair of every executed event
  // as the global tie-break order shared with the sequential core.

  struct EventKey {
    TimeNs time = 0;
    uint64_t key = 0;
  };

  // Executes every event with time < end_exclusive, appending each executed
  // event's (time, key) to `log` when non-null. Leaves now() at the last
  // executed event (the coordinator advances it between windows). Returns
  // the number of events executed.
  uint64_t RunWindow(TimeNs end_exclusive, std::vector<EventKey>* log);

  // Advances now() to `t` between windows; no pending event may precede `t`.
  void AdvanceTo(TimeNs t) {
    LCMP_CHECK(t >= now_ && (queue_.empty() || queue_.PeekTime() >= t));
    now_ = t;
  }

  // Sequence key of the event currently executing (valid inside callbacks).
  uint64_t current_event_key() const { return current_key_; }

  bool has_events() const { return !queue_.empty(); }
  TimeNs next_event_time() const { return queue_.PeekTime(); }

  // Cross-shard channel drain: insert with a producer-minted key.
  void PushKeyed(TimeNs t, uint64_t key, EventFn fn) {
    queue_.PushKeyed(t, key, std::move(fn));
  }

  // Mints the tie-break key for an event scheduled at `t`. Inside an
  // executing event, children get a lineage key — same-timestamp generation
  // in the high 16 bits (one more than the parent's, so a same-time child
  // always sorts after its parent) and a hash of (parent key, child index)
  // below. The key depends only on the pushing event's own key, never on
  // which queue or thread pushes, so the sequential core and every shard
  // count assign identical keys — the foundation of bit-identical sharded
  // runs (DESIGN.md §12). Outside event execution (single-threaded setup),
  // keys come from a counter, shared across all partition queues on sharded
  // runs so cross-queue setup order matches sequential insertion order.
  // Public so ports can mint keys for cross-shard channel handoffs.
  uint64_t MintKeyFor(TimeNs t) {
    if (!in_event_) {
      uint64_t* ctr = shared_setup_seq_ != nullptr ? shared_setup_seq_ : &setup_seq_;
      LCMP_CHECK(*ctr < (1ULL << EventQueue::kGenShift));
      return (*ctr)++;
    }
    uint64_t gen = 0;
    if (t == now_) {
      gen = (current_key_ >> EventQueue::kGenShift) + 1;
      LCMP_CHECK(gen <= 0xffff);  // zero-delay self-scheduling chain run amok
    }
    const uint64_t h = Mix64(current_key_ + 0x9e3779b97f4a7c15ULL * ++child_idx_) >> 16;
    return (gen << EventQueue::kGenShift) | h;
  }

  // Draw setup-phase keys from `*shared` instead of the private counter
  // (the owning Network shares one counter across all partition queues).
  void UseSharedSeq(uint64_t* shared) { shared_setup_seq_ = shared; }

  // Observability identity (set once by the owning Network). While Run or
  // RunWindow is on the stack the simulator installs a thread-local
  // obs::ShardContext with this lane/shard plus pointers at its clock and
  // current event key, so LCMP_TRACE records and gauge writes made from its
  // events are stamped with the emitting shard and (time, key), and log
  // lines carry `s=<shard>`. Defaults: lane 0, shard -1 (sequential runs and
  // the control-plane queue need no setup).
  void SetObsIdentity(int lane, int shard) {
    obs_lane_ = lane;
    obs_shard_ = shard;
  }

 private:
  struct RepeatingTimer {
    TimeNs interval = 0;
    EventFn fn;
    bool cancelled = false;
  };

  void FireTimer(TimerId id);

  EventQueue queue_;
  TimeNs now_ = 0;
  bool stopped_ = false;
  bool in_event_ = false;  // MintKeyFor: lineage keys vs setup counter
  uint64_t events_processed_ = 0;
  uint64_t current_key_ = 0;
  uint64_t child_idx_ = 0;  // pushes by the currently-executing event
  uint64_t setup_seq_ = 0;
  uint64_t* shared_setup_seq_ = nullptr;
  int obs_lane_ = 0;    // obs::ShardContext lane installed while running
  int obs_shard_ = -1;  // shard id for trace stamps and log prefixes
  std::vector<std::unique_ptr<RepeatingTimer>> timers_;
  std::vector<TimerId> free_timer_slots_;
};

}  // namespace lcmp
