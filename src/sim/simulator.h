// Single-threaded discrete-event simulation driver.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "sim/event_queue.h"

namespace lcmp {

class Simulator {
 public:
  // Handle for a recurring timer created by ScheduleEvery.
  using TimerId = uint32_t;
  static constexpr TimerId kInvalidTimer = UINT32_MAX;

  TimeNs now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  void Schedule(TimeNs delay, EventFn fn) {
    LCMP_CHECK(delay >= 0);
    queue_.Push(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `t` (t >= now()).
  void ScheduleAt(TimeNs t, EventFn fn) {
    LCMP_CHECK(t >= now_);
    queue_.Push(t, std::move(fn));
  }

  // Self-rearming recurring timer: `fn` first fires `interval` from now and
  // then every `interval` after the previous firing. The callable is stored
  // once; each firing only pushes a tiny (16 B, always-inline) re-arm thunk,
  // so periodic control loops (policy ticks, RedTE's 100 ms rebalance,
  // telemetry sampling, RTO scans) never rebuild their closures.
  TimerId ScheduleEvery(TimeNs interval, EventFn fn);

  // Changes the period applied at the timer's *next* re-arm (the firing
  // already in the queue keeps its scheduled time). Used by adaptive timers
  // such as the transport's SRTT-driven RTO.
  void SetTimerInterval(TimerId id, TimeNs interval);

  // Stops the timer: the pending firing is consumed without invoking the
  // callback and the slot is recycled. Safe to call from the timer's own
  // callback.
  void CancelTimer(TimerId id);

  // Runs until the queue drains, Stop() is called, or `until` is reached
  // (until < 0 means "no horizon"). Returns the final simulation time.
  TimeNs Run(TimeNs until = -1);

  // Stops the run loop after the current event returns.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct RepeatingTimer {
    TimeNs interval = 0;
    EventFn fn;
    bool cancelled = false;
  };

  void FireTimer(TimerId id);

  EventQueue queue_;
  TimeNs now_ = 0;
  bool stopped_ = false;
  uint64_t events_processed_ = 0;
  std::vector<std::unique_ptr<RepeatingTimer>> timers_;
  std::vector<TimerId> free_timer_slots_;
};

}  // namespace lcmp
