#include "sim/path_table.h"

#include "common/hashing.h"
#include "common/logging.h"
#include "sim/node.h"

namespace lcmp {
namespace {

uint64_t HashCandidates(std::span<const PathCandidate> list) {
  uint64_t h = 0xa7e9a7b1e5ULL ^ list.size();
  for (const PathCandidate& c : list) {
    h = Mix64(h ^ static_cast<uint64_t>(static_cast<int64_t>(c.port)));
    h = Mix64(h ^ static_cast<uint64_t>(static_cast<int64_t>(c.next_hop)));
    h = Mix64(h ^ static_cast<uint64_t>(c.path_delay_ns));
    h = Mix64(h ^ static_cast<uint64_t>(c.bottleneck_bps));
    h = Mix64(h ^ static_cast<uint64_t>(static_cast<int64_t>(c.graph_link_idx)));
  }
  return h;
}

bool SameCandidates(std::span<const PathCandidate> a, std::span<const PathCandidate> b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].port != b[i].port || a[i].next_hop != b[i].next_hop ||
        a[i].path_delay_ns != b[i].path_delay_ns || a[i].bottleneck_bps != b[i].bottleneck_bps ||
        a[i].graph_link_idx != b[i].graph_link_idx) {
      return false;
    }
  }
  return true;
}

}  // namespace

PathSlotRef PathTableArena::Intern(std::span<const PathCandidate> list) {
  ++total_lists_;
  if (list.empty()) {
    return PathSlotRef{0, 0};
  }
  const uint64_t h = HashCandidates(list);
  std::vector<PathSlotRef>& bucket = index_[h];
  for (const PathSlotRef& ref : bucket) {
    if (SameCandidates(Resolve(ref), list)) {
      return ref;
    }
  }
  PathSlotRef ref;
  ref.offset = static_cast<uint32_t>(slab_.size());
  ref.count = static_cast<uint32_t>(list.size());
  slab_.insert(slab_.end(), list.begin(), list.end());
  bucket.push_back(ref);
  ++unique_lists_;
  return ref;
}

std::span<const PathCandidate> PathTableArena::Resolve(PathSlotRef ref) const {
  if (ref.count == 0) {
    return {};
  }
  return {slab_.data() + ref.offset, ref.count};
}

size_t PathTableArena::MemoryBytes() const {
  size_t bytes = slab_.capacity() * sizeof(PathCandidate);
  bytes += index_.size() * (sizeof(uint64_t) + sizeof(std::vector<PathSlotRef>) + 16);
  for (const auto& [h, bucket] : index_) {
    bytes += bucket.capacity() * sizeof(PathSlotRef);
  }
  return bytes;
}

void SwitchPathTable::Init(const PathTableArena* arena, int num_dcs, int num_layers) {
  LCMP_CHECK(num_dcs >= 0 && num_layers >= 1);
  arena_ = arena;
  num_dcs_ = num_dcs;
  num_layers_ = num_layers;
  slots_.assign(static_cast<size_t>(num_dcs) * static_cast<size_t>(num_layers), PathSlotRef{});
}

void SwitchPathTable::Set(DcId dst, int layer, PathSlotRef ref) {
  LCMP_CHECK(dst >= 0 && dst < num_dcs_);
  LCMP_CHECK(layer >= 0 && layer < num_layers_);
  slots_[static_cast<size_t>(layer) * static_cast<size_t>(num_dcs_) + static_cast<size_t>(dst)] =
      ref;
}

std::span<const PathCandidate> SwitchPathTable::Get(DcId dst, int layer) const {
  if (arena_ == nullptr || dst < 0 || dst >= num_dcs_ || layer < 0 || layer >= num_layers_) {
    return {};
  }
  return arena_->Resolve(
      slots_[static_cast<size_t>(layer) * static_cast<size_t>(num_dcs_) +
             static_cast<size_t>(dst)]);
}

}  // namespace lcmp
