#include "sim/port.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"
#include "sim/int_pool.h"
#include "sim/node.h"
#include "sim/shard_channel.h"

namespace lcmp {

Port::Port(Simulator* sim, Rng* rng, Node* owner, PortIndex index, const PortConfig& config,
           int graph_link_idx)
    : sim_(sim),
      rng_(rng),
      owner_(owner),
      index_(index),
      config_(config),
      graph_link_idx_(graph_link_idx),
      effective_rate_bps_(config.rate_bps) {
  LCMP_CHECK(config_.rate_bps > 0);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  m_tx_packets_ = reg.GetCounter("sim.port.tx_packets");
  m_tx_bytes_ = reg.GetCounter("sim.port.tx_bytes");
  m_drops_ = reg.GetCounter("sim.port.drops");
  m_ecn_marks_ = reg.GetCounter("sim.port.ecn_marks");
}

void Port::ConnectTo(Node* peer, PortIndex peer_in_port) {
  peer_ = peer;
  peer_in_port_ = peer_in_port;
}

bool Port::ShouldMarkEcn() {
  if (config_.ecn_kmin <= 0) {
    return false;
  }
  if (queue_bytes_ <= config_.ecn_kmin) {
    return false;
  }
  if (queue_bytes_ >= config_.ecn_kmax) {
    return true;
  }
  const double frac = static_cast<double>(queue_bytes_ - config_.ecn_kmin) /
                      static_cast<double>(config_.ecn_kmax - config_.ecn_kmin);
  return rng_->NextDouble() < frac * config_.ecn_pmax;
}

void Port::ReleaseIntStack(Packet& pkt) {
  if (pkt.int_stack != kInvalidIntHandle && owner_->int_pool() != nullptr) {
    owner_->int_pool()->ReleaseFrom(pkt);
  }
}

bool Port::Enqueue(Packet pkt) {
  if (!up_) {
    ++dropped_packets_;
    m_drops_->Inc();
    LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
    ReleaseIntStack(pkt);
    return false;
  }
  // Degraded-link random loss (fault injection): the packet is corrupted on
  // the wire, modeled as a drop before it ever occupies buffer space. The
  // RNG is only consulted while a degradation is active, so fault-free runs
  // consume the identical random stream as before.
  if (degrade_.loss_rate > 0 && rng_->NextDouble() < degrade_.loss_rate) {
    ++dropped_packets_;
    m_drops_->Inc();
    LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
    ReleaseIntStack(pkt);
    return false;
  }
  if (queue_bytes_ + pkt.size_bytes > config_.buffer_bytes) {
    ++dropped_packets_;
    m_drops_->Inc();
    LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
    ReleaseIntStack(pkt);
    return false;
  }
  // Mark based on occupancy *before* this packet joins, as switch ASICs do.
  if (pkt.type == PacketType::kData && ShouldMarkEcn()) {
    pkt.ecn_ce = true;
    pkt.ecn_mask |= CcSegmentOf(pkt);  // segmented CC: where the mark happened
    ++ecn_marked_packets_;
    m_ecn_marks_->Inc();
    LCMP_TRACE(obs::TraceEv::kEcnMark, sim_->now(), pkt.flow_id, owner_->id(), index_,
               queue_bytes_);
  }
  queue_bytes_ += pkt.size_bytes;
  accepted_bytes_ += pkt.size_bytes;
  max_queue_bytes_ = std::max(max_queue_bytes_, queue_bytes_);
  LCMP_TRACE(obs::TraceEv::kEnqueue, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
  queue_.push_back(std::move(pkt));
  StartTransmissionIfIdle();
  return true;
}

void Port::StartTransmissionIfIdle() {
  if (transmitting_ || queue_.empty() || !up_ || paused_) {
    return;
  }
  transmitting_ = true;
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  queue_bytes_ -= pkt.size_bytes;
  LCMP_TRACE(obs::TraceEv::kDequeue, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
  if (dequeue_hook_) {
    dequeue_hook_(pkt);
  }

  // Stamp HPCC INT at egress: queue depth behind this packet, cumulative
  // bytes including this packet, link rate, and the departure timestamp.
  if (pkt.int_stack != kInvalidIntHandle && pkt.type == PacketType::kData) {
    IntStackPool* pool = owner_->int_pool();
    LCMP_CHECK(pool != nullptr);
    if (IntRecord* rec = pool->AppendHop(pkt.int_stack); rec != nullptr) {
      rec->qlen_bytes = queue_bytes_;
      rec->rate_bps = effective_rate_bps_;
      rec->tx_bytes = tx_bytes_ + pkt.size_bytes;
      rec->ts = sim_->now();
    }
  }

  const TimeNs tx_time = SerializationDelay(pkt.size_bytes, effective_rate_bps_);
  busy_ns_ += tx_time;
  tx_bytes_ += pkt.size_bytes;
  ++tx_packets_;
  m_tx_packets_->Inc();
  m_tx_bytes_->Add(pkt.size_bytes);
  auto tx_done = [this, pkt = std::move(pkt)]() mutable { OnTransmissionDone(std::move(pkt)); };
  static_assert(InlineEvent::kFitsInline<decltype(tx_done)>,
                "port transmit-done closure must stay allocation-free");
  sim_->Schedule(tx_time, std::move(tx_done));
}

void Port::OnTransmissionDone(Packet pkt) {
  transmitting_ = false;
  // Packet is now on the wire; it arrives after the propagation delay even if
  // the port goes down in the meantime (light already in the fiber).
  LCMP_CHECK(peer_ != nullptr);
  Node* peer = peer_;
  const PortIndex in_port = peer_in_port_;
  auto deliver = [peer, in_port, pkt = std::move(pkt)]() mutable {
    peer->Receive(std::move(pkt), in_port);
  };
  static_assert(InlineEvent::kFitsInline<decltype(deliver)>,
                "link delivery closure must stay allocation-free");
  const TimeNs prop_delay = config_.prop_delay_ns + degrade_.extra_delay_ns;
  if (xlink_ != nullptr) {
    // Peer is homed on another shard: hand off through the link's channel.
    // prop_delay is at least the plan's lookahead, so the delivery lands
    // beyond the destination shard's current window. The key is minted here,
    // by the producing event, so it matches the sequential core's.
    const TimeNs at = sim_->now() + prop_delay;
    xlink_->Push(at, sim_->MintKeyFor(at), std::move(deliver));
  } else {
    sim_->Schedule(prop_delay, std::move(deliver));
  }
  StartTransmissionIfIdle();
}

void Port::SetPaused(bool paused) {
  if (paused_ == paused) {
    return;
  }
  paused_ = paused;
  if (paused_) {
    pause_started_ = sim_->now();
  } else {
    paused_ns_ += sim_->now() - pause_started_;
    StartTransmissionIfIdle();
  }
}

void Port::SetUp(bool up) {
  if (up_ == up) {
    return;
  }
  up_ = up;
  if (!up_) {
    dropped_packets_ += static_cast<int64_t>(queue_.size());
    m_drops_->Add(static_cast<int64_t>(queue_.size()));
    for (Packet& pkt : queue_) {
      LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_,
                 queue_bytes_);
      flushed_bytes_ += pkt.size_bytes;
      if (dequeue_hook_) {
        dequeue_hook_(pkt);
      }
      ReleaseIntStack(pkt);
    }
    queue_.clear();
    queue_bytes_ = 0;
  } else {
    StartTransmissionIfIdle();
  }
}

void Port::SetDegrade(const LinkDegrade& degrade) {
  LCMP_CHECK(degrade.rate_factor > 0 && degrade.rate_factor <= 1.0);
  LCMP_CHECK(degrade.extra_delay_ns >= 0);
  LCMP_CHECK(degrade.loss_rate >= 0 && degrade.loss_rate < 1.0);
  degrade_ = degrade;
  effective_rate_bps_ =
      std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(config_.rate_bps) *
                                                degrade.rate_factor));
}

}  // namespace lcmp
