#include "sim/port.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"
#include "sim/int_pool.h"
#include "sim/node.h"
#include "sim/shard_channel.h"

namespace lcmp {

Port::Port(Simulator* sim, Rng* rng, Node* owner, PortIndex index, const PortConfig& config,
           int graph_link_idx)
    : sim_(sim),
      rng_(rng),
      owner_(owner),
      index_(index),
      config_(config),
      graph_link_idx_(graph_link_idx),
      effective_rate_bps_(config.rate_bps) {
  LCMP_CHECK(config_.rate_bps > 0);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  m_tx_packets_ = reg.GetCounter("sim.port.tx_packets");
  m_tx_bytes_ = reg.GetCounter("sim.port.tx_bytes");
  m_drops_ = reg.GetCounter("sim.port.drops");
  m_ecn_marks_ = reg.GetCounter("sim.port.ecn_marks");
}

void Port::ConnectTo(Node* peer, PortIndex peer_in_port) {
  peer_ = peer;
  peer_in_port_ = peer_in_port;
}

bool Port::ShouldMarkEcn() {
  if (config_.ecn_kmin <= 0) {
    return false;
  }
  if (queue_bytes_ <= config_.ecn_kmin) {
    return false;
  }
  if (queue_bytes_ >= config_.ecn_kmax) {
    return true;
  }
  const double frac = static_cast<double>(queue_bytes_ - config_.ecn_kmin) /
                      static_cast<double>(config_.ecn_kmax - config_.ecn_kmin);
  return rng_->NextDouble() < frac * config_.ecn_pmax;
}

namespace {
// How long a partially filled FEC group may hold a corrupted packet before
// the encoder pads it out and closes it anyway (traffic-tail flush; on a
// loaded DCI groups close by count long before this fires).
constexpr TimeNs kFecGroupFlushNs = Microseconds(500);
}  // namespace

void Port::ReleaseIntStack(Packet& pkt) {
  if (pkt.int_stack != kInvalidIntHandle && owner_->int_pool() != nullptr) {
    owner_->int_pool()->ReleaseFrom(pkt);
  }
}

void Port::EnableDciLink(const DciLinkConfig& config) {
  LCMP_CHECK(config.loss_rate >= 0.0 && config.loss_rate < 1.0);
  LCMP_CHECK(config.burst_len >= 1.0);
  LCMP_CHECK(config.fec_k >= 0 && config.fec_m >= 0);
  LCMP_CHECK(config.fec_k == 0 || config.fec_m > 0);
  if (!config.enabled()) {
    return;
  }
  dci_ = std::make_unique<DciState>(config.seed);
  if (config.loss_rate > 0.0) {
    // Gilbert–Elliott: every packet in the bad state is corrupted. Mean
    // burst length = 1 / p_exit; solving the stationary bad-state fraction
    // for the requested long-run loss rate gives p_enter.
    dci_->p_exit = 1.0 / config.burst_len;
    dci_->p_enter = dci_->p_exit * config.loss_rate / (1.0 - config.loss_rate);
  }
  dci_->fec_k = config.fec_k;
  dci_->fec_m = config.fec_m;
  if (config.fec_k > 0) {
    dci_->held.reserve(static_cast<size_t>(config.fec_k));
  }
}

bool Port::RollDciLoss() {
  DciState& d = *dci_;
  if (!d.bad) {
    if (d.rng.NextDouble() >= d.p_enter) {
      return false;
    }
    d.bad = true;  // the burst's first corrupted packet is this one
  }
  if (d.rng.NextDouble() < d.p_exit) {
    d.bad = false;
  }
  return true;
}

void Port::DropCorrupted(Packet& pkt) {
  ++dropped_packets_;
  m_drops_->Inc();
  LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
  ReleaseIntStack(pkt);
}

void Port::CloseFecGroup() {
  DciState& d = *dci_;
  ++d.groups;
  ++d.group_epoch;  // invalidates the pending flush timer
  // Repair symbols ride the same wire: they consume serialization time and
  // buffer space, and the loss process corrupts them like anything else.
  int surviving_repairs = 0;
  const uint32_t repair_size = d.group_max_size > 0 ? d.group_max_size : kControlPacketBytes;
  for (int i = 0; i < d.fec_m; ++i) {
    bool corrupted = degrade_.loss_rate > 0 && rng_->NextDouble() < degrade_.loss_rate;
    if (d.p_enter > 0 && RollDciLoss()) {
      corrupted = true;
    }
    if (corrupted) {
      ++d.lost_packets;
      continue;
    }
    Packet repair;
    repair.type = PacketType::kFecRepair;
    repair.size_bytes = repair_size;
    repair.src = owner_->id();
    repair.ingress_port = kInvalidPort;
    if (EnqueueCommitted(std::move(repair))) {
      ++surviving_repairs;
      ++d.repair_packets;
    }
  }
  if (!d.held.empty()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
    // Any k of the group's k+m symbols reconstruct it: the corrupted DATA
    // packets are recoverable iff the surviving repairs cover them.
    if (static_cast<int>(d.held.size()) <= surviving_repairs) {
      static obs::Counter* m_recovered = reg.GetCounter("lcmp.fec.recovered_packets");
      for (Packet& pkt : d.held) {
        ++d.recovered;
        m_recovered->Inc();
        // Reconstructed at the decoder once the last repair symbol lands:
        // the packet re-enters the queue behind the repairs and reaches the
        // peer through the normal delivery path (late == reordered, which
        // is exactly what the IRN tier absorbs).
        EnqueueCommitted(std::move(pkt));
      }
    } else {
      static obs::Counter* m_unrecovered = reg.GetCounter("lcmp.fec.unrecovered_packets");
      for (Packet& pkt : d.held) {
        ++d.unrecovered;
        m_unrecovered->Inc();
        DropCorrupted(pkt);
      }
    }
    d.held.clear();
  }
  d.group_data = 0;
  d.group_max_size = 0;
}

bool Port::DciAdmit(Packet& pkt) {
  DciState& d = *dci_;
  // Both corruption processes roll independently of each other and of the
  // packet's fate, so arming FEC never perturbs which packets the fault
  // injector corrupts (and loss_rate == 0 draws nothing).
  bool corrupted = degrade_.loss_rate > 0 && rng_->NextDouble() < degrade_.loss_rate;
  if (d.p_enter > 0 && RollDciLoss()) {
    corrupted = true;
  }
  if (d.fec_k > 0 && pkt.type == PacketType::kData) {
    ++d.group_data;
    d.group_max_size = std::max(d.group_max_size, pkt.size_bytes);
    if (d.group_data == 1) {
      // Traffic can stop mid-group; a one-shot flush bounds how long a
      // corrupted packet waits for reconstruction.
      const uint64_t epoch = d.group_epoch;
      auto flush = [this, epoch] {
        if (dci_ != nullptr && dci_->group_epoch == epoch && dci_->group_data > 0) {
          CloseFecGroup();
        }
      };
      static_assert(InlineEvent::kFitsInline<decltype(flush)>,
                    "FEC flush closure must stay allocation-free");
      sim_->Schedule(kFecGroupFlushNs, std::move(flush));
    }
    if (corrupted) {
      ++d.lost_packets;
      static obs::Counter* m_lost =
          obs::MetricsRegistry::Instance().GetCounter("lcmp.dci.lost_packets");
      m_lost->Inc();
      // Held for reconstruction. The PFC ingress charge is refunded by the
      // caller (we report "not accepted"); clearing the tag keeps the
      // dequeue hook from crediting it a second time after re-injection.
      pkt.ingress_port = kInvalidPort;
      d.held.push_back(std::move(pkt));
      if (d.group_data >= d.fec_k) {
        CloseFecGroup();
      }
      return false;
    }
    if (d.group_data >= d.fec_k) {
      // Close after committing this packet so the repairs serialize behind
      // the group they protect.
      const bool accepted = EnqueueCommitted(std::move(pkt));
      CloseFecGroup();
      return accepted;
    }
    return EnqueueCommitted(std::move(pkt));
  }
  if (corrupted) {
    ++d.lost_packets;
    static obs::Counter* m_lost =
        obs::MetricsRegistry::Instance().GetCounter("lcmp.dci.lost_packets");
    m_lost->Inc();
    DropCorrupted(pkt);
    return false;
  }
  return EnqueueCommitted(std::move(pkt));
}

bool Port::Enqueue(Packet pkt) {
  if (!up_) {
    ++dropped_packets_;
    m_drops_->Inc();
    LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
    ReleaseIntStack(pkt);
    return false;
  }
  if (dci_ != nullptr) {
    return DciAdmit(pkt);
  }
  // Degraded-link random loss (fault injection): the packet is corrupted on
  // the wire, modeled as a drop before it ever occupies buffer space. The
  // RNG is only consulted while a degradation is active, so fault-free runs
  // consume the identical random stream as before.
  if (degrade_.loss_rate > 0 && rng_->NextDouble() < degrade_.loss_rate) {
    ++dropped_packets_;
    m_drops_->Inc();
    LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
    ReleaseIntStack(pkt);
    return false;
  }
  return EnqueueCommitted(std::move(pkt));
}

bool Port::EnqueueCommitted(Packet pkt) {
  if (!up_) {  // internal re-injections can race a link cut
    DropCorrupted(pkt);
    return false;
  }
  if (queue_bytes_ + pkt.size_bytes > config_.buffer_bytes) {
    ++dropped_packets_;
    m_drops_->Inc();
    LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
    ReleaseIntStack(pkt);
    return false;
  }
  // Mark based on occupancy *before* this packet joins, as switch ASICs do.
  if (pkt.type == PacketType::kData && ShouldMarkEcn()) {
    pkt.ecn_ce = true;
    pkt.ecn_mask |= CcSegmentOf(pkt);  // segmented CC: where the mark happened
    ++ecn_marked_packets_;
    m_ecn_marks_->Inc();
    LCMP_TRACE(obs::TraceEv::kEcnMark, sim_->now(), pkt.flow_id, owner_->id(), index_,
               queue_bytes_);
  }
  queue_bytes_ += pkt.size_bytes;
  accepted_bytes_ += pkt.size_bytes;
  max_queue_bytes_ = std::max(max_queue_bytes_, queue_bytes_);
  LCMP_TRACE(obs::TraceEv::kEnqueue, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
  queue_.push_back(std::move(pkt));
  StartTransmissionIfIdle();
  return true;
}

void Port::StartTransmissionIfIdle() {
  if (transmitting_ || queue_.empty() || !up_ || paused_) {
    return;
  }
  transmitting_ = true;
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  queue_bytes_ -= pkt.size_bytes;
  LCMP_TRACE(obs::TraceEv::kDequeue, sim_->now(), pkt.flow_id, owner_->id(), index_, queue_bytes_);
  if (dequeue_hook_) {
    dequeue_hook_(pkt);
  }

  // Stamp HPCC INT at egress: queue depth behind this packet, cumulative
  // bytes including this packet, link rate, and the departure timestamp.
  if (pkt.int_stack != kInvalidIntHandle && pkt.type == PacketType::kData) {
    IntStackPool* pool = owner_->int_pool();
    LCMP_CHECK(pool != nullptr);
    if (IntRecord* rec = pool->AppendHop(pkt.int_stack); rec != nullptr) {
      rec->qlen_bytes = queue_bytes_;
      rec->rate_bps = effective_rate_bps_;
      rec->tx_bytes = tx_bytes_ + pkt.size_bytes;
      rec->ts = sim_->now();
    }
  }

  const TimeNs tx_time = SerializationDelay(pkt.size_bytes, effective_rate_bps_);
  busy_ns_ += tx_time;
  tx_bytes_ += pkt.size_bytes;
  ++tx_packets_;
  m_tx_packets_->Inc();
  m_tx_bytes_->Add(pkt.size_bytes);
  auto tx_done = [this, pkt = std::move(pkt)]() mutable { OnTransmissionDone(std::move(pkt)); };
  static_assert(InlineEvent::kFitsInline<decltype(tx_done)>,
                "port transmit-done closure must stay allocation-free");
  sim_->Schedule(tx_time, std::move(tx_done));
}

void Port::OnTransmissionDone(Packet pkt) {
  transmitting_ = false;
  if (pkt.type == PacketType::kFecRepair) {
    // Repair symbols are absorbed by the far gateway's decoder: they have
    // paid their serialization time (the whole point — FEC trades DCI
    // bandwidth for loss ride-through) but are never routed or delivered.
    StartTransmissionIfIdle();
    return;
  }
  // Packet is now on the wire; it arrives after the propagation delay even if
  // the port goes down in the meantime (light already in the fiber).
  LCMP_CHECK(peer_ != nullptr);
  Node* peer = peer_;
  const PortIndex in_port = peer_in_port_;
  auto deliver = [peer, in_port, pkt = std::move(pkt)]() mutable {
    peer->Receive(std::move(pkt), in_port);
  };
  static_assert(InlineEvent::kFitsInline<decltype(deliver)>,
                "link delivery closure must stay allocation-free");
  const TimeNs prop_delay = config_.prop_delay_ns + degrade_.extra_delay_ns;
  if (xlink_ != nullptr) {
    // Peer is homed on another shard: hand off through the link's channel.
    // prop_delay is at least the plan's lookahead, so the delivery lands
    // beyond the destination shard's current window. The key is minted here,
    // by the producing event, so it matches the sequential core's.
    const TimeNs at = sim_->now() + prop_delay;
    xlink_->Push(at, sim_->MintKeyFor(at), std::move(deliver));
  } else {
    sim_->Schedule(prop_delay, std::move(deliver));
  }
  StartTransmissionIfIdle();
}

void Port::SetPaused(bool paused) {
  if (paused_ == paused) {
    return;
  }
  paused_ = paused;
  if (paused_) {
    pause_started_ = sim_->now();
  } else {
    paused_ns_ += sim_->now() - pause_started_;
    StartTransmissionIfIdle();
  }
}

void Port::SetUp(bool up) {
  if (up_ == up) {
    return;
  }
  up_ = up;
  if (!up_) {
    dropped_packets_ += static_cast<int64_t>(queue_.size());
    m_drops_->Add(static_cast<int64_t>(queue_.size()));
    for (Packet& pkt : queue_) {
      LCMP_TRACE(obs::TraceEv::kDrop, sim_->now(), pkt.flow_id, owner_->id(), index_,
                 queue_bytes_);
      flushed_bytes_ += pkt.size_bytes;
      if (dequeue_hook_) {
        dequeue_hook_(pkt);
      }
      ReleaseIntStack(pkt);
    }
    queue_.clear();
    queue_bytes_ = 0;
  } else {
    StartTransmissionIfIdle();
  }
}

void Port::SetDegrade(const LinkDegrade& degrade) {
  LCMP_CHECK(degrade.rate_factor > 0 && degrade.rate_factor <= 1.0);
  LCMP_CHECK(degrade.extra_delay_ns >= 0);
  LCMP_CHECK(degrade.loss_rate >= 0 && degrade.loss_rate < 1.0);
  degrade_ = degrade;
  effective_rate_bps_ =
      std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(config_.rate_bps) *
                                                degrade.rate_factor));
}

}  // namespace lcmp
