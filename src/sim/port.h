// Egress port: FIFO byte-bounded queue + store-and-forward transmitter.
//
// A Port models one direction of a link: packets are enqueued by the owning
// node, serialized at the link rate, and delivered to the peer node after the
// propagation delay. ECN marking happens at enqueue time using RED-style
// thresholds, matching DCQCN's switch-side behavior.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace lcmp {

class Node;
class ShardChannel;

struct PortConfig {
  int64_t rate_bps = Gbps(100);
  TimeNs prop_delay_ns = Microseconds(1);
  int64_t buffer_bytes = 32 * 1024 * 1024;
  // RED/ECN marking thresholds (bytes). ecn_kmin == 0 disables marking.
  int64_t ecn_kmin = 0;
  int64_t ecn_kmax = 0;
  double ecn_pmax = 0.2;
};

// Degraded-link model applied by the fault-injection subsystem: a partially
// failed fiber/amplifier serializes slower, adds latency, and corrupts a
// fraction of packets. The identity value (no degradation) is the default.
struct LinkDegrade {
  double rate_factor = 1.0;   // effective rate = configured rate * factor
  TimeNs extra_delay_ns = 0;  // added one-way propagation delay
  double loss_rate = 0.0;     // iid per-packet corruption/drop probability
  bool active() const { return rate_factor != 1.0 || extra_delay_ns != 0 || loss_rate != 0.0; }
};

// First-class lossy long-haul tier on DCI links (DESIGN.md §15), distinct
// from the fault-injection LinkDegrade above: a standing stochastic
// loss/corruption process (Gilbert–Elliott bursts) plus an optional
// Reed–Solomon-style FEC shim that encodes groups of k DATA packets into m
// repair symbols at the source gateway and reconstructs corrupted packets at
// the far gateway. The per-port RNG is seeded from the topology-independent
// stream (global seed + link index + direction), so shard layout never
// changes which packets die.
struct DciLinkConfig {
  double loss_rate = 0.0;  // long-run packet corruption probability
  double burst_len = 1.0;  // mean corruption-burst length in packets (>= 1)
  int fec_k = 0;           // DATA packets per FEC group (0 = FEC off)
  int fec_m = 0;           // repair symbols per group
  uint64_t seed = 0;
  bool enabled() const { return loss_rate > 0.0 || fec_k > 0; }
};

class Port {
 public:
  Port(Simulator* sim, Rng* rng, Node* owner, PortIndex index, const PortConfig& config,
       int graph_link_idx);

  // Not movable/copyable: events capture `this`.
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  // Wires the receiving side; must be called before any Enqueue.
  void ConnectTo(Node* peer, PortIndex peer_in_port);

  // Queues `pkt` for transmission. Applies ECN marking, drops on overflow or
  // when the port is administratively down. Returns true when the packet was
  // accepted (queued or started transmitting).
  bool Enqueue(Packet pkt);

  // --- state observed by routing policies (the "data plane registers") ---
  int64_t queue_bytes() const { return queue_bytes_; }
  // Current effective line rate; tracks degradation so congestion estimators
  // and INT telemetry see what the link actually serializes at.
  int64_t rate_bps() const { return effective_rate_bps_; }
  int64_t configured_rate_bps() const { return config_.rate_bps; }
  TimeNs prop_delay_ns() const { return config_.prop_delay_ns + degrade_.extra_delay_ns; }
  int64_t buffer_bytes() const { return config_.buffer_bytes; }
  bool up() const { return up_; }

  // Administrative/failure control. Bringing a port down drops its queue
  // (packets in flight on the wire still arrive, as on a real fiber cut the
  // far end sees a tail of packets).
  void SetUp(bool up);

  // Applies/clears the degraded-link model (SetDegrade(LinkDegrade{}) to
  // restore). Takes effect from the next transmission start; the in-flight
  // packet keeps the rate it started with.
  void SetDegrade(const LinkDegrade& degrade);
  const LinkDegrade& degrade() const { return degrade_; }

  // Arms the lossy-DCI tier on this port (Network wires it onto both
  // directions of every inter-DC link when configured). Must be called
  // before the first Enqueue; allocates the decoder state up front so the
  // packet path stays allocation-free.
  void EnableDciLink(const DciLinkConfig& config);

  // --- lossy-DCI statistics (0 when the tier is off) ---
  int64_t dci_lost_packets() const { return dci_ != nullptr ? dci_->lost_packets : 0; }
  int64_t fec_repair_packets() const { return dci_ != nullptr ? dci_->repair_packets : 0; }
  int64_t fec_recovered_packets() const { return dci_ != nullptr ? dci_->recovered : 0; }
  int64_t fec_unrecovered_packets() const { return dci_ != nullptr ? dci_->unrecovered : 0; }
  int64_t fec_groups() const { return dci_ != nullptr ? dci_->groups : 0; }

  // PFC pause/resume: a paused port finishes the in-flight packet but does
  // not start new transmissions until resumed.
  void SetPaused(bool paused);
  bool paused() const { return paused_; }
  TimeNs paused_ns() const { return paused_ns_; }

  PortIndex index() const { return index_; }
  Node* peer() const { return peer_; }
  int graph_link_idx() const { return graph_link_idx_; }

  // Sharded runs: when the peer node is homed on another shard, deliveries
  // (and PFC pause signals toward this port's owner) go through this channel
  // instead of the local event queue. Null on single-shard runs and on
  // intra-shard links — the common case stays zero-overhead.
  void SetCrossShardChannel(ShardChannel* channel) { xlink_ = channel; }
  ShardChannel* xlink() const { return xlink_; }

  // Invoked whenever an accepted packet leaves the queue — onto the wire or
  // flushed by SetUp(false). PFC ingress accounting credits bytes back here.
  // Installed once per port (not per event), so std::function is fine here.
  using DequeueHook = std::function<void(const Packet&)>;
  void SetDequeueHook(DequeueHook hook) { dequeue_hook_ = std::move(hook); }

  // --- statistics ---
  int64_t tx_bytes() const { return tx_bytes_; }
  int64_t tx_packets() const { return tx_packets_; }
  int64_t dropped_packets() const { return dropped_packets_; }
  int64_t ecn_marked_packets() const { return ecn_marked_packets_; }
  int64_t max_queue_bytes() const { return max_queue_bytes_; }
  TimeNs busy_ns() const { return busy_ns_; }

  // Byte-conservation ledger (fault-injection invariant): every byte this
  // port ever accepted is either transmitted, flushed by a fault, or still
  // queued — accepted_bytes() == tx_bytes() + flushed_bytes() + queue_bytes()
  // holds at every instant.
  int64_t accepted_bytes() const { return accepted_bytes_; }
  int64_t flushed_bytes() const { return flushed_bytes_; }

 private:
  // Lossy-DCI tier state: Gilbert–Elliott channel + one open FEC group.
  // Heap-held so the common (non-DCI) port stays slim.
  struct DciState {
    Rng rng;
    double p_enter = 0.0;  // good -> bad transition probability per packet
    double p_exit = 1.0;   // bad -> good transition probability per packet
    bool bad = false;
    int fec_k = 0;
    int fec_m = 0;
    int group_data = 0;           // DATA packets counted into the open group
    uint32_t group_max_size = 0;  // largest DATA wire size in the group
    uint64_t group_epoch = 0;     // invalidates stale flush timers
    std::vector<Packet> held;     // corrupted DATA awaiting reconstruction
    int64_t lost_packets = 0;     // wire corruptions (pre-FEC outcome)
    int64_t repair_packets = 0;   // repair symbols that made it onto the wire
    int64_t recovered = 0;        // corrupted DATA reconstructed by FEC
    int64_t unrecovered = 0;      // corrupted DATA beyond the code's budget
    int64_t groups = 0;
    explicit DciState(uint64_t seed) : rng(seed) {}
  };

  void StartTransmissionIfIdle();
  void OnTransmissionDone(Packet pkt);
  bool ShouldMarkEcn();
  // Returns a dropped/flushed packet's INT side-buffer (if any) to the pool.
  void ReleaseIntStack(Packet& pkt);
  // Tail of Enqueue after all loss decisions: buffer check, ECN, ledger,
  // queue. Internal re-injections (repairs, reconstructed packets) enter
  // here so they never re-roll the loss process.
  bool EnqueueCommitted(Packet pkt);
  // One Gilbert–Elliott step; true when the current packet is corrupted.
  bool RollDciLoss();
  // Admission through the lossy tier. Returns false when the packet was
  // consumed (held for FEC reconstruction or dropped as corrupted).
  bool DciAdmit(Packet& pkt);
  // Emits the group's repair symbols, reconstructs or drops held packets.
  void CloseFecGroup();
  void DropCorrupted(Packet& pkt);

  Simulator* sim_;
  Rng* rng_;
  Node* owner_;
  PortIndex index_;
  PortConfig config_;
  int graph_link_idx_;

  Node* peer_ = nullptr;
  PortIndex peer_in_port_ = kInvalidPort;
  ShardChannel* xlink_ = nullptr;

  std::deque<Packet> queue_;
  int64_t queue_bytes_ = 0;
  bool transmitting_ = false;
  bool up_ = true;
  LinkDegrade degrade_;
  int64_t effective_rate_bps_;
  bool paused_ = false;
  TimeNs pause_started_ = 0;
  TimeNs paused_ns_ = 0;
  DequeueHook dequeue_hook_;
  std::unique_ptr<DciState> dci_;  // null unless the lossy-DCI tier is armed

  int64_t tx_bytes_ = 0;
  int64_t tx_packets_ = 0;
  int64_t dropped_packets_ = 0;
  int64_t ecn_marked_packets_ = 0;
  int64_t max_queue_bytes_ = 0;
  int64_t accepted_bytes_ = 0;
  int64_t flushed_bytes_ = 0;
  TimeNs busy_ns_ = 0;

  // Fleet-wide metric handles, resolved once at construction (all ports
  // share the same cells, so updates are branch + add with no lookups).
  obs::Counter* m_tx_packets_;
  obs::Counter* m_tx_bytes_;
  obs::Counter* m_drops_;
  obs::Counter* m_ecn_marks_;
};

}  // namespace lcmp
