// Egress port: FIFO byte-bounded queue + store-and-forward transmitter.
//
// A Port models one direction of a link: packets are enqueued by the owning
// node, serialized at the link rate, and delivered to the peer node after the
// propagation delay. ECN marking happens at enqueue time using RED-style
// thresholds, matching DCQCN's switch-side behavior.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace lcmp {

class Node;
class ShardChannel;

struct PortConfig {
  int64_t rate_bps = Gbps(100);
  TimeNs prop_delay_ns = Microseconds(1);
  int64_t buffer_bytes = 32 * 1024 * 1024;
  // RED/ECN marking thresholds (bytes). ecn_kmin == 0 disables marking.
  int64_t ecn_kmin = 0;
  int64_t ecn_kmax = 0;
  double ecn_pmax = 0.2;
};

// Degraded-link model applied by the fault-injection subsystem: a partially
// failed fiber/amplifier serializes slower, adds latency, and corrupts a
// fraction of packets. The identity value (no degradation) is the default.
struct LinkDegrade {
  double rate_factor = 1.0;   // effective rate = configured rate * factor
  TimeNs extra_delay_ns = 0;  // added one-way propagation delay
  double loss_rate = 0.0;     // iid per-packet corruption/drop probability
  bool active() const { return rate_factor != 1.0 || extra_delay_ns != 0 || loss_rate != 0.0; }
};

class Port {
 public:
  Port(Simulator* sim, Rng* rng, Node* owner, PortIndex index, const PortConfig& config,
       int graph_link_idx);

  // Not movable/copyable: events capture `this`.
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  // Wires the receiving side; must be called before any Enqueue.
  void ConnectTo(Node* peer, PortIndex peer_in_port);

  // Queues `pkt` for transmission. Applies ECN marking, drops on overflow or
  // when the port is administratively down. Returns true when the packet was
  // accepted (queued or started transmitting).
  bool Enqueue(Packet pkt);

  // --- state observed by routing policies (the "data plane registers") ---
  int64_t queue_bytes() const { return queue_bytes_; }
  // Current effective line rate; tracks degradation so congestion estimators
  // and INT telemetry see what the link actually serializes at.
  int64_t rate_bps() const { return effective_rate_bps_; }
  int64_t configured_rate_bps() const { return config_.rate_bps; }
  TimeNs prop_delay_ns() const { return config_.prop_delay_ns + degrade_.extra_delay_ns; }
  int64_t buffer_bytes() const { return config_.buffer_bytes; }
  bool up() const { return up_; }

  // Administrative/failure control. Bringing a port down drops its queue
  // (packets in flight on the wire still arrive, as on a real fiber cut the
  // far end sees a tail of packets).
  void SetUp(bool up);

  // Applies/clears the degraded-link model (SetDegrade(LinkDegrade{}) to
  // restore). Takes effect from the next transmission start; the in-flight
  // packet keeps the rate it started with.
  void SetDegrade(const LinkDegrade& degrade);
  const LinkDegrade& degrade() const { return degrade_; }

  // PFC pause/resume: a paused port finishes the in-flight packet but does
  // not start new transmissions until resumed.
  void SetPaused(bool paused);
  bool paused() const { return paused_; }
  TimeNs paused_ns() const { return paused_ns_; }

  PortIndex index() const { return index_; }
  Node* peer() const { return peer_; }
  int graph_link_idx() const { return graph_link_idx_; }

  // Sharded runs: when the peer node is homed on another shard, deliveries
  // (and PFC pause signals toward this port's owner) go through this channel
  // instead of the local event queue. Null on single-shard runs and on
  // intra-shard links — the common case stays zero-overhead.
  void SetCrossShardChannel(ShardChannel* channel) { xlink_ = channel; }
  ShardChannel* xlink() const { return xlink_; }

  // Invoked whenever an accepted packet leaves the queue — onto the wire or
  // flushed by SetUp(false). PFC ingress accounting credits bytes back here.
  // Installed once per port (not per event), so std::function is fine here.
  using DequeueHook = std::function<void(const Packet&)>;
  void SetDequeueHook(DequeueHook hook) { dequeue_hook_ = std::move(hook); }

  // --- statistics ---
  int64_t tx_bytes() const { return tx_bytes_; }
  int64_t tx_packets() const { return tx_packets_; }
  int64_t dropped_packets() const { return dropped_packets_; }
  int64_t ecn_marked_packets() const { return ecn_marked_packets_; }
  int64_t max_queue_bytes() const { return max_queue_bytes_; }
  TimeNs busy_ns() const { return busy_ns_; }

  // Byte-conservation ledger (fault-injection invariant): every byte this
  // port ever accepted is either transmitted, flushed by a fault, or still
  // queued — accepted_bytes() == tx_bytes() + flushed_bytes() + queue_bytes()
  // holds at every instant.
  int64_t accepted_bytes() const { return accepted_bytes_; }
  int64_t flushed_bytes() const { return flushed_bytes_; }

 private:
  void StartTransmissionIfIdle();
  void OnTransmissionDone(Packet pkt);
  bool ShouldMarkEcn();
  // Returns a dropped/flushed packet's INT side-buffer (if any) to the pool.
  void ReleaseIntStack(Packet& pkt);

  Simulator* sim_;
  Rng* rng_;
  Node* owner_;
  PortIndex index_;
  PortConfig config_;
  int graph_link_idx_;

  Node* peer_ = nullptr;
  PortIndex peer_in_port_ = kInvalidPort;
  ShardChannel* xlink_ = nullptr;

  std::deque<Packet> queue_;
  int64_t queue_bytes_ = 0;
  bool transmitting_ = false;
  bool up_ = true;
  LinkDegrade degrade_;
  int64_t effective_rate_bps_;
  bool paused_ = false;
  TimeNs pause_started_ = 0;
  TimeNs paused_ns_ = 0;
  DequeueHook dequeue_hook_;

  int64_t tx_bytes_ = 0;
  int64_t tx_packets_ = 0;
  int64_t dropped_packets_ = 0;
  int64_t ecn_marked_packets_ = 0;
  int64_t max_queue_bytes_ = 0;
  int64_t accepted_bytes_ = 0;
  int64_t flushed_bytes_ = 0;
  TimeNs busy_ns_ = 0;

  // Fleet-wide metric handles, resolved once at construction (all ports
  // share the same cells, so updates are branch + add with no lookups).
  obs::Counter* m_tx_packets_;
  obs::Counter* m_tx_bytes_;
  obs::Counter* m_drops_;
  obs::Counter* m_ecn_marks_;
};

}  // namespace lcmp
