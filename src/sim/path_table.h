// Arena/slab-backed per-switch multipath tables.
//
// At extreme scale the per-switch candidate tables dominate control-plane
// memory: a 200-DC WAN with 4 path layers stores 200 * 4 rows per DCI, and
// many rows are identical across destinations and switches (e.g. single-hop
// rows toward a hub). The Network therefore owns one PathTableArena holding
// every distinct candidate list exactly once (content interning), and each
// switch keeps only an 8-byte slot (offset, count) per (layer, dst) entry.
//
// The arena is append-only and frozen before the simulation starts, so
// spans handed out by Resolve stay valid for the run and reads are safe
// from every shard thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "topo/graph.h"

namespace lcmp {

struct PathCandidate;

// Reference to an interned candidate list in the arena.
struct PathSlotRef {
  uint32_t offset = 0;
  uint32_t count = 0;
};

class PathTableArena {
 public:
  // Interns `list`, reusing an existing slab range when an identical list
  // was interned before. Empty lists map to {0, 0} without touching the
  // slab.
  PathSlotRef Intern(std::span<const PathCandidate> list);

  std::span<const PathCandidate> Resolve(PathSlotRef ref) const;

  size_t total_lists() const { return total_lists_; }
  size_t unique_lists() const { return unique_lists_; }

  // Slab + intern-index heap bytes. Feeds lcmp.paths.bytes.
  size_t MemoryBytes() const;

 private:
  std::vector<PathCandidate> slab_;
  // Content hash -> candidate refs with that hash (verified element-wise).
  std::unordered_map<uint64_t, std::vector<PathSlotRef>> index_;
  size_t total_lists_ = 0;
  size_t unique_lists_ = 0;
};

// Per-switch view: one PathSlotRef per (layer, dst DC), resolved through the
// shared arena. Non-DCI switches keep the default empty table.
class SwitchPathTable {
 public:
  void Init(const PathTableArena* arena, int num_dcs, int num_layers);
  void Set(DcId dst, int layer, PathSlotRef ref);
  std::span<const PathCandidate> Get(DcId dst, int layer) const;

  int num_dcs() const { return num_dcs_; }
  int num_layers() const { return num_layers_; }

  // Slot-array bytes owned by this switch (the interned lists live in the
  // shared arena and are accounted there).
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(PathSlotRef); }

 private:
  const PathTableArena* arena_ = nullptr;
  std::vector<PathSlotRef> slots_;  // [layer * num_dcs + dst]
  int num_dcs_ = 0;
  int num_layers_ = 1;
};

}  // namespace lcmp
