// InlineEvent: a move-only callable with small-buffer-optimized storage,
// replacing std::function<void()> on the event hot path.
//
// Every simulated packet hop schedules one closure; with std::function those
// closures (which capture a Packet by value, ~80 B) exceed the 16 B libstdc++
// SBO and heap-allocate on essentially every event. InlineEvent embeds up to
// kInlineCapacity bytes of capture state directly in the event-queue entry,
// so the steady-state event loop performs zero heap allocations. Oversized
// captures still work via a heap fallback, and per-process counters expose
// the inline/heap split so benchmarks and tests can assert the hot closures
// stay inline (see bench/events_hotpath.cc and DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace lcmp {

class InlineEvent {
 public:
  // Sized so that "this pointer + slim Packet + a few scalars" fits inline.
  // The tightest hot closures are the port transmit-done and link-delivery
  // lambdas capturing a Packet by value (see static_asserts in sim/port.cc).
  static constexpr size_t kInlineCapacity = 96;

  // True when a callable of type F runs from the inline buffer.
  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(std::decay_t<F>) <= kInlineCapacity &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  // Per-thread construction counters. Each simulator runs on one thread, so
  // thread_local keeps the unconditional hot-path increment race-free when
  // the sweep runner executes simulators in parallel; benchmarks and tests
  // read the counters from the thread that ran the simulation.
  // heap_events is the number of events that fell back to an allocation;
  // a healthy hot path keeps it at ~0 in steady state.
  struct Counters {
    // No default member initializers: counters_ below is declared while this
    // enclosing class is still incomplete, and GCC rejects NSDMIs there.
    // Aggregate value-initialization zeroes the fields instead.
    uint64_t inline_events;
    uint64_t heap_events;
  };
  static Counters counters() { return counters_; }
  static void ResetCounters() { counters_ = Counters{}; }

  InlineEvent() noexcept = default;

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, InlineEvent>>>
  InlineEvent(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
      ++counters_.inline_events;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
      ++counters_.heap_events;
    }
  }

  InlineEvent(InlineEvent&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { Reset(); }

  // Invokes the stored callable. Unlike a one-shot task type this is
  // repeatable, which lets Simulator's recurring timers keep one stored
  // callable and fire it every period.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs into dst from src and destroys src's payload.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      /*destroy=*/[](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      /*destroy=*/[](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  static inline thread_local Counters counters_{};

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace lcmp
