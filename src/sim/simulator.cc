#include "sim/simulator.h"

namespace lcmp {

TimeNs Simulator::Run(TimeNs until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (until >= 0 && queue_.PeekTime() > until) {
      now_ = until;
      return now_;
    }
    TimeNs t = 0;
    EventFn fn = queue_.Pop(&t);
    LCMP_CHECK(t >= now_);
    now_ = t;
    ++events_processed_;
    fn();
  }
  return now_;
}

}  // namespace lcmp
