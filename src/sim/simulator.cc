#include "sim/simulator.h"

#include <utility>

#include "obs/profile.h"
#include "obs/shard_context.h"

namespace lcmp {

namespace {
// While Run/RunWindow is on the stack, log lines (and crash dumps) carry
// `now_` and the owning shard id.
class ScopedLogSimTime {
 public:
  ScopedLogSimTime(const TimeNs* now, int shard)
      : prev_(SetLogSimTimeSource(now)), prev_shard_(SetLogShard(shard)) {}
  ~ScopedLogSimTime() {
    SetLogSimTimeSource(prev_);
    SetLogShard(prev_shard_);
  }

 private:
  const int64_t* prev_;
  int prev_shard_;
};
}  // namespace

TimeNs Simulator::Run(TimeNs until) {
  ScopedLogSimTime log_time(&now_, obs_shard_);
  obs::ScopedShardContext obs_ctx(
      obs::ShardContext{obs_lane_, obs_shard_, &now_, &current_key_});
  LCMP_PROFILE_SCOPE("sim.run");
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (until >= 0 && queue_.PeekTime() > until) {
      now_ = until;
      return now_;
    }
    TimeNs t = 0;
    EventFn fn = queue_.Pop(&t, &current_key_);
    LCMP_CHECK(t >= now_);
    now_ = t;
    ++events_processed_;
    child_idx_ = 0;
    in_event_ = true;
    fn();
    in_event_ = false;
  }
  return now_;
}

uint64_t Simulator::RunWindow(TimeNs end_exclusive, std::vector<EventKey>* log) {
  ScopedLogSimTime log_time(&now_, obs_shard_);
  obs::ScopedShardContext obs_ctx(
      obs::ShardContext{obs_lane_, obs_shard_, &now_, &current_key_});
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.PeekTime() < end_exclusive) {
    TimeNs t = 0;
    EventFn fn = queue_.Pop(&t, &current_key_);
    LCMP_CHECK(t >= now_);
    now_ = t;
    ++events_processed_;
    ++executed;
    if (log != nullptr) {
      log->push_back(EventKey{t, current_key_});
    }
    child_idx_ = 0;
    in_event_ = true;
    fn();
    in_event_ = false;
  }
  return executed;
}

Simulator::TimerId Simulator::ScheduleEvery(TimeNs interval, EventFn fn) {
  LCMP_CHECK(interval > 0);
  TimerId id;
  if (!free_timer_slots_.empty()) {
    id = free_timer_slots_.back();
    free_timer_slots_.pop_back();
  } else {
    id = static_cast<TimerId>(timers_.size());
    timers_.push_back(std::make_unique<RepeatingTimer>());
  }
  RepeatingTimer& timer = *timers_[id];
  timer.interval = interval;
  timer.fn = std::move(fn);
  timer.cancelled = false;
  Schedule(interval, [this, id] { FireTimer(id); });
  return id;
}

void Simulator::SetTimerInterval(TimerId id, TimeNs interval) {
  LCMP_CHECK(id < timers_.size() && interval > 0);
  timers_[id]->interval = interval;
}

void Simulator::CancelTimer(TimerId id) {
  LCMP_CHECK(id < timers_.size());
  timers_[id]->cancelled = true;
}

void Simulator::FireTimer(TimerId id) {
  RepeatingTimer& timer = *timers_[id];
  if (!timer.cancelled) {
    timer.fn();
  }
  // The callback itself may have cancelled the timer; check again before
  // re-arming. A cancelled slot drops its callable and becomes reusable
  // exactly when its one pending firing is consumed, so a recycled TimerId
  // can never alias a stale in-queue thunk.
  if (timer.cancelled) {
    timer.fn = EventFn();
    free_timer_slots_.push_back(id);
    return;
  }
  Schedule(timer.interval, [this, id] { FireTimer(id); });
}

}  // namespace lcmp
