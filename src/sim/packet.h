// Packet model.
//
// Packets are passed by value; they are small PODs and copying them through
// the event closures keeps ownership trivial. DATA packets optionally carry
// HPCC-style in-band network telemetry (one record per traversed hop).
#pragma once

#include <array>
#include <cstdint>

#include "common/hashing.h"
#include "common/types.h"

namespace lcmp {

enum class PacketType : uint8_t {
  kData,  // RDMA payload segment
  kAck,   // cumulative acknowledgment
  kNack,  // out-of-order notification, triggers Go-Back-N
  kCnp,   // DCQCN congestion notification packet
};

// Per-hop telemetry record for HPCC (queue length, link rate, cumulative
// transmitted bytes and the sampling timestamp at that hop's egress port).
struct IntRecord {
  int64_t qlen_bytes = 0;
  int64_t rate_bps = 0;
  int64_t tx_bytes = 0;
  TimeNs ts = 0;
};

inline constexpr int kMaxIntHops = 12;

struct Packet {
  PacketType type = PacketType::kData;
  FlowKey key;          // five tuple of the *flow* (DATA direction)
  FlowId flow_id = 0;   // FlowIdOf(key), cached
  NodeId src = kInvalidNode;  // transmitting host of this packet
  NodeId dst = kInvalidNode;  // receiving host of this packet
  uint32_t seq = 0;           // DATA: segment index; ACK/NACK: cumulative seq
  uint32_t size_bytes = 0;    // wire size including headers
  uint32_t payload_bytes = 0; // DATA payload carried
  bool ecn_ce = false;        // ECN congestion-experienced mark
  bool ecn_echo = false;      // ACK: echo of CE seen by receiver
  bool last_of_flow = false;  // DATA: final segment of the flow
  TimeNs sent_ts = 0;         // host transmit time (RTT measurement)
  // HPCC INT stack.
  bool int_enabled = false;
  uint8_t int_hops = 0;
  std::array<IntRecord, kMaxIntHops> int_rec{};

  // ACKs echo the INT stack of the DATA packet they acknowledge.

  // Transient switch-local tag: the ingress port the packet arrived on at
  // the node currently buffering it (kInvalidPort at hosts / first hop).
  // Used by PFC ingress-buffer accounting; rewritten at every hop.
  PortIndex ingress_port = kInvalidPort;
};

// Wire overhead added to each DATA payload (Eth + IP + UDP + BTH, rounded).
inline constexpr uint32_t kHeaderBytes = 64;
// Control packets (ACK/NACK/CNP) wire size.
inline constexpr uint32_t kControlPacketBytes = 64;
// Default MTU payload per DATA packet.
inline constexpr uint32_t kDefaultMtuPayload = 4096;

}  // namespace lcmp
