// Packet model.
//
// Packets are passed by value; they are small PODs and copying them through
// the event closures keeps ownership trivial. The HPCC INT telemetry stack
// (12 records x 32 B) is NOT embedded: DATA packets that carry telemetry
// reference a pooled side-buffer through a 32-bit IntHandle (sim/int_pool.h),
// keeping sizeof(Packet) small enough that packet-carrying event closures fit
// in InlineEvent's inline storage. The static_assert at the bottom guards the
// budget (see DESIGN.md "Event & packet memory model").
#pragma once

#include <cstdint>

#include "common/hashing.h"
#include "common/types.h"

namespace lcmp {

enum class PacketType : uint8_t {
  kData,       // RDMA payload segment
  kAck,        // cumulative acknowledgment
  kNack,       // out-of-order notification; seq = hole start, and in IRN
               // mode payload_bytes = SACK-style hole end (exclusive)
  kCnp,        // DCQCN congestion notification packet
  kFecRepair,  // erasure-coding repair symbol on a DCI link (sim/port.cc):
               // consumes link bandwidth/buffer, absorbed at the far
               // gateway, never routed or delivered to a transport
};

// Per-hop telemetry record for HPCC (queue length, link rate, cumulative
// transmitted bytes and the sampling timestamp at that hop's egress port).
struct IntRecord {
  int64_t qlen_bytes = 0;
  int64_t rate_bps = 0;
  int64_t tx_bytes = 0;
  TimeNs ts = 0;
};

inline constexpr int kMaxIntHops = 12;

// Reference to a pooled INT stack (IntStackPool slot index).
using IntHandle = uint32_t;
inline constexpr IntHandle kInvalidIntHandle = UINT32_MAX;

// CC segment identifiers for the segmented transport (DESIGN.md §14). A
// flow is split at the DC gateways into intra-source, inter-DC and
// intra-destination segments; `Packet::ecn_mask` records, as a bitmask,
// which segment(s) an ECN mark happened in.
inline constexpr uint8_t kSegIntraSrc = 1;
inline constexpr uint8_t kSegInterDc = 2;
inline constexpr uint8_t kSegIntraDst = 4;

struct Packet {
  PacketType type = PacketType::kData;
  uint8_t hops = 0;           // switch traversals; routing-loop guard (TTL)
  uint8_t ecn_mask = 0;       // CC segments that ECN-marked this packet
  // Bit-fields: the three flags must share one byte so the packet (and the
  // closures that capture it by value) stays inside InlineEvent's buffer.
  bool ecn_ce : 1 = false;        // ECN congestion-experienced mark
  bool ecn_echo : 1 = false;      // ACK: echo of CE seen by receiver
  bool last_of_flow : 1 = false;  // DATA: final segment of the flow
  FlowKey key;          // five tuple of the *flow* (DATA direction)
  FlowId flow_id = 0;   // FlowIdOf(key), cached
  NodeId src = kInvalidNode;  // transmitting host of this packet
  NodeId dst = kInvalidNode;  // receiving host of this packet
  uint32_t seq = 0;           // DATA: segment index; ACK/NACK: cumulative seq
  uint32_t size_bytes = 0;    // wire size including headers
  uint32_t payload_bytes = 0; // DATA payload carried
  // Gateway stamps for per-segment RTT demux (segmented CC): nanoseconds
  // from `sent_ts` to the packet's arrival at the source-side / dest-side
  // DCI gateway, 0 while unstamped. 32 bits bound one-way delays to ~4.2 s,
  // far beyond any modeled path; offsets (not absolute times) keep the
  // packet inside the inline-closure budget. ACKs copy the DATA packet's
  // stamps back to the sender.
  uint32_t gw_src_off = 0;
  uint32_t gw_dst_off = 0;
  TimeNs sent_ts = 0;         // host transmit time (RTT measurement)

  // HPCC INT side-buffer handle. kInvalidIntHandle when telemetry is off for
  // this packet. The handle *owns* the pool slot: whoever destroys the last
  // copy of a packet that still carries a valid handle must release it back
  // to the network's IntStackPool (ports/nodes do this on drops, the
  // transport on delivery). ACKs take over the handle of the DATA packet
  // they acknowledge, echoing the stack to the sender without copying it.
  IntHandle int_stack = kInvalidIntHandle;

  // Transient switch-local tag: the ingress port the packet arrived on at
  // the node currently buffering it (kInvalidPort at hosts / first hop).
  // Used by PFC ingress-buffer accounting; rewritten at every hop.
  PortIndex ingress_port = kInvalidPort;
};

// Which CC segment a DATA packet is currently traveling in, derived from its
// gateway stamps: unstamped -> still inside the source fabric, source stamp
// only -> on the long haul, destination stamp -> inside the receiving fabric.
inline uint8_t CcSegmentOf(const Packet& pkt) {
  if (pkt.gw_dst_off != 0) {
    return kSegIntraDst;
  }
  if (pkt.gw_src_off != 0) {
    return kSegInterDc;
  }
  return kSegIntraSrc;
}

// Budget: a Packet plus a `this` pointer (and change) must fit in
// InlineEvent's inline buffer, so the per-hop closures never heap-allocate.
static_assert(sizeof(Packet) <= 128, "Packet outgrew the hot-path size budget");

// Routing-loop guard: any sane path in the modeled topologies is well under
// this many switch hops; a packet that exceeds it is looping and is dropped
// (counted per switch, see SwitchNode::ttl_exhausted_drops).
inline constexpr uint8_t kMaxForwardHops = 64;

// Wire overhead added to each DATA payload (Eth + IP + UDP + BTH, rounded).
inline constexpr uint32_t kHeaderBytes = 64;
// Control packets (ACK/NACK/CNP) wire size.
inline constexpr uint32_t kControlPacketBytes = 64;
// Default MTU payload per DATA packet.
inline constexpr uint32_t kDefaultMtuPayload = 4096;

}  // namespace lcmp
