#include "sim/event_queue.h"

#include <utility>

namespace lcmp {

uint64_t EventQueue::Push(TimeNs t, EventFn fn) {
  const uint64_t seq = next_seq_++;
  heap_.push_back(Entry{t, seq, std::move(fn)});
  SiftUp(heap_.size() - 1);
  return seq;
}

EventFn EventQueue::Pop(TimeNs* time) {
  Entry top = std::move(heap_.front());
  *time = top.time;
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
  }
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
  return std::move(top.fn);
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Less(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t l = 2 * i + 1;
    const size_t r = l + 1;
    size_t smallest = i;
    if (l < n && Less(heap_[l], heap_[smallest])) {
      smallest = l;
    }
    if (r < n && Less(heap_[r], heap_[smallest])) {
      smallest = r;
    }
    if (smallest == i) {
      break;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace lcmp
