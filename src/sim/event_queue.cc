#include "sim/event_queue.h"

#include <utility>

namespace lcmp {

uint32_t EventQueue::StoreSlot(EventFn fn) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  return slot;
}

uint64_t EventQueue::Push(TimeNs t, EventFn fn) {
  const uint64_t seq = next_seq_++;
  const uint32_t slot = StoreSlot(std::move(fn));
  heap_.push_back(Entry{t, seq, slot});
  SiftUp(heap_.size() - 1);
  return seq;
}

void EventQueue::PushKeyed(TimeNs t, uint64_t key, EventFn fn) {
  const uint32_t slot = StoreSlot(std::move(fn));
  heap_.push_back(Entry{t, key, slot});
  SiftUp(heap_.size() - 1);
}

EventFn EventQueue::Pop(TimeNs* time, uint64_t* key) {
  const Entry top = heap_.front();
  *time = top.time;
  if (key != nullptr) {
    *key = top.seq;
  }
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
  }
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
  EventFn fn = std::move(slots_[top.slot]);
  free_slots_.push_back(top.slot);
  return fn;
}

void EventQueue::SiftUp(size_t i) {
  if (i == 0 || !Less(heap_[i], heap_[(i - 1) / 2])) {
    return;
  }
  // Hole-based insertion: lift the out-of-place entry once, shift ancestors
  // down into the hole, and drop the entry at its final position.
  const Entry moving = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Less(moving, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const Entry moving = heap_[i];
  while (true) {
    const size_t l = 2 * i + 1;
    const size_t r = l + 1;
    size_t smallest = i;
    const Entry* best = &moving;
    if (l < n && Less(heap_[l], *best)) {
      smallest = l;
      best = &heap_[l];
    }
    if (r < n && Less(heap_[r], *best)) {
      smallest = r;
    }
    if (smallest == i) {
      break;
    }
    heap_[i] = heap_[smallest];
    i = smallest;
  }
  heap_[i] = moving;
}

}  // namespace lcmp
