// Free-list pool of HPCC INT telemetry stacks.
//
// Embedding the 12x32 B INT array in every Packet made the packet ~500 B and
// forced every packet-carrying event closure onto the heap. Instead, the
// network owns one IntStackPool; a DATA packet that carries telemetry holds a
// 32-bit IntHandle into it. Slots are recycled through a free list, so after
// warm-up the pool performs no allocations: at most one stack is live per
// in-flight telemetry-carrying packet (the ACK inherits the DATA packet's
// slot rather than copying it).
//
// Handles are owning but Packet has no destructor (it must stay trivially
// copyable); every packet "death site" — drop, flush, unroutable, delivery —
// must call Release. Network::int_pool().in_use() is asserted back to zero in
// tests to catch leaks.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "sim/packet.h"

namespace lcmp {

// One pooled telemetry stack: the hop count plus per-hop records.
struct IntStack {
  uint8_t hops = 0;
  std::array<IntRecord, kMaxIntHops> rec{};
};

class IntStackPool {
 public:
  IntStackPool() = default;
  IntStackPool(const IntStackPool&) = delete;
  IntStackPool& operator=(const IntStackPool&) = delete;

  // Returns a cleared stack. Reuses a free slot when available; grows the
  // pool otherwise (steady state never grows).
  IntHandle Acquire() {
    IntHandle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
      store_[h].hops = 0;
    } else {
      h = static_cast<IntHandle>(store_.size());
      store_.emplace_back();
    }
    ++in_use_;
    return h;
  }

  // Returns `h` to the free list. Ignores kInvalidIntHandle so callers can
  // release unconditionally.
  void Release(IntHandle h) {
    if (h == kInvalidIntHandle) {
      return;
    }
    LCMP_CHECK(h < store_.size() && in_use_ > 0);
    free_.push_back(h);
    --in_use_;
  }

  // Releases the packet's stack (if any) and clears the handle.
  void ReleaseFrom(Packet& pkt) {
    Release(pkt.int_stack);
    pkt.int_stack = kInvalidIntHandle;
  }

  IntStack& Get(IntHandle h) {
    LCMP_CHECK(h < store_.size());
    return store_[h];
  }
  const IntStack& Get(IntHandle h) const {
    LCMP_CHECK(h < store_.size());
    return store_[h];
  }

  // Appends an egress-hop record to `h`'s stack (no-op once full, matching
  // real INT headers that stop growing at the hop limit).
  IntRecord* AppendHop(IntHandle h) {
    IntStack& s = Get(h);
    if (s.hops >= kMaxIntHops) {
      return nullptr;
    }
    return &s.rec[s.hops++];
  }

  // Live handles (leak detector for tests) and total slots ever created.
  size_t in_use() const { return in_use_; }
  size_t capacity() const { return store_.size(); }

 private:
  std::vector<IntStack> store_;
  std::vector<IntHandle> free_;
  size_t in_use_ = 0;
};

}  // namespace lcmp
