// Free-list pool of HPCC INT telemetry stacks.
//
// Embedding the 12x32 B INT array in every Packet made the packet ~500 B and
// forced every packet-carrying event closure onto the heap. Instead, the
// network owns one IntStackPool; a DATA packet that carries telemetry holds a
// 32-bit IntHandle into it. Slots are recycled through a free list, so after
// warm-up the pool performs no allocations: at most one stack is live per
// in-flight telemetry-carrying packet (the ACK inherits the DATA packet's
// slot rather than copying it).
//
// Handles are owning but Packet has no destructor (it must stay trivially
// copyable); every packet "death site" — drop, flush, unroutable, delivery —
// must call Release. Network::int_pool().in_use() is asserted back to zero in
// tests to catch leaks.
//
// Sharded runs (DESIGN.md §12) share one pool across shard worker threads. A
// handle's ownership travels with its packet, so Get/AppendHop on a live
// handle are data-race-free by construction (the cross-shard channel + window
// barrier publish the stack's storage block before the consuming shard can
// touch it). Only Acquire/Release mutate shared state (free list, counters);
// SetConcurrent(true) puts them under a mutex. Storage is a fixed array of
// heap blocks instead of one growable vector so a concurrent Acquire never
// relocates stacks another shard is reading. The free-list *order* becomes
// schedule-dependent under concurrency, but handles are opaque — no RNG draw
// or behavioral branch depends on their values — so digests are unaffected.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "sim/packet.h"

namespace lcmp {

// One pooled telemetry stack: the hop count plus per-hop records.
struct IntStack {
  uint8_t hops = 0;
  std::array<IntRecord, kMaxIntHops> rec{};
};

class IntStackPool {
 public:
  IntStackPool() = default;
  IntStackPool(const IntStackPool&) = delete;
  IntStackPool& operator=(const IntStackPool&) = delete;

  // Serialize Acquire/Release for multi-shard runs. Single-shard runs keep
  // the lock-free fast path.
  void SetConcurrent(bool on) { concurrent_ = on; }

  // Returns a cleared stack. Reuses a free slot when available; grows the
  // pool otherwise (steady state never grows).
  IntHandle Acquire() {
    if (concurrent_) {
      std::lock_guard<std::mutex> lock(mu_);
      return AcquireLocked();
    }
    return AcquireLocked();
  }

  // Returns `h` to the free list. Ignores kInvalidIntHandle so callers can
  // release unconditionally.
  void Release(IntHandle h) {
    if (h == kInvalidIntHandle) {
      return;
    }
    if (concurrent_) {
      std::lock_guard<std::mutex> lock(mu_);
      ReleaseLocked(h);
      return;
    }
    ReleaseLocked(h);
  }

  // Releases the packet's stack (if any) and clears the handle.
  void ReleaseFrom(Packet& pkt) {
    Release(pkt.int_stack);
    pkt.int_stack = kInvalidIntHandle;
  }

  IntStack& Get(IntHandle h) {
    LCMP_CHECK(h < size_.load(std::memory_order_relaxed));
    return blocks_[h >> kBlockShift][h & (kBlockSize - 1)];
  }
  const IntStack& Get(IntHandle h) const {
    LCMP_CHECK(h < size_.load(std::memory_order_relaxed));
    return blocks_[h >> kBlockShift][h & (kBlockSize - 1)];
  }

  // Appends an egress-hop record to `h`'s stack (no-op once full, matching
  // real INT headers that stop growing at the hop limit).
  IntRecord* AppendHop(IntHandle h) {
    IntStack& s = Get(h);
    if (s.hops >= kMaxIntHops) {
      return nullptr;
    }
    return &s.rec[s.hops++];
  }

  // Live handles (leak detector for tests) and total slots ever created.
  // Read from quiesced state (after the run) in tests.
  size_t in_use() const { return in_use_; }
  size_t capacity() const { return size_.load(std::memory_order_relaxed); }

 private:
  static constexpr uint32_t kBlockShift = 10;
  static constexpr uint32_t kBlockSize = 1u << kBlockShift;  // stacks per block
  static constexpr uint32_t kMaxBlocks = 1u << 12;           // 4 M stacks total

  IntHandle AcquireLocked() {
    IntHandle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
      Get(h).hops = 0;
    } else {
      const uint32_t size = size_.load(std::memory_order_relaxed);
      const uint32_t block = size >> kBlockShift;
      LCMP_CHECK(block < kMaxBlocks);
      if (blocks_[block] == nullptr) {
        blocks_[block] = std::make_unique<IntStack[]>(kBlockSize);
      }
      h = size;
      size_.store(size + 1, std::memory_order_relaxed);
    }
    ++in_use_;
    return h;
  }

  void ReleaseLocked(IntHandle h) {
    LCMP_CHECK(h < size_.load(std::memory_order_relaxed) && in_use_ > 0);
    free_.push_back(h);
    --in_use_;
  }

  std::array<std::unique_ptr<IntStack[]>, kMaxBlocks> blocks_;
  std::atomic<uint32_t> size_{0};  // slots ever created across all blocks
  std::vector<IntHandle> free_;
  size_t in_use_ = 0;
  bool concurrent_ = false;
  std::mutex mu_;
};

}  // namespace lcmp
