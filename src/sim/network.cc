#include "sim/network.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lcmp {
namespace {

PortConfig MakePortConfig(const NetworkConfig& cfg, const LinkSpec& link) {
  PortConfig pc;
  pc.rate_bps = link.rate_bps;
  pc.prop_delay_ns = link.delay_ns;
  pc.buffer_bytes = link.buffer_bytes > 0 ? link.buffer_bytes : cfg.default_buffer_bytes;
  if (cfg.ecn_kmin_at_rate > 0) {
    // Threshold in bytes = rate_bps * time_ns / (8 bits * 1e9 ns/s).
    pc.ecn_kmin = static_cast<int64_t>(static_cast<__int128>(link.rate_bps) *
                                       cfg.ecn_kmin_at_rate / (8 * kNsPerSec));
    pc.ecn_kmax = static_cast<int64_t>(static_cast<__int128>(link.rate_bps) *
                                       cfg.ecn_kmax_at_rate / (8 * kNsPerSec));
    pc.ecn_pmax = cfg.ecn_pmax;
  }
  return pc;
}

}  // namespace

Network::Network(const Graph& graph, const NetworkConfig& config, PolicyFactory factory)
    : graph_(graph),
      config_(config),
      plan_(BuildShardPlan(graph_, config.shards)),
      routes_(InterDcRoutes::Compute(graph_, config.paths)) {
  // Freeze the CSR adjacency now, on this thread: shard workers and the
  // transport's path oracle read incident_links concurrently later, and the
  // lazy rebuild is not thread-safe.
  graph_.EnsureCsr();
  sims_.reserve(static_cast<size_t>(plan_.num_shards));
  for (int i = 0; i < plan_.num_shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  if (plan_.num_shards > 1) {
    global_sim_ = std::make_unique<Simulator>();
    // Every queue draws its setup-phase tie-break keys from one shared
    // counter, so the cross-queue pre-run insertion order is exactly the
    // sequential core's (runtime events mint lineage keys instead, which
    // are core-layout-invariant by construction — see Simulator::MintKeyFor).
    for (int i = 0; i < plan_.num_shards; ++i) {
      sims_[static_cast<size_t>(i)]->UseSharedSeq(&setup_seq_);
      // Shard workers stamp trace records, metric lanes and log lines with
      // their shard id (obs/shard_context.h); the control queue stays on
      // lane 0 like a sequential run.
      sims_[static_cast<size_t>(i)]->SetObsIdentity(obs::LaneForShard(i), i);
    }
    global_sim_->UseSharedSeq(&setup_seq_);
    channels_.resize(static_cast<size_t>(plan_.num_shards) * plan_.num_shards);
    int_pool_.SetConcurrent(true);
  }
  dc_of_node_.resize(static_cast<size_t>(graph_.num_vertices()));
  for (NodeId id = 0; id < graph_.num_vertices(); ++id) {
    dc_of_node_[static_cast<size_t>(id)] = graph_.vertex(id).dc;
  }
  BuildNodes(config, factory);
  BuildStaticForwarding();
  BuildInterDcCandidates();
  topo_bytes_ = graph_.MemoryBytes();
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
    reg.GetGauge("lcmp.topo.bytes")->Set(static_cast<int64_t>(topo_bytes_));
    reg.GetGauge("lcmp.paths.bytes")->Set(static_cast<int64_t>(path_table_bytes_));
  }
}

ShardChannel* Network::ChannelFor(int src_shard, int dst_shard) {
  auto& slot =
      channels_[static_cast<size_t>(src_shard) * plan_.num_shards + static_cast<size_t>(dst_shard)];
  if (slot == nullptr) {
    slot = std::make_unique<ShardChannel>();
  }
  return slot.get();
}

Network::ChannelDrainStats Network::DrainCrossShardChannels() {
  ChannelDrainStats stats;
  const int n = plan_.num_shards;
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      ShardChannel* ch = channels_[static_cast<size_t>(src) * n + static_cast<size_t>(dst)].get();
      if (ch != nullptr) {
        stats.items += ch->DrainInto(sims_[static_cast<size_t>(dst)].get());
        stats.high_water = std::max<uint64_t>(stats.high_water, ch->high_water());
      }
    }
  }
  return stats;
}

void Network::BuildNodes(const NetworkConfig& config, const PolicyFactory& factory) {
  nodes_.reserve(static_cast<size_t>(graph_.num_vertices()));
  for (NodeId id = 0; id < graph_.num_vertices(); ++id) {
    const Vertex& v = graph_.vertex(id);
    const uint64_t seed = Mix64(config.seed ^ (0xabcdULL + static_cast<uint64_t>(id)));
    // Every node lives on its DC's home-shard simulator; with shards == 1
    // that is sims_[0] and this is the old single-simulator wiring.
    Simulator* home = sims_[static_cast<size_t>(shard_of(id))].get();
    if (v.kind == VertexKind::kHost) {
      nodes_.push_back(std::make_unique<HostNode>(home, id, v.dc, seed));
    } else {
      const bool is_dci = v.kind == VertexKind::kDciSwitch;
      nodes_.push_back(std::make_unique<SwitchNode>(home, id, v.dc, is_dci, seed));
    }
    nodes_.back()->SetIntPool(&int_pool_);
  }
  // Ports: one per link direction.
  port_of_link_.resize(static_cast<size_t>(graph_.num_links()));
  for (int li = 0; li < graph_.num_links(); ++li) {
    const LinkSpec& l = graph_.link(li);
    const PortConfig pc = MakePortConfig(config, l);
    const PortIndex pa = nodes_[static_cast<size_t>(l.a)]->AddPort(pc, li);
    const PortIndex pb = nodes_[static_cast<size_t>(l.b)]->AddPort(pc, li);
    nodes_[static_cast<size_t>(l.a)]->port(pa).ConnectTo(nodes_[static_cast<size_t>(l.b)].get(),
                                                         pb);
    nodes_[static_cast<size_t>(l.b)]->port(pb).ConnectTo(nodes_[static_cast<size_t>(l.a)].get(),
                                                         pa);
    port_of_link_[static_cast<size_t>(li)] = {pa, pb};
    // Shard-crossing links hand deliveries (and PFC pause signals) off via
    // a channel owned by the sending shard instead of scheduling directly
    // into the peer's queue.
    const int sa = shard_of(l.a);
    const int sb = shard_of(l.b);
    if (sa != sb) {
      nodes_[static_cast<size_t>(l.a)]->port(pa).SetCrossShardChannel(ChannelFor(sa, sb));
      nodes_[static_cast<size_t>(l.b)]->port(pb).SetCrossShardChannel(ChannelFor(sb, sa));
    }
    // Lossy long-haul tier: armed on both directions of every inter-DC
    // link. The per-direction RNG seed depends only on the global seed and
    // the link's graph identity — never on the shard layout — so which
    // packets die is identical across --shards values.
    const bool inter_dc = graph_.vertex(l.a).kind == VertexKind::kDciSwitch &&
                          graph_.vertex(l.b).kind == VertexKind::kDciSwitch &&
                          graph_.vertex(l.a).dc != graph_.vertex(l.b).dc;
    if (inter_dc) {
      DciLinkConfig dcfg;
      dcfg.loss_rate = config.dci_loss_rate;
      dcfg.burst_len = config.dci_burst_len;
      dcfg.fec_k = config.fec_k;
      dcfg.fec_m = config.fec_m;
      if (dcfg.enabled()) {
        dcfg.seed = Mix64(config.seed ^ (0xD0C1C0DEULL + 2 * static_cast<uint64_t>(li)));
        nodes_[static_cast<size_t>(l.a)]->port(pa).EnableDciLink(dcfg);
        dcfg.seed = Mix64(config.seed ^ (0xD0C1C0DEULL + 2 * static_cast<uint64_t>(li) + 1));
        nodes_[static_cast<size_t>(l.b)]->port(pb).EnableDciLink(dcfg);
      }
    }
  }
  // Switch wiring and policies.
  for (NodeId id = 0; id < graph_.num_vertices(); ++id) {
    const Vertex& v = graph_.vertex(id);
    if (v.kind == VertexKind::kHost) {
      continue;
    }
    auto& sw = static_cast<SwitchNode&>(*nodes_[static_cast<size_t>(id)]);
    sw.SetDcOfNode(&dc_of_node_);
    sw.SetLocalDci(graph_.DciOfDc(v.dc));
    if (sw.is_dci() && factory) {
      sw.SetPolicy(factory(sw));
    }
    if (config.pfc.enabled) {
      sw.EnablePfc(config.pfc);
    }
  }
}

void Network::BuildStaticForwarding() {
  // Per destination node d: BFS over *intra-DC* links from d (switches in
  // d's DC only need to reach local hosts and the local DCI; inter-DC hops
  // are the policy's job). Static routes never leave a DC (every cross-DC
  // link is DCI<->DCI and excluded below), so each switch stores one compact
  // CSR row per node of its *own* DC instead of a per-graph-node table —
  // O(sum of DC sizes squared) instead of O(V^2) across the fleet.
  const int n = graph_.num_vertices();
  const int ndc = graph_.num_dcs();
  local_index_of_node_.assign(static_cast<size_t>(n), -1);
  std::vector<std::vector<NodeId>> nodes_of_dc(static_cast<size_t>(ndc));
  for (NodeId id = 0; id < n; ++id) {
    const DcId dc = graph_.vertex(id).dc;
    if (dc >= 0) {
      local_index_of_node_[static_cast<size_t>(id)] =
          static_cast<int32_t>(nodes_of_dc[static_cast<size_t>(dc)].size());
      nodes_of_dc[static_cast<size_t>(dc)].push_back(id);
    }
  }
  auto is_inter_dc = [&](int li) {
    const LinkSpec& l = graph_.link(li);
    return graph_.vertex(l.a).kind == VertexKind::kDciSwitch &&
           graph_.vertex(l.b).kind == VertexKind::kDciSwitch &&
           graph_.vertex(l.a).dc != graph_.vertex(l.b).dc;
  };
  std::vector<int> dist(static_cast<size_t>(n), -1);
  std::vector<NodeId> touched;
  for (DcId dc = 0; dc < ndc; ++dc) {
    const std::vector<NodeId>& members = nodes_of_dc[static_cast<size_t>(dc)];
    const size_t m = members.size();
    // rows[local(u)][local(dst)] = equal-cost ports; filled for switches.
    std::vector<std::vector<std::vector<PortIndex>>> rows(m);
    for (size_t lu = 0; lu < m; ++lu) {
      if (graph_.vertex(members[lu]).kind != VertexKind::kHost) {
        rows[lu].resize(m);
      }
    }
    for (size_t ld = 0; ld < m; ++ld) {
      const NodeId dst = members[ld];
      // BFS hop distance from dst, intra-DC edges only.
      std::queue<NodeId> q;
      dist[static_cast<size_t>(dst)] = 0;
      touched.push_back(dst);
      q.push(dst);
      while (!q.empty()) {
        const NodeId u = q.front();
        q.pop();
        for (const int li : graph_.incident_links(u)) {
          if (is_inter_dc(li)) {
            continue;
          }
          const NodeId v = graph_.Peer(li, u);
          if (dist[static_cast<size_t>(v)] < 0) {
            dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
            touched.push_back(v);
            q.push(v);
          }
        }
      }
      // Equal-cost next hops for every switch that can reach dst intra-DC.
      for (size_t lu = 0; lu < m; ++lu) {
        const NodeId u = members[lu];
        if (graph_.vertex(u).kind == VertexKind::kHost || dist[static_cast<size_t>(u)] < 0 ||
            u == dst) {
          continue;
        }
        std::vector<PortIndex>& ports = rows[lu][ld];
        for (const int li : graph_.incident_links(u)) {
          if (is_inter_dc(li)) {
            continue;
          }
          const NodeId v = graph_.Peer(li, u);
          if (dist[static_cast<size_t>(v)] == dist[static_cast<size_t>(u)] - 1) {
            const LinkSpec& l = graph_.link(li);
            ports.push_back(l.a == u ? port_of_link_[static_cast<size_t>(li)].first
                                     : port_of_link_[static_cast<size_t>(li)].second);
          }
        }
        std::sort(ports.begin(), ports.end());
      }
      for (const NodeId t : touched) {
        dist[static_cast<size_t>(t)] = -1;
      }
      touched.clear();
    }
    // Pack each switch's rows into CSR and install.
    for (size_t lu = 0; lu < m; ++lu) {
      const NodeId u = members[lu];
      if (graph_.vertex(u).kind == VertexKind::kHost) {
        continue;
      }
      std::vector<int32_t> offsets(m + 1, 0);
      size_t total = 0;
      for (size_t ld = 0; ld < m; ++ld) {
        total += rows[lu][ld].size();
        offsets[ld + 1] = static_cast<int32_t>(total);
      }
      std::vector<PortIndex> ports;
      ports.reserve(total);
      for (size_t ld = 0; ld < m; ++ld) {
        ports.insert(ports.end(), rows[lu][ld].begin(), rows[lu][ld].end());
      }
      static_table_bytes_ += offsets.capacity() * sizeof(int32_t) +
                             ports.capacity() * sizeof(PortIndex);
      static_cast<SwitchNode&>(*nodes_[static_cast<size_t>(u)])
          .SetStaticTable(&local_index_of_node_, std::move(offsets), std::move(ports));
    }
  }
  static_table_bytes_ += local_index_of_node_.capacity() * sizeof(int32_t);
}

void Network::BuildInterDcCandidates() {
  const int ndc = graph_.num_dcs();
  const int layers = routes_.num_layers();
  std::vector<PathCandidate> row;
  size_t slot_bytes = 0;
  for (DcId dc = 0; dc < ndc; ++dc) {
    const NodeId dci = graph_.DciOfDc(dc);
    if (dci == kInvalidNode) {
      continue;
    }
    ++num_dcis_;
    SwitchPathTable table;
    table.Init(&path_arena_, ndc, layers);
    for (int layer = 0; layer < layers; ++layer) {
      for (DcId dst = 0; dst < ndc; ++dst) {
        if (dst == dc) {
          continue;
        }
        row.clear();
        for (const RouteCandidate& rc : routes_.CandidatesInLayer(dci, dst, layer)) {
          PathCandidate c;
          const LinkSpec& l = graph_.link(rc.link_idx);
          c.port = l.a == dci ? port_of_link_[static_cast<size_t>(rc.link_idx)].first
                              : port_of_link_[static_cast<size_t>(rc.link_idx)].second;
          c.next_hop = rc.next_hop;
          c.path_delay_ns = rc.path_delay_ns;
          c.bottleneck_bps = rc.bottleneck_bps;
          c.graph_link_idx = rc.link_idx;
          row.push_back(c);
        }
        if (!row.empty()) {
          table.Set(dst, layer, path_arena_.Intern(row));
        }
      }
    }
    slot_bytes += table.MemoryBytes();
    static_cast<SwitchNode&>(*nodes_[static_cast<size_t>(dci)]).SetPathTable(std::move(table));
  }
  path_table_bytes_ = path_arena_.MemoryBytes() + slot_bytes;
}

HostNode& Network::host(NodeId id) {
  LCMP_CHECK(nodes_[static_cast<size_t>(id)]->kind() == Node::Kind::kHost);
  return static_cast<HostNode&>(*nodes_[static_cast<size_t>(id)]);
}

SwitchNode& Network::switch_node(NodeId id) {
  LCMP_CHECK(nodes_[static_cast<size_t>(id)]->kind() == Node::Kind::kSwitch);
  return static_cast<SwitchNode&>(*nodes_[static_cast<size_t>(id)]);
}

Port* Network::FindPort(NodeId from, int link_idx) {
  const LinkSpec& l = graph_.link(link_idx);
  if (l.a == from) {
    return &nodes_[static_cast<size_t>(from)]->port(port_of_link_[static_cast<size_t>(link_idx)].first);
  }
  if (l.b == from) {
    return &nodes_[static_cast<size_t>(from)]->port(
        port_of_link_[static_cast<size_t>(link_idx)].second);
  }
  return nullptr;
}

std::vector<DirectedLinkRef> Network::InterDcDirectedLinks() const {
  std::vector<DirectedLinkRef> out;
  for (int li = 0; li < graph_.num_links(); ++li) {
    const LinkSpec& l = graph_.link(li);
    const Vertex& va = graph_.vertex(l.a);
    const Vertex& vb = graph_.vertex(l.b);
    if (va.kind != VertexKind::kDciSwitch || vb.kind != VertexKind::kDciSwitch ||
        va.dc == vb.dc) {
      continue;
    }
    out.push_back({li, l.a, l.b,
                   &nodes_[static_cast<size_t>(l.a)]->port(
                       port_of_link_[static_cast<size_t>(li)].first)});
    out.push_back({li, l.b, l.a,
                   &nodes_[static_cast<size_t>(l.b)]->port(
                       port_of_link_[static_cast<size_t>(li)].second)});
  }
  return out;
}

DciTierStats Network::CollectDciStats() const {
  DciTierStats stats;
  for (const DirectedLinkRef& ref : InterDcDirectedLinks()) {
    stats.lost_packets += ref.port->dci_lost_packets();
    stats.repair_packets += ref.port->fec_repair_packets();
    stats.recovered_packets += ref.port->fec_recovered_packets();
    stats.unrecovered_packets += ref.port->fec_unrecovered_packets();
    stats.fec_groups += ref.port->fec_groups();
  }
  return stats;
}

std::string Network::DirectedLinkName(const DirectedLinkRef& ref) const {
  return graph_.vertex(ref.from).name + "->" + graph_.vertex(ref.to).name;
}

void Network::StartPolicyTicks() {
  if (ticks_started_) {
    return;
  }
  ticks_started_ = true;
  for (NodeId id = 0; id < graph_.num_vertices(); ++id) {
    if (graph_.vertex(id).kind != VertexKind::kDciSwitch) {
      continue;
    }
    auto& sw = static_cast<SwitchNode&>(*nodes_[static_cast<size_t>(id)]);
    MultipathPolicy* policy = sw.policy();
    if (policy == nullptr || policy->tick_interval() <= 0) {
      continue;
    }
    // One stored callable per switch; the simulator re-arms it every period
    // (this also carries RedTE's 100 ms control loop — its OnTick runs here).
    SwitchNode* swp = &sw;
    sw.sim().ScheduleEvery(policy->tick_interval(), [swp, policy] { policy->OnTick(*swp); });
  }
}

void Network::SetLinkUp(int link_idx, bool up) {
  const LinkSpec& l = graph_.link(link_idx);
  if (LinkIsUp(link_idx) == up) {
    return;  // keep transition counters honest under overlapping fault plans
  }
  static obs::Counter* m_transitions =
      obs::MetricsRegistry::Instance().GetCounter("sim.link.state_transitions");
  m_transitions->Inc();
  LCMP_TRACE(up ? obs::TraceEv::kLinkUp : obs::TraceEv::kLinkDown, control_sim().now(),
             /*flow=*/0, l.a,
             port_of_link_[static_cast<size_t>(link_idx)].first, /*aux=*/link_idx);
  nodes_[static_cast<size_t>(l.a)]->port(port_of_link_[static_cast<size_t>(link_idx)].first)
      .SetUp(up);
  nodes_[static_cast<size_t>(l.b)]->port(port_of_link_[static_cast<size_t>(link_idx)].second)
      .SetUp(up);
}

bool Network::LinkIsUp(int link_idx) const {
  const LinkSpec& l = graph_.link(link_idx);
  return nodes_[static_cast<size_t>(l.a)]
      ->port(port_of_link_[static_cast<size_t>(link_idx)].first)
      .up();
}

void Network::SetLinkDegraded(int link_idx, const LinkDegrade& degrade) {
  const LinkSpec& l = graph_.link(link_idx);
  static obs::Counter* m_degrades =
      obs::MetricsRegistry::Instance().GetCounter("sim.link.degrade_transitions");
  m_degrades->Inc();
  LCMP_TRACE(degrade.active() ? obs::TraceEv::kLinkDegraded : obs::TraceEv::kLinkRestored,
             control_sim().now(), /*flow=*/0, l.a,
             port_of_link_[static_cast<size_t>(link_idx)].first,
             /*aux=*/link_idx);
  nodes_[static_cast<size_t>(l.a)]->port(port_of_link_[static_cast<size_t>(link_idx)].first)
      .SetDegrade(degrade);
  nodes_[static_cast<size_t>(l.b)]->port(port_of_link_[static_cast<size_t>(link_idx)].second)
      .SetDegrade(degrade);
}

void Network::SetSwitchUp(NodeId node, bool up) {
  LCMP_CHECK(graph_.vertex(node).kind != VertexKind::kHost);
  for (const int li : graph_.incident_links(node)) {
    SetLinkUp(li, up);
  }
}

}  // namespace lcmp
