#include "sim/pfc.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/node.h"
#include "sim/shard_channel.h"

namespace lcmp {

PfcController::PfcController(Simulator* sim, SwitchNode* node, const PfcConfig& config)
    : sim_(sim), node_(node), config_(config) {
  LCMP_CHECK(config_.xon_bytes <= config_.xoff_bytes);
  ingress_bytes_.assign(static_cast<size_t>(node_->num_ports()), 0);
  pause_asserted_.assign(static_cast<size_t>(node_->num_ports()), false);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  m_pause_frames_ = reg.GetCounter("sim.pfc.pause_frames");
  m_resume_frames_ = reg.GetCounter("sim.pfc.resume_frames");
}

void PfcController::OnPacketBuffered(int64_t bytes, PortIndex ingress) {
  if (ingress == kInvalidPort) {
    return;
  }
  int64_t& buffered = ingress_bytes_[static_cast<size_t>(ingress)];
  buffered += bytes;
  if (!pause_asserted_[static_cast<size_t>(ingress)] && buffered >= config_.xoff_bytes) {
    pause_asserted_[static_cast<size_t>(ingress)] = true;
    ++pause_frames_;
    m_pause_frames_->Inc();
    LCMP_TRACE(obs::TraceEv::kPfcPause, sim_->now(), /*flow=*/0, node_->id(), ingress, buffered);
    SignalUpstream(ingress, /*pause=*/true);
  }
}

void PfcController::OnPacketFreed(int64_t bytes, PortIndex ingress) {
  if (ingress == kInvalidPort) {
    return;
  }
  int64_t& buffered = ingress_bytes_[static_cast<size_t>(ingress)];
  buffered -= bytes;
  LCMP_CHECK(buffered >= 0);
  if (pause_asserted_[static_cast<size_t>(ingress)] && buffered <= config_.xon_bytes) {
    pause_asserted_[static_cast<size_t>(ingress)] = false;
    ++resume_frames_;
    m_resume_frames_->Inc();
    LCMP_TRACE(obs::TraceEv::kPfcResume, sim_->now(), /*flow=*/0, node_->id(), ingress, buffered);
    SignalUpstream(ingress, /*pause=*/false);
  }
}

void PfcController::SignalUpstream(PortIndex ingress, bool pause) {
  Port& in_port = node_->port(ingress);
  Node* upstream = in_port.peer();
  if (upstream == nullptr) {
    return;
  }
  // The transmitter feeding this ingress is the upstream node's port on the
  // same graph link.
  Port* tx = nullptr;
  for (PortIndex p = 0; p < upstream->num_ports(); ++p) {
    if (upstream->port(p).graph_link_idx() == in_port.graph_link_idx()) {
      tx = &upstream->port(p);
      break;
    }
  }
  if (tx == nullptr) {
    return;
  }
  // The PFC frame needs one propagation delay to reach the transmitter. When
  // the upstream node is homed on another shard, the frame rides this port's
  // cross-shard channel (in_port's channel points toward the upstream shard).
  if (ShardChannel* xlink = in_port.xlink(); xlink != nullptr) {
    const TimeNs at = sim_->now() + in_port.prop_delay_ns();
    xlink->Push(at, sim_->MintKeyFor(at), [tx, pause]() { tx->SetPaused(pause); });
  } else {
    sim_->Schedule(in_port.prop_delay_ns(), [tx, pause]() { tx->SetPaused(pause); });
  }
}

}  // namespace lcmp
