// Bounded SPSC channel for cross-shard event handoff (DESIGN.md §12).
//
// Producer: the source shard's worker thread, from inside Port transmission
// events (and PFC pause signaling) whose peer port is homed on another shard.
// Consumer: the barrier coordinator, which drains every channel into the
// destination shard's event queue while all workers are parked — so the ring
// is never popped concurrently with a push, and the release/acquire indices
// plus the barrier give the destination shard a happens-before edge over the
// payload (including any IntStack block published by the producer).
//
// Each item carries the lineage key the producing event minted for it
// (Simulator::MintKeyFor) — the same key the sequential core would have
// assigned to the same push — so equal-timestamp ties between channel
// deliveries and queue-local events resolve identically on every run and for
// every shard count. Ring overflow falls back to a mutex-guarded vector; the
// heap re-sorts by (time, key) regardless of drain order.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace lcmp {

class ShardChannel {
 public:
  ShardChannel() : ring_(kCapacity) {}

  // Producer side: hand `fn` off for execution at absolute time `t` on the
  // destination shard, under the producer-minted lineage `key`.
  void Push(TimeNs t, uint64_t key, EventFn fn) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) < kCapacity) {
      Item& item = ring_[tail & (kCapacity - 1)];
      item.time = t;
      item.key = key;
      item.fn = std::move(fn);
      tail_.store(tail + 1, std::memory_order_release);
    } else {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      overflow_.push_back(Item{t, key, std::move(fn)});
    }
  }

  // Consumer side (coordinator, workers parked): move every pending item into
  // the destination shard's event queue. Returns the number of items moved
  // and records the pre-drain occupancy as the channel's high-water mark
  // (barrier/stall profiler input).
  size_t DrainInto(Simulator* sim) {
    const size_t tail = tail_.load(std::memory_order_acquire);
    size_t head = head_.load(std::memory_order_relaxed);
    size_t drained = tail - head;
    while (head != tail) {
      Item& item = ring_[head & (kCapacity - 1)];
      sim->PushKeyed(item.time, item.key, std::move(item.fn));
      item.fn = EventFn();
      ++head;
    }
    head_.store(head, std::memory_order_release);
    std::lock_guard<std::mutex> lock(overflow_mu_);
    drained += overflow_.size();
    for (Item& item : overflow_) {
      sim->PushKeyed(item.time, item.key, std::move(item.fn));
    }
    overflow_.clear();
    if (drained > high_water_) {
      high_water_ = drained;
    }
    drained_total_ += drained;
    return drained;
  }

  // Deepest pre-drain occupancy seen at any barrier, and total items moved.
  // Coordinator-only reads (same thread that drains), so plain members.
  size_t high_water() const { return high_water_; }
  uint64_t drained_total() const { return drained_total_; }

 private:
  static constexpr size_t kCapacity = 4096;  // power of two

  struct Item {
    TimeNs time = 0;
    uint64_t key = 0;
    EventFn fn;
  };

  std::vector<Item> ring_;
  std::atomic<size_t> head_{0};
  std::atomic<size_t> tail_{0};
  std::mutex overflow_mu_;
  std::vector<Item> overflow_;
  size_t high_water_ = 0;       // written at drain, coordinator thread only
  uint64_t drained_total_ = 0;
};

}  // namespace lcmp
