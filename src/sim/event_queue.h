// Deterministic discrete-event queue.
//
// Events at the same timestamp fire in insertion order (FIFO tie-break via a
// monotonically increasing sequence number), which makes whole-simulation
// runs bit-for-bit reproducible from the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace lcmp {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `t`. Returns the event's sequence id.
  uint64_t Push(TimeNs t, EventFn fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest event; only valid when !empty().
  TimeNs PeekTime() const { return heap_.front().time; }

  // Removes and returns the earliest event's callback, setting *time to its
  // timestamp. Only valid when !empty().
  EventFn Pop(TimeNs* time);

 private:
  struct Entry {
    TimeNs time;
    uint64_t seq;
    EventFn fn;
  };
  // Min-heap ordered by (time, seq). Hand-rolled so Pop() can move the
  // callback out (std::priority_queue::top() is const).
  static bool Less(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace lcmp
