// Deterministic discrete-event queue.
//
// Events at the same timestamp fire in insertion order (FIFO tie-break via a
// monotonically increasing sequence number), which makes whole-simulation
// runs bit-for-bit reproducible from the seed.
//
// Layout: an indexed binary min-heap. Callbacks are InlineEvent small-buffer
// callables kept in a slab of reusable slots; the heap itself orders 24-byte
// {time, seq, slot} entries. Sifting therefore moves only the tiny entries —
// never the up-to-96 B capture state — and the slot free list makes the
// steady state allocation-free (both vectors stop growing once the queue has
// seen its high-water mark of outstanding events).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/inline_event.h"

namespace lcmp {

using EventFn = InlineEvent;

class EventQueue {
 public:
  // Sequence keys break equal-timestamp ties. The Simulator mints them (see
  // Simulator::MintKeyFor) as (same-timestamp generation << kGenShift) |
  // 48-bit lineage hash for events pushed from inside an executing event,
  // and as plain counters (generation 0) for events pushed during setup.
  // Because a key depends only on the pushing event's own key — never on
  // which partition queue or thread performed the push — every core layout
  // (sequential or any shard count, DESIGN.md §12) assigns identical keys,
  // which is what makes sharded runs bit-identical. The generation field
  // guarantees a same-timestamp child always sorts after its parent, so pop
  // order within a timestamp equals key order in every layout.
  static constexpr int kGenShift = 48;

  // Schedules `fn` at absolute time `t` with a private-counter key (for
  // standalone queue users/tests). Returns the event's sequence key.
  uint64_t Push(TimeNs t, EventFn fn);

  // Schedules `fn` at `t` with an externally minted sequence key.
  void PushKeyed(TimeNs t, uint64_t key, EventFn fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest event; only valid when !empty().
  TimeNs PeekTime() const { return heap_.front().time; }

  // Removes and returns the earliest event's callback, setting *time to its
  // timestamp and, when `key` is non-null, *key to its sequence key. Only
  // valid when !empty().
  EventFn Pop(TimeNs* time, uint64_t* key = nullptr);

 private:
  struct Entry {
    TimeNs time;
    uint64_t seq;
    uint32_t slot;  // index into slots_
  };
  // Min-heap ordered by (time, seq). Hand-rolled so Pop() can move the
  // callback out (std::priority_queue::top() is const) and so the sift
  // routines can shift entries into a hole instead of pairwise-swapping.
  static bool Less(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  uint32_t StoreSlot(EventFn fn);

  std::vector<Entry> heap_;
  std::vector<EventFn> slots_;       // callable slab, indexed by Entry::slot
  std::vector<uint32_t> free_slots_;
  uint64_t next_seq_ = 0;
};

}  // namespace lcmp
