#include "workload/traffic_gen.h"

#include <algorithm>

#include "common/logging.h"

namespace lcmp {

std::vector<std::pair<DcId, DcId>> AllOrderedDcPairs(int num_dcs) {
  std::vector<std::pair<DcId, DcId>> pairs;
  for (DcId s = 0; s < num_dcs; ++s) {
    for (DcId d = 0; d < num_dcs; ++d) {
      if (s != d) {
        pairs.emplace_back(s, d);
      }
    }
  }
  return pairs;
}

std::vector<FlowSpec> GenerateTraffic(const Graph& g,
                                      const std::vector<std::pair<DcId, DcId>>& dc_pairs,
                                      const TrafficGenConfig& config) {
  LCMP_CHECK(!dc_pairs.empty());
  LCMP_CHECK(config.num_flows > 0);
  LCMP_CHECK(config.offered_bps > 0);

  // Host lists per DC, restricted to DCs that appear in the pairing.
  std::vector<std::vector<NodeId>> hosts(static_cast<size_t>(g.num_dcs()));
  for (const auto& [s, d] : dc_pairs) {
    if (hosts[static_cast<size_t>(s)].empty()) {
      hosts[static_cast<size_t>(s)] = g.HostsInDc(s);
    }
    if (hosts[static_cast<size_t>(d)].empty()) {
      hosts[static_cast<size_t>(d)] = g.HostsInDc(d);
    }
    LCMP_CHECK_MSG(!hosts[static_cast<size_t>(s)].empty(), "DC %d has no hosts", s);
    LCMP_CHECK_MSG(!hosts[static_cast<size_t>(d)].empty(), "DC %d has no hosts", d);
  }

  const FlowCdf& cdf = FlowCdf::Get(config.workload);
  // Poisson arrival rate lambda (flows/sec) so that lambda * mean_size * 8
  // equals the offered load.
  const double lambda =
      static_cast<double>(config.offered_bps) / (8.0 * cdf.mean_bytes());
  const double mean_gap_ns = static_cast<double>(kNsPerSec) / lambda;

  Rng rng(config.seed);
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<size_t>(config.num_flows));
  double t = static_cast<double>(config.start_time);
  for (int i = 0; i < config.num_flows; ++i) {
    t += rng.NextExponential(mean_gap_ns);
    const auto& [src_dc, dst_dc] = dc_pairs[rng.NextBounded(dc_pairs.size())];
    const auto& shosts = hosts[static_cast<size_t>(src_dc)];
    // mix_intra == 0 must draw nothing extra: the legacy inter-only stream
    // (and every pinned golden digest downstream of it) stays bit-exact.
    const bool intra = config.mix_intra > 0.0 && rng.NextDouble() < config.mix_intra;
    const auto& dhosts = intra ? shosts : hosts[static_cast<size_t>(dst_dc)];
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    const size_t si = rng.NextBounded(shosts.size());
    f.src = shosts[si];
    if (intra && dhosts.size() > 1) {
      // Distinct destination host in the same DC.
      f.dst = dhosts[(si + 1 + rng.NextBounded(dhosts.size() - 1)) % dhosts.size()];
    } else if (intra) {
      // Single-host DC cannot host an intra flow; fall back to the inter pair.
      f.dst = hosts[static_cast<size_t>(dst_dc)][rng.NextBounded(
          hosts[static_cast<size_t>(dst_dc)].size())];
    } else {
      f.dst = dhosts[rng.NextBounded(dhosts.size())];
    }
    f.key.src = f.src;
    f.key.dst = f.dst;
    f.key.src_port = static_cast<uint32_t>(i + 1);  // per-flow nonce (QPN)
    f.key.dst_port = 4791;                          // RoCEv2 UDP port
    f.size_bytes = cdf.Sample(rng);
    f.start_time = static_cast<TimeNs>(t);
    flows.push_back(f);
  }
  return flows;
}

std::vector<FlowSpec> GenerateBurst(const Graph& g,
                                    const std::vector<std::pair<DcId, DcId>>& dc_pairs,
                                    const BurstConfig& config) {
  LCMP_CHECK(!dc_pairs.empty());
  LCMP_CHECK(config.num_flows > 0);
  std::vector<std::vector<NodeId>> hosts(static_cast<size_t>(g.num_dcs()));
  for (const auto& [s, d] : dc_pairs) {
    if (hosts[static_cast<size_t>(s)].empty()) {
      hosts[static_cast<size_t>(s)] = g.HostsInDc(s);
    }
    if (hosts[static_cast<size_t>(d)].empty()) {
      hosts[static_cast<size_t>(d)] = g.HostsInDc(d);
    }
  }
  const FlowCdf& cdf = FlowCdf::Get(config.workload);
  Rng rng(config.seed);
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<size_t>(config.num_flows));
  for (int i = 0; i < config.num_flows; ++i) {
    const auto& [src_dc, dst_dc] = dc_pairs[rng.NextBounded(dc_pairs.size())];
    const auto& shosts = hosts[static_cast<size_t>(src_dc)];
    const auto& dhosts = hosts[static_cast<size_t>(dst_dc)];
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src = shosts[rng.NextBounded(shosts.size())];
    f.dst = dhosts[rng.NextBounded(dhosts.size())];
    f.key.src = f.src;
    f.key.dst = f.dst;
    f.key.src_port = static_cast<uint32_t>(i + 1);
    f.key.dst_port = 4791;
    f.size_bytes = config.fixed_size_bytes > 0 ? config.fixed_size_bytes : cdf.Sample(rng);
    f.start_time = config.burst_time;
    flows.push_back(f);
  }
  return flows;
}

std::vector<FlowSpec> GenerateIncast(const Graph& g, const IncastConfig& config) {
  LCMP_CHECK(config.fanin > 0);
  LCMP_CHECK(config.bytes_per_sender > 0);
  // Host-bearing DCs in id order; the last one hosts the receiver.
  std::vector<DcId> dcs;
  std::vector<std::vector<NodeId>> hosts;
  for (DcId dc = 0; dc < g.num_dcs(); ++dc) {
    std::vector<NodeId> h = g.HostsInDc(dc);
    if (!h.empty()) {
      dcs.push_back(dc);
      hosts.push_back(std::move(h));
    }
  }
  LCMP_CHECK_MSG(dcs.size() >= 2, "incast needs >= 2 host-bearing DCs, have %zu", dcs.size());
  const NodeId receiver = hosts.back().front();
  const size_t num_src_dcs = dcs.size() - 1;

  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<size_t>(config.fanin));
  std::vector<size_t> cursor(num_src_dcs, 0);  // per-DC host rotation
  for (int i = 0; i < config.fanin; ++i) {
    const size_t di = static_cast<size_t>(i) % num_src_dcs;
    const auto& shosts = hosts[di];
    FlowSpec f;
    f.id = config.first_flow_id + i;
    f.src = shosts[cursor[di]];
    cursor[di] = (cursor[di] + 1) % shosts.size();
    f.dst = receiver;
    f.key.src = f.src;
    f.key.dst = f.dst;
    f.key.src_port = static_cast<uint32_t>(f.id);
    f.key.dst_port = 4791;
    f.size_bytes = config.bytes_per_sender;
    f.start_time = config.start_time;
    flows.push_back(f);
  }
  return flows;
}

int64_t OfferedLoadForUtilization(const Graph& g, const InterDcRoutes& routes,
                                  const std::vector<std::pair<DcId, DcId>>& dc_pairs,
                                  double load) {
  LCMP_CHECK(load > 0);
  // Total directed inter-DC capacity.
  int64_t directed_capacity = 0;
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    if (g.vertex(l.a).kind == VertexKind::kDciSwitch &&
        g.vertex(l.b).kind == VertexKind::kDciSwitch && g.vertex(l.a).dc != g.vertex(l.b).dc) {
      directed_capacity += 2 * l.rate_bps;
    }
  }
  // Mean hop count: each flow consumes `hops` links' worth of capacity.
  double total_hops = 0;
  int counted = 0;
  for (const auto& [s, d] : dc_pairs) {
    const NodeId dci = g.DciOfDc(s);
    const int h = routes.HopDistance(dci, d);
    if (h > 0) {
      total_hops += h;
      ++counted;
    }
  }
  const double mean_hops = counted > 0 ? total_hops / counted : 1.0;
  return static_cast<int64_t>(load * static_cast<double>(directed_capacity) / mean_hops);
}

}  // namespace lcmp
