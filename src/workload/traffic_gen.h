// Open-loop Poisson traffic generation (the artifact's traffic_gen.py):
// flows arrive with exponential inter-arrival times calibrated to an offered
// load, sizes drawn from a workload CDF, endpoints drawn uniformly from an
// all-to-all inter-DC pairing.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"
#include "topo/candidate_paths.h"
#include "topo/graph.h"
#include "transport/flow.h"
#include "workload/flow_cdf.h"

namespace lcmp {

struct TrafficGenConfig {
  WorkloadKind workload = WorkloadKind::kWebSearch;
  // Aggregate offered load in bits/sec across all generated flows.
  int64_t offered_bps = Gbps(100);
  int num_flows = 1000;
  TimeNs start_time = 0;
  uint64_t seed = 1;
  // Fraction of flows redirected to stay inside their source DC (both
  // endpoints in the same DC), modeling mixed intra+inter traffic matrices.
  // 0 draws no extra randomness, keeping the legacy RNG stream bit-exact.
  double mix_intra = 0.0;
};

// All ordered (src_dc, dst_dc) pairs with src != dst.
std::vector<std::pair<DcId, DcId>> AllOrderedDcPairs(int num_dcs);

// Generates `num_flows` flows: each picks a DC pair uniformly from
// `dc_pairs`, then a uniform source host in the source DC and a uniform
// destination host in the destination DC. Arrival times form a Poisson
// process whose rate matches offered_bps / mean flow size. Flow ids are
// sequential (non-zero) and keys carry a per-flow nonce in src_port.
std::vector<FlowSpec> GenerateTraffic(const Graph& g,
                                      const std::vector<std::pair<DcId, DcId>>& dc_pairs,
                                      const TrafficGenConfig& config);

// Offered bits/sec across all `dc_pairs` that yields an average *inter-DC
// link* utilization of `load`: load * (total directed inter-DC capacity) /
// (mean inter-DC hop count over the pairs).
int64_t OfferedLoadForUtilization(const Graph& g, const InterDcRoutes& routes,
                                  const std::vector<std::pair<DcId, DcId>>& dc_pairs,
                                  double load);

struct BurstConfig {
  WorkloadKind workload = WorkloadKind::kWebSearch;
  int num_flows = 100;
  TimeNs burst_time = 0;
  // 0 keeps CDF-sampled sizes; otherwise every flow gets this size.
  uint64_t fixed_size_bytes = 0;
  uint64_t seed = 1;
};

// Generates `num_flows` flows that all start at the same instant — the
// paper's challenge (3) scenario ("bursts of new flows that start
// near-simultaneously"), used to study the herd effect and the
// diversity-preserving selection that mitigates it (Sec. 3.4).
std::vector<FlowSpec> GenerateBurst(const Graph& g,
                                    const std::vector<std::pair<DcId, DcId>>& dc_pairs,
                                    const BurstConfig& config);

struct IncastConfig {
  // Number of simultaneous senders converging on the single receiver.
  int fanin = 64;
  // Bytes each sender transfers.
  uint64_t bytes_per_sender = 1 << 20;
  TimeNs start_time = 0;
  // Id of the first incast flow; callers stacking incast on top of a
  // background matrix pass background_flows.size() + 1 so ids stay dense.
  FlowId first_flow_id = 1;
};

// Generates an N-to-1 incast: one receiver host in the last host-bearing DC,
// `fanin` senders drawn round-robin from the hosts of every *other*
// host-bearing DC. All flows start at the same instant with the same size —
// the synchronized fan-in that stresses the destination DC's border and
// fabric. Fully deterministic (no RNG). Requires >= 2 host-bearing DCs.
std::vector<FlowSpec> GenerateIncast(const Graph& g, const IncastConfig& config);

}  // namespace lcmp
