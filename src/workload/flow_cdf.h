// Empirical flow-size distributions for the paper's three workloads:
// Web Search (DCTCP paper), Facebook Hadoop, and Alibaba Storage.
//
// The published artifact ships these as CDF files; we embed equivalent
// piecewise-linear CDFs. The AliStorage table is an approximation of the
// published shape (the original trace file is proprietary): dominated by
// small (< 4 KB) flows with a heavy multi-MB tail. FbHdp is truncated at
// 30 MB (as is WebSearch's natural maximum) to keep simulated makespans
// tractable; the truncation preserves the small/large flow mix that drives
// the routing comparison.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace lcmp {

enum class WorkloadKind : uint8_t { kWebSearch, kFbHdp, kAliStorage };

const char* WorkloadKindName(WorkloadKind kind);

// Piecewise-linear CDF over flow sizes in bytes.
class FlowCdf {
 public:
  // `points` are (size_bytes, cumulative_probability), strictly increasing
  // in both coordinates, first probability 0, last 1.
  explicit FlowCdf(std::vector<std::pair<double, double>> points);

  // Shared instance for a built-in workload.
  static const FlowCdf& Get(WorkloadKind kind);

  // Inverse-transform sample; at least 1 byte.
  uint64_t Sample(Rng& rng) const;

  // Analytic mean of the piecewise-linear distribution (used to convert an
  // offered load in bits/sec to a Poisson flow arrival rate).
  double mean_bytes() const { return mean_bytes_; }

  // Convenience: CDF value at `bytes` (for tests).
  double CdfAt(double bytes) const;

  const std::vector<std::pair<double, double>>& points() const { return points_; }

 private:
  std::vector<std::pair<double, double>> points_;
  double mean_bytes_ = 0;
};

// Flow-size bucket edges used by the per-size figures (Fig. 11): one bucket
// per CDF knee of the workload.
std::vector<uint64_t> SizeBucketEdges(WorkloadKind kind);

}  // namespace lcmp
