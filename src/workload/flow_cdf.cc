#include "workload/flow_cdf.h"

#include <algorithm>

#include "common/logging.h"

namespace lcmp {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kWebSearch:
      return "WebSearch";
    case WorkloadKind::kFbHdp:
      return "FbHdp";
    case WorkloadKind::kAliStorage:
      return "AliStorage";
  }
  return "?";
}

FlowCdf::FlowCdf(std::vector<std::pair<double, double>> points) : points_(std::move(points)) {
  LCMP_CHECK(points_.size() >= 2);
  LCMP_CHECK(points_.front().second == 0.0);
  LCMP_CHECK(points_.back().second == 1.0);
  for (size_t i = 1; i < points_.size(); ++i) {
    LCMP_CHECK(points_[i].first >= points_[i - 1].first);
    LCMP_CHECK(points_[i].second >= points_[i - 1].second);
  }
  // Mean of the piecewise-linear CDF: each segment contributes its midpoint
  // weighted by its probability mass.
  double mean = 0;
  for (size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].second - points_[i - 1].second;
    mean += mass * (points_[i].first + points_[i - 1].first) / 2.0;
  }
  mean_bytes_ = mean;
}

uint64_t FlowCdf::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Find the segment containing u and interpolate.
  auto it = std::lower_bound(points_.begin(), points_.end(), u,
                             [](const std::pair<double, double>& p, double v) {
                               return p.second < v;
                             });
  if (it == points_.begin()) {
    return std::max<uint64_t>(1, static_cast<uint64_t>(points_.front().first));
  }
  if (it == points_.end()) {
    return std::max<uint64_t>(1, static_cast<uint64_t>(points_.back().first));
  }
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.second - lo.second;
  const double frac = span > 0 ? (u - lo.second) / span : 0.0;
  const double bytes = lo.first + frac * (hi.first - lo.first);
  return std::max<uint64_t>(1, static_cast<uint64_t>(bytes));
}

double FlowCdf::CdfAt(double bytes) const {
  if (bytes <= points_.front().first) {
    return points_.front().second;
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (bytes <= points_[i].first) {
      const double dx = points_[i].first - points_[i - 1].first;
      const double frac = dx > 0 ? (bytes - points_[i - 1].first) / dx : 1.0;
      return points_[i - 1].second + frac * (points_[i].second - points_[i - 1].second);
    }
  }
  return 1.0;
}

const FlowCdf& FlowCdf::Get(WorkloadKind kind) {
  // DCTCP web-search distribution (Alizadeh et al. 2010), bytes.
  static const FlowCdf web_search({
      {0, 0.0},        {10'000, 0.15},   {20'000, 0.20},    {30'000, 0.30},
      {50'000, 0.40},  {80'000, 0.53},   {200'000, 0.60},   {1'000'000, 0.70},
      {2'000'000, 0.80}, {5'000'000, 0.90}, {10'000'000, 0.97}, {30'000'000, 1.0},
  });
  // Facebook Hadoop (Roy et al. 2015), truncated at 30 MB.
  static const FlowCdf fb_hdp({
      {0, 0.0},       {180, 0.10},     {216, 0.20},      {560, 0.30},
      {900, 0.40},    {1'100, 0.50},   {1'870, 0.60},    {3'160, 0.70},
      {10'000, 0.80}, {400'000, 0.90}, {3'160'000, 0.95}, {10'000'000, 0.99},
      {30'000'000, 1.0},
  });
  // Alibaba storage service (shape approximation; see header comment).
  static const FlowCdf ali_storage({
      {0, 0.0},         {1'000, 0.30},    {2'000, 0.50},     {4'096, 0.70},
      {8'192, 0.78},    {16'384, 0.83},   {65'536, 0.88},    {262'144, 0.91},
      {1'000'000, 0.94}, {4'000'000, 0.97}, {16'000'000, 0.99}, {32'000'000, 1.0},
  });
  switch (kind) {
    case WorkloadKind::kWebSearch:
      return web_search;
    case WorkloadKind::kFbHdp:
      return fb_hdp;
    case WorkloadKind::kAliStorage:
      return ali_storage;
  }
  return web_search;
}

std::vector<uint64_t> SizeBucketEdges(WorkloadKind kind) {
  const FlowCdf& cdf = FlowCdf::Get(kind);
  std::vector<uint64_t> edges;
  for (const auto& [bytes, prob] : cdf.points()) {
    if (bytes > 0) {
      edges.push_back(static_cast<uint64_t>(bytes));
    }
    (void)prob;
  }
  return edges;
}

}  // namespace lcmp
