// PDES barrier/stall profiler (DESIGN.md §7).
//
// ROADMAP item 1 defers intra-window work stealing until "barrier imbalance
// shows up" — this is the instrument that can show it. The sharded engine
// (sim/shard_engine.h) reports, for every barrier window, the wall time each
// shard worker spent executing its slice and the wall time the coordinator
// spent in each completion-step phase (channel drain, advance-to-T, control
// events). From those the profiler derives the numbers that decide the
// work-stealing question: per-shard busy vs stall time (stall = how long a
// shard sat parked while the window's slowest shard finished), a window
// imbalance histogram, and cross-shard channel pressure (items drained,
// high-water occupancy).
//
// Thread model, piggybacked on the engine's barrier: OnWindowOpen runs only
// in the barrier completion step (one thread, all workers parked) and
// OnShardWindow runs on worker `shard`'s thread between barriers, writing a
// slot no other thread touches until the next completion step reads it. The
// barrier itself provides every needed happens-before edge, so the record
// path takes no locks. Begin/End hand the singleton to exactly one engine
// run at a time; a second concurrent engine (parallel sweeps) simply gets
// `false` from Begin and records nothing.
//
// Windows land in a bounded ring (default 8192) for the Perfetto wall-time
// track; running aggregates cover the whole run regardless of ring wrap.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace lcmp {
namespace obs {

class BarrierProfiler {
 public:
  // Per-shard slots recorded per window. Shard counts above this record
  // aggregates only (the realistic engine tops out at one worker per core).
  static constexpr int kMaxShards = 16;
  // Imbalance histogram buckets: (max-min)/max busy fraction, 10% wide.
  static constexpr int kImbalanceBuckets = 10;

  struct ShardSlot {
    uint64_t wall_start_ns = 0;  // ProfileClockNs() when RunWindow began
    uint64_t busy_ns = 0;        // wall time inside RunWindow
    uint64_t events = 0;         // events executed in the window
    bool recorded = false;
  };

  struct WindowRecord {
    TimeNs t_start = 0;  // window [t_start, t_end) in sim time
    TimeNs t_end = 0;
    uint64_t coord_wall_start_ns = 0;
    uint64_t drain_ns = 0;    // completion step: channel drain
    uint64_t advance_ns = 0;  // completion step: min-scan + AdvanceTo
    uint64_t control_ns = 0;  // completion step: control-plane Run(T)
    uint64_t drained_items = 0;
    uint64_t channel_high_water = 0;
    std::array<ShardSlot, kMaxShards> shards{};
  };

  struct ShardSummary {
    uint64_t busy_ns = 0;
    uint64_t stall_ns = 0;  // parked while the window's slowest shard ran
    uint64_t events = 0;
  };

  struct Summary {
    int shards = 0;
    uint64_t windows = 0;
    std::vector<ShardSummary> per_shard;
    std::array<uint64_t, kImbalanceBuckets> imbalance_hist{};
    uint64_t drained_items = 0;
    uint64_t channel_high_water = 0;
    uint64_t coord_drain_ns = 0;
    uint64_t coord_advance_ns = 0;
    uint64_t coord_control_ns = 0;
  };

  static BarrierProfiler& Instance();

  // Arms the profiler for one engine run with `shards` workers, clearing any
  // previous run's data. Returns false (and records nothing) when another
  // run already holds it — the holder calls End() when its Run() returns.
  bool Begin(int shards);
  void End();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  // Coordinator only (barrier completion step). Closes the previous window's
  // aggregates — every worker's OnShardWindow for it happened-before this
  // barrier — then opens [t_start, t_end).
  void OnWindowOpen(TimeNs t_start, TimeNs t_end, uint64_t coord_wall_start_ns,
                    uint64_t drain_ns, uint64_t advance_ns, uint64_t control_ns,
                    uint64_t drained_items, uint64_t channel_high_water);

  // Worker `shard` only, after its RunWindow returns and before it re-arrives
  // at the barrier.
  void OnShardWindow(int shard, uint64_t wall_start_ns, uint64_t busy_ns, uint64_t events);

  // Whole-run aggregates (closes the final window). Valid after End().
  Summary Summarize() const;

  // Oldest-first window records for the trace export (<= ring capacity).
  std::vector<WindowRecord> Windows() const;
  uint64_t total_windows() const { return total_windows_; }

  // Ring capacity in windows; takes effect at the next Begin().
  void ConfigureRing(size_t windows);

 private:
  BarrierProfiler() = default;

  void CloseWindowLocked(WindowRecord& w);

  std::atomic<bool> active_{false};
  mutable std::mutex mu_;  // guards Begin/End and reader access to the ring
  int shards_ = 0;
  size_t ring_capacity_ = 8192;
  std::vector<WindowRecord> ring_;
  size_t head_ = 0;  // next write position
  size_t size_ = 0;
  uint64_t total_windows_ = 0;
  bool window_open_ = false;
  size_t open_slot_ = 0;

  // Whole-run aggregates, updated when a window closes.
  std::array<ShardSummary, kMaxShards> agg_shards_{};
  std::array<uint64_t, kImbalanceBuckets> imbalance_hist_{};
  uint64_t agg_drained_ = 0;
  uint64_t agg_high_water_ = 0;
  uint64_t agg_drain_ns_ = 0;
  uint64_t agg_advance_ns_ = 0;
  uint64_t agg_control_ns_ = 0;
};

}  // namespace obs
}  // namespace lcmp
