#include "obs/shard_profile.h"

#include <algorithm>

namespace lcmp {
namespace obs {

BarrierProfiler& BarrierProfiler::Instance() {
  static BarrierProfiler* profiler = new BarrierProfiler();  // never destroyed
  return *profiler;
}

bool BarrierProfiler::Begin(int shards) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_.load(std::memory_order_relaxed)) {
    return false;
  }
  shards_ = std::min(shards, kMaxShards);
  ring_.assign(ring_capacity_, WindowRecord{});
  head_ = 0;
  size_ = 0;
  total_windows_ = 0;
  window_open_ = false;
  open_slot_ = 0;
  agg_shards_.fill(ShardSummary{});
  imbalance_hist_.fill(0);
  agg_drained_ = 0;
  agg_high_water_ = 0;
  agg_drain_ns_ = 0;
  agg_advance_ns_ = 0;
  agg_control_ns_ = 0;
  active_.store(true, std::memory_order_relaxed);
  return true;
}

void BarrierProfiler::End() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_.load(std::memory_order_relaxed)) {
    return;
  }
  if (window_open_) {
    CloseWindowLocked(ring_[open_slot_]);
    window_open_ = false;
  }
  active_.store(false, std::memory_order_relaxed);
}

void BarrierProfiler::ConfigureRing(size_t windows) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = windows > 0 ? windows : 1;
}

void BarrierProfiler::CloseWindowLocked(WindowRecord& w) {
  agg_drained_ += w.drained_items;
  agg_high_water_ = std::max(agg_high_water_, w.channel_high_water);
  agg_drain_ns_ += w.drain_ns;
  agg_advance_ns_ += w.advance_ns;
  agg_control_ns_ += w.control_ns;
  uint64_t max_busy = 0;
  uint64_t min_busy = UINT64_MAX;
  bool any = false;
  for (int i = 0; i < shards_; ++i) {
    const ShardSlot& s = w.shards[static_cast<size_t>(i)];
    if (!s.recorded) {
      continue;
    }
    any = true;
    max_busy = std::max(max_busy, s.busy_ns);
    min_busy = std::min(min_busy, s.busy_ns);
  }
  if (!any) {
    // Final stop-window: the engine set done_ and no worker ran it.
    return;
  }
  for (int i = 0; i < shards_; ++i) {
    const ShardSlot& s = w.shards[static_cast<size_t>(i)];
    if (!s.recorded) {
      continue;
    }
    ShardSummary& agg = agg_shards_[static_cast<size_t>(i)];
    agg.busy_ns += s.busy_ns;
    agg.stall_ns += max_busy - s.busy_ns;
    agg.events += s.events;
  }
  if (max_busy > 0) {
    // (max-min)/max in [0,1]; bucket 10% wide, 100% folds into the last.
    const uint64_t pct = (max_busy - min_busy) * 100 / max_busy;
    const size_t bucket = std::min<size_t>(pct / 10, kImbalanceBuckets - 1);
    ++imbalance_hist_[bucket];
  }
}

void BarrierProfiler::OnWindowOpen(TimeNs t_start, TimeNs t_end, uint64_t coord_wall_start_ns,
                                   uint64_t drain_ns, uint64_t advance_ns, uint64_t control_ns,
                                   uint64_t drained_items, uint64_t channel_high_water) {
  if (!active_.load(std::memory_order_relaxed)) {
    return;
  }
  // Coordinator-only; workers are parked on the barrier, so their slot
  // writes for the previous window are visible and the ring is quiescent.
  if (window_open_) {
    CloseWindowLocked(ring_[open_slot_]);
  }
  open_slot_ = head_;
  WindowRecord& w = ring_[open_slot_];
  w = WindowRecord{};
  w.t_start = t_start;
  w.t_end = t_end;
  w.coord_wall_start_ns = coord_wall_start_ns;
  w.drain_ns = drain_ns;
  w.advance_ns = advance_ns;
  w.control_ns = control_ns;
  w.drained_items = drained_items;
  w.channel_high_water = channel_high_water;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) {
    ++size_;
  }
  ++total_windows_;
  window_open_ = true;
}

void BarrierProfiler::OnShardWindow(int shard, uint64_t wall_start_ns, uint64_t busy_ns,
                                    uint64_t events) {
  if (!active_.load(std::memory_order_relaxed) || !window_open_ || shard >= shards_) {
    return;
  }
  ShardSlot& s = ring_[open_slot_].shards[static_cast<size_t>(shard)];
  s.wall_start_ns = wall_start_ns;
  s.busy_ns = busy_ns;
  s.events = events;
  s.recorded = true;
}

BarrierProfiler::Summary BarrierProfiler::Summarize() const {
  std::lock_guard<std::mutex> lock(mu_);
  Summary s;
  s.shards = shards_;
  s.windows = total_windows_;
  s.per_shard.assign(static_cast<size_t>(shards_), ShardSummary{});
  for (int i = 0; i < shards_; ++i) {
    s.per_shard[static_cast<size_t>(i)] = agg_shards_[static_cast<size_t>(i)];
  }
  s.imbalance_hist = imbalance_hist_;
  s.drained_items = agg_drained_;
  s.channel_high_water = agg_high_water_;
  s.coord_drain_ns = agg_drain_ns_;
  s.coord_advance_ns = agg_advance_ns_;
  s.coord_control_ns = agg_control_ns_;
  return s;
}

std::vector<BarrierProfiler::WindowRecord> BarrierProfiler::Windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WindowRecord> out;
  out.reserve(size_);
  const size_t cap = ring_.size();
  if (cap == 0) {
    return out;
  }
  const size_t start = (head_ + cap - size_) % cap;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % cap]);
  }
  return out;
}

}  // namespace obs
}  // namespace lcmp
