// Simulator-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with handle-based updates.
//
// Registration resolves a name to a stable cell pointer exactly once (one
// map lookup at construction time); every subsequent update goes through the
// returned handle and costs a single predictable branch on the global enable
// flag plus one store. Cells are never deallocated or moved, so handles stay
// valid across MetricsRegistry::ResetValues() (tests) and re-registration of
// the same name returns the same cell (components built per-switch or
// per-flow all aggregate into one series).
//
// Thread model (parallel sweep engine): each Simulator instance runs on one
// thread, but the sweep runner executes many simulators concurrently in one
// process, all of which share this registry. Registration (GetCounter /
// GetGauge / GetHistogram) is mutex-guarded — it happens once per callsite
// via function-local statics, so the lock is off the steady-state path —
// and cell updates are relaxed atomics, so concurrently enabled runs merge
// their increments without tearing. Enabling or disabling the registry never
// changes simulation state, only whether the cells accumulate — the
// determinism guard in tests relies on that.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace lcmp {
namespace obs {

// Global kill switch. Updates compile to `if (g_metrics_enabled) store`; the
// relaxed atomic load is a plain load on every mainstream ISA, so the
// dormant-path cost is unchanged.
extern std::atomic<bool> g_metrics_enabled;
inline bool MetricsEnabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }
void SetMetricsEnabled(bool on);

namespace detail {
inline bool MetricsOn() {
  return __builtin_expect(g_metrics_enabled.load(std::memory_order_relaxed), 0);
}
}  // namespace detail

// Monotonic event count. 8 bytes; handle updates are branch + relaxed add.
struct Counter {
  std::atomic<int64_t> value{0};

  void Add(int64_t v) {
    if (detail::MetricsOn()) {
      value.fetch_add(v, std::memory_order_relaxed);
    }
  }
  void Inc() { Add(1); }
};

// Last-written value (occupancy, memory bytes, sim time).
struct Gauge {
  std::atomic<int64_t> value{0};

  void Set(int64_t v) {
    if (detail::MetricsOn()) {
      value.store(v, std::memory_order_relaxed);
    }
  }
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds and
// the final bucket is the overflow (> bounds.back()). Bucket layout is fixed
// at registration, so Add is a short linear scan over a handful of bounds —
// no allocation, no rebucketing on the hot path. Bucket counts are relaxed
// atomics; concurrent simulators may interleave additions but never tear.
struct Histogram {
  std::vector<int64_t> bounds;
  std::vector<std::atomic<uint64_t>> counts;  // bounds.size() + 1 entries
  std::atomic<uint64_t> count{0};
  std::atomic<int64_t> sum{0};

  void Add(int64_t v) {
    if (detail::MetricsOn()) {
      AddAlways(v);
    }
  }
  void AddAlways(int64_t v);
};

class MetricsRegistry {
 public:
  // Process-global instance, shared by every simulator thread.
  static MetricsRegistry& Instance();

  // Resolve a name to its cell, creating it on first use. Each kind has its
  // own namespace; re-registering an existing name returns the same cell.
  // Thread-safe; callers cache the handle in a function-local static.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` are only consulted when the histogram is first created.
  Histogram* GetHistogram(const std::string& name, std::vector<int64_t> bounds);

  // Appends one time-series row (every counter and gauge) at sim time `now`.
  // Driven by the control plane's telemetry sweep so sampling cadence rides
  // the *existing* timer and adds no simulator events of its own.
  void Snapshot(TimeNs now);
  size_t num_snapshots() const;

  // Final-value dumps. ToJson emits one document with counters, gauges and
  // histograms; ToCsv emits `time_ns,name,value` rows for every snapshot
  // plus a final row set at `now`.
  std::string ToJson(TimeNs now) const;
  std::string ToCsv(TimeNs now) const;
  // Dispatches on extension: ".csv" writes ToCsv, anything else ToJson.
  bool WriteFile(const std::string& path, TimeNs now) const;

  // Zeroes every cell and drops snapshots; registrations (and therefore all
  // outstanding handles) stay valid. Test isolation hook.
  void ResetValues();

  size_t num_counters() const;
  size_t num_gauges() const;
  size_t num_histograms() const;

 private:
  struct SnapshotRow {
    TimeNs t = 0;
    // Parallel to the registration order of counters then gauges at the time
    // the snapshot was taken (the CSV writer pairs values back to names).
    std::vector<int64_t> values;
  };

  template <typename T>
  struct Named {
    std::string name;
    // Each Named lives on its own heap block and is never freed, so `&cell`
    // stays valid for the process lifetime even across ResetValues().
    T cell;
  };

  std::string ToJsonLocked(TimeNs now) const;
  std::string ToCsvLocked(TimeNs now) const;

  // Guards the registration lists and the snapshot series. Cell *updates* go
  // through handles and never take the lock.
  mutable std::mutex mu_;
  // Names are scanned only at registration; handles bypass the lists.
  std::vector<Named<Counter>*> counters_;
  std::vector<Named<Gauge>*> gauges_;
  std::vector<Named<Histogram>*> histograms_;
  std::vector<SnapshotRow> snapshots_;
};

}  // namespace obs
}  // namespace lcmp
