// Simulator-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with handle-based updates.
//
// Registration resolves a name to a stable cell pointer exactly once (one
// map lookup at construction time); every subsequent update goes through the
// returned handle and costs a single predictable branch on the global enable
// flag plus one store. Cells are never deallocated or moved, so handles stay
// valid across MetricsRegistry::ResetValues() (tests) and re-registration of
// the same name returns the same cell (components built per-switch or
// per-flow all aggregate into one series).
//
// Thread model. Two kinds of concurrency share this registry:
//   - The parallel sweep runner executes many simulators in one process;
//     all of them update lane 0 with relaxed atomics (unchanged from v1).
//   - The sharded PDES core (--shards>1) runs one worker thread per DC
//     shard inside a single simulation. Each worker updates its own *lane*
//     (obs/shard_context.h): counters keep per-lane cache-line-padded
//     sub-cells summed at read time, so shard workers never contend on one
//     atomic; gauges keep per-lane slots stamped with the writing event's
//     (sim-time, lineage-key) so the merged readout is the value the
//     *globally last* write would have left — exactly what a sequential run
//     of the same scenario reports. With <= 16 shards every lane has one
//     writer thread, so gauge stamps never tear; above 16 lanes fold and a
//     torn stamp can at worst misreport a gauge sample, never corrupt
//     simulation state.
// Registration (GetCounter / GetGauge / GetHistogram) is mutex-guarded — it
// happens once per callsite via function-local statics, so the lock is off
// the steady-state path. Enabling or disabling the registry never changes
// simulation state, only whether the cells accumulate — the determinism
// guard in tests relies on that.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/shard_context.h"

namespace lcmp {
namespace obs {

// Global kill switch. Updates compile to `if (g_metrics_enabled) store`; the
// relaxed atomic load is a plain load on every mainstream ISA, so the
// dormant-path cost is unchanged.
extern std::atomic<bool> g_metrics_enabled;
inline bool MetricsEnabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }
void SetMetricsEnabled(bool on);

namespace detail {
inline bool MetricsOn() {
  return __builtin_expect(g_metrics_enabled.load(std::memory_order_relaxed), 0);
}

// One shard lane's sub-cell, padded to a cache line so concurrent shard
// workers bumping the same named counter never false-share.
struct alignas(64) PaddedValue {
  std::atomic<int64_t> v{0};
};
}  // namespace detail

// Monotonic event count. `value` is the lane-0 (unsharded/control) sub-cell
// — existing callers and tests that read it directly keep working for
// sequential runs; sharded totals come from Total().
struct Counter {
  std::atomic<int64_t> value{0};
  std::array<detail::PaddedValue, kNumShardLanes - 1> shard_values{};

  void Add(int64_t v) {
    if (detail::MetricsOn()) {
      const int lane = CurrentShardContext().lane;
      if (__builtin_expect(lane == 0, 1)) {
        value.fetch_add(v, std::memory_order_relaxed);
      } else {
        shard_values[lane - 1].v.fetch_add(v, std::memory_order_relaxed);
      }
    }
  }
  void Inc() { Add(1); }

  // Sum over every lane. Counter increments commute, so the sum is the same
  // number a sequential run accumulates into lane 0.
  int64_t Total() const {
    int64_t t = value.load(std::memory_order_relaxed);
    for (const auto& s : shard_values) {
      t += s.v.load(std::memory_order_relaxed);
    }
    return t;
  }
};

// Last-written value (occupancy, memory bytes, sim time). Per-lane slots
// carry the writing event's (sim-time, lineage-key) stamp; MergedValue()
// returns the slot with the greatest stamp — the write that happens last in
// the global event order, i.e. the value a sequential run would read.
struct Gauge {
  struct alignas(64) Slot {
    std::atomic<int64_t> value{0};
    std::atomic<TimeNs> ts{-1};  // -1 = never written
    std::atomic<uint64_t> key{0};
  };

  // Lane-0 value, kept as a plain member so existing direct readers
  // (`g->value`) stay correct for sequential runs.
  std::atomic<int64_t> value{0};
  std::atomic<TimeNs> ts0{-1};
  std::atomic<uint64_t> key0{0};
  std::array<Slot, kNumShardLanes - 1> shard_slots{};

  void Set(int64_t v) {
    if (detail::MetricsOn()) {
      const ShardContext& ctx = CurrentShardContext();
      if (__builtin_expect(ctx.lane == 0, 1)) {
        value.store(v, std::memory_order_relaxed);
        ts0.store(ContextNow(), std::memory_order_relaxed);
        key0.store(ContextKey(), std::memory_order_relaxed);
      } else {
        Slot& s = shard_slots[ctx.lane - 1];
        s.value.store(v, std::memory_order_relaxed);
        s.ts.store(ContextNow(), std::memory_order_relaxed);
        s.key.store(ContextKey(), std::memory_order_relaxed);
      }
    }
  }

  int64_t MergedValue() const {
    int64_t best = value.load(std::memory_order_relaxed);
    TimeNs best_ts = ts0.load(std::memory_order_relaxed);
    uint64_t best_key = key0.load(std::memory_order_relaxed);
    for (const Slot& s : shard_slots) {
      const TimeNs ts = s.ts.load(std::memory_order_relaxed);
      if (ts < 0) {
        continue;
      }
      const uint64_t key = s.key.load(std::memory_order_relaxed);
      // Strict comparison: equal stamps keep the lower lane, so merge order
      // is a pure function of the (deterministic) lane assignment.
      if (ts > best_ts || (ts == best_ts && key > best_key)) {
        best = s.value.load(std::memory_order_relaxed);
        best_ts = ts;
        best_key = key;
      }
    }
    return best;
  }
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds and
// the final bucket is the overflow (> bounds.back()). Bucket layout is fixed
// at registration, so Add is a short linear scan over a handful of bounds —
// no allocation, no rebucketing on the hot path. Bucket counts are relaxed
// atomics; additions commute, so shard workers share the buckets directly.
struct Histogram {
  std::vector<int64_t> bounds;
  std::vector<std::atomic<uint64_t>> counts;  // bounds.size() + 1 entries
  std::atomic<uint64_t> count{0};
  std::atomic<int64_t> sum{0};

  void Add(int64_t v) {
    if (detail::MetricsOn()) {
      AddAlways(v);
    }
  }
  void AddAlways(int64_t v);
};

// RFC-4180 CSV field escaping: fields containing commas, quotes or newlines
// are double-quoted with embedded quotes doubled. Shared by the metrics CSV
// writer and the time-series exporter so labels like `testbed8,sym` survive.
std::string CsvEscapeField(const std::string& s);

class MetricsRegistry {
 public:
  // Process-global instance, shared by every simulator thread.
  static MetricsRegistry& Instance();

  // Resolve a name to its cell, creating it on first use. Each kind has its
  // own namespace; re-registering an existing name returns the same cell.
  // Thread-safe; callers cache the handle in a function-local static.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` are only consulted when the histogram is first created.
  Histogram* GetHistogram(const std::string& name, std::vector<int64_t> bounds);

  // Appends one time-series row (every counter and gauge, merged across
  // shard lanes) at sim time `now`. Driven by the control plane's telemetry
  // sweep so sampling cadence rides the *existing* timer and adds no
  // simulator events of its own.
  void Snapshot(TimeNs now);
  size_t num_snapshots() const;

  // Final-value dumps. ToJson emits one document with counters, gauges and
  // histograms; ToCsv emits `time_ns,name,value` rows for every snapshot
  // plus a final row set at `now`, with names CSV-escaped.
  std::string ToJson(TimeNs now) const;
  std::string ToCsv(TimeNs now) const;
  // Dispatches on extension: ".csv" writes ToCsv, anything else ToJson.
  bool WriteFile(const std::string& path, TimeNs now) const;

  // Zeroes every cell (all lanes) and drops snapshots; registrations (and
  // therefore all outstanding handles) stay valid. Test isolation hook.
  void ResetValues();

  size_t num_counters() const;
  size_t num_gauges() const;
  size_t num_histograms() const;

 private:
  struct SnapshotRow {
    TimeNs t = 0;
    // Parallel to the registration order of counters then gauges at the time
    // the snapshot was taken (the CSV writer pairs values back to names).
    std::vector<int64_t> values;
  };

  template <typename T>
  struct Named {
    std::string name;
    // Each Named lives on its own heap block and is never freed, so `&cell`
    // stays valid for the process lifetime even across ResetValues().
    T cell;
  };

  std::string ToJsonLocked(TimeNs now) const;
  std::string ToCsvLocked(TimeNs now) const;

  // Guards the registration lists and the snapshot series. Cell *updates* go
  // through handles and never take the lock.
  mutable std::mutex mu_;
  // Names are scanned only at registration; handles bypass the lists.
  std::vector<Named<Counter>*> counters_;
  std::vector<Named<Gauge>*> gauges_;
  std::vector<Named<Histogram>*> histograms_;
  std::vector<SnapshotRow> snapshots_;
};

}  // namespace obs
}  // namespace lcmp
