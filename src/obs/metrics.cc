#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

namespace lcmp {
namespace obs {

std::atomic<bool> g_metrics_enabled{false};

void SetMetricsEnabled(bool on) { g_metrics_enabled.store(on, std::memory_order_relaxed); }

void Histogram::AddAlways(int64_t v) {
  size_t i = 0;
  while (i < bounds.size() && v > bounds[i]) {
    ++i;
  }
  counts[i].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(v, std::memory_order_relaxed);
}

std::string CsvEscapeField(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

namespace {

// JSON string escaping for metric names (names are controlled identifiers,
// but a dump must never be invalid JSON regardless).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto* n : counters_) {
    if (n->name == name) {
      return &n->cell;
    }
  }
  counters_.push_back(new Named<Counter>{name, {}});
  return &counters_.back()->cell;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto* n : gauges_) {
    if (n->name == name) {
      return &n->cell;
    }
  }
  gauges_.push_back(new Named<Gauge>{name, {}});
  return &gauges_.back()->cell;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto* n : histograms_) {
    if (n->name == name) {
      return &n->cell;
    }
  }
  auto* named = new Named<Histogram>{name, {}};
  named->cell.bounds = std::move(bounds);
  std::sort(named->cell.bounds.begin(), named->cell.bounds.end());
  named->cell.counts = std::vector<std::atomic<uint64_t>>(named->cell.bounds.size() + 1);
  histograms_.push_back(named);
  return &named->cell;
}

void MetricsRegistry::Snapshot(TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  SnapshotRow row;
  row.t = now;
  row.values.reserve(counters_.size() + gauges_.size());
  for (const auto* c : counters_) {
    row.values.push_back(c->cell.Total());
  }
  for (const auto* g : gauges_) {
    row.values.push_back(g->cell.MergedValue());
  }
  snapshots_.push_back(std::move(row));
}

size_t MetricsRegistry::num_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.size();
}

size_t MetricsRegistry::num_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size();
}

size_t MetricsRegistry::num_gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.size();
}

size_t MetricsRegistry::num_histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.size();
}

std::string MetricsRegistry::ToJson(TimeNs now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ToJsonLocked(now);
}

std::string MetricsRegistry::ToJsonLocked(TimeNs now) const {
  std::string out = "{\n";
  out += "  \"sim_time_ns\": " + std::to_string(now) + ",\n";

  // Time series: one row per Snapshot() call, values keyed by metric name.
  // Counter/gauge lists only grow, so the first row.values.size() names of
  // the counters-then-gauges ordering line up with any older row.
  out += "  \"snapshots\": [";
  for (size_t r = 0; r < snapshots_.size(); ++r) {
    const SnapshotRow& row = snapshots_[r];
    out += r == 0 ? "\n" : ",\n";
    out += "    {\"time_ns\": " + std::to_string(row.t);
    for (size_t i = 0; i < row.values.size(); ++i) {
      const std::string* name = nullptr;
      if (i < counters_.size()) {
        name = &counters_[i]->name;
      } else if (i - counters_.size() < gauges_.size()) {
        name = &gauges_[i - counters_.size()]->name;
      }
      if (name != nullptr) {
        out += ", \"" + JsonEscape(*name) + "\": " + std::to_string(row.values[i]);
      }
    }
    out += "}";
  }
  out += "\n  ],\n";

  out += "  \"counters\": {";
  for (size_t i = 0; i < counters_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(counters_[i]->name) +
           "\": " + std::to_string(counters_[i]->cell.Total());
  }
  out += "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(gauges_[i]->name) +
           "\": " + std::to_string(gauges_[i]->cell.MergedValue());
  }
  out += "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i]->cell;
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(histograms_[i]->name) +
           "\": {\"count\": " + std::to_string(h.count.load(std::memory_order_relaxed)) +
           ", \"sum\": " + std::to_string(h.sum.load(std::memory_order_relaxed)) +
           ", \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) {
        out += ", ";
      }
      out += std::to_string(h.bounds[b]);
    }
    out += "], \"buckets\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) {
        out += ", ";
      }
      out += std::to_string(h.counts[b].load(std::memory_order_relaxed));
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToCsv(TimeNs now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ToCsvLocked(now);
}

std::string MetricsRegistry::ToCsvLocked(TimeNs now) const {
  std::string out = "time_ns,name,value\n";
  auto append = [&out](TimeNs t, const std::string& name, int64_t v) {
    out += std::to_string(t) + "," + CsvEscapeField(name) + "," + std::to_string(v) + "\n";
  };
  for (const SnapshotRow& row : snapshots_) {
    // Values are ordered counters-then-gauges as of snapshot time; both lists
    // only grow, so the first row.values.size() names line up.
    for (size_t i = 0; i < row.values.size(); ++i) {
      if (i < counters_.size()) {
        append(row.t, counters_[i]->name, row.values[i]);
      } else if (i - counters_.size() < gauges_.size()) {
        append(row.t, gauges_[i - counters_.size()]->name, row.values[i]);
      }
    }
  }
  for (const auto* c : counters_) {
    append(now, c->name, c->cell.Total());
  }
  for (const auto* g : gauges_) {
    append(now, g->name, g->cell.MergedValue());
  }
  for (const auto* h : histograms_) {
    append(now, h->name + ".count",
           static_cast<int64_t>(h->cell.count.load(std::memory_order_relaxed)));
    append(now, h->name + ".sum", h->cell.sum.load(std::memory_order_relaxed));
  }
  return out;
}

bool MetricsRegistry::WriteFile(const std::string& path, TimeNs now) const {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string body = csv ? ToCsv(now) : ToJson(now);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto* c : counters_) {
    c->cell.value.store(0, std::memory_order_relaxed);
    for (auto& s : c->cell.shard_values) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }
  for (auto* g : gauges_) {
    g->cell.value.store(0, std::memory_order_relaxed);
    g->cell.ts0.store(-1, std::memory_order_relaxed);
    g->cell.key0.store(0, std::memory_order_relaxed);
    for (auto& s : g->cell.shard_slots) {
      s.value.store(0, std::memory_order_relaxed);
      s.ts.store(-1, std::memory_order_relaxed);
      s.key.store(0, std::memory_order_relaxed);
    }
  }
  for (auto* h : histograms_) {
    for (auto& bucket : h->cell.counts) {
      bucket.store(0, std::memory_order_relaxed);
    }
    h->cell.count.store(0, std::memory_order_relaxed);
    h->cell.sum.store(0, std::memory_order_relaxed);
  }
  snapshots_.clear();
}

}  // namespace obs
}  // namespace lcmp
