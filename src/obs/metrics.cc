#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

namespace lcmp {
namespace obs {

bool g_metrics_enabled = false;

void SetMetricsEnabled(bool on) { g_metrics_enabled = on; }

void Histogram::AddAlways(int64_t v) {
  size_t i = 0;
  while (i < bounds.size() && v > bounds[i]) {
    ++i;
  }
  ++counts[i];
  ++count;
  sum += v;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

namespace {

// JSON string escaping for metric names (names are controlled identifiers,
// but a dump must never be invalid JSON regardless).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  for (auto* n : counters_) {
    if (n->name == name) {
      return &n->cell;
    }
  }
  counters_.push_back(new Named<Counter>{name, Counter{}});
  return &counters_.back()->cell;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  for (auto* n : gauges_) {
    if (n->name == name) {
      return &n->cell;
    }
  }
  gauges_.push_back(new Named<Gauge>{name, Gauge{}});
  return &gauges_.back()->cell;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, std::vector<int64_t> bounds) {
  for (auto* n : histograms_) {
    if (n->name == name) {
      return &n->cell;
    }
  }
  auto* named = new Named<Histogram>{name, Histogram{}};
  named->cell.bounds = std::move(bounds);
  std::sort(named->cell.bounds.begin(), named->cell.bounds.end());
  named->cell.counts.assign(named->cell.bounds.size() + 1, 0);
  histograms_.push_back(named);
  return &named->cell;
}

void MetricsRegistry::Snapshot(TimeNs now) {
  SnapshotRow row;
  row.t = now;
  row.values.reserve(counters_.size() + gauges_.size());
  for (const auto* c : counters_) {
    row.values.push_back(c->cell.value);
  }
  for (const auto* g : gauges_) {
    row.values.push_back(g->cell.value);
  }
  snapshots_.push_back(std::move(row));
}

std::string MetricsRegistry::ToJson(TimeNs now) const {
  std::string out = "{\n";
  out += "  \"sim_time_ns\": " + std::to_string(now) + ",\n";

  // Time series: one row per Snapshot() call, values keyed by metric name.
  // Counter/gauge lists only grow, so the first row.values.size() names of
  // the counters-then-gauges ordering line up with any older row.
  out += "  \"snapshots\": [";
  for (size_t r = 0; r < snapshots_.size(); ++r) {
    const SnapshotRow& row = snapshots_[r];
    out += r == 0 ? "\n" : ",\n";
    out += "    {\"time_ns\": " + std::to_string(row.t);
    for (size_t i = 0; i < row.values.size(); ++i) {
      const std::string* name = nullptr;
      if (i < counters_.size()) {
        name = &counters_[i]->name;
      } else if (i - counters_.size() < gauges_.size()) {
        name = &gauges_[i - counters_.size()]->name;
      }
      if (name != nullptr) {
        out += ", \"" + JsonEscape(*name) + "\": " + std::to_string(row.values[i]);
      }
    }
    out += "}";
  }
  out += "\n  ],\n";

  out += "  \"counters\": {";
  for (size_t i = 0; i < counters_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(counters_[i]->name) +
           "\": " + std::to_string(counters_[i]->cell.value);
  }
  out += "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(gauges_[i]->name) +
           "\": " + std::to_string(gauges_[i]->cell.value);
  }
  out += "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i]->cell;
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(histograms_[i]->name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) + ", \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) {
        out += ", ";
      }
      out += std::to_string(h.bounds[b]);
    }
    out += "], \"buckets\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) {
        out += ", ";
      }
      out += std::to_string(h.counts[b]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToCsv(TimeNs now) const {
  std::string out = "time_ns,name,value\n";
  auto append = [&out](TimeNs t, const std::string& name, int64_t v) {
    out += std::to_string(t) + "," + name + "," + std::to_string(v) + "\n";
  };
  for (const SnapshotRow& row : snapshots_) {
    // Values are ordered counters-then-gauges as of snapshot time; both lists
    // only grow, so the first row.values.size() names line up.
    for (size_t i = 0; i < row.values.size(); ++i) {
      if (i < counters_.size()) {
        append(row.t, counters_[i]->name, row.values[i]);
      } else if (i - counters_.size() < gauges_.size()) {
        append(row.t, gauges_[i - counters_.size()]->name, row.values[i]);
      }
    }
  }
  for (const auto* c : counters_) {
    append(now, c->name, c->cell.value);
  }
  for (const auto* g : gauges_) {
    append(now, g->name, g->cell.value);
  }
  for (const auto* h : histograms_) {
    append(now, h->name + ".count", static_cast<int64_t>(h->cell.count));
    append(now, h->name + ".sum", h->cell.sum);
  }
  return out;
}

bool MetricsRegistry::WriteFile(const std::string& path, TimeNs now) const {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string body = csv ? ToCsv(now) : ToJson(now);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

void MetricsRegistry::ResetValues() {
  for (auto* c : counters_) {
    c->cell.value = 0;
  }
  for (auto* g : gauges_) {
    g->cell.value = 0;
  }
  for (auto* h : histograms_) {
    std::fill(h->cell.counts.begin(), h->cell.counts.end(), 0);
    h->cell.count = 0;
    h->cell.sum = 0;
  }
  snapshots_.clear();
}

}  // namespace obs
}  // namespace lcmp
